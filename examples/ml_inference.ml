(* ML inference serving on a direct-attached FPGA — the use case that
   opens the paper (Microsoft's FPGAs "to accelerate ML inference with
   significant energy and latency benefits").

   Run with:  dune exec examples/ml_inference.exe

   One loader tile uploads a quantized weight matrix to DRAM once, then
   grants read-only segment capabilities to every worker replica; the
   replicas stream the shared copy into local SRAM and serve int8
   matrix–vector inference behind a load balancer. Clients verify every
   result bit-for-bit against a host-side reference. *)

module Sim = Apiary_engine.Sim
module Rng = Apiary_engine.Rng
module Stats = Apiary_engine.Stats
module Seg_alloc = Apiary_mem.Seg_alloc
module Kernel = Apiary_core.Kernel
module Mvm = Apiary_accel.Mvm
module Accels = Apiary_accel.Accels
module Client = Apiary_net.Client
module Netproto = Apiary_net.Netproto
module Board = Apiary_apps.Board

let rows = 64
let cols = 128

let () =
  let sim = Sim.create () in
  let board = Board.create sim in
  let kernel = board.Board.kernel in
  let rng = Rng.create ~seed:2025 in
  let weights = Mvm.random_weights rng ~rows ~cols in

  let tiles = Board.user_tiles board in
  let lb_tile, loader_tile, worker_tiles =
    match tiles with
    | lb :: ld :: rest -> (lb, ld, List.filteri (fun i _ -> i < 4) rest)
    | _ -> failwith "not enough tiles"
  in
  let worker_stats =
    List.mapi
      (fun i tile ->
        let b, st = Mvm.worker ~service:(Printf.sprintf "mvm%d" i) ~rows ~cols () in
        Kernel.install kernel ~tile b;
        st)
      worker_tiles
  in
  Kernel.install kernel ~tile:loader_tile
    (Mvm.loader ~weights ~rows ~cols ~worker_tiles ());
  Kernel.install kernel ~tile:lb_tile
    (Accels.load_balancer ~service:"infer"
       ~backends:(List.mapi (fun i _ -> Printf.sprintf "mvm%d" i) worker_tiles)
       ());

  (* Every client sends a fixed activation vector of its own, so every
     response is verifiable bit-for-bit against the reference. *)
  let verified = ref 0 and wrong = ref 0 in
  let clients =
    List.init 3 (fun i ->
        let x = Rng.bytes (Rng.create ~seed:(7000 + i)) cols in
        let expected = Mvm.reference ~weights ~rows ~cols x in
        let c = Board.client board ~port:(i + 1) () in
        Client.on_response c (fun rsp ->
            if rsp.Netproto.status = Netproto.Ok_resp then
              match Mvm.Proto.decode_resp rsp.Netproto.body with
              | Ok out when out = expected -> incr verified
              | Ok _ | Error _ -> incr wrong);
        Sim.after sim (10_000 + (i * 137)) (fun () ->
            Client.start_closed c
              { Client.service = "infer"; op = Mvm.Proto.opcode;
                gen = (fun _ -> Mvm.Proto.encode_req x) }
              ~concurrency:4);
        c)
  in

  let duration = 400_000 in
  Sim.run_for sim duration;
  List.iter Client.stop clients;

  let total = List.fold_left (fun a c -> a + Client.completed c) 0 clients in
  let lat = Stats.Histogram.create "lat" in
  List.iter (fun c -> Stats.Histogram.merge_into ~src:(Client.latency c) ~dst:lat) clients;
  Printf.printf "model: int8 %dx%d (%d KiB weights, ONE copy in DRAM: %d bytes allocated)\n"
    rows cols (rows * cols / 1024)
    (Seg_alloc.used_bytes (Kernel.allocator kernel));
  List.iteri
    (fun i st ->
      Printf.printf "  worker %d: %5d inferences, %d weight bytes streamed at boot\n"
        i st.Mvm.inferences st.Mvm.weight_bytes_loaded)
    worker_stats;
  Printf.printf "\nthroughput: %.0f inferences/s   p50 = %.1f us   p99 = %.1f us\n"
    (float_of_int total /. (float_of_int duration *. 4e-9))
    (float_of_int (Stats.Histogram.percentile lat 50.0) *. 0.004)
    (float_of_int (Stats.Histogram.percentile lat 99.0) *. 0.004);
  Printf.printf "verified %d responses (%d mismatches)\n" !verified !wrong
