(* Mutually distrusting tenants on one FPGA (paper §2, Figure 1): a
   key-value store tenant, a video tenant, and a third tenant that turns
   hostile — wild sends into the KV tile, a message flood through a
   legitimate connection, a forged-capability write over the KV store's
   DRAM segment, and finally a crash.

   Run with:  dune exec examples/multi_tenant.exe

   With enforcement on (the default) every attack is contained by the
   per-tile monitors and the victims never notice; run the same script
   with APIARY_ENFORCE=0 to watch the KV store detect corrupted values
   and the victims absorb the flood. *)

module Sim = Apiary_engine.Sim
module Stats = Apiary_engine.Stats
module Kernel = Apiary_core.Kernel
module Monitor = Apiary_core.Monitor
module Shell = Apiary_core.Shell
module Message = Apiary_core.Message
module Kv = Apiary_accel.Kv
module Accels = Apiary_accel.Accels
module Faulty = Apiary_accel.Faulty
module Client = Apiary_net.Client
module Netproto = Apiary_net.Netproto
module Board = Apiary_apps.Board

let () =
  let enforce =
    match Sys.getenv_opt "APIARY_ENFORCE" with Some "0" -> false | _ -> true
  in
  Printf.printf "multi-tenant board, enforcement %s\n\n"
    (if enforce then "ON" else "OFF");
  let sim = Sim.create () in
  let kcfg =
    {
      Kernel.default_config with
      Kernel.monitor =
        { Monitor.default_config with Monitor.enforce; rate = 4.0; burst = 512 };
    }
  in
  let board = Board.create ~kernel_cfg:kcfg sim in
  let kernel = board.Board.kernel in
  let tiles = Board.user_tiles board in
  let kv_tile, enc_tile, evil_tile =
    match tiles with
    | a :: b_ :: c :: _ -> (a, b_, c)
    | _ -> failwith "not enough tiles"
  in

  (* Tenant 1: key-value store. *)
  let kv_behavior, kv_stats = Kv.behavior () in
  Kernel.install kernel ~tile:kv_tile kv_behavior;

  (* Tenant 2: a video encoder. *)
  Kernel.install kernel ~tile:enc_tile (Accels.video_encoder ());

  (* Tenant 3: connects to the KV store like a customer, then misbehaves. *)
  Kernel.install kernel ~tile:evil_tile
    (Faulty.wrap
       [
         Faulty.Wild_send_at
           { at = 20_000; dst = { Message.tile = kv_tile; ep = 1 }; payload_bytes = 64 };
         Faulty.Mem_stomp_at { at = 40_000; addr = 0; len = 4096 };
         Faulty.Flood_via_conn_at { at = 60_000; service = "kv"; payload_bytes = 1024 };
         Faulty.Crash_at 160_000;
       ]
       (Shell.behavior "tenant3"));

  (* A real customer of the KV store, running throughout. *)
  let client = Board.client board ~port:1 () in
  let stored = ref 0 and found = ref 0 and failed = ref 0 in
  Client.on_response client (fun rsp ->
      match Kv.Proto.decode_resp rsp.Netproto.body with
      | Ok Kv.Proto.Stored -> incr stored
      | Ok (Kv.Proto.Found _) -> incr found
      | Ok (Kv.Proto.Failed _) -> incr failed
      | _ -> ());
  let gen n =
    let key = Printf.sprintf "user%d" (n mod 50) in
    if n mod 3 = 0 then
      Kv.Proto.encode_req (Kv.Proto.Put (key, Bytes.make 64 'v'))
    else Kv.Proto.encode_req (Kv.Proto.Get key)
  in
  Sim.after sim 3_000 (fun () ->
      Client.start_closed client
        { Client.service = "kv"; op = Kv.Proto.opcode; gen }
        ~concurrency:2);

  Sim.run_for sim 200_000;
  Client.stop client;

  let evil = Kernel.monitor kernel evil_tile in
  Printf.printf "customer results: %d stored, %d found, %d failed (%d total)\n"
    !stored !found !failed (Client.completed client);
  Printf.printf "kv integrity: %d corruption(s) detected\n" kv_stats.Kv.corruptions;
  Printf.printf "attacker tile %d: %d egress denied, %d messages dropped, %d rate stalls\n"
    evil_tile (Monitor.denied evil) (Monitor.dropped evil) (Monitor.rate_stalls evil);
  Printf.printf "attacker state: %s\n"
    (Monitor.state_to_string (Monitor.state evil));
  Printf.printf "fail-stops recorded by the kernel: %s\n"
    (String.concat ", "
       (List.map (fun (t, r) -> Printf.sprintf "tile %d (%s)" t r) (Kernel.faults kernel)));
  Printf.printf "kv customer p99 latency: %d cycles\n"
    (Stats.Histogram.percentile (Client.latency client) 99.0)
