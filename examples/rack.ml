(* Rack walkthrough: three Apiary boards behind one ToR switch.

   Run with:  dune exec examples/rack.exe

   Shows the cluster layer end to end: a KV service sharded across all
   three boards by consistent hashing, a cross-board call that looks
   exactly like a local one (the paper's "calls to other modules may be
   local or remote"), a board failure detected by client timeouts and
   resharded onto the survivors, and the board's return — all in one
   deterministic simulation, with a merged per-board trace at the end. *)

module Sim = Apiary_engine.Sim
module Shell = Apiary_core.Shell
module Trace = Apiary_core.Trace
module Kv = Apiary_accel.Kv
module Accels = Apiary_accel.Accels
module Cluster = Apiary_cluster.Cluster
module Directory = Apiary_cluster.Directory
module Shard_client = Apiary_cluster.Shard_client

let () =
  let sim = Sim.create () in
  let cluster = Cluster.create sim ~boards:3 in

  (* One KV replica per board: each owns a slice of the keyspace. *)
  for b = 0 to 2 do
    ignore (Cluster.install cluster ~board:b ~service:"kv" (fst (Kv.behavior ())))
  done;
  (* An echo service on board 0 only — so board 2's call must cross the
     switch while board 0's stays on its own fabric. *)
  ignore
    (Cluster.install cluster ~board:0 ~service:"mirror"
       (Accels.echo ~service:"mirror" ~cost:4 ()));

  (* Location transparency: the same connect/call code, run from a board
     that hosts the service and from one that doesn't. *)
  let caller board =
    Shell.behavior "caller" ~on_boot:(fun sh ->
        Sim.after (Shell.sim sh) 3_000 (fun () ->
            Cluster.connect cluster ~board sh ~service:"mirror" (fun r ->
                match r with
                | Error e ->
                  Printf.printf "board %d: connect failed: %s\n" board
                    (Shell.rpc_error_to_string e)
                | Ok target ->
                  let t0 = Shell.now sh in
                  let kind =
                    match Cluster.target_board target with
                    | None -> "local tile"
                    | Some b -> Printf.sprintf "remote board %d" b
                  in
                  Cluster.call cluster ~board sh target ~op:Accels.op_echo
                    (Bytes.of_string "ping") (fun r ->
                      match r with
                      | Ok _ ->
                        Printf.printf
                          "board %d: 'mirror' resolved to %-14s  RTT %5d cycles\n"
                          board kind (Shell.now sh - t0)
                      | Error e ->
                        Printf.printf "board %d: call failed: %s\n" board
                          (Shell.rpc_error_to_string e)))))
  in
  ignore (Cluster.install cluster ~board:0 (caller 0));
  ignore (Cluster.install cluster ~board:2 (caller 2));

  (* An external client sharding PUT/GET traffic over all three boards,
     with client-side failover. *)
  let client =
    Shard_client.create cluster ~timeout:20_000 ~service:"kv"
      ~op:Kv.Proto.opcode ~route:Shard_client.By_key
      ~gen:(fun n ->
        let key = Printf.sprintf "user-%03d" (n mod 101) in
        let req =
          if n land 1 = 0 then Kv.Proto.Put (key, Bytes.make 32 'v')
          else Kv.Proto.Get key
        in
        (key, Kv.Proto.encode_req req))
  in
  Sim.after sim 5_000 (fun () -> Shard_client.start client ~concurrency:8);

  let report label =
    Printf.printf
      "[cycle %7d] %-18s completed %5d  failovers %2d  live boards: %s\n"
      (Sim.now sim) label
      (Shard_client.completed client)
      (Shard_client.failovers client)
      (String.concat ","
         (List.map string_of_int (Shard_client.live_boards client)))
  in

  (* Let the rack warm up, then pull the plug on board 1. *)
  Sim.run_for sim 100_000;
  report "steady state";
  Printf.printf "\n-- killing board 1 (ToR port down; nobody is told) --\n";
  Cluster.kill cluster ~board:1;
  Sim.run_for sim 100_000;
  report "after kill";
  Printf.printf "   directory now lists %d kv replica(s)\n"
    (List.length (Directory.replicas (Cluster.directory cluster) "kv"));

  Printf.printf "\n-- board 1 returns (re-registers, ring re-admits it) --\n";
  Cluster.restore cluster ~board:1;
  Sim.run_for sim 100_000;
  report "after restore";
  Printf.printf "   directory now lists %d kv replica(s)\n"
    (List.length (Directory.replicas (Cluster.directory cluster) "kv"));

  (* The merged trace: one cycle-ordered stream, each event stamped with
     its board — sampled while traffic still spans the rack. *)
  Cluster.set_tracing cluster true;
  Sim.run_for sim 2_000;
  Shard_client.stop client;
  Printf.printf "\nmerged trace sample (all boards, cycle-ordered):\n";
  let netsvc_events =
    List.filter
      (fun e -> e.Trace.tile = 1 && e.Trace.dir = Trace.Ingress)
      (Cluster.merged_trace cluster)
  in
  List.iteri
    (fun idx e -> if idx < 8 then Format.printf "  %a@." Trace.pp_event e)
    netsvc_events
