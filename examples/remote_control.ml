(* A CPU-free FPGA that consults a remote control plane (paper §6-Q3:
   "place the service on any remote CPU, maintaining the ability to use
   an FPGA independent of its on-node CPU").

   Run with:  dune exec examples/remote_control.exe

   The board runs a KV tenant with no host CPU attached. Rare
   control-plane work — admission decisions for new tenants — is
   delegated to a policy daemon on a remote host, reached through the
   network service tile. The example prices both kinds of operation: the
   data path stays in fabric (sub-µs), the control path crosses the
   datacenter (~10 µs) and nobody cares, because it runs once per tenant,
   not once per request. *)

module Sim = Apiary_engine.Sim
module Stats = Apiary_engine.Stats
module Kernel = Apiary_core.Kernel
module Shell = Apiary_core.Shell
module Message = Apiary_core.Message
module Kv = Apiary_accel.Kv
module Accels = Apiary_accel.Accels
module Netsvc = Apiary_net.Netsvc
module Client = Apiary_net.Client
module Netproto = Apiary_net.Netproto
module Board = Apiary_apps.Board
module Remote_service = Apiary_baseline.Remote_service

let () =
  let sim = Sim.create () in
  let board = Board.create sim in
  let kernel = board.Board.kernel in

  (* The remote policy daemon: admits tenants whose name starts with "prod". *)
  let policy_mac, policy_addr = Board.add_client_port board ~port:2 () in
  let _policy =
    Remote_service.create sim ~mac:policy_mac ~my_mac:policy_addr
      ~handler:(fun ~service:_ ~op:_ body ->
        let tenant = Bytes.to_string body in
        let verdict =
          if String.length tenant >= 4 && String.sub tenant 0 4 = "prod" then "ADMIT"
          else "REJECT"
        in
        Bytes.of_string verdict)
      ()
  in

  (* An admission-controller tile: accepts tenant proposals, asks the
     remote policy daemon, reports the verdict and the cost of asking. *)
  let ctl_lat = Stats.Histogram.create "control-op" in
  (match Board.user_tiles board with
  | ctl :: kv_tile :: _ ->
    let kv_b, _ = Kv.behavior () in
    Kernel.install kernel ~tile:kv_tile kv_b;
    Kernel.install kernel ~tile:ctl
      (Shell.behavior "admission"
         ~on_boot:(fun sh ->
           Sim.after (Shell.sim sh) 2_000 (fun () ->
               Shell.connect sh ~service:"net" (fun r ->
                   match r with
                   | Error e ->
                     Printf.printf "no network service: %s\n"
                       (Shell.rpc_error_to_string e)
                   | Ok net ->
                     List.iter
                       (fun tenant ->
                         let t0 = Shell.now sh in
                         Netsvc.remote_request sh net ~dst_mac:policy_addr
                           ~service:"policy" ~op:1 (Bytes.of_string tenant)
                           (fun r ->
                             let dt = Shell.now sh - t0 in
                             Stats.Histogram.record ctl_lat dt;
                             match r with
                             | Ok rsp ->
                               Printf.printf
                                 "[cycle %6d] tenant %-12s -> %-6s (remote policy, %.1f us)\n"
                                 (Shell.now sh) tenant
                                 (Bytes.to_string rsp.Netproto.body)
                                 (float_of_int dt *. 0.004)
                             | Error e ->
                               Printf.printf "policy call failed: %s\n"
                                 (Shell.rpc_error_to_string e)))
                       [ "prod-video"; "scratchpad"; "prod-kv"; "fuzzer" ]))))
  | _ -> failwith "not enough tiles");

  (* Meanwhile the data path serves clients entirely in fabric. *)
  let client = Board.client board ~port:1 () in
  Sim.after sim 3_000 (fun () ->
      Client.start_closed client
        {
          Client.service = "kv";
          op = Kv.Proto.opcode;
          gen =
            (fun n ->
              if n mod 2 = 1 then
                Kv.Proto.encode_req (Kv.Proto.Put ("key", Bytes.make 64 'v'))
              else Kv.Proto.encode_req (Kv.Proto.Get "key"));
        }
        ~concurrency:2);
  Sim.run_for sim 100_000;
  Client.stop client;

  Printf.printf "\ndata path (KV over fabric):   p50 = %.1f us  (%d requests)\n"
    (float_of_int (Stats.Histogram.percentile (Client.latency client) 50.0) *. 0.004)
    (Client.completed client);
  Printf.printf "control path (remote policy): p50 = %.1f us  (%d calls)\n"
    (float_of_int (Stats.Histogram.percentile ctl_lat 50.0) *. 0.004)
    (Stats.Histogram.count ctl_lat);
  Printf.printf
    "\nno host CPU was attached to this board; the control plane lives across\n\
     the network, exactly as the paper's 6-Q3 proposes.\n"
