(* A network-attached key-value store on the FPGA, driven by multiple
   client hosts with a YCSB-style skewed workload — the independent
   tenant application of paper §2, measured the way a service owner
   would: throughput and tail latency under increasing client load.

   Run with:  dune exec examples/kv_service.exe *)

module Sim = Apiary_engine.Sim
module Rng = Apiary_engine.Rng
module Stats = Apiary_engine.Stats
module Kernel = Apiary_core.Kernel
module Kv = Apiary_accel.Kv
module Client = Apiary_net.Client
module Netproto = Apiary_net.Netproto
module Board = Apiary_apps.Board

let keyspace = 500
let value_bytes = 128

let workload rng =
  let value = Bytes.make value_bytes 'v' in
  let gen _n =
    let key = Printf.sprintf "key%05d" (Rng.zipf rng ~n:keyspace ~theta:0.99) in
    if Rng.chance rng 0.1 then Kv.Proto.encode_req (Kv.Proto.Put (key, value))
    else Kv.Proto.encode_req (Kv.Proto.Get key)
  in
  { Client.service = "kv"; op = Kv.Proto.opcode; gen }

let run ~clients ~duration =
  let sim = Sim.create () in
  let board = Board.create sim in
  let kv_behavior, kv_stats =
    Kv.behavior ~store_bytes:(1 lsl 20) ()
  in
  (match Board.user_tiles board with
  | t :: _ -> Kernel.install board.Board.kernel ~tile:t kv_behavior
  | [] -> failwith "no tiles");
  let rng = Rng.create ~seed:7 in
  let cs =
    List.init clients (fun i ->
        let c = Board.client board ~port:(i + 1) () in
        let r = Rng.split rng in
        Sim.after sim (3_000 + (i * 97)) (fun () ->
            Client.start_closed c (workload r) ~concurrency:4);
        c)
  in
  Sim.run_for sim duration;
  List.iter Client.stop cs;
  let completed = List.fold_left (fun a c -> a + Client.completed c) 0 cs in
  let lat = Stats.Histogram.create "all" in
  List.iter (fun c -> Stats.Histogram.merge_into ~src:(Client.latency c) ~dst:lat) cs;
  let seconds = float_of_int duration *. 4e-9 in
  Printf.printf
    "%2d client(s): %8.0f ops/s   p50=%-6d p99=%-6d cycles   hit-rate %.2f\n"
    clients
    (float_of_int completed /. seconds)
    (Stats.Histogram.percentile lat 50.0)
    (Stats.Histogram.percentile lat 99.0)
    (1.0
    -. float_of_int kv_stats.Kv.misses
       /. float_of_int (max 1 kv_stats.Kv.gets))

let () =
  Printf.printf
    "KV store on a direct-attached FPGA — YCSB-ish zipf(0.99) reads 90%% / writes 10%%\n\n";
  List.iter (fun clients -> run ~clients ~duration:300_000) [ 1; 2; 4; 6 ]
