(* The paper's §2 scenario: a video-processing service on a shared,
   direct-attached FPGA. Clients stream raw chunks over the datacenter
   network; on the board an encoding stage composes with a third-party
   compression accelerator over capability-checked NoC connections; the
   compressed encodings flow back and are verified end to end.

   Run with:  dune exec examples/video_pipeline.exe

   The second half replicates the encoder behind a load balancer (§4.1
   scale-out) and shows the throughput gain. *)

module Sim = Apiary_engine.Sim
module Rng = Apiary_engine.Rng
module Stats = Apiary_engine.Stats
module Kernel = Apiary_core.Kernel
module Accels = Apiary_accel.Accels
module Client = Apiary_net.Client
module Netproto = Apiary_net.Netproto
module Board = Apiary_apps.Board
module Video_pipeline = Apiary_apps.Video_pipeline

let run ~replicas ~duration =
  let sim = Sim.create () in
  let board = Board.create sim in
  let tiles = Board.user_tiles board in
  (match (replicas, tiles) with
  | 1, enc :: comp :: _ ->
    Video_pipeline.install board.Board.kernel ~encoder_tile:enc ~compressor_tile:comp
  | n, lb :: comp :: rest when List.length rest >= n ->
    Video_pipeline.install_replicated board.Board.kernel ~lb_tile:lb
      ~encoder_tiles:(List.filteri (fun i _ -> i < n) rest)
      ~compressor_tile:comp
  | _ -> failwith "not enough tiles");
  let rng = Rng.create ~seed:42 in
  let chunk = Rng.bytes_compressible rng 1024 ~redundancy:0.85 in
  let client = Board.client board ~port:1 ~gbps:100.0 () in
  let verified = ref 0 and corrupt = ref 0 and bytes_out = ref 0 in
  Client.on_response client (fun rsp ->
      if rsp.Netproto.status = Netproto.Ok_resp then begin
        bytes_out := !bytes_out + Bytes.length rsp.Netproto.body;
        match Video_pipeline.verify_output ~original:chunk rsp.Netproto.body with
        | Ok () -> incr verified
        | Error _ -> incr corrupt
      end);
  Sim.after sim 3_000 (fun () ->
      Client.start_closed client
        { Client.service = "vpipe"; op = Accels.op_encode; gen = (fun _ -> chunk) }
        ~concurrency:8);
  Sim.run_for sim duration;
  Client.stop client;
  let seconds = float_of_int duration *. 4e-9 in
  Printf.printf
    "%d replica(s): %5d chunks verified (%d corrupt), %.1f Mchunk-bytes/s, p50=%d p99=%d cycles\n"
    replicas !verified !corrupt
    (float_of_int (!verified * Bytes.length chunk) /. seconds /. 1e6)
    (Stats.Histogram.percentile (Client.latency client) 50.0)
    (Stats.Histogram.percentile (Client.latency client) 99.0);
  !verified

let () =
  Printf.printf "video pipeline on a direct-attached FPGA (1024 B chunks)\n\n";
  let base = run ~replicas:1 ~duration:400_000 in
  let scaled = run ~replicas:4 ~duration:400_000 in
  Printf.printf "\nscale-out speedup with 4 encoder replicas: %.2fx\n"
    (float_of_int scaled /. float_of_int base)
