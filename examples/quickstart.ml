(* Quickstart: boot an Apiary board, install an accelerator, talk to it.

   Run with:  dune exec examples/quickstart.exe

   This walks the minimal lifecycle: create a simulator and kernel,
   program a tile with a behavior that registers a service, program a
   second tile that connects and sends requests, and watch the message
   trace of the whole exchange. *)

module Sim = Apiary_engine.Sim
module Kernel = Apiary_core.Kernel
module Shell = Apiary_core.Shell
module Message = Apiary_core.Message
module Trace = Apiary_core.Trace

let () =
  let sim = Sim.create () in
  let kernel = Kernel.create sim Kernel.default_config in
  Trace.set_enabled (Kernel.trace kernel) true;

  (* A tiny accelerator: upper-cases whatever it receives. *)
  let upcaser =
    Shell.behavior "upcaser"
      ~on_boot:(fun sh -> Shell.register_service sh "upcase")
      ~on_message:(fun sh msg ->
        match msg.Message.kind with
        | Message.Data _ ->
          (* Model 1 cycle of compute per 16 bytes. *)
          Shell.busy sh (Bytes.length msg.Message.payload / 16);
          Shell.respond sh msg ~opcode:1
            (Bytes.map
               (fun c -> Char.uppercase_ascii c)
               msg.Message.payload)
        | _ -> ())
  in
  Kernel.install kernel ~tile:1 upcaser;

  (* A client tile: connect by service name, fire three requests. *)
  let client =
    Shell.behavior "client" ~on_boot:(fun sh ->
        (* Give the service time to boot and register. *)
        Sim.after (Shell.sim sh) 500 (fun () ->
            Shell.connect sh ~service:"upcase" (fun r ->
                match r with
                | Error e ->
                  Printf.printf "connect failed: %s\n" (Shell.rpc_error_to_string e)
                | Ok conn ->
                  List.iter
                    (fun text ->
                      Shell.request sh conn ~opcode:1 (Bytes.of_string text)
                        (fun r ->
                          match r with
                          | Ok reply ->
                            Printf.printf "[cycle %6d] %-24s -> %s\n"
                              (Shell.now sh) text
                              (Bytes.to_string reply.Message.payload)
                          | Error e ->
                            Printf.printf "request failed: %s\n"
                              (Shell.rpc_error_to_string e)))
                    [ "hello, apiary"; "fpga operating systems"; "bees!" ])))
  in
  Kernel.install kernel ~tile:6 client;

  Sim.run_for sim 10_000;

  Printf.printf "\n--- message trace (tile 6 egress) ---\n";
  List.iter
    (fun (e : Trace.event) ->
      Printf.printf "[%6d] tile%-2d %-4s %s\n" e.Trace.cycle e.Trace.tile
        (Trace.dir_to_string e.Trace.dir) e.Trace.detail)
    (Trace.find (Kernel.trace kernel) ~tile:6 ~dir:Trace.Egress ());
  Printf.printf "\ntotal messages on fabric: %d, denied: %d\n"
    (Kernel.total_msgs kernel) (Kernel.total_denied kernel)
