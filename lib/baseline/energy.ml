type profile = {
  cpu_core_watts : float;
  fpga_dynamic_watts : float;
  pcie_pj_per_byte : float;
  nic_pj_per_byte : float;
  cycle_seconds : float;
}

let default_profile =
  {
    cpu_core_watts = 12.0;
    fpga_dynamic_watts = 12.0;
    pcie_pj_per_byte = 15.0;
    nic_pj_per_byte = 5.0;
    cycle_seconds = 4e-9;
  }

let joules_to_uj j = j *. 1e6
let pj_to_uj p = p *. 1e-6

let hosted_uj ?(profile = default_profile) ~cpu_cycles ~accel_cycles ~pcie_bytes
    ~net_bytes () =
  let cpu = profile.cpu_core_watts *. float_of_int cpu_cycles *. profile.cycle_seconds in
  let fpga =
    profile.fpga_dynamic_watts *. float_of_int accel_cycles *. profile.cycle_seconds
  in
  let pcie = pj_to_uj (profile.pcie_pj_per_byte *. float_of_int pcie_bytes) in
  let nic = pj_to_uj (profile.nic_pj_per_byte *. float_of_int net_bytes) in
  joules_to_uj (cpu +. fpga) +. pcie +. nic

let direct_uj ?(profile = default_profile) ~fpga_cycles ~net_bytes () =
  let fpga =
    profile.fpga_dynamic_watts *. float_of_int fpga_cycles *. profile.cycle_seconds
  in
  let nic = pj_to_uj (profile.nic_pj_per_byte *. float_of_int net_bytes) in
  joules_to_uj fpga +. nic
