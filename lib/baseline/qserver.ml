module Sim = Apiary_engine.Sim
module Stats = Apiary_engine.Stats

type t = {
  sim : Sim.t;
  free_at : int array;  (* per server *)
  mutable busy : int;
  mutable done_ : int;
  wait : Stats.Histogram.t;
}

let create sim ~servers name =
  assert (servers > 0);
  {
    sim;
    free_at = Array.make servers 0;
    busy = 0;
    done_ = 0;
    wait = Stats.Histogram.create (name ^ ".wait");
  }

let submit t ~cycles cb =
  assert (cycles >= 0);
  let now = Sim.now t.sim in
  (* Earliest-free server. *)
  let best = ref 0 in
  for i = 1 to Array.length t.free_at - 1 do
    if t.free_at.(i) < t.free_at.(!best) then best := i
  done;
  let start = max now t.free_at.(!best) in
  let finish = start + cycles in
  t.free_at.(!best) <- finish;
  t.busy <- t.busy + cycles;
  Stats.Histogram.record t.wait (start - now);
  Sim.after t.sim (max 1 (finish - now)) (fun () ->
      t.done_ <- t.done_ + 1;
      cb ())

let busy_cycles t = t.busy
let completed t = t.done_
let queue_wait t = t.wait
