type cost = {
  ports_per_tile : int;
  wires_per_tile : int;
  total_wires : int;
  rewire_on_add_service : int;
}

let direct ~tiles ~services ~bus_bits =
  (* One request+response port pair per service per tile. *)
  let ports = 2 * services in
  let wires = ports * bus_bits in
  {
    ports_per_tile = ports;
    wires_per_tile = wires;
    total_wires = tiles * wires;
    (* Adding a service touches every tile plus the new service's mux. *)
    rewire_on_add_service = tiles + 1;
  }

let noc ~tiles ~services:_ ~flit_bits =
  (* One local port (in+out) per tile; 4 neighbour links (in+out), shared
     across every service conversation. Mesh interior upper bound. *)
  let ports = 2 in
  let wires = (ports + 8) * flit_bits in
  {
    ports_per_tile = ports;
    wires_per_tile = wires;
    total_wires = tiles * wires;
    rewire_on_add_service = 0;
  }
