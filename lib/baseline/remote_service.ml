module Sim = Apiary_engine.Sim
module Frame = Apiary_net.Frame
module Mac = Apiary_net.Mac
module Netproto = Apiary_net.Netproto

type t = {
  sim : Sim.t;
  mac : Mac.t;
  my_mac : int;
  nic_cycles : int;
  cpu : Qserver.t;
  service_cycles : int;
  handler : service:string -> op:int -> bytes -> bytes;
  mutable n_served : int;
}

let create sim ~mac ~my_mac ?(nic_cycles = 500) ?(cores = 2)
    ?(service_cycles = 250) ~handler () =
  let t =
    {
      sim;
      mac;
      my_mac;
      nic_cycles;
      cpu = Qserver.create sim ~servers:cores "remote.cpu";
      service_cycles;
      handler;
      n_served = 0;
    }
  in
  Mac.set_rx mac (fun f ->
      match Netproto.decode_request f.Frame.payload with
      | Error _ -> ()
      | Ok req ->
        Sim.after t.sim t.nic_cycles (fun () ->
            Qserver.submit t.cpu ~cycles:t.service_cycles (fun () ->
                let body =
                  t.handler ~service:req.Netproto.service ~op:req.Netproto.op
                    req.Netproto.body
                in
                Sim.after t.sim t.nic_cycles (fun () ->
                    t.n_served <- t.n_served + 1;
                    let rsp =
                      {
                        Netproto.rsp_id = req.Netproto.req_id;
                        status = Netproto.Ok_resp;
                        body;
                      }
                    in
                    ignore
                      (Mac.send t.mac
                         (Frame.make ~dst:f.Frame.src ~src:t.my_mac
                            (Netproto.encode_response rsp)))))));
  t

let served t = t.n_served
let cpu_busy_cycles t = Qserver.busy_cycles t.cpu
