(** FCFS multi-server queueing resource (CPU cores, DMA engines,
    accelerator slots) for the host-mediated baseline. *)

module Sim := Apiary_engine.Sim

type t

val create : Sim.t -> servers:int -> string -> t

val submit : t -> cycles:int -> (unit -> unit) -> unit
(** Enqueue a job needing [cycles] of service; the callback fires at
    completion. Jobs start in submission order as servers free up. *)

val busy_cycles : t -> int
(** Total service cycles consumed (for utilization/energy accounting). *)

val completed : t -> int

val queue_wait : t -> Apiary_engine.Stats.Histogram.t
(** Cycles jobs spent waiting before service began. *)
