(** Energy accounting for the direct-attached vs host-mediated comparison
    (paper §1: bypassing the CPU "further reduces energy").

    The model charges active power over measured busy time plus per-byte
    transfer energy. Constants are representative published figures:
    a server core ≈ 12 W busy, an FPGA SmartNIC-class board ≈ 30 W with
    ~40% attributable to dynamic activity, PCIe ≈ 15 pJ/bit moved, NIC
    processing ≈ 5 pJ/bit. Absolute joules matter less than the shape:
    which path burns CPU-seconds per request. *)

type profile = {
  cpu_core_watts : float;
  fpga_dynamic_watts : float;
  pcie_pj_per_byte : float;
  nic_pj_per_byte : float;
  cycle_seconds : float;  (** 4e-9 at 250 MHz *)
}

val default_profile : profile

val hosted_uj :
  ?profile:profile -> cpu_cycles:int -> accel_cycles:int -> pcie_bytes:int ->
  net_bytes:int -> unit -> float
(** Microjoules for a batch of hosted-path requests given measured busy
    cycles and bytes moved. *)

val direct_uj :
  ?profile:profile -> fpga_cycles:int -> net_bytes:int -> unit -> float
(** Microjoules for the direct-attached path: FPGA busy time (monitors +
    NoC + accelerator) and network bytes; no CPU, no PCIe. *)
