(** The host-mediated baseline (Coyote/AmorphOS deployment model):
    the FPGA accelerator hangs off a server CPU, and every request
    traverses NIC → host kernel/user software → PCIe → accelerator →
    PCIe → host → NIC.

    The server attaches to the same switch fabric and speaks the same
    {!Apiary_net.Netproto} envelope as a direct-attached Apiary board, so
    the identical client drives both systems (experiment E2). Timing
    constants default to published numbers converted to 250 MHz fabric
    cycles (4 ns each): ~2 µs interrupt-driven NIC+kernel path, ~0.9 µs
    PCIe DMA latency, PCIe3 x16 streaming bandwidth. *)

module Sim := Apiary_engine.Sim
module Stats := Apiary_engine.Stats

type config = {
  nic_cycles : int;  (** NIC + IRQ + kernel network stack, per direction. *)
  host_cores : int;
  host_service_cycles : int;  (** user-space dispatch/software path. *)
  host_per_byte_x16 : int;  (** copy cost per 16 bytes. *)
  pcie_lat_cycles : int;  (** DMA doorbell-to-data latency, per direction. *)
  pcie_bytes_per_cycle : int;  (** PCIe3 x16 ≈ 64 B/cycle at 250 MHz. *)
  accel_slots : int;  (** concurrent requests the accelerator overlaps. *)
}

val default_config : config

type t

val create :
  Sim.t -> config -> mac:Apiary_net.Mac.t -> my_mac:int ->
  accel_cycles:(int -> int) -> handler:(int -> bytes -> bytes) -> t
(** [accel_cycles body_len] is the accelerator compute time (use the same
    cost model as the FPGA-resident accelerator for a fair comparison);
    [handler op body] computes the actual response. *)

val served : t -> int

val host_busy_cycles : t -> int
(** Total CPU busy time — the energy model's main input. *)

val accel_busy_cycles : t -> int
val host_queue_wait : t -> Stats.Histogram.t
