module Mac := Apiary_net.Mac
module Sim := Apiary_engine.Sim

(** A service hosted on a remote CPU, reachable over the datacenter
    network — the paper's §6-Q3 escape hatch: "take advantage of the
    network capabilities of Apiary and place the service on any remote
    CPU, maintaining the ability to use an FPGA independent of its
    on-node CPU".

    Unlike {!Hosted}, there is no PCIe or accelerator stage: requests hit
    the NIC, cross the kernel, run a software handler and return. Used by
    experiment E11 to price remoting an OS function vs implementing it in
    fabric. *)

type t

val create :
  Sim.t -> mac:Mac.t -> my_mac:int -> ?nic_cycles:int -> ?cores:int ->
  ?service_cycles:int ->
  handler:(service:string -> op:int -> bytes -> bytes) -> unit -> t
(** Defaults: 500-cycle (2 µs) NIC+kernel path per direction, 2 cores,
    250-cycle (1 µs) handler time. *)

val served : t -> int
val cpu_busy_cycles : t -> int
