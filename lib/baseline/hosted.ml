module Sim = Apiary_engine.Sim
module Stats = Apiary_engine.Stats
module Frame = Apiary_net.Frame
module Mac = Apiary_net.Mac
module Netproto = Apiary_net.Netproto

type config = {
  nic_cycles : int;
  host_cores : int;
  host_service_cycles : int;
  host_per_byte_x16 : int;
  pcie_lat_cycles : int;
  pcie_bytes_per_cycle : int;
  accel_slots : int;
}

(* 250 MHz fabric: 1 us = 250 cycles. *)
let default_config =
  {
    nic_cycles = 500;  (* ~2 us interrupt + kernel path *)
    host_cores = 2;
    host_service_cycles = 375;  (* ~1.5 us software dispatch *)
    host_per_byte_x16 = 1;
    pcie_lat_cycles = 225;  (* ~0.9 us DMA *)
    pcie_bytes_per_cycle = 64;
    accel_slots = 1;
  }

type t = {
  sim : Sim.t;
  cfg : config;
  mac : Mac.t;
  my_mac : int;
  accel_cycles : int -> int;
  handler : int -> bytes -> bytes;
  cpu : Qserver.t;
  accel : Qserver.t;
  mutable pcie_free_at : int;
  mutable n_served : int;
}

let pcie_transfer t bytes cb =
  (* Shared DMA engine: latency plus serialized bandwidth. *)
  let now = Sim.now t.sim in
  let ser = max 1 (bytes / t.cfg.pcie_bytes_per_cycle) in
  let start = max now t.pcie_free_at in
  t.pcie_free_at <- start + ser;
  Sim.after t.sim (start + ser + t.cfg.pcie_lat_cycles - now) cb

let host_cost t bytes =
  t.cfg.host_service_cycles + (t.cfg.host_per_byte_x16 * (bytes / 16))

let handle_request t (f : Frame.t) (req : Netproto.request) =
  let blen = Bytes.length req.Netproto.body in
  (* NIC + kernel ingress *)
  Sim.after t.sim t.cfg.nic_cycles (fun () ->
      (* Host software dispatch *)
      Qserver.submit t.cpu ~cycles:(host_cost t blen) (fun () ->
          (* DMA to the accelerator *)
          pcie_transfer t blen (fun () ->
              Qserver.submit t.accel ~cycles:(t.accel_cycles blen) (fun () ->
                  let body = t.handler req.Netproto.op req.Netproto.body in
                  (* DMA back *)
                  pcie_transfer t (Bytes.length body) (fun () ->
                      (* Host completion + NIC egress *)
                      Qserver.submit t.cpu
                        ~cycles:(host_cost t (Bytes.length body)) (fun () ->
                          Sim.after t.sim t.cfg.nic_cycles (fun () ->
                              t.n_served <- t.n_served + 1;
                              let rsp =
                                {
                                  Netproto.rsp_id = req.Netproto.req_id;
                                  status = Netproto.Ok_resp;
                                  body;
                                }
                              in
                              ignore
                                (Mac.send t.mac
                                   (Frame.make ~dst:f.Frame.src ~src:t.my_mac
                                      (Netproto.encode_response rsp))))))))))

let create sim cfg ~mac ~my_mac ~accel_cycles ~handler =
  let t =
    {
      sim;
      cfg;
      mac;
      my_mac;
      accel_cycles;
      handler;
      cpu = Qserver.create sim ~servers:cfg.host_cores "host.cpu";
      accel = Qserver.create sim ~servers:cfg.accel_slots "host.accel";
      pcie_free_at = 0;
      n_served = 0;
    }
  in
  Mac.set_rx mac (fun f ->
      match Netproto.decode_request f.Frame.payload with
      | Ok req -> handle_request t f req
      | Error _ -> ());
  t

let served t = t.n_served
let host_busy_cycles t = Qserver.busy_cycles t.cpu
let accel_busy_cycles t = Qserver.busy_cycles t.accel
let host_queue_wait t = Qserver.queue_wait t.cpu
