(** Wiring-scalability model of the pre-NoC composition style (paper
    §4.3): each service an accelerator uses gets its own set of module
    ports and dedicated wires, so physical interfaces grow with the
    service count — versus Apiary's single NoC port where the destination
    is a message field.

    Pure combinational accounting; used by the E3 ablation table. *)

type cost = {
  ports_per_tile : int;
  wires_per_tile : int;
  total_wires : int;
  rewire_on_add_service : int;
      (** Interfaces that must change when one service is added. *)
}

val direct : tiles:int -> services:int -> bus_bits:int -> cost
(** Every tile wired point-to-point to every service. *)

val noc : tiles:int -> services:int -> flit_bits:int -> cost
(** One NoC port per tile; mesh links between neighbours; adding a
    service changes no physical interface. *)
