(** Binary wire codec for Apiary messages.

    The simulator moves messages as OCaml values for speed, but the codec
    defines the concrete bit-level interface a hardware monitor would
    implement, gives honest size accounting, and is exercised by roundtrip
    property tests and the serialization microbenchmarks. *)

val encode : Message.t -> bytes

val decode : bytes -> (Message.t, string) result
(** Inverse of {!encode}. Fails (rather than raising) on truncated or
    corrupt input — malformed network input must never crash the OS. *)

val encoded_size : Message.t -> int
(** [Bytes.length (encode m)], without building the buffer. *)
