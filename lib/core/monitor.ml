module Sim = Apiary_engine.Sim
module Fifo = Apiary_engine.Fifo
module Rng = Apiary_engine.Rng
module Stats = Apiary_engine.Stats
module Span = Apiary_obs.Span
module Perf = Apiary_obs.Perf
module Flight = Apiary_obs.Flight
module Store = Apiary_cap.Store
module Rights = Apiary_cap.Rights

type config = {
  enforce : bool;
  check_latency : int;
  rate : float;
  burst : int;
  egress_capacity : int;
  egress_classes : int;
  rpc_timeout : int;
  watchdog : int;
  cap_capacity : int;
}

let default_config =
  {
    enforce = true;
    check_latency = 2;
    rate = 4.0;
    burst = 512;
    egress_capacity = 64;
    egress_classes = 1;
    rpc_timeout = 50_000;
    watchdog = 0;
    cap_capacity = 256;
  }

type state = Running | Draining of string | Offline

let state_to_string = function
  | Running -> "running"
  | Draining r -> Printf.sprintf "draining(%s)" r
  | Offline -> "offline"

type rpc_error = Timeout | Nacked of string | Denied of string

let rpc_error_to_string = function
  | Timeout -> "timeout"
  | Nacked r -> Printf.sprintf "nacked: %s" r
  | Denied r -> Printf.sprintf "denied: %s" r

type reply_cb = (Message.t, rpc_error) result -> unit

type conn = { cap : Store.handle; peer : Message.addr; service : string }
type mem_handle = { mcap : Store.handle; base : int; len : int }

(* What a tile's connect policy may answer: accept, accept with a
   per-connection rate limit (enforced by the requester's own monitor —
   monitors are mutually trusted hardware), or refuse. *)
type grant = Accept | Accept_limited of { rate : float; burst : int } | Refuse

(* Egress entries remember which authority the send claims, so the check
   stage knows what to verify. *)
type egress_entry =
  | E_control of Message.t  (* monitor-generated protocol traffic *)
  | E_conn of Message.t * Store.handle  (* data over a connection *)
  | E_reply of Message.t  (* response to a delivered request *)
  | E_mem of Message.t * Store.handle  (* memory operation *)
  | E_raw of Message.t  (* uncapabilitied attempt *)

let entry_msg = function
  | E_control m | E_conn (m, _) | E_reply m | E_mem (m, _) | E_raw m -> m

type behavior = {
  bname : string;
  on_boot : t -> unit;
  on_message : t -> Message.t -> unit;
  on_tick : (t -> unit) option;
}

and fabric = {
  f_inject : Message.t -> unit;
  f_flits : Message.t -> int;
  f_store_of : int -> Store.t;
  f_monitor_of : int -> t;
  f_name_addr : Message.addr;
  f_mem_addr : Message.addr;
  f_on_fault : int -> string -> unit;
}

and t = {
  m_sim : Sim.t;
  m_tile : int;
  cfg : config;
  fabric : fabric;
  trace : Trace.t;
  privileged : bool;
  m_rng : Rng.t;
  mutable m_store : Store.t;
  mutable m_state : state;
  egress : egress_entry Fifo.t array;  (* one queue per class *)
  bucket : Rate_limiter.t;
  mutable next_corr : int;
  pending : (int, int * reply_cb) Hashtbl.t;  (* corr -> (peer tile, cb) *)
  rx : Message.t Queue.t;
  mutable behavior : behavior;
  mutable busy_until : int;
  mutable connect_policy : Message.addr -> grant;
  conn_buckets : (Store.handle, Rate_limiter.t) Hashtbl.t;
  mutable on_error : string -> unit;
  reply_ok : (int * int, int) Hashtbl.t;  (* (peer tile, corr) -> windows *)
  mutable granted : (Store.t * Store.handle) list;
  perf : Perf.t;  (* the tile's hardware counter block *)
  flight : Flight.t;  (* board flight recorder (shared, owned by kernel) *)
  lat_added : Stats.Histogram.t;
  mutable hang_cycles : int;
  mutable last_progress : int;
      (* last cycle this monitor moved a message (egress admit or rx
         delivery) — what the health layer's heartbeat deadline watches *)
  mutable m_handle : Sim.handle;
      (* our ticker in the activity-set scheduler, re-armed on ingress,
         egress visibility and reset *)
}

let idle_behavior =
  {
    bname = "idle";
    on_boot = (fun _ -> ());
    on_message = (fun _ _ -> ());
    on_tick = None;
  }

let tile t = t.m_tile
let sim t = t.m_sim
let state t = t.m_state
let store t = t.m_store
let behavior_name t = t.behavior.bname
let self_addr t = { Message.tile = t.m_tile; ep = Message.app_ep }
let control_addr t = { Message.tile = t.m_tile; ep = Message.control_ep }
let rng t = t.m_rng
let now t = Sim.now t.m_sim

let tracef t dir detail =
  Trace.record t.trace ~cycle:(now t) ~tile:t.m_tile ~dir ~detail ()

(* Board id for Span events: the trace's board stamp (set by Node for
   rack members), or -1 for a free-standing board. *)
let obs_board t = Option.value ~default:(-1) (Trace.board t.trace)

let obs_mark t ?corr ?args name =
  if Span.on () then
    Span.instant ~board:(obs_board t) ?corr ?args ~cat:"monitor" ~name
      ~track:t.m_tile ~ts:(now t) ();
  (* Same marks feed the board flight recorder, so a postmortem has the
     admit/deny/drop/fault sequence even when span capture is off. *)
  Flight.record t.flight ~ts:(now t) ~tile:t.m_tile ~cat:"monitor" ~name ?corr
    ?args ()

let trace_msg t dir m =
  Trace.record_lazy t.trace ~corr:m.Message.corr ~cycle:(now t) ~tile:t.m_tile
    ~dir (fun () -> Message.summary m)

let log t s = tracef t Trace.Ingress ("note: " ^ s)

(* ------------------------------------------------------------------ *)
(* Egress *)

let fail_pending t corr err =
  match Hashtbl.find_opt t.pending corr with
  | None -> ()
  | Some (_, cb) ->
    Hashtbl.remove t.pending corr;
    cb (Error err)

let egress_class t (m : Message.t) =
  let n = Array.length t.egress in
  if m.Message.cls >= n then n - 1 else if m.Message.cls < 0 then 0 else m.Message.cls

let enqueue t entry =
  let m = entry_msg entry in
  (* Every shell call that reaches the egress path is one monitor
     "syscall" — the in-band measure of how hard a tile works its
     monitor. *)
  Perf.incr t.perf Perf.syscalls;
  if not (Fifo.push t.egress.(egress_class t m) entry) then begin
    Perf.incr t.perf Perf.drops;
    trace_msg t Trace.Dropped m;
    obs_mark t ~corr:m.Message.corr
      ~args:[ ("reason", "egress queue full") ]
      "drop";
    if m.Message.corr > 0 && not m.Message.is_reply then
      fail_pending t m.Message.corr (Denied "egress queue full");
    t.on_error "egress queue full"
  end

(* Validate an egress entry against the tile's capability table. *)
let check t entry =
  if not t.cfg.enforce then Ok ()
  else
    match entry with
    | E_control _ -> Ok ()
    | E_conn (m, h) ->
      (match
         Store.check_send t.m_store h ~tile:m.Message.dst.Message.tile
           ~endpoint:m.Message.dst.Message.ep
       with
      | Ok () -> Ok ()
      | Error e -> Error (Printf.sprintf "send cap: %s" (Store.error_to_string e)))
    | E_reply m ->
      (* Verify only — the one-shot window is consumed at the commit
         point below, so a rate-stalled reply is not denied on retry. *)
      let key = (m.Message.dst.Message.tile, m.Message.corr) in
      (match Hashtbl.find_opt t.reply_ok key with
      | Some n when n > 0 -> Ok ()
      | Some _ | None -> Error "no reply window")
    | E_mem (m, h) ->
      if m.Message.dst <> t.fabric.f_mem_addr then Error "mem op to non-memory tile"
      else
        let verdict =
          match m.Message.kind with
          | Message.Control (Message.Mem_read_req { addr; len }) ->
            Store.check_mem t.m_store h ~addr ~len ~write:false
          | Message.Control (Message.Mem_write_req { addr }) ->
            Store.check_mem t.m_store h ~addr
              ~len:(Bytes.length m.Message.payload)
              ~write:true
          | _ -> Error Store.Wrong_type
        in
        (match verdict with
        | Ok () -> Ok ()
        | Error e -> Error (Printf.sprintf "mem cap: %s" (Store.error_to_string e)))
    | E_raw _ -> Error "no capability for destination"

(* Highest class with a pending message wins the egress slot, so a
   tile's own bulk traffic cannot head-of-line block its priority
   replies (the per-class egress extension of E9). *)
let pick_egress t =
  let rec go c = if c < 0 then None else
      match Fifo.peek t.egress.(c) with
      | Some e -> Some (t.egress.(c), e)
      | None -> go (c - 1)
  in
  go (Array.length t.egress - 1)

let process_egress t =
  match pick_egress t with
  | None -> ()
  | Some (q, entry) ->
    let m = entry_msg entry in
    (match check t entry with
    | Error reason ->
      ignore (Fifo.pop q);
      Perf.incr t.perf Perf.denials;
      trace_msg t Trace.Denied m;
      obs_mark t ~corr:m.Message.corr ~args:[ ("reason", reason) ] "deny";
      if m.Message.corr > 0 && not m.Message.is_reply then
        fail_pending t m.Message.corr (Denied reason);
      t.on_error reason
    | Ok () ->
      let cost = t.fabric.f_flits m in
      let conn_bucket =
        if not t.cfg.enforce then None
        else
          match entry with
          | E_conn (_, h) -> Hashtbl.find_opt t.conn_buckets h
          | E_control _ | E_reply _ | E_mem _ | E_raw _ -> None
      in
      Rate_limiter.advance t.bucket ~now:(now t);
      Option.iter (fun b -> Rate_limiter.advance b ~now:(now t)) conn_bucket;
      let tile_ok = (not t.cfg.enforce) || Rate_limiter.would_admit t.bucket cost in
      let conn_ok =
        match conn_bucket with
        | None -> true
        | Some b -> Rate_limiter.would_admit b cost
      in
      if not (tile_ok && conn_ok) then begin
        (* Head-of-line stall (within this class) until the dry bucket
           refills — the policing that protects the fabric and the peer. *)
        if not tile_ok then ignore (Rate_limiter.try_take t.bucket cost);
        if not conn_ok then
          Option.iter (fun b -> ignore (Rate_limiter.try_take b cost)) conn_bucket
      end
      else begin
        if t.cfg.enforce then Rate_limiter.take t.bucket cost;
        Option.iter (fun b -> Rate_limiter.take b cost) conn_bucket;
        (match entry with
        | E_reply m when t.cfg.enforce ->
          let key = (m.Message.dst.Message.tile, m.Message.corr) in
          (match Hashtbl.find_opt t.reply_ok key with
          | Some 1 -> Hashtbl.remove t.reply_ok key
          | Some n -> Hashtbl.replace t.reply_ok key (n - 1)
          | None -> ())
        | _ -> ());
        ignore (Fifo.pop q);
        Perf.incr t.perf Perf.msgs_out;
        t.last_progress <- now t;
        trace_msg t Trace.Egress m;
        obs_mark t ~corr:m.Message.corr "admit";
        Stats.Histogram.record t.lat_added
          (now t - m.Message.created_at + t.cfg.check_latency);
        if t.cfg.check_latency = 0 then t.fabric.f_inject m
        else Sim.after t.m_sim t.cfg.check_latency (fun () -> t.fabric.f_inject m)
      end)

(* ------------------------------------------------------------------ *)
(* RPC plumbing *)

let fresh_corr t =
  t.next_corr <- t.next_corr + 1;
  t.next_corr

let add_pending t ?timeout corr peer cb =
  (* Every outstanding RPC flows through here; with spans on, the reply
     callback closes a corr-keyed "rpc" span so the whole call (local or
     cross-board) has one parent interval on the caller's track. *)
  let cb =
    if not (Span.on ()) then cb
    else begin
      let sid =
        Span.start ~board:(obs_board t) ~corr
          ~args:[ ("peer", string_of_int peer) ]
          ~cat:"monitor" ~name:"rpc" ~track:t.m_tile ~ts:(now t) ()
      in
      fun r ->
        let status =
          match r with
          | Ok _ -> "ok"
          | Error Timeout -> "timeout"
          | Error (Nacked _) -> "nacked"
          | Error (Denied _) -> "denied"
        in
        Span.finish ~args:[ ("status", status) ] ~ts:(now t) sid;
        cb r
    end
  in
  Hashtbl.replace t.pending corr (peer, cb);
  let timeout = Option.value ~default:t.cfg.rpc_timeout timeout in
  Sim.after t.m_sim timeout (fun () ->
      match Hashtbl.find_opt t.pending corr with
      | Some (_, cb) ->
        Hashtbl.remove t.pending corr;
        cb (Error Timeout)
      | None -> ())

let control_rpc t ?timeout ~(dst : Message.addr) control cb =
  let corr = fresh_corr t in
  let msg =
    Message.make ~src:(control_addr t) ~dst ~kind:(Message.Control control) ~corr
      ~now:(now t) ()
  in
  add_pending t ?timeout corr dst.Message.tile cb;
  enqueue t (E_control msg)

let control_send t ~(dst : Message.addr) ?(corr = 0) ?(is_reply = false)
    ?payload control =
  let msg =
    Message.make ~src:(control_addr t) ~dst ~kind:(Message.Control control) ~corr
      ~is_reply ?payload ~now:(now t) ()
  in
  enqueue t (E_control msg)

(* ------------------------------------------------------------------ *)
(* Shell surface *)

let register_service t name =
  control_rpc t ~dst:t.fabric.f_name_addr (Message.Register { name }) (fun _ -> ())

let lookup t name cb =
  control_rpc t ~dst:t.fabric.f_name_addr (Message.Lookup { name }) (fun r ->
      match r with
      | Ok { Message.kind = Message.Control (Message.Lookup_reply { result; _ }); _ }
        ->
        cb result
      | Ok _ | Error _ -> cb None)

let connect t ~service cb =
  lookup t service (fun r ->
      match r with
      | None -> cb (Error (Denied (Printf.sprintf "no such service: %s" service)))
      | Some addr ->
        let ctl = { Message.tile = addr.Message.tile; ep = Message.control_ep } in
        control_rpc t ~dst:ctl Message.Connect_req (fun r ->
            match r with
            | Ok
                {
                  Message.kind =
                    Message.Control (Message.Connect_ok { cap; rate_millis; burst });
                  _;
                } ->
              (* The grantor may have attached a per-connection rate
                 limit; this monitor honours it on egress. *)
              if rate_millis > 0 then
                Hashtbl.replace t.conn_buckets cap
                  (Rate_limiter.create
                     ~rate:(float_of_int rate_millis /. 1000.0)
                     ~burst:(max 1 burst));
              cb
                (Ok
                   {
                     cap;
                     peer = { Message.tile = addr.Message.tile; ep = Message.app_ep };
                     service;
                   })
            | Ok
                {
                  Message.kind = Message.Control (Message.Connect_denied { reason });
                  _;
                } ->
              cb (Error (Denied reason))
            | Ok _ -> cb (Error (Denied "unexpected connect reply"))
            | Error e -> cb (Error e)))

let send_data t conn ~opcode ?(cls = 0) payload =
  let msg =
    Message.make ~src:(self_addr t) ~dst:conn.peer
      ~kind:(Message.Data { opcode }) ~cls ~payload ~now:(now t) ()
  in
  enqueue t (E_conn (msg, conn.cap))

let request t conn ~opcode ?(cls = 0) payload cb =
  let corr = fresh_corr t in
  let msg =
    Message.make ~src:(self_addr t) ~dst:conn.peer
      ~kind:(Message.Data { opcode }) ~corr ~cls ~payload ~now:(now t) ()
  in
  add_pending t corr conn.peer.Message.tile cb;
  enqueue t (E_conn (msg, conn.cap))

let respond t (req : Message.t) ~opcode ?(cls = 0) payload =
  let msg =
    Message.make ~src:(self_addr t) ~dst:req.Message.src
      ~kind:(Message.Data { opcode }) ~corr:req.Message.corr ~is_reply:true ~cls
      ~payload ~now:(now t) ()
  in
  enqueue t (E_reply msg)

let alloc t ~bytes cb =
  control_rpc t ~dst:t.fabric.f_mem_addr (Message.Alloc_req { bytes }) (fun r ->
      match r with
      | Ok { Message.kind = Message.Control (Message.Alloc_ok { cap; base; bytes }); _ }
        ->
        cb (Ok { mcap = cap; base; len = bytes })
      | Ok { Message.kind = Message.Control (Message.Alloc_denied { reason }); _ } ->
        cb (Error (Denied reason))
      | Ok _ -> cb (Error (Denied "unexpected alloc reply"))
      | Error e -> cb (Error e))

let free t h cb =
  control_rpc t ~dst:t.fabric.f_mem_addr (Message.Free_req { base = h.base })
    (fun r ->
      match r with
      | Ok { Message.kind = Message.Control Message.Free_ok; _ } -> cb (Ok ())
      | Ok { Message.kind = Message.Control (Message.Mem_denied { reason }); _ } ->
        cb (Error (Denied reason))
      | Ok _ -> cb (Error (Denied "unexpected free reply"))
      | Error e -> cb (Error e))

let mem_rpc t control ?payload h cb =
  let corr = fresh_corr t in
  let msg =
    Message.make ~src:(control_addr t) ~dst:t.fabric.f_mem_addr
      ~kind:(Message.Control control) ~corr ?payload ~now:(now t) ()
  in
  add_pending t corr t.fabric.f_mem_addr.Message.tile cb;
  enqueue t (E_mem (msg, h.mcap))

let read_mem t h ~off ~len cb =
  mem_rpc t (Message.Mem_read_req { addr = h.base + off; len }) h (fun r ->
      match r with
      | Ok { Message.kind = Message.Control Message.Mem_read_ok; payload; _ } ->
        cb (Ok payload)
      | Ok { Message.kind = Message.Control (Message.Mem_denied { reason }); _ } ->
        cb (Error (Denied reason))
      | Ok _ -> cb (Error (Denied "unexpected mem reply"))
      | Error e -> cb (Error e))

let write_mem t h ~off data cb =
  mem_rpc t (Message.Mem_write_req { addr = h.base + off }) ~payload:data h
    (fun r ->
      match r with
      | Ok { Message.kind = Message.Control Message.Mem_write_ok; _ } -> cb (Ok ())
      | Ok { Message.kind = Message.Control (Message.Mem_denied { reason }); _ } ->
        cb (Error (Denied reason))
      | Ok _ -> cb (Error (Denied "unexpected mem reply"))
      | Error e -> cb (Error e))

let grant_mem t h ~to_tile ~rights =
  let dst_store = t.fabric.f_store_of to_tile in
  match Store.grant ~src:t.m_store ~dst:dst_store ~parent:h.mcap ~rights with
  | Ok handle ->
    (* Remember the grant so a fault on this tile revokes it. *)
    t.granted <- (dst_store, handle) :: t.granted;
    Ok handle
  | Error e -> Error e

let mem_handle_of_grant t h =
  match Store.inspect t.m_store h with
  | Ok (Store.Segment { base; len }, _) -> Some { mcap = h; base; len }
  | Ok (Store.Endpoint _, _) | Error _ -> None

let busy t n =
  assert (n >= 0);
  t.busy_until <- max (now t) t.busy_until + n

let ping t ?timeout ~tile ~ep cb =
  control_rpc t ?timeout ~dst:{ Message.tile; ep } Message.Ping (fun r ->
      match r with
      | Ok { Message.kind = Message.Control Message.Pong; _ } -> cb true
      | Ok _ | Error _ -> cb false)

let set_connect_policy t p =
  t.connect_policy <- (fun src -> if p src then Accept else Refuse)

let set_grant_policy t p = t.connect_policy <- p
let set_on_error t f = t.on_error <- f

let send_raw t ~dst ~opcode payload =
  let msg =
    Message.make ~src:(self_addr t) ~dst ~kind:(Message.Data { opcode }) ~payload
      ~now:(now t) ()
  in
  enqueue t (E_raw msg)

(* ------------------------------------------------------------------ *)
(* Fault handling *)

let quiesce t ~reason ~notify =
  (match t.m_state with
  | Draining _ | Offline -> ()
  | Running ->
    Perf.incr t.perf Perf.faults;
    tracef t Trace.Fault reason;
    obs_mark t ~args:[ ("reason", reason) ] "fault";
    Array.iter Fifo.clear t.egress;
    Queue.clear t.rx;
    Hashtbl.reset t.reply_ok;
    Hashtbl.reset t.conn_buckets;
    (* Fail every outstanding RPC locally. *)
    let pend = Hashtbl.fold (fun corr (_, cb) acc -> (corr, cb) :: acc) t.pending [] in
    Hashtbl.reset t.pending;
    List.iter (fun (_, cb) -> cb (Error (Nacked reason))) pend;
    (* Revoke send caps we granted to peers and everything derived from
       our own table (shared segments given to other tiles). *)
    List.iter (fun (st, h) -> ignore (Store.revoke st h)) t.granted;
    t.granted <- [];
    ignore (Store.revoke_all t.m_store);
    if notify then t.fabric.f_on_fault t.m_tile reason)

let fault t reason =
  match t.m_state with
  | Draining _ | Offline -> ()
  | Running ->
    quiesce t ~reason ~notify:true;
    t.m_state <- Draining reason

let set_offline t =
  quiesce t ~reason:"reconfiguration" ~notify:false;
  t.m_state <- Offline

let raise_fault t reason = fault t (Printf.sprintf "accelerator fault: %s" reason)

let reset t b =
  t.m_state <- Running;
  (* A parked Draining/Offline monitor must tick again once reprogrammed
     (the new behavior may have on_tick work before any message lands). *)
  Sim.rearm t.m_sim t.m_handle;
  t.behavior <- b;
  t.busy_until <- 0;
  t.hang_cycles <- 0;
  t.last_progress <- now t;
  t.m_store <- Store.create ~capacity:t.cfg.cap_capacity ~tile:t.m_tile ();
  Sim.after t.m_sim 1 (fun () -> if t.behavior == b then b.on_boot t)

(* ------------------------------------------------------------------ *)
(* Ingress *)

let nack t (m : Message.t) reason =
  if m.Message.corr > 0 && not m.Message.is_reply then begin
    Perf.incr t.perf Perf.nacks;
    let reply =
      Message.make ~src:(control_addr t) ~dst:m.Message.src
        ~kind:(Message.Control (Message.Nack { reason }))
        ~corr:m.Message.corr ~is_reply:true ~now:(now t) ()
    in
    (* A draining monitor bypasses its own dead egress queue. *)
    t.fabric.f_inject reply
  end

let handle_connect_req t (m : Message.t) =
  let respond_ctl control =
    control_send t ~dst:m.Message.src ~corr:m.Message.corr ~is_reply:true control
  in
  match t.connect_policy m.Message.src with
  | Refuse -> respond_ctl (Message.Connect_denied { reason = "refused by policy" })
  | (Accept | Accept_limited _) as decision ->
    let requester_store = t.fabric.f_store_of m.Message.src.Message.tile in
    (match
       Store.mint requester_store
         (Store.Endpoint { tile = t.m_tile; endpoint = Message.app_ep })
         Rights.send
     with
    | Ok h ->
      t.granted <- (requester_store, h) :: t.granted;
      let rate_millis, burst =
        match decision with
        | Accept_limited { rate; burst } ->
          (max 1 (int_of_float (rate *. 1000.0)), burst)
        | Accept | Refuse -> (0, 0)
      in
      respond_ctl (Message.Connect_ok { cap = h; rate_millis; burst })
    | Error e ->
      respond_ctl
        (Message.Connect_denied { reason = Store.error_to_string e }))

let deliver_reply t (m : Message.t) =
  match Hashtbl.find_opt t.pending m.Message.corr with
  | Some (peer, cb) when peer = m.Message.src.Message.tile ->
    Hashtbl.remove t.pending m.Message.corr;
    (match m.Message.kind with
    | Message.Control (Message.Nack { reason }) -> cb (Error (Nacked reason))
    | _ -> cb (Ok m))
  | Some _ | None ->
    (* Unsolicited or late reply — count and drop. *)
    Perf.incr t.perf Perf.drops;
    trace_msg t Trace.Dropped m

let ingress t (m : Message.t) =
  match t.m_state with
  | Draining _ ->
    trace_msg t Trace.Dropped m;
    nack t m "fail-stop"
  | Offline -> trace_msg t Trace.Dropped m
  | Running ->
    (* Whatever this message triggers (rx work, a reply continuation, a
       control response), the next tick must see it. *)
    Sim.rearm t.m_sim t.m_handle;
    Perf.incr t.perf Perf.msgs_in;
    trace_msg t Trace.Ingress m;
    if m.Message.is_reply then deliver_reply t m
    else begin
      match m.Message.kind with
      | Message.Control Message.Connect_req -> handle_connect_req t m
      | Message.Control Message.Ping
        when m.Message.dst.Message.ep = Message.control_ep ->
        (* The monitor itself is alive; accelerator liveness is probed at
           the app endpoint. *)
        control_send t ~dst:m.Message.src ~corr:m.Message.corr ~is_reply:true
          Message.Pong
      | _ -> Queue.add m t.rx
    end

(* ------------------------------------------------------------------ *)
(* Shell delivery + tick *)

let deliver_one t =
  if now t >= t.busy_until && not (Queue.is_empty t.rx) then begin
    let m = Queue.take t.rx in
    t.last_progress <- now t;
    (* Open a one-shot reply window for requests. *)
    if m.Message.corr > 0 && not m.Message.is_reply then begin
      let key = (m.Message.src.Message.tile, m.Message.corr) in
      let cur = Option.value ~default:0 (Hashtbl.find_opt t.reply_ok key) in
      Hashtbl.replace t.reply_ok key (cur + 1)
    end;
    match m.Message.kind with
    | Message.Control Message.Ping ->
      (* Shell auto-pong: proves the accelerator is draining its queue. *)
      control_send t ~dst:m.Message.src ~corr:m.Message.corr ~is_reply:true
        Message.Pong
    | _ -> t.behavior.on_message t m
  end

let watchdog t =
  if t.cfg.watchdog > 0 then begin
    if (not (Queue.is_empty t.rx)) && now t < t.busy_until then
      t.hang_cycles <- t.hang_cycles + 1
    else t.hang_cycles <- 0;
    if t.hang_cycles > t.cfg.watchdog then
      fault t
        (Printf.sprintf "watchdog: accelerator hung for %d cycles" t.hang_cycles)
  end

let egress_pending t =
  let n = Array.length t.egress in
  let rec go c = c < n && (not (Fifo.is_empty t.egress.(c)) || go (c + 1)) in
  go 0

let tick t =
  match t.m_state with
  | Draining _ | Offline -> Sim.Idle
  | Running ->
    if
      t.behavior.on_tick = None
      && Queue.is_empty t.rx
      && not (egress_pending t)
    then begin
      (* Nothing queued anywhere: process_egress and deliver_one would be
         no-ops and the watchdog would reset (rx is empty) — mirror that
         reset so skipped cycles are indistinguishable from executed ones.
         Staged-but-uncommitted egress keeps the sim non-quiescent via the
         dirty-FIFO list, so it cannot be jumped over. *)
      if t.cfg.watchdog > 0 then t.hang_cycles <- 0;
      Sim.Idle
    end
    else begin
      process_egress t;
      deliver_one t;
      (match t.behavior.on_tick with
      | Some f when now t >= t.busy_until -> f t
      | Some _ | None -> ());
      watchdog t;
      Sim.Busy
    end

let create ?region sim ~tile cfg fabric ~trace ?flight ~privileged behavior =
  let flight =
    match flight with Some f -> f | None -> Apiary_obs.Flight.create ()
  in
  let t =
    {
      m_sim = sim;
      m_tile = tile;
      cfg;
      fabric;
      trace;
      privileged;
      m_rng = Rng.create ~seed:(0x5EED + tile);
      m_store = Store.create ~capacity:cfg.cap_capacity ~tile ();
      m_state = Running;
      egress =
        Array.init (max 1 cfg.egress_classes) (fun c ->
            Fifo.create sim ~capacity:cfg.egress_capacity
              (Printf.sprintf "mon%d.egress.c%d" tile c));
      bucket =
        (if cfg.enforce then Rate_limiter.create ~rate:cfg.rate ~burst:cfg.burst
         else Rate_limiter.unlimited ());
      next_corr = 0;
      pending = Hashtbl.create 16;
      rx = Queue.create ();
      behavior;
      busy_until = 0;
      connect_policy = (fun _ -> Accept);
      conn_buckets = Hashtbl.create 8;
      on_error = (fun _ -> ());
      reply_ok = Hashtbl.create 16;
      granted = [];
      perf = Perf.create ();
      flight;
      lat_added = Stats.Histogram.create (Printf.sprintf "mon%d.added-latency" tile);
      hang_cycles = 0;
      last_progress = 0;
      m_handle = Sim.no_handle;
    }
  in
  t.m_handle <- Sim.add_clocked_h ~name:"monitor" ?region sim (fun () -> tick t);
  (* Egress entries becoming visible (commit) re-arm us so a parked
     monitor drains sends staged from events or external driver code. *)
  Array.iter (fun q -> Fifo.set_owner q t.m_handle) t.egress;
  (* Capture the behavior now: if the slot is reprogrammed before boot
     fires, the stale boot must not run the new behavior a second time. *)
  Sim.after sim 1 (fun () -> if t.behavior == behavior then behavior.on_boot t);
  t

(* ------------------------------------------------------------------ *)
(* Privileged operations *)

let require_priv t op =
  if not t.privileged then
    failwith (Printf.sprintf "tile %d: %s requires a privileged tile" t.m_tile op)

let priv_mint_segment t ~for_tile ~base ~len ~rights =
  require_priv t "priv_mint_segment";
  let st = t.fabric.f_store_of for_tile in
  match Store.mint st (Store.Segment { base; len }) rights with
  | Ok h -> h
  | Error e -> failwith (Store.error_to_string e)

let priv_revoke t ~for_tile h =
  require_priv t "priv_revoke";
  match Store.revoke (t.fabric.f_store_of for_tile) h with Ok n -> n | Error _ -> 0

let priv_respond_control t (req : Message.t) ?payload control =
  require_priv t "priv_respond_control";
  control_send t ~dst:req.Message.src ~corr:req.Message.corr ~is_reply:true
    ?payload control

(* ------------------------------------------------------------------ *)
(* Stats *)

let perf t = t.perf
let msgs_in t = Perf.read t.perf Perf.msgs_in
let msgs_out t = Perf.read t.perf Perf.msgs_out
let denied t = Perf.read t.perf Perf.denials
let dropped t = Perf.read t.perf Perf.drops
let nacks_sent t = Perf.read t.perf Perf.nacks
let rate_stalls t = Rate_limiter.stalled_msgs t.bucket
let added_latency t = t.lat_added
let rx_backlog t = Queue.length t.rx
let last_progress t = t.last_progress
let has_egress_backlog t = egress_pending t
