(** Apiary's built-in OS services — ordinary tile behaviors occupying
    accelerator slots (paper Figure 1: "an accelerator {e or} Apiary
    service"), distinguished only by running on privileged tiles.

    - the {b name service} maps logical service names to physical tiles,
      realizing the API-level naming the paper moves out of the wires;
    - the {b memory service} owns the DRAM controller and the segment
      allocator and hands out segment capabilities;
    - the {b management service} is the debugging/monitoring plane:
      periodic liveness probes over the message layer. *)

module Dram := Apiary_mem.Dram
module Seg_alloc := Apiary_mem.Seg_alloc

val name_service : unit -> Monitor.behavior * (int -> unit)
(** Returns the behavior and an [unregister tile] function the kernel
    calls when a tile fail-stops or is reconfigured, so stale names do not
    resolve. *)

val mem_service : Dram.t -> Seg_alloc.t -> Monitor.behavior
(** Serves [Alloc_req]/[Free_req] (minting/revoking segment capabilities
    for the requesting tile) and [Mem_read_req]/[Mem_write_req] against
    the DRAM model. Trusts the source monitor's capability check — the
    monitor is the enforcement point; this is what makes the
    enforcement-off baseline (E4) actually corruptible. *)

(** Tile health as seen by the management service. *)
type health = Alive | Suspect of int  (** missed probe count *) | Dead

val health_to_string : health -> string

type mgmt
(** Handle to a running management service's state. *)

val mgmt_service :
  ?period:int -> ?probe_timeout:int -> ?dead_after:int -> tiles:int list ->
  unit -> Monitor.behavior * mgmt
(** Probes each tile's app endpoint every [period] cycles (default 2000).
    A tile missing [dead_after] consecutive probes (default 3) is declared
    {!Dead}. *)

val health_of : mgmt -> int -> health
val dead_tiles : mgmt -> int list
val probes_sent : mgmt -> int
