(** Message-level tracing — the debugging/monitoring support the paper
    names as essential for accelerated microservices (§1, design goal
    "Programmability").

    A bounded ring buffer of per-monitor events; cheap when disabled.
    Events carry the cycle, tile, direction and a one-line message
    summary, plus two identifiers that let a whole call chain be
    reconstructed after the fact:

    - a {b board id}, stamped on every event once {!set_board} is called
      (one kernel = one board; a rack-level cluster assigns each board
      its id), so traces from several boards can be pooled;
    - a {b correlation id} ([corr]), the RPC correlation number carried
      by the message, [0] for uncorrelated events.

    With both, a cross-board call chain (client → board A netsvc →
    switch → board B service) reconstructs from one {!merge}d trace:
    filter by [corr] on each side of the network hop and order by
    cycle. *)

type dir =
  | Egress  (** message admitted toward the NoC *)
  | Ingress  (** message delivered to the tile *)
  | Denied  (** egress blocked by a capability/rights check *)
  | Dropped  (** discarded (draining tile, rate policy) *)
  | Fault  (** fault-handling state change *)

val dir_to_string : dir -> string

type event = {
  cycle : int;
  tile : int;
  dir : dir;
  detail : string;
  board : int option;  (** board id, when the trace belongs to one *)
  corr : int;  (** RPC correlation id; [0] = none *)
}

type t

val create : ?capacity:int -> unit -> t
(** Ring capacity defaults to 4096 events. *)

val set_enabled : t -> bool -> unit
val enabled : t -> bool

val set_board : t -> int -> unit
(** Stamp all subsequently recorded events with this board id. *)

val board : t -> int option

val record :
  t -> ?board:int -> ?corr:int -> cycle:int -> tile:int -> dir:dir ->
  detail:string -> unit -> unit
(** No-op when disabled. Overwrites the oldest event when full. [board]
    defaults to the trace's {!set_board} id (if any); [corr] to [0]. *)

val record_lazy :
  t -> ?board:int -> ?corr:int -> cycle:int -> tile:int -> dir:dir ->
  (unit -> string) -> unit
(** Like {!record} but only builds the detail string when enabled. *)

val events : t -> event list
(** Oldest first. *)

val fold : t -> init:'a -> f:('a -> event -> 'a) -> 'a
(** Fold over retained events, oldest first, without building an
    intermediate list ({!events} and {!find} are defined with it). *)

val count : t -> int
(** Total events recorded since creation (including overwritten ones). *)

val clear : t -> unit

val merge : t list -> event list
(** Pool several traces (e.g. one per board) into a single cycle-ordered
    event list. The sort is stable, so events at the same cycle keep
    their per-trace order. *)

val pp_event : Format.formatter -> event -> unit
val pp : Format.formatter -> t -> unit

val find : t -> ?tile:int -> ?dir:dir -> ?board:int -> ?corr:int -> unit -> event list
(** Filter retained events. *)
