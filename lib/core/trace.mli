(** Message-level tracing — the debugging/monitoring support the paper
    names as essential for accelerated microservices (§1, design goal
    "Programmability").

    A bounded ring buffer of per-monitor events; cheap when disabled.
    Events carry the cycle, tile, direction and a one-line message
    summary, so a whole cross-tile call chain can be reconstructed
    after the fact. *)

type dir =
  | Egress  (** message admitted toward the NoC *)
  | Ingress  (** message delivered to the tile *)
  | Denied  (** egress blocked by a capability/rights check *)
  | Dropped  (** discarded (draining tile, rate policy) *)
  | Fault  (** fault-handling state change *)

val dir_to_string : dir -> string

type event = { cycle : int; tile : int; dir : dir; detail : string }

type t

val create : ?capacity:int -> unit -> t
(** Ring capacity defaults to 4096 events. *)

val set_enabled : t -> bool -> unit
val enabled : t -> bool

val record : t -> cycle:int -> tile:int -> dir:dir -> detail:string -> unit
(** No-op when disabled. Overwrites the oldest event when full. *)

val record_lazy : t -> cycle:int -> tile:int -> dir:dir -> (unit -> string) -> unit
(** Like {!record} but only builds the detail string when enabled. *)

val events : t -> event list
(** Oldest first. *)

val count : t -> int
(** Total events recorded since creation (including overwritten ones). *)

val clear : t -> unit
val pp : Format.formatter -> t -> unit

val find : t -> ?tile:int -> ?dir:dir -> unit -> event list
(** Filter retained events. *)
