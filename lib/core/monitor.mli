(** The per-tile Apiary monitor — the trusted hardware between an
    untrusted accelerator and the NoC (paper §4.1, Figure 1).

    Every message an accelerator sends or receives passes through here.
    The monitor owns the tile's partitioned capability table, resolves
    service names, enforces send/memory capabilities and rate limits on
    egress, implements the microkernel control protocol (naming,
    connections, allocation, health), and realizes the fail-stop fault
    model: a draining tile emits nothing and NACKs peers.

    The accelerator-facing half of this module is re-exported with
    documentation as {!Shell}; accelerator code should only use that
    surface. Functions prefixed [priv_] require the tile to be marked
    privileged (OS services) and raise otherwise. *)

module Sim := Apiary_engine.Sim
module Stats := Apiary_engine.Stats
module Store := Apiary_cap.Store
module Rights := Apiary_cap.Rights

type config = {
  enforce : bool;  (** Capability checks + rate limiting on/off (E1/E4). *)
  check_latency : int;  (** Pipeline cycles added per egress message. *)
  rate : float;  (** Token-bucket refill, flits/cycle. *)
  burst : int;  (** Token-bucket depth, flits. *)
  egress_capacity : int;  (** Egress queue depth per class, messages. *)
  egress_classes : int;
      (** Number of per-class egress queues; higher classes drain first,
          so bulk traffic cannot head-of-line block priority replies.
          [1] (default) is a single FIFO. *)
  rpc_timeout : int;  (** Cycles before a pending RPC fails. *)
  watchdog : int;  (** Hang detection threshold in cycles; 0 disables. *)
  cap_capacity : int;  (** Capability table slots. *)
}

val default_config : config

type state = Running | Draining of string | Offline

val state_to_string : state -> string

type t

(** How an accelerator is realized: event callbacks over its shell.
    [on_message] receives application data and (for OS service tiles)
    control requests; [on_tick] models clocked logic. *)
type behavior = {
  bname : string;
  on_boot : t -> unit;
  on_message : t -> Message.t -> unit;
  on_tick : (t -> unit) option;
}

val idle_behavior : behavior
(** Placeholder for an empty reconfigurable slot. *)

(** Wiring the kernel provides to each monitor: NoC injection, access to
    peer stores/monitors (monitors are mutually trusting hardware), the
    well-known OS service addresses, and fault notification. *)
type fabric = {
  f_inject : Message.t -> unit;
  f_flits : Message.t -> int;
  f_store_of : int -> Store.t;
  f_monitor_of : int -> t;
  f_name_addr : Message.addr;
  f_mem_addr : Message.addr;
  f_on_fault : int -> string -> unit;
}

val create :
  ?region:int -> Sim.t -> tile:int -> config -> fabric -> trace:Trace.t ->
  ?flight:Apiary_obs.Flight.t -> privileged:bool -> behavior -> t
(** Create the monitor and register its tick (in activity subregion
    [region], if given). [on_boot] runs in the event phase of the next
    cycle. [flight] is the board's shared flight recorder (the kernel
    passes its own); a private disabled one is used when omitted. *)

(** {1 Identity and state} *)

val tile : t -> int
val sim : t -> Sim.t
val state : t -> state

val obs_board : t -> int
(** Board id stamped on this monitor's [Apiary_obs.Span] events (the
    trace's board, or [-1] when free-standing). *)

val store : t -> Store.t
val behavior_name : t -> string
val self_addr : t -> Message.addr
(** This tile's application endpoint. *)

(** {1 Ingress (called by the kernel's NoC receiver)} *)

val ingress : t -> Message.t -> unit

(** {1 Fault handling (paper §4.4)} *)

val fault : t -> string -> unit
(** Enter fail-stop: flush egress, revoke capabilities this tile granted
    to peers, cancel pending RPCs, NACK subsequent traffic, notify the
    kernel. Idempotent. *)

val set_offline : t -> unit
(** Used during partial reconfiguration: like draining, but silent. *)

val reset : t -> behavior -> unit
(** Re-arm a drained/offline tile with a fresh behavior and a fresh
    capability table (models reprogramming the slot). *)

(** {1 RPC errors surfaced to accelerators} *)

type rpc_error =
  | Timeout
  | Nacked of string  (** Peer is fail-stopped. *)
  | Denied of string  (** Local capability/rights check refused egress. *)

val rpc_error_to_string : rpc_error -> string

type reply_cb = (Message.t, rpc_error) result -> unit

(** {1 Shell surface (accelerator-facing; see {!Shell})} *)

type conn = { cap : Store.handle; peer : Message.addr; service : string }

type mem_handle = { mcap : Store.handle; base : int; len : int }

val register_service : t -> string -> unit
val lookup : t -> string -> (Message.addr option -> unit) -> unit
val connect : t -> service:string -> ((conn, rpc_error) result -> unit) -> unit
val send_data : t -> conn -> opcode:int -> ?cls:int -> bytes -> unit
val request : t -> conn -> opcode:int -> ?cls:int -> bytes -> reply_cb -> unit
val respond : t -> Message.t -> opcode:int -> ?cls:int -> bytes -> unit
val alloc : t -> bytes:int -> ((mem_handle, rpc_error) result -> unit) -> unit
val free : t -> mem_handle -> ((unit, rpc_error) result -> unit) -> unit

val read_mem :
  t -> mem_handle -> off:int -> len:int -> ((bytes, rpc_error) result -> unit) -> unit

val write_mem :
  t -> mem_handle -> off:int -> bytes -> ((unit, rpc_error) result -> unit) -> unit

val grant_mem :
  t -> mem_handle -> to_tile:int -> rights:Rights.t ->
  (Store.handle, Store.error) result
(** Derive an attenuated segment capability directly into a peer tile's
    table (shared-memory composition, §4.6). The returned handle is only
    meaningful on the peer tile; ship it there in a data message. *)

val mem_handle_of_grant : t -> Store.handle -> mem_handle option
(** On the receiving tile: resolve a granted segment handle into a usable
    memory handle (validates it against the local table). *)

val busy : t -> int -> unit
(** Model [n] cycles of accelerator compute: message delivery pauses. *)

type grant = Accept | Accept_limited of { rate : float; burst : int } | Refuse
(** A connect policy's verdict. [Accept_limited] attaches a token-bucket
    rate (flits/cycle) to the granted connection, enforced by the
    {e requester's} monitor — receiver-set, sender-enforced QoS at
    per-connection granularity (finer than the tile bucket). *)

val set_connect_policy : t -> (Message.addr -> bool) -> unit
(** Accept/refuse incoming connections (default: accept all). *)

val set_grant_policy : t -> (Message.addr -> grant) -> unit
(** Full policy including per-connection rate limits. *)

val set_on_error : t -> (string -> unit) -> unit
(** Asynchronous error notifications (denied egress, dropped messages). *)

val raise_fault : t -> string -> unit
(** The accelerator detected an internal error (explicit fail-stop). *)

val send_raw : t -> dst:Message.addr -> opcode:int -> bytes -> unit
(** Attempt an uncapabilitied send — what a buggy or malicious
    accelerator would do. Denied when enforcement is on. *)

val ping : t -> ?timeout:int -> tile:int -> ep:int -> (bool -> unit) -> unit
(** Health probe. [ep = control_ep] answers as long as the target's
    monitor runs; [ep = app_ep] answers only when the target accelerator
    is still draining its queue — a hung accelerator times out. The
    callback receives [false] on timeout or NACK. *)

val rng : t -> Apiary_engine.Rng.t
val log : t -> string -> unit
(** Record a tile-local note into the message trace. *)

(** {1 Privileged operations (OS services only)} *)

val priv_mint_segment :
  t -> for_tile:int -> base:int -> len:int -> rights:Rights.t -> Store.handle
(** Mint a segment capability directly into [for_tile]'s table (memory
    service handing out allocations). @raise Failure if not privileged. *)

val priv_revoke : t -> for_tile:int -> Store.handle -> int
(** Revoke a capability in [for_tile]'s table; returns number revoked. *)

val priv_respond_control :
  t -> Message.t -> ?payload:bytes -> Message.control -> unit
(** Reply to a control request with a control message (OS services
    answering [Alloc_req], [Lookup], ...). *)

(** {1 Statistics} *)

val perf : t -> Apiary_obs.Perf.t
(** The tile's hardware counter block (messages in/out, syscalls,
    denials, drops, NACKs, faults, health heartbeats) — updated
    cycle-accurately and readable in-band through the stat service. *)

val msgs_in : t -> int
val msgs_out : t -> int
val denied : t -> int
val dropped : t -> int
val nacks_sent : t -> int
val rate_stalls : t -> int
val added_latency : t -> Stats.Histogram.t
(** Cycles each egress message spent inside the monitor (queueing +
    checks) — the E1 overhead metric. *)

val rx_backlog : t -> int

val last_progress : t -> int
(** Last cycle this monitor moved a message (rx delivery or egress
    admit) — the heartbeat the health layer's deadline watches. A tile
    with queued work and a stale [last_progress] is stuck; an idle tile
    (no queued work) is healthy no matter how old its timestamp is, so
    quiescence fast-forward cannot cause false positives. *)

val has_egress_backlog : t -> bool
(** Any committed egress entry waiting in a class queue. *)
