(** The [sys-stat] introspection service: in-band, capability-gated
    reads of the fabric's own performance-counter blocks.

    Runs on an ordinary fabric tile and registers the service name
    ["stat"], so reaching it uses the same machinery as any other
    service — name lookup, [Connect_req], a granted send capability,
    rate limits — and a remote operator reaches it across the rack
    through the network service by name, no new transport. Queries and
    replies are {!Apiary_obs.Perf} wire blocks; a malformed or
    out-of-range query gets an empty reply.

    This is what backs [apiary top]. *)

val opcode : int
(** Data opcode 0x5354 ("ST"). *)

val service_name : string
(** ["stat"]. *)

type query =
  | Tile of int  (** the tile monitor's counter block *)
  | Router of int  (** the NoC router at the tile's coordinate *)
  | Board  (** every monitor and router merged into one block *)

val encode_query : query -> bytes
val decode_query : bytes -> query option

val answer : Kernel.t -> query -> Apiary_obs.Perf.t option
(** Resolve a query directly (what the service does per request; also
    usable in-process by the CLI for [--once] rendering). [None] for an
    out-of-range tile. *)

val behavior : Kernel.t -> Monitor.behavior
(** The service behavior; install on a user tile. *)

val install : Kernel.t -> tile:int -> int
(** [Kernel.install] the behavior on [tile]; returns the tile. *)
