(** Apiary's message format — the single API-level interface every tile
    speaks (paper §4.3).

    Destination naming is a message field rather than dedicated wires,
    which is what lets one physical interface (the NoC port) reach any
    service. Messages are either application [Data] (an opaque opcode +
    payload, meaningful only to the endpoints) or [Control] — the
    microkernel protocol spoken by monitors and OS services (naming,
    connections, memory, health). *)

type addr = { tile : int; ep : int }
(** [tile] is the linearized tile index; endpoint [0] is the tile's
    monitor (control), [1] the accelerator itself. *)

val control_ep : int
val app_ep : int
val addr_to_string : addr -> string

(** Microkernel protocol messages. *)
type control =
  | Register of { name : string }  (** Register a service name for src. *)
  | Register_ok
  | Lookup of { name : string }
  | Lookup_reply of { name : string; result : addr option }
  | Connect_req  (** Ask dst's monitor for a send capability to dst. *)
  | Connect_ok of {
      cap : Apiary_cap.Store.handle;
      rate_millis : int;
          (** Per-connection token rate in milli-flits/cycle, enforced by
              the sender's monitor; [0] = unlimited. *)
      burst : int;
    }
  | Connect_denied of { reason : string }
  | Alloc_req of { bytes : int }
  | Alloc_ok of { cap : Apiary_cap.Store.handle; base : int; bytes : int }
  | Alloc_denied of { reason : string }
  | Free_req of { base : int }
  | Free_ok
  | Mem_read_req of { addr : int; len : int }
      (** [addr] is absolute — computed and bounds-checked by the source
          monitor, which is the enforcement point. *)
  | Mem_write_req of { addr : int }  (** Data rides in the payload. *)
  | Mem_read_ok  (** Data rides in the payload. *)
  | Mem_write_ok
  | Mem_denied of { reason : string }
  | Ping
  | Pong
  | Nack of { reason : string }
      (** Returned by a draining (failed) tile's monitor so peers fail
          fast instead of timing out (paper §4.4). *)

type kind = Data of { opcode : int } | Control of control

type t = {
  src : addr;
  dst : addr;
  kind : kind;
  corr : int;  (** Correlation id pairing requests with replies. *)
  is_reply : bool;
      (** Distinguishes a response from a request that happens to reuse a
          peer's correlation id — correlation ids are per-sender. *)
  cls : int;  (** QoS class, maps to a NoC virtual channel. *)
  payload : bytes;
  created_at : int;  (** Cycle the message was handed to the shell. *)
}

val make :
  src:addr -> dst:addr -> kind:kind -> ?corr:int -> ?is_reply:bool -> ?cls:int ->
  ?payload:bytes -> now:int -> unit -> t

val header_bytes : int
(** Fixed wire overhead per message. *)

val size_bytes : t -> int
(** Total wire size: header + control fields + payload. Drives NoC flit
    accounting. *)

val is_control : t -> bool
val kind_to_string : kind -> string
val summary : t -> string
(** One-line rendering for traces. *)
