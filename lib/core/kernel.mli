(** The Apiary static region: boots the fabric, wires monitors to the
    NoC, hosts the OS service tiles, and orchestrates partial
    reconfiguration.

    In hardware this is the logic outside the dynamically reconfigurable
    slots (paper §4.1): the NoC, the per-tile monitors, and the boot-time
    placement of OS services. Everything an application does afterwards
    goes through its tile's {!Monitor}/{!Shell}. *)

module Sim := Apiary_engine.Sim
module Mesh := Apiary_noc.Mesh
module Coord := Apiary_noc.Coord
module Dram := Apiary_mem.Dram
module Seg_alloc := Apiary_mem.Seg_alloc

type config = {
  mesh : Mesh.config;
  monitor : Monitor.config;
  monitor_overrides : (int * Monitor.config) list;
      (** Per-tile monitor configs (e.g. an enforcement-off tile). *)
  dram : Dram.config;
  dram_bytes : int;
  alloc_policy : Seg_alloc.policy;
  name_tile : int;  (** Tile hosting the name service (default 0). *)
  mem_tile : int;
      (** Tile hosting the memory service; place it at the edge where the
          controller pins would be (default: last tile). *)
  pr_bytes_per_cycle : int;
      (** Partial-reconfiguration port bandwidth (ICAP ≈ 400 MB/s ⇒
          ~6 B/cycle at 250 MHz... default 8). *)
  trace_capacity : int;
}

val default_config : config
(** 4x4 mesh, enforcing monitors, 64 MiB DRAM, first-fit segments. *)

type t

val create : Sim.t -> config -> t

(** {1 Topology} *)

val sim : t -> Sim.t
val n_tiles : t -> int
val coord_of_tile : t -> int -> Coord.t
val tile_of_coord : t -> Coord.t -> int
val name_tile : t -> int
val mem_tile : t -> int

val user_tiles : t -> int list
(** Tiles available for accelerators (everything but the OS services). *)

(** {1 Components} *)

val mesh : t -> Message.t Mesh.t
val dram : t -> Dram.t
val allocator : t -> Seg_alloc.t
val trace : t -> Trace.t

val flight : t -> Apiary_obs.Flight.t
(** The board's fault flight recorder, shared by every monitor. Disabled
    by default; arm it with [Apiary_obs.Flight.set_enabled] (or boot
    with [APIARY_FLIGHT=1]; [APIARY_FLIGHT_CAP] resizes the ring) and
    dump it from an {!on_fault} subscriber. *)

val monitor : t -> int -> Monitor.t

(** {1 Application management} *)

val install : t -> tile:int -> Monitor.behavior -> unit
(** Program a user tile's slot with a behavior (boots next cycle).
    @raise Invalid_argument for OS service tiles. *)

val reconfigure :
  t -> tile:int -> bitstream_bytes:int -> Monitor.behavior ->
  on_done:(unit -> unit) -> unit
(** Partial reconfiguration (E10): quiesce the tile (revoking its
    capabilities and unregistering its names), hold it offline for the
    bitstream load time, then boot the new behavior. *)

val restart_tile : t -> tile:int -> Monitor.behavior -> unit
(** Immediate replacement after a fail-stop (no PR delay modelled). *)

(** {1 Faults} *)

val on_fault : t -> (int -> string -> unit) -> unit
(** Subscribe to fail-stop notifications. *)

val faults : t -> (int * string) list
(** All fail-stops so far, oldest first. *)

(** {1 Aggregate statistics} *)

val total_denied : t -> int
val total_msgs : t -> int
val total_dropped : t -> int

val quadrant_activity : t -> int array
(** Armed-ticker count in each tile quadrant's activity subregion
    ([NW; NE; SW; SE]): a 4-bit-style board occupancy summary read from
    the scheduler's aggregate region counters instead of scanning
    tiles. *)

(** {1 Observability} *)

val set_obs_board : t -> int -> unit
(** Stamp the board id on this kernel's trace and on the mesh (routers
    and NICs), so message traces and [Apiary_obs.Span] events from this
    board are attributed correctly in merged/exported views. *)

val register_metrics : t -> prefix:string -> unit
(** Install [Apiary_obs.Registry] samplers (under [prefix ^ ".kernel"]
    and the mesh's [prefix ^ ".noc"]) publishing capability denials,
    drops, fault transitions, per-tile monitor added-latency histograms
    and the NoC heatmap gauges. Re-attaching with the same prefix
    replaces the previous samplers. *)
