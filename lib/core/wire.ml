(* Layout (big-endian):
   u16 src.tile  u8 src.ep  u16 dst.tile  u8 dst.ep
   u8 tag  u8 cls  u32 corr  u32 created_at
   <tag-specific fields>  u32 payload_len  payload *)

module M = Message

let tag_of_kind = function
  | M.Data _ -> 0
  | M.Control c ->
    (match c with
    | M.Register _ -> 1
    | M.Register_ok -> 2
    | M.Lookup _ -> 3
    | M.Lookup_reply _ -> 4
    | M.Connect_req -> 5
    | M.Connect_ok _ -> 6
    | M.Connect_denied _ -> 7
    | M.Alloc_req _ -> 8
    | M.Alloc_ok _ -> 9
    | M.Alloc_denied _ -> 10
    | M.Free_req _ -> 11
    | M.Free_ok -> 12
    | M.Mem_read_req _ -> 13
    | M.Mem_write_req _ -> 14
    | M.Mem_read_ok -> 15
    | M.Mem_write_ok -> 16
    | M.Mem_denied _ -> 17
    | M.Ping -> 18
    | M.Pong -> 19
    | M.Nack _ -> 20)

(* Growable output buffer. *)
module Out = struct
  let u8 b v = Buffer.add_uint8 b (v land 0xFF)
  let u16 b v = Buffer.add_uint16_be b (v land 0xFFFF)

  let u32 b v =
    u16 b (v lsr 16);
    u16 b v

  let str b s =
    u16 b (String.length s);
    Buffer.add_string b s
end

module In = struct
  type t = { data : bytes; mutable pos : int }

  exception Truncated

  let need t n = if t.pos + n > Bytes.length t.data then raise Truncated

  let u8 t =
    need t 1;
    let v = Char.code (Bytes.get t.data t.pos) in
    t.pos <- t.pos + 1;
    v

  let u16 t =
    let hi = u8 t in
    (hi lsl 8) lor u8 t

  let u32 t =
    let hi = u16 t in
    (hi lsl 16) lor u16 t

  let str t =
    let n = u16 t in
    need t n;
    let s = Bytes.sub_string t.data t.pos n in
    t.pos <- t.pos + n;
    s

  let bytes_ t =
    let n = u32 t in
    need t n;
    let s = Bytes.sub t.data t.pos n in
    t.pos <- t.pos + n;
    s
end

let encode_fields b = function
  | M.Data { opcode } -> Out.u32 b opcode
  | M.Control c ->
    (match c with
    | M.Register { name } | M.Lookup { name } -> Out.str b name
    | M.Lookup_reply { name; result } ->
      Out.str b name;
      (match result with
      | None -> Out.u8 b 0
      | Some a ->
        Out.u8 b 1;
        Out.u16 b a.M.tile;
        Out.u8 b a.M.ep)
    | M.Register_ok | M.Connect_req | M.Free_ok | M.Mem_read_ok
    | M.Mem_write_ok | M.Ping | M.Pong ->
      ()
    | M.Connect_ok { cap; rate_millis; burst } ->
      Out.u32 b cap;
      Out.u32 b rate_millis;
      Out.u32 b burst
    | M.Connect_denied { reason } | M.Alloc_denied { reason }
    | M.Mem_denied { reason } | M.Nack { reason } ->
      Out.str b reason
    | M.Alloc_req { bytes } -> Out.u32 b bytes
    | M.Alloc_ok { cap; base; bytes } ->
      Out.u32 b cap;
      Out.u32 b base;
      Out.u32 b bytes
    | M.Free_req { base } -> Out.u32 b base
    | M.Mem_read_req { addr; len } ->
      Out.u32 b addr;
      Out.u32 b len
    | M.Mem_write_req { addr } -> Out.u32 b addr)

let encode (m : M.t) =
  let b = Buffer.create (M.size_bytes m + 8) in
  Out.u16 b m.src.M.tile;
  Out.u8 b m.src.M.ep;
  Out.u16 b m.dst.M.tile;
  Out.u8 b m.dst.M.ep;
  Out.u8 b (tag_of_kind m.kind);
  Out.u8 b ((m.cls lsl 1) lor if m.is_reply then 1 else 0);
  Out.u32 b m.corr;
  Out.u32 b m.created_at;
  encode_fields b m.kind;
  Out.u32 b (Bytes.length m.payload);
  Buffer.add_bytes b m.payload;
  Buffer.to_bytes b

let encoded_size m = Bytes.length (encode m)

let decode_kind t tag =
  let open In in
  match tag with
  | 0 -> Ok (M.Data { opcode = u32 t })
  | 1 -> Ok (M.Control (M.Register { name = str t }))
  | 2 -> Ok (M.Control M.Register_ok)
  | 3 -> Ok (M.Control (M.Lookup { name = str t }))
  | 4 ->
    let name = str t in
    let result =
      match u8 t with
      | 0 -> None
      | _ ->
        let tile = u16 t in
        let ep = u8 t in
        Some { M.tile; ep }
    in
    Ok (M.Control (M.Lookup_reply { name; result }))
  | 5 -> Ok (M.Control M.Connect_req)
  | 6 ->
    let cap = u32 t in
    let rate_millis = u32 t in
    let burst = u32 t in
    Ok (M.Control (M.Connect_ok { cap; rate_millis; burst }))
  | 7 -> Ok (M.Control (M.Connect_denied { reason = str t }))
  | 8 -> Ok (M.Control (M.Alloc_req { bytes = u32 t }))
  | 9 ->
    let cap = u32 t in
    let base = u32 t in
    let bytes = u32 t in
    Ok (M.Control (M.Alloc_ok { cap; base; bytes }))
  | 10 -> Ok (M.Control (M.Alloc_denied { reason = str t }))
  | 11 -> Ok (M.Control (M.Free_req { base = u32 t }))
  | 12 -> Ok (M.Control M.Free_ok)
  | 13 ->
    let addr = u32 t in
    let len = u32 t in
    Ok (M.Control (M.Mem_read_req { addr; len }))
  | 14 -> Ok (M.Control (M.Mem_write_req { addr = u32 t }))
  | 15 -> Ok (M.Control M.Mem_read_ok)
  | 16 -> Ok (M.Control M.Mem_write_ok)
  | 17 -> Ok (M.Control (M.Mem_denied { reason = str t }))
  | 18 -> Ok (M.Control M.Ping)
  | 19 -> Ok (M.Control M.Pong)
  | 20 -> Ok (M.Control (M.Nack { reason = str t }))
  | n -> Error (Printf.sprintf "unknown message tag %d" n)

let decode data =
  let t = { In.data; pos = 0 } in
  try
    let open In in
    let src_tile = u16 t in
    let src_ep = u8 t in
    let dst_tile = u16 t in
    let dst_ep = u8 t in
    let tag = u8 t in
    let flags = u8 t in
    let cls = flags lsr 1 in
    let is_reply = flags land 1 = 1 in
    let corr = u32 t in
    let created_at = u32 t in
    match decode_kind t tag with
    | Error e -> Error e
    | Ok kind ->
      let payload = bytes_ t in
      if t.pos <> Bytes.length data then Error "trailing bytes"
      else
        Ok
          {
            M.src = { M.tile = src_tile; ep = src_ep };
            dst = { M.tile = dst_tile; ep = dst_ep };
            kind;
            corr;
            is_reply;
            cls;
            payload;
            created_at;
          }
  with In.Truncated -> Error "truncated message"
