type dir = Egress | Ingress | Denied | Dropped | Fault

let dir_to_string = function
  | Egress -> "out"
  | Ingress -> "in"
  | Denied -> "DENY"
  | Dropped -> "drop"
  | Fault -> "FAULT"

type event = { cycle : int; tile : int; dir : dir; detail : string }

type t = {
  ring : event option array;
  mutable next : int;
  mutable total : int;
  mutable on : bool;
}

let create ?(capacity = 4096) () =
  assert (capacity > 0);
  { ring = Array.make capacity None; next = 0; total = 0; on = false }

let set_enabled t b = t.on <- b
let enabled t = t.on

let record t ~cycle ~tile ~dir ~detail =
  if t.on then begin
    t.ring.(t.next) <- Some { cycle; tile; dir; detail };
    t.next <- (t.next + 1) mod Array.length t.ring;
    t.total <- t.total + 1
  end

let record_lazy t ~cycle ~tile ~dir f =
  if t.on then record t ~cycle ~tile ~dir ~detail:(f ())

let events t =
  let n = Array.length t.ring in
  let rec collect i acc =
    if i >= n then List.rev acc
    else
      let idx = (t.next + i) mod n in
      match t.ring.(idx) with
      | None -> collect (i + 1) acc
      | Some e -> collect (i + 1) (e :: acc)
  in
  collect 0 []

let count t = t.total

let clear t =
  Array.fill t.ring 0 (Array.length t.ring) None;
  t.next <- 0

let pp ppf t =
  List.iter
    (fun e ->
      Format.fprintf ppf "[%8d] tile%-3d %-5s %s@." e.cycle e.tile
        (dir_to_string e.dir) e.detail)
    (events t)

let find t ?tile ?dir () =
  let keep e =
    (match tile with None -> true | Some x -> e.tile = x)
    && match dir with None -> true | Some d -> e.dir = d
  in
  List.filter keep (events t)
