type dir = Egress | Ingress | Denied | Dropped | Fault

let dir_to_string = function
  | Egress -> "out"
  | Ingress -> "in"
  | Denied -> "DENY"
  | Dropped -> "drop"
  | Fault -> "FAULT"

type event = {
  cycle : int;
  tile : int;
  dir : dir;
  detail : string;
  board : int option;
  corr : int;
}

type t = {
  ring : event option array;
  mutable next : int;
  mutable total : int;
  mutable on : bool;
  mutable default_board : int option;
}

let create ?(capacity = 4096) () =
  assert (capacity > 0);
  {
    ring = Array.make capacity None;
    next = 0;
    total = 0;
    on = false;
    default_board = None;
  }

let set_enabled t b = t.on <- b
let enabled t = t.on
let set_board t id = t.default_board <- Some id
let board t = t.default_board

let record t ?board ?(corr = 0) ~cycle ~tile ~dir ~detail () =
  if t.on then begin
    let board = match board with Some _ as b -> b | None -> t.default_board in
    t.ring.(t.next) <- Some { cycle; tile; dir; detail; board; corr };
    t.next <- (t.next + 1) mod Array.length t.ring;
    t.total <- t.total + 1
  end

let record_lazy t ?board ?corr ~cycle ~tile ~dir f =
  if t.on then record t ?board ?corr ~cycle ~tile ~dir ~detail:(f ()) ()

let fold t ~init ~f =
  let n = Array.length t.ring in
  let acc = ref init in
  for i = 0 to n - 1 do
    match t.ring.((t.next + i) mod n) with
    | None -> ()
    | Some e -> acc := f !acc e
  done;
  !acc

let events t = List.rev (fold t ~init:[] ~f:(fun acc e -> e :: acc))

let count t = t.total

let clear t =
  Array.fill t.ring 0 (Array.length t.ring) None;
  t.next <- 0

let merge ts =
  (* Stable on equal cycles: events keep their per-trace order, and
     traces keep the order they were passed in — so a merged cross-board
     chain is reproducible. *)
  List.stable_sort
    (fun a b -> compare a.cycle b.cycle)
    (List.concat_map events ts)

let pp_event ppf e =
  let board = match e.board with None -> "" | Some b -> Printf.sprintf "b%-2d " b in
  let corr = if e.corr > 0 then Printf.sprintf " #%d" e.corr else "" in
  Format.fprintf ppf "[%8d] %stile%-3d %-5s %s%s" e.cycle board e.tile
    (dir_to_string e.dir) e.detail corr

let pp ppf t =
  List.iter (fun e -> Format.fprintf ppf "%a@." pp_event e) (events t)

let find t ?tile ?dir ?board ?corr () =
  let keep e =
    (match tile with None -> true | Some x -> e.tile = x)
    && (match dir with None -> true | Some d -> e.dir = d)
    && (match board with None -> true | Some b -> e.board = Some b)
    && match corr with None -> true | Some c -> e.corr = c
  in
  List.rev (fold t ~init:[] ~f:(fun acc e -> if keep e then e :: acc else acc))
