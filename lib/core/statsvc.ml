(* The in-fabric introspection service (paper §6: how do operators
   manage a standalone fabric with no host in the loop?).

   A normal service tile — installed with [Kernel.install], named
   through the name service, reached over capability-gated connections
   like every other service — whose replies are the fabric's own
   hardware counter blocks. Monitors are mutually trusted hardware, so
   the service reads peer blocks directly (the same access discipline
   [fabric.f_monitor_of] already grants); what the capability system
   gates is who may *ask*: a client needs a send capability from
   Connect_req, and cross-board readers go through netsvc like any
   remote caller. *)

module Perf = Apiary_obs.Perf
module Mesh = Apiary_noc.Mesh

(* "ST" *)
let opcode = 0x5354
let service_name = "stat"

type query = Tile of int | Router of int | Board

(* Query wire format: kind u8, arg u16 be. *)
let encode_query q =
  let b = Bytes.create 3 in
  (match q with
  | Tile t ->
    Bytes.set_uint8 b 0 1;
    Bytes.set_uint16_be b 1 t
  | Router t ->
    Bytes.set_uint8 b 0 2;
    Bytes.set_uint16_be b 1 t
  | Board ->
    Bytes.set_uint8 b 0 3;
    Bytes.set_uint16_be b 1 0);
  b

let decode_query b =
  if Bytes.length b <> 3 then None
  else
    let arg = Bytes.get_uint16_be b 1 in
    match Bytes.get_uint8 b 0 with
    | 1 -> Some (Tile arg)
    | 2 -> Some (Router arg)
    | 3 -> Some Board
    | _ -> None

let read_tile k tile =
  if tile < 0 || tile >= Kernel.n_tiles k then None
  else Some (Monitor.perf (Kernel.monitor k tile))

let read_router k tile =
  if tile < 0 || tile >= Kernel.n_tiles k then None
  else
    Some (Apiary_noc.Router.perf (Mesh.router_at (Kernel.mesh k) (Kernel.coord_of_tile k tile)))

let board_summary k =
  let acc = Perf.create () in
  for tile = 0 to Kernel.n_tiles k - 1 do
    Perf.merge_into ~src:(Monitor.perf (Kernel.monitor k tile)) ~dst:acc;
    match read_router k tile with
    | Some p -> Perf.merge_into ~src:p ~dst:acc
    | None -> ()
  done;
  acc

let answer k q =
  match q with
  | Tile t -> read_tile k t
  | Router t -> read_router k t
  | Board -> Some (board_summary k)

let behavior k =
  let on_message shell (m : Message.t) =
    match m.Message.kind with
    | Message.Data { opcode = op }
      when op = opcode && m.Message.corr > 0 && not m.Message.is_reply ->
      let reply =
        match decode_query m.Message.payload with
        | None -> Bytes.empty  (* malformed query: empty = error *)
        | Some q -> (
          match answer k q with
          | None -> Bytes.empty
          | Some p -> Perf.encode p)
      in
      Monitor.respond shell m ~opcode reply
    | _ -> ()
  in
  {
    Monitor.bname = "sys.stat";
    on_boot = (fun shell -> Monitor.register_service shell service_name);
    on_message;
    on_tick = None;
  }

let install k ~tile =
  Kernel.install k ~tile (behavior k);
  tile
