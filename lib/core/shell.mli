(** The Apiary shell — the portable, device-independent API an accelerator
    programs against (paper §1: "Each module is wrapped in an Apiary shell
    that interfaces to the fabric and manages capabilities on the module's
    behalf").

    This is the {e only} surface application code should touch. It is a
    restricted view of {!Monitor}: the same tile runtime, minus the
    kernel-side and privileged entry points. Everything is asynchronous
    and callback-based — hardware has no blocking calls. Callbacks run in
    simulation context; model compute time explicitly with {!busy}.

    A typical accelerator:
    {[
      let encoder = Shell.behavior "encoder"
        ~on_boot:(fun sh -> Shell.register_service sh "encode")
        ~on_message:(fun sh msg ->
          match msg.Message.kind with
          | Message.Data _ ->
            Shell.busy sh (cost_of msg);
            Shell.respond sh msg ~opcode:1 (encode msg.Message.payload)
          | _ -> ())
    ]} *)

type t = Monitor.t
(** The shell of one tile, handed to every behavior callback. (The
    equality with {!Monitor.t} is how the kernel hands the same tile
    runtime to both sides; application code should treat it as opaque.) *)

(** A capability-backed connection to a peer service. *)
type conn = Monitor.conn = {
  cap : Apiary_cap.Store.handle;
  peer : Message.addr;
  service : string;
}

(** A capability-backed memory segment. *)
type mem_handle = Monitor.mem_handle = {
  mcap : Apiary_cap.Store.handle;
  base : int;
  len : int;
}

type rpc_error = Monitor.rpc_error = Timeout | Nacked of string | Denied of string

val rpc_error_to_string : rpc_error -> string

(** How an accelerator is expressed: named event callbacks. *)
type behavior = Monitor.behavior = {
  bname : string;
  on_boot : t -> unit;
  on_message : t -> Message.t -> unit;
  on_tick : (t -> unit) option;
}

val behavior :
  ?on_tick:(t -> unit) -> ?on_boot:(t -> unit) ->
  ?on_message:(t -> Message.t -> unit) -> string -> behavior
(** Convenience constructor. *)

(** {1 Identity} *)

val tile : t -> int
val sim : t -> Apiary_engine.Sim.t
val now : t -> int

val obs_board : t -> int
(** Board id for [Apiary_obs.Span] events ([-1] when free-standing). *)

val self_addr : t -> Message.addr
val rng : t -> Apiary_engine.Rng.t
val log : t -> string -> unit

(** {1 Naming and connections} *)

val register_service : t -> string -> unit
val lookup : t -> string -> (Message.addr option -> unit) -> unit
val connect : t -> service:string -> ((conn, rpc_error) result -> unit) -> unit

(** {1 Messaging} *)

val send_data : t -> conn -> opcode:int -> ?cls:int -> bytes -> unit
(** One-way message over a connection. *)

val request :
  t -> conn -> opcode:int -> ?cls:int -> bytes ->
  ((Message.t, rpc_error) result -> unit) -> unit
(** RPC over a connection; the callback fires with the reply, a NACK
    (peer fail-stopped), a local denial, or a timeout. *)

val respond : t -> Message.t -> opcode:int -> ?cls:int -> bytes -> unit
(** Answer a received request (uses the one-shot reply window the monitor
    opened at delivery). *)

(** {1 Memory (capability segments, §4.6)} *)

val alloc : t -> bytes:int -> ((mem_handle, rpc_error) result -> unit) -> unit
val free : t -> mem_handle -> ((unit, rpc_error) result -> unit) -> unit

val read_mem :
  t -> mem_handle -> off:int -> len:int ->
  ((bytes, rpc_error) result -> unit) -> unit

val write_mem :
  t -> mem_handle -> off:int -> bytes ->
  ((unit, rpc_error) result -> unit) -> unit

val grant_mem :
  t -> mem_handle -> to_tile:int -> rights:Apiary_cap.Rights.t ->
  (Apiary_cap.Store.handle, Apiary_cap.Store.error) result

val mem_handle_of_grant : t -> Apiary_cap.Store.handle -> mem_handle option

(** {1 Execution model} *)

val busy : t -> int -> unit
(** Charge [n] cycles of compute: the shell delivers no further messages
    (and runs no [on_tick]) until they elapse. *)

type grant = Monitor.grant =
  | Accept
  | Accept_limited of { rate : float; burst : int }
  | Refuse
(** Connect-policy verdict; [Accept_limited] attaches a per-connection
    token bucket (flits/cycle) that the requester's monitor enforces. *)

val set_connect_policy : t -> (Message.addr -> bool) -> unit
val set_grant_policy : t -> (Message.addr -> grant) -> unit
val set_on_error : t -> (string -> unit) -> unit
val raise_fault : t -> string -> unit

val ping : t -> ?timeout:int -> tile:int -> ep:int -> (bool -> unit) -> unit

(** {1 Misbehaviour (for isolation experiments)} *)

val send_raw : t -> dst:Message.addr -> opcode:int -> bytes -> unit
(** Send without any capability — the move a buggy or malicious
    accelerator makes. Denied (and counted) when enforcement is on. *)
