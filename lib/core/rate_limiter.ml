type t = {
  rate : float;
  burst : float;
  mutable level : float;
  mutable last : int;
  mutable stalls : int;
  limited : bool;
}

let create ~rate ~burst =
  assert (rate > 0.0 && burst >= 1);
  let burst = float_of_int burst in
  { rate; burst; level = burst; last = 0; stalls = 0; limited = true }

let unlimited () =
  { rate = 0.0; burst = 0.0; level = 0.0; last = 0; stalls = 0; limited = false }

let advance t ~now =
  if t.limited && now > t.last then begin
    let dt = float_of_int (now - t.last) in
    t.level <- Float.min t.burst (t.level +. (t.rate *. dt));
    t.last <- now
  end

let try_take t n =
  if not t.limited then true
  else begin
    let need = float_of_int n in
    if t.level >= need then begin
      t.level <- t.level -. need;
      true
    end
    else begin
      t.stalls <- t.stalls + 1;
      false
    end
  end

let would_admit t n = (not t.limited) || t.level >= float_of_int n

let take t n = if t.limited then t.level <- t.level -. float_of_int n

let tokens t = t.level
let stalled_msgs t = t.stalls
