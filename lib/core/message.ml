type addr = { tile : int; ep : int }

let control_ep = 0
let app_ep = 1
let addr_to_string a = Printf.sprintf "t%d.e%d" a.tile a.ep

type control =
  | Register of { name : string }
  | Register_ok
  | Lookup of { name : string }
  | Lookup_reply of { name : string; result : addr option }
  | Connect_req
  | Connect_ok of {
      cap : Apiary_cap.Store.handle;
      rate_millis : int;
          (** Per-connection token rate in milli-flits/cycle, enforced by
              the sender's monitor; [0] = unlimited. *)
      burst : int;
    }
  | Connect_denied of { reason : string }
  | Alloc_req of { bytes : int }
  | Alloc_ok of { cap : Apiary_cap.Store.handle; base : int; bytes : int }
  | Alloc_denied of { reason : string }
  | Free_req of { base : int }
  | Free_ok
  | Mem_read_req of { addr : int; len : int }
  | Mem_write_req of { addr : int }
  | Mem_read_ok
  | Mem_write_ok
  | Mem_denied of { reason : string }
  | Ping
  | Pong
  | Nack of { reason : string }

type kind = Data of { opcode : int } | Control of control

type t = {
  src : addr;
  dst : addr;
  kind : kind;
  corr : int;
  is_reply : bool;
  cls : int;
  payload : bytes;
  created_at : int;
}

let empty_payload = Bytes.create 0

let make ~src ~dst ~kind ?(corr = 0) ?(is_reply = false) ?(cls = 0)
    ?(payload = empty_payload) ~now () =
  { src; dst; kind; corr; is_reply; cls; payload; created_at = now }

(* src(4) + dst(4) + kind tag(2) + corr(4) + length(2) *)
let header_bytes = 16

let control_bytes = function
  | Register { name } | Lookup { name } -> 2 + String.length name
  | Lookup_reply { name; _ } -> 2 + String.length name + 4
  | Register_ok | Connect_req | Free_ok | Mem_write_ok | Ping | Pong -> 0
  | Connect_ok _ -> 12
  | Connect_denied { reason } | Alloc_denied { reason }
  | Mem_denied { reason } | Nack { reason } ->
    2 + String.length reason
  | Alloc_req _ -> 4
  | Alloc_ok _ -> 12
  | Free_req _ -> 8
  | Mem_read_req _ -> 12
  | Mem_write_req _ -> 8
  | Mem_read_ok -> 0

let size_bytes t =
  let k = match t.kind with Data _ -> 0 | Control c -> control_bytes c in
  header_bytes + k + Bytes.length t.payload

let is_control t = match t.kind with Control _ -> true | Data _ -> false

let control_to_string = function
  | Register { name } -> Printf.sprintf "register(%s)" name
  | Register_ok -> "register-ok"
  | Lookup { name } -> Printf.sprintf "lookup(%s)" name
  | Lookup_reply { name; result } ->
    Printf.sprintf "lookup-reply(%s=%s)" name
      (match result with Some a -> addr_to_string a | None -> "?")
  | Connect_req -> "connect"
  | Connect_ok _ -> "connect-ok"
  | Connect_denied { reason } -> Printf.sprintf "connect-denied(%s)" reason
  | Alloc_req { bytes } -> Printf.sprintf "alloc(%d)" bytes
  | Alloc_ok { base; bytes; _ } -> Printf.sprintf "alloc-ok(%#x,%d)" base bytes
  | Alloc_denied { reason } -> Printf.sprintf "alloc-denied(%s)" reason
  | Free_req { base } -> Printf.sprintf "free(%#x)" base
  | Free_ok -> "free-ok"
  | Mem_read_req { addr; len } -> Printf.sprintf "mem-read(%#x,%d)" addr len
  | Mem_write_req { addr } -> Printf.sprintf "mem-write(%#x)" addr
  | Mem_read_ok -> "mem-read-ok"
  | Mem_write_ok -> "mem-write-ok"
  | Mem_denied { reason } -> Printf.sprintf "mem-denied(%s)" reason
  | Ping -> "ping"
  | Pong -> "pong"
  | Nack { reason } -> Printf.sprintf "nack(%s)" reason

let kind_to_string = function
  | Data { opcode } -> Printf.sprintf "data(op=%d)" opcode
  | Control c -> control_to_string c

let summary t =
  Printf.sprintf "%s->%s %s corr=%d len=%d"
    (addr_to_string t.src) (addr_to_string t.dst) (kind_to_string t.kind)
    t.corr (Bytes.length t.payload)
