module Sim = Apiary_engine.Sim
module Mesh = Apiary_noc.Mesh
module Coord = Apiary_noc.Coord
module Packet = Apiary_noc.Packet
module Dram = Apiary_mem.Dram
module Seg_alloc = Apiary_mem.Seg_alloc

type config = {
  mesh : Mesh.config;
  monitor : Monitor.config;
  monitor_overrides : (int * Monitor.config) list;
  dram : Dram.config;
  dram_bytes : int;
  alloc_policy : Seg_alloc.policy;
  name_tile : int;
  mem_tile : int;
  pr_bytes_per_cycle : int;
  trace_capacity : int;
}

let default_config =
  {
    mesh = Mesh.default_config;
    monitor = Monitor.default_config;
    monitor_overrides = [];
    dram = Dram.default_config;
    dram_bytes = 64 * 1024 * 1024;
    alloc_policy = Seg_alloc.First_fit;
    name_tile = 0;
    mem_tile = (Mesh.default_config.Mesh.cols * Mesh.default_config.Mesh.rows) - 1;
    pr_bytes_per_cycle = 8;
    trace_capacity = 4096;
  }

type t = {
  k_sim : Sim.t;
  cfg : config;
  k_mesh : Message.t Mesh.t;
  k_dram : Dram.t;
  k_alloc : Seg_alloc.t;
  k_trace : Trace.t;
  k_flight : Apiary_obs.Flight.t;
  monitors : Monitor.t array;
  quad_regions : int array;  (* activity subregion id per tile quadrant *)
  unregister_names : int -> unit;
  mutable fault_subs : (int -> string -> unit) list;
  mutable fault_log : (int * string) list;
}

let sim t = t.k_sim
let n_tiles t = t.cfg.mesh.Mesh.cols * t.cfg.mesh.Mesh.rows
let coord_of_tile t i = Coord.of_index ~cols:t.cfg.mesh.Mesh.cols i
let tile_of_coord t c = Coord.to_index ~cols:t.cfg.mesh.Mesh.cols c
let name_tile t = t.cfg.name_tile
let mem_tile t = t.cfg.mem_tile

let user_tiles t =
  List.filter
    (fun i -> i <> t.cfg.name_tile && i <> t.cfg.mem_tile)
    (List.init (n_tiles t) (fun i -> i))

let mesh t = t.k_mesh
let dram t = t.k_dram
let allocator t = t.k_alloc
let trace t = t.k_trace
let flight t = t.k_flight
let monitor t i = t.monitors.(i)

let is_service_tile t i = i = t.cfg.name_tile || i = t.cfg.mem_tile

let install t ~tile b =
  if is_service_tile t tile then
    invalid_arg (Printf.sprintf "Kernel.install: tile %d hosts an OS service" tile);
  Monitor.reset t.monitors.(tile) b

let restart_tile t ~tile b = Monitor.reset t.monitors.(tile) b

let reconfigure t ~tile ~bitstream_bytes b ~on_done =
  if is_service_tile t tile then
    invalid_arg "Kernel.reconfigure: cannot reconfigure an OS service tile";
  Monitor.set_offline t.monitors.(tile);
  t.unregister_names tile;
  let pr_cycles = max 1 (bitstream_bytes / t.cfg.pr_bytes_per_cycle) in
  Sim.after t.k_sim pr_cycles (fun () ->
      Monitor.reset t.monitors.(tile) b;
      on_done ())

let on_fault t f = t.fault_subs <- f :: t.fault_subs
let faults t = List.rev t.fault_log

let total_denied t =
  Array.fold_left (fun acc m -> acc + Monitor.denied m) 0 t.monitors

let total_msgs t =
  Array.fold_left (fun acc m -> acc + Monitor.msgs_out m) 0 t.monitors

let total_dropped t =
  Array.fold_left (fun acc m -> acc + Monitor.dropped m) 0 t.monitors

let quadrant_activity t =
  Array.map (fun r -> Sim.region_active t.k_sim r) t.quad_regions

let set_obs_board t id =
  Trace.set_board t.k_trace id;
  Mesh.set_obs_board t.k_mesh id;
  Apiary_obs.Flight.set_board t.k_flight id

module Registry = Apiary_obs.Registry
module Stats = Apiary_engine.Stats

let register_metrics t ~prefix =
  Mesh.register_metrics t.k_mesh ~prefix;
  Registry.add_sampler
    ~name:(prefix ^ ".kernel")
    (fun () ->
      let set name v =
        Stats.Gauge.set
          (Registry.gauge (prefix ^ ".kernel." ^ name))
          (float_of_int v)
      in
      set "denied" (total_denied t);
      set "dropped" (total_dropped t);
      set "msgs_out" (total_msgs t);
      set "faults" (List.length t.fault_log);
      (* Per-service-tile added latency (the monitor checking cost). *)
      Array.iteri
        (fun i m ->
          Registry.register
            (Printf.sprintf "%s.kernel.t%d.added_latency" prefix i)
            (Registry.Histogram (Monitor.added_latency m)))
        t.monitors)

let create sim cfg =
  let ntiles = cfg.mesh.Mesh.cols * cfg.mesh.Mesh.rows in
  assert (cfg.name_tile <> cfg.mem_tile);
  assert (cfg.name_tile >= 0 && cfg.name_tile < ntiles);
  assert (cfg.mem_tile >= 0 && cfg.mem_tile < ntiles);
  let k_mesh = Mesh.create sim cfg.mesh in
  let k_dram = Dram.create sim cfg.dram ~size_bytes:cfg.dram_bytes in
  let k_alloc = Seg_alloc.create ~base:0 ~size:cfg.dram_bytes cfg.alloc_policy in
  let k_trace = Trace.create ~capacity:cfg.trace_capacity () in
  (* The board's black box. APIARY_FLIGHT=1 arms it at boot (the CLI and
     bench also arm it explicitly); APIARY_FLIGHT_CAP resizes the ring.
     Disabled (the default), it records nothing and changes no output. *)
  let k_flight =
    let capacity = Apiary_obs.Env.int ~min:16 "APIARY_FLIGHT_CAP" ~default:256 in
    let f = Apiary_obs.Flight.create ~capacity () in
    if Sys.getenv_opt "APIARY_FLIGHT" = Some "1" then
      Apiary_obs.Flight.set_enabled f true;
    f
  in
  let name_behavior, unregister_names = Services.name_service () in
  let mem_behavior = Services.mem_service k_dram k_alloc in
  (* Monitors are created below; fabric closures capture the array. *)
  let monitors_ref : Monitor.t array ref = ref [||] in
  let t_ref = ref None in
  let fire_fault tile reason =
    match !t_ref with
    | None -> ()
    | Some t ->
      t.fault_log <- (tile, reason) :: t.fault_log;
      t.unregister_names tile;
      List.iter (fun f -> f tile reason) t.fault_subs
  in
  let coord_of i = Coord.of_index ~cols:cfg.mesh.Mesh.cols i in
  let fabric_of tile =
    {
      Monitor.f_inject =
        (fun (m : Message.t) ->
          let dst_tile = m.Message.dst.Message.tile in
          if dst_tile < 0 || dst_tile >= ntiles then
            (* Physically unroutable address: the NoC would drop it. *)
            ()
          else
            let cls = min m.Message.cls (cfg.mesh.Mesh.vcs - 1) in
            Mesh.send k_mesh ~src:(coord_of tile) ~dst:(coord_of dst_tile) ~cls
              ~corr:m.Message.corr ~payload_bytes:(Message.size_bytes m) m);
      f_flits =
        (fun m ->
          Packet.flits_for ~flit_bytes:cfg.mesh.Mesh.flit_bytes
            ~payload_bytes:(Message.size_bytes m));
      f_store_of = (fun i -> Monitor.store !monitors_ref.(i));
      f_monitor_of = (fun i -> !monitors_ref.(i));
      f_name_addr = { Message.tile = cfg.name_tile; ep = Message.app_ep };
      f_mem_addr = { Message.tile = cfg.mem_tile; ep = Message.app_ep };
      f_on_fault = fire_fault;
    }
  in
  let monitor_cfg_of tile =
    match List.assoc_opt tile cfg.monitor_overrides with
    | Some c -> c
    | None ->
      if tile = cfg.name_tile || tile = cfg.mem_tile then
        (* Trusted OS services are not rate-policed: the memory service
           must stream DRAM replies at line rate. *)
        { cfg.monitor with rate = 1e9; burst = 1 lsl 20 }
      else cfg.monitor
  in
  (* Tile-quadrant activity subregions: every monitor joins its tile's
     quadrant, so board introspection reads four aggregate activity bits
     instead of scanning tiles, and a whole quiet quadrant parks. *)
  let quad_regions = Array.init 4 (fun _ -> Sim.new_region sim) in
  let quad_of tile =
    let c = coord_of tile in
    let qx = if 2 * c.Coord.x >= cfg.mesh.Mesh.cols then 1 else 0 in
    let qy = if 2 * c.Coord.y >= cfg.mesh.Mesh.rows then 1 else 0 in
    quad_regions.((qy * 2) + qx)
  in
  let monitors =
    Array.init ntiles (fun tile ->
        let privileged = tile = cfg.name_tile || tile = cfg.mem_tile in
        let behavior =
          if tile = cfg.name_tile then name_behavior
          else if tile = cfg.mem_tile then mem_behavior
          else Monitor.idle_behavior
        in
        Monitor.create ~region:(quad_of tile) sim ~tile (monitor_cfg_of tile)
          (fabric_of tile) ~trace:k_trace ~flight:k_flight ~privileged behavior)
  in
  monitors_ref := monitors;
  (* NoC delivery -> monitor ingress. *)
  Array.iteri
    (fun i m ->
      Mesh.set_receiver k_mesh (coord_of i) (fun pkt ->
          Monitor.ingress m pkt.Packet.payload))
    monitors;
  let t =
    {
      k_sim = sim;
      cfg;
      k_mesh;
      k_dram;
      k_alloc;
      k_trace;
      k_flight;
      monitors;
      quad_regions;
      unregister_names;
      fault_subs = [];
      fault_log = [];
    }
  in
  t_ref := Some t;
  t
