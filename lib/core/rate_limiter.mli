(** Token-bucket rate limiter — the monitor's defence against resource
    exhaustion by a babbling or malicious accelerator (paper §4.5).

    Tokens are measured in flits. The bucket refills at [rate] flits per
    cycle up to [burst]; a message may leave the monitor only when the
    bucket holds its full flit cost. *)

type t

val create : rate:float -> burst:int -> t
(** [rate] must be positive; [burst] at least 1 and at least as large as
    the largest message the tile sends (or that message can never pass). *)

val unlimited : unit -> t
(** A limiter that always admits (used when enforcement is off). *)

val advance : t -> now:int -> unit
(** Refill for elapsed cycles. Idempotent per cycle. *)

val try_take : t -> int -> bool
(** [try_take t n] consumes [n] tokens if available. *)

val would_admit : t -> int -> bool
(** [would_admit t n] — are [n] tokens available right now? Does not
    consume and does not count a stall. Use before taking from several
    buckets atomically. *)

val take : t -> int -> unit
(** Unconditionally consume (caller checked {!would_admit}). *)

val tokens : t -> float
val stalled_msgs : t -> int
(** Number of admission attempts that were refused (for stats). *)
