module Sim = Apiary_engine.Sim
module Dram = Apiary_mem.Dram
module Seg_alloc = Apiary_mem.Seg_alloc
module Rights = Apiary_cap.Rights

(* ------------------------------------------------------------------ *)
(* Name service *)

let name_service () =
  let table : (string, Message.addr) Hashtbl.t = Hashtbl.create 32 in
  let on_message shell (m : Message.t) =
    match m.Message.kind with
    | Message.Control (Message.Register { name }) ->
      Hashtbl.replace table name
        { Message.tile = m.Message.src.Message.tile; ep = Message.app_ep };
      Monitor.priv_respond_control shell m Message.Register_ok
    | Message.Control (Message.Lookup { name }) ->
      Monitor.priv_respond_control shell m
        (Message.Lookup_reply { name; result = Hashtbl.find_opt table name })
    | _ -> ()
  in
  let unregister tile =
    let stale =
      Hashtbl.fold
        (fun name (a : Message.addr) acc ->
          if a.Message.tile = tile then name :: acc else acc)
        table []
    in
    List.iter (Hashtbl.remove table) stale
  in
  ( {
      Monitor.bname = "os.name";
      on_boot = (fun _ -> ());
      on_message;
      on_tick = None;
    },
    unregister )

(* ------------------------------------------------------------------ *)
(* Memory service *)

let mem_service dram alloc =
  (* base -> (owner tile, capability handle in the owner's table) *)
  let owners : (int, int * Apiary_cap.Store.handle) Hashtbl.t = Hashtbl.create 64 in
  let rec submit_with_retry shell thunk =
    (* The DRAM queue can refuse under load; hardware would assert
       backpressure, we retry a few cycles later. *)
    if not (thunk ()) then
      Sim.after (Monitor.sim shell) 4 (fun () -> submit_with_retry shell thunk)
  in
  let on_message shell (m : Message.t) =
    let requester = m.Message.src.Message.tile in
    match m.Message.kind with
    | Message.Control (Message.Alloc_req { bytes }) ->
      (match Seg_alloc.alloc alloc bytes with
      | Error `Out_of_memory ->
        Monitor.priv_respond_control shell m
          (Message.Alloc_denied { reason = "out of memory" })
      | Ok base ->
        let cap =
          Monitor.priv_mint_segment shell ~for_tile:requester ~base ~len:bytes
            ~rights:Rights.full
        in
        Hashtbl.replace owners base (requester, cap);
        Monitor.priv_respond_control shell m (Message.Alloc_ok { cap; base; bytes }))
    | Message.Control (Message.Free_req { base }) ->
      (match Hashtbl.find_opt owners base with
      | Some (owner, cap) when owner = requester ->
        Hashtbl.remove owners base;
        ignore (Monitor.priv_revoke shell ~for_tile:owner cap);
        Seg_alloc.free alloc base;
        Monitor.priv_respond_control shell m Message.Free_ok
      | Some _ ->
        Monitor.priv_respond_control shell m
          (Message.Mem_denied { reason = "not the owner" })
      | None ->
        Monitor.priv_respond_control shell m
          (Message.Mem_denied { reason = "unknown segment" }))
    | Message.Control (Message.Mem_read_req { addr; len }) ->
      (* The requesting monitor already enforced the capability; see mli. *)
      submit_with_retry shell (fun () ->
          Dram.read dram ~addr ~len (fun data ->
              Monitor.priv_respond_control shell m ~payload:data
                Message.Mem_read_ok))
    | Message.Control (Message.Mem_write_req { addr }) ->
      let data = m.Message.payload in
      submit_with_retry shell (fun () ->
          Dram.write dram ~addr data (fun () ->
              Monitor.priv_respond_control shell m Message.Mem_write_ok))
    | _ -> ()
  in
  {
    Monitor.bname = "os.mem";
    on_boot = (fun _ -> ());
    on_message;
    on_tick = None;
  }

(* ------------------------------------------------------------------ *)
(* Management service *)

type health = Alive | Suspect of int | Dead

let health_to_string = function
  | Alive -> "alive"
  | Suspect n -> Printf.sprintf "suspect(%d)" n
  | Dead -> "dead"

type mgmt = {
  misses : (int, int) Hashtbl.t;
  dead_after : int;
  mutable probes : int;
}

let mgmt_service ?(period = 2000) ?(probe_timeout = 1500) ?(dead_after = 3)
    ~tiles () =
  assert (probe_timeout < period);
  let st = { misses = Hashtbl.create 16; dead_after; probes = 0 } in
  List.iter (fun tile -> Hashtbl.replace st.misses tile 0) tiles;
  let probe shell tile =
    st.probes <- st.probes + 1;
    Monitor.ping shell ~timeout:probe_timeout ~tile ~ep:Message.app_ep
      (fun alive ->
        if alive then Hashtbl.replace st.misses tile 0
        else
          let cur = Option.value ~default:0 (Hashtbl.find_opt st.misses tile) in
          Hashtbl.replace st.misses tile (cur + 1))
  in
  let on_boot shell =
    Sim.every (Monitor.sim shell) period (fun () ->
        if Monitor.state shell = Monitor.Running then
          List.iter (probe shell) tiles)
  in
  ( {
      Monitor.bname = "os.mgmt";
      on_boot;
      on_message = (fun _ _ -> ());
      on_tick = None;
    },
    st )

let health_of st tile =
  match Hashtbl.find_opt st.misses tile with
  | None | Some 0 -> Alive
  | Some n when n >= st.dead_after -> Dead
  | Some n -> Suspect n

let dead_tiles st =
  Hashtbl.fold (fun tile n acc -> if n >= st.dead_after then tile :: acc else acc)
    st.misses []
  |> List.sort compare

let probes_sent st = st.probes
