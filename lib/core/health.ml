module Sim = Apiary_engine.Sim
module Perf = Apiary_obs.Perf
module Flight = Apiary_obs.Flight
module Mesh = Apiary_noc.Mesh
module Router = Apiary_noc.Router

type config = {
  period : int;
  stuck_deadline : int;
  congestion_occ : int;
  congestion_checks : int;
}

let default_config =
  { period = 200; stuck_deadline = 2_000; congestion_occ = 32; congestion_checks = 3 }

type alarm =
  | Stuck_tile of { tile : int; stalled_for : int }
  | Congested_router of { tile : int; occ : int }

let alarm_to_string = function
  | Stuck_tile { tile; stalled_for } ->
    Printf.sprintf "stuck tile=%d stalled_for=%d" tile stalled_for
  | Congested_router { tile; occ } ->
    Printf.sprintf "congested tile=%d occ=%d" tile occ

type t = {
  kernel : Kernel.t;
  cfg : config;
  stuck_raised : bool array;
  cong_streak : int array;
  cong_raised : bool array;
  mutable subs : (alarm -> unit) list;
  mutable log : (int * alarm) list;  (* newest first *)
  mutable n_checks : int;
}

let on_alarm t f = t.subs <- f :: t.subs
let alarms t = List.rev t.log
let checks t = t.n_checks

let raise_alarm t now alarm =
  t.log <- (now, alarm) :: t.log;
  let tile, name =
    match alarm with
    | Stuck_tile { tile; _ } -> (tile, "stuck")
    | Congested_router { tile; _ } -> (tile, "congested")
  in
  Flight.record (Kernel.flight t.kernel) ~ts:now ~tile ~cat:"health" ~name
    ~args:[ ("alarm", alarm_to_string alarm) ] ();
  List.iter (fun f -> f alarm) t.subs

let check t =
  let k = t.kernel in
  let now = Sim.now (Kernel.sim k) in
  t.n_checks <- t.n_checks + 1;
  for tile = 0 to Kernel.n_tiles k - 1 do
    let m = Kernel.monitor k tile in
    Perf.incr (Monitor.perf m) Perf.heartbeats;
    (* Heartbeat deadline. Only a tile with queued work can miss it: an
       idle tile is healthy no matter how stale its progress timestamp,
       which is what keeps quiescence fast-forward (cycles skipped
       precisely because nothing had work) from tripping false alarms. *)
    (match Monitor.state m with
    | Monitor.Running ->
      let backlog = Monitor.rx_backlog m > 0 || Monitor.has_egress_backlog m in
      let stalled_for = now - Monitor.last_progress m in
      if backlog && stalled_for > t.cfg.stuck_deadline then begin
        if not t.stuck_raised.(tile) then begin
          t.stuck_raised.(tile) <- true;
          raise_alarm t now (Stuck_tile { tile; stalled_for })
        end
      end
      else t.stuck_raised.(tile) <- false
    | _ -> t.stuck_raised.(tile) <- false);
    (* Congestion: input occupancy pinned at/above the threshold for
       [congestion_checks] consecutive polls. One alarm per episode. *)
    let r = Mesh.router_at (Kernel.mesh k) (Kernel.coord_of_tile k tile) in
    let occ = Router.input_occupancy r in
    if occ >= t.cfg.congestion_occ then begin
      t.cong_streak.(tile) <- t.cong_streak.(tile) + 1;
      if t.cong_streak.(tile) >= t.cfg.congestion_checks && not t.cong_raised.(tile)
      then begin
        t.cong_raised.(tile) <- true;
        raise_alarm t now (Congested_router { tile; occ })
      end
    end
    else begin
      t.cong_streak.(tile) <- 0;
      t.cong_raised.(tile) <- false
    end
  done

let create ?(config = default_config) k =
  let n = Kernel.n_tiles k in
  let t =
    {
      kernel = k;
      cfg = config;
      stuck_raised = Array.make n false;
      cong_streak = Array.make n 0;
      cong_raised = Array.make n false;
      subs = [];
      log = [];
      n_checks = 0;
    }
  in
  Sim.every (Kernel.sim k) config.period (fun () -> check t);
  t
