(** The board health layer: watchdog deadlines over the monitors'
    progress heartbeats, plus NoC congestion alarms.

    A periodic in-fabric check (an event, so it fires across quiescence
    fast-forward) sweeps every tile. A tile trips the watchdog when it
    has queued work — rx backlog or committed egress — but has made no
    progress for longer than the deadline: that is a stuck or livelocked
    accelerator. An idle tile never trips, however long it sleeps, so
    the quiescence engine's skipped cycles cannot cause false positives.
    A router trips the congestion alarm when its input occupancy stays
    at or above a threshold for several consecutive checks.

    Each check also pulses the [Perf.heartbeats] slot of every tile's
    counter block, making watchdog coverage itself visible through the
    stat service. Alarms are edge-triggered (one per episode), recorded
    into the board's flight recorder, and delivered to subscribers —
    e.g. a policy that fail-stops the tile, or the rack watchdog that
    feeds cluster failover. *)

type config = {
  period : int;  (** Cycles between sweeps. *)
  stuck_deadline : int;
      (** A tile with queued work and no progress for more than this many
          cycles is declared stuck. *)
  congestion_occ : int;  (** Router input-occupancy alarm threshold, flits. *)
  congestion_checks : int;
      (** Consecutive sweeps at/above threshold before alarming. *)
}

val default_config : config
(** period 200, deadline 2000, occupancy 32 for 3 checks. *)

type alarm =
  | Stuck_tile of { tile : int; stalled_for : int }
  | Congested_router of { tile : int; occ : int }

val alarm_to_string : alarm -> string

type t

val create : ?config:config -> Kernel.t -> t
(** Install the periodic sweep on the kernel's simulator. *)

val on_alarm : t -> (alarm -> unit) -> unit

val alarms : t -> (int * alarm) list
(** All alarms so far as [(cycle, alarm)], oldest first. *)

val checks : t -> int
(** Number of sweeps executed. *)
