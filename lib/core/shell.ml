(* The accelerator-facing view of a tile. See shell.mli. *)

type t = Monitor.t
type conn = Monitor.conn = { cap : Apiary_cap.Store.handle; peer : Message.addr; service : string }

type mem_handle = Monitor.mem_handle = {
  mcap : Apiary_cap.Store.handle;
  base : int;
  len : int;
}

type rpc_error = Monitor.rpc_error = Timeout | Nacked of string | Denied of string

let rpc_error_to_string = Monitor.rpc_error_to_string

type behavior = Monitor.behavior = {
  bname : string;
  on_boot : t -> unit;
  on_message : t -> Message.t -> unit;
  on_tick : (t -> unit) option;
}

let behavior ?on_tick ?(on_boot = fun _ -> ()) ?(on_message = fun _ _ -> ()) bname =
  { bname; on_boot; on_message; on_tick }

let tile = Monitor.tile
let sim = Monitor.sim
let now t = Apiary_engine.Sim.now (Monitor.sim t)
let obs_board = Monitor.obs_board
let self_addr = Monitor.self_addr
let rng = Monitor.rng
let log = Monitor.log
let register_service = Monitor.register_service
let lookup = Monitor.lookup
let connect = Monitor.connect
let send_data = Monitor.send_data
let request = Monitor.request
let respond = Monitor.respond
let alloc = Monitor.alloc
let free = Monitor.free
let read_mem = Monitor.read_mem
let write_mem = Monitor.write_mem
let grant_mem = Monitor.grant_mem
let mem_handle_of_grant = Monitor.mem_handle_of_grant
let busy = Monitor.busy
type grant = Monitor.grant =
  | Accept
  | Accept_limited of { rate : float; burst : int }
  | Refuse

let set_connect_policy = Monitor.set_connect_policy
let set_grant_policy = Monitor.set_grant_policy
let set_on_error = Monitor.set_on_error
let raise_fault = Monitor.raise_fault
let send_raw = Monitor.send_raw
let ping = Monitor.ping
