(** Data transforms implemented by the accelerator library.

    These are real, reversible codecs — composition experiments move real
    bytes and tests verify end-to-end integrity, not just message counts.

    - {b RLE}: byte-oriented run-length encoding (lossless).
    - {b LZ}: a small LZ77 variant with a 4 KiB window (lossless) —
      stands in for the third-party compression accelerator of paper §2.
    - {b delta/quantize}: row-delta + quantization transform (lossy, like
      a toy video intra-frame encoder); [video_decode] inverts it up to
      the quantization error. *)

val rle_encode : bytes -> bytes
val rle_decode : bytes -> (bytes, string) result

val lz_encode : bytes -> bytes
val lz_decode : bytes -> (bytes, string) result

val video_encode : q:int -> width:int -> bytes -> bytes
(** [q] is the quantization shift (0–7); larger = smaller output, more
    loss. [width] is the row stride in bytes. *)

val video_decode : q:int -> width:int -> bytes -> (bytes, string) result

val max_error : q:int -> int
(** Worst-case per-byte reconstruction error of the video codec. *)
