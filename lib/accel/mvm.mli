module Shell := Apiary_core.Shell

(** A quantized matrix–vector (int8) inference accelerator — the ML
    serving workload the paper opens with (Microsoft's direct-attached
    FPGAs for DNN inference, its refs [14,17]).

    The weight matrix lives {e once} in DRAM: a loader tile uploads it
    through capability-checked writes, then grants a read-only,
    non-grantable view of the segment to each worker replica
    ({!Shell.grant_mem}) — the shared-memory composition §4.6's segments
    are designed for. Workers stream the weights into their local "SRAM"
    at boot (real DRAM read traffic) and then serve requests at a modelled
    64-MAC/cycle rate.

    Arithmetic is exact int8×int8→int32 with a >>7 requantization, so
    clients can verify every inference bit-for-bit against {!reference}. *)

(** Request/response codec. *)
module Proto : sig
  val opcode : int

  val encode_req : bytes -> bytes
  (** Activations: one signed byte per input dimension. *)

  val decode_resp : bytes -> (bytes, string) result
  (** Output: one signed byte per output dimension, or a remote error. *)
end

val reference : weights:bytes -> rows:int -> cols:int -> bytes -> bytes
(** Ground-truth int8 matvec: out[r] = clamp((Σ_c W[r,c]·x[c]) >> 7). *)

val random_weights : Apiary_engine.Rng.t -> rows:int -> cols:int -> bytes

type stats = {
  mutable inferences : int;
  mutable weight_bytes_loaded : int;  (** DRAM traffic at worker boot *)
  mutable rejected : int;  (** malformed / wrong-dimension requests *)
}

val loader : ?workers_service_prefix:string -> weights:bytes -> rows:int ->
  cols:int -> worker_tiles:int list -> unit -> Shell.behavior
(** Uploads the weights to DRAM and grants each worker tile a read-only
    view, then messages each worker (service ["<prefix><i>"], default
    prefix ["mvm"]) the grant handle. *)

val worker : ?service:string -> rows:int -> cols:int -> unit ->
  Shell.behavior * stats
(** Registers [service] (default ["mvm0"]-style names are the caller's
    choice), waits for the loader's grant, streams the weights in, then
    serves [Proto] requests. Requests arriving before the weights are
    ready get an error response. *)
