module Shell := Apiary_core.Shell

(** Multi-context accelerator with optional preemption — the execution
    model study of paper §4.4.

    The accelerator hosts [nctx] independent user contexts (processes in
    Apiary's sense: "one user context running on one accelerator").
    Each context maintains per-session architectural state (a running
    checksum and message count) that requests accumulate into, so losing
    a context's state is observable.

    A {e poison} request models an input that trips an internal error:

    - [preemptible = true] (SYNERGY-style): the context's architectural
      state is identified and isolated, so only that context is killed;
      its peers keep running and its clients get an error status.
    - [preemptible = false] (plain concurrent accelerator): the error is
      unrecoverable and the whole tile fail-stops — every context dies.

    Contexts can also be snapshotted and restored ({!snapshot} /
    {!restore}), which is what lets the OS swap a context out to DRAM or
    migrate it to another tile. *)

(** Wire protocol. *)
module Proto : sig
  val opcode : int

  type req = { ctx : int; poison : bool; data : bytes }

  type status =
    | Accum of int32  (** new running checksum after folding in [data] *)
    | Ctx_dead
    | Poisoned

  val encode_req : req -> bytes
  val decode_req : bytes -> (req, string) result
  val encode_resp : status -> bytes
  val decode_resp : bytes -> (status, string) result
end

type api

val behavior :
  ?service:string -> nctx:int -> preemptible:bool -> ?cost:int -> unit ->
  Shell.behavior * api

val snapshot : api -> int -> bytes option
(** Serialize a context's architectural state ([None] if dead/out of
    range). *)

val restore : api -> int -> bytes -> (unit, string) result
(** Install saved state into a context slot (revives a dead slot). *)

val alive : api -> int -> bool
val ops_served : api -> int
