(* ------------------------------------------------------------------ *)
(* RLE: stream of (run length 1..255, byte) pairs. *)

let rle_encode src =
  let n = Bytes.length src in
  let out = Buffer.create (n / 2 + 8) in
  let i = ref 0 in
  while !i < n do
    let b = Bytes.get src !i in
    let run = ref 1 in
    while !i + !run < n && !run < 255 && Bytes.get src (!i + !run) = b do
      incr run
    done;
    Buffer.add_uint8 out !run;
    Buffer.add_char out b;
    i := !i + !run
  done;
  Buffer.to_bytes out

let rle_decode src =
  let n = Bytes.length src in
  if n mod 2 <> 0 then Error "rle: odd input length"
  else begin
    let out = Buffer.create (n * 2) in
    let ok = ref true in
    let i = ref 0 in
    while !i < n do
      let run = Char.code (Bytes.get src !i) in
      let b = Bytes.get src (!i + 1) in
      if run = 0 then ok := false;
      for _ = 1 to run do
        Buffer.add_char out b
      done;
      i := !i + 2
    done;
    if !ok then Ok (Buffer.to_bytes out) else Error "rle: zero run length"
  end

(* ------------------------------------------------------------------ *)
(* LZ77 with a 4 KiB window.
   Token stream: 0x00 len<1..255> <len literal bytes>
                 0x01 dist_hi dist_lo len  (match of len+4 at distance) *)

let window = 4095
let min_match = 4
let max_match = 255 + min_match

let lz_encode src =
  let n = Bytes.length src in
  let out = Buffer.create (n / 2 + 16) in
  let positions : (string, int) Hashtbl.t = Hashtbl.create 1024 in
  let lits = Buffer.create 256 in
  let flush_lits () =
    let s = Buffer.contents lits in
    Buffer.clear lits;
    let len = String.length s in
    let i = ref 0 in
    while !i < len do
      let chunk = min 255 (len - !i) in
      Buffer.add_uint8 out 0x00;
      Buffer.add_uint8 out chunk;
      Buffer.add_substring out s !i chunk;
      i := !i + chunk
    done
  in
  let i = ref 0 in
  while !i < n do
    let emit_literal () =
      Buffer.add_char lits (Bytes.get src !i);
      incr i
    in
    if !i + min_match > n then emit_literal ()
    else begin
      let key = Bytes.sub_string src !i min_match in
      let cand = Hashtbl.find_opt positions key in
      Hashtbl.replace positions key !i;
      match cand with
      | Some j when !i - j <= window ->
        let limit = min (n - !i) max_match in
        let len = ref 0 in
        (* Overlapping matches are fine: the decoder copies byte-wise. *)
        while !len < limit && Bytes.get src (j + !len) = Bytes.get src (!i + !len) do
          incr len
        done;
        if !len >= min_match then begin
          flush_lits ();
          let dist = !i - j in
          Buffer.add_uint8 out 0x01;
          Buffer.add_uint8 out (dist lsr 8);
          Buffer.add_uint8 out (dist land 0xFF);
          Buffer.add_uint8 out (!len - min_match);
          i := !i + !len
        end
        else emit_literal ()
      | Some _ | None -> emit_literal ()
    end
  done;
  flush_lits ();
  Buffer.to_bytes out

let lz_decode src =
  let n = Bytes.length src in
  let out = Buffer.create (n * 3) in
  let err = ref None in
  let i = ref 0 in
  let fail m =
    err := Some m;
    i := n
  in
  while !i < n do
    match Char.code (Bytes.get src !i) with
    | 0x00 ->
      if !i + 2 > n then fail "lz: truncated literal header"
      else begin
        let len = Char.code (Bytes.get src (!i + 1)) in
        if len = 0 then fail "lz: zero literal run"
        else if !i + 2 + len > n then fail "lz: truncated literals"
        else begin
          Buffer.add_subbytes out src (!i + 2) len;
          i := !i + 2 + len
        end
      end
    | 0x01 ->
      if !i + 4 > n then fail "lz: truncated match"
      else begin
        let dist =
          (Char.code (Bytes.get src (!i + 1)) lsl 8)
          lor Char.code (Bytes.get src (!i + 2))
        in
        let len = Char.code (Bytes.get src (!i + 3)) + min_match in
        let pos = Buffer.length out in
        if dist = 0 || dist > pos then fail "lz: bad distance"
        else begin
          for k = 0 to len - 1 do
            Buffer.add_char out (Buffer.nth out (pos - dist + k))
          done;
          i := !i + 4
        end
      end
    | t -> fail (Printf.sprintf "lz: bad token %d" t)
  done;
  match !err with Some m -> Error m | None -> Ok (Buffer.to_bytes out)

(* ------------------------------------------------------------------ *)
(* Video transform: closed-loop DPCM per row (predict from the
   reconstructed left neighbour), quantized deltas, then RLE.
   Header: q u8, width u16, length u32. *)

let clamp_byte v = if v < 0 then 0 else if v > 255 then 255 else v
let clamp_i8 v = if v < -128 then -128 else if v > 127 then 127 else v

let dpcm_forward ~q ~width src =
  let n = Bytes.length src in
  let out = Bytes.create n in
  let i = ref 0 in
  while !i < n do
    let row_end = min n (!i + width) in
    let prev = ref 0 in
    for x = !i to row_end - 1 do
      let v = Char.code (Bytes.get src x) in
      let d = v - !prev in
      let dq = clamp_i8 (d asr q) in
      Bytes.set out x (Char.chr (dq land 0xFF));
      prev := clamp_byte (!prev + (dq lsl q))
    done;
    i := row_end
  done;
  out

let dpcm_inverse ~q ~width src =
  let n = Bytes.length src in
  let out = Bytes.create n in
  let i = ref 0 in
  while !i < n do
    let row_end = min n (!i + width) in
    let prev = ref 0 in
    for x = !i to row_end - 1 do
      let raw = Char.code (Bytes.get src x) in
      let dq = if raw >= 128 then raw - 256 else raw in
      prev := clamp_byte (!prev + (dq lsl q));
      Bytes.set out x (Char.chr !prev)
    done;
    i := row_end
  done;
  out

let video_encode ~q ~width src =
  assert (q >= 0 && q <= 7);
  assert (width >= 1 && width <= 0xFFFF);
  let body = rle_encode (dpcm_forward ~q ~width src) in
  let out = Buffer.create (Bytes.length body + 7) in
  Buffer.add_uint8 out q;
  Buffer.add_uint16_be out width;
  Buffer.add_uint16_be out (Bytes.length src lsr 16);
  Buffer.add_uint16_be out (Bytes.length src land 0xFFFF);
  Buffer.add_bytes out body;
  Buffer.to_bytes out

let video_decode ~q ~width src =
  if Bytes.length src < 7 then Error "video: truncated header"
  else begin
    let hq = Char.code (Bytes.get src 0) in
    let hw = (Char.code (Bytes.get src 1) lsl 8) lor Char.code (Bytes.get src 2) in
    let hlen =
      (Char.code (Bytes.get src 3) lsl 24)
      lor (Char.code (Bytes.get src 4) lsl 16)
      lor (Char.code (Bytes.get src 5) lsl 8)
      lor Char.code (Bytes.get src 6)
    in
    if hq <> q then Error "video: quantizer mismatch"
    else if hw <> width then Error "video: width mismatch"
    else
      match rle_decode (Bytes.sub src 7 (Bytes.length src - 7)) with
      | Error e -> Error e
      | Ok body ->
        if Bytes.length body <> hlen then Error "video: length mismatch"
        else Ok (dpcm_inverse ~q ~width body)
  end

let max_error ~q = if q = 0 then 128 else (1 lsl q) - 1
