module Shell := Apiary_core.Shell

(** Context swapping — the OS half of the paper's §4.4 preemption story:
    once an accelerator's architectural state can be externalized, the
    monitor/OS can hold {e more user contexts than the accelerator has
    resident slots} by swapping victim state to DRAM.

    This manager serves the {!Multi_ctx.Proto} protocol for [logical]
    contexts while keeping only [resident] of them on-tile. A request for
    a swapped-out context triggers a real eviction (capability-checked
    DRAM write of the LRU victim's serialized state) and a fetch (DRAM
    read) before the request is served — so swap costs are measured, not
    assumed. Requests arriving mid-swap queue behind it. *)

type stats = {
  mutable served : int;
  mutable resident_hits : int;
  mutable swap_ins : int;
  mutable swap_outs : int;
  mutable queued : int;  (** requests that had to wait for a swap *)
}

val behavior :
  ?service:string -> logical:int -> resident:int -> unit ->
  Shell.behavior * stats
(** All [logical] contexts start zeroed in a DRAM segment allocated at
    boot. [resident] must be at least 1. Poison requests kill only the
    targeted context (the manager is inherently preemptible). *)
