module Shell := Apiary_core.Shell

(** A key-value store accelerator — the paper's §2 example of an
    independent tenant application hosted on a shared FPGA (after
    Caribou/multi-tenant KV work it cites).

    Values live in real simulated DRAM behind the memory service: a PUT
    allocates from the accelerator's segment and issues capability-checked
    writes; a GET issues reads. Every value is stored with an Adler-32
    checksum, so memory corruption by a co-tenant (the E4
    enforcement-off experiment) is {e detected} at read time rather than
    silently returned. *)

(** Wire protocol, also used by external clients (E2). *)
module Proto : sig
  val opcode : int
  (** Data opcode carrying KV requests. *)

  type req = Get of string | Put of string * bytes | Del of string

  type resp =
    | Found of bytes
    | Stored
    | Deleted
    | Not_found
    | Failed of string  (** includes detected corruption *)

  val encode_req : req -> bytes
  val decode_req : bytes -> (req, string) result
  val encode_resp : resp -> bytes
  val decode_resp : bytes -> (resp, string) result
end

(** Live operation counters. *)
type stats = {
  mutable gets : int;
  mutable puts : int;
  mutable dels : int;
  mutable misses : int;
  mutable corruptions : int;  (** checksum mismatches detected on GET *)
  mutable oom : int;
}

val behavior :
  ?service:string -> ?store_bytes:int -> ?base_cost:int -> ?cost_per_byte_x16:int ->
  unit -> Shell.behavior * stats
(** [service] defaults to ["kv"]. [store_bytes] is the DRAM segment the
    store allocates at boot (default 256 KiB). Each operation charges
    [base_cost] cycles (default 16) plus [cost_per_byte_x16] cycles per
    16 bytes of value (default 1) of accelerator compute, in addition to
    the real DRAM access latency. *)
