module Checksum = Apiary_engine.Checksum
module Seg_alloc = Apiary_mem.Seg_alloc
module Message = Apiary_core.Message
module Shell = Apiary_core.Shell

module Proto = struct
  let opcode = 0x4B56 (* "KV" *)

  type req = Get of string | Put of string * bytes | Del of string

  type resp =
    | Found of bytes
    | Stored
    | Deleted
    | Not_found
    | Failed of string

  let encode_req r =
    let out = Buffer.create 32 in
    (match r with
    | Get k ->
      Buffer.add_uint8 out 0;
      Buffer.add_uint16_be out (String.length k);
      Buffer.add_string out k
    | Put (k, v) ->
      Buffer.add_uint8 out 1;
      Buffer.add_uint16_be out (String.length k);
      Buffer.add_string out k;
      Buffer.add_bytes out v
    | Del k ->
      Buffer.add_uint8 out 2;
      Buffer.add_uint16_be out (String.length k);
      Buffer.add_string out k);
    Buffer.to_bytes out

  let decode_req b =
    let n = Bytes.length b in
    if n < 3 then Error "kv: short request"
    else begin
      let klen = (Char.code (Bytes.get b 1) lsl 8) lor Char.code (Bytes.get b 2) in
      if 3 + klen > n then Error "kv: bad key length"
      else
        let k = Bytes.sub_string b 3 klen in
        match Char.code (Bytes.get b 0) with
        | 0 -> Ok (Get k)
        | 1 -> Ok (Put (k, Bytes.sub b (3 + klen) (n - 3 - klen)))
        | 2 -> Ok (Del k)
        | t -> Error (Printf.sprintf "kv: bad op %d" t)
    end

  let encode_resp r =
    let out = Buffer.create 32 in
    (match r with
    | Found v ->
      Buffer.add_uint8 out 0;
      Buffer.add_bytes out v
    | Stored -> Buffer.add_uint8 out 1
    | Deleted -> Buffer.add_uint8 out 2
    | Not_found -> Buffer.add_uint8 out 3
    | Failed reason ->
      Buffer.add_uint8 out 4;
      Buffer.add_string out reason);
    Buffer.to_bytes out

  let decode_resp b =
    if Bytes.length b < 1 then Error "kv: empty response"
    else
      let rest () = Bytes.sub b 1 (Bytes.length b - 1) in
      match Char.code (Bytes.get b 0) with
      | 0 -> Ok (Found (rest ()))
      | 1 -> Ok Stored
      | 2 -> Ok Deleted
      | 3 -> Ok Not_found
      | 4 -> Ok (Failed (Bytes.to_string (rest ())))
      | t -> Error (Printf.sprintf "kv: bad status %d" t)
end

type stats = {
  mutable gets : int;
  mutable puts : int;
  mutable dels : int;
  mutable misses : int;
  mutable corruptions : int;
  mutable oom : int;
}

type entry = { off : int; len : int; crc : int32 }

type store = {
  mutable seg : Shell.mem_handle option;
  mutable arena : Seg_alloc.t option;  (* sub-allocator inside the segment *)
  index : (string, entry) Hashtbl.t;
  st : stats;
}

let behavior ?(service = "kv") ?(store_bytes = 256 * 1024) ?(base_cost = 16)
    ?(cost_per_byte_x16 = 1) () =
  let s =
    {
      seg = None;
      arena = None;
      index = Hashtbl.create 256;
      st = { gets = 0; puts = 0; dels = 0; misses = 0; corruptions = 0; oom = 0 };
    }
  in
  let charge sh bytes =
    Shell.busy sh (base_cost + (cost_per_byte_x16 * (bytes / 16)))
  in
  let respond sh msg resp =
    Shell.respond sh msg ~opcode:Proto.opcode (Proto.encode_resp resp)
  in
  let handle_put sh msg key value =
    match (s.seg, s.arena) with
    | Some seg, Some arena ->
      s.st.puts <- s.st.puts + 1;
      charge sh (Bytes.length value);
      (* Replace semantics: drop any existing entry first. *)
      (match Hashtbl.find_opt s.index key with
      | Some old ->
        Hashtbl.remove s.index key;
        Seg_alloc.free arena old.off
      | None -> ());
      (match Seg_alloc.alloc arena ~align:16 (max 1 (Bytes.length value)) with
      | Error `Out_of_memory ->
        s.st.oom <- s.st.oom + 1;
        respond sh msg (Proto.Failed "store full")
      | Ok off ->
        Shell.write_mem sh seg ~off:(off - seg.Shell.base) value (fun r ->
            match r with
            | Ok () ->
              Hashtbl.replace s.index key
                { off; len = Bytes.length value; crc = Checksum.adler32 value };
              respond sh msg Proto.Stored
            | Error e ->
              Seg_alloc.free arena off;
              respond sh msg (Proto.Failed (Shell.rpc_error_to_string e))))
    | _ -> respond sh msg (Proto.Failed "store not ready")

  and handle_get sh msg key =
    match (s.seg, Hashtbl.find_opt s.index key) with
    | Some seg, Some e ->
      s.st.gets <- s.st.gets + 1;
      charge sh e.len;
      Shell.read_mem sh seg ~off:(e.off - seg.Shell.base) ~len:e.len (fun r ->
          match r with
          | Ok data ->
            if Checksum.adler32 data = e.crc then respond sh msg (Proto.Found data)
            else begin
              s.st.corruptions <- s.st.corruptions + 1;
              respond sh msg (Proto.Failed "integrity check failed")
            end
          | Error e -> respond sh msg (Proto.Failed (Shell.rpc_error_to_string e)))
    | _, None ->
      s.st.gets <- s.st.gets + 1;
      s.st.misses <- s.st.misses + 1;
      charge sh 0;
      respond sh msg Proto.Not_found
    | None, _ -> respond sh msg (Proto.Failed "store not ready")

  and handle_del sh msg key =
    match (s.arena, Hashtbl.find_opt s.index key) with
    | Some arena, Some e ->
      s.st.dels <- s.st.dels + 1;
      charge sh 0;
      Hashtbl.remove s.index key;
      Seg_alloc.free arena e.off;
      respond sh msg Proto.Deleted
    | _, None ->
      s.st.dels <- s.st.dels + 1;
      s.st.misses <- s.st.misses + 1;
      respond sh msg Proto.Not_found
    | None, _ -> respond sh msg (Proto.Failed "store not ready")
  in
  let on_boot sh =
    Shell.alloc sh ~bytes:store_bytes (fun r ->
        match r with
        | Ok seg ->
          s.seg <- Some seg;
          s.arena <-
            Some (Seg_alloc.create ~base:seg.Shell.base ~size:seg.Shell.len
                    Seg_alloc.First_fit);
          Shell.register_service sh service
        | Error e ->
          Shell.raise_fault sh
            (Printf.sprintf "kv: cannot allocate store: %s"
               (Shell.rpc_error_to_string e)))
  in
  let on_message sh (msg : Message.t) =
    match msg.Message.kind with
    | Message.Data { opcode } when opcode = Proto.opcode ->
      (match Proto.decode_req msg.Message.payload with
      | Error e -> respond sh msg (Proto.Failed e)
      | Ok (Proto.Get k) -> handle_get sh msg k
      | Ok (Proto.Put (k, v)) -> handle_put sh msg k v
      | Ok (Proto.Del k) -> handle_del sh msg k)
    | _ -> ()
  in
  (Shell.behavior service ~on_boot ~on_message, s.st)
