module Sim = Apiary_engine.Sim
module Rng = Apiary_engine.Rng
module Message = Apiary_core.Message
module Shell = Apiary_core.Shell

type plan =
  | Crash_at of int
  | Hang_at of int
  | Wild_send_at of { at : int; dst : Message.addr; payload_bytes : int }
  | Flood_via_conn_at of { at : int; service : string; payload_bytes : int }
  | Mem_stomp_at of { at : int; addr : int; len : int }

let arm sh plan =
  let sim = Shell.sim sh in
  let at_cycle at f =
    let d = at - Sim.now sim in
    Sim.after sim (max 1 d) f
  in
  match plan with
  | Crash_at at -> at_cycle at (fun () -> Shell.raise_fault sh "injected crash")
  | Hang_at at -> at_cycle at (fun () -> Shell.busy sh (1 lsl 40))
  | Wild_send_at { at; dst; payload_bytes } ->
    at_cycle at (fun () ->
        Shell.send_raw sh ~dst ~opcode:0xBAD (Rng.bytes (Shell.rng sh) payload_bytes))
  | Flood_via_conn_at { at; service; payload_bytes } ->
    at_cycle at (fun () ->
        Shell.connect sh ~service (fun r ->
            match r with
            | Error _ -> ()
            | Ok conn ->
              let junk = Rng.bytes (Shell.rng sh) payload_bytes in
              (* A flood is never quiescent: even when its pushes fail the
                 drop counters advance, so it must run every cycle. *)
              Sim.add_clocked ~name:"accel.flood" sim (fun () ->
                  Shell.send_data sh conn ~opcode:0xF1 junk;
                  Sim.Busy)))
  | Mem_stomp_at { at; addr; len } ->
    at_cycle at (fun () ->
        let forged = { Shell.mcap = 0; base = addr; len } in
        let garbage = Rng.bytes (Shell.rng sh) len in
        Shell.write_mem sh forged ~off:0 garbage (fun _ -> ()))

let wrap plans inner =
  {
    inner with
    Shell.bname = inner.Shell.bname ^ "+faulty";
    on_boot =
      (fun sh ->
        inner.Shell.on_boot sh;
        List.iter (arm sh) plans);
  }
