module Sim = Apiary_engine.Sim
module Rng = Apiary_engine.Rng
module Rights = Apiary_cap.Rights
module Message = Apiary_core.Message
module Shell = Apiary_core.Shell

module Proto = struct
  let opcode = 0x4D56 (* "MV" *)

  let encode_req activations = activations

  let decode_resp b =
    if Bytes.length b < 1 then Error "mvm: empty response"
    else
      match Char.code (Bytes.get b 0) with
      | 0 -> Ok (Bytes.sub b 1 (Bytes.length b - 1))
      | 1 -> Error (Bytes.sub_string b 1 (Bytes.length b - 1))
      | t -> Error (Printf.sprintf "mvm: bad status %d" t)
end

let op_grant = 0x4757 (* "GW": loader hands a worker its weight grant *)

let i8 b = if b >= 128 then b - 256 else b
let clamp_i8 v = if v < -128 then -128 else if v > 127 then 127 else v

let reference ~weights ~rows ~cols x =
  assert (Bytes.length weights = rows * cols);
  assert (Bytes.length x = cols);
  let out = Bytes.create rows in
  for r = 0 to rows - 1 do
    let acc = ref 0 in
    for c = 0 to cols - 1 do
      acc :=
        !acc
        + (i8 (Char.code (Bytes.get weights ((r * cols) + c)))
          * i8 (Char.code (Bytes.get x c)))
    done;
    Bytes.set out r (Char.chr (clamp_i8 (!acc asr 7) land 0xFF))
  done;
  out

let random_weights rng ~rows ~cols = Rng.bytes rng (rows * cols)

type stats = {
  mutable inferences : int;
  mutable weight_bytes_loaded : int;
  mutable rejected : int;
}

let chunk = 1024

(* ------------------------------------------------------------------ *)
(* Loader *)

let encode_grant ~handle ~rows ~cols =
  let b = Bytes.create 8 in
  Bytes.set_int32_be b 0 (Int32.of_int handle);
  Bytes.set_uint16_be b 4 rows;
  Bytes.set_uint16_be b 6 cols;
  b

let decode_grant b =
  if Bytes.length b <> 8 then Error "mvm: bad grant"
  else
    Ok
      ( Int32.to_int (Bytes.get_int32_be b 0),
        Bytes.get_uint16_be b 4,
        Bytes.get_uint16_be b 6 )

let loader ?(workers_service_prefix = "mvm") ~weights ~rows ~cols ~worker_tiles () =
  assert (Bytes.length weights = rows * cols);
  let on_boot sh =
    Shell.alloc sh ~bytes:(rows * cols) (fun r ->
        match r with
        | Error e ->
          Shell.raise_fault sh
            (Printf.sprintf "mvm loader: alloc failed: %s"
               (Shell.rpc_error_to_string e))
        | Ok seg ->
          (* Upload the matrix in chunks (real DRAM writes). *)
          let total = rows * cols in
          let rec upload off =
            if off >= total then hand_out ()
            else begin
              let len = min chunk (total - off) in
              Shell.write_mem sh seg ~off (Bytes.sub weights off len) (fun r ->
                  match r with
                  | Ok () -> upload (off + len)
                  | Error e ->
                    Shell.raise_fault sh
                      (Printf.sprintf "mvm loader: upload failed: %s"
                         (Shell.rpc_error_to_string e)))
            end
          and hand_out () =
            List.iteri
              (fun idx tile ->
                match Shell.grant_mem sh seg ~to_tile:tile ~rights:Rights.ro with
                | Error e ->
                  Shell.log sh
                    (Printf.sprintf "grant to tile %d failed: %s" tile
                       (Apiary_cap.Store.error_to_string e))
                | Ok handle ->
                  let service = Printf.sprintf "%s%d" workers_service_prefix idx in
                  let rec tell attempts =
                    Shell.connect sh ~service (fun r ->
                        match r with
                        | Ok conn ->
                          Shell.send_data sh conn ~opcode:op_grant
                            (encode_grant ~handle ~rows ~cols)
                        | Error _ when attempts > 0 ->
                          Sim.after (Shell.sim sh) 1_000 (fun () ->
                              tell (attempts - 1))
                        | Error e ->
                          Shell.log sh
                            (Printf.sprintf "cannot reach %s: %s" service
                               (Shell.rpc_error_to_string e)))
                  in
                  tell 20)
              worker_tiles
          in
          upload 0)
  in
  Shell.behavior "mvm.loader" ~on_boot

(* ------------------------------------------------------------------ *)
(* Worker *)

let worker ?(service = "mvm0") ~rows ~cols () =
  let st = { inferences = 0; weight_bytes_loaded = 0; rejected = 0 } in
  let sram : bytes option ref = ref None in
  let respond_err sh msg reason =
    st.rejected <- st.rejected + 1;
    let b = Bytes.of_string ("\001" ^ reason) in
    Shell.respond sh msg ~opcode:Proto.opcode b
  in
  let stream_in sh mh =
    (* Fetch the matrix into on-chip SRAM through capability-checked
       reads. *)
    let total = rows * cols in
    let buf = Bytes.create total in
    let rec fetch off =
      if off >= total then sram := Some buf
      else begin
        let len = min chunk (total - off) in
        Shell.read_mem sh mh ~off ~len (fun r ->
            match r with
            | Ok data ->
              Bytes.blit data 0 buf off len;
              st.weight_bytes_loaded <- st.weight_bytes_loaded + len;
              fetch (off + len)
            | Error e ->
              Shell.raise_fault sh
                (Printf.sprintf "mvm worker: weight fetch failed: %s"
                   (Shell.rpc_error_to_string e)))
      end
    in
    fetch 0
  in
  let on_message sh (msg : Message.t) =
    match msg.Message.kind with
    | Message.Data { opcode } when opcode = op_grant ->
      (match decode_grant msg.Message.payload with
      | Error _ -> ()
      | Ok (handle, r, c) ->
        if r <> rows || c <> cols then
          Shell.raise_fault sh "mvm worker: dimension mismatch with loader"
        else
          (match Shell.mem_handle_of_grant sh handle with
          | None -> Shell.raise_fault sh "mvm worker: invalid weight grant"
          | Some mh -> stream_in sh mh))
    | Message.Data { opcode } when opcode = Proto.opcode ->
      (match !sram with
      | None -> respond_err sh msg "weights not loaded"
      | Some weights ->
        let x = msg.Message.payload in
        if Bytes.length x <> cols then respond_err sh msg "bad dimension"
        else begin
          (* 64 MACs/cycle systolic array. *)
          Shell.busy sh (rows * cols / 64);
          let out = reference ~weights ~rows ~cols x in
          st.inferences <- st.inferences + 1;
          let resp = Bytes.create (1 + rows) in
          Bytes.set resp 0 '\000';
          Bytes.blit out 0 resp 1 rows;
          Shell.respond sh msg ~opcode:Proto.opcode resp
        end)
    | _ -> ()
  in
  ( Shell.behavior service
      ~on_boot:(fun sh -> Shell.register_service sh service)
      ~on_message,
    st )
