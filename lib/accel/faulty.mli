module Shell := Apiary_core.Shell
module Message := Apiary_core.Message

(** Fault and misbehaviour injection — the adversarial accelerators of
    experiment E4 and the failure modes of paper §4.4.

    [wrap plans inner] behaves exactly like [inner] until a plan's
    trigger cycle, then misbehaves. Plans compose: a tile can flood and
    later crash. All misbehaviours use only the shell API — exactly the
    attack surface an untrusted accelerator really has. *)

type plan =
  | Crash_at of int
      (** Explicit internal error: [Shell.raise_fault] (fail-stop). *)
  | Hang_at of int
      (** Go busy forever: stops draining the queue (watchdog fodder). *)
  | Wild_send_at of { at : int; dst : Message.addr; payload_bytes : int }
      (** Send to a tile we hold no capability for. *)
  | Flood_via_conn_at of { at : int; service : string; payload_bytes : int }
      (** Connect legitimately, then emit one message every cycle —
          resource exhaustion through an authorized channel. *)
  | Mem_stomp_at of { at : int; addr : int; len : int }
      (** Forge a memory handle for an absolute address we do not own and
          write garbage over it. Caught by the monitor when enforcement
          is on; corrupts a co-tenant when it is off. *)

val wrap : plan list -> Shell.behavior -> Shell.behavior
