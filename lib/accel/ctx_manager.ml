module Checksum = Apiary_engine.Checksum
module Message = Apiary_core.Message
module Shell = Apiary_core.Shell

type stats = {
  mutable served : int;
  mutable resident_hits : int;
  mutable swap_ins : int;
  mutable swap_outs : int;
  mutable queued : int;
}

let state_bytes = 8

type ctx = { mutable sum : int32; mutable count : int; mutable dead : bool }

let serialize c =
  let b = Bytes.create state_bytes in
  Bytes.set_int32_be b 0 c.sum;
  Bytes.set_int32_be b 4 (Int32.of_int (c.count lor if c.dead then 0x40000000 else 0));
  b

let deserialize b c =
  c.sum <- Bytes.get_int32_be b 0;
  let raw = Int32.to_int (Bytes.get_int32_be b 4) in
  c.count <- raw land 0x3FFFFFFF;
  c.dead <- raw land 0x40000000 <> 0

type slot = { mutable owner : int (* logical ctx, -1 = free *); state : ctx }

type mgr = {
  logical : int;
  slots : slot array;
  mutable seg : Shell.mem_handle option;
  resident_of : int array;  (* logical ctx -> slot index, -1 = swapped out *)
  mutable lru : int list;  (* slot indices, most recent first *)
  mutable busy_swapping : bool;
  pending : (Message.t * Multi_ctx.Proto.req) Queue.t;
  st : stats;
}

let touch m si = m.lru <- si :: List.filter (fun x -> x <> si) m.lru

let lru_victim m =
  match List.rev m.lru with
  | v :: _ -> v
  | [] -> 0

let respond sh msg status =
  Shell.respond sh msg ~opcode:Multi_ctx.Proto.opcode
    (Multi_ctx.Proto.encode_resp status)

(* Serve a request whose context is resident in [si]. *)
let serve m sh msg (r : Multi_ctx.Proto.req) si =
  let c = m.slots.(si).state in
  touch m si;
  if c.dead then respond sh msg Multi_ctx.Proto.Ctx_dead
  else if r.Multi_ctx.Proto.poison then begin
    c.dead <- true;
    respond sh msg Multi_ctx.Proto.Poisoned
  end
  else begin
    Shell.busy sh (8 + (Bytes.length r.Multi_ctx.Proto.data / 16));
    let combined = Bytes.create (Bytes.length r.Multi_ctx.Proto.data + 4) in
    Bytes.set_int32_be combined 0 c.sum;
    Bytes.blit r.Multi_ctx.Proto.data 0 combined 4 (Bytes.length r.Multi_ctx.Proto.data);
    c.sum <- Checksum.adler32 combined;
    c.count <- c.count + 1;
    m.st.served <- m.st.served + 1;
    respond sh msg (Multi_ctx.Proto.Accum c.sum)
  end

(* Bring [ctx_id] on-tile: evict the LRU victim (write-back), then fetch
   the target state. Exactly one swap runs at a time. *)
let rec swap_in m sh msg r ctx_id =
  m.busy_swapping <- true;
  let seg = Option.get m.seg in
  let si = lru_victim m in
  let finish_fetch () =
    Shell.read_mem sh seg ~off:(ctx_id * state_bytes) ~len:state_bytes (fun res ->
        (match res with
        | Ok b -> deserialize b m.slots.(si).state
        | Error _ ->
          (* Treat an unreadable context as dead rather than corrupt. *)
          m.slots.(si).state.dead <- true);
        m.slots.(si).owner <- ctx_id;
        m.resident_of.(ctx_id) <- si;
        m.st.swap_ins <- m.st.swap_ins + 1;
        m.busy_swapping <- false;
        serve m sh msg r si;
        drain_pending m sh)
  in
  let victim = m.slots.(si).owner in
  if victim >= 0 then begin
    m.resident_of.(victim) <- -1;
    m.st.swap_outs <- m.st.swap_outs + 1;
    Shell.write_mem sh seg ~off:(victim * state_bytes)
      (serialize m.slots.(si).state) (fun _ -> finish_fetch ())
  end
  else finish_fetch ()

and handle m sh msg (r : Multi_ctx.Proto.req) =
  let ctx_id = r.Multi_ctx.Proto.ctx in
  if ctx_id >= m.logical then respond sh msg Multi_ctx.Proto.Ctx_dead
  else if m.busy_swapping then begin
    m.st.queued <- m.st.queued + 1;
    Queue.add (msg, r) m.pending
  end
  else
    match m.resident_of.(ctx_id) with
    | si when si >= 0 ->
      m.st.resident_hits <- m.st.resident_hits + 1;
      serve m sh msg r si
    | _ -> swap_in m sh msg r ctx_id

and drain_pending m sh =
  if (not m.busy_swapping) && not (Queue.is_empty m.pending) then begin
    let msg, r = Queue.take m.pending in
    handle m sh msg r
  end

let behavior ?(service = "ctxmgr") ~logical ~resident () =
  assert (logical >= 1 && resident >= 1 && resident <= logical);
  let m =
    {
      logical;
      slots =
        Array.init resident (fun _ ->
            { owner = -1; state = { sum = 1l; count = 0; dead = false } });
      seg = None;
      resident_of = Array.make logical (-1);
      lru = List.init resident (fun si -> si);
      busy_swapping = false;
      pending = Queue.create ();
      st = { served = 0; resident_hits = 0; swap_ins = 0; swap_outs = 0; queued = 0 };
    }
  in
  let on_boot sh =
    Shell.alloc sh ~bytes:(logical * state_bytes) (fun res ->
        match res with
        | Error e ->
          Shell.raise_fault sh
            (Printf.sprintf "ctxmgr: no swap segment: %s" (Shell.rpc_error_to_string e))
        | Ok seg ->
          (* Initialize every context's backing state. *)
          let zero = serialize { sum = 1l; count = 0; dead = false } in
          let rec init i =
            if i >= logical then begin
              m.seg <- Some seg;
              Shell.register_service sh service
            end
            else
              Shell.write_mem sh seg ~off:(i * state_bytes) zero (fun _ ->
                  init (i + 1))
          in
          init 0)
  in
  let on_message sh (msg : Message.t) =
    match msg.Message.kind with
    | Message.Data { opcode } when opcode = Multi_ctx.Proto.opcode ->
      (match Multi_ctx.Proto.decode_req msg.Message.payload with
      | Ok r -> handle m sh msg r
      | Error _ -> ())
    | _ -> ()
  in
  (Shell.behavior service ~on_boot ~on_message, m.st)
