module Shell := Apiary_core.Shell

(** Library of reusable accelerator behaviors.

    Each is a {!Shell.behavior} that registers a service name at boot and
    speaks request/response over data messages. Compute time is modelled
    with [Shell.busy] using per-byte cost factors loosely calibrated to
    pipelined streaming hardware (1 byte/cycle/lane class). *)

(** Opcodes spoken by the library (replies echo the request opcode). *)
val op_echo : int
val op_encode : int
val op_compress : int
val op_checksum : int
val op_stream : int

val echo : ?service:string -> ?cost:int -> unit -> Shell.behavior
(** Replies with the request payload after [cost] cycles (default 0). *)

val sink : ?service:string -> unit -> Shell.behavior * (unit -> int)
(** Accepts one-way data, counts it; returns the counter reader. *)

val video_encoder :
  ?service:string -> ?q:int -> ?width:int -> ?cycles_per_byte_x16:int -> unit ->
  Shell.behavior
(** Intra-frame encoder over {!Codec.video_encode} (default [q = 2],
    [width = 64]). Cost: 16 cycles per 16 input bytes by default — a
    1 byte/cycle systolic transform. *)

val compressor :
  ?service:string -> ?algo:[ `Rle | `Lz ] -> ?cycles_per_byte_x16:int -> unit ->
  Shell.behavior
(** The "third-party compression accelerator" of paper §2 (default
    [`Lz]). *)

val checksummer : ?service:string -> ?cycles_per_byte_x16:int -> unit -> Shell.behavior
(** CRC-32 engine: replies with the 4-byte big-endian checksum. *)

val transform_stage :
  service:string -> next:string -> f:(bytes -> bytes) -> ?cost_per_byte_x16:int ->
  unit -> Shell.behavior
(** A pipeline stage: applies [f], forwards to service [next], and relays
    the downstream response to the original requester — the video
    processing pipeline composition of paper §2. *)

val load_balancer : service:string -> backends:string list -> unit -> Shell.behavior
(** Round-robin request spreader over replicated backends (paper §4.1:
    "a replicated accelerator with internal load balancing"). Connects to
    every backend at boot and relays request/response pairs. *)
