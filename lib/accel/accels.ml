module Checksum = Apiary_engine.Checksum
module Message = Apiary_core.Message
module Shell = Apiary_core.Shell

let op_echo = 1
let op_encode = 2
let op_compress = 3
let op_checksum = 4
let op_stream = 5

let charge sh ~cost_x16 nbytes = Shell.busy sh (cost_x16 * (nbytes / 16 + 1))

let echo ?(service = "echo") ?(cost = 0) () =
  Shell.behavior service
    ~on_boot:(fun sh -> Shell.register_service sh service)
    ~on_message:(fun sh msg ->
      match msg.Message.kind with
      | Message.Data _ ->
        if cost > 0 then Shell.busy sh cost;
        Shell.respond sh msg ~opcode:op_echo msg.Message.payload
      | _ -> ())

let sink ?(service = "sink") () =
  let count = ref 0 in
  ( Shell.behavior service
      ~on_boot:(fun sh -> Shell.register_service sh service)
      ~on_message:(fun _ msg ->
        match msg.Message.kind with Message.Data _ -> incr count | _ -> ()),
    fun () -> !count )

let serve ~service ~opcode ~cost_x16 ~f =
  Shell.behavior service
    ~on_boot:(fun sh -> Shell.register_service sh service)
    ~on_message:(fun sh msg ->
      match msg.Message.kind with
      | Message.Data _ ->
        charge sh ~cost_x16 (Bytes.length msg.Message.payload);
        Shell.respond sh msg ~opcode (f msg.Message.payload)
      | _ -> ())

let video_encoder ?(service = "encode") ?(q = 2) ?(width = 64)
    ?(cycles_per_byte_x16 = 16) () =
  serve ~service ~opcode:op_encode ~cost_x16:cycles_per_byte_x16
    ~f:(Codec.video_encode ~q ~width)

let compressor ?(service = "compress") ?(algo = `Lz) ?(cycles_per_byte_x16 = 16) () =
  let f = match algo with `Rle -> Codec.rle_encode | `Lz -> Codec.lz_encode in
  serve ~service ~opcode:op_compress ~cost_x16:cycles_per_byte_x16 ~f

let checksummer ?(service = "checksum") ?(cycles_per_byte_x16 = 4) () =
  let f payload =
    let crc = Checksum.crc32 payload in
    let out = Bytes.create 4 in
    Bytes.set_uint16_be out 0 (Int32.to_int (Int32.shift_right_logical crc 16));
    Bytes.set_uint16_be out 2 (Int32.to_int (Int32.logand crc 0xFFFFl));
    out
  in
  serve ~service ~opcode:op_checksum ~cost_x16:cycles_per_byte_x16 ~f

let transform_stage ~service ~next ~f ?(cost_per_byte_x16 = 16) () =
  let downstream = ref None in
  let connect_downstream sh =
    Shell.connect sh ~service:next (fun r ->
        match r with
        | Ok conn -> downstream := Some conn
        | Error _ ->
          (* The next stage may boot later than us; retry. *)
          Apiary_engine.Sim.after (Shell.sim sh) 2000 (fun () ->
              Shell.connect sh ~service:next (fun r ->
                  match r with
                  | Ok conn -> downstream := Some conn
                  | Error e ->
                    Shell.raise_fault sh
                      (Printf.sprintf "stage %s: cannot reach %s (%s)" service next
                         (Shell.rpc_error_to_string e)))))
  in
  Shell.behavior service
    ~on_boot:(fun sh ->
      Shell.register_service sh service;
      connect_downstream sh)
    ~on_message:(fun sh msg ->
      match (msg.Message.kind, !downstream) with
      | Message.Data _, Some conn ->
        charge sh ~cost_x16:cost_per_byte_x16 (Bytes.length msg.Message.payload);
        let transformed = f msg.Message.payload in
        Shell.request sh conn ~opcode:op_encode transformed (fun r ->
            match r with
            | Ok reply -> Shell.respond sh msg ~opcode:op_encode reply.Message.payload
            | Error e ->
              Shell.respond sh msg ~opcode:op_encode
                (Bytes.of_string ("STAGE-ERROR:" ^ Shell.rpc_error_to_string e)))
      | Message.Data _, None ->
        Shell.respond sh msg ~opcode:op_encode (Bytes.of_string "STAGE-ERROR:not-ready")
      | _ -> ())

let load_balancer ~service ~backends () =
  let conns = Array.make (List.length backends) None in
  let next = ref 0 in
  let pick () =
    (* Round-robin over connected backends. *)
    let n = Array.length conns in
    let rec go tries =
      if tries >= n then None
      else begin
        let i = !next mod n in
        next := !next + 1;
        match conns.(i) with Some c -> Some c | None -> go (tries + 1)
      end
    in
    go 0
  in
  Shell.behavior service
    ~on_boot:(fun sh ->
      Shell.register_service sh service;
      List.iteri
        (fun i b ->
          Shell.connect sh ~service:b (fun r ->
              match r with Ok c -> conns.(i) <- Some c | Error _ -> ()))
        backends)
    ~on_message:(fun sh msg ->
      match (msg.Message.kind, pick ()) with
      | Message.Data { opcode }, Some conn ->
        Shell.request sh conn ~opcode msg.Message.payload (fun r ->
            match r with
            | Ok reply -> Shell.respond sh msg ~opcode reply.Message.payload
            | Error e ->
              Shell.respond sh msg ~opcode
                (Bytes.of_string ("LB-ERROR:" ^ Shell.rpc_error_to_string e)))
      | Message.Data { opcode }, None ->
        Shell.respond sh msg ~opcode (Bytes.of_string "LB-ERROR:no-backends")
      | _ -> ())
