module Checksum = Apiary_engine.Checksum
module Message = Apiary_core.Message
module Shell = Apiary_core.Shell

module Proto = struct
  let opcode = 0x4358 (* "CX" *)

  type req = { ctx : int; poison : bool; data : bytes }
  type status = Accum of int32 | Ctx_dead | Poisoned

  let encode_req r =
    let out = Buffer.create (Bytes.length r.data + 2) in
    Buffer.add_uint8 out r.ctx;
    Buffer.add_uint8 out (if r.poison then 1 else 0);
    Buffer.add_bytes out r.data;
    Buffer.to_bytes out

  let decode_req b =
    if Bytes.length b < 2 then Error "ctx: short request"
    else
      Ok
        {
          ctx = Char.code (Bytes.get b 0);
          poison = Char.code (Bytes.get b 1) = 1;
          data = Bytes.sub b 2 (Bytes.length b - 2);
        }

  let encode_resp = function
    | Accum v ->
      let out = Bytes.create 5 in
      Bytes.set out 0 '\000';
      Bytes.set_int32_be out 1 v;
      out
    | Ctx_dead -> Bytes.make 1 '\001'
    | Poisoned -> Bytes.make 1 '\002'

  let decode_resp b =
    if Bytes.length b < 1 then Error "ctx: empty response"
    else
      match Char.code (Bytes.get b 0) with
      | 0 ->
        if Bytes.length b < 5 then Error "ctx: short accum"
        else Ok (Accum (Bytes.get_int32_be b 1))
      | 1 -> Ok Ctx_dead
      | 2 -> Ok Poisoned
      | t -> Error (Printf.sprintf "ctx: bad status %d" t)
end

type ctx = { mutable sum : int32; mutable count : int; mutable dead : bool }

type api = { ctxs : ctx array; mutable ops : int }

(* Architectural state serialization: sum(4) count(4). This is exactly
   the state a SYNERGY-style tool would identify as needing save/restore. *)
let serialize c =
  let b = Bytes.create 8 in
  Bytes.set_int32_be b 0 c.sum;
  Bytes.set_int32_be b 4 (Int32.of_int c.count);
  b

let deserialize b =
  if Bytes.length b <> 8 then Error "ctx: bad snapshot size"
  else Ok (Bytes.get_int32_be b 0, Int32.to_int (Bytes.get_int32_be b 4))

let behavior ?(service = "mctx") ~nctx ~preemptible ?(cost = 8) () =
  assert (nctx >= 1 && nctx <= 256);
  let api =
    { ctxs = Array.init nctx (fun _ -> { sum = 1l; count = 0; dead = false }); ops = 0 }
  in
  let respond sh msg st =
    Shell.respond sh msg ~opcode:Proto.opcode (Proto.encode_resp st)
  in
  let on_message sh (msg : Message.t) =
    match msg.Message.kind with
    | Message.Data { opcode } when opcode = Proto.opcode ->
      (match Proto.decode_req msg.Message.payload with
      | Error _ -> ()
      | Ok r ->
        if r.Proto.ctx >= nctx then respond sh msg Proto.Ctx_dead
        else begin
          let c = api.ctxs.(r.Proto.ctx) in
          if c.dead then respond sh msg Proto.Ctx_dead
          else if r.Proto.poison then
            if preemptible then begin
              (* Swap out just this context; peers keep their state and
                 keep executing. *)
              c.dead <- true;
              respond sh msg Proto.Poisoned
            end
            else
              (* No per-context state capture: the only safe reaction is
                 tile-wide fail-stop. *)
              Shell.raise_fault sh "unhandled error in context"
          else begin
            Shell.busy sh (cost + (Bytes.length r.Proto.data / 16));
            (* Fold the data into the session checksum: order-dependent
               state that proves continuity across swaps. *)
            let combined = Bytes.create (Bytes.length r.Proto.data + 4) in
            Bytes.set_int32_be combined 0 c.sum;
            Bytes.blit r.Proto.data 0 combined 4 (Bytes.length r.Proto.data);
            c.sum <- Checksum.adler32 combined;
            c.count <- c.count + 1;
            api.ops <- api.ops + 1;
            respond sh msg (Proto.Accum c.sum)
          end
        end)
    | _ -> ()
  in
  ( Shell.behavior service
      ~on_boot:(fun sh -> Shell.register_service sh service)
      ~on_message,
    api )

let snapshot api i =
  if i < 0 || i >= Array.length api.ctxs then None
  else
    let c = api.ctxs.(i) in
    if c.dead then None else Some (serialize c)

let restore api i b =
  if i < 0 || i >= Array.length api.ctxs then Error "ctx: out of range"
  else
    match deserialize b with
    | Error e -> Error e
    | Ok (sum, count) ->
      let c = api.ctxs.(i) in
      c.sum <- sum;
      c.count <- count;
      c.dead <- false;
      Ok ()

let alive api i =
  i >= 0 && i < Array.length api.ctxs && not api.ctxs.(i).dead

let ops_served api = api.ops
