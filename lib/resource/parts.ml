type t = {
  name : string;
  family : string;
  year : int;
  logic_cells : int;
  bram_kb : int;
}

let xc7v585t =
  { name = "XC7V585T"; family = "Virtex 7"; year = 2010; logic_cells = 582_720; bram_kb = 28_620 }

let xc7vh870t =
  { name = "XC7VH870T"; family = "Virtex 7"; year = 2010; logic_cells = 876_160; bram_kb = 50_760 }

let vu3p =
  { name = "VU3P"; family = "Virtex UltraScale+"; year = 2016; logic_cells = 862_000; bram_kb = 25_344 }

let vu9p =
  { name = "VU9P"; family = "Virtex UltraScale+"; year = 2017; logic_cells = 2_586_000; bram_kb = 75_900 }

let vu29p =
  { name = "VU29P"; family = "Virtex UltraScale+"; year = 2018; logic_cells = 3_780_000; bram_kb = 66_000 }

let all = [ xc7v585t; xc7vh870t; vu3p; vu9p; vu29p ]
let table1 = [ xc7v585t; xc7vh870t; vu3p; vu29p ]
let luts p = int_of_float (float_of_int p.logic_cells /. 1.6)
let find name = List.find_opt (fun p -> p.name = name) all

let generation_scaling () =
  let small = float_of_int vu3p.logic_cells /. float_of_int xc7v585t.logic_cells in
  let large = float_of_int vu29p.logic_cells /. float_of_int xc7vh870t.logic_cells in
  (small, large)
