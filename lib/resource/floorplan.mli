(** Floorplanning: how many Apiary tiles fit on a part, and what fraction
    of the fabric the OS costs — the scalability half of §6-Q1 ("the
    amount of FPGA logic resources devoted to Apiary grows with the
    number of tiles"). *)

type plan = {
  part : Parts.t;
  tiles : int;
  os_logic_cells : int;  (** static region + per-tile OS hardware *)
  slot_logic_cells : int;  (** per-tile budget left for the accelerator *)
  overhead_frac : float;  (** OS cells / part cells *)
}

val plan : part:Parts.t -> tiles:int -> noc:Area.noc_params -> cap_entries:int -> plan option
(** [None] when the OS alone exceeds the part. *)

val max_tiles :
  part:Parts.t -> noc:Area.noc_params -> cap_entries:int ->
  min_slot_cells:int -> int
(** Largest tile count such that each slot still has [min_slot_cells]
    for user logic. *)

val pp_plan : Format.formatter -> plan -> unit
