type plan = {
  part : Parts.t;
  tiles : int;
  os_logic_cells : int;
  slot_logic_cells : int;
  overhead_frac : float;
}

let plan ~part ~tiles ~noc ~cap_entries =
  assert (tiles >= 1);
  let per_tile = Area.per_tile noc ~cap_entries in
  let os_cells =
    Area.logic_cells (Area.add Area.static_region (Area.scale tiles per_tile))
  in
  let budget = part.Parts.logic_cells - os_cells in
  if budget <= 0 then None
  else
    Some
      {
        part;
        tiles;
        os_logic_cells = os_cells;
        slot_logic_cells = budget / tiles;
        overhead_frac = float_of_int os_cells /. float_of_int part.Parts.logic_cells;
      }

let max_tiles ~part ~noc ~cap_entries ~min_slot_cells =
  let fits n =
    match plan ~part ~tiles:n ~noc ~cap_entries with
    | Some p -> p.slot_logic_cells >= min_slot_cells
    | None -> false
  in
  let rec grow n = if fits (n + 1) then grow (n + 1) else n in
  if fits 1 then grow 1 else 0

let pp_plan ppf p =
  Format.fprintf ppf
    "%-10s tiles=%-3d os=%-9d slot=%-9d overhead=%.1f%%"
    p.part.Parts.name p.tiles p.os_logic_cells p.slot_logic_cells
    (100.0 *. p.overhead_frac)
