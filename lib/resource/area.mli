(** Analytical LUT/FF/BRAM area model for Apiary's hardware components —
    the instrument for the paper's central open question (§6-Q1): "What
    is the overhead of the per-tile monitor?"

    Formulas follow standard FPGA NoC costing: input buffers in LUTRAM
    (dominant, linear in VCs × depth × flit width), a crossbar quadratic
    in ports, and per-port allocators. Constants are calibrated so a
    5-port 2-VC depth-4 32-bit router lands near published soft-router
    numbers (~1.5 k LUTs) and scale from there. The monitor is costed
    from its microarchitecture: capability table (BRAM + match logic),
    service table, token bucket, RPC tracker and protocol FSMs. *)

type footprint = { luts : int; ffs : int; bram_kb : int }

val add : footprint -> footprint -> footprint
val scale : int -> footprint -> footprint
val pp : Format.formatter -> footprint -> unit

type noc_params = { vcs : int; depth : int; flit_bits : int }

val router : noc_params -> footprint

val monitor : cap_entries:int -> service_entries:int -> egress_depth:int ->
  flit_bits:int -> footprint

val shell : rpc_entries:int -> flit_bits:int -> footprint
(** RX/TX queues, correlation tracker, reply windows. *)

val static_region : footprint
(** Boot/PR controller, DRAM controller, MAC — Apiary's static area,
    independent of tile count. *)

val per_tile : noc_params -> cap_entries:int -> footprint
(** router + monitor + shell with default table sizes. *)

val logic_cells : footprint -> int
(** LUTs × 1.6 (Xilinx marketing conversion), to compare against part
    capacities. *)
