type footprint = { luts : int; ffs : int; bram_kb : int }

let add a b =
  { luts = a.luts + b.luts; ffs = a.ffs + b.ffs; bram_kb = a.bram_kb + b.bram_kb }

let scale k f = { luts = k * f.luts; ffs = k * f.ffs; bram_kb = k * f.bram_kb }

let pp ppf f =
  Format.fprintf ppf "%d LUT / %d FF / %d Kb BRAM" f.luts f.ffs f.bram_kb

type noc_params = { vcs : int; depth : int; flit_bits : int }

let ports = 5

(* Input buffers: LUTRAM costs ~1 LUT per 2 bits of a 32-deep memory; a
   [depth]-deep, [flit_bits]-wide FIFO per VC per port. Crossbar: a
   [ports]-to-1 mux per output bit (~ports/2 LUTs per bit). Allocation:
   round-robin arbiter + VC state per port. *)
let router p =
  let buffer_luts = ports * p.vcs * ((p.depth * p.flit_bits / 64) + (p.flit_bits / 2)) in
  let xbar_luts = ports * p.flit_bits * (ports / 2) in
  let alloc_luts = ports * ((40 * p.vcs) + 60) in
  let luts = buffer_luts + xbar_luts + alloc_luts in
  let ffs = (ports * p.vcs * p.flit_bits) + (ports * 50) in
  { luts; ffs; bram_kb = 0 }

(* Monitor: the capability table lives in BRAM (72 bits/entry) with a
   comparator pipeline; the service table is small CAM-ish logic;
   the token bucket is one accumulator + compare; protocol FSMs and the
   bounds-check datapath round it out. *)
let monitor ~cap_entries ~service_entries ~egress_depth ~flit_bits =
  let cap_kb = cap_entries * 72 / 1024 in
  let cap_logic = 220 + (cap_entries / 8) in
  let svc_logic = 40 * service_entries in
  let bucket = 90 in
  let bounds_check = 180 in
  let fsm = 350 in
  let egress = (egress_depth * flit_bits / 64) + (flit_bits / 2) in
  {
    luts = cap_logic + svc_logic + bucket + bounds_check + fsm + egress;
    ffs = 400 + (cap_entries / 16 * 8) + (flit_bits * 2);
    bram_kb = max 1 cap_kb;
  }

let shell ~rpc_entries ~flit_bits =
  let queues = 2 * ((16 * flit_bits / 64) + (flit_bits / 2)) in
  let rpc = 60 + (rpc_entries * 6) in
  let windows = 80 in
  { luts = queues + rpc + windows + 150; ffs = 300 + flit_bits; bram_kb = 1 }

let static_region =
  (* PR controller ~1.2k, DDR controller ~12k, 100G MAC ~8k, boot ~1k. *)
  { luts = 22_200; ffs = 30_000; bram_kb = 2_000 }

let per_tile p ~cap_entries =
  add (router p)
    (add
       (monitor ~cap_entries ~service_entries:8 ~egress_depth:64
          ~flit_bits:p.flit_bits)
       (shell ~rpc_entries:32 ~flit_bits:p.flit_bits))

let logic_cells f = int_of_float (float_of_int f.luts *. 1.6)
