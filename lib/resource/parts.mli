(** FPGA part catalog.

    The four parts of the paper's Table 1 (smallest/largest of Virtex-7
    and Virtex UltraScale+) plus common datacenter parts, with public
    logic-cell counts. Xilinx markets "logic cells" ≈ 1.6 × 6-input LUTs;
    the area model works in LUTs and converts. *)

type t = {
  name : string;
  family : string;
  year : int;
  logic_cells : int;
  bram_kb : int;  (** block RAM, kilobits *)
}

val xc7v585t : t
val xc7vh870t : t
val vu3p : t
val vu9p : t
(** The AWS F1 part. *)

val vu29p : t

val all : t list
(** Sorted by year then size. *)

val table1 : t list
(** Exactly the paper's Table 1 rows, in its order. *)

val luts : t -> int
(** logic cells / 1.6, rounded. *)

val find : string -> t option

val generation_scaling : unit -> float * float
(** [(smallest_ratio, largest_ratio)] between the Virtex-7 and Virtex
    UltraScale+ generations — the paper's "about 50%" and "3x" claims. *)
