(** Datacenter client host: load generation against a networked service.

    Closed-loop mode keeps a fixed number of requests outstanding (each
    completion immediately issues the next); open-loop mode issues
    requests as a Poisson process regardless of completions, which is
    what exposes queueing at high load. End-to-end latency (request frame
    out to response frame in) is recorded per request. *)

module Sim := Apiary_engine.Sim
module Stats := Apiary_engine.Stats

type t

val create : Sim.t -> mac:Mac.t -> my_mac:int -> server_mac:int -> t

type workload = {
  service : string;
  op : int;
  gen : int -> bytes;  (** request body for the n-th request *)
}

val start_closed : t -> workload -> concurrency:int -> unit
(** Keep [concurrency] requests in flight until {!stop}. *)

val start_open : t -> workload -> rate:float -> unit
(** Poisson arrivals at [rate] requests/cycle until {!stop}. *)

val stop : t -> unit

val issued : t -> int
val completed : t -> int
val errors : t -> int
(** Responses with non-OK status. *)

val latency : t -> Stats.Histogram.t

val exemplars : t -> Apiary_obs.Exemplar.t
(** One retained request id per latency-histogram bucket (latest-wins):
    lets a p99 row name a concrete request whose spans the trace
    retains. *)

val on_response : t -> (Netproto.response -> unit) -> unit
(** Optional hook to inspect response bodies (e.g. KV verification). *)
