type request = { req_id : int; service : string; op : int; body : bytes }
type status = Ok_resp | Service_unavailable | Remote_error
type response = { rsp_id : int; status : status; body : bytes }

let status_to_string = function
  | Ok_resp -> "ok"
  | Service_unavailable -> "unavailable"
  | Remote_error -> "remote-error"

(* Leave room for the envelope header within one frame. *)
let max_body = 1500 - 64

(* Request: 'Q' u32 req_id u32 op u8 svc_len svc body
   Response: 'R' u32 rsp_id u8 status body *)

let encode_request (r : request) =
  let out = Buffer.create (Bytes.length r.body + 16) in
  Buffer.add_char out 'Q';
  Buffer.add_uint16_be out (r.req_id lsr 16);
  Buffer.add_uint16_be out (r.req_id land 0xFFFF);
  Buffer.add_uint16_be out (r.op lsr 16);
  Buffer.add_uint16_be out (r.op land 0xFFFF);
  Buffer.add_uint8 out (String.length r.service);
  Buffer.add_string out r.service;
  Buffer.add_bytes out r.body;
  Buffer.to_bytes out

(* [off] parses an envelope embedded at an offset (e.g. after netsvc's
   fabric framing) without the caller copying it out first. *)
let decode_request ?(off = 0) b =
  let n = Bytes.length b - off in
  if n < 10 || Bytes.get b off <> 'Q' then Error "netproto: not a request"
  else begin
    let req_id =
      (Bytes.get_uint16_be b (off + 1) lsl 16) lor Bytes.get_uint16_be b (off + 3)
    in
    let op =
      (Bytes.get_uint16_be b (off + 5) lsl 16) lor Bytes.get_uint16_be b (off + 7)
    in
    let slen = Char.code (Bytes.get b (off + 9)) in
    if 10 + slen > n then Error "netproto: truncated service name"
    else
      Ok
        {
          req_id;
          service = Bytes.sub_string b (off + 10) slen;
          op;
          body = Bytes.sub b (off + 10 + slen) (n - 10 - slen);
        }
  end

let status_to_int = function Ok_resp -> 0 | Service_unavailable -> 1 | Remote_error -> 2

let status_of_int = function
  | 0 -> Some Ok_resp
  | 1 -> Some Service_unavailable
  | 2 -> Some Remote_error
  | _ -> None

let encode_response (r : response) =
  let out = Buffer.create (Bytes.length r.body + 8) in
  Buffer.add_char out 'R';
  Buffer.add_uint16_be out (r.rsp_id lsr 16);
  Buffer.add_uint16_be out (r.rsp_id land 0xFFFF);
  Buffer.add_uint8 out (status_to_int r.status);
  Buffer.add_bytes out r.body;
  Buffer.to_bytes out

let decode_response ?(off = 0) b =
  let n = Bytes.length b - off in
  if n < 6 || Bytes.get b off <> 'R' then Error "netproto: not a response"
  else
    let rsp_id =
      (Bytes.get_uint16_be b (off + 1) lsl 16) lor Bytes.get_uint16_be b (off + 3)
    in
    match status_of_int (Char.code (Bytes.get b (off + 5))) with
    | None -> Error "netproto: bad status"
    | Some status -> Ok { rsp_id; status; body = Bytes.sub b (off + 6) (n - 6) }
