module Sim = Apiary_engine.Sim

type port = { link : Link.t; side : Link.side }

(* Per-port statistics, attributed to the ingress port of the frame
   (drops include frames discarded because the egress port was down). *)
type port_stats = {
  mutable p_forwarded : int;
  mutable p_flooded : int;
  mutable p_dropped : int;
}

type t = {
  sim : Sim.t;
  latency : int;
  fdb_capacity : int;
  ports : port option array;
  up : bool array;
  pstats : port_stats array;
  fdb : (int, int) Hashtbl.t;  (* MAC -> port *)
  fdb_order : int Queue.t;  (* MACs in learn order, for FIFO eviction *)
  mutable forwarded : int;
  mutable flooded : int;
  mutable dropped : int;
}

let create ?(fdb_capacity = 1024) sim ~nports ~latency =
  assert (nports > 0 && latency >= 0 && fdb_capacity > 0);
  {
    sim;
    latency;
    fdb_capacity;
    ports = Array.make nports None;
    up = Array.make nports true;
    pstats =
      Array.init nports (fun _ ->
          { p_forwarded = 0; p_flooded = 0; p_dropped = 0 });
    fdb = Hashtbl.create 32;
    fdb_order = Queue.create ();
    forwarded = 0;
    flooded = 0;
    dropped = 0;
  }

let learn t mac port =
  if Hashtbl.mem t.fdb mac then Hashtbl.replace t.fdb mac port
  else begin
    (* Bounded learning table: evict the oldest entry FIFO when full, so
       a MAC-flooding host cannot grow the table without bound. *)
    if Hashtbl.length t.fdb >= t.fdb_capacity then begin
      let victim = Queue.pop t.fdb_order in
      Hashtbl.remove t.fdb victim
    end;
    Hashtbl.add t.fdb mac port;
    Queue.push mac t.fdb_order
  end

let transmit t pi frame =
  match t.ports.(pi) with
  | None -> false
  | Some p ->
    if t.up.(pi) then begin
      Link.send p.link ~from:p.side frame;
      true
    end
    else false

let drop t in_port =
  t.dropped <- t.dropped + 1;
  t.pstats.(in_port).p_dropped <- t.pstats.(in_port).p_dropped + 1

let forward t in_port (frame : Frame.t) =
  if not t.up.(in_port) then drop t in_port
  else begin
    learn t frame.Frame.src in_port;
    Sim.after t.sim t.latency (fun () ->
        match Hashtbl.find_opt t.fdb frame.Frame.dst with
        | Some pi when pi <> in_port ->
          if transmit t pi frame then begin
            t.forwarded <- t.forwarded + 1;
            t.pstats.(in_port).p_forwarded <- t.pstats.(in_port).p_forwarded + 1
          end
          else drop t in_port (* egress port down or unplugged *)
        | Some _ -> drop t in_port (* destination is behind the ingress port *)
        | None ->
          t.flooded <- t.flooded + 1;
          t.pstats.(in_port).p_flooded <- t.pstats.(in_port).p_flooded + 1;
          Array.iteri
            (fun pi p ->
              if pi <> in_port && p <> None then ignore (transmit t pi frame))
            t.ports)
  end

let attach t ~port link side =
  assert (t.ports.(port) = None);
  t.ports.(port) <- Some { link; side };
  Link.on_recv link side (fun f -> forward t port f)

let set_port_up t ~port up = t.up.(port) <- up
let port_up t ~port = t.up.(port)
let frames_forwarded t = t.forwarded
let frames_flooded t = t.flooded
let frames_dropped t = t.dropped
let table_size t = Hashtbl.length t.fdb
let fdb_capacity t = t.fdb_capacity
let port_forwarded t ~port = t.pstats.(port).p_forwarded
let port_flooded t ~port = t.pstats.(port).p_flooded
let port_dropped t ~port = t.pstats.(port).p_dropped
