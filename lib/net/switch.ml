module Sim = Apiary_engine.Sim
module Span = Apiary_obs.Span
module Registry = Apiary_obs.Registry
module Stats = Apiary_engine.Stats

type port = { link : Link.t; side : Link.side }

(* Per-port statistics, attributed to the ingress port of the frame
   (drops include frames discarded because the egress port was down). *)
type port_stats = {
  mutable p_forwarded : int;
  mutable p_flooded : int;
  mutable p_dropped : int;
}

type t = {
  sim : Sim.t;
  latency : int;
  fdb_capacity : int;
  ports : port option array;
  up : bool array;
  pstats : port_stats array;
  fdb : (int, int) Hashtbl.t;  (* MAC -> port *)
  fdb_order : int Queue.t;  (* MACs in learn order, for FIFO eviction *)
  mutable forwarded : int;
  mutable flooded : int;
  mutable dropped : int;
}

let create ?(fdb_capacity = 1024) sim ~nports ~latency =
  assert (nports > 0 && latency >= 0 && fdb_capacity > 0);
  {
    sim;
    latency;
    fdb_capacity;
    ports = Array.make nports None;
    up = Array.make nports true;
    pstats =
      Array.init nports (fun _ ->
          { p_forwarded = 0; p_flooded = 0; p_dropped = 0 });
    fdb = Hashtbl.create 32;
    fdb_order = Queue.create ();
    forwarded = 0;
    flooded = 0;
    dropped = 0;
  }

let learn t mac port =
  if Hashtbl.mem t.fdb mac then Hashtbl.replace t.fdb mac port
  else begin
    (* Bounded learning table: evict the oldest entry FIFO when full, so
       a MAC-flooding host cannot grow the table without bound. *)
    if Hashtbl.length t.fdb >= t.fdb_capacity then begin
      let victim = Queue.pop t.fdb_order in
      Hashtbl.remove t.fdb victim
    end;
    Hashtbl.add t.fdb mac port;
    Queue.push mac t.fdb_order
  end

let transmit t pi frame =
  match t.ports.(pi) with
  | None -> false
  | Some p ->
    if t.up.(pi) then begin
      Link.send p.link ~from:p.side frame;
      true
    end
    else false

let drop t in_port =
  t.dropped <- t.dropped + 1;
  t.pstats.(in_port).p_dropped <- t.pstats.(in_port).p_dropped + 1

(* Span track for switch port [p]; the switch is rack-level (board -1),
   so ports share pid 0 with other rack components. *)
let obs_track p = 1000 + p

let obs_span t ?(lat = t.latency) in_port name =
  if Span.on () then
    (* The cut-through decision happened [lat] cycles ago; the span
       covers the switch transit so the trace shows frames dwelling in
       the ToR between the two boards' frame.tx/frame.rx instants. *)
    Span.complete ~cat:"switch" ~name ~track:(obs_track in_port)
      ~ts:(Sim.now t.sim - lat) ~dur:lat ()

let forward t in_port (frame : Frame.t) =
  if not t.up.(in_port) then begin
    drop t in_port;
    obs_span t ~lat:0 in_port "drop"
  end
  else begin
    learn t frame.Frame.src in_port;
    Sim.after t.sim t.latency (fun () ->
        match Hashtbl.find_opt t.fdb frame.Frame.dst with
        | Some pi when pi <> in_port ->
          if transmit t pi frame then begin
            t.forwarded <- t.forwarded + 1;
            t.pstats.(in_port).p_forwarded <- t.pstats.(in_port).p_forwarded + 1;
            obs_span t in_port "fwd"
          end
          else begin
            drop t in_port (* egress port down or unplugged *);
            obs_span t in_port "drop"
          end
        | Some _ ->
          drop t in_port (* destination is behind the ingress port *);
          obs_span t in_port "drop"
        | None ->
          t.flooded <- t.flooded + 1;
          t.pstats.(in_port).p_flooded <- t.pstats.(in_port).p_flooded + 1;
          obs_span t in_port "flood";
          Array.iteri
            (fun pi p ->
              if pi <> in_port && p <> None then ignore (transmit t pi frame))
            t.ports)
  end

let attach t ~port link side =
  assert (t.ports.(port) = None);
  t.ports.(port) <- Some { link; side };
  Link.on_recv link side (fun f -> forward t port f)

let set_port_up t ~port up = t.up.(port) <- up
let port_up t ~port = t.up.(port)
let frames_forwarded t = t.forwarded
let frames_flooded t = t.flooded
let frames_dropped t = t.dropped
let table_size t = Hashtbl.length t.fdb
let fdb_capacity t = t.fdb_capacity
let port_forwarded t ~port = t.pstats.(port).p_forwarded
let port_flooded t ~port = t.pstats.(port).p_flooded
let port_dropped t ~port = t.pstats.(port).p_dropped

let register_metrics t ~prefix =
  Registry.add_sampler
    ~name:(prefix ^ ".switch")
    (fun () ->
      let set name v =
        Stats.Gauge.set
          (Registry.gauge (prefix ^ ".switch." ^ name))
          (float_of_int v)
      in
      set "forwarded" t.forwarded;
      set "flooded" t.flooded;
      set "dropped" t.dropped;
      set "fdb_size" (Hashtbl.length t.fdb);
      Array.iteri
        (fun pi ps ->
          let base = Printf.sprintf "%s.switch.p%d" prefix pi in
          Stats.Gauge.set
            (Registry.gauge (base ^ ".forwarded"))
            (float_of_int ps.p_forwarded);
          Stats.Gauge.set
            (Registry.gauge (base ^ ".dropped"))
            (float_of_int ps.p_dropped))
        t.pstats)
