module Sim = Apiary_engine.Sim

type port = { link : Link.t; side : Link.side }

type t = {
  sim : Sim.t;
  latency : int;
  ports : port option array;
  fdb : (int, int) Hashtbl.t;  (* MAC -> port *)
  mutable forwarded : int;
  mutable flooded : int;
}

let create sim ~nports ~latency =
  assert (nports > 0 && latency >= 0);
  {
    sim;
    latency;
    ports = Array.make nports None;
    fdb = Hashtbl.create 32;
    forwarded = 0;
    flooded = 0;
  }

let transmit t pi frame =
  match t.ports.(pi) with
  | None -> ()
  | Some p -> Link.send p.link ~from:p.side frame

let forward t in_port (frame : Frame.t) =
  Hashtbl.replace t.fdb frame.Frame.src in_port;
  Sim.after t.sim t.latency (fun () ->
      match Hashtbl.find_opt t.fdb frame.Frame.dst with
      | Some pi when pi <> in_port ->
        t.forwarded <- t.forwarded + 1;
        transmit t pi frame
      | Some _ -> ()  (* destination is behind the ingress port: drop *)
      | None ->
        t.flooded <- t.flooded + 1;
        Array.iteri (fun pi p -> if pi <> in_port && p <> None then transmit t pi frame) t.ports)

let attach t ~port link side =
  assert (t.ports.(port) = None);
  t.ports.(port) <- Some { link; side };
  Link.on_recv link side (fun f -> forward t port f)

let frames_forwarded t = t.forwarded
let frames_flooded t = t.flooded
let table_size t = Hashtbl.length t.fdb
