module Sim = Apiary_engine.Sim
module Stats = Apiary_engine.Stats
module Rng = Apiary_engine.Rng

type t = {
  sim : Sim.t;
  mac : Mac.t;
  my_mac : int;
  server_mac : int;
  rng : Rng.t;
  pending : (int, int) Hashtbl.t;  (* req_id -> issue cycle *)
  lat : Stats.Histogram.t;
  exem : Apiary_obs.Exemplar.t;  (* per-bucket retained req ids *)
  mutable next_id : int;
  mutable n_issued : int;
  mutable n_completed : int;
  mutable n_errors : int;
  mutable running : bool;
  mutable resp_hook : Netproto.response -> unit;
}

type workload = { service : string; op : int; gen : int -> bytes }

let handle_response t (rsp : Netproto.response) on_complete =
  match Hashtbl.find_opt t.pending rsp.Netproto.rsp_id with
  | None -> ()
  | Some issued_at ->
    Hashtbl.remove t.pending rsp.Netproto.rsp_id;
    let lat = Sim.now t.sim - issued_at in
    Stats.Histogram.record t.lat lat;
    Apiary_obs.Exemplar.observe t.exem ~corr:rsp.Netproto.rsp_id ~value:lat
      ~ts:(Sim.now t.sim);
    t.n_completed <- t.n_completed + 1;
    if rsp.Netproto.status <> Netproto.Ok_resp then t.n_errors <- t.n_errors + 1;
    t.resp_hook rsp;
    on_complete ()

let create sim ~mac ~my_mac ~server_mac =
  {
    sim;
    mac;
    my_mac;
    server_mac;
    rng = Rng.create ~seed:(0xC11E57 + my_mac);
    pending = Hashtbl.create 64;
    lat = Stats.Histogram.create (Printf.sprintf "client%x.latency" my_mac);
    exem = Apiary_obs.Exemplar.create (Printf.sprintf "client%x.latency" my_mac);
    next_id = 0;
    n_issued = 0;
    n_completed = 0;
    n_errors = 0;
    running = false;
    resp_hook = (fun _ -> ());
  }

let issue t (w : workload) =
  t.next_id <- t.next_id + 1;
  let req =
    {
      Netproto.req_id = t.next_id;
      service = w.service;
      op = w.op;
      body = w.gen t.next_id;
    }
  in
  let frame =
    Frame.make ~dst:t.server_mac ~src:t.my_mac (Netproto.encode_request req)
  in
  Hashtbl.replace t.pending t.next_id (Sim.now t.sim);
  t.n_issued <- t.n_issued + 1;
  if not (Mac.send t.mac frame) then begin
    (* Device backpressure: count as an error and forget it. *)
    Hashtbl.remove t.pending t.next_id;
    t.n_errors <- t.n_errors + 1
  end

let start_closed t w ~concurrency =
  assert (concurrency > 0);
  t.running <- true;
  Mac.set_rx t.mac (fun f ->
      match Netproto.decode_response f.Frame.payload with
      | Error _ -> ()
      | Ok rsp ->
        handle_response t rsp (fun () -> if t.running then issue t w));
  (* Stagger the initial window slightly to avoid lockstep artifacts. *)
  for i = 0 to concurrency - 1 do
    Sim.after t.sim (1 + i) (fun () -> if t.running then issue t w)
  done

let start_open t w ~rate =
  assert (rate > 0.0);
  t.running <- true;
  Mac.set_rx t.mac (fun f ->
      match Netproto.decode_response f.Frame.payload with
      | Error _ -> ()
      | Ok rsp -> handle_response t rsp (fun () -> ()));
  let rec arm () =
    if t.running then begin
      let gap = max 1 (int_of_float (Rng.exponential t.rng ~mean:(1.0 /. rate))) in
      Sim.after t.sim gap (fun () ->
          if t.running then begin
            issue t w;
            arm ()
          end)
    end
  in
  arm ()

let stop t = t.running <- false
let issued t = t.n_issued
let completed t = t.n_completed
let errors t = t.n_errors
let latency t = t.lat
let exemplars t = t.exem
let on_response t f = t.resp_hook <- f
