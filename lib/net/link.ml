module Sim = Apiary_engine.Sim

type side = A | B

let flip = function A -> B | B -> A

type dir = {
  mutable busy_until : int;
  mutable corrupt_next : bool;
}

type t = {
  sim : Sim.t;
  bw : float;
  prop : int;
  a : dir;
  b : dir;
  mutable rx_a : Frame.t -> unit;
  mutable rx_b : Frame.t -> unit;
  mutable bytes : int;
  mutable dropped : int;
}

let create sim ~bytes_per_cycle ~prop_cycles =
  assert (bytes_per_cycle > 0.0 && prop_cycles >= 0);
  {
    sim;
    bw = bytes_per_cycle;
    prop = prop_cycles;
    a = { busy_until = 0; corrupt_next = false };
    b = { busy_until = 0; corrupt_next = false };
    rx_a = (fun _ -> ());
    rx_b = (fun _ -> ());
    bytes = 0;
    dropped = 0;
  }

let dir_of t = function A -> t.a | B -> t.b

let on_recv t side f =
  match side with A -> t.rx_a <- f | B -> t.rx_b <- f

let busy_until t side = (dir_of t side).busy_until
let set_corrupt_next t ~from = (dir_of t from).corrupt_next <- true
let bytes_carried t = t.bytes
let frames_dropped t = t.dropped

let send t ~from frame =
  let d = dir_of t from in
  let wire = Frame.serialize frame in
  let wire =
    if d.corrupt_next then begin
      d.corrupt_next <- false;
      let w = Bytes.copy wire in
      (* Flip one payload bit. *)
      let pos = 16 in
      Bytes.set w pos (Char.chr (Char.code (Bytes.get w pos) lxor 0x01));
      w
    end
    else wire
  in
  let size = Frame.wire_size frame in
  let now = Sim.now t.sim in
  let start = max now d.busy_until in
  let ser = max 1 (int_of_float (ceil (float_of_int size /. t.bw))) in
  d.busy_until <- start + ser;
  t.bytes <- t.bytes + size;
  let deliver_at = start + ser + t.prop in
  let rx = match from with A -> (fun f -> t.rx_b f) | B -> (fun f -> t.rx_a f) in
  Sim.after t.sim (deliver_at - now) (fun () ->
      match Frame.parse wire with
      | Ok f -> rx f
      | Error _ -> t.dropped <- t.dropped + 1)
