module Sim = Apiary_engine.Sim

type side = A | B

let flip = function A -> B | B -> A

(* Per-direction state. Every field is owned by exactly one side's
   execution context so a split link (sides on different Par_sim
   partitions) stays race-free: [busy_until]/[corrupt_next]/[tx_bytes]
   are written only on the sending side's thread, [rx_dropped] only on
   the thread that runs this side's deliveries. *)
type dir = {
  sim : Sim.t;  (* the sending side's simulator *)
  post : time:int -> (unit -> unit) -> unit;  (* schedules on the RECEIVER *)
  mutable busy_until : int;
  mutable corrupt_next : bool;
  mutable tx_bytes : int;
  mutable rx_dropped : int;  (* frames dropped on delivery TO this side *)
}

type t = {
  bw : float;
  prop : int;
  a : dir;
  b : dir;
  mutable rx_a : Frame.t -> unit;
  mutable rx_b : Frame.t -> unit;
}

let mk ~sim_a ~sim_b ~post_to_a ~post_to_b ~bytes_per_cycle ~prop_cycles =
  assert (bytes_per_cycle > 0.0 && prop_cycles >= 0);
  {
    bw = bytes_per_cycle;
    prop = prop_cycles;
    a = { sim = sim_a; post = post_to_b; busy_until = 0; corrupt_next = false;
          tx_bytes = 0; rx_dropped = 0 };
    b = { sim = sim_b; post = post_to_a; busy_until = 0; corrupt_next = false;
          tx_bytes = 0; rx_dropped = 0 };
    rx_a = (fun _ -> ());
    rx_b = (fun _ -> ());
  }

let create sim ~bytes_per_cycle ~prop_cycles =
  let post ~time fn = Sim.at sim time fn in
  mk ~sim_a:sim ~sim_b:sim ~post_to_a:post ~post_to_b:post ~bytes_per_cycle
    ~prop_cycles

let create_split ~sim_a ~sim_b ~post_to_a ~post_to_b ~bytes_per_cycle
    ~prop_cycles =
  mk ~sim_a ~sim_b ~post_to_a ~post_to_b ~bytes_per_cycle ~prop_cycles

let dir_of t = function A -> t.a | B -> t.b

let on_recv t side f =
  match side with A -> t.rx_a <- f | B -> t.rx_b <- f

let busy_until t side = (dir_of t side).busy_until
let set_corrupt_next t ~from = (dir_of t from).corrupt_next <- true
let bytes_carried t = t.a.tx_bytes + t.b.tx_bytes
let frames_dropped t = t.a.rx_dropped + t.b.rx_dropped

let min_latency t = t.prop + 1
(* Serialization takes at least one cycle, so no frame handed to the
   link at cycle [c] can reach the far side before [c + prop + 1] — the
   lookahead a conservative partitioning of this link may use. *)

let send t ~from frame =
  let d = dir_of t from in
  let size = Frame.wire_size frame in
  let now = Sim.now d.sim in
  let start = max now d.busy_until in
  let ser = max 1 (int_of_float (ceil (float_of_int size /. t.bw))) in
  d.busy_until <- start + ser;
  d.tx_bytes <- d.tx_bytes + size;
  let deliver_at = start + ser + t.prop in
  if d.corrupt_next then begin
    (* Fault injection takes the real wire path: serialize, flip one
       payload bit, and let the receiver's FCS check reject it. *)
    d.corrupt_next <- false;
    let rd = dir_of t (flip from) in
    let wire = Frame.serialize frame in
    let pos = 16 in
    Bytes.set wire pos (Char.chr (Char.code (Bytes.get wire pos) lxor 0x01));
    let rx =
      match from with A -> (fun f -> t.rx_b f) | B -> (fun f -> t.rx_a f)
    in
    d.post ~time:deliver_at (fun () ->
        match Frame.parse wire with
        | Ok f -> rx f
        | Error _ -> rd.rx_dropped <- rd.rx_dropped + 1)
  end
  else
    (* Clean frames skip the serialize/parse round trip: {!Frame.parse}
       of a well-formed wire image reproduces the frame value exactly
       (payload length restored from the header, padding stripped), and
       frames are read-only downstream, so delivering the value is
       observationally identical and allocation-free. *)
    match from with
    | A -> d.post ~time:deliver_at (fun () -> t.rx_b frame)
    | B -> d.post ~time:deliver_at (fun () -> t.rx_a frame)
