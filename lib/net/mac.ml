module Sim = Apiary_engine.Sim

module Teng = struct
  type t = {
    sim : Sim.t;
    link : Link.t;
    side : Link.side;
    mutable is_ready : bool;
    mutable resetting : bool;
    mutable rx : Frame.t -> unit;
    mutable drops : int;
  }

  let create sim link side =
    let t =
      { sim; link; side; is_ready = false; resetting = false;
        rx = (fun _ -> ()); drops = 0 }
    in
    Link.on_recv link side (fun f -> if t.is_ready then t.rx f);
    t

  let reset t =
    t.is_ready <- false;
    t.resetting <- true;
    Sim.after t.sim 50 (fun () ->
        t.resetting <- false;
        t.is_ready <- true)

  let ready t = t.is_ready
  let tx_busy t = Link.busy_until t.link t.side > Sim.now t.sim

  let submit t f =
    if not t.is_ready then begin
      t.drops <- t.drops + 1;
      false
    end
    else if tx_busy t then false
    else begin
      Link.send t.link ~from:t.side f;
      true
    end

  let set_rx t f = t.rx <- f
  let dropped_tx t = t.drops
end

module Hundredg = struct
  let ring_size = 32
  let reset_hold = 100

  type t = {
    sim : Sim.t;
    link : Link.t;
    side : Link.side;
    ring : Frame.t Queue.t;
    mutable is_ready : bool;
    mutable reset_asserted_at : int option;
    mutable rx : Frame.t -> unit;
    mutable drops : int;
    mutable draining : bool;
  }

  let create sim link side =
    let t =
      { sim; link; side; ring = Queue.create (); is_ready = false;
        reset_asserted_at = None; rx = (fun _ -> ()); drops = 0; draining = false }
    in
    Link.on_recv link side (fun f -> if t.is_ready then t.rx f);
    t

  let assert_reset t =
    t.is_ready <- false;
    Queue.clear t.ring;
    t.reset_asserted_at <- Some (Sim.now t.sim)

  let release_reset t =
    match t.reset_asserted_at with
    | Some at when Sim.now t.sim - at >= reset_hold ->
      t.reset_asserted_at <- None;
      t.is_ready <- true
    | Some _ | None ->
      (* Reset sequence violated: the core stays down. *)
      t.reset_asserted_at <- None;
      t.is_ready <- false

  let ready t = t.is_ready

  (* Drain the descriptor ring as the link transmitter frees up. *)
  let rec drain t =
    if (not t.draining) && not (Queue.is_empty t.ring) then begin
      t.draining <- true;
      let gap = max 1 (Link.busy_until t.link t.side - Sim.now t.sim) in
      Sim.after t.sim gap (fun () ->
          t.draining <- false;
          (match Queue.take_opt t.ring with
          | Some f when t.is_ready -> Link.send t.link ~from:t.side f
          | Some _ | None -> ());
          drain t)
    end

  let post_tx t f =
    if not t.is_ready then begin
      t.drops <- t.drops + 1;
      false
    end
    else if Queue.length t.ring >= ring_size then false
    else begin
      Queue.add f t.ring;
      drain t;
      true
    end

  let ring_occupancy t = Queue.length t.ring
  let set_rx_irq t f = t.rx <- f
  let dropped_tx t = t.drops
end

type generation = Gen_10g | Gen_100g

let generation_to_string = function Gen_10g -> "10G" | Gen_100g -> "100G"

type impl = I10 of Teng.t | I100 of Hundredg.t

type t = { gen : generation; impl : impl; sim : Sim.t }

let create sim gen link side =
  match gen with
  | Gen_10g ->
    let m = Teng.create sim link side in
    Teng.reset m;
    { gen; impl = I10 m; sim }
  | Gen_100g ->
    let m = Hundredg.create sim link side in
    Hundredg.assert_reset m;
    Sim.after sim (Hundredg.reset_hold + 1) (fun () -> Hundredg.release_reset m);
    { gen; impl = I100 m; sim }

(* The adapter retries the 10G core's single-frame interface so callers
   get queue semantics on both generations. *)
let rec send_10g sim m f attempts =
  if Teng.submit m f then true
  else if attempts <= 0 then false
  else begin
    Sim.after sim 8 (fun () -> ignore (send_10g sim m f (attempts - 1)));
    true
  end

let send t f =
  match t.impl with
  | I10 m -> send_10g t.sim m f 64
  | I100 m -> Hundredg.post_tx m f

let set_rx t cb =
  match t.impl with
  | I10 m -> Teng.set_rx m cb
  | I100 m -> Hundredg.set_rx_irq m cb

let ready t =
  match t.impl with I10 m -> Teng.ready m | I100 m -> Hundredg.ready m

let generation t = t.gen
