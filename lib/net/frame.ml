module Checksum = Apiary_engine.Checksum

type t = { dst : int; src : int; ethertype : int; payload : bytes }

let ethertype_apiary = 0x88B5
let ethertype_telem = 0x88B6
let min_payload = 46
let max_payload = 1500

let make ~dst ~src ?(ethertype = ethertype_apiary) payload =
  if Bytes.length payload > max_payload then
    invalid_arg "Frame.make: payload exceeds MTU";
  { dst; src; ethertype; payload }

(* preamble(8) + IPG(12) = 20 bytes of line overhead per frame. *)
let line_overhead = 20

let wire_size t =
  14 + 2 + max min_payload (Bytes.length t.payload) + 4 + line_overhead

let put48 b off v =
  for i = 0 to 5 do
    Bytes.set b (off + i) (Char.chr ((v lsr ((5 - i) * 8)) land 0xFF))
  done

let get48 b off =
  let v = ref 0 in
  for i = 0 to 5 do
    v := (!v lsl 8) lor Char.code (Bytes.get b (off + i))
  done;
  !v

let serialize t =
  let plen = Bytes.length t.payload in
  let padded = max min_payload plen in
  let body = Bytes.make (16 + padded) '\000' in
  put48 body 0 t.dst;
  put48 body 6 t.src;
  Bytes.set_uint16_be body 12 t.ethertype;
  Bytes.set_uint16_be body 14 plen;
  Bytes.blit t.payload 0 body 16 plen;
  let fcs = Checksum.crc32 body in
  let out = Bytes.create (Bytes.length body + 4) in
  Bytes.blit body 0 out 0 (Bytes.length body);
  Bytes.set_int32_be out (Bytes.length body) fcs;
  out

let parse raw =
  let n = Bytes.length raw in
  if n < 16 + min_payload + 4 then Error "frame: runt"
  else begin
    let body = Bytes.sub raw 0 (n - 4) in
    let fcs = Bytes.get_int32_be raw (n - 4) in
    if Checksum.crc32 body <> fcs then Error "frame: bad FCS"
    else begin
      let plen = Bytes.get_uint16_be body 14 in
      if 16 + max min_payload plen <> n - 4 then Error "frame: bad length field"
      else
        Ok
          {
            dst = get48 body 0;
            src = get48 body 6;
            ethertype = Bytes.get_uint16_be body 12;
            payload = Bytes.sub body 16 plen;
          }
    end
  end
