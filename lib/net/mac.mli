(** Ethernet MAC "IP cores" and the portable adapter over them.

    The paper's portability complaint (§2) is concrete: Xilinx's 10G and
    100G MAC cores expose {e different} interfaces and reset processes, so
    supporting both needs extra infrastructure. We reproduce that
    situation faithfully with two deliberately incompatible device models,
    then provide the uniform adapter an OS would offer — the
    infrastructure Apiary promises applications they won't have to
    write. *)

module Sim := Apiary_engine.Sim

(** 10G-style core: single in-flight frame, explicit one-shot reset,
    polling-style busy flag. Transmit before reset completes is silently
    dropped (as real cores do). *)
module Teng : sig
  type t

  val create : Sim.t -> Link.t -> Link.side -> t
  val reset : t -> unit
  (** Takes 50 cycles; the core is unusable meanwhile. *)

  val ready : t -> bool
  val tx_busy : t -> bool
  val submit : t -> Frame.t -> bool
  (** [false] if not ready or busy. *)

  val set_rx : t -> (Frame.t -> unit) -> unit
  val dropped_tx : t -> int
end

(** 100G-style core: descriptor queue, interrupt-style RX, two-phase
    reset (assert, wait ≥ 100 cycles, release). *)
module Hundredg : sig
  type t

  val create : Sim.t -> Link.t -> Link.side -> t
  val assert_reset : t -> unit
  val release_reset : t -> unit
  (** Releasing earlier than 100 cycles after {!assert_reset} leaves the
      core unready (the real failure mode of getting a reset sequence
      wrong). *)

  val ready : t -> bool
  val post_tx : t -> Frame.t -> bool
  (** [false] when the 32-entry descriptor ring is full. *)

  val ring_occupancy : t -> int
  val set_rx_irq : t -> (Frame.t -> unit) -> unit
  val dropped_tx : t -> int
end

(** The portable interface (what Apiary's network service programs
    against). [create] performs the core-specific bring-up internally. *)
type t

type generation = Gen_10g | Gen_100g

val generation_to_string : generation -> string

val create : Sim.t -> generation -> Link.t -> Link.side -> t
val send : t -> Frame.t -> bool
(** Best-effort enqueue; [false] on device backpressure. *)

val set_rx : t -> (Frame.t -> unit) -> unit
val ready : t -> bool
val generation : t -> generation
