(** RPC envelope carried in Apiary ethertype frames — the reliable
    request/response transport between datacenter clients and
    direct-attached FPGA services.

    Requests name the target service (API-level naming extends all the
    way to the network); responses echo the request id. *)

type request = {
  req_id : int;
  service : string;
  op : int;  (** Apiary data opcode forwarded to the service. *)
  body : bytes;
}

type status = Ok_resp | Service_unavailable | Remote_error

type response = { rsp_id : int; status : status; body : bytes }

val status_to_string : status -> string

val encode_request : request -> bytes

val decode_request : ?off:int -> bytes -> (request, string) result
(** [off] (default 0) parses an envelope embedded at that offset,
    saving the caller a [Bytes.sub]. *)

val encode_response : response -> bytes
val decode_response : ?off:int -> bytes -> (response, string) result

val max_body : int
(** Maximum body carried in a single frame (no fragmentation in this
    model); callers must keep requests under it. *)
