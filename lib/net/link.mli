(** Full-duplex point-to-point link.

    Each direction serializes frames at the link rate and delivers them
    after the propagation delay; back-to-back sends queue behind the
    transmitter (modelling the NIC/port FIFO). Corruption can be injected
    for FCS tests. *)

module Sim := Apiary_engine.Sim

type side = A | B

val flip : side -> side

type t

val create : Sim.t -> bytes_per_cycle:float -> prop_cycles:int -> t
(** 10 GbE at a 250 MHz fabric ≈ 5 B/cycle; 100 GbE ≈ 50 B/cycle.
    [prop_cycles] covers cable + PHY latency. *)

val create_split :
  sim_a:Sim.t ->
  sim_b:Sim.t ->
  post_to_a:(time:int -> (unit -> unit) -> unit) ->
  post_to_b:(time:int -> (unit -> unit) -> unit) ->
  bytes_per_cycle:float ->
  prop_cycles:int ->
  t
(** A link whose two endpoints live on different simulators (Par_sim
    partitions). Side X's transmit state advances on [sim_x]; a frame
    sent from X is handed to [post_to_(flip x)] with its absolute
    delivery cycle, which must schedule it on the far simulator
    (typically [Par_sim.post]). Because serialization takes ≥ 1 cycle,
    delivery is always ≥ [prop_cycles + 1] ahead of the send — see
    {!min_latency}. *)

val min_latency : t -> int
(** [prop_cycles + 1]: a lower bound on send-to-deliver latency in
    either direction, i.e. the lookahead a conservative partitioning of
    this link supports. *)

val on_recv : t -> side -> (Frame.t -> unit) -> unit
(** Install the receiver for frames {e arriving at} [side]. *)

val send : t -> from:side -> Frame.t -> unit
(** Transmit; delivery fires on the opposite side after serialization +
    propagation. Corrupted frames are dropped at the receiver (counted). *)

val busy_until : t -> side -> int
(** Cycle until which [side]'s transmitter is occupied. *)

val set_corrupt_next : t -> from:side -> unit
(** Flip a payload bit in the next frame sent from [side] (FCS test). *)

val bytes_carried : t -> int
val frames_dropped : t -> int
(** Frames discarded for FCS errors. *)
