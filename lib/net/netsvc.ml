module Sim = Apiary_engine.Sim
module Message = Apiary_core.Message
module Shell = Apiary_core.Shell
module Span = Apiary_obs.Span

type stats = {
  mutable rx_frames : int;
  mutable tx_frames : int;
  mutable bad_frames : int;
  mutable unavailable : int;
  mutable outbound : int;
}

let op_remote = 0x4E52 (* "NR" *)

(* Outbound call payload: u48 dst_mac + encoded Netproto.request (whose
   req_id is assigned by the net service). *)
let encode_remote ~dst_mac (req : Netproto.request) =
  let body = Netproto.encode_request req in
  let out = Bytes.create (6 + Bytes.length body) in
  for i = 0 to 5 do
    Bytes.set out i (Char.chr ((dst_mac lsr ((5 - i) * 8)) land 0xFF))
  done;
  Bytes.blit body 0 out 6 (Bytes.length body);
  out

let decode_remote b =
  if Bytes.length b < 6 then Error "netsvc: short outbound call"
  else begin
    let mac = ref 0 in
    for i = 0 to 5 do
      mac := (!mac lsl 8) lor Char.code (Bytes.get b i)
    done;
    match Netproto.decode_request ~off:6 b with
    | Ok req -> Ok (!mac, req)
    | Error e -> Error e
  end

let remote_request sh net_conn ~dst_mac ~service ~op body k =
  let payload =
    encode_remote ~dst_mac { Netproto.req_id = 0; service; op; body }
  in
  Shell.request sh net_conn ~opcode:op_remote payload (fun r ->
      match r with
      | Error e -> k (Error e)
      | Ok m ->
        (match Netproto.decode_response m.Message.payload with
        | Ok rsp -> k (Ok rsp)
        | Error e -> k (Error (Shell.Denied e))))

(* Lazily-established, cached connections to target services. While a
   connect is in flight, requests queue behind it. *)
type conn_state =
  | Connecting of (Shell.conn option -> unit) list
  | Ready of Shell.conn

let behavior ~mac ~my_mac () =
  let st =
    { rx_frames = 0; tx_frames = 0; bad_frames = 0; unavailable = 0; outbound = 0 }
  in
  let conns : (string, conn_state) Hashtbl.t = Hashtbl.create 16 in
  (* Outstanding outbound calls: network req_id -> the message to respond
     to plus the open "remote" span covering the off-board round trip. *)
  let outbound : (int, Message.t * Span.id) Hashtbl.t = Hashtbl.create 16 in
  let next_req_id = ref 0 in
  let with_conn sh service k =
    match Hashtbl.find_opt conns service with
    | Some (Ready c) -> k (Some c)
    | Some (Connecting waiters) ->
      Hashtbl.replace conns service (Connecting (k :: waiters))
    | None ->
      Hashtbl.replace conns service (Connecting [ k ]);
      Shell.connect sh ~service (fun r ->
          let waiters =
            match Hashtbl.find_opt conns service with
            | Some (Connecting ws) -> ws
            | _ -> []
          in
          match r with
          | Ok c ->
            Hashtbl.replace conns service (Ready c);
            List.iter (fun w -> w (Some c)) (List.rev waiters)
          | Error _ ->
            Hashtbl.remove conns service;
            List.iter (fun w -> w None) (List.rev waiters))
  in
  let send_frame sh dst payload =
    let frame = Frame.make ~dst ~src:my_mac payload in
    if Mac.send mac frame then begin
      st.tx_frames <- st.tx_frames + 1;
      if Span.on () then
        Span.instant ~board:(Shell.obs_board sh) ~cat:"net" ~name:"frame.tx"
          ~args:[ ("dst", Printf.sprintf "%012x" dst) ]
          ~track:(Shell.tile sh) ~ts:(Shell.now sh) ()
    end
  in
  let reply_frame sh (req : Netproto.request) dst status body =
    let rsp = { Netproto.rsp_id = req.Netproto.req_id; status; body } in
    send_frame sh dst (Netproto.encode_response rsp)
  in
  (* Inbound request from the network: bridge onto the NoC. *)
  let handle_inbound_request sh (f : Frame.t) (req : Netproto.request) =
    (* "serve" span: frame receipt to reply-frame transmission. The
       [req_id] arg is the cross-board link back to the caller's
       "remote" span — the board-local corr changes at the wire. *)
    let sid =
      if not (Span.on ()) then Span.null
      else
        Span.start ~board:(Shell.obs_board sh)
          ~args:
            [
              ("req_id", string_of_int req.Netproto.req_id);
              ("service", req.Netproto.service);
            ]
          ~cat:"net" ~name:"serve" ~track:(Shell.tile sh) ~ts:(Shell.now sh)
          ()
    in
    let reply status body =
      Span.finish ~args:[ ("status", Netproto.status_to_string status) ]
        ~ts:(Shell.now sh) sid;
      reply_frame sh req f.Frame.src status body
    in
    with_conn sh req.Netproto.service (fun conn ->
        match conn with
        | None ->
          st.unavailable <- st.unavailable + 1;
          reply Netproto.Service_unavailable Bytes.empty
        | Some conn ->
          Shell.request sh conn ~opcode:req.Netproto.op req.Netproto.body (fun r ->
              match r with
              | Ok m -> reply Netproto.Ok_resp m.Message.payload
              | Error (Shell.Nacked _) | Error (Shell.Denied _) ->
                (* Peer fail-stopped: drop the stale connection so the
                   next request re-resolves (it may have been restarted
                   elsewhere). *)
                Hashtbl.remove conns req.Netproto.service;
                st.unavailable <- st.unavailable + 1;
                reply Netproto.Service_unavailable Bytes.empty
              | Error Shell.Timeout -> reply Netproto.Remote_error Bytes.empty))
  in
  (* Response from the network for an accelerator's outbound call. *)
  let handle_inbound_response sh (rsp : Netproto.response) =
    match Hashtbl.find_opt outbound rsp.Netproto.rsp_id with
    | None -> st.bad_frames <- st.bad_frames + 1
    | Some (origin, sid) ->
      Hashtbl.remove outbound rsp.Netproto.rsp_id;
      Span.finish
        ~args:[ ("status", Netproto.status_to_string rsp.Netproto.status) ]
        ~ts:(Shell.now sh) sid;
      Shell.respond sh origin ~opcode:op_remote (Netproto.encode_response rsp)
  in
  let handle_frame sh (f : Frame.t) =
    (* NIC-level dst filter: switch floods (unknown-dst frames) reach
       every port, and in a multi-board rack another board's request
       must not be answered here — a board without the service would
       race a bogus Service_unavailable past the real replica. *)
    if f.Frame.dst <> my_mac then ()
    else if f.Frame.ethertype <> Frame.ethertype_apiary then
      (* Another dialect on the wire (e.g. a flooded telemetry batch):
         not RPC traffic and not a malformed RPC either, so it is
         ignored without charging [bad_frames]. *)
      ()
    else begin
      st.rx_frames <- st.rx_frames + 1;
      if Span.on () then
        Span.instant ~board:(Shell.obs_board sh) ~cat:"net" ~name:"frame.rx"
          ~args:[ ("src", Printf.sprintf "%012x" f.Frame.src) ]
          ~track:(Shell.tile sh) ~ts:(Shell.now sh) ();
      match Netproto.decode_request f.Frame.payload with
      | Ok req -> handle_inbound_request sh f req
      | Error _ ->
        (match Netproto.decode_response f.Frame.payload with
        | Ok rsp -> handle_inbound_response sh rsp
        | Error _ -> st.bad_frames <- st.bad_frames + 1)
    end
  in
  (* Outbound call from an accelerator tile. *)
  let handle_outbound sh (msg : Message.t) =
    match decode_remote msg.Message.payload with
    | Error _ -> ()
    | Ok (dst_mac, req) ->
      st.outbound <- st.outbound + 1;
      incr next_req_id;
      let req_id = !next_req_id in
      (* "remote" span: the off-board leg of the caller's RPC, keyed by
         the caller's corr and carrying the wire req_id so the remote
         board's "serve" span links to it. *)
      let sid =
        if not (Span.on ()) then Span.null
        else
          Span.start ~board:(Shell.obs_board sh) ~corr:msg.Message.corr
            ~args:
              [
                ("req_id", string_of_int req_id);
                ("service", req.Netproto.service);
              ]
            ~cat:"net" ~name:"remote" ~track:(Shell.tile sh)
            ~ts:(Shell.now sh) ()
      in
      Hashtbl.replace outbound req_id (msg, sid);
      send_frame sh dst_mac
        (Netproto.encode_request { req with Netproto.req_id })
  in
  let b =
    Shell.behavior "os.net"
      ~on_boot:(fun sh ->
        Shell.register_service sh "net";
        Mac.set_rx mac (fun f -> handle_frame sh f))
      ~on_message:(fun sh msg ->
        match msg.Message.kind with
        | Message.Data { opcode } when opcode = op_remote -> handle_outbound sh msg
        | _ -> ())
  in
  (b, st)
