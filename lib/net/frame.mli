(** Ethernet frames with a real FCS.

    Frames serialize to actual bytes with an IEEE CRC-32 trailer;
    {!parse} recomputes and rejects corrupted frames, so bit-flips
    injected anywhere in the network substrate are caught exactly where
    real hardware would catch them. *)

type t = {
  dst : int;  (** 48-bit MAC address *)
  src : int;
  ethertype : int;
  payload : bytes;
}

val ethertype_apiary : int
(** 0x88B5 — the IEEE "local experimental" ethertype, used for the RPC
    envelope. *)

val ethertype_telem : int
(** 0x88B6 — telemetry batches (agent → collector). A separate
    ethertype lets board NICs discard flooded telemetry without
    charging their RPC [bad_frames] counter, and keeps the two dialects
    distinguishable in captures. *)

val min_payload : int
(** 46 bytes — shorter payloads are padded on the wire, as per 802.3. *)

val max_payload : int
(** 1500 bytes. *)

val make : dst:int -> src:int -> ?ethertype:int -> bytes -> t
(** @raise Invalid_argument if the payload exceeds {!max_payload}. *)

val wire_size : t -> int
(** Full on-wire size: header (14) + padded payload + FCS (4) + preamble
    and IPG accounting (20), matching line-rate math. *)

val serialize : t -> bytes
(** dst(6) src(6) ethertype(2) length(2) payload (padded to 46) FCS(4). *)

val parse : bytes -> (t, string) result
(** Inverse of {!serialize}; validates the FCS and the length field. *)
