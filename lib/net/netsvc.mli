module Shell := Apiary_core.Shell

(** The network OS service — the tile that owns the MAC and bridges
    datacenter RPC onto the NoC (paper Figure 1's "network" service).

    Inbound request frames are parsed, the target service is resolved by
    name and connected to lazily (connections are cached), the body is
    forwarded as an Apiary request, and the reply is framed back to the
    requester's MAC. Because the tile speaks the portable {!Mac} adapter,
    the same behavior runs over a 10G or a 100G core — the paper's
    portability claim made concrete. *)

type stats = {
  mutable rx_frames : int;
  mutable tx_frames : int;
  mutable bad_frames : int;
  mutable unavailable : int;  (** requests for unknown/dead services *)
  mutable outbound : int;  (** accelerator-initiated remote calls *)
}

val behavior : mac:Mac.t -> my_mac:int -> unit -> Shell.behavior * stats
(** Install on a tile with [Kernel.install]. The behavior registers the
    service name ["net"]. *)

(** {1 Outbound calls (paper §1: "Calls to other modules may be local or
    remote"; §6-Q3: using remote CPUs for OS functionality)}

    An accelerator connects to the ["net"] service like any other and
    issues {!remote_request}; the network tile frames the call to the
    target MAC, matches the response and relays it back — so reaching a
    service on a {e remote host} looks exactly like reaching one on the
    next tile, just slower. *)

val op_remote : int
(** Data opcode carrying an outbound call to the net service. *)

val remote_request :
  Shell.t -> Shell.conn -> dst_mac:int -> service:string -> op:int -> bytes ->
  ((Netproto.response, Shell.rpc_error) result -> unit) -> unit
(** [remote_request sh net_conn ~dst_mac ~service ~op body k] — call
    [service] on the host at [dst_mac] through the network tile. *)
