(** Learning store-and-forward switch (top-of-rack model).

    MAC addresses are learned from source fields; unknown destinations
    flood. Forwarding adds a fixed store-and-forward latency; egress
    serialization is enforced by the attached links. *)

module Sim := Apiary_engine.Sim

type t

val create : Sim.t -> nports:int -> latency:int -> t
(** [latency] in cycles (≈250 for a 1 µs ToR at 250 MHz). *)

val attach : t -> port:int -> Link.t -> Link.side -> unit
(** Plug a link into a port; the switch receives frames arriving at the
    given [side] of the link and transmits from that side. *)

val frames_forwarded : t -> int
val frames_flooded : t -> int
val table_size : t -> int
