(** Learning store-and-forward switch (top-of-rack model).

    MAC addresses are learned from source fields; unknown destinations
    flood. Forwarding adds a fixed store-and-forward latency; egress
    serialization is enforced by the attached links.

    The learning table is bounded ([fdb_capacity], FIFO eviction), so a
    MAC-flooding host degrades to flooding rather than growing switch
    state without limit. Ports can be administratively downed
    ({!set_port_up}) — frames to or from a down port are dropped and
    counted, which is how a rack simulation models a board failure as
    seen from the network. *)

module Sim := Apiary_engine.Sim

type t

val create : ?fdb_capacity:int -> Sim.t -> nports:int -> latency:int -> t
(** [latency] in cycles (≈250 for a 1 µs ToR at 250 MHz).
    [fdb_capacity] bounds the MAC learning table (default 1024); the
    oldest entry is evicted first when full. *)

val attach : t -> port:int -> Link.t -> Link.side -> unit
(** Plug a link into a port; the switch receives frames arriving at the
    given [side] of the link and transmits from that side. *)

val set_port_up : t -> port:int -> bool -> unit
(** Administratively raise/lower a port. Frames arriving on a down port,
    and frames whose egress port is down, are dropped (and counted
    against the ingress port). Ports start up. *)

val port_up : t -> port:int -> bool

(** {2 Aggregate counters} *)

val frames_forwarded : t -> int
val frames_flooded : t -> int

val frames_dropped : t -> int
(** Frames discarded: ingress or egress port down, or destination
    learned behind the ingress port. *)

val table_size : t -> int
val fdb_capacity : t -> int

(** {2 Per-port counters}

    All attributed to the {e ingress} port of the frame. *)

val port_forwarded : t -> port:int -> int
val port_flooded : t -> port:int -> int
val port_dropped : t -> port:int -> int

val register_metrics : t -> prefix:string -> unit
(** Install an [Apiary_obs.Registry] sampler (named [prefix ^ ".switch"])
    publishing forwarded/flooded/dropped totals, FDB size, and per-port
    forwarded/dropped gauges. *)
