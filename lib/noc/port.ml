type t = Local | North | East | South | West

let all = [ Local; North; East; South; West ]
let all_arr = [| Local; North; East; South; West |]
let of_index i = all_arr.(i)

let opposite = function
  | Local -> Local
  | North -> South
  | South -> North
  | East -> West
  | West -> East

let index = function Local -> 0 | North -> 1 | East -> 2 | South -> 3 | West -> 4
let count = 5

let to_string = function
  | Local -> "local"
  | North -> "north"
  | East -> "east"
  | South -> "south"
  | West -> "west"

let pp ppf p = Format.pp_print_string ppf (to_string p)
