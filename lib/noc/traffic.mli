(** Synthetic traffic generation for NoC characterization.

    Drives a mesh with classic patterns (uniform random, hotspot, transpose,
    bit-complement, nearest-neighbour) at a configurable injection rate —
    the standard methodology for throughput/latency curves (E3, E9). *)

module Rng := Apiary_engine.Rng

type pattern =
  | Uniform  (** destination uniform over all other tiles *)
  | Hotspot of Coord.t * float
      (** [(hot, frac)]: with probability [frac] target [hot], else uniform *)
  | Transpose  (** (x,y) -> (y,x) *)
  | Bit_complement  (** (x,y) -> (cols-1-x, rows-1-y) *)
  | Neighbor  (** fixed right neighbour (wraps) *)

val pattern_to_string : pattern -> string

val destination :
  Rng.t -> pattern -> cols:int -> rows:int -> src:Coord.t -> Coord.t
(** Sample a destination tile (never equal to [src] for randomized
    patterns; deterministic patterns may map a tile to itself, in which
    case the caller should skip injection). *)

type gen

val start :
  'a Mesh.t ->
  rng:Rng.t ->
  pattern:pattern ->
  rate:float ->
  payload_bytes:int ->
  ?cls:int ->
  ?stripe:int ->
  payload:'a ->
  unit ->
  gen
(** Attach a Bernoulli open-loop generator to every tile of the mesh:
    each cycle each tile independently injects a packet with probability
    [rate] (packets/tile/cycle). Runs until {!stop_gen}.

    The generator pre-draws its RNG stream ahead of the clock (in the
    exact per-cycle/per-tile order a cycle-by-cycle generator would),
    buffers upcoming injections, and reports [Idle_until] the next one —
    so the simulator fast-forwards dead air instead of ticking the
    generator every cycle, with a byte-identical injection sequence.

    On a partitioned mesh pass [stripe] and start one replica per stripe
    with identically-seeded RNGs: each replica runs on its stripe's
    simulator, draws the full RNG stream (so streams stay in lockstep)
    and injects only at tiles its stripe owns — the union of injections
    is byte-identical to a monolithic single-generator run. *)

val stop_gen : gen -> unit
val offered : gen -> int
(** Packets offered so far. *)
