(** Deterministic dimension-order routing.

    Both orders are deadlock-free on a mesh for single-packet dependencies
    (Dally & Seitz); message-dependent deadlock is avoided at the protocol
    layer by sinking packets into unbounded NIC receive queues (the
    "consumption assumption" — see paper refs [30,32]). *)

type t =
  | Xy  (** Route X first, then Y. *)
  | Yx  (** Route Y first, then X. *)

val next_port : t -> at:Coord.t -> dst:Coord.t -> Port.t
(** Output port a packet at router [at] headed for [dst] must take;
    [Local] when [at = dst]. *)

val to_string : t -> string
