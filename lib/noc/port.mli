(** Router port directions for a 2D mesh. *)

type t = Local | North | East | South | West

val all : t list
(** All five ports, [Local] first. *)

val all_arr : t array
(** Same as {!all}, as an array for O(1) indexing on hot paths. Do not
    mutate. *)

val of_index : int -> t
(** Inverse of {!index}; raises on out-of-range. *)

val opposite : t -> t
(** Mirror direction; [opposite Local = Local]. *)

val index : t -> int
(** Dense index in [\[0,4\]], suitable for array indexing. *)

val count : int
(** Number of ports (5). *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
