type t = Xy | Yx

let step_x (at : Coord.t) (dst : Coord.t) =
  if dst.x > at.x then Some Port.East
  else if dst.x < at.x then Some Port.West
  else None

let step_y (at : Coord.t) (dst : Coord.t) =
  if dst.y > at.y then Some Port.South
  else if dst.y < at.y then Some Port.North
  else None

let next_port t ~at ~dst =
  let first, second =
    match t with Xy -> (step_x, step_y) | Yx -> (step_y, step_x)
  in
  match first at dst with
  | Some p -> p
  | None -> ( match second at dst with Some p -> p | None -> Port.Local)

let to_string = function Xy -> "xy" | Yx -> "yx"
