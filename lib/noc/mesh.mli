(** A complete 2D-mesh Network-on-Chip: routers, links, NICs, wiring and
    measurement.

    The mesh is polymorphic in the packet payload so higher layers can ship
    arbitrary messages without this library depending on them. End-to-end
    packet latency (injection-queue entry to tail-flit ejection) and hop
    counts are recorded automatically. *)

module Sim := Apiary_engine.Sim
module Par_sim := Apiary_engine.Par_sim
module Stats := Apiary_engine.Stats

type config = {
  cols : int;
  rows : int;
  vcs : int;  (** Virtual channels = QoS classes per port. *)
  depth : int;  (** Buffer depth per input VC, in flits. *)
  flit_bytes : int;  (** Payload bytes carried per flit. *)
  routing : Routing.t;
  qos : bool;  (** Strict class-priority arbitration when [true]. *)
}

val default_config : config
(** 4x4 mesh, 2 VCs, depth 4, 16-byte flits, XY routing, QoS off. *)

type 'a t

val create : ?engine:Par_sim.t -> Sim.t -> config -> 'a t
(** Without [engine], everything runs on [sim]. With [engine], the mesh
    is partitioned into one vertical stripe of columns per engine member
    ([Par_sim.n_domains] total, which must not exceed [cols]); tiles are
    created on their stripe's simulator and the East/West links crossing
    a stripe boundary become partition boundaries with a one-cycle
    lookahead (the link's register latency). [sim] is ignored in that
    case. Results are byte-identical to a monolithic run: boundary flits
    and credits are delivered via committed injects in the neighbour's
    next event phase, which observers cannot distinguish from the commit
    phase of a shared simulator. *)

val sim : 'a t -> Sim.t
(** Member-0 / monolithic simulator (where most callers schedule). *)

val stripes : 'a t -> int
(** Number of partitions (1 when monolithic). *)

val sim_of : 'a t -> int -> Sim.t
(** Simulator owning stripe [s]. *)

val stripe_of : 'a t -> Coord.t -> int
(** Stripe owning a tile. *)

val config : 'a t -> config
val coords : 'a t -> Coord.t list
(** All tile coordinates, row-major. *)

val in_bounds : 'a t -> Coord.t -> bool

val send :
  'a t -> src:Coord.t -> dst:Coord.t -> ?cls:int -> ?corr:int ->
  payload_bytes:int -> 'a -> unit
(** Enqueue a packet at [src]'s NIC. [payload_bytes] determines the flit
    count; the payload value itself rides opaquely. [corr] (default [0])
    is the RPC correlation id stamped on the packet so per-hop span
    events attribute to the originating call. *)

val set_obs_board : 'a t -> int -> unit
(** Stamp the board id on every router and NIC (and on end-to-end
    transfer spans), so [Apiary_obs.Span] events from this mesh land on
    the right process row in the exported trace. *)

val register_metrics : 'a t -> prefix:string -> unit
(** Install an [Apiary_obs.Registry] sampler (named [prefix ^ ".noc"],
    so re-attaching replaces) that publishes per-router occupancy and
    utilization gauges ([<prefix>.noc.r<x>_<y>.occ]/[.util] — the NoC
    heatmap), sent/delivered totals, and the latency and hop
    histograms. *)

val set_receiver : 'a t -> Coord.t -> ('a Packet.t -> unit) -> unit
(** Install the delivery callback for a tile (replaces any previous). *)

val nic_at : 'a t -> Coord.t -> 'a Nic.t
val router_at : 'a t -> Coord.t -> 'a Router.t

val latency : 'a t -> Stats.Histogram.t
(** End-to-end packet latency in cycles, all classes. *)

val latency_of_class : 'a t -> int -> Stats.Histogram.t
val hop_histogram : 'a t -> Stats.Histogram.t
val packets_sent : 'a t -> int
val packets_delivered : 'a t -> int
val flits_routed : 'a t -> int
(** Sum of flits forwarded by all routers. *)

val tx_backlog : 'a t -> int
(** Total packets queued or in flight across all NICs (drain check). *)

val column_activity : 'a t -> int array
(** Armed (active-set) tickers per mesh column — each column is an
    activity subregion of its stripe's simulator. *)

val active_columns : 'a t -> int
(** Number of columns whose subregion activity bit is set (armed > 0). *)
