(** Network interface between a tile and its router's [Local] port.

    Transmit side: per-class unbounded packet queues (the OS layer above is
    responsible for policing; see the Apiary monitor). One flit is injected
    per cycle; the highest class with pending work wins when QoS is enabled,
    and packets within a class are injected contiguously so wormhole
    ordering holds per VC.

    Receive side: one flit per VC is drained from the ejection buffers each
    cycle; when a tail flit arrives, the full packet is delivered to the
    receive callback. *)

module Sim := Apiary_engine.Sim

type 'a t

val create :
  ?region:int -> Sim.t -> router:'a Router.t -> depth:int -> qos:bool -> 'a t
(** Create a NIC, wire it to [router]'s [Local] port and register its tick
    (in activity subregion [region], if given). [depth] is the ejection
    buffer depth per VC. *)

val coord : 'a t -> Coord.t

val send : 'a t -> 'a Packet.t -> unit
(** Enqueue a packet for injection. *)

val set_rx : 'a t -> ('a Packet.t -> unit) -> unit
(** Set the delivery callback (replaces any previous one). *)

val tx_backlog : 'a t -> int
(** Packets queued or in flight on the transmit side. *)

val injected : 'a t -> int
(** Packets fully injected so far. *)

val delivered : 'a t -> int
(** Packets delivered to the receive callback so far. *)

val set_obs : 'a t -> board:int -> track:int -> unit
(** Identity stamped on inject/eject [Apiary_obs.Span] instants (see
    {!Router.set_obs}). *)
