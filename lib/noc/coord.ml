type t = { x : int; y : int }

let make x y = { x; y }
let equal a b = a.x = b.x && a.y = b.y
let compare a b = Stdlib.compare (a.y, a.x) (b.y, b.x)
let hops a b = abs (a.x - b.x) + abs (a.y - b.y)
let to_index ~cols c = (c.y * cols) + c.x
let of_index ~cols i = { x = i mod cols; y = i / cols }
let to_string c = Printf.sprintf "(%d,%d)" c.x c.y
let pp ppf c = Format.pp_print_string ppf (to_string c)
