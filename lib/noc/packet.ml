type 'a t = {
  id : int;
  src : Coord.t;
  dst : Coord.t;
  cls : int;
  size_flits : int;
  payload : 'a;
  injected_at : int;
  corr : int;
  mutable hop_ts : int;
}

(* Atomic so independent sims can run in parallel domains; ids are only
   required to be unique, never dense or ordered. *)
let next_id = Atomic.make 0

let make ?(corr = 0) ~src ~dst ~cls ~size_flits ~payload ~now () =
  assert (size_flits >= 1);
  assert (cls >= 0);
  let id = 1 + Atomic.fetch_and_add next_id 1 in
  { id; src; dst; cls; size_flits; payload; injected_at = now; corr;
    hop_ts = now }

let set_hop_ts p ts = p.hop_ts <- ts

let flits_for ~flit_bytes ~payload_bytes =
  assert (flit_bytes > 0);
  assert (payload_bytes >= 0);
  (* The head flit carries the header; payload bytes ride in body flits. *)
  1 + ((payload_bytes + flit_bytes - 1) / flit_bytes)

let hops p = Coord.hops p.src p.dst

module Flit = struct
  type 'a packet = 'a t
  type 'a t = { pkt : 'a packet; idx : int }

  let is_head f = f.idx = 0
  let is_tail f = f.idx = f.pkt.size_flits - 1
end
