module Fifo = Apiary_engine.Fifo
module Sim = Apiary_engine.Sim
module Span = Apiary_obs.Span
module Perf = Apiary_obs.Perf

type 'a chan = {
  buf : 'a Packet.Flit.t Fifo.t;
  mutable on_pop : unit -> unit;
  occ : int ref;  (* owner's aggregate occupancy counter (staged + committed) *)
}

let make_chan ?(counter = ref 0) sim ~depth name =
  { buf = Fifo.create sim ~capacity:depth name; on_pop = (fun () -> ()); occ = counter }

let chan_push c f =
  if Fifo.push c.buf f then begin
    incr c.occ;
    true
  end
  else false

let chan_push_exn c f =
  if not (chan_push c f) then
    failwith (Printf.sprintf "Router.chan_push_exn: %s full" (Fifo.name c.buf))

let chan_pop_exn c =
  let f = Fifo.pop_exn c.buf in
  decr c.occ;
  c.on_pop ();
  f

let chan_pop c =
  if Fifo.is_empty c.buf then None else Some (chan_pop_exn c)

(* Boundary delivery for the parallel engine: the flit was already
   staged and committed on the sending partition, so it enters committed
   storage directly (event phase runs before any ticker looks). *)
let chan_inject c f =
  Fifo.inject c.buf f;
  incr c.occ

(* Where an output VC sends its flits: a downstream channel wired
   in-simulator, or an opaque push for links that cross a Par_sim
   partition boundary (capacity is still enforced by credits). *)
type 'a sink = Sink_chan of 'a chan | Sink_fn of ('a Packet.Flit.t -> unit)

type 'a output = {
  mutable dest : 'a sink option;
  mutable credits : int;
  mutable owner : int;  (* owning input slot mid-packet; -1 = free *)
}

type 'a t = {
  sim : Sim.t;
  coord : Coord.t;
  vcs : int;
  routing : Routing.t;
  qos : bool;
  mutable obs_board : int;  (* board id for Span events; -1 = unassigned *)
  mutable obs_track : int;  (* tile index used as the Span track *)
  inputs : 'a chan array array;  (* [port][vc] *)
  outputs : 'a output array array;  (* [port][vc] *)
  (* Per input slot: allocated output port (-1 = unallocated) and output
     vc — two int arrays rather than an option-of-pair table so the
     per-flit routing path allocates nothing. *)
  alloc_op : int array;
  alloc_ov : int array;
  rr : int array;  (* rotating arbitration pointer per output port *)
  port_used : bool array;  (* input port crossbar slot used this cycle *)
  in_occ : int ref;  (* flits staged or buffered across all input channels *)
  (* Per-cycle scratch. Each occupied slot has at most one output port it
     can want this cycle (its allocation, or its head flit's route), so we
     classify slots into per-output-port candidate lists once per tick and
     arbitration scans only its own list. *)
  cand : int array array;  (* [output port] -> candidate slots *)
  n_cand : int array;
  slot_cls : int array;  (* head flit's class per slot (QoS priority key) *)
  slot_ov : int array;  (* requested output vc per slot *)
  slot_p : int array;  (* slot -> input port index (avoids hot-path div) *)
  slot_v : int array;  (* slot -> input vc *)
  perf : Perf.t;  (* per-router counter block (readable in-band) *)
}

let coord t = t.coord
let vcs t = t.vcs
let input_chan t p v = t.inputs.(Port.index p).(v)

let set_obs t ~board ~track =
  t.obs_board <- board;
  t.obs_track <- track

let input_occupancy t = !(t.in_occ)

let connect t ~port ~vc ~dest ~credits =
  let o = t.outputs.(Port.index port).(vc) in
  o.dest <- Some (Sink_chan dest);
  o.credits <- credits

let connect_fn t ~port ~vc ~push ~credits =
  let o = t.outputs.(Port.index port).(vc) in
  o.dest <- Some (Sink_fn push);
  o.credits <- credits

let credit t ~port ~vc =
  let o = t.outputs.(Port.index port).(vc) in
  o.credits <- o.credits + 1

let perf t = t.perf
let flits_routed t = Perf.read t.perf Perf.flits
let busy_cycles t = Perf.read t.perf Perf.busy

let clamp_cls t cls = if cls >= t.vcs then t.vcs - 1 else if cls < 0 then 0 else cls

(* Classify every input slot with a committed flit into the candidate
   list of the one output port it can want this cycle: its allocated
   output mid-packet, or its head flit's routing decision. Output-side
   conditions (owner, credits, wiring) are checked at arbitration time,
   when that port's state is current. Classification happens before any
   routing, so the recorded class/output-vc stay valid for every slot
   whose input port has not been used (route_one marks used ports, which
   arbitration re-checks and skips). *)
let classify t =
  Array.fill t.n_cand 0 Port.count 0;
  let push_cand t slot op_i cls ov =
    t.slot_cls.(slot) <- cls;
    t.slot_ov.(slot) <- ov;
    t.cand.(op_i).(t.n_cand.(op_i)) <- slot;
    t.n_cand.(op_i) <- t.n_cand.(op_i) + 1
  in
  for p = 0 to Port.count - 1 do
    let row = t.inputs.(p) in
    for v = 0 to t.vcs - 1 do
      let buf = row.(v).buf in
      if not (Fifo.is_empty buf) then begin
        let flit = Fifo.peek_exn buf in
        let slot = (p * t.vcs) + v in
        let op_i = Array.unsafe_get t.alloc_op slot in
        if op_i >= 0 then
          push_cand t slot op_i flit.pkt.cls (Array.unsafe_get t.alloc_ov slot)
        else if Packet.Flit.is_head flit then begin
          let want = Routing.next_port t.routing ~at:t.coord ~dst:flit.pkt.dst in
          push_cand t slot (Port.index want) flit.pkt.cls
            (clamp_cls t flit.pkt.cls)
        end
        (* body flit with no allocation: blocked this cycle *)
      end
    done
  done

(* Find the input slot that should win output port [op] this cycle among
   its classified candidates. Returns the slot index, or -1 when no
   candidate is admissible. Candidate keys are distinct, so the winner is
   the same one the full slot scan would pick. Allocation-free: the
   winner's flit is re-peeked by [route_one]. *)
let arbitrate t op =
  let op_i = Port.index op in
  let nslots = Port.count * t.vcs in
  let best = ref (-1) in
  let best_key = ref min_int in
  let cand = t.cand.(op_i) in
  for k = 0 to t.n_cand.(op_i) - 1 do
    let slot = Array.unsafe_get cand k in
    let p = Array.unsafe_get t.slot_p slot in
    if not (Array.unsafe_get t.port_used p) then begin
      let ov = Array.unsafe_get t.slot_ov slot in
      let o = t.outputs.(op_i).(ov) in
      (* A candidate that only the dry credit counter holds back is a
         credit stall — the per-cycle backpressure count the perf block
         exposes. The check order preserves admissibility exactly. *)
      let admissible =
        if Array.unsafe_get t.alloc_op slot >= 0 then
          if o.credits > 0 then true
          else begin
            Perf.incr t.perf Perf.credit_stalls;
            false
          end
        else if o.owner < 0 && o.dest <> None then
          if o.credits > 0 then true
          else begin
            Perf.incr t.perf Perf.credit_stalls;
            false
          end
        else false
      in
      if admissible then begin
        (* Priority key: class when QoS is on, then rotating order.
           [slot - rr] is in (-nslots, nslots), so one conditional add
           replaces the mod. *)
        let rot = slot - t.rr.(op_i) in
        let rot = if rot < 0 then rot + nslots else rot in
        let key =
          if t.qos then (Array.unsafe_get t.slot_cls slot * nslots * 2) - rot
          else -rot
        in
        if !best < 0 || key > !best_key then begin
          best := slot;
          best_key := key
        end
      end
    end
  done;
  !best

let route_one t op =
  let slot = arbitrate t op in
  if slot < 0 then false
  else begin
    let op_i = Port.index op in
    let p = t.slot_p.(slot) and v = t.slot_v.(slot) in
    let ov = t.slot_ov.(slot) in
    let o = t.outputs.(op_i).(ov) in
    let flit = chan_pop_exn t.inputs.(p).(v) in
    if Packet.Flit.is_head flit then begin
      t.alloc_op.(slot) <- op_i;
      t.alloc_ov.(slot) <- ov;
      o.owner <- slot;
      if Span.on () then begin
        (* One span per head flit per router: from the cycle the head
           last advanced (injection or upstream hop) to now, i.e. this
           hop's serialization + queueing wait. *)
        let pkt = flit.pkt in
        let now = Sim.now t.sim in
        Span.complete ~board:t.obs_board ~corr:pkt.Packet.corr
          ~args:
            [
              ("at", Coord.to_string t.coord);
              ("out", Port.to_string Port.all_arr.(op_i));
            ]
          ~cat:"noc" ~name:"hop" ~track:t.obs_track
          ~ts:pkt.Packet.hop_ts
          ~dur:(now - pkt.Packet.hop_ts)
          ();
        Packet.set_hop_ts pkt now
      end
    end;
    (match o.dest with
    | Some (Sink_chan d) -> chan_push_exn d flit
    | Some (Sink_fn push) -> push flit
    | None -> assert false);
    o.credits <- o.credits - 1;
    if Packet.Flit.is_tail flit then begin
      t.alloc_op.(slot) <- -1;
      o.owner <- -1
    end;
    t.port_used.(p) <- true;
    t.rr.(op_i) <- ((p * t.vcs) + v + 1) mod (Port.count * t.vcs);
    Perf.incr t.perf Perf.flits;
    true
  end

let tick t =
  (* Quiescent router: no flit staged or buffered in any input channel,
     so arbitration over every output port would come up empty. *)
  if !(t.in_occ) = 0 then Sim.Idle
  else begin
    (* Occupancy watermark: sampled only on executed cycles, but the
       fast-forward contract guarantees occupancy is 0 throughout any
       skipped stretch, so the watermark is identical across engine
       modes. *)
    Perf.set_max t.perf Perf.occ_peak !(t.in_occ);
    Array.fill t.port_used 0 Port.count false;
    classify t;
    let moved = ref false in
    for pi = 0 to Port.count - 1 do
      if t.n_cand.(pi) > 0 && route_one t Port.all_arr.(pi) then moved := true
    done;
    if !moved then Perf.incr t.perf Perf.busy;
    if !(t.in_occ) = 0 then Sim.Idle else Sim.Busy
  end

let create ?region sim ~coord ~vcs ~depth ~routing ~qos =
  assert (vcs >= 1);
  assert (depth >= 1);
  let in_occ = ref 0 in
  let mk_inputs p =
    Array.init vcs (fun v ->
        make_chan ~counter:in_occ sim ~depth
          (Printf.sprintf "r%s.in.%s.%d" (Coord.to_string coord)
             (Port.to_string Port.all_arr.(p))
             v))
  in
  let t =
    {
      sim;
      coord;
      vcs;
      routing;
      qos;
      obs_board = -1;
      obs_track = 0;
      inputs = Array.init Port.count mk_inputs;
      outputs =
        Array.init Port.count (fun _ ->
            Array.init vcs (fun _ -> { dest = None; credits = 0; owner = -1 }));
      alloc_op = Array.make (Port.count * vcs) (-1);
      alloc_ov = Array.make (Port.count * vcs) 0;
      rr = Array.make Port.count 0;
      port_used = Array.make Port.count false;
      in_occ;
      cand = Array.init Port.count (fun _ -> Array.make (Port.count * vcs) 0);
      n_cand = Array.make Port.count 0;
      slot_cls = Array.make (Port.count * vcs) 0;
      slot_ov = Array.make (Port.count * vcs) 0;
      slot_p = Array.init (Port.count * vcs) (fun s -> s / vcs);
      slot_v = Array.init (Port.count * vcs) (fun s -> s mod vcs);
      perf = Perf.create ();
    }
  in
  let h = Sim.add_clocked_h ~name:"noc.router" ?region sim (fun () -> tick t) in
  (* Any flit arrival — a neighbour's staged push committing, or a
     cross-partition inject — re-arms the router out of its parked
     state. *)
  Array.iter
    (fun row -> Array.iter (fun c -> Fifo.set_owner c.buf h) row)
    t.inputs;
  t
