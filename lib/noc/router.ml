module Fifo = Apiary_engine.Fifo
module Sim = Apiary_engine.Sim

type 'a chan = {
  buf : 'a Packet.Flit.t Fifo.t;
  mutable on_pop : unit -> unit;
}

let make_chan sim ~depth name =
  { buf = Fifo.create sim ~capacity:depth name; on_pop = (fun () -> ()) }

let chan_pop c =
  match Fifo.pop c.buf with
  | None -> None
  | Some f ->
    c.on_pop ();
    Some f

type 'a output = {
  mutable dest : 'a chan option;
  mutable credits : int;
  mutable owner : (int * int) option;  (* (input port index, vc) mid-packet *)
}

type 'a t = {
  coord : Coord.t;
  vcs : int;
  routing : Routing.t;
  qos : bool;
  inputs : 'a chan array array;  (* [port][vc] *)
  outputs : 'a output array array;  (* [port][vc] *)
  alloc : (int * int) option array array;
      (* per input [port][vc]: allocated (output port index, vc) *)
  rr : int array;  (* rotating arbitration pointer per output port *)
  port_used : bool array;  (* input port crossbar slot used this cycle *)
  mutable flits_routed : int;
  mutable busy_cycles : int;
}

let coord t = t.coord
let vcs t = t.vcs
let input_chan t p v = t.inputs.(Port.index p).(v)

let connect t ~port ~vc ~dest ~credits =
  let o = t.outputs.(Port.index port).(vc) in
  o.dest <- Some dest;
  o.credits <- credits

let credit t ~port ~vc =
  let o = t.outputs.(Port.index port).(vc) in
  o.credits <- o.credits + 1

let flits_routed t = t.flits_routed
let busy_cycles t = t.busy_cycles

let clamp_cls t cls = if cls >= t.vcs then t.vcs - 1 else if cls < 0 then 0 else cls

(* Find the input (port, vc) that should win output port [op] this cycle.
   Returns (input port index, vc, output vc, flit). *)
let arbitrate t op =
  let op_i = Port.index op in
  let nslots = Port.count * t.vcs in
  let best = ref None in
  let best_key = ref min_int in
  let consider slot =
    let p = slot / t.vcs and v = slot mod t.vcs in
    if not t.port_used.(p) then begin
      match Fifo.peek t.inputs.(p).(v).buf with
      | None -> ()
      | Some flit ->
        let candidate_ov =
          match t.alloc.(p).(v) with
          | Some (op', ov) -> if op' = op_i && t.outputs.(op_i).(ov).credits > 0 then Some ov else None
          | None ->
            if Packet.Flit.is_head flit then begin
              let want = Routing.next_port t.routing ~at:t.coord ~dst:flit.pkt.dst in
              if want = op then begin
                let ov = clamp_cls t flit.pkt.cls in
                let o = t.outputs.(op_i).(ov) in
                if o.owner = None && o.credits > 0 && o.dest <> None then Some ov
                else None
              end
              else None
            end
            else None
        in
        match candidate_ov with
        | None -> ()
        | Some ov ->
          (* Priority key: class when QoS is on, then rotating order. *)
          let rot = (slot - t.rr.(op_i) + nslots) mod nslots in
          let key = if t.qos then (flit.pkt.cls * nslots * 2) - rot else -rot in
          if !best = None || key > !best_key then begin
            best := Some (p, v, ov, flit);
            best_key := key
          end
    end
  in
  for slot = 0 to nslots - 1 do
    consider slot
  done;
  !best

let route_one t op =
  match arbitrate t op with
  | None -> false
  | Some (p, v, ov, flit) ->
    let op_i = Port.index op in
    let o = t.outputs.(op_i).(ov) in
    let popped = chan_pop t.inputs.(p).(v) in
    assert (popped <> None);
    if Packet.Flit.is_head flit then begin
      t.alloc.(p).(v) <- Some (op_i, ov);
      o.owner <- Some (p, v)
    end;
    (match o.dest with
    | Some d -> Fifo.push_exn d.buf flit
    | None -> assert false);
    o.credits <- o.credits - 1;
    if Packet.Flit.is_tail flit then begin
      t.alloc.(p).(v) <- None;
      o.owner <- None
    end;
    t.port_used.(p) <- true;
    t.rr.(op_i) <- ((p * t.vcs) + v + 1) mod (Port.count * t.vcs);
    t.flits_routed <- t.flits_routed + 1;
    true

let tick t =
  Array.fill t.port_used 0 Port.count false;
  let moved = ref false in
  let do_port op = if route_one t op then moved := true in
  List.iter do_port Port.all;
  if !moved then t.busy_cycles <- t.busy_cycles + 1

let create sim ~coord ~vcs ~depth ~routing ~qos =
  assert (vcs >= 1);
  assert (depth >= 1);
  let mk_inputs p =
    Array.init vcs (fun v ->
        make_chan sim ~depth
          (Printf.sprintf "r%s.in.%s.%d" (Coord.to_string coord)
             (Port.to_string (List.nth Port.all p))
             v))
  in
  let t =
    {
      coord;
      vcs;
      routing;
      qos;
      inputs = Array.init Port.count mk_inputs;
      outputs =
        Array.init Port.count (fun _ ->
            Array.init vcs (fun _ -> { dest = None; credits = 0; owner = None }));
      alloc = Array.init Port.count (fun _ -> Array.make vcs None);
      rr = Array.make Port.count 0;
      port_used = Array.make Port.count false;
      flits_routed = 0;
      busy_cycles = 0;
    }
  in
  Sim.add_ticker sim (fun () -> tick t);
  t
