(** Tile coordinates on a 2D mesh. *)

type t = { x : int; y : int }

val make : int -> int -> t
val equal : t -> t -> bool
val compare : t -> t -> int
val hops : t -> t -> int
(** Manhattan distance — the minimal hop count between two tiles. *)

val to_index : cols:int -> t -> int
(** Row-major linear index. *)

val of_index : cols:int -> int -> t

val to_string : t -> string
val pp : Format.formatter -> t -> unit
