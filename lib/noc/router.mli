(** Single-cycle wormhole router with virtual channels and credit-based
    flow control.

    Each of the five ports has [vcs] virtual channels; VC index equals the
    packet's QoS class (clamped), so classes never share buffers. A head
    flit allocates an output VC and the packet holds it until its tail flit
    passes (wormhole switching). Per cycle the router moves at most one flit
    per output port and one flit per input port; arbitration is rotating
    round-robin, or strict class priority when QoS mode is on.

    Credits track downstream buffer space: a flit is only forwarded when the
    destination buffer is guaranteed to accept it, and a credit returns to
    the upstream router one cycle after the downstream buffer is drained —
    the standard credit-based scheme, so buffers can never overflow. *)

module Fifo := Apiary_engine.Fifo
module Sim := Apiary_engine.Sim

(** A buffered flit channel: a router input buffer or a NIC ejection
    buffer. [on_pop] is invoked each time a flit is drained, and is wired
    by {!Mesh} to return a credit upstream. [occ] points at the owning
    component's aggregate occupancy counter (staged + committed flits
    across all of its channels), which lets the owner's tick return
    immediately when it holds no flits. *)
type 'a chan = {
  buf : 'a Packet.Flit.t Fifo.t;
  mutable on_pop : unit -> unit;
  occ : int ref;
}

val make_chan : ?counter:int ref -> Sim.t -> depth:int -> string -> 'a chan
(** Create a free-standing channel (used for NIC ejection buffers).
    [counter] is the owner's shared occupancy counter; defaults to a
    fresh private one. *)

val chan_push : 'a chan -> 'a Packet.Flit.t -> bool
(** Stage a flit into the channel (visible after commit) and bump the
    owner's occupancy counter. All pushes into a channel must go through
    this, never [Fifo.push] directly, or occupancy tracking desyncs. *)

val chan_push_exn : 'a chan -> 'a Packet.Flit.t -> unit
(** Like {!chan_push} but raises [Failure] when full. *)

val chan_pop : 'a chan -> 'a Packet.Flit.t option
(** Drain one flit, decrement the occupancy counter and fire the
    credit-return hook. *)

val chan_pop_exn : 'a chan -> 'a Packet.Flit.t
(** Like {!chan_pop} but raises [Queue.Empty] instead of allocating an
    option. Check [Fifo.is_empty chan.buf] first on hot paths. *)

val chan_inject : 'a chan -> 'a Packet.Flit.t -> unit
(** Insert a flit into the channel's {e committed} storage, bypassing
    the staging phase ({!Fifo.inject}). For cross-partition boundary
    deliveries in the parallel engine only: the flit already paid its
    cycle of staging latency on the sending partition. Must run in the
    event phase, before tickers. *)

type 'a t

val create :
  ?region:int ->
  Sim.t ->
  coord:Coord.t ->
  vcs:int ->
  depth:int ->
  routing:Routing.t ->
  qos:bool ->
  'a t
(** Create a router and register its per-cycle tick with the simulator
    (in activity subregion [region], if given). Input-channel arrivals
    re-arm the router when it is parked. *)

val coord : 'a t -> Coord.t
val vcs : 'a t -> int

val input_chan : 'a t -> Port.t -> int -> 'a chan
(** The input buffer for ([port], [vc]) — neighbours and NICs push into
    it (respecting its capacity, which credits guarantee). *)

val connect : 'a t -> port:Port.t -> vc:int -> dest:'a chan -> credits:int -> unit
(** Wire the output ([port], [vc]) to a downstream channel with an initial
    credit allowance equal to that channel's buffer depth. *)

val connect_fn :
  'a t -> port:Port.t -> vc:int -> push:('a Packet.Flit.t -> unit) ->
  credits:int -> unit
(** Like {!connect}, but forwarded flits are handed to [push] instead of
    a local channel — the hook {!Mesh} uses for links that cross a
    Par_sim partition boundary. [credits] must still equal the remote
    buffer's depth; credit returns arrive via {!credit}. *)

val credit : 'a t -> port:Port.t -> vc:int -> unit
(** Return one credit to output ([port], [vc]). *)

val perf : 'a t -> Apiary_obs.Perf.t
(** The router's hardware counter block: flits forwarded, busy cycles,
    credit stalls and the input-occupancy watermark — updated
    cycle-accurately, never influencing routing, and readable in-band by
    the stat service. *)

val flits_routed : 'a t -> int
(** Total flits forwarded since creation (switch activity). Equals the
    [Perf.flits] slot of {!perf}. *)

val busy_cycles : 'a t -> int
(** Cycles in which at least one flit was forwarded ([Perf.busy]). *)

val input_occupancy : 'a t -> int
(** Flits currently staged or buffered across all input channels (the
    per-router "heatmap" gauge the metrics registry samples). *)

val set_obs : 'a t -> board:int -> track:int -> unit
(** Identity stamped on per-hop [Apiary_obs.Span] events: the owning
    board id and the tile index used as the span track. {!Mesh} sets the
    track at creation; boards set the board id. *)
