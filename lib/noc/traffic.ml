module Rng = Apiary_engine.Rng
module Sim = Apiary_engine.Sim

type pattern =
  | Uniform
  | Hotspot of Coord.t * float
  | Transpose
  | Bit_complement
  | Neighbor

let pattern_to_string = function
  | Uniform -> "uniform"
  | Hotspot (c, f) -> Printf.sprintf "hotspot%s@%.2f" (Coord.to_string c) f
  | Transpose -> "transpose"
  | Bit_complement -> "bit-complement"
  | Neighbor -> "neighbor"

let uniform_dst rng ~cols ~rows ~(src : Coord.t) =
  let n = cols * rows in
  let rec draw () =
    let i = Rng.int rng n in
    let c = Coord.of_index ~cols i in
    if Coord.equal c src then draw () else c
  in
  if n <= 1 then src else draw ()

let destination rng pattern ~cols ~rows ~(src : Coord.t) =
  match pattern with
  | Uniform -> uniform_dst rng ~cols ~rows ~src
  | Hotspot (hot, frac) ->
    if (not (Coord.equal src hot)) && Rng.chance rng frac then hot
    else uniform_dst rng ~cols ~rows ~src
  | Transpose ->
    let c = Coord.make (src.y mod cols) (src.x mod rows) in
    c
  | Bit_complement -> Coord.make (cols - 1 - src.x) (rows - 1 - src.y)
  | Neighbor -> Coord.make ((src.x + 1) mod cols) src.y

type pending = { at : int; psrc : Coord.t; pdst : Coord.t }

type gen = {
  mutable running : bool;
  mutable offered : int;
  pending : pending Queue.t;  (* scanned-ahead injections, ascending [at] *)
}

(* How many future cycles one tick may pre-draw while hunting for the
   next injection. Bounds the work per executed cycle; a dry scan parks
   the generator with [Idle_until] at the scan frontier and resumes
   there. *)
let scan_bound = 1024

let start mesh ~rng ~pattern ~rate ~payload_bytes ?(cls = 0) ?stripe ~payload () =
  assert (rate >= 0.0 && rate <= 1.0);
  let g = { running = true; offered = 0; pending = Queue.create () } in
  let cfg = Mesh.config mesh in
  let tiles = Array.of_list (Mesh.coords mesh) in
  (* Partitioned meshes run one generator replica per stripe, each
     seeded identically. Every replica draws the complete RNG stream
     (keeping all replicas' streams in lockstep with the monolithic
     generator's) but injects only at the tiles its stripe owns — so the
     union of injections is byte-identical to the single-generator
     run. *)
  let owns =
    match stripe with
    | None -> fun _ -> true
    | Some s -> fun src -> Mesh.stripe_of mesh src = s
  in
  let sim = Mesh.sim_of mesh (Option.value ~default:0 stripe) in
  (* The generator consumes entropy for every simulated cycle, so it
     cannot simply park: skipping a cycle's draws would shift the RNG
     stream and change every subsequent injection. Instead it draws the
     per-cycle/per-tile stream *ahead* — in exactly the order the flat
     per-cycle loop drew it — buffers the injections it finds, and
     reports an honest [Idle_until] for the next one. [drawn_upto] is
     the first cycle whose draws have not happened yet (-1 until the
     first tick pins it to the tick's cycle, matching the cycle the flat
     scheduler would first have run us). *)
  let drawn_upto = ref (-1) in
  let draw_cycle c =
    Array.iter
      (fun src ->
        if Rng.chance rng rate then begin
          let dst =
            destination rng pattern ~cols:cfg.Mesh.cols ~rows:cfg.Mesh.rows ~src
          in
          if (not (Coord.equal dst src)) && owns src then
            Queue.add { at = c; psrc = src; pdst = dst } g.pending
        end)
      tiles
  in
  let inject p =
    g.offered <- g.offered + 1;
    Mesh.send mesh ~src:p.psrc ~dst:p.pdst ~cls ~payload_bytes payload
  in
  let tick () =
    if not g.running then Sim.Idle
    else begin
      let now = Sim.now sim in
      if !drawn_upto < 0 then drawn_upto := now;
      (* Inject everything due, scanning forward (a cycle at a time, so
         same-cycle finds inject immediately) until a future injection
         or the scan bound stops us. *)
      let progress = ref true in
      while !progress do
        progress := false;
        while
          (not (Queue.is_empty g.pending))
          && (Queue.peek g.pending).at <= now
        do
          inject (Queue.pop g.pending)
        done;
        if Queue.is_empty g.pending && !drawn_upto <= now + scan_bound then begin
          draw_cycle !drawn_upto;
          incr drawn_upto;
          progress := true
        end
      done;
      if Queue.is_empty g.pending then Sim.Idle_until !drawn_upto
      else Sim.Idle_until (Queue.peek g.pending).at
    end
  in
  Sim.add_clocked ~name:"noc.traffic" sim tick;
  g

let stop_gen g =
  g.running <- false;
  (* Pre-drawn injections that have not fired yet die with the
     generator: the flat per-cycle generator injected nothing after
     stop either. *)
  Queue.clear g.pending

let offered g = g.offered
