module Rng = Apiary_engine.Rng
module Sim = Apiary_engine.Sim

type pattern =
  | Uniform
  | Hotspot of Coord.t * float
  | Transpose
  | Bit_complement
  | Neighbor

let pattern_to_string = function
  | Uniform -> "uniform"
  | Hotspot (c, f) -> Printf.sprintf "hotspot%s@%.2f" (Coord.to_string c) f
  | Transpose -> "transpose"
  | Bit_complement -> "bit-complement"
  | Neighbor -> "neighbor"

let uniform_dst rng ~cols ~rows ~(src : Coord.t) =
  let n = cols * rows in
  let rec draw () =
    let i = Rng.int rng n in
    let c = Coord.of_index ~cols i in
    if Coord.equal c src then draw () else c
  in
  if n <= 1 then src else draw ()

let destination rng pattern ~cols ~rows ~(src : Coord.t) =
  match pattern with
  | Uniform -> uniform_dst rng ~cols ~rows ~src
  | Hotspot (hot, frac) ->
    if (not (Coord.equal src hot)) && Rng.chance rng frac then hot
    else uniform_dst rng ~cols ~rows ~src
  | Transpose ->
    let c = Coord.make (src.y mod cols) (src.x mod rows) in
    c
  | Bit_complement -> Coord.make (cols - 1 - src.x) (rows - 1 - src.y)
  | Neighbor -> Coord.make ((src.x + 1) mod cols) src.y

type gen = { mutable running : bool; mutable offered : int }

let start mesh ~rng ~pattern ~rate ~payload_bytes ?(cls = 0) ?stripe ~payload () =
  assert (rate >= 0.0 && rate <= 1.0);
  let g = { running = true; offered = 0 } in
  let cfg = Mesh.config mesh in
  let tiles = Array.of_list (Mesh.coords mesh) in
  (* Partitioned meshes run one generator replica per stripe, each
     seeded identically. Every replica draws the complete RNG stream
     (keeping all replicas' streams in lockstep with the monolithic
     generator's) but injects only at the tiles its stripe owns — so the
     union of injections is byte-identical to the single-generator
     run. *)
  let owns =
    match stripe with
    | None -> fun _ -> true
    | Some s -> fun src -> Mesh.stripe_of mesh src = s
  in
  let tick () =
    (* While running we draw from the RNG every executed cycle, so the
       generator must report Busy: skipping a cycle would shift the RNG
       stream and change every subsequent draw. Once stopped it touches
       nothing and fast-forward is safe. *)
    if g.running then begin
      Array.iter
        (fun src ->
          if Rng.chance rng rate then begin
            let dst =
              destination rng pattern ~cols:cfg.Mesh.cols ~rows:cfg.Mesh.rows ~src
            in
            if not (Coord.equal dst src) && owns src then begin
              g.offered <- g.offered + 1;
              Mesh.send mesh ~src ~dst ~cls ~payload_bytes payload
            end
          end)
        tiles;
      Sim.Busy
    end
    else Sim.Idle
  in
  Sim.add_clocked ~name:"noc.traffic"
    (Mesh.sim_of mesh (Option.value ~default:0 stripe))
    tick;
  g

let stop_gen g = g.running <- false
let offered g = g.offered
