(** NoC packets and flits.

    A packet is the unit of end-to-end transfer; it is carried as a train of
    flits (head + payload flits) that hold a wormhole path through the mesh.
    The payload is an opaque value of type ['a] — the NoC layer never
    inspects it, which keeps this library independent of the OS layer that
    rides on it.  Flit accounting uses the byte size reported at creation
    time so bandwidth and serialization latency are modelled faithfully. *)

type 'a t = private {
  id : int;  (** Globally unique packet id. *)
  src : Coord.t;
  dst : Coord.t;
  cls : int;  (** Virtual-channel / QoS class; [0] is best-effort. *)
  size_flits : int;  (** Total flits including the head flit. *)
  payload : 'a;
  injected_at : int;  (** Cycle the packet entered the source NIC. *)
  corr : int;  (** RPC correlation id riding with the packet; [0] = none. *)
  mutable hop_ts : int;
      (** Cycle the head flit last advanced (injection, then each router);
          routers use it to attribute per-hop queueing time. *)
}

val make :
  ?corr:int ->
  src:Coord.t ->
  dst:Coord.t ->
  cls:int ->
  size_flits:int ->
  payload:'a ->
  now:int ->
  unit ->
  'a t
(** Create a packet; [size_flits >= 1]. Ids are drawn from a global
    counter. *)

val set_hop_ts : 'a t -> int -> unit
(** Restamp {!field-hop_ts} (the type is [private], so hop bookkeeping
    goes through this). *)

val flits_for : flit_bytes:int -> payload_bytes:int -> int
(** Number of flits needed for a payload of the given size: one head flit
    (carrying routing info and the first bytes) plus as many body flits as
    required. Always at least 1. *)

val hops : 'a t -> int
(** Manhattan source→destination distance. *)

(** A flit is a slice of a packet in flight. *)
module Flit : sig
  type 'a packet := 'a t
  type 'a t = { pkt : 'a packet; idx : int }

  val is_head : 'a t -> bool
  val is_tail : 'a t -> bool
end
