module Sim = Apiary_engine.Sim
module Fifo = Apiary_engine.Fifo

type 'a inflight = { pkt : 'a Packet.t; mutable next_idx : int }

type 'a t = {
  router : 'a Router.t;
  qos : bool;
  tx : 'a Packet.t Queue.t array;  (* per class *)
  cur : 'a inflight option array;  (* per class *)
  eject : 'a Router.chan array;  (* per VC *)
  mutable rx_cb : 'a Packet.t -> unit;
  mutable injected : int;
  mutable delivered : int;
  mutable rr_cls : int;  (* fair rotation over classes when QoS is off *)
}

let coord t = Router.coord t.router

let clamp t cls =
  let v = Router.vcs t.router in
  if cls >= v then v - 1 else if cls < 0 then 0 else cls

let send t pkt = Queue.add pkt t.tx.(clamp t pkt.Packet.cls)

let set_rx t cb = t.rx_cb <- cb

let tx_backlog t =
  let queued = Array.fold_left (fun acc q -> acc + Queue.length q) 0 t.tx in
  let inflight =
    Array.fold_left
      (fun acc c -> match c with Some _ -> acc + 1 | None -> acc)
      0 t.cur
  in
  queued + inflight

let injected t = t.injected
let delivered t = t.delivered

(* Pick the class to inject from this cycle: highest class with work when
   QoS is on, else round-robin over ready classes so no class starves the
   injection port. *)
let pick_class t =
  let n = Array.length t.tx in
  let ready c = t.cur.(c) <> None || not (Queue.is_empty t.tx.(c)) in
  let order =
    if t.qos then List.init n (fun i -> n - 1 - i)
    else List.init n (fun i -> (t.rr_cls + i) mod n)
  in
  match List.find_opt ready order with
  | None -> None
  | Some c ->
    if not t.qos then t.rr_cls <- (c + 1) mod n;
    Some c

let inject t =
  match pick_class t with
  | None -> ()
  | Some c ->
    let inf =
      match t.cur.(c) with
      | Some inf -> inf
      | None ->
        let pkt = Queue.take t.tx.(c) in
        let inf = { pkt; next_idx = 0 } in
        t.cur.(c) <- Some inf;
        inf
    in
    let chan = Router.input_chan t.router Port.Local c in
    let flit = { Packet.Flit.pkt = inf.pkt; idx = inf.next_idx } in
    if Fifo.push chan.buf flit then begin
      inf.next_idx <- inf.next_idx + 1;
      if inf.next_idx >= inf.pkt.Packet.size_flits then begin
        t.cur.(c) <- None;
        t.injected <- t.injected + 1
      end
    end

let eject t =
  let deliver (f : 'a Packet.Flit.t) =
    if Packet.Flit.is_tail f then begin
      t.delivered <- t.delivered + 1;
      t.rx_cb f.pkt
    end
  in
  Array.iter
    (fun chan -> match Router.chan_pop chan with None -> () | Some f -> deliver f)
    t.eject

let tick t =
  inject t;
  eject t

let create sim ~router ~depth ~qos =
  let vcs = Router.vcs router in
  let c = Router.coord router in
  let eject =
    Array.init vcs (fun v ->
        Router.make_chan sim ~depth (Printf.sprintf "nic%s.ej.%d" (Coord.to_string c) v))
  in
  let t =
    {
      router;
      qos;
      tx = Array.init vcs (fun _ -> Queue.create ());
      cur = Array.make vcs None;
      eject;
      rx_cb = (fun _ -> ());
      injected = 0;
      delivered = 0;
      rr_cls = 0;
    }
  in
  (* Wire the router's Local outputs to our ejection buffers, with credit
     return on drain. *)
  Array.iteri
    (fun v chan ->
      Router.connect router ~port:Port.Local ~vc:v ~dest:chan ~credits:depth;
      chan.Router.on_pop <- (fun () -> Sim.after sim 1 (fun () -> Router.credit router ~port:Port.Local ~vc:v)))
    eject;
  Sim.add_ticker sim (fun () -> tick t);
  t
