module Sim = Apiary_engine.Sim
module Fifo = Apiary_engine.Fifo
module Span = Apiary_obs.Span

type 'a inflight = { pkt : 'a Packet.t; mutable next_idx : int }

type 'a t = {
  sim : Sim.t;
  router : 'a Router.t;
  qos : bool;
  mutable obs_board : int;
  mutable obs_track : int;
  tx : 'a Packet.t Queue.t array;  (* per class *)
  cur : 'a inflight option array;  (* per class *)
  eject : 'a Router.chan array;  (* per VC *)
  ej_occ : int ref;  (* flits staged or buffered across ejection channels *)
  mutable rx_cb : 'a Packet.t -> unit;
  mutable injected : int;
  mutable delivered : int;
  mutable rr_cls : int;  (* fair rotation over classes when QoS is off *)
  mutable handle : Sim.handle;  (* our ticker, re-armed on send/eject *)
}

let coord t = Router.coord t.router

let set_obs t ~board ~track =
  t.obs_board <- board;
  t.obs_track <- track

let clamp t cls =
  let v = Router.vcs t.router in
  if cls >= v then v - 1 else if cls < 0 then 0 else cls

let send t pkt =
  Queue.add pkt t.tx.(clamp t pkt.Packet.cls);
  (* Sends can arrive from a monitor's tick, an event, or driver code
     between runs; re-arm just this NIC (not the whole simulator) so
     parking and fast-forward cannot jump past the new work. *)
  Sim.rearm t.sim t.handle

let set_rx t cb = t.rx_cb <- cb

let tx_backlog t =
  let queued = Array.fold_left (fun acc q -> acc + Queue.length q) 0 t.tx in
  let inflight =
    Array.fold_left
      (fun acc c -> match c with Some _ -> acc + 1 | None -> acc)
      0 t.cur
  in
  queued + inflight

let injected t = t.injected
let delivered t = t.delivered

(* Pick the class to inject from this cycle: highest class with work when
   QoS is on, else round-robin over ready classes so no class starves the
   injection port. *)
let pick_class t =
  let n = Array.length t.tx in
  let ready c = t.cur.(c) <> None || not (Queue.is_empty t.tx.(c)) in
  let rec find k =
    if k >= n then None
    else
      let c = if t.qos then n - 1 - k else (t.rr_cls + k) mod n in
      if ready c then begin
        if not t.qos then t.rr_cls <- (c + 1) mod n;
        Some c
      end
      else find (k + 1)
  in
  find 0

let inject t =
  match pick_class t with
  | None -> ()
  | Some c ->
    let inf =
      match t.cur.(c) with
      | Some inf -> inf
      | None ->
        let pkt = Queue.take t.tx.(c) in
        let inf = { pkt; next_idx = 0 } in
        t.cur.(c) <- Some inf;
        inf
    in
    let chan = Router.input_chan t.router Port.Local c in
    (* Don't allocate the flit when the channel is full (the common case
       at saturation); pick_class has already advanced rr_cls, exactly as
       on the failed-push path. *)
    if not (Fifo.is_full chan.Router.buf) then begin
      let flit = { Packet.Flit.pkt = inf.pkt; idx = inf.next_idx } in
      Router.chan_push_exn chan flit;
      if flit.idx = 0 && Span.on () then begin
        (* Restamp so the first hop span measures from wire entry, not
           from creation (the packet may have queued in the NIC). *)
        Packet.set_hop_ts inf.pkt (Sim.now t.sim);
        Span.instant ~board:t.obs_board ~corr:inf.pkt.Packet.corr
          ~cat:"noc" ~name:"inject" ~track:t.obs_track ~ts:(Sim.now t.sim) ()
      end;
      inf.next_idx <- inf.next_idx + 1;
      if inf.next_idx >= inf.pkt.Packet.size_flits then begin
        t.cur.(c) <- None;
        t.injected <- t.injected + 1
      end
    end

let eject t =
  let deliver (f : 'a Packet.Flit.t) =
    if Packet.Flit.is_tail f then begin
      t.delivered <- t.delivered + 1;
      if Span.on () then
        Span.instant ~board:t.obs_board ~corr:f.pkt.Packet.corr ~cat:"noc"
          ~name:"eject" ~track:t.obs_track ~ts:(Sim.now t.sim) ();
      t.rx_cb f.pkt
    end
  in
  Array.iter
    (fun chan ->
      if not (Fifo.is_empty chan.Router.buf) then
        deliver (Router.chan_pop_exn chan))
    t.eject

let has_tx t =
  let n = Array.length t.tx in
  let rec go c =
    c < n && (t.cur.(c) <> None || not (Queue.is_empty t.tx.(c)) || go (c + 1))
  in
  go 0

let tick t =
  let txw = has_tx t in
  let ejw = !(t.ej_occ) > 0 in
  if not (txw || ejw) then Sim.Idle
  else begin
    if txw then inject t;
    if ejw then eject t;
    Sim.Busy
  end

let create ?region sim ~router ~depth ~qos =
  let vcs = Router.vcs router in
  let c = Router.coord router in
  let ej_occ = ref 0 in
  let eject =
    Array.init vcs (fun v ->
        Router.make_chan ~counter:ej_occ sim ~depth
          (Printf.sprintf "nic%s.ej.%d" (Coord.to_string c) v))
  in
  let t =
    {
      sim;
      router;
      qos;
      obs_board = -1;
      obs_track = 0;
      tx = Array.init vcs (fun _ -> Queue.create ());
      cur = Array.make vcs None;
      eject;
      ej_occ;
      rx_cb = (fun _ -> ());
      injected = 0;
      delivered = 0;
      rr_cls = 0;
      handle = Sim.no_handle;
    }
  in
  (* Wire the router's Local outputs to our ejection buffers, with credit
     return on drain. *)
  Array.iteri
    (fun v chan ->
      Router.connect router ~port:Port.Local ~vc:v ~dest:chan ~credits:depth;
      (* Credit returns batched through the commit phase; see Mesh.wire. *)
      let pending = ref 0 in
      let drain () =
        let n = !pending in
        pending := 0;
        for _ = 1 to n do Router.credit router ~port:Port.Local ~vc:v done
      in
      chan.Router.on_pop <-
        (fun () ->
          if !pending = 0 then Sim.mark_dirty sim drain;
          incr pending))
    eject;
  let h = Sim.add_clocked_h ~name:"noc.nic" ?region sim (fun () -> tick t) in
  t.handle <- h;
  (* Flits landing in the ejection buffers re-arm the NIC. *)
  Array.iter (fun chan -> Fifo.set_owner chan.Router.buf h) eject;
  t
