module Sim = Apiary_engine.Sim
module Par_sim = Apiary_engine.Par_sim
module Stats = Apiary_engine.Stats
module Span = Apiary_obs.Span
module Registry = Apiary_obs.Registry

type config = {
  cols : int;
  rows : int;
  vcs : int;
  depth : int;
  flit_bytes : int;
  routing : Routing.t;
  qos : bool;
}

let default_config =
  {
    cols = 4;
    rows = 4;
    vcs = 2;
    depth = 4;
    flit_bytes = 16;
    routing = Routing.Xy;
    qos = false;
  }

(* One mesh, possibly split into vertical stripes of columns, one
   Par_sim member per stripe. Stripe-indexed stats keep every hot-path
   write single-writer; public accessors aggregate on read (reads happen
   between runs, on the coordinating thread). *)
type 'a t = {
  engine : Par_sim.t option;
  sims : Sim.t array;  (* per stripe; length 1 when monolithic *)
  cfg : config;
  stripe_of_tile : int array;
  routers : 'a Router.t array;
  nics : 'a Nic.t array;
  rx_cbs : ('a Packet.t -> unit) array;
  lat_all : Stats.Histogram.t array;  (* per stripe *)
  lat_cls : Stats.Histogram.t array array;  (* [stripe].(cls) *)
  hops : Stats.Histogram.t array;
  sent : int array;  (* per stripe *)
  delivered : int array;
  col_regions : int array;  (* activity subregion id per mesh column *)
  mutable obs_board : int;  (* board id stamped on Span events; -1 = none *)
}

let sim t = t.sims.(0)
let stripes t = Array.length t.sims
let sim_of t s = t.sims.(s)
let config t = t.cfg
let idx t (c : Coord.t) = Coord.to_index ~cols:t.cfg.cols c
let stripe_of t (c : Coord.t) = t.stripe_of_tile.(idx t c)

let in_bounds t (c : Coord.t) =
  c.x >= 0 && c.x < t.cfg.cols && c.y >= 0 && c.y < t.cfg.rows

let coords t =
  List.init (t.cfg.cols * t.cfg.rows) (fun i -> Coord.of_index ~cols:t.cfg.cols i)

let nic_at t c = t.nics.(idx t c)
let router_at t c = t.routers.(idx t c)

let send t ~src ~dst ?(cls = 0) ?(corr = 0) ~payload_bytes payload =
  assert (in_bounds t src && in_bounds t dst);
  let size_flits = Packet.flits_for ~flit_bytes:t.cfg.flit_bytes ~payload_bytes in
  let s = stripe_of t src in
  let pkt =
    Packet.make ~corr ~src ~dst ~cls ~size_flits ~payload
      ~now:(Sim.now t.sims.(s)) ()
  in
  t.sent.(s) <- t.sent.(s) + 1;
  Nic.send (nic_at t src) pkt

let set_obs_board t board =
  t.obs_board <- board;
  Array.iteri (fun i r -> Router.set_obs r ~board ~track:i) t.routers;
  Array.iteri (fun i n -> Nic.set_obs n ~board ~track:i) t.nics

let set_receiver t c cb = t.rx_cbs.(idx t c) <- cb

(* Aggregating accessors. Per-stripe histograms hold disjoint samples of
   the same population, so merging bucket counts reproduces exactly the
   histogram a monolithic run records. *)
let merged name parts =
  if Array.length parts = 1 then parts.(0)
  else begin
    let h = Stats.Histogram.create name in
    Array.iter (fun src -> Stats.Histogram.merge_into ~src ~dst:h) parts;
    h
  end

let latency t = merged "noc.latency" t.lat_all

let latency_of_class t cls =
  let cls = if cls >= t.cfg.vcs then t.cfg.vcs - 1 else cls in
  merged
    (Printf.sprintf "noc.latency.c%d" cls)
    (Array.map (fun per -> per.(cls)) t.lat_cls)

let hop_histogram t = merged "noc.hops" t.hops
let sum = Array.fold_left ( + ) 0
let packets_sent t = sum t.sent
let packets_delivered t = sum t.delivered
let flits_routed t = Array.fold_left (fun a r -> a + Router.flits_routed r) 0 t.routers

let tx_backlog t = Array.fold_left (fun a n -> a + Nic.tx_backlog n) 0 t.nics

(* Armed (active-set) tickers per mesh column — the per-column aggregate
   activity bits of the hierarchical scheduler. *)
let column_activity t =
  Array.init t.cfg.cols (fun x ->
      Sim.region_active
        t.sims.(t.stripe_of_tile.(Coord.to_index ~cols:t.cfg.cols { Coord.x; y = 0 }))
        t.col_regions.(x))

let active_columns t =
  Array.fold_left (fun a n -> if n > 0 then a + 1 else a) 0 (column_activity t)

let neighbor t (c : Coord.t) (p : Port.t) : Coord.t option =
  let c' =
    match p with
    | Port.North -> { c with Coord.y = c.y - 1 }
    | Port.South -> { c with Coord.y = c.y + 1 }
    | Port.East -> { c with Coord.x = c.x + 1 }
    | Port.West -> { c with Coord.x = c.x - 1 }
    | Port.Local -> c
  in
  if p <> Port.Local && in_bounds t c' then Some c' else None

(* In-stripe wiring: direct channel connection, credits returned through
   the stripe's commit phase (one drain per cycle, not one event per
   popped flit). *)
let wire_local t sim r ~port:p ~vc:v ~(dest : 'a Router.chan) =
  Router.connect r ~port:p ~vc:v ~dest ~credits:t.cfg.depth;
  let pending = ref 0 in
  let drain () =
    let n = !pending in
    pending := 0;
    for _ = 1 to n do Router.credit r ~port:p ~vc:v done
  in
  dest.Router.on_pop <-
    (fun () ->
      if !pending = 0 then Sim.mark_dirty sim drain;
      incr pending)

(* Cross-stripe wiring: the link becomes a partition boundary with a
   one-cycle lookahead, matching the register it models. A flit routed
   in cycle [c] commits into the neighbour's input buffer as of cycle
   [c+1]: monolithically via the commit phase, across the boundary via a
   committed inject in [c+1]'s event phase — indistinguishable to every
   observer. Credits return with the same one-cycle latency in the other
   direction. *)
let wire_cross t eng ~sp ~sq r ~port:p ~vc:v ~(dest : 'a Router.chan) =
  let sim_p = t.sims.(sp) and sim_q = t.sims.(sq) in
  Router.connect_fn r ~port:p ~vc:v ~credits:t.cfg.depth
    ~push:(fun flit ->
      Par_sim.post eng ~src:sp ~dst:sq ~time:(Sim.now sim_p + 1) (fun () ->
          Router.chan_inject dest flit));
  let pending = ref 0 in
  let drain () =
    let n = !pending in
    pending := 0;
    Par_sim.post eng ~src:sq ~dst:sp ~time:(Sim.now sim_q + 1) (fun () ->
        for _ = 1 to n do Router.credit r ~port:p ~vc:v done)
  in
  dest.Router.on_pop <-
    (fun () ->
      if !pending = 0 then Sim.mark_dirty sim_q drain;
      incr pending)

let wire t =
  let link_dirs = [ Port.North; Port.East; Port.South; Port.West ] in
  let wire_one c =
    let r = router_at t c in
    let sp = stripe_of t c in
    let wire_dir p =
      match neighbor t c p with
      | None -> ()
      | Some nc ->
        let nr = router_at t nc in
        let sq = stripe_of t nc in
        for v = 0 to t.cfg.vcs - 1 do
          let dest = Router.input_chan nr (Port.opposite p) v in
          if sp = sq then wire_local t t.sims.(sp) r ~port:p ~vc:v ~dest
          else
            match t.engine with
            | Some eng -> wire_cross t eng ~sp ~sq r ~port:p ~vc:v ~dest
            | None -> assert false
        done
    in
    List.iter wire_dir link_dirs
  in
  List.iter wire_one (coords t)

let create ?engine sim cfg =
  assert (cfg.cols >= 1 && cfg.rows >= 1);
  assert (cfg.vcs >= 1 && cfg.depth >= 1 && cfg.flit_bytes >= 1);
  let n = cfg.cols * cfg.rows in
  let sims, nstripes =
    match engine with
    | None -> ([| sim |], 1)
    | Some eng ->
      let k = Par_sim.n_domains eng in
      if k > cfg.cols then
        invalid_arg "Mesh.create: more partitions than mesh columns";
      (Array.init k (Par_sim.sim eng), k)
  in
  (* Balanced blocks of columns; stripe boundaries cut only East/West
     links, whose latency (one cycle) is the engine's lookahead. *)
  let stripe_of_col x = x * nstripes / cfg.cols in
  let stripe_of_tile =
    Array.init n (fun i -> stripe_of_col (Coord.of_index ~cols:cfg.cols i).Coord.x)
  in
  (* One activity subregion per mesh column (in the stripe sim that owns
     the column): the column's routers + NICs share an aggregate
     activity bit, so a fully quiescent column reads as zero armed
     tickers while its neighbours run cycle-by-cycle. *)
  let col_regions =
    Array.init cfg.cols (fun x -> Sim.new_region sims.(stripe_of_col x))
  in
  let region_of_tile i =
    col_regions.((Coord.of_index ~cols:cfg.cols i).Coord.x)
  in
  let routers =
    Array.init n (fun i ->
        Router.create ~region:(region_of_tile i)
          sims.(stripe_of_tile.(i))
          ~coord:(Coord.of_index ~cols:cfg.cols i)
          ~vcs:cfg.vcs ~depth:cfg.depth ~routing:cfg.routing ~qos:cfg.qos)
  in
  let nics =
    Array.mapi
      (fun i r ->
        Nic.create ~region:(region_of_tile i)
          sims.(stripe_of_tile.(i))
          ~router:r ~depth:cfg.depth ~qos:cfg.qos)
      routers
  in
  let t =
    {
      engine;
      sims;
      cfg;
      stripe_of_tile;
      routers;
      nics;
      rx_cbs = Array.make n (fun _ -> ());
      lat_all =
        Array.init nstripes (fun _ -> Stats.Histogram.create "noc.latency");
      lat_cls =
        Array.init nstripes (fun _ ->
            Array.init cfg.vcs (fun c ->
                Stats.Histogram.create (Printf.sprintf "noc.latency.c%d" c)));
      hops = Array.init nstripes (fun _ -> Stats.Histogram.create "noc.hops");
      sent = Array.make nstripes 0;
      delivered = Array.make nstripes 0;
      col_regions;
      obs_board = -1;
    }
  in
  wire t;
  (* Delivery hook: record stats, then hand to the tile's receiver. *)
  Array.iteri
    (fun i nic ->
      let s = stripe_of_tile.(i) in
      let nsim = sims.(s) in
      Nic.set_rx nic (fun pkt ->
          let lat = Sim.now nsim - pkt.Packet.injected_at in
          Stats.Histogram.record t.lat_all.(s) lat;
          let cls = if pkt.Packet.cls >= cfg.vcs then cfg.vcs - 1 else pkt.Packet.cls in
          Stats.Histogram.record t.lat_cls.(s).(cls) lat;
          Stats.Histogram.record t.hops.(s) (Packet.hops pkt);
          t.delivered.(s) <- t.delivered.(s) + 1;
          if Span.on () then
            (* End-to-end transfer span, timed from NIC-queue entry so it
               covers injection backlog plus the per-hop child spans. *)
            Span.complete ~board:t.obs_board ~corr:pkt.Packet.corr
              ~args:[ ("hops", string_of_int (Packet.hops pkt)) ]
              ~cat:"noc" ~name:"xfer" ~track:i ~ts:pkt.Packet.injected_at
              ~dur:lat ();
          t.rx_cbs.(i) pkt))
    nics;
  t

let register_metrics t ~prefix =
  Registry.add_sampler
    ~name:(prefix ^ ".noc")
    (fun () ->
      Array.iteri
        (fun i r ->
          let c = Coord.of_index ~cols:t.cfg.cols i in
          let base = Printf.sprintf "%s.noc.r%d_%d" prefix c.Coord.x c.Coord.y in
          Stats.Gauge.set
            (Registry.gauge (base ^ ".occ"))
            (float_of_int (Router.input_occupancy r));
          let now = Sim.now t.sims.(t.stripe_of_tile.(i)) in
          let util =
            if now = 0 then 0.0
            else float_of_int (Router.busy_cycles r) /. float_of_int now
          in
          Stats.Gauge.set (Registry.gauge (base ^ ".util")) util)
        t.routers;
      Stats.Gauge.set
        (Registry.gauge (prefix ^ ".noc.sent"))
        (float_of_int (packets_sent t));
      Stats.Gauge.set
        (Registry.gauge (prefix ^ ".noc.delivered"))
        (float_of_int (packets_delivered t));
      Stats.Gauge.set
        (Registry.gauge (prefix ^ ".noc.active_cols"))
        (float_of_int (active_columns t));
      Registry.register (prefix ^ ".noc.latency")
        (Registry.Histogram (latency t));
      Registry.register (prefix ^ ".noc.hops")
        (Registry.Histogram (hop_histogram t)))
