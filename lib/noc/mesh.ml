module Sim = Apiary_engine.Sim
module Stats = Apiary_engine.Stats

type config = {
  cols : int;
  rows : int;
  vcs : int;
  depth : int;
  flit_bytes : int;
  routing : Routing.t;
  qos : bool;
}

let default_config =
  {
    cols = 4;
    rows = 4;
    vcs = 2;
    depth = 4;
    flit_bytes = 16;
    routing = Routing.Xy;
    qos = false;
  }

type 'a t = {
  sim : Sim.t;
  cfg : config;
  routers : 'a Router.t array;
  nics : 'a Nic.t array;
  rx_cbs : ('a Packet.t -> unit) array;
  lat_all : Stats.Histogram.t;
  lat_cls : Stats.Histogram.t array;
  hops : Stats.Histogram.t;
  mutable sent : int;
  mutable delivered : int;
}

let sim t = t.sim
let config t = t.cfg
let idx t (c : Coord.t) = Coord.to_index ~cols:t.cfg.cols c

let in_bounds t (c : Coord.t) =
  c.x >= 0 && c.x < t.cfg.cols && c.y >= 0 && c.y < t.cfg.rows

let coords t =
  List.init (t.cfg.cols * t.cfg.rows) (fun i -> Coord.of_index ~cols:t.cfg.cols i)

let nic_at t c = t.nics.(idx t c)
let router_at t c = t.routers.(idx t c)

let send t ~src ~dst ?(cls = 0) ~payload_bytes payload =
  assert (in_bounds t src && in_bounds t dst);
  let size_flits = Packet.flits_for ~flit_bytes:t.cfg.flit_bytes ~payload_bytes in
  let pkt =
    Packet.make ~src ~dst ~cls ~size_flits ~payload ~now:(Sim.now t.sim)
  in
  t.sent <- t.sent + 1;
  Nic.send (nic_at t src) pkt

let set_receiver t c cb = t.rx_cbs.(idx t c) <- cb
let latency t = t.lat_all

let latency_of_class t cls =
  let cls = if cls >= t.cfg.vcs then t.cfg.vcs - 1 else cls in
  t.lat_cls.(cls)

let hop_histogram t = t.hops
let packets_sent t = t.sent
let packets_delivered t = t.delivered
let flits_routed t = Array.fold_left (fun a r -> a + Router.flits_routed r) 0 t.routers

let tx_backlog t = Array.fold_left (fun a n -> a + Nic.tx_backlog n) 0 t.nics

let neighbor t (c : Coord.t) (p : Port.t) : Coord.t option =
  let c' =
    match p with
    | Port.North -> { c with Coord.y = c.y - 1 }
    | Port.South -> { c with Coord.y = c.y + 1 }
    | Port.East -> { c with Coord.x = c.x + 1 }
    | Port.West -> { c with Coord.x = c.x - 1 }
    | Port.Local -> c
  in
  if p <> Port.Local && in_bounds t c' then Some c' else None

let wire t =
  let link_dirs = [ Port.North; Port.East; Port.South; Port.West ] in
  let wire_one c =
    let r = router_at t c in
    let wire_dir p =
      match neighbor t c p with
      | None -> ()
      | Some nc ->
        let nr = router_at t nc in
        for v = 0 to t.cfg.vcs - 1 do
          let dest = Router.input_chan nr (Port.opposite p) v in
          Router.connect r ~port:p ~vc:v ~dest ~credits:t.cfg.depth;
          (* Batch the cycle's credit returns through the commit phase
             instead of one heap event per popped flit. Credits are only
             read during the tick phase, so applying them at commit of
             cycle [T] is indistinguishable from an event at [T+1]. *)
          let pending = ref 0 in
          let drain () =
            let n = !pending in
            pending := 0;
            for _ = 1 to n do Router.credit r ~port:p ~vc:v done
          in
          dest.Router.on_pop <-
            (fun () ->
              if !pending = 0 then Sim.mark_dirty t.sim drain;
              incr pending)
        done
    in
    List.iter wire_dir link_dirs
  in
  List.iter wire_one (coords t)

let create sim cfg =
  assert (cfg.cols >= 1 && cfg.rows >= 1);
  assert (cfg.vcs >= 1 && cfg.depth >= 1 && cfg.flit_bytes >= 1);
  let n = cfg.cols * cfg.rows in
  let routers =
    Array.init n (fun i ->
        Router.create sim
          ~coord:(Coord.of_index ~cols:cfg.cols i)
          ~vcs:cfg.vcs ~depth:cfg.depth ~routing:cfg.routing ~qos:cfg.qos)
  in
  let nics =
    Array.map (fun r -> Nic.create sim ~router:r ~depth:cfg.depth ~qos:cfg.qos) routers
  in
  let t =
    {
      sim;
      cfg;
      routers;
      nics;
      rx_cbs = Array.make n (fun _ -> ());
      lat_all = Stats.Histogram.create "noc.latency";
      lat_cls =
        Array.init cfg.vcs (fun c -> Stats.Histogram.create (Printf.sprintf "noc.latency.c%d" c));
      hops = Stats.Histogram.create "noc.hops";
      sent = 0;
      delivered = 0;
    }
  in
  wire t;
  (* Delivery hook: record stats, then hand to the tile's receiver. *)
  Array.iteri
    (fun i nic ->
      Nic.set_rx nic (fun pkt ->
          let lat = Sim.now sim - pkt.Packet.injected_at in
          Stats.Histogram.record t.lat_all lat;
          let cls = if pkt.Packet.cls >= cfg.vcs then cfg.vcs - 1 else pkt.Packet.cls in
          Stats.Histogram.record t.lat_cls.(cls) lat;
          Stats.Histogram.record t.hops (Packet.hops pkt);
          t.delivered <- t.delivered + 1;
          t.rx_cbs.(i) pkt))
    nics;
  t
