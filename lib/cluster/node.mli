(** One board of a rack: an {!Apiary_apps.Board} (kernel + mesh + MAC +
    network service) attached to the shared ToR switch, with a rack-wide
    identity (board id and MAC address) and a free-tile allocator the
    cluster installs services through.

    The node's kernel trace is stamped with the board id at creation, so
    {!Apiary_core.Trace.merge} over all nodes yields one attributed
    rack-wide event stream. *)

module Sim := Apiary_engine.Sim
module Kernel := Apiary_core.Kernel
module Switch := Apiary_net.Switch
module Netsvc := Apiary_net.Netsvc
module Board := Apiary_apps.Board

type t = {
  id : int;
  port : int;  (** ToR switch port the board's MAC is wired to *)
  board : Board.t;
  mutable free_tiles : int list;
  mutable up : bool;  (** administratively up (see {!Cluster.kill}) *)
}

val mac_of_id : int -> int
(** Board MAC addresses: 0x02_0000_0B0000 + id. *)

val create :
  ?kernel_cfg:Kernel.config ->
  ?ext_link:Apiary_net.Link.t ->
  Sim.t ->
  switch:Switch.t ->
  id:int ->
  port:int ->
  t
(** [sim] is the board's own simulator; [ext_link] (see
    {!Apiary_apps.Board.create}) carries its uplink when that simulator
    is a Par_sim partition separate from the switch's. *)

val id : t -> int
val port : t -> int
val board : t -> Board.t
val kernel : t -> Kernel.t
val sim : t -> Sim.t
val mac_addr : t -> int
val net_stats : t -> Netsvc.stats
val up : t -> bool

val alloc_tile : t -> int option
(** Next free user tile (the network-service tile is never handed out). *)

val free_tiles : t -> int list
