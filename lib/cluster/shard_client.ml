(* External load generator that drives a whole rack: requests are
   spread over the boards by consistent-hash sharding (keyed services
   like KV) or round-robin (stateless services), with client-side
   failure handling — a per-request timeout; on expiry the board is
   dropped from the shard ring (resharding onto survivors) and the work
   item reissued. Recovery announcements from the cluster re-admit the
   board.

   This is the piece the plain Net.Client lacks for multi-board runs:
   that client aims at one MAC and waits forever. *)

module Sim = Apiary_engine.Sim
module Stats = Apiary_engine.Stats
module Span = Apiary_obs.Span
module Registry = Apiary_obs.Registry
module Exemplar = Apiary_obs.Exemplar
module Mac = Apiary_net.Mac
module Frame = Apiary_net.Frame
module Netproto = Apiary_net.Netproto

type route = By_key | Round_robin

type pending = { issued_at : int; board : int; work_id : int; sid : Span.id }

type t = {
  sim : Sim.t;
  cluster : Cluster.t;
  mac : Mac.t;
  my_mac : int;
  service : string;
  op : int;
  gen : int -> string * bytes;  (* work id -> (shard key, body) *)
  route : route;
  ring : Shard.t;
  rr : Shard.Rr.t;
  timeout : int;
  pending : (int, pending) Hashtbl.t;  (* req_id -> pending *)
  lat : Stats.Histogram.t;
  exem : Exemplar.t;  (* client-side latency exemplars, keyed by req id *)
  mutable next_req : int;
  mutable next_work : int;
  mutable issued : int;
  mutable completed : int;
  mutable errors : int;
  mutable failovers : int;
  mutable running : bool;
  mutable on_complete : now:int -> unit;
  mutable on_outcome : now:int -> req:int -> latency:int option -> unit;
}

(* Client span track: ports start at 0x02_0000_0C0000 (Cluster.add_client),
   so this is 3000 + switch port — rack-level rows in the export. *)
let obs_track t = 3000 + (t.my_mac - 0x02_0000_0C0000)

let pick_board t key =
  match t.route with
  | By_key -> Shard.lookup t.ring key
  | Round_robin -> Shard.Rr.next t.rr

let drop_board t board =
  Shard.remove t.ring board;
  Shard.Rr.remove t.rr board;
  (* Tell the rack controller too, so in-fabric resolution also stops
     routing to the dead board (it re-registers on recovery). *)
  Directory.report_failure (Cluster.directory t.cluster) ~board ()

let readmit_board t board =
  Shard.add t.ring board;
  Shard.Rr.add t.rr board

(* Reconcile ring + round-robin membership with the scheduler's view of
   which boards serve our service. Unlike drop_board this does not
   report anything to the directory — membership changes here are
   placement decisions, not failures. In-flight requests to a removed
   board still complete (or time out) normally; only new issues follow
   the updated membership. *)
let sync_boards t boards =
  let want = List.sort_uniq compare boards in
  let have = List.sort compare (Shard.boards t.ring) in
  List.iter
    (fun b ->
      if not (List.mem b have) then begin
        Shard.add t.ring b;
        Shard.Rr.add t.rr b
      end)
    want;
  List.iter
    (fun b ->
      if not (List.mem b want) then begin
        Shard.remove t.ring b;
        Shard.Rr.remove t.rr b
      end)
    have

let rec issue_work t work_id =
  let key, body = t.gen work_id in
  match pick_board t key with
  | None ->
    (* No live boards at all: retry once somebody comes back. *)
    t.errors <- t.errors + 1;
    Sim.after t.sim t.timeout (fun () -> if t.running then issue_work t work_id)
  | Some board ->
    t.next_req <- t.next_req + 1;
    let req_id = t.next_req in
    let dst = Node.mac_addr (Cluster.node t.cluster board) in
    let frame =
      Frame.make ~dst ~src:t.my_mac
        (Netproto.encode_request
           { Netproto.req_id; service = t.service; op = t.op; body })
    in
    (* One span per issue attempt: a failed-over work item shows as a
       timed-out span followed by a fresh one aimed at the new board. *)
    let sid =
      if not (Span.on ()) then Span.null
      else
        Span.start
          ~args:
            [
              ("req_id", string_of_int req_id);
              ("board", string_of_int board);
              ("work", string_of_int work_id);
            ]
          ~cat:"client" ~name:"request" ~track:(obs_track t)
          ~ts:(Sim.now t.sim) ()
    in
    Hashtbl.replace t.pending req_id
      { issued_at = Sim.now t.sim; board; work_id; sid };
    t.issued <- t.issued + 1;
    if not (Mac.send t.mac frame) then begin
      (* Device backpressure: back off briefly, keep the window full. *)
      Hashtbl.remove t.pending req_id;
      Span.finish ~args:[ ("status", "backpressure") ] ~ts:(Sim.now t.sim) sid;
      t.errors <- t.errors + 1;
      Sim.after t.sim 64 (fun () -> if t.running then issue_work t work_id)
    end
    else
      Sim.after t.sim t.timeout (fun () ->
          match Hashtbl.find_opt t.pending req_id with
          | None -> ()  (* answered in time *)
          | Some p ->
            (* Client-side failure detection: declare the board dead,
               reshard its keyspace onto survivors, reissue the work. *)
            Hashtbl.remove t.pending req_id;
            Span.finish ~args:[ ("status", "timeout") ] ~ts:(Sim.now t.sim)
              p.sid;
            if Span.on () then
              Span.instant
                ~args:[ ("board", string_of_int p.board) ]
                ~cat:"client" ~name:"failover" ~track:(obs_track t)
                ~ts:(Sim.now t.sim) ();
            t.failovers <- t.failovers + 1;
            t.on_outcome ~now:(Sim.now t.sim) ~req:req_id ~latency:None;
            drop_board t p.board;
            if t.running then issue_work t p.work_id)

(* Alarm-driven failover (the rack watchdog spoke, not our timeout):
   reshard away from the board and reissue every in-flight request
   aimed at it right now, instead of letting each one age out. The
   still-armed per-request timers find their pending entries gone and
   do nothing. *)
let board_down t board =
  Shard.remove t.ring board;
  Shard.Rr.remove t.rr board;
  let stale =
    Hashtbl.fold
      (fun req_id p acc -> if p.board = board then (req_id, p) :: acc else acc)
      t.pending []
  in
  (* Hashtbl.fold order is unspecified: sort for determinism. *)
  let stale = List.sort (fun (a, _) (b, _) -> compare a b) stale in
  List.iter
    (fun (req_id, p) ->
      Hashtbl.remove t.pending req_id;
      Span.finish ~args:[ ("status", "board_down") ] ~ts:(Sim.now t.sim) p.sid;
      if Span.on () then
        Span.instant
          ~args:[ ("board", string_of_int p.board); ("via", "watchdog") ]
          ~cat:"client" ~name:"failover" ~track:(obs_track t)
          ~ts:(Sim.now t.sim) ();
      t.failovers <- t.failovers + 1;
      t.on_outcome ~now:(Sim.now t.sim) ~req:req_id ~latency:None;
      if t.running then issue_work t p.work_id)
    stale

let fresh_work t =
  t.next_work <- t.next_work + 1;
  issue_work t t.next_work

let handle_frame t (f : Frame.t) =
  (* NIC dst filter: flooded frames for other hosts must not be matched
     against our pending table (req ids are per-client counters). *)
  if f.Frame.dst <> t.my_mac then ()
  else
  match Netproto.decode_response f.Frame.payload with
  | Error _ -> ()
  | Ok rsp -> (
    match Hashtbl.find_opt t.pending rsp.Netproto.rsp_id with
    | None -> ()  (* late reply from a board already declared dead *)
    | Some p ->
      Hashtbl.remove t.pending rsp.Netproto.rsp_id;
      Span.finish
        ~args:[ ("status", Netproto.status_to_string rsp.Netproto.status) ]
        ~ts:(Sim.now t.sim) p.sid;
      if rsp.Netproto.status <> Netproto.Ok_resp then begin
        (* Service-level miss (e.g. Service_unavailable from a board
           whose replica just moved away: its netsvc drops the stale
           connection as it replies). Retryable by construction — back
           off briefly and reissue the work item, so a placement change
           never loses a request. *)
        t.errors <- t.errors + 1;
        t.on_outcome ~now:(Sim.now t.sim) ~req:rsp.Netproto.rsp_id
          ~latency:None;
        Sim.after t.sim 64 (fun () ->
            if t.running then issue_work t p.work_id)
      end
      else begin
        let lat = Sim.now t.sim - p.issued_at in
        Stats.Histogram.record t.lat lat;
        Exemplar.observe t.exem ~corr:rsp.Netproto.rsp_id ~value:lat
          ~ts:(Sim.now t.sim);
        t.completed <- t.completed + 1;
        t.on_complete ~now:(Sim.now t.sim);
        t.on_outcome ~now:(Sim.now t.sim) ~req:rsp.Netproto.rsp_id
          ~latency:(Some lat);
        if t.running then fresh_work t
      end)

let create ?(vnodes = 64) ?(timeout = 25_000) ?gbps cluster ~service ~op ~route
    ~gen =
  let mac, my_mac = Cluster.add_client ?gbps cluster in
  let board_ids = List.init (Cluster.n_boards cluster) Fun.id in
  let ring = Shard.create ~vnodes () in
  List.iter (Shard.add ring) board_ids;
  let t =
    {
      sim = Cluster.sim cluster;
      cluster;
      mac;
      my_mac;
      service;
      op;
      gen;
      route;
      ring;
      rr = Shard.Rr.create board_ids;
      timeout;
      pending = Hashtbl.create 64;
      lat = Stats.Histogram.create (Printf.sprintf "shard%x.latency" my_mac);
      exem = Exemplar.create (Printf.sprintf "shard%x.latency" my_mac);
      next_req = 0;
      next_work = 0;
      issued = 0;
      completed = 0;
      errors = 0;
      failovers = 0;
      running = false;
      on_complete = (fun ~now:_ -> ());
      on_outcome = (fun ~now:_ ~req:_ ~latency:_ -> ());
    }
  in
  Cluster.on_board_up cluster (fun b -> readmit_board t b);
  Cluster.on_board_down cluster (fun b -> board_down t b);
  Mac.set_rx mac (fun f -> handle_frame t f);
  t

let start t ~concurrency =
  assert (concurrency > 0);
  t.running <- true;
  (* Stagger the initial window to avoid lockstep artifacts. *)
  for i = 0 to concurrency - 1 do
    Sim.after t.sim (1 + i) (fun () -> if t.running then fresh_work t)
  done

let stop t = t.running <- false

let register_metrics t =
  let prefix = Printf.sprintf "client%d" (t.my_mac - 0x02_0000_0C0000) in
  Registry.add_sampler ~name:prefix (fun () ->
      let set name v =
        Stats.Gauge.set
          (Registry.gauge (prefix ^ "." ^ name))
          (float_of_int v)
      in
      set "issued" t.issued;
      set "completed" t.completed;
      set "errors" t.errors;
      set "failovers" t.failovers;
      set "live_boards" (List.length (Shard.boards t.ring));
      Registry.register (prefix ^ ".latency") (Registry.Histogram t.lat))

let issued t = t.issued
let completed t = t.completed
let errors t = t.errors
let failovers t = t.failovers
let latency t = t.lat
let exemplars t = t.exem
let live_boards t = Shard.boards t.ring
let set_on_complete t f = t.on_complete <- f
let set_on_outcome t f = t.on_outcome <- f
