(** The rack watchdog: heartbeat-based failure detection that beats
    request timeouts.

    Every board beacons a raw-Ethernet heartbeat to a watchdog NIC on
    the ToR switch each [hb_period] cycles; a board silent for longer
    than [deadline] is declared down via {!Cluster.report_down}, which
    unregisters its replicas and fires {!Cluster.on_board_down} — the
    shard client reshards and reissues that board's in-flight work at
    once. Detection latency is bounded by [deadline + hb_period]
    regardless of request traffic, versus the per-request timeout
    (~120 µs in the E12 drill) that client-driven detection needs.

    Heartbeats are events on each board's own simulator, so they fire
    across quiescence fast-forward and work under a partitioned
    ([Par_sim]) rack; the watchdog state lives wholly on the rack
    member. Deterministic for a fixed seed. *)

type t

val create : ?hb_period:int -> ?deadline:int -> ?gbps:float -> Cluster.t -> t
(** Attach the watchdog NIC (a {!Cluster.add_client} port) and start
    the beacons and the deadline sweep. Defaults: beacon every 500
    cycles, 3000-cycle deadline (must exceed [hb_period] by enough to
    cover uplink + switch latency; the defaults do at the stock 250-cycle
    ToR). *)

val board_alive : t -> int -> bool
(** Watchdog's current belief. Re-armed by the first heartbeat after a
    detection (ring re-admission still comes from {!Cluster.restore}). *)

val heartbeats_seen : t -> int

val detections : t -> (int * int) list
(** [(cycle, board)] failure declarations, oldest first. *)
