(** Federated name server for a rack of Apiary boards.

    Per-board kernels already resolve names for their own fabric; the
    directory is the layer above: it maps a service name to the set of
    boards exporting it, so [connect "kv"] from any board resolves to a
    local tile when possible and to [(mac, service)] on another board
    otherwise — the paper's location transparency ("calls to other
    modules may be local or remote", §1) across the ToR switch.

    {2 Replication}

    The directory is replicated one copy per engine partition:
    replica 0 serves the rack controller, replica [home board] serves
    that board's partition. Registry mutations are {e announcements}
    tagged [(apply_time, source partition, per-source sequence)] and
    applied at {e every} replica — including the announcer's own — in
    that canonical order once [apply_time] is reached, so all replicas
    step through the same registry states and partitioned runs are
    byte-identical to monolithic ones. A mutation announced at cycle
    [c] becomes visible to reads strictly after [c + announce_delay]
    (synchronously at [c] when [announce_delay = 0], the standalone
    default). Cross-partition delivery uses the posting hook supplied
    to {!create_replicated} — in a {!Cluster} rack, the parallel
    engine's boundary-merge protocol.

    Resolution results are cached per [(from_board, service)] in the
    asking board's replica; a failed remote call must {!invalidate} its
    route (and {!report_failure} the board if it timed out). The
    directory itself never detects failures — it is deterministic
    rack-controller state. Replica caches are single-writer (the owning
    partition); debug builds assert this on every write path. *)

type replica = { board : int; mac : int }

type resolution =
  | Local  (** the service runs on the asking board's own fabric *)
  | Remote of replica  (** reach it through the network tile *)

type t

val create : ?announce_delay:int -> Apiary_engine.Sim.t -> t
(** Single-replica directory on [sim]'s clock. [announce_delay]
    (default 0) cycles pass between a mutation and its visibility to
    reads; 0 means synchronous. *)

val create_replicated :
  announce_delay:int ->
  sims:Apiary_engine.Sim.t array ->
  home:(int -> int) ->
  post:(src:int -> dst:int -> time:int -> (unit -> unit) -> unit) ->
  unit ->
  t
(** One replica per element of [sims] (replica [p] lives on partition
    [p]'s simulator). [home board] is the replica index serving that
    board. [post] delivers a foreign replica's inbox append at the
    announcement's apply time; [announce_delay] must be at least the
    engine lookahead so those posts are legal, and at least 1. *)

val register : t -> service:string -> board:int -> mac:int -> unit
(** Idempotent per (service, board). Announced from the controller
    (replica 0). *)

val unregister_board : t -> int -> unit
(** Remove every service exported by a board (and any cached routes to
    it) — deliberate decommission or confirmed failure. Announced from
    the controller. *)

val unregister : t -> service:string -> board:int -> unit
(** Remove one (service, board) pair — a scheduler draining a single
    replica off a live board. Sticky routes that picked this replica
    are pruned; the board's other services are untouched. Announced
    from the controller. *)

val report_failure : t -> ?from_board:int -> board:int -> unit -> unit
(** Caller-observed failure (e.g. remote-call timeout): same effect as
    {!unregister_board}, announced from the reporting board's own
    partition ([from_board] defaults to the controller). *)

val resolve : t -> from_board:int -> service:string -> resolution option
(** [None] when no live replica exports the service. Remote picks are
    rotated across replicas on first resolution, then cached until
    invalidated. Served entirely from [from_board]'s replica. *)

val invalidate : t -> from_board:int -> service:string -> unit
(** Drop one cached route (stale-route handling after a failed call). *)

val replicas : t -> string -> replica list
(** Live replicas of a service, in registration order — the
    controller's (replica 0's) view. *)

val services : t -> string list
(** Registered service names, sorted — the controller's view. *)

(** {2 Counters}

    Summed across replicas; the per-replica slices partition the
    monolithic totals, so the sums are engine-mode-independent. *)

val lookups : t -> int
val cache_hits : t -> int
val invalidations : t -> int
