(** Federated name server for a rack of Apiary boards.

    Per-board kernels already resolve names for their own fabric; the
    directory is the layer above: it maps a service name to the set of
    boards exporting it, so [connect "kv"] from any board resolves to a
    local tile when possible and to [(mac, service)] on another board
    otherwise — the paper's location transparency ("calls to other
    modules may be local or remote", §1) across the ToR switch.

    Resolution results are cached per [(from_board, service)]; a failed
    remote call must {!invalidate} its route (and {!report_failure} the
    board if it timed out). The directory itself never detects failures —
    it is deterministic rack-controller state. *)

type replica = { board : int; mac : int }

type resolution =
  | Local  (** the service runs on the asking board's own fabric *)
  | Remote of replica  (** reach it through the network tile *)

type t

val create : unit -> t

val register : t -> service:string -> board:int -> mac:int -> unit
(** Idempotent per (service, board). *)

val unregister_board : t -> int -> unit
(** Remove every service exported by a board (and any cached routes to
    it) — deliberate decommission or confirmed failure. *)

val report_failure : t -> board:int -> unit
(** Caller-observed failure (e.g. remote-call timeout): same effect as
    {!unregister_board}. The board re-registers when it recovers. *)

val resolve : t -> from_board:int -> service:string -> resolution option
(** [None] when no live replica exports the service. Remote picks are
    rotated across replicas on first resolution, then cached until
    invalidated. *)

val invalidate : t -> from_board:int -> service:string -> unit
(** Drop one cached route (stale-route handling after a failed call). *)

val replicas : t -> string -> replica list
val services : t -> string list

(** {2 Counters} *)

val lookups : t -> int
val cache_hits : t -> int
val invalidations : t -> int
