(** A rack of Apiary boards behind one ToR switch — the multi-board
    layer the paper's datacenter setting implies (§1: network-attached
    FPGAs; §6-Q3: OS functionality on remote machines).

    N boards (each a full {!Apiary_apps.Board}: kernel, mesh, MAC,
    network-service tile) share one {!Apiary_net.Switch} and one
    {!Directory}. Services installed through {!install} are registered
    rack-wide; {!connect}/{!call} then make cross-board service use look
    like local use — the same callback shape whether the replica is on
    the caller's own fabric or across the switch.

    Failure model: {!kill} downs the board's switch port (a link/board
    failure as the network sees it) and notifies {e nobody}; callers
    discover it through timeouts, which invalidate cached routes and
    unregister the board. {!restore} brings the port back, re-registers
    the board's services and fires {!on_board_up} subscribers. *)

module Sim := Apiary_engine.Sim
module Shell := Apiary_core.Shell
module Switch := Apiary_net.Switch
module Mac := Apiary_net.Mac

type t

val lookahead : int
(** Minimum send-to-deliver latency of a board uplink (126 cycles:
    125 of propagation + ≥1 of serialization) — the widest window a
    board-per-partition engine for this rack may use. *)

val create :
  ?kernel_cfg:Apiary_core.Kernel.config ->
  ?client_ports:int ->
  ?switch_latency:int ->
  ?fdb_capacity:int ->
  ?engine:Apiary_engine.Par_sim.t ->
  Sim.t ->
  boards:int ->
  t
(** Boards occupy switch ports [0 .. boards-1]; [client_ports] more
    (default 8) are reserved for {!add_client}. [switch_latency]
    defaults to 250 cycles (1 µs ToR at 250 MHz).

    With [engine] (which must have exactly [boards + 1] domains and a
    lookahead of at most {!lookahead}), the rack is partitioned: member
    0 owns the ToR switch, external clients and all rack-shared state;
    member [id + 1] owns board [id]'s fabric; board uplinks become
    {!Apiary_net.Link.create_split} partition boundaries. [sim] is
    ignored in that case. Run the rack through {!Apiary_engine.Par_sim}
    — results are byte-identical between its [Seq] and [Par] modes.

    The {!directory} is replicated per partition (a replica on member 0
    for the controller and clients, one on member [id + 1] for board
    [id]), with registry mutations announced through the same
    boundary-merge protocol as uplink frames — so {!connect}/{!call}
    work from board shells and external clients alike, partitioned or
    not, with byte-identical results. Directory mutations take one
    uplink ({!lookahead} cycles) to become visible in {e every} mode,
    monolithic included. *)

val sim : t -> Sim.t
val switch : t -> Switch.t
val directory : t -> Directory.t
val n_boards : t -> int
val node : t -> int -> Node.t
val nodes : t -> Node.t list

val install : t -> board:int -> ?service:string -> Shell.behavior -> int
(** Install a behavior on the next free tile of [board]; returns the
    tile. With [?service], also registers the board as a replica of that
    service in the rack {!directory} (the behavior should register the
    same name with its own kernel in [on_boot], as usual). *)

val set_tracing : t -> bool -> unit
(** Enable/disable tracing on every board's kernel at once. *)

val merged_trace : t -> Apiary_core.Trace.event list
(** All boards' trace events pooled into one cycle-ordered stream (each
    event carries its board id). *)

(** {1 Failure injection} *)

val kill : t -> board:int -> unit
(** Down the board's switch port. No notification is delivered anywhere
    — failure is discovered by callers timing out. *)

val restore : t -> board:int -> unit
(** Bring the port back, re-register the board's services with the
    directory, and fire {!on_board_up} subscribers. *)

val on_board_up : t -> (int -> unit) -> unit
(** Subscribe to recovery announcements (shard rings and load balancers
    use this to re-admit a returning board). *)

val on_board_down : t -> (int -> unit) -> unit
(** Subscribe to failure {e detections}. {!kill} itself notifies nobody;
    this fires when a detector — the {!Rack_health} watchdog missing
    heartbeats — calls {!report_down}, letting clients fail over ahead
    of their own request timeouts. *)

val report_down : t -> board:int -> unit
(** Declare a board failed: unregister its directory replicas and fire
    {!on_board_down} subscribers. Called by failure detectors. *)

(** {1 Control plane} *)

val post_to_board : t -> board:int -> delay:int -> (unit -> unit) -> unit
(** Run a thunk inside [board]'s partition [delay] cycles from the
    controller's now — the rack controller's command channel (e.g. a
    scheduler ordering an install or reconfiguration). [delay] must be
    at least {!lookahead}: commands ride the same staging protocol as
    uplink frames, and the same delay applies in a monolithic rack, so
    partitioned runs stay byte-identical. Call only from controller
    (member 0) execution. *)

(** {1 External clients} *)

val add_client : ?gbps:float -> t -> Mac.t * int
(** Attach a host NIC to the rack switch (ports above the boards');
    returns the MAC adapter and its address. *)

(** {1 Location-transparent invocation} *)

type target =
  | Local of Shell.conn  (** replica on the caller's own fabric *)
  | Remote of { net : Shell.conn; board : int; mac : int; service : string }
      (** replica across the switch, reached via the board's network tile *)

val target_board : target -> int option
(** The remote board id, or [None] for a local target. *)

val connect :
  t -> board:int -> Shell.t -> service:string ->
  ((target, Shell.rpc_error) result -> unit) -> unit
(** Resolve [service] through the rack directory from the given board
    and build the right kind of connection: a direct NoC connection for
    a local replica, or a connection to the board's ["net"] tile wrapped
    with the remote replica's address. *)

val call :
  t -> board:int -> Shell.t -> target -> op:int -> bytes ->
  ((bytes, Shell.rpc_error) result -> unit) -> unit
(** Invoke the target: [Shell.request] for local,
    [Netsvc.remote_request] for remote — same callback shape either way
    (the location-transparency claim made concrete). A failed remote
    call invalidates the cached route; a timeout additionally reports
    the board to the directory so resolution moves to survivors. *)

(** {1 Observability} *)

val register_metrics : t -> unit
(** Install [Apiary_obs.Registry] samplers for the whole rack: each
    board's kernel and NoC under [b<id>.*], the ToR switch under
    [rack.switch.*], and directory lookup/cache/invalidation gauges
    under [rack.directory.*]. Safe to call again after a registry
    [clear] (samplers are replaced by name, never duplicated). *)
