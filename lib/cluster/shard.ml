(* Consistent-hash ring over board ids, plus a round-robin spreader.

   Pure data structures — no simulation state — so shard placement is a
   deterministic function of the board set and the key. *)

(* SplitMix-style finalizer (constants truncated to OCaml's 63-bit
   ints); native-int arithmetic wraps, and we mask to non-negative at
   the end. *)
let mix z =
  let z = z + 0x1E3779B97F4A7C15 in
  let z = (z lxor (z lsr 30)) * 0x3F58476D1CE4E5B9 in
  let z = (z lxor (z lsr 27)) * 0x14D049BB133111EB in
  (z lxor (z lsr 31)) land max_int

(* FNV-1a over the key bytes (offset basis truncated to 63 bits), with
   the mix finalizer on top: raw FNV leaves near-identical keys — "k001"
   vs "k002" — in one narrow band of the ring, which collapses the whole
   keyspace onto one board. *)
let hash_key s =
  let h = ref 0x0BF29CE484222325 in
  String.iter (fun c -> h := (!h lxor Char.code c) * 0x100000001B3) s;
  mix !h

type t = {
  vnodes : int;
  mutable points : (int * int) array;  (* (hash, board), sorted by hash *)
}

let create ?(vnodes = 64) () =
  assert (vnodes > 0);
  { vnodes; points = [||] }

let point_hash ~board ~vnode = mix ((board * 0x1000003) + vnode)

let boards t =
  Array.to_list t.points |> List.map snd |> List.sort_uniq compare

let member t board = Array.exists (fun (_, b) -> b = board) t.points

let add t board =
  if not (member t board) then begin
    let fresh =
      Array.init t.vnodes (fun v -> (point_hash ~board ~vnode:v, board))
    in
    let all = Array.append t.points fresh in
    Array.sort compare all;
    t.points <- all
  end

let remove t board =
  t.points <- Array.of_seq (Seq.filter (fun (_, b) -> b <> board)
                              (Array.to_seq t.points))

let size t = List.length (boards t)

(* First ring point at or after the key's hash, wrapping. *)
let lookup t key =
  let n = Array.length t.points in
  if n = 0 then None
  else begin
    let h = hash_key key in
    let lo = ref 0 and hi = ref n in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if fst t.points.(mid) < h then lo := mid + 1 else hi := mid
    done;
    let idx = if !lo = n then 0 else !lo in
    Some (snd t.points.(idx))
  end

(* ------------------------------------------------------------------ *)

module Rr = struct
  type t = { mutable live : int list; mutable k : int }

  let create boards = { live = List.sort_uniq compare boards; k = 0 }

  let add t board =
    if not (List.mem board t.live) then
      t.live <- List.sort_uniq compare (board :: t.live)

  let remove t board = t.live <- List.filter (fun b -> b <> board) t.live
  let live t = t.live

  let next t =
    match t.live with
    | [] -> None
    | l ->
      let b = List.nth l (t.k mod List.length l) in
      t.k <- t.k + 1;
      Some b
end
