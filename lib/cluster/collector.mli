(** Rack telemetry collector: reassembles every board agent's push
    stream into the central observability pipeline.

    {!create} builds the whole in-band telemetry plane in one call: a
    collector NIC on the ToR switch, plus one {!Apiary_obs.Agent} per
    board wired to ship its batches through the board's {e own}
    workload NIC (telemetry shares the uplink and is charged for it).
    Delivered batches land in:

    - the global Registry, under [collected.b<id>.*] names (counter /
      gauge / histogram deltas replayed), side by side with the
      board-local originals;
    - a windowed latency {!Apiary_obs.Series} per service, observed at
      collector arrival time;
    - per-metric {!Apiary_obs.Exemplar} stores — the metric→trace link;
    - a bounded collected-span list re-exportable as a Chrome trace;
    - {!on_service_outcome} subscribers (the scheduler's collected SLO
      feed).

    Accounting is conservation-exact per board (see
    {!conservation_json_string}): cumulative sent/dropped counts in
    every batch header plus sequence-gap detection make
    [emitted = delivered + dropped + lost + in-flight] close to the
    record even under deliberate uplink congestion.

    The collector runs wholly on the rack simulator, so all its exports
    are byte-identical between the sequential engine and
    [APIARY_PAR=boards]. *)

type t

type outcome = {
  o_service : string;
  o_dur : int;  (** server-observed service time, cycles *)
  o_ok : bool;  (** status arg was ["ok"] (or absent) *)
  o_corr : int;  (** cross-wire [req_id] when present, else span corr *)
}

val create :
  ?gbps:float ->
  ?agent_period:int ->
  ?agent_queue:int ->
  ?agent_batch_bytes:int ->
  ?agent_max_frames:int ->
  ?agent_until:int ->
  ?series_window:int ->
  ?span_cap:int ->
  Cluster.t ->
  t
(** Attach the collector NIC and create one push agent per board.
    [gbps] (default 100, a board-uplink-class port) sizes the
    collector's switch port — every board can flush into it at once.
    Agent knobs default to the agent's own (environment-tunable)
    defaults; [agent_max_frames] caps batches per flush (default 2);
    [agent_until] skips agent ticks after that cycle (see
    {!Apiary_obs.Agent.create}), so a run's last stretch provably
    drains the wire before conservation is read.
    [series_window] (default 50_000 cycles) sizes the latency rollup
    windows; [span_cap] (default 65_536) bounds retained collected
    spans (overflow is counted, and reported as [trace_truncated] by
    the trace export). *)

val detach : t -> unit
(** Detach every agent (stops their ticks and removes span sinks).
    Always call before reusing the obs layer for an unrelated run. *)

val agent : t -> int -> Apiary_obs.Agent.t
val n_boards : t -> int

val on_service_outcome : t -> (now:int -> outcome -> unit) -> unit
(** Subscribe to service outcomes reconstructed from collected [serve]
    spans. Serve spans are corr-0, so sampling never thins them; what
    this feed {e does} honestly miss is requests that died before any
    server saw them — client-side timeout detection stays client-side. *)

val series : t -> Apiary_obs.Series.t
(** Windowed latency rollups per collected metric
    ([collected.svc.<name>.latency]). *)

val exemplar : t -> string -> Apiary_obs.Exemplar.t option
(** The exemplar store for a collected metric name, if any samples with
    a usable correlation id arrived. *)

val rx_frames : t -> int
val delivered : t -> board:int -> int
val lost_batches : t -> board:int -> int

val lost_records_detected : t -> board:int -> int
(** Wire loss inferred from cumulative batch-header counts at sequence
    gaps — the collector's independent estimate of
    [sent_records - delivered], exact once a post-gap batch arrives. *)

val last_agent_ts : t -> board:int -> int

val staleness : t -> board:int -> now:int -> int
(** Age, in cycles, of the freshest data collected from the board (the
    full [now] before any batch has arrived). *)

val collected_spans : t -> (int * Apiary_obs.Agent.Wire.span_done) list
(** Delivered span completions in arrival order, with their board. *)

val trace_events : t -> Apiary_obs.Span.event list

val trace_json_string : t -> string
(** Collected spans as a byte-stable Chrome trace (standard exporter;
    [trace_truncated] metadata appears iff the span cap dropped any). *)

val conservation_json_string : t -> string
(** Byte-stable per-board accounting:
    [{"boards": [{"board", "emitted", "delivered", "dropped_agent",
    "lost_wire", "lost_wire_detected", "in_flight", "sent_records",
    "sent_batches", "sent_bytes", "batches", "lost_batches",
    "backpressure", "decode_errors", "last_agent_ts", "last_rx"},
    ...]}] satisfying
    [emitted == delivered + dropped_agent + lost_wire + in_flight]
    exactly once the fabric has drained. *)

val exemplars_json_string : t -> string
(** [{"metrics": [<exemplar store>, ...]}], sorted by metric name. *)
