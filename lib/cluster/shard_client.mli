(** Rack-aware load generator: an external host that shards a request
    stream over all boards of a {!Cluster}, with client-side failover.

    Routing is consistent-hash by key ({!By_key}, for stateful services
    like KV — each board owns a stable slice of the keyspace) or
    round-robin ({!Round_robin}, for stateless replicas). Every request
    carries a timeout; on expiry the target board is dropped from the
    shard ring — resharding its keyspace onto survivors — and the work
    item is reissued, counted as a {!failovers}. The client re-admits a
    board when the cluster announces its recovery ({!Cluster.restore}),
    so a failover drill needs no operator intervention. *)

module Stats := Apiary_engine.Stats

type route = By_key | Round_robin

type t

val create :
  ?vnodes:int ->
  ?timeout:int ->
  ?gbps:float ->
  Cluster.t ->
  service:string ->
  op:int ->
  route:route ->
  gen:(int -> string * bytes) ->
  t
(** [gen work_id] returns the shard key and request body for one work
    item (deterministic in [work_id], so runs are reproducible).
    [timeout] defaults to 25_000 cycles (100 µs) — well above a healthy
    cross-rack RTT, well below the drill's degraded window. *)

val start : t -> concurrency:int -> unit
(** Closed loop: keep [concurrency] requests outstanding. *)

val stop : t -> unit

val issued : t -> int

val completed : t -> int
(** Successful ([Ok]) replies only. *)

val errors : t -> int
(** Transient failures the client retried: device backpressure, an
    empty shard ring (no live boards — retried when one returns), or a
    non-[Ok] reply (e.g. [Service_unavailable] from a board whose
    replica just moved away). The work item is reissued in every case;
    no request is lost. *)

val failovers : t -> int
(** Requests that timed out and were reissued to a survivor. *)

val latency : t -> Stats.Histogram.t

val exemplars : t -> Apiary_obs.Exemplar.t
(** One retained request id per latency bucket (latest-wins): the
    metric→trace link for this client's histogram — a p99 row resolves
    to a concrete [req_id] whose spans the trace retains. *)

val live_boards : t -> int list

val set_on_complete : t -> (now:int -> unit) -> unit
(** Hook fired at each completion (e.g. to feed a {!Stats.Series}). *)

val set_on_outcome :
  t -> (now:int -> req:int -> latency:int option -> unit) -> unit
(** Hook fired at every request {e outcome}: [Some latency] (cycles)
    for an [Ok] reply, [None] for a timeout, a watchdog-driven
    board-down reissue, or a non-[Ok] reply. Device backpressure is not
    an outcome — the request never left the host. This is the feed for
    SLO accounting ({!Apiary_obs.Slo}), where timeouts must count
    against the error budget even though no latency sample exists. *)

val sync_boards : t -> int list -> unit
(** Reconcile shard-ring and round-robin membership with a scheduler's
    placement: boards in the list are admitted, boards not in it are
    removed — without reporting anything to the directory (these are
    placement changes, not failures). In-flight requests to a removed
    board still complete; only new issues follow the new membership. *)

val register_metrics : t -> unit
(** Install an [Apiary_obs.Registry] sampler publishing this client's
    issued/completed/errors/failovers gauges and its latency histogram
    under [client<port>.*]. *)
