module Sim = Apiary_engine.Sim
module Shell = Apiary_core.Shell
module Kernel = Apiary_core.Kernel
module Trace = Apiary_core.Trace
module Switch = Apiary_net.Switch
module Netsvc = Apiary_net.Netsvc
module Netproto = Apiary_net.Netproto
module Mac = Apiary_net.Mac
module Board = Apiary_apps.Board

type t = {
  sim : Sim.t;
  switch : Switch.t;
  directory : Directory.t;
  nodes : Node.t array;
  exported : (int, string list) Hashtbl.t;  (* board -> services, for re-reg *)
  mutable next_client_port : int;
  mutable on_up : (int -> unit) list;
}

let create ?kernel_cfg ?(client_ports = 8) ?(switch_latency = 250)
    ?fdb_capacity sim ~boards =
  if boards <= 0 then invalid_arg "Cluster.create: boards must be positive";
  let switch =
    Switch.create ?fdb_capacity sim ~nports:(boards + client_ports)
      ~latency:switch_latency
  in
  let nodes =
    Array.init boards (fun id -> Node.create ?kernel_cfg sim ~switch ~id ~port:id)
  in
  {
    sim;
    switch;
    directory = Directory.create ();
    nodes;
    exported = Hashtbl.create 8;
    next_client_port = boards;
    on_up = [];
  }

let sim t = t.sim
let switch t = t.switch
let directory t = t.directory
let n_boards t = Array.length t.nodes
let node t board = t.nodes.(board)
let nodes t = Array.to_list t.nodes

let merged_trace t =
  Trace.merge (List.map (fun n -> Kernel.trace (Node.kernel n)) (nodes t))

let set_tracing t on =
  Array.iter
    (fun n -> Trace.set_enabled (Kernel.trace (Node.kernel n)) on)
    t.nodes

let install t ~board ?service behavior =
  let nd = t.nodes.(board) in
  match Node.alloc_tile nd with
  | None -> invalid_arg "Cluster.install: board has no free tile"
  | Some tile ->
    Kernel.install (Node.kernel nd) ~tile behavior;
    (match service with
    | None -> ()
    | Some service ->
      Directory.register t.directory ~service ~board ~mac:(Node.mac_addr nd);
      let prev = Option.value ~default:[] (Hashtbl.find_opt t.exported board) in
      if not (List.mem service prev) then
        Hashtbl.replace t.exported board (prev @ [ service ]));
    tile

(* ------------------------------------------------------------------ *)
(* Failure injection.

   A "killed" board is a network partition: its ToR port goes down, so
   frames to and from it are dropped (and counted by the switch). The
   board's fabric keeps simulating — exactly what a rack controller
   sees when a board's link dies. Nobody is notified: callers discover
   the failure through timeouts and report it to the directory. *)

let kill t ~board =
  let nd = t.nodes.(board) in
  Switch.set_port_up t.switch ~port:(Node.port nd) false;
  nd.Node.up <- false

let on_board_up t f = t.on_up <- t.on_up @ [ f ]

(* Recovery is announced: the board re-registers its services with the
   directory (a gratuitous announcement, like gratuitous ARP) and
   subscribers — load balancers, shard rings — re-admit it. *)
let restore t ~board =
  let nd = t.nodes.(board) in
  Switch.set_port_up t.switch ~port:(Node.port nd) true;
  nd.Node.up <- true;
  List.iter
    (fun service ->
      Directory.register t.directory ~service ~board ~mac:(Node.mac_addr nd))
    (Option.value ~default:[] (Hashtbl.find_opt t.exported board));
  List.iter (fun f -> f board) t.on_up

(* ------------------------------------------------------------------ *)
(* External clients hang off the same ToR switch, on ports above the
   boards'. *)

let add_client ?gbps t =
  let port = t.next_client_port in
  t.next_client_port <- port + 1;
  Board.add_client_port (Node.board t.nodes.(0)) ~port ?gbps ()

(* ------------------------------------------------------------------ *)
(* Location-transparent invocation (paper §1: "calls to other modules
   may be local or remote"). *)

type target =
  | Local of Shell.conn
  | Remote of { net : Shell.conn; board : int; mac : int; service : string }

let target_board = function Local _ -> None | Remote r -> Some r.board

let connect t ~board sh ~service k =
  match Directory.resolve t.directory ~from_board:board ~service with
  | None -> k (Error (Shell.Nacked ("no replica of " ^ service)))
  | Some Directory.Local ->
    Shell.connect sh ~service (fun r ->
        k (Result.map (fun conn -> Local conn) r))
  | Some (Directory.Remote rep) ->
    Shell.connect sh ~service:"net" (fun r ->
        match r with
        | Error e -> k (Error e)
        | Ok net ->
          k (Ok (Remote { net; board = rep.Directory.board;
                          mac = rep.Directory.mac; service })))

let call t ~board sh target ~op body k =
  match target with
  | Local conn ->
    Shell.request sh conn ~opcode:op body (fun r ->
        k (Result.map (fun m -> m.Apiary_core.Message.payload) r))
  | Remote r ->
    Netsvc.remote_request sh r.net ~dst_mac:r.mac ~service:r.service ~op body
      (fun res ->
        match res with
        | Ok rsp when rsp.Netproto.status = Netproto.Ok_resp ->
          k (Ok rsp.Netproto.body)
        | Ok rsp ->
          (* The remote board answered but could not serve: drop the
             cached route so the next resolve picks another replica. *)
          Directory.invalidate t.directory ~from_board:board ~service:r.service;
          let what =
            if rsp.Netproto.status = Netproto.Service_unavailable then
              "service unavailable on remote board"
            else "remote error"
          in
          k (Error (Shell.Nacked what))
        | Error e ->
          (* No answer at all: stale route, and on timeout presume the
             board dead until it re-announces. *)
          Directory.invalidate t.directory ~from_board:board ~service:r.service;
          (match e with
          | Shell.Timeout -> Directory.report_failure t.directory ~board:r.board
          | _ -> ());
          k (Error e))
