module Sim = Apiary_engine.Sim
module Par_sim = Apiary_engine.Par_sim
module Stats = Apiary_engine.Stats
module Span = Apiary_obs.Span
module Registry = Apiary_obs.Registry
module Shell = Apiary_core.Shell
module Kernel = Apiary_core.Kernel
module Trace = Apiary_core.Trace
module Switch = Apiary_net.Switch
module Netsvc = Apiary_net.Netsvc
module Netproto = Apiary_net.Netproto
module Mac = Apiary_net.Mac
module Link = Apiary_net.Link
module Board = Apiary_apps.Board

type t = {
  sim : Sim.t;
  engine : Par_sim.t option;  (* Some when the rack is partitioned *)
  switch : Switch.t;
  directory : Directory.t;
  nodes : Node.t array;
  exported : (int, string list) Hashtbl.t;  (* board -> services, for re-reg *)
  mutable next_client_port : int;
  mutable on_up : (int -> unit) list;
  mutable on_down : (int -> unit) list;
}

(* The board uplink is a 100G link (50 B/cycle) with 125 cycles of
   propagation; serialization adds at least one cycle, so no frame
   crosses it in under 126 — the lookahead a board-per-partition
   Par_sim may run with (Link.min_latency of the uplink). *)
let uplink_bytes_per_cycle = Board.gbps_to_bytes_per_cycle 100.0
let uplink_prop_cycles = 125
let lookahead = uplink_prop_cycles + 1

let create ?kernel_cfg ?(client_ports = 8) ?(switch_latency = 250)
    ?fdb_capacity ?engine sim ~boards =
  if boards <= 0 then invalid_arg "Cluster.create: boards must be positive";
  (* Partitioned rack: member 0 owns the switch, the external clients
     and every piece of rack-shared state (directory, shard rings,
     failure injection); member [id+1] owns board [id]'s entire fabric.
     The only cross-partition traffic is frames on the board uplinks,
     which the split links stage through Par_sim.post. *)
  (* The directory announces registry mutations with one uplink of
     latency in both modes, so a partitioned rack (replica per
     partition, announcements staged like uplink frames) is
     byte-identical to a monolithic one. *)
  let sim, board_sim, mk_uplink, directory =
    match engine with
    | None ->
      (sim, (fun _ -> sim), (fun _ -> None),
       Directory.create ~announce_delay:lookahead sim)
    | Some eng ->
      if Par_sim.n_domains eng <> boards + 1 then
        invalid_arg "Cluster.create: engine must have boards+1 domains";
      if Par_sim.lookahead eng > lookahead then
        invalid_arg "Cluster.create: engine lookahead exceeds uplink latency";
      let csim = Par_sim.sim eng 0 in
      ( csim,
        (fun id -> Par_sim.sim eng (id + 1)),
        (fun id ->
          Some
            (Link.create_split ~sim_a:(Par_sim.sim eng (id + 1)) ~sim_b:csim
               ~post_to_a:(fun ~time fn ->
                 Par_sim.post eng ~src:0 ~dst:(id + 1) ~time fn)
               ~post_to_b:(fun ~time fn ->
                 Par_sim.post eng ~src:(id + 1) ~dst:0 ~time fn)
               ~bytes_per_cycle:uplink_bytes_per_cycle
               ~prop_cycles:uplink_prop_cycles)),
        Directory.create_replicated ~announce_delay:lookahead
          ~sims:(Array.init (boards + 1) (Par_sim.sim eng))
          ~home:(fun b -> b + 1)
          ~post:(fun ~src ~dst ~time fn -> Par_sim.post eng ~src ~dst ~time fn)
          () )
  in
  let switch =
    Switch.create ?fdb_capacity sim ~nports:(boards + client_ports)
      ~latency:switch_latency
  in
  let nodes =
    Array.init boards (fun id ->
        Node.create ?kernel_cfg ?ext_link:(mk_uplink id) (board_sim id) ~switch
          ~id ~port:id)
  in
  {
    sim;
    engine;
    switch;
    directory;
    nodes;
    exported = Hashtbl.create 8;
    next_client_port = boards;
    on_up = [];
    on_down = [];
  }

(* Controller-to-board command delivery: run [fn] inside board [board]'s
   partition [delay] cycles from the controller's now. Commands ride the
   same staging protocol as uplink frames and directory announcements
   (so [delay >= lookahead]); in a monolithic rack the timing is
   identical, keeping partitioned runs byte-for-byte the same. Must be
   called from controller (member 0) execution. *)
let post_to_board t ~board ~delay fn =
  if delay < lookahead then
    invalid_arg "Cluster.post_to_board: delay must be >= Cluster.lookahead";
  if board < 0 || board >= Array.length t.nodes then
    invalid_arg "Cluster.post_to_board: no such board";
  match t.engine with
  | Some eng ->
    Par_sim.post eng ~src:0 ~dst:(board + 1)
      ~time:(Sim.now t.sim + delay) fn
  | None -> Sim.after t.sim delay fn

let sim t = t.sim
let switch t = t.switch
let directory t = t.directory
let n_boards t = Array.length t.nodes
let node t board = t.nodes.(board)
let nodes t = Array.to_list t.nodes

let merged_trace t =
  Trace.merge (List.map (fun n -> Kernel.trace (Node.kernel n)) (nodes t))

let set_tracing t on =
  Array.iter
    (fun n -> Trace.set_enabled (Kernel.trace (Node.kernel n)) on)
    t.nodes

let install t ~board ?service behavior =
  let nd = t.nodes.(board) in
  match Node.alloc_tile nd with
  | None -> invalid_arg "Cluster.install: board has no free tile"
  | Some tile ->
    Kernel.install (Node.kernel nd) ~tile behavior;
    (match service with
    | None -> ()
    | Some service ->
      Directory.register t.directory ~service ~board ~mac:(Node.mac_addr nd);
      let prev = Option.value ~default:[] (Hashtbl.find_opt t.exported board) in
      if not (List.mem service prev) then
        Hashtbl.replace t.exported board (prev @ [ service ]));
    tile

(* ------------------------------------------------------------------ *)
(* Failure injection.

   A "killed" board is a network partition: its ToR port goes down, so
   frames to and from it are dropped (and counted by the switch). The
   board's fabric keeps simulating — exactly what a rack controller
   sees when a board's link dies. Nobody is notified: callers discover
   the failure through timeouts and report it to the directory. *)

let kill t ~board =
  let nd = t.nodes.(board) in
  Switch.set_port_up t.switch ~port:(Node.port nd) false;
  nd.Node.up <- false

let on_board_up t f = t.on_up <- t.on_up @ [ f ]
let on_board_down t f = t.on_down <- t.on_down @ [ f ]

(* A failure *detection* (the rack watchdog missing heartbeats, not the
   injection itself — kill notifies nobody): unregister the board's
   replicas and push the news to subscribers, so shard rings and load
   balancers stop aiming at the corpse before their own request
   timeouts would have told them. *)
let report_down t ~board =
  Directory.report_failure t.directory ~board ();
  List.iter (fun f -> f board) t.on_down

(* Recovery is announced: the board re-registers its services with the
   directory (a gratuitous announcement, like gratuitous ARP) and
   subscribers — load balancers, shard rings — re-admit it. *)
let restore t ~board =
  let nd = t.nodes.(board) in
  Switch.set_port_up t.switch ~port:(Node.port nd) true;
  nd.Node.up <- true;
  List.iter
    (fun service ->
      Directory.register t.directory ~service ~board ~mac:(Node.mac_addr nd))
    (Option.value ~default:[] (Hashtbl.find_opt t.exported board));
  List.iter (fun f -> f board) t.on_up

(* ------------------------------------------------------------------ *)
(* External clients hang off the same ToR switch, on ports above the
   boards'. *)

let add_client ?(gbps = 10.0) t =
  let port = t.next_client_port in
  t.next_client_port <- port + 1;
  (* Client links live wholly on the rack simulator (member 0 under a
     partitioned engine) — never on a board's, whose partition the
     switch-side delivery would then cross without staging. *)
  let link =
    Link.create t.sim
      ~bytes_per_cycle:(Board.gbps_to_bytes_per_cycle gbps)
      ~prop_cycles:125
  in
  Switch.attach t.switch ~port link Link.B;
  let mac = Mac.create t.sim Mac.Gen_10g link Link.A in
  (mac, 0x02_0000_0C0000 + port)

(* ------------------------------------------------------------------ *)
(* Location-transparent invocation (paper §1: "calls to other modules
   may be local or remote"). *)

type target =
  | Local of Shell.conn
  | Remote of { net : Shell.conn; board : int; mac : int; service : string }

let target_board = function Local _ -> None | Remote r -> Some r.board

let obs_mark sh ?args name =
  if Span.on () then
    Span.instant ~board:(Shell.obs_board sh) ?args ~cat:"cluster" ~name
      ~track:(Shell.tile sh) ~ts:(Shell.now sh) ()

let connect t ~board sh ~service k =
  match Directory.resolve t.directory ~from_board:board ~service with
  | None ->
    obs_mark sh ~args:[ ("service", service); ("outcome", "none") ] "resolve";
    k (Error (Shell.Nacked ("no replica of " ^ service)))
  | Some Directory.Local ->
    obs_mark sh ~args:[ ("service", service); ("outcome", "local") ] "resolve";
    Shell.connect sh ~service (fun r ->
        k (Result.map (fun conn -> Local conn) r))
  | Some (Directory.Remote rep) ->
    obs_mark sh
      ~args:
        [
          ("service", service);
          ("outcome", "remote");
          ("board", string_of_int rep.Directory.board);
        ]
      "resolve";
    Shell.connect sh ~service:"net" (fun r ->
        match r with
        | Error e -> k (Error e)
        | Ok net ->
          k (Ok (Remote { net; board = rep.Directory.board;
                          mac = rep.Directory.mac; service })))

let call t ~board sh target ~op body k =
  match target with
  | Local conn ->
    Shell.request sh conn ~opcode:op body (fun r ->
        k (Result.map (fun m -> m.Apiary_core.Message.payload) r))
  | Remote r ->
    (* The Shell.request underneath already opens the corr-keyed "rpc"
       span; this one frames the whole location-transparent invocation
       (with the target board) so failover retries group under it. *)
    let sid =
      if not (Span.on ()) then Span.null
      else
        Span.start ~board:(Shell.obs_board sh)
          ~args:
            [ ("service", r.service); ("board", string_of_int r.board) ]
          ~cat:"cluster" ~name:"call" ~track:(Shell.tile sh)
          ~ts:(Shell.now sh) ()
    in
    Netsvc.remote_request sh r.net ~dst_mac:r.mac ~service:r.service ~op body
      (fun res ->
        match res with
        | Ok rsp when rsp.Netproto.status = Netproto.Ok_resp ->
          Span.finish ~args:[ ("status", "ok") ] ~ts:(Shell.now sh) sid;
          k (Ok rsp.Netproto.body)
        | Ok rsp ->
          (* The remote board answered but could not serve: drop the
             cached route so the next resolve picks another replica. *)
          Directory.invalidate t.directory ~from_board:board ~service:r.service;
          obs_mark sh ~args:[ ("service", r.service) ] "invalidate";
          let what =
            if rsp.Netproto.status = Netproto.Service_unavailable then
              "service unavailable on remote board"
            else "remote error"
          in
          Span.finish
            ~args:[ ("status", Netproto.status_to_string rsp.Netproto.status) ]
            ~ts:(Shell.now sh) sid;
          k (Error (Shell.Nacked what))
        | Error e ->
          (* No answer at all: stale route, and on timeout presume the
             board dead until it re-announces. *)
          Directory.invalidate t.directory ~from_board:board ~service:r.service;
          obs_mark sh ~args:[ ("service", r.service) ] "invalidate";
          (match e with
          | Shell.Timeout ->
            Directory.report_failure t.directory ~from_board:board
              ~board:r.board ();
            obs_mark sh
              ~args:[ ("board", string_of_int r.board) ]
              "failover"
          | _ -> ());
          let status =
            match e with
            | Shell.Timeout -> "timeout"
            | Shell.Nacked _ -> "nacked"
            | Shell.Denied _ -> "denied"
          in
          Span.finish ~args:[ ("status", status) ] ~ts:(Shell.now sh) sid;
          k (Error e))

(* ------------------------------------------------------------------ *)
(* Metrics *)

let register_metrics t =
  Array.iter
    (fun nd ->
      Kernel.register_metrics (Node.kernel nd)
        ~prefix:(Printf.sprintf "b%d" (Node.id nd)))
    t.nodes;
  Switch.register_metrics t.switch ~prefix:"rack";
  Registry.add_sampler ~name:"rack.directory" (fun () ->
      let set name v =
        Stats.Gauge.set (Registry.gauge ("rack.directory." ^ name))
          (float_of_int v)
      in
      set "lookups" (Directory.lookups t.directory);
      set "cache_hits" (Directory.cache_hits t.directory);
      set "invalidations" (Directory.invalidations t.directory))
