(* Rack telemetry collector: the pull-together half of the in-band
   telemetry plane. One NIC on the ToR switch receives the
   sequence-numbered batches every board's push agent ships over its
   own uplink, and reassembles the streams into the central pipeline:
   counter / gauge / histogram deltas land in the global Registry under
   [collected.*] names, span completions feed windowed latency Series,
   per-bucket Exemplar stores (metric→trace links) and a re-exportable
   Chrome trace, and service outcomes fan out to subscribers (the
   scheduler's SLO path).

   Accounting is conservation-exact per board: the agent counts what it
   emitted, dropped (bounded-queue, oldest first) and sent; cumulative
   counts in every batch header let the collector compute wire loss
   from sequence gaps exactly, so

     emitted = delivered + dropped(agent) + lost(wire) + in-flight

   closes to the record even under deliberate congestion — the identity
   E16's CI gate asserts.

   Everything here runs on the rack simulator (member 0 under a
   partitioned engine): batches from split board partitions arrive
   through the same deterministic boundary merge as RPC frames, so the
   collector's exports are byte-identical between Seq and
   [APIARY_PAR=boards]. *)

module Sim = Apiary_engine.Sim
module Stats = Apiary_engine.Stats
module Mac = Apiary_net.Mac
module Frame = Apiary_net.Frame
module Board = Apiary_apps.Board
module Obs = Apiary_obs
module Agent = Apiary_obs.Agent
module Wire = Apiary_obs.Agent.Wire

(* Per-board stream reassembly state. *)
type stream = {
  st_board : int;
  mutable next_seq : int;  (* expected next batch sequence number *)
  mutable batches : int;
  mutable delivered : int;  (* records decoded out of delivered batches *)
  mutable lost_batches : int;
  mutable lost_records : int;  (* from cumulative header counts: exact *)
  mutable agent_dropped : int;  (* latest cum_dropped seen in a header *)
  mutable last_agent_ts : int;  (* agent-side cycle of the last batch *)
  mutable last_rx : int;  (* collector-side cycle of the last batch *)
  mutable decode_errors : int;
}

type outcome = {
  o_service : string;
  o_dur : int;
  o_ok : bool;
  o_corr : int;  (* cross-wire req_id when present, else span corr *)
}

type t = {
  sim : Sim.t;
  mac : Mac.t;
  my_mac : int;
  streams : stream array;
  agents : Agent.t array;
  series : Obs.Series.t;
  exemplars : (string, Obs.Exemplar.t) Hashtbl.t;
  mutable spans : (int * Wire.span_done) list;  (* (board, span), newest first *)
  mutable n_spans : int;
  span_cap : int;
  mutable spans_dropped : int;
  mutable rx_frames : int;
  mutable on_outcome : (now:int -> outcome -> unit) list;
}

let exemplar_for t name =
  match Hashtbl.find_opt t.exemplars name with
  | Some e -> e
  | None ->
    let e = Obs.Exemplar.create name in
    Hashtbl.add t.exemplars name e;
    e

(* Collected instruments live in the global Registry under a
   [collected.b<id>.] prefix: same names the board publishes locally,
   one namespace over, so an end-of-run metrics export shows the
   board-local truth and what survived the wire side by side. *)
let collected_name board name = Printf.sprintf "collected.b%d.%s" board name

let span_metric (s : Wire.span_done) =
  match List.assoc_opt "service" s.Wire.s_args with
  | Some svc -> Printf.sprintf "collected.svc.%s.latency" svc
  | None -> Printf.sprintf "collected.%s.%s.dur" s.Wire.s_cat s.Wire.s_name

let span_corr (s : Wire.span_done) =
  match List.assoc_opt "req_id" s.Wire.s_args with
  | Some r -> ( match int_of_string_opt r with Some v -> v | None -> s.Wire.s_corr)
  | None -> s.Wire.s_corr

let span_ok (s : Wire.span_done) =
  match List.assoc_opt "status" s.Wire.s_args with
  | Some st -> st = "ok"
  | None -> true

let apply_record t ~board ~now = function
  | Wire.Counter_delta (name, d) ->
    Stats.Counter.add (Obs.Registry.counter (collected_name board name)) d
  | Wire.Gauge_value (name, v) ->
    Stats.Gauge.set (Obs.Registry.gauge (collected_name board name)) v
  | Wire.Hist_delta (name, deltas) ->
    let h = Obs.Registry.histogram (collected_name board name) in
    List.iter
      (fun (bucket, d) ->
        Stats.Histogram.record_n h (Stats.Histogram.bucket_value bucket) d)
      deltas
  | Wire.Span_done s ->
    if t.n_spans >= t.span_cap then t.spans_dropped <- t.spans_dropped + 1
    else begin
      t.spans <- (board, s) :: t.spans;
      t.n_spans <- t.n_spans + 1
    end;
    let metric = span_metric s in
    (* Latency rollups are windowed on collector arrival time — the
       only clock guaranteed non-decreasing once streams interleave. *)
    Obs.Series.observe t.series ~now metric s.Wire.s_dur;
    let corr = span_corr s in
    if corr <> 0 then
      Obs.Exemplar.observe (exemplar_for t metric) ~corr ~value:s.Wire.s_dur
        ~ts:s.Wire.s_ts;
    (match List.assoc_opt "service" s.Wire.s_args with
    | Some svc ->
      let o =
        { o_service = svc; o_dur = s.Wire.s_dur; o_ok = span_ok s; o_corr = corr }
      in
      List.iter (fun f -> f ~now o) t.on_outcome
    | None -> ())

let handle_frame t (f : Frame.t) =
  if f.Frame.dst <> t.my_mac || f.Frame.ethertype <> Frame.ethertype_telem then
    ()
  else begin
    t.rx_frames <- t.rx_frames + 1;
    match Wire.decode_batch f.Frame.payload with
    | None ->
      (* Can't even read the board id; charge board 0's stream so the
         error is at least visible somewhere. *)
      t.streams.(0).decode_errors <- t.streams.(0).decode_errors + 1
    | Some b when b.Wire.b_board < Array.length t.streams ->
      let st = t.streams.(b.Wire.b_board) in
      if b.Wire.b_seq < st.next_seq then
        (* Stale duplicate — cannot happen on this FIFO fabric, but a
           decoder must not corrupt its accounting if it does. *)
        st.decode_errors <- st.decode_errors + 1
      else begin
        if b.Wire.b_seq > st.next_seq then
          st.lost_batches <- st.lost_batches + (b.Wire.b_seq - st.next_seq);
        (* Exact wire loss: the header says how many records were ever
           sent before this batch; we know how many we decoded. FIFO
           delivery makes the difference precisely the records that
           died with the lost frames. *)
        st.lost_records <- b.Wire.b_cum_records - st.delivered;
        st.next_seq <- b.Wire.b_seq + 1;
        st.batches <- st.batches + 1;
        st.agent_dropped <- b.Wire.b_cum_dropped;
        st.last_agent_ts <- b.Wire.b_ts;
        let now = Sim.now t.sim in
        st.last_rx <- now;
        List.iter
          (fun r ->
            st.delivered <- st.delivered + 1;
            apply_record t ~board:b.Wire.b_board ~now r)
          b.Wire.b_records
      end
    | Some _ -> t.streams.(0).decode_errors <- t.streams.(0).decode_errors + 1
  end

(* Every board can flush concurrently into this one port, so the
   collector NIC is a 100G port like the board uplinks — a 10G client
   port backs up whenever more than two agents tick together. *)
let create ?(gbps = 100.0) ?agent_period ?agent_queue ?agent_batch_bytes
    ?(agent_max_frames = 2) ?agent_until ?(series_window = 50_000)
    ?(span_cap = 65_536) cluster =
  let mac, my_mac = Cluster.add_client ~gbps cluster in
  let n = Cluster.n_boards cluster in
  let sim = Cluster.sim cluster in
  let streams =
    Array.init n (fun st_board ->
        {
          st_board;
          next_seq = 1;
          batches = 0;
          delivered = 0;
          lost_batches = 0;
          lost_records = 0;
          agent_dropped = 0;
          last_agent_ts = 0;
          last_rx = 0;
          decode_errors = 0;
        })
  in
  let agents =
    Array.of_list
      (List.mapi
         (fun i nd ->
           let bmac = (Node.board nd).Board.fpga_mac in
           let src = Node.mac_addr nd in
           (* The agent shares the board's workload NIC: a batch that
              doesn't fit the descriptor ring waits (send = false),
              never preempts a reply. *)
           let send payload =
             Mac.send bmac
               (Frame.make ~dst:my_mac ~src ~ethertype:Frame.ethertype_telem
                  payload)
           in
           Agent.create ?period:agent_period ?queue_cap:agent_queue
             ?batch_bytes:agent_batch_bytes ~max_frames:agent_max_frames
             ?until:agent_until ~sim:(Node.sim nd) ~board:i
             ~prefix:(Printf.sprintf "b%d." i)
             ~send ())
         (Cluster.nodes cluster))
  in
  let t =
    {
      sim;
      mac;
      my_mac;
      streams;
      agents;
      series = Obs.Series.create ~window:series_window ();
      exemplars = Hashtbl.create 8;
      spans = [];
      n_spans = 0;
      span_cap;
      spans_dropped = 0;
      rx_frames = 0;
      on_outcome = [];
    }
  in
  Mac.set_rx mac (fun f -> handle_frame t f);
  (* Teach the ToR our port before the first batch needs delivering
     (see Rack_health: a self-addressed frame is learned, then
     discarded). *)
  Sim.after sim 1 (fun () ->
      ignore
        (Mac.send t.mac
           (Frame.make ~dst:my_mac ~src:my_mac ~ethertype:Frame.ethertype_telem
              (Bytes.of_string "teach"))));
  t

let detach t = Array.iter Agent.detach t.agents
let agent t board = t.agents.(board)
let n_boards t = Array.length t.streams
let on_service_outcome t f = t.on_outcome <- t.on_outcome @ [ f ]
let series t = t.series
let rx_frames t = t.rx_frames
let delivered t ~board = t.streams.(board).delivered
let lost_batches t ~board = t.streams.(board).lost_batches
let lost_records_detected t ~board = t.streams.(board).lost_records
let last_agent_ts t ~board = t.streams.(board).last_agent_ts

let staleness t ~board ~now =
  let st = t.streams.(board) in
  if st.batches = 0 then now else now - st.last_agent_ts

let collected_spans t = List.rev t.spans

(* Collected spans as a Chrome trace, via the standard exporter: board
   comes from the batch header, [seq] is arrival order (the export's
   tie-breaker at equal start cycles). *)
let trace_events t =
  List.mapi
    (fun i (board, (s : Wire.span_done)) ->
      {
        Obs.Span.seq = i;
        name = s.Wire.s_name;
        cat = s.Wire.s_cat;
        corr = s.Wire.s_corr;
        board;
        track = s.Wire.s_track;
        ts = s.Wire.s_ts;
        dur = s.Wire.s_dur;
        ph = Obs.Span.Dur;
        args = s.Wire.s_args;
      })
    (collected_spans t)

let trace_json_string t =
  Obs.Export.chrome_trace_string ~dropped:t.spans_dropped (trace_events t)

(* ------------------------------------------------------------------ *)
(* Conservation accounting.

   Per board, combining the agent's own books with the stream state:

     emitted  = delivered + dropped_agent + lost_wire + in_flight

   where [lost_wire = sent - delivered] is exact once the fabric has
   drained (and is cross-checked against the header-derived
   [lost_wire_detected], which lags only when the trailing batches
   themselves died), and [in_flight] is what still sits in the agent's
   queue plus anything sent but neither delivered nor yet provably
   lost. At quiesce the wire is empty and in_flight = queued. *)

let conservation_json_string t =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\"boards\":[";
  Array.iteri
    (fun i st ->
      if i > 0 then Buffer.add_char b ',';
      let a = t.agents.(i) in
      let emitted = Agent.emitted a in
      let dropped_agent = Agent.dropped a in
      let queued = Agent.queued a in
      let sent = Agent.sent_records a in
      let lost_wire = sent - st.delivered in
      Buffer.add_string b
        (Printf.sprintf
           "{\"board\":%d,\"emitted\":%d,\"delivered\":%d,\"dropped_agent\":%d,\"lost_wire\":%d,\"lost_wire_detected\":%d,\"in_flight\":%d,\"sent_records\":%d,\"sent_batches\":%d,\"sent_bytes\":%d,\"batches\":%d,\"lost_batches\":%d,\"backpressure\":%d,\"decode_errors\":%d,\"last_agent_ts\":%d,\"last_rx\":%d}"
           i emitted st.delivered dropped_agent lost_wire st.lost_records
           queued sent (Agent.sent_batches a) (Agent.sent_bytes a) st.batches
           st.lost_batches (Agent.backpressure a) st.decode_errors
           st.last_agent_ts st.last_rx))
    t.streams;
  Buffer.add_string b "]}";
  Buffer.contents b

let exemplars_json_string t =
  let names =
    List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) t.exemplars [])
  in
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\"metrics\":[";
  List.iteri
    (fun i name ->
      if i > 0 then Buffer.add_char b ',';
      Obs.Exemplar.buf_add b (Hashtbl.find t.exemplars name))
    names;
  Buffer.add_string b "]}";
  Buffer.contents b

let exemplar t name = Hashtbl.find_opt t.exemplars name
