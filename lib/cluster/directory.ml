(* Federated name server: rack-wide service -> replica registry with
   per-(board, service) route caches.

   Models the paper's remote control plane (§6-Q3). The directory is
   replicated one copy per engine partition: replica 0 is the rack
   controller's view, replica [p] lives on partition [p]'s simulator and
   serves that partition's boards. Registry mutations (register,
   unregister, failure reports) are *announcements* tagged
   [(apply_time, source partition, per-source seq)]; every replica —
   including the announcer's own — applies them in that canonical order
   once [apply_time] has passed, so all replicas evolve through the same
   registry states and a monolithic run is byte-identical to a
   partitioned one. Cross-partition delivery rides the engine's
   boundary-merge protocol (Par_sim.post); [announce_delay] is the wire
   latency and must be at least the engine lookahead.

   Route caches (the per-(from_board, service) resolution decisions) are
   replica-local and written only by the owning partition — the write
   paths assert this against {!Par_sim.current_partition} in debug
   builds. Failure detection is caller-driven: a failed remote call
   invalidates the cached route and reports the replica's board; the
   directory never observes failures on its own. *)

module Sim = Apiary_engine.Sim
module Par_sim = Apiary_engine.Par_sim

type replica = { board : int; mac : int }
type resolution = Local | Remote of replica

type update =
  | U_register of { service : string; board : int; mac : int }
  | U_unregister of { board : int }
  | U_unregister_service of { service : string; board : int }

type ann = { a_time : int; a_src : int; a_seq : int; u : update }

let cmp_ann a b =
  let c = compare a.a_time b.a_time in
  if c <> 0 then c
  else
    let c = compare a.a_src b.a_src in
    if c <> 0 then c else compare a.a_seq b.a_seq

(* One resolution slot per (from_board, service), int-keyed. [dec] is
   the decided resolution, valid while [epoch] matches the replica's
   registry epoch; [picked] is the sticky remote pick that survives
   registry changes until invalidated or its board unregisters — the
   cache the old hash-of-tuples table provided, now a single int-keyed
   lookup plus an int compare on the hot path. *)
type route = {
  mutable dec : resolution option;
  mutable epoch : int;  (* -1 forces recomputation *)
  mutable picked : replica option;
  mutable rot : int;  (* per-slot rotation for fresh remote picks *)
}

type rep = {
  part : int;  (* owning engine partition *)
  rsim : Sim.t;
  registry : (string, replica list) Hashtbl.t;  (* registration order *)
  sids : (string, int) Hashtbl.t;  (* replica-local service interning *)
  mutable next_sid : int;
  routes : (int, route) Hashtbl.t;  (* (from_board lsl 16) lor sid *)
  mutable reg_epoch : int;
  mutable inbox : ann list;  (* announcements not yet applied *)
  mutable lookups : int;
  mutable cache_hits : int;
  mutable invalidations : int;
}

type t = {
  reps : rep array;  (* length 1 = monolithic *)
  home : int -> int;  (* board -> replica index *)
  delay : int;
  post : (src:int -> dst:int -> time:int -> (unit -> unit) -> unit) option;
  ann_seq : int array;  (* per source partition *)
}

(* Replica state may only be written by its owning partition's
   execution (or by coordinator code between windows, which holds every
   partition quiescent). Compiled out in release builds. *)
let owner_check rep =
  assert (
    match Par_sim.current_partition () with
    | None -> true
    | Some p -> p = rep.part)

let mk_rep part rsim =
  {
    part;
    rsim;
    registry = Hashtbl.create 16;
    sids = Hashtbl.create 16;
    next_sid = 0;
    routes = Hashtbl.create 32;
    reg_epoch = 0;
    inbox = [];
    lookups = 0;
    cache_hits = 0;
    invalidations = 0;
  }

let create ?(announce_delay = 0) sim =
  if announce_delay < 0 then
    invalid_arg "Directory.create: announce_delay must be >= 0";
  {
    reps = [| mk_rep 0 sim |];
    home = (fun _ -> 0);
    delay = announce_delay;
    post = None;
    ann_seq = [| 0 |];
  }

let create_replicated ~announce_delay ~sims ~home ~post () =
  if announce_delay < 1 then
    invalid_arg "Directory.create_replicated: announce_delay must be >= 1";
  if Array.length sims < 1 then
    invalid_arg "Directory.create_replicated: need at least one replica";
  {
    reps = Array.mapi mk_rep sims;
    home;
    delay = announce_delay;
    post = Some post;
    ann_seq = Array.make (Array.length sims) 0;
  }

let rep_for t from_board =
  if Array.length t.reps = 1 then t.reps.(0) else t.reps.(t.home from_board)

(* ------------------------------------------------------------------ *)
(* Announcement protocol *)

let registered rep service =
  Option.value ~default:[] (Hashtbl.find_opt rep.registry service)

let apply rep = function
  | U_register { service; board; mac } ->
    let rs = registered rep service in
    if not (List.exists (fun r -> r.board = board) rs) then
      Hashtbl.replace rep.registry service (rs @ [ { board; mac } ]);
    rep.reg_epoch <- rep.reg_epoch + 1
  | U_unregister { board } ->
    let keys = Hashtbl.fold (fun s _ acc -> s :: acc) rep.registry [] in
    List.iter
      (fun s ->
        let rs = List.filter (fun r -> r.board <> board) (registered rep s) in
        if rs = [] then Hashtbl.remove rep.registry s
        else Hashtbl.replace rep.registry s rs)
      keys;
    (* Prune sticky routes to the dead board — the replicated equivalent
       of dropping its cached routes, counted identically. *)
    Hashtbl.iter
      (fun _ slot ->
        match slot.picked with
        | Some r when r.board = board ->
          slot.picked <- None;
          rep.invalidations <- rep.invalidations + 1
        | _ -> ())
      rep.routes;
    rep.reg_epoch <- rep.reg_epoch + 1
  | U_unregister_service { service; board } ->
    (* One (service, board) pair — the scheduler draining a single
       replica off a live board, not a whole-board failure. Sticky
       routes that picked this replica are pruned so the next resolve
       re-spreads over the survivors. *)
    (match Hashtbl.find_opt rep.registry service with
    | None -> ()
    | Some rs ->
      let rs = List.filter (fun r -> r.board <> board) rs in
      if rs = [] then Hashtbl.remove rep.registry service
      else Hashtbl.replace rep.registry service rs);
    (match Hashtbl.find_opt rep.sids service with
    | None -> ()
    | Some sid ->
      Hashtbl.iter
        (fun key slot ->
          match slot.picked with
          | Some r
            when r.board = board && key land 0xffff = sid ->
            slot.picked <- None;
            rep.invalidations <- rep.invalidations + 1
          | _ -> ())
        rep.routes);
    rep.reg_epoch <- rep.reg_epoch + 1

(* An announcement made at cycle [c] becomes visible to reads strictly
   after [c + delay] — one delay for the wire, visible the next cycle —
   in every replica and every engine mode alike. A zero-delay
   (standalone, monolithic) directory is synchronous: visible at [c]. *)
let visible t a now = a.a_time < now || (t.delay = 0 && a.a_time = now)

let drain t rep =
  match rep.inbox with
  | [] -> ()
  | _ -> (
    let now = Sim.now rep.rsim in
    let ready, later = List.partition (fun a -> visible t a now) rep.inbox in
    match ready with
    | [] -> ()
    | ready ->
      owner_check rep;
      rep.inbox <- later;
      (* Apply in canonical (time, src, seq) order: the replica's state
         sequence is then independent of delivery interleaving. *)
      List.iter (fun a -> apply rep a.u) (List.sort cmp_ann ready))

let announce t ~src u =
  let rep_src = t.reps.(src) in
  owner_check rep_src;
  let now = Sim.now rep_src.rsim in
  let seq = t.ann_seq.(src) in
  t.ann_seq.(src) <- seq + 1;
  let a = { a_time = now + t.delay; a_src = src; a_seq = seq; u } in
  Array.iteri
    (fun d rep ->
      if d = src then rep.inbox <- a :: rep.inbox
      else
        match t.post with
        | Some post ->
          post ~src ~dst:d ~time:a.a_time (fun () -> rep.inbox <- a :: rep.inbox)
        | None -> assert false)
    t.reps

(* ------------------------------------------------------------------ *)
(* Public mutations *)

let register t ~service ~board ~mac =
  announce t ~src:0 (U_register { service; board; mac })

let unregister_board t board = announce t ~src:0 (U_unregister { board })

let unregister t ~service ~board =
  announce t ~src:0 (U_unregister_service { service; board })

let report_failure t ?from_board ~board () =
  let src =
    match from_board with
    | None -> 0
    | Some b -> if Array.length t.reps = 1 then 0 else t.home b
  in
  announce t ~src (U_unregister { board })

(* ------------------------------------------------------------------ *)
(* Resolution *)

let intern rep service =
  match Hashtbl.find_opt rep.sids service with
  | Some sid -> sid
  | None ->
    let sid = rep.next_sid in
    assert (sid < 0x10000);
    rep.next_sid <- sid + 1;
    Hashtbl.add rep.sids service sid;
    sid

let slot_for rep ~from_board ~service =
  let key = (from_board lsl 16) lor intern rep service in
  match Hashtbl.find_opt rep.routes key with
  | Some slot -> slot
  | None ->
    let slot = { dec = None; epoch = -1; picked = None; rot = 0 } in
    Hashtbl.add rep.routes key slot;
    slot

let resolve t ~from_board ~service =
  let rep = rep_for t from_board in
  owner_check rep;
  drain t rep;
  rep.lookups <- rep.lookups + 1;
  let slot = slot_for rep ~from_board ~service in
  if slot.epoch = rep.reg_epoch then begin
    (match slot.dec with
    | Some (Remote _) -> rep.cache_hits <- rep.cache_hits + 1
    | _ -> ());
    slot.dec
  end
  else begin
    let rs = registered rep service in
    let dec =
      if List.exists (fun r -> r.board = from_board) rs then Some Local
      else
        match slot.picked with
        | Some r when List.exists (fun x -> x.board = r.board) rs ->
          rep.cache_hits <- rep.cache_hits + 1;
          Some (Remote r)
        | _ -> (
          match rs with
          | [] ->
            slot.picked <- None;
            None
          | rs ->
            (* Spread first-time resolutions across remote replicas —
               offset by the asking board so different boards start on
               different picks — then stick to the choice until it is
               invalidated. *)
            let r = List.nth rs ((from_board + slot.rot) mod List.length rs) in
            slot.rot <- slot.rot + 1;
            slot.picked <- Some r;
            Some (Remote r))
    in
    slot.dec <- dec;
    slot.epoch <- rep.reg_epoch;
    dec
  end

let invalidate t ~from_board ~service =
  let rep = rep_for t from_board in
  owner_check rep;
  drain t rep;
  match Hashtbl.find_opt rep.sids service with
  | None -> ()
  | Some sid -> (
    match Hashtbl.find_opt rep.routes ((from_board lsl 16) lor sid) with
    | None -> ()
    | Some slot ->
      if slot.picked <> None then begin
        slot.picked <- None;
        rep.invalidations <- rep.invalidations + 1
      end;
      slot.epoch <- -1)

(* ------------------------------------------------------------------ *)
(* Controller-view accessors (replica 0) *)

let replicas t service =
  let rep = t.reps.(0) in
  drain t rep;
  registered rep service

let services t =
  let rep = t.reps.(0) in
  drain t rep;
  Hashtbl.fold (fun s _ acc -> s :: acc) rep.registry [] |> List.sort compare

(* Counters are summed across replicas; per-replica slices partition the
   monolithic totals, so the sums are engine-mode-independent. *)
let sum_reps t f = Array.fold_left (fun acc rep -> acc + f rep) 0 t.reps
let lookups t = sum_reps t (fun r -> r.lookups)
let cache_hits t = sum_reps t (fun r -> r.cache_hits)
let invalidations t = sum_reps t (fun r -> r.invalidations)
