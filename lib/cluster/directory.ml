(* Federated name server: rack-wide service -> replica registry with
   per-(board, service) route caches.

   Models the paper's remote control plane (§6-Q3): registration and
   resolution are rack-controller state, deterministic and instantaneous
   in the simulation — the expensive part (actually reaching the chosen
   replica) goes over the simulated network. Failure detection is
   caller-driven: a failed remote call invalidates the cached route and
   reports the replica's board; the directory never observes failures on
   its own. *)

type replica = { board : int; mac : int }
type resolution = Local | Remote of replica

type t = {
  registry : (string, replica list) Hashtbl.t;  (* registration order *)
  cache : (int * string, replica) Hashtbl.t;  (* (from_board, service) *)
  rotation : (string, int) Hashtbl.t;  (* next-remote pick per service *)
  mutable lookups : int;
  mutable cache_hits : int;
  mutable invalidations : int;
}

let create () =
  {
    registry = Hashtbl.create 16;
    cache = Hashtbl.create 32;
    rotation = Hashtbl.create 16;
    lookups = 0;
    cache_hits = 0;
    invalidations = 0;
  }

let replicas t service =
  Option.value ~default:[] (Hashtbl.find_opt t.registry service)

let services t =
  Hashtbl.fold (fun s _ acc -> s :: acc) t.registry [] |> List.sort compare

let register t ~service ~board ~mac =
  let rs = replicas t service in
  if not (List.exists (fun r -> r.board = board) rs) then
    Hashtbl.replace t.registry service (rs @ [ { board; mac } ])

let drop_cached_routes_to t board =
  let stale =
    Hashtbl.fold
      (fun k r acc -> if r.board = board then k :: acc else acc)
      t.cache []
  in
  List.iter (Hashtbl.remove t.cache) stale;
  t.invalidations <- t.invalidations + List.length stale

let unregister_board t board =
  let keys = Hashtbl.fold (fun s _ acc -> s :: acc) t.registry [] in
  List.iter
    (fun s ->
      let rs = List.filter (fun r -> r.board <> board) (replicas t s) in
      if rs = [] then Hashtbl.remove t.registry s
      else Hashtbl.replace t.registry s rs)
    keys;
  drop_cached_routes_to t board

let report_failure t ~board = unregister_board t board

let invalidate t ~from_board ~service =
  if Hashtbl.mem t.cache (from_board, service) then begin
    Hashtbl.remove t.cache (from_board, service);
    t.invalidations <- t.invalidations + 1
  end

let resolve t ~from_board ~service =
  t.lookups <- t.lookups + 1;
  let rs = replicas t service in
  if List.exists (fun r -> r.board = from_board) rs then Some Local
  else
    match Hashtbl.find_opt t.cache (from_board, service) with
    | Some r when List.exists (fun x -> x.board = r.board) rs ->
      t.cache_hits <- t.cache_hits + 1;
      Some (Remote r)
    | _ -> (
      match rs with
      | [] -> None
      | rs ->
        (* Spread first-time resolutions across remote replicas, then
           stick to the cached route until it is invalidated. *)
        let k = Option.value ~default:0 (Hashtbl.find_opt t.rotation service) in
        let r = List.nth rs (k mod List.length rs) in
        Hashtbl.replace t.rotation service (k + 1);
        Hashtbl.replace t.cache (from_board, service) r;
        Some (Remote r))

let lookups t = t.lookups
let cache_hits t = t.cache_hits
let invalidations t = t.invalidations
