module Sim = Apiary_engine.Sim
module Kernel = Apiary_core.Kernel
module Trace = Apiary_core.Trace
module Switch = Apiary_net.Switch
module Netsvc = Apiary_net.Netsvc
module Board = Apiary_apps.Board

type t = {
  id : int;
  port : int;  (* ToR switch port the board's MAC is wired to *)
  board : Board.t;
  mutable free_tiles : int list;
  mutable up : bool;
}

(* Locally administered block distinct from the single-board constant
   (…F0CA) and the client block (…0C0000+). *)
let mac_of_id id = 0x02_0000_0B0000 + id

let create ?kernel_cfg ?ext_link sim ~switch ~id ~port =
  let board =
    Board.create ?kernel_cfg ~attach:(switch, port) ~mac_addr:(mac_of_id id)
      ?ext_link sim
  in
  (* Stamp this board's id on its kernel trace (so per-board traces can
     be pooled with Trace.merge) and on its mesh (so span events land on
     this board's process row in exported traces). *)
  Kernel.set_obs_board board.Board.kernel id;
  { id; port; board; free_tiles = Board.user_tiles board; up = true }

let id t = t.id
let port t = t.port
let board t = t.board
let kernel t = t.board.Board.kernel
let sim t = t.board.Board.sim
let mac_addr t = t.board.Board.fpga_mac_addr
let net_stats t = t.board.Board.net_stats
let up t = t.up

let alloc_tile t =
  match t.free_tiles with
  | [] -> None
  | tile :: rest ->
    t.free_tiles <- rest;
    Some tile

let free_tiles t = t.free_tiles
