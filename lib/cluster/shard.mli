(** Keyspace sharding across boards.

    A consistent-hash ring ({!t}) with virtual nodes: removing one board
    moves only that board's share of the keyspace onto survivors, and
    re-adding it restores the original mapping — the stability property
    the cluster relies on for resharding during a board failure. Plus a
    trivial round-robin spreader ({!Rr}) for stateless services.

    Both are pure bookkeeping (no simulation handles), so placement is a
    deterministic function of the live board set and the key. *)

type t

val create : ?vnodes:int -> unit -> t
(** [vnodes] points per board on the ring (default 64). *)

val add : t -> int -> unit
(** Add a board (idempotent). *)

val remove : t -> int -> unit
val member : t -> int -> bool
val boards : t -> int list
val size : t -> int

val lookup : t -> string -> int option
(** Owning board for a key; [None] when the ring is empty. *)

val hash_key : string -> int

(** Round-robin over the live board set (stateless replicas). *)
module Rr : sig
  type t

  val create : int list -> t
  val add : t -> int -> unit
  val remove : t -> int -> unit
  val live : t -> int list
  val next : t -> int option
end
