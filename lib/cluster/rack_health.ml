(* The rack watchdog: alarm-driven failure detection for the cluster.

   Each board's MAC emits a tiny heartbeat frame every [hb_period]
   cycles (an event on the board's own simulator, so it fires across
   quiescence fast-forward and from any Par_sim partition). A watchdog
   NIC on the ToR switch collects them; a board whose heartbeat goes
   stale past [deadline] is declared down through
   [Cluster.report_down], which unregisters it and notifies
   subscribers — the shard client reshards and reissues in-flight work
   immediately, instead of waiting out its request timeout (E13b
   measures the gap against PR 2's timeout-driven failover window).

   Heartbeats are fire-and-forget raw Ethernet: boards need no reply,
   the watchdog grants nothing, and a killed board's frames simply die
   at its downed switch port — exactly the silence the deadline
   watches for. Boards that cannot speak the heartbeat dialect are
   unaffected: the frames carry a magic the network service's protocol
   decoder rejects, so a flooded copy reaching a board NIC is dropped
   there. *)

module Sim = Apiary_engine.Sim
module Mac = Apiary_net.Mac
module Frame = Apiary_net.Frame
module Board = Apiary_apps.Board

let hb_magic = "HB"

type t = {
  sim : Sim.t;  (* rack simulator (member 0 under a partitioned engine) *)
  cluster : Cluster.t;
  mac : Mac.t;
  my_mac : int;
  hb_period : int;
  deadline : int;
  last_seen : int array;
  alive : bool array;
  mutable hb_seen : int;
  mutable log : (int * int) list;  (* (cycle, board), newest first *)
}

let board_alive t board = t.alive.(board)
let heartbeats_seen t = t.hb_seen
let detections t = List.rev t.log

let encode_hb board =
  let b = Bytes.create 3 in
  Bytes.blit_string hb_magic 0 b 0 2;
  Bytes.set_uint8 b 2 board;
  b

let decode_hb p =
  if Bytes.length p >= 3 && Bytes.sub_string p 0 2 = hb_magic then
    Some (Bytes.get_uint8 p 2)
  else None

let handle_frame t (f : Frame.t) =
  if f.Frame.dst <> t.my_mac then ()
  else
    match decode_hb f.Frame.payload with
    | None -> ()
    | Some board when board < Array.length t.last_seen ->
      t.hb_seen <- t.hb_seen + 1;
      t.last_seen.(board) <- Sim.now t.sim;
      (* A heartbeat from a board we declared dead: it is back on the
         network. Re-admission to rings/directory still comes from the
         explicit Cluster.restore announcement; we only re-arm the
         deadline so a second failure is detected again. *)
      t.alive.(board) <- true
    | Some _ -> ()

let check t =
  let now = Sim.now t.sim in
  Array.iteri
    (fun board seen ->
      if t.alive.(board) && now - seen > t.deadline then begin
        t.alive.(board) <- false;
        t.log <- (now, board) :: t.log;
        Cluster.report_down t.cluster ~board
      end)
    t.last_seen

let create ?(hb_period = 500) ?(deadline = 3_000) ?(gbps = 10.0) cluster =
  if deadline <= hb_period then
    invalid_arg "Rack_health.create: deadline must exceed hb_period";
  let mac, my_mac = Cluster.add_client ~gbps cluster in
  let n = Cluster.n_boards cluster in
  let t =
    {
      sim = Cluster.sim cluster;
      cluster;
      mac;
      my_mac;
      hb_period;
      deadline;
      last_seen = Array.make n 0;
      alive = Array.make n true;
      hb_seen = 0;
      log = [];
    }
  in
  Mac.set_rx mac (fun f -> handle_frame t f);
  (* Teach the ToR switch which port the watchdog hangs off before any
     heartbeat needs delivering: a self-addressed frame makes the FDB
     learn our source port, and is then discarded by the switch (its
     destination is behind the very port it arrived on) — a gratuitous
     announcement with no observable delivery. *)
  Sim.after t.sim 1 (fun () ->
      ignore (Mac.send t.mac (Frame.make ~dst:my_mac ~src:my_mac (encode_hb 0xff))));
  (* Board-side beacons, staggered one cycle apart per board id so the
     switch never sees a synchronized burst. *)
  List.iteri
    (fun i nd ->
      let bmac = (Node.board nd).Board.fpga_mac in
      let src = Node.mac_addr nd in
      Sim.every (Node.sim nd) ~start:(hb_period + i) hb_period (fun () ->
          (* Lossy by design: device backpressure just skips a beat. *)
          ignore (Mac.send bmac (Frame.make ~dst:my_mac ~src (encode_hb i)))))
    (Cluster.nodes cluster);
  (* Deadline sweep on the rack side. Starting a full deadline after
     boot gives the first beacons time to cross uplink + switch. *)
  Sim.every t.sim ~start:t.deadline hb_period (fun () -> check t);
  t
