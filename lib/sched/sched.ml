(* The elastic scheduler's stateful half: controller-resident decision
   loop over Placer's pure arithmetic.

   Partition discipline (what keeps Seq and Par byte-identical): every
   piece of scheduler state here is member-0 (controller) state, touched
   only from controller events — the epoch timer, beacon/alarm frame
   receipt on the controller NIC, and Cluster's board up/down
   announcements. Board fabrics are touched only through thunks staged
   with Cluster.post_to_board (>= one uplink of latency, identical in
   monolithic mode) and through board-side periodic events armed before
   the run starts. Completion times of installs and migrations are
   *predicted* controller-side from deterministic cost constants rather
   than signalled back, so no board->controller post is ever needed. *)

module Sim = Apiary_engine.Sim
module Stats = Apiary_engine.Stats
module Span = Apiary_obs.Span
module Registry = Apiary_obs.Registry
module Perf = Apiary_obs.Perf
module Slo = Apiary_obs.Slo
module Flight = Apiary_obs.Flight
module Kernel = Apiary_core.Kernel
module Shell = Apiary_core.Shell
module Health = Apiary_core.Health
module Statsvc = Apiary_core.Statsvc
module Mac = Apiary_net.Mac
module Frame = Apiary_net.Frame
module Board = Apiary_apps.Board
module Cluster = Apiary_cluster.Cluster
module Node = Apiary_cluster.Node
module Collector = Apiary_cluster.Collector
module Directory = Apiary_cluster.Directory
module Shard_client = Apiary_cluster.Shard_client

type config = {
  report_period : int;
  epoch : int;
  up_epochs : int;
  down_epochs : int;
  slo_target_pct : int;
  hi_util_pct : int;
  lo_util_pct : int;
  min_samples : int;
  hot_load : int;
  cold_load : int;
  cooldown : int;
  drain_delay : int;
  margin : int;
  pr_bytes_per_cycle : int;
  max_migrations_per_epoch : int;
  slo_window : int;
  slo_min_samples : int;
}

let default_config =
  {
    report_period = 1_000;
    epoch = 20_000;
    up_epochs = 2;
    down_epochs = 3;
    slo_target_pct = 99;
    hi_util_pct = 90;
    lo_util_pct = 25;
    min_samples = 10;
    hot_load = 2_000;
    cold_load = 800;
    cooldown = 60_000;
    drain_delay = 30_000;
    margin = 128;
    pr_bytes_per_cycle = 8;
    max_migrations_per_epoch = 1;
    slo_window = 5_000;
    slo_min_samples = 20;
  }

type decision = {
  d_cycle : int;
  d_kind : string;
  d_tenant : string;
  d_board : int;
  d_src : int;
  d_note : string;
}

type totals = {
  placements : int;
  migrations : int;
  scale_ups : int;
  scale_downs : int;
  deferred : int;
  replaced : int;
  slo_violations : int;
}

type rstate = Pending | Active | Draining

type replica = {
  rep_tenant : string;
  rep_board : int;
  rep_tile : int;
  mutable rep_state : rstate;
}

type tenant = {
  spec : Placer.tenant;
  behavior : unit -> Shell.behavior;
  mutable client : Shard_client.t option;
  slo : Slo.t;  (* the attainment signal: every watched request outcome *)
  mutable page_pending : bool;  (* a Page burn alert since the last epoch *)
  (* autoscaler memory *)
  mutable bad_epochs : int;
  mutable hot_epochs : int;
  mutable idle_epochs : int;
  mutable last_completed : int;
  mutable last_good : int;
  mutable last_total : int;
  mutable last_migration : int;
  mutable migrating : bool;
  (* provisioning integral (replica-cycles) *)
  mutable serving_now : int;
  mutable last_change : int;
  mutable acc_replica_cycles : int;
}

type bstate = {
  b_id : int;
  caps : Placer.board_caps;
  mutable pool : int list;  (* free schedulable tiles *)
  mutable alive : bool;
  mutable load : int;  (* msgs_in delta, last beacon *)
  mutable busy : int;  (* router-busy delta, last beacon *)
  mutable tile_msgs : int array;  (* per-tile msgs_in delta, last beacon *)
  mutable congested : bool;  (* router-congestion alarm this epoch *)
  mutable stuck_alarms : int;
}

type t = {
  cluster : Cluster.t;
  sim : Sim.t;
  cfg : config;
  mac : Mac.t;
  my_mac : int;
  flight : Flight.t;  (* controller flight ring: burn alerts land here *)
  boards : bstate array;
  mutable tenants : tenant list;  (* add_tenant order *)
  mutable replicas : replica list;
  mutable log : decision list;  (* newest first *)
  mutable n_slo_violations : int;
  mutable started : bool;
}

(* ------------------------------------------------------------------ *)
(* Bookkeeping helpers *)

let tenant_of t name = List.find (fun ten -> ten.spec.Placer.name = name) t.tenants
let reps_of t name = List.filter (fun r -> r.rep_tenant = name) t.replicas
let serving t name =
  List.filter (fun r -> r.rep_state = Active) (reps_of t name)

(* Pending and Active replicas both hold tiles and count against
   max_replicas; Draining ones hold a tile but no longer serve. *)
let counted t name =
  List.filter (fun r -> r.rep_state <> Draining) (reps_of t name)

let live_caps t =
  Array.to_list t.boards
  |> List.filter_map (fun b -> if b.alive then Some b.caps else None)

let used t b = t.boards.(b).caps.Placer.tiles - List.length t.boards.(b).pool
let board_load t b = t.boards.(b).load

let alloc_tile t board =
  let bs = t.boards.(board) in
  match bs.pool with
  | [] -> None
  | tile :: rest ->
    bs.pool <- rest;
    Some tile

let free_tile t board tile =
  let bs = t.boards.(board) in
  bs.pool <- List.sort compare (tile :: bs.pool)

let sync_client t ten =
  match ten.client with
  | None -> ()
  | Some c ->
    Shard_client.sync_boards c
      (List.sort compare
         (List.map (fun r -> r.rep_board) (serving t ten.spec.Placer.name)))

let note_replicas t ten =
  let now = Sim.now t.sim in
  let n = List.length (serving t ten.spec.Placer.name) in
  if n <> ten.serving_now then begin
    ten.acc_replica_cycles <-
      ten.acc_replica_cycles + (ten.serving_now * (now - ten.last_change));
    ten.serving_now <- n;
    ten.last_change <- now
  end

let decide t ~kind ~tenant ?(board = -1) ?(src = -1) note =
  let now = Sim.now t.sim in
  t.log <-
    { d_cycle = now; d_kind = kind; d_tenant = tenant; d_board = board;
      d_src = src; d_note = note }
    :: t.log;
  Stats.Counter.incr (Registry.counter ("sched." ^ kind));
  if Span.on () then
    Span.instant ~board:(-1)
      ~args:
        ([ ("tenant", tenant); ("note", note) ]
        @ (if board >= 0 then [ ("board", string_of_int board) ] else [])
        @ if src >= 0 then [ ("src", string_of_int src) ] else [])
      ~cat:"sched" ~name:kind ~track:4000 ~ts:now ()

let idle_behavior () = Shell.behavior "idle"

(* ------------------------------------------------------------------ *)
(* Deterministic cost model (controller-side predictions) *)

let pr_cycles t (spec : Placer.tenant) =
  max 1 (spec.Placer.bitstream_bytes / t.cfg.pr_bytes_per_cycle)

(* Context migration: save the context to DRAM (8 B/cycle, the E6
   swap path), ship it over the 100G uplink (50 B/cycle), restore on
   the destination. *)
let xfer_cycles (spec : Placer.tenant) =
  (2 * spec.Placer.state_bytes / 8) + (spec.Placer.state_bytes / 50)

(* ------------------------------------------------------------------ *)
(* Replica lifecycle *)

(* Launch one replica on [board] during the run: reserve the tile now,
   stage the board-side reconfiguration (PR delay modelled by the
   kernel), and activate controller-side — directory registration +
   client ring sync — once the predicted completion time passes.
   [extra_delay] front-loads migration state transfer. [on_active] runs
   after cutover with [true], or with [false] if the board died (or the
   replica was struck by a board-down) before activation. *)
let launch t ten ~board ~extra_delay ~on_active =
  match alloc_tile t board with
  | None -> None
  | Some tile ->
    let name = ten.spec.Placer.name in
    let rep =
      { rep_tenant = name; rep_board = board; rep_tile = tile;
        rep_state = Pending }
    in
    t.replicas <- t.replicas @ [ rep ];
    let nd = Cluster.node t.cluster board in
    let kernel = Node.kernel nd in
    let bhv = ten.behavior () in
    let bits = ten.spec.Placer.bitstream_bytes in
    let delay = Cluster.lookahead + extra_delay in
    Cluster.post_to_board t.cluster ~board ~delay (fun () ->
        Kernel.reconfigure kernel ~tile ~bitstream_bytes:bits bhv
          ~on_done:(fun () -> ()));
    Sim.after t.sim
      (delay + pr_cycles t ten.spec + t.cfg.margin)
      (fun () ->
        if List.memq rep t.replicas && t.boards.(board).alive then begin
          rep.rep_state <- Active;
          Directory.register (Cluster.directory t.cluster) ~service:name
            ~board ~mac:(Node.mac_addr nd);
          note_replicas t ten;
          sync_client t ten;
          on_active true
        end
        else begin
          (* Destination died first: the tile is gone with the board
             (board_down already struck the record and emptied the
             pool). *)
          t.replicas <- List.filter (fun r -> r != rep) t.replicas;
          decide t ~kind:"abort" ~tenant:name ~board "destination lost";
          on_active false
        end);
    Some tile

(* Take a serving replica out of rotation (make-before-break tail, or a
   scale-down): cut the directory and client ring over now, keep the
   tile serving stragglers for [drain_delay], then reconfigure it to an
   idle slot and reclaim it. *)
let retire t ten rep =
  let name = rep.rep_tenant and board = rep.rep_board and tile = rep.rep_tile in
  rep.rep_state <- Draining;
  Directory.unregister (Cluster.directory t.cluster) ~service:name ~board;
  note_replicas t ten;
  sync_client t ten;
  Sim.after t.sim t.cfg.drain_delay (fun () ->
      if List.memq rep t.replicas then
        if t.boards.(board).alive then begin
          let kernel = Node.kernel (Cluster.node t.cluster board) in
          Cluster.post_to_board t.cluster ~board ~delay:Cluster.lookahead
            (fun () ->
              Kernel.reconfigure kernel ~tile ~bitstream_bytes:0
                (idle_behavior ())
                ~on_done:(fun () -> ()));
          Sim.after t.sim
            (Cluster.lookahead + 1 + t.cfg.margin)
            (fun () ->
              if List.memq rep t.replicas then begin
                t.replicas <- List.filter (fun r -> r != rep) t.replicas;
                free_tile t board tile
              end)
        end
        else t.replicas <- List.filter (fun r -> r != rep) t.replicas)

let try_grow t ten ~kind ~note =
  let name = ten.spec.Placer.name in
  let exclude = List.map (fun r -> r.rep_board) (reps_of t name) in
  match
    Placer.choose ~caps:(live_caps t) ~used:(used t) ~load:(board_load t)
      ~exclude ten.spec
  with
  | None ->
    decide t ~kind:"defer" ~tenant:name note;
    false
  | Some board ->
    (match launch t ten ~board ~extra_delay:0 ~on_active:(fun _ -> ()) with
    | None ->
      (* choose only returns boards with pool space *)
      assert false
    | Some _ ->
      decide t ~kind ~tenant:name ~board note;
      true)

let migrate t ten ~src_rep ~dst =
  let name = ten.spec.Placer.name in
  let src = src_rep.rep_board in
  ten.migrating <- true;
  ten.last_migration <- Sim.now t.sim;
  match
    launch t ten ~board:dst ~extra_delay:(xfer_cycles ten.spec)
      ~on_active:(fun ok ->
        ten.migrating <- false;
        if ok && List.memq src_rep t.replicas
           && src_rep.rep_state = Active
        then retire t ten src_rep)
  with
  | None ->
    ten.migrating <- false;
    decide t ~kind:"defer" ~tenant:name "migration target full"
  | Some _ ->
    decide t ~kind:"migrate" ~tenant:name ~board:dst ~src
      (Printf.sprintf "load %d -> %d" t.boards.(src).load t.boards.(dst).load)

(* ------------------------------------------------------------------ *)
(* Epoch evaluation: autoscale every tenant, then at most a few
   migrations off the hottest boards. *)

let autoscale_tenant t ten =
  match ten.client with
  | None -> ()
  | Some c ->
    let name = ten.spec.Placer.name in
    let completed = Shard_client.completed c in
    (* Attainment now comes from the tenant's Slo object — every request
       outcome, so timeouts and board-down reissues count against the
       budget, which the old latency-histogram delta could not see. *)
    let good = Slo.good_total ten.slo in
    let total = good + Slo.bad_total ten.slo in
    let d_ops = completed - ten.last_completed in
    let d_cnt = total - ten.last_total in
    let d_le = good - ten.last_good in
    ten.last_completed <- completed;
    ten.last_good <- good;
    ten.last_total <- total;
    let paged = ten.page_pending in
    ten.page_pending <- false;
    let n_serving = max 1 (List.length (serving t name)) in
    let cap = max 1 ten.spec.Placer.capacity_hint in
    if d_cnt >= t.cfg.min_samples then begin
      let ok_pct = d_le * 100 / d_cnt in
      if ok_pct < t.cfg.slo_target_pct then begin
        ten.bad_epochs <- ten.bad_epochs + 1;
        t.n_slo_violations <- t.n_slo_violations + 1;
        Stats.Counter.incr (Registry.counter "sched.slo_violation")
      end
      else ten.bad_epochs <- 0;
      if d_ops * 100 > t.cfg.hi_util_pct * cap * n_serving then
        ten.hot_epochs <- ten.hot_epochs + 1
      else ten.hot_epochs <- 0;
      if ok_pct >= t.cfg.slo_target_pct
         && d_ops * 100 < t.cfg.lo_util_pct * cap * n_serving
      then ten.idle_epochs <- ten.idle_epochs + 1
      else ten.idle_epochs <- 0
    end
    else begin
      (* Too little traffic to judge the SLO; it can still be idle. *)
      ten.bad_epochs <- 0;
      ten.hot_epochs <- 0;
      if d_ops * 100 < t.cfg.lo_util_pct * cap * n_serving then
        ten.idle_epochs <- ten.idle_epochs + 1
    end;
    if not ten.migrating then begin
      let n = List.length (counted t name) in
      (* A Page burn alert is an immediate scale-up trigger: the budget
         is bleeding too fast to wait out [up_epochs] of confirmation. *)
      if (paged
         || ten.bad_epochs >= t.cfg.up_epochs
         || ten.hot_epochs >= t.cfg.up_epochs)
         && n < ten.spec.Placer.max_replicas
      then begin
        let why =
          if paged then
            Printf.sprintf "burn-rate page (fast %.1f)"
              (Slo.burn_rate ten.slo
                 ~windows:(Slo.objective ten.slo).Slo.fast_windows)
          else if ten.bad_epochs >= t.cfg.up_epochs then
            Printf.sprintf "slo attainment %d%%"
              (if d_cnt > 0 then d_le * 100 / d_cnt else 0)
          else "demand above capacity"
        in
        ignore (try_grow t ten ~kind:"scale_up" ~note:why);
        ten.bad_epochs <- 0;
        ten.hot_epochs <- 0
      end
      else if ten.idle_epochs >= t.cfg.down_epochs
              && n > ten.spec.Placer.reservation
      then begin
        (* Shed the replica on the busiest board: consolidation both
           frees capacity there and keeps the cold boards serving. *)
        match
          List.sort
            (fun a b ->
              compare
                (- t.boards.(a.rep_board).load, a.rep_board)
                (- t.boards.(b.rep_board).load, b.rep_board))
            (serving t name)
        with
        | [] -> ()
        | victim :: _ ->
          decide t ~kind:"scale_down" ~tenant:name ~board:victim.rep_board
            "sustained low utilization";
          retire t ten victim;
          ten.idle_epochs <- 0
      end
    end

let consider_migrations t =
  let budget = ref t.cfg.max_migrations_per_epoch in
  let now = Sim.now t.sim in
  let hot =
    Array.to_list t.boards
    |> List.filter (fun b ->
           b.alive && (b.congested || b.load > t.cfg.hot_load))
    |> List.sort (fun a b -> compare (-a.load, a.b_id) (-b.load, b.b_id))
  in
  List.iter
    (fun hb ->
      if !budget > 0 then
        (* Busiest serving replica on the hot board whose tenant is
           eligible (not mid-migration, past its cooldown). *)
        let victims =
          List.filter
            (fun r -> r.rep_board = hb.b_id && r.rep_state = Active)
            t.replicas
          |> List.filter (fun r ->
                 let ten = tenant_of t r.rep_tenant in
                 (not ten.migrating)
                 && now - ten.last_migration >= t.cfg.cooldown)
          |> List.sort (fun a b ->
                 let m r =
                   if r.rep_tile < Array.length hb.tile_msgs then
                     hb.tile_msgs.(r.rep_tile)
                   else 0
                 in
                 compare (-m a, a.rep_tile) (-m b, b.rep_tile))
        in
        List.iter
          (fun victim ->
            if !budget > 0 then
              let ten = tenant_of t victim.rep_tenant in
              let cold_caps =
                live_caps t
                |> List.filter (fun (c : Placer.board_caps) ->
                       t.boards.(c.Placer.board).load <= t.cfg.cold_load)
              in
              let exclude =
                List.map (fun r -> r.rep_board) (reps_of t victim.rep_tenant)
              in
              match
                Placer.choose ~caps:cold_caps ~used:(used t)
                  ~load:(board_load t) ~exclude ten.spec
              with
              | Some dst when dst <> hb.b_id ->
                migrate t ten ~src_rep:victim ~dst;
                decr budget
              | _ -> ())
          victims)
    hot

let epoch_tick t =
  List.iter (fun ten -> autoscale_tenant t ten) t.tenants;
  consider_migrations t;
  Array.iter (fun b -> b.congested <- false) t.boards

(* ------------------------------------------------------------------ *)
(* Failure handling (the Rack_health alarm path) *)

let handle_board_down t b =
  let bs = t.boards.(b) in
  if bs.alive then begin
    bs.alive <- false;
    bs.pool <- [];
    bs.load <- 0;
    bs.congested <- false;
    let dead = List.filter (fun r -> r.rep_board = b) t.replicas in
    t.replicas <- List.filter (fun r -> r.rep_board <> b) t.replicas;
    decide t ~kind:"board_down" ~tenant:"-" ~board:b
      (Printf.sprintf "%d replicas displaced" (List.length dead));
    (* Re-place each displaced serving replica on a survivor right away
       — the displaced tenants' clients have already resharded via
       Cluster.on_board_down, so capacity is what they are missing. *)
    List.iter
      (fun r ->
        let ten = tenant_of t r.rep_tenant in
        note_replicas t ten;
        sync_client t ten;
        if r.rep_state <> Draining then
          ignore
            (try_grow t ten ~kind:"replace"
               ~note:(Printf.sprintf "displaced from board %d" b)))
      dead
  end

let handle_board_up t _b =
  (* A restored board's slots still hold their pre-failure behaviors,
     which the scheduler no longer accounts for — leave it out of the
     schedulable pool. But Shard_client re-admits restored boards
     unconditionally, so narrow every watched ring back to the actual
     placement. *)
  List.iter (fun ten -> sync_client t ten) t.tenants

(* ------------------------------------------------------------------ *)
(* Telemetry plane *)

let lr_magic = "LR"
let sa_magic = "SA"

let handle_frame t (f : Frame.t) =
  if f.Frame.dst <> t.my_mac then ()
  else
    let p = f.Frame.payload in
    if Bytes.length p < 4 then ()
    else
      match Bytes.sub_string p 0 2 with
      | "LR" when Bytes.length p >= 12 ->
        let b = Bytes.get_uint8 p 2 in
        if b < Array.length t.boards && t.boards.(b).alive then begin
          let bs = t.boards.(b) in
          let ntiles = Bytes.get_uint8 p 3 in
          bs.busy <- Int32.to_int (Bytes.get_int32_be p 4);
          bs.load <- Int32.to_int (Bytes.get_int32_be p 8);
          if Bytes.length p >= 12 + (2 * ntiles) then begin
            if Array.length bs.tile_msgs <> ntiles then
              bs.tile_msgs <- Array.make ntiles 0;
            for tl = 0 to ntiles - 1 do
              bs.tile_msgs.(tl) <- Bytes.get_uint16_be p (12 + (2 * tl))
            done
          end
        end
      | "SA" when Bytes.length p >= 5 ->
        let b = Bytes.get_uint8 p 2 in
        if b < Array.length t.boards && t.boards.(b).alive then
          if Bytes.get_uint8 p 3 = 1 then t.boards.(b).congested <- true
          else t.boards.(b).stuck_alarms <- t.boards.(b).stuck_alarms + 1
      | _ -> ()

(* Board-side: periodic load beacons off the stat service's counter
   blocks, plus health alarms, both as fire-and-forget raw Ethernet to
   the controller NIC (the Rack_health heartbeat pattern). Armed before
   the run, so each board's events live wholly in its own partition. *)
let arm_telemetry t =
  (* Teach the ToR switch our port before the first beacon arrives (a
     self-addressed frame the switch learns from, then discards). *)
  Sim.after t.sim 1 (fun () ->
      ignore
        (Mac.send t.mac
           (Frame.make ~dst:t.my_mac ~src:t.my_mac
              (Bytes.of_string (lr_magic ^ "\xff\x00")))));
  List.iteri
    (fun i nd ->
      let kernel = Node.kernel nd in
      let bmac = (Node.board nd).Board.fpga_mac in
      let src = Node.mac_addr nd in
      let ntiles = Kernel.n_tiles kernel in
      let last_busy = ref 0 and last_msgs = ref 0 in
      let last_tile = Array.make ntiles 0 in
      Sim.every (Node.sim nd) ~start:(t.cfg.report_period + i)
        t.cfg.report_period (fun () ->
          match Statsvc.answer kernel Statsvc.Board with
          | None -> ()
          | Some blk ->
            let busy = Perf.read blk Perf.busy in
            let msgs = Perf.read blk Perf.msgs_in in
            let db = busy - !last_busy and dm = msgs - !last_msgs in
            last_busy := busy;
            last_msgs := msgs;
            let payload = Bytes.create (12 + (2 * ntiles)) in
            Bytes.blit_string lr_magic 0 payload 0 2;
            Bytes.set_uint8 payload 2 i;
            Bytes.set_uint8 payload 3 ntiles;
            Bytes.set_int32_be payload 4 (Int32.of_int db);
            Bytes.set_int32_be payload 8 (Int32.of_int dm);
            for tl = 0 to ntiles - 1 do
              let m =
                match Statsvc.answer kernel (Statsvc.Tile tl) with
                | Some p -> Perf.read p Perf.msgs_in
                | None -> 0
              in
              let d = m - last_tile.(tl) in
              last_tile.(tl) <- m;
              Bytes.set_uint16_be payload (12 + (2 * tl)) (min 0xffff (max 0 d))
            done;
            (* Lossy by design: backpressure just skips a report. *)
            ignore (Mac.send bmac (Frame.make ~dst:t.my_mac ~src payload)));
      let health = Health.create kernel in
      Health.on_alarm health (fun alarm ->
          let kind, tile =
            match alarm with
            | Health.Stuck_tile { tile; _ } -> (0, tile)
            | Health.Congested_router { tile; _ } -> (1, tile)
          in
          let p = Bytes.create 5 in
          Bytes.blit_string sa_magic 0 p 0 2;
          Bytes.set_uint8 p 2 i;
          Bytes.set_uint8 p 3 kind;
          Bytes.set_uint8 p 4 tile;
          ignore (Mac.send bmac (Frame.make ~dst:t.my_mac ~src p))))
    (Cluster.nodes t.cluster)

(* ------------------------------------------------------------------ *)
(* Construction and start-up *)

let create ?(config = default_config) cluster ~slot_cells =
  let mac, my_mac = Cluster.add_client ~gbps:10.0 cluster in
  (* Controller flight ring, armed like the kernels' (APIARY_FLIGHT=1
     enables at construction, APIARY_FLIGHT_CAP resizes): burn-rate
     alerts and other controller events land here for postmortems. *)
  let flight =
    let f =
      Flight.create
        ~capacity:(Apiary_obs.Env.int "APIARY_FLIGHT_CAP" ~default:256)
        ()
    in
    if Sys.getenv_opt "APIARY_FLIGHT" = Some "1" then Flight.set_enabled f true;
    f
  in
  let boards =
    Array.init (Cluster.n_boards cluster) (fun b ->
        let pool = Node.free_tiles (Cluster.node cluster b) in
        {
          b_id = b;
          caps =
            {
              Placer.board = b;
              tiles = List.length pool;
              slot_cells = slot_cells b;
            };
          pool;
          alive = true;
          load = 0;
          busy = 0;
          tile_msgs = [||];
          congested = false;
          stuck_alarms = 0;
        })
  in
  let t =
    {
      cluster;
      sim = Cluster.sim cluster;
      cfg = config;
      mac;
      my_mac;
      flight;
      boards;
      tenants = [];
      replicas = [];
      log = [];
      n_slo_violations = 0;
      started = false;
    }
  in
  Mac.set_rx mac (handle_frame t);
  t

let add_tenant t ~spec ~behavior =
  if t.started then invalid_arg "Sched.add_tenant: scheduler already started";
  if List.exists (fun ten -> ten.spec.Placer.name = spec.Placer.name) t.tenants
  then invalid_arg "Sched.add_tenant: duplicate tenant";
  let slo =
    Slo.create
      (Slo.default_objective
         ~target_pct:(float_of_int t.cfg.slo_target_pct)
         ~window:t.cfg.slo_window ~min_samples:t.cfg.slo_min_samples
         ~tenant:spec.Placer.name ~latency_cycles:spec.Placer.slo_cycles ())
  in
  let ten =
    {
      spec;
      behavior;
      client = None;
      slo;
      page_pending = false;
      bad_epochs = 0;
      hot_epochs = 0;
      idle_epochs = 0;
      last_completed = 0;
      last_good = 0;
      last_total = 0;
      last_migration = -max_int / 2;
      migrating = false;
      serving_now = 0;
      last_change = 0;
      acc_replica_cycles = 0;
    }
  in
  (* Burn alerts are decisions too: logged, counted, span-marked, and
     recorded into the controller flight ring (the PR-5 alarm path). A
     Page also primes the autoscaler for an immediate scale-up. *)
  Slo.on_alert slo (fun (a : Slo.alert) ->
      let sev = Slo.severity_to_string a.Slo.a_severity in
      decide t ~kind:"slo_alert" ~tenant:spec.Placer.name
        (Printf.sprintf "%s burn fast %.1f slow %.1f" sev a.Slo.a_burn_fast
           a.Slo.a_burn_slow);
      Flight.record t.flight ~ts:a.Slo.a_cycle ~tile:(-1) ~cat:"slo" ~name:sev
        ~args:
          [
            ("tenant", spec.Placer.name);
            ("burn_fast", Printf.sprintf "%.1f" a.Slo.a_burn_fast);
            ("burn_slow", Printf.sprintf "%.1f" a.Slo.a_burn_slow);
          ]
        ();
      if a.Slo.a_severity = Slo.Page then ten.page_pending <- true);
  t.tenants <- t.tenants @ [ ten ]

let watch t ~tenant client =
  let ten = tenant_of t tenant in
  ten.client <- Some client;
  (* Every request outcome — Ok, timeout, board-down reissue, non-Ok
     reply — feeds the tenant's error budget. Completions happen on the
     rack sim (member 0), so Seq/Par byte-identity is preserved. *)
  Shard_client.set_on_outcome client (fun ~now ~req:_ ~latency ->
      let good =
        match latency with
        | Some l -> l <= ten.spec.Placer.slo_cycles
        | None -> false
      in
      Slo.observe ten.slo ~now ~good)

(* The in-band alternative to [watch]'s client-side hook: attainment
   reconstructed from what the rack collector actually received over
   the fabric — server-observed service time and status from collected
   [serve] spans. Requests that died before any replica saw them are
   invisible here (only the client knows about those), which is the
   honest trade of moving the SLO signal in-band; E16e measures the
   difference. The client is still bound via [watch]-less
   [sync_client], so placement changes keep re-syncing its ring. *)
let watch_collected t ~tenant collector =
  let ten = tenant_of t tenant in
  Collector.on_service_outcome collector (fun ~now (o : Collector.outcome) ->
      if o.Collector.o_service = ten.spec.Placer.name then begin
        let good = o.Collector.o_ok && o.Collector.o_dur <= ten.spec.Placer.slo_cycles in
        Slo.observe ten.slo ~now ~good
      end)

let watch_client_only t ~tenant client =
  let ten = tenant_of t tenant in
  ten.client <- Some client

(* Initial placement runs before the engine does, so replicas go
   straight onto their tiles (boot-time configuration, not PR) and are
   directory-registered immediately. *)
let initial_install t ten board =
  match alloc_tile t board with
  | None -> assert false (* Placer.place respects tile capacity *)
  | Some tile ->
    let name = ten.spec.Placer.name in
    let nd = Cluster.node t.cluster board in
    Kernel.install (Node.kernel nd) ~tile (ten.behavior ());
    Directory.register (Cluster.directory t.cluster) ~service:name ~board
      ~mac:(Node.mac_addr nd);
    t.replicas <-
      t.replicas
      @ [ { rep_tenant = name; rep_board = board; rep_tile = tile;
            rep_state = Active } ];
    decide t ~kind:"place" ~tenant:name ~board "initial"

let start t =
  if t.started then invalid_arg "Sched.start: already started";
  t.started <- true;
  arm_telemetry t;
  let targets =
    List.map (fun ten -> (ten.spec, ten.spec.Placer.reservation)) t.tenants
  in
  let placement, shortfalls =
    Placer.place ~caps:(live_caps t) ~targets ~current:[] ~load:(fun _ -> 0)
  in
  List.iter
    (fun (name, bs) ->
      let ten = tenant_of t name in
      List.iter (fun b -> initial_install t ten b) bs)
    placement;
  List.iter
    (fun (name, k) ->
      decide t ~kind:"defer" ~tenant:name
        (Printf.sprintf "initial shortfall of %d replicas" k))
    shortfalls;
  List.iter
    (fun ten ->
      note_replicas t ten;
      sync_client t ten)
    t.tenants;
  Cluster.on_board_down t.cluster (fun b -> handle_board_down t b);
  Cluster.on_board_up t.cluster (fun b -> handle_board_up t b);
  (* Close SLO windows on the clock, not just on traffic: a tenant that
     goes quiet mid-incident must still get its alerts evaluated. *)
  Sim.every t.sim ~start:t.cfg.slo_window t.cfg.slo_window (fun () ->
      let now = Sim.now t.sim in
      List.iter (fun ten -> Slo.check ten.slo ~now) t.tenants);
  Sim.every t.sim ~start:t.cfg.epoch t.cfg.epoch (fun () -> epoch_tick t)

(* ------------------------------------------------------------------ *)
(* Introspection *)

let decisions t = List.rev t.log

let decisions_json t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "[\n";
  List.iteri
    (fun i d ->
      if i > 0 then Buffer.add_string buf ",\n";
      Buffer.add_string buf
        (Printf.sprintf
           "  {\"cycle\": %d, \"kind\": %S, \"tenant\": %S, \"board\": %d, \
            \"src\": %d, \"note\": %S}"
           d.d_cycle d.d_kind d.d_tenant d.d_board d.d_src d.d_note))
    (decisions t);
  Buffer.add_string buf "\n]\n";
  Buffer.contents buf

let totals t =
  let count kind =
    List.fold_left
      (fun acc d -> if d.d_kind = kind then acc + 1 else acc)
      0 t.log
  in
  let place = count "place"
  and scale_ups = count "scale_up"
  and replaced = count "replace" in
  {
    placements = place + scale_ups + replaced;
    migrations = count "migrate";
    scale_ups;
    scale_downs = count "scale_down";
    deferred = count "defer";
    replaced;
    slo_violations = t.n_slo_violations;
  }

let replicas t ~tenant = List.length (serving t tenant)

let placement t ~tenant =
  List.sort compare (List.map (fun r -> r.rep_board) (serving t tenant))

let replica_cycles t ~tenant ~now =
  let ten = tenant_of t tenant in
  ten.acc_replica_cycles + (ten.serving_now * (now - ten.last_change))

let slo t ~tenant = (tenant_of t tenant).slo
let flight t = t.flight

let slo_report_json t =
  Slo.report_json_string (List.map (fun ten -> ten.slo) t.tenants)

let write_slo_report t path =
  let oc = open_out path in
  output_string oc (slo_report_json t);
  close_out oc

let register_metrics t =
  Registry.add_sampler ~name:"sched" (fun () ->
      List.iter
        (fun ten ->
          let name = ten.spec.Placer.name in
          Stats.Gauge.set
            (Registry.gauge (Printf.sprintf "sched.%s.replicas" name))
            (float_of_int (List.length (serving t name)));
          Stats.Gauge.set
            (Registry.gauge (Printf.sprintf "sched.%s.burn_fast" name))
            (Slo.burn_rate ten.slo
               ~windows:(Slo.objective ten.slo).Slo.fast_windows);
          Stats.Gauge.set
            (Registry.gauge (Printf.sprintf "sched.%s.budget_pct" name))
            (Slo.budget_remaining_pct ten.slo))
        t.tenants;
      Array.iter
        (fun bs ->
          Stats.Gauge.set
            (Registry.gauge (Printf.sprintf "sched.board%d.load" bs.b_id))
            (float_of_int bs.load))
        t.boards)
