(* Pure placement arithmetic for the elastic scheduler. No simulator
   state, no floats: decisions are total orders over integer tuples so
   Seq and Par engine runs (and reruns) pick identical placements. *)

type tenant = {
  name : string;
  cells : int;
  state_bytes : int;
  bitstream_bytes : int;
  reservation : int;
  max_replicas : int;
  slo_cycles : int;
  capacity_hint : int;
}

type board_caps = { board : int; tiles : int; slot_cells : int }
type placement = (string * int list) list

let fits c t = t.cells <= c.slot_cells

let feasible ~caps t =
  List.filter_map (fun c -> if fits c t then Some c.board else None) caps
  |> List.sort compare

let validate ~caps ~tenants placement =
  let viol = ref [] in
  let bad fmt = Printf.ksprintf (fun s -> viol := s :: !viol) fmt in
  let cap b = List.find_opt (fun c -> c.board = b) caps in
  let used = Hashtbl.create 8 in
  List.iter
    (fun (name, boards) ->
      (match List.find_opt (fun t -> t.name = name) tenants with
      | None -> bad "unknown tenant %s" name
      | Some t ->
        if List.length boards > t.max_replicas then
          bad "%s: %d replicas exceed max %d" name (List.length boards)
            t.max_replicas;
        if List.length (List.sort_uniq compare boards) <> List.length boards
        then bad "%s: duplicate board in placement" name;
        List.iter
          (fun b ->
            match cap b with
            | None -> bad "%s: placed on unknown board %d" name b
            | Some c ->
              if not (fits c t) then
                bad "%s: %d cells exceed board %d slot budget %d" name t.cells
                  b c.slot_cells)
          boards);
      List.iter
        (fun b ->
          Hashtbl.replace used b
            (1 + Option.value ~default:0 (Hashtbl.find_opt used b)))
        boards)
    placement;
  List.iter
    (fun c ->
      let u = Option.value ~default:0 (Hashtbl.find_opt used c.board) in
      if u > c.tiles then
        bad "board %d: %d replicas exceed %d tiles" c.board u c.tiles)
    caps;
  List.rev !viol

let choose ~caps ~used ~load ~exclude t =
  List.fold_left
    (fun acc c ->
      if (not (fits c t)) || used c.board >= c.tiles
         || List.mem c.board exclude
      then acc
      else
        let key = (load c.board, used c.board, c.board) in
        match acc with
        | Some (k, _) when k <= key -> acc
        | _ -> Some (key, c.board))
    None caps
  |> Option.map snd

let place ~caps ~targets ~current ~load =
  let used = Hashtbl.create 8 in
  let u b = Option.value ~default:0 (Hashtbl.find_opt used b) in
  let take b = Hashtbl.replace used b (u b + 1) in
  (* Pass 1: keep surviving replicas (board still present and still big
     enough), lowest-load first, truncated to the target — shrinking a
     tenant sheds its hottest boards. *)
  let kept =
    List.map
      (fun ((t : tenant), target) ->
        let cur = Option.value ~default:[] (List.assoc_opt t.name current) in
        let keep =
          List.filter
            (fun b ->
              match List.find_opt (fun c -> c.board = b) caps with
              | Some c -> fits c t
              | None -> false)
            (List.sort_uniq compare cur)
        in
        let keep =
          List.sort (fun a b -> compare (load a, a) (load b, b)) keep
        in
        let keep = List.filteri (fun i _ -> i < target) keep in
        List.iter take keep;
        (t, target, ref keep))
      targets
  in
  (* Pass 2: grow each tenant to its target on the emptiest feasible
     boards; tenants are served in [targets] order, so reservations
     listed first win contended capacity. *)
  let shortfall = ref [] in
  List.iter
    (fun (t, target, keep) ->
      let rec fill () =
        if List.length !keep < target then
          match choose ~caps ~used:u ~load ~exclude:!keep t with
          | Some b ->
            take b;
            keep := !keep @ [ b ];
            fill ()
          | None ->
            shortfall := (t.name, target - List.length !keep) :: !shortfall
      in
      fill ())
    kept;
  ( List.map (fun (t, _, keep) -> (t.name, List.sort compare !keep)) kept,
    List.rev !shortfall )
