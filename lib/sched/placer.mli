(** The placement engine: pure bin-packing of tenant replicas onto the
    rack's tiles under the {!Apiary_resource} area model.

    A {e tenant} is one accelerator context class (its per-replica logic
    cells, context-swap state and PR bitstream size, plus its contract:
    a replica reservation, a replica cap, and an SLO). A board offers
    [tiles] schedulable slots of [slot_cells] logic cells each — the
    [slot_logic_cells] of that board's {!Apiary_resource.Floorplan.plan}
    — so heterogeneous parts make the area constraint bite: a tenant
    whose [cells] exceed a small part's slot simply cannot land there.

    Everything here is deterministic integer arithmetic over explicit
    inputs; the stateful scheduler ({!Sched}) feeds it live loads and
    applies its outputs. *)

type tenant = {
  name : string;
  cells : int;  (** logic cells one replica's slot must provide *)
  state_bytes : int;  (** context-swap payload moved by a migration *)
  bitstream_bytes : int;  (** partial bitstream loaded per placement *)
  reservation : int;  (** replicas the tenant is always entitled to *)
  max_replicas : int;
  slo_cycles : int;  (** request latency bound the autoscaler defends *)
  capacity_hint : int;
      (** rough ops one replica serves per autoscaler epoch — the
          utilization yardstick for scale-down decisions *)
}

type board_caps = {
  board : int;
  tiles : int;  (** schedulable slots *)
  slot_cells : int;  (** logic cells per slot (floorplan budget) *)
}

type placement = (string * int list) list
(** Tenant name -> boards hosting one replica each (sorted, no dups). *)

val fits : board_caps -> tenant -> bool
(** Area check: one replica of the tenant fits one of the board's slots. *)

val feasible : caps:board_caps list -> tenant -> int list
(** Boards whose slots are large enough for the tenant, in id order. *)

val validate :
  caps:board_caps list -> tenants:tenant list -> placement -> string list
(** Violations of the resource model ([] = valid): unknown tenants or
    boards, replicas over [max_replicas], duplicate boards per tenant,
    area overflows, and boards hosting more replicas than tiles. *)

val choose :
  caps:board_caps list ->
  used:(int -> int) ->
  load:(int -> int) ->
  exclude:int list ->
  tenant ->
  int option
(** Best board for one new replica: feasible, has a free tile, not in
    [exclude] (boards already hosting the tenant); minimizes
    [(load, used tiles, board id)] — deterministic with int loads. *)

val place :
  caps:board_caps list ->
  targets:(tenant * int) list ->
  current:placement ->
  load:(int -> int) ->
  placement * (string * int) list
(** Full placement: for each [(tenant, wanted)] keep the lowest-load
    [wanted] of its current replicas that are still on live, feasible
    boards, then grow to [wanted] with {!choose}. Stability-preserving
    (replicas never move unless their board vanished or shrank away)
    and greedy in [targets] order, so earlier tenants win contended
    capacity — callers list reservations before elastic growth.
    Returns the placement plus per-tenant shortfalls; a shortfall
    implies every feasible board was full or already hosting the
    tenant. *)
