(** The elastic multi-tenant scheduler: a rack-controller service that
    places accelerator contexts onto tiles ({!Placer}), migrates hot
    tenants between boards with context-swap + partial reconfiguration,
    and autoscales replica counts against each tenant's SLO — the
    cluster-level "OS scheduler" the paper's multi-tenancy story implies
    (§4.1 replicated accelerators, §6-Q3 rack-scale OS functionality).

    {2 Control and telemetry planes}

    All scheduler state lives on the rack controller (member 0 of a
    partitioned engine). Telemetry flows {e up} as raw-Ethernet beacons
    on the boards' uplinks: each board periodically reads its own
    {!Apiary_core.Statsvc} counter blocks and emits a compact load
    report (board busy/message deltas plus per-tile message deltas), and
    an {!Apiary_core.Health} watchdog per board turns stuck-tile and
    router-congestion alarms into alarm frames. Commands flow {e down}
    through {!Apiary_cluster.Cluster.post_to_board} with at least one
    uplink of latency — the same staging protocol as frames and
    directory announcements — so partitioned runs are byte-identical to
    monolithic ones. A killed board's beacons die at its downed switch
    port; staleness is exactly what the controller should see.

    {2 Decisions}

    - {b Placement}: initial replicas at each tenant's reservation, bin
      packed under the floorplan area model.
    - {b Autoscale}: per epoch, a tenant whose SLO attainment (measured
      on its watched {!Apiary_cluster.Shard_client}) stays below target
      — or whose per-replica throughput saturates its capacity hint —
      for [up_epochs] gains a replica if capacity exists ({e never} by
      evicting another tenant; denied growth is logged as a [defer]).
      Sustained low utilization sheds replicas down to the reservation.
    - {b Migration}: a board that is congestion-alarmed or beyond
      [hot_load] sheds its busiest tenant to a board under [cold_load],
      make-before-break: install on the destination (state transfer +
      PR modelled as deterministic cycle costs), cut the directory and
      client rings over once active, drain, then reconfigure the old
      tile to an idle slot and reclaim it.
    - {b Failure}: on {!Apiary_cluster.Cluster.report_down} (the rack
      watchdog's alarm path) the dead board's replicas are struck and
      displaced tenants re-placed on survivors immediately.

    Every decision is cycle-stamped into a log ({!decisions_json} is
    byte-stable), mirrored as [sched.*] registry counters and, when
    span tracing is on, as ["sched"]-category instants. *)

module Shell := Apiary_core.Shell
module Cluster := Apiary_cluster.Cluster
module Shard_client := Apiary_cluster.Shard_client
module Slo := Apiary_obs.Slo
module Flight := Apiary_obs.Flight

type config = {
  report_period : int;  (** cycles between board load beacons *)
  epoch : int;  (** cycles between autoscale/migration evaluations *)
  up_epochs : int;  (** consecutive bad epochs before scaling up *)
  down_epochs : int;  (** consecutive idle epochs before scaling down *)
  slo_target_pct : int;  (** required SLO attainment, percent *)
  hi_util_pct : int;  (** per-replica demand (as % of capacity hint) treated as saturation *)
  lo_util_pct : int;  (** per-replica demand below this % is idle *)
  min_samples : int;  (** completions per epoch below which attainment is not judged *)
  hot_load : int;  (** board msgs/beacon above which it sheds load *)
  cold_load : int;  (** board msgs/beacon below which it accepts migrations *)
  cooldown : int;  (** min cycles between migrations of one tenant *)
  drain_delay : int;
      (** cycles a cut-over replica keeps serving before its tile is
          reclaimed; keep above the shard clients' request timeout so
          in-flight work drains (zero lost requests) *)
  margin : int;  (** slack added to modelled install/PR completion times *)
  pr_bytes_per_cycle : int;
      (** must match the boards' kernel config (default 8) — the
          controller predicts PR completion with the same constant *)
  max_migrations_per_epoch : int;
  slo_window : int;
      (** SLO accounting window ({!Apiary_obs.Slo}), cycles; windows
          also close on this clock so alerts fire even when a tenant
          goes quiet *)
  slo_min_samples : int;
      (** burn rates read as 0 over window spans with fewer samples
          than this ({!Apiary_obs.Slo.objective}'s [min_samples]) —
          size it to the window, not the epoch *)
}

val default_config : config
(** beacons every 1000, epoch 20_000, 2 up / 3 down epochs, 99% SLO
    target, 90/25% utilization bands, hot 2000 / cold 800 msgs/beacon,
    cooldown 60_000, drain 30_000, margin 128, PR 8 B/cycle, 1
    migration per epoch, SLO window 5_000 with 20 min samples. *)

type t

val create : ?config:config -> Cluster.t -> slot_cells:(int -> int) -> t
(** Attach a scheduler to the rack: adds a controller NIC for telemetry
    and snapshots each board's free tiles as its schedulable slots.
    [slot_cells board] is the per-slot logic-cell budget (a
    {!Apiary_resource.Floorplan.plan}'s [slot_logic_cells]) — boards
    built from different parts get different budgets. Boards the
    scheduler manages must receive {e all} their installs through it. *)

val add_tenant :
  t -> spec:Placer.tenant -> behavior:(unit -> Shell.behavior) -> unit
(** Declare a tenant before {!start}. [behavior] builds a fresh replica
    behavior per placement (it must register [spec.name] with the
    board kernel on boot, as {!Apiary_accel.Accels} behaviors do). *)

val watch : t -> tenant:string -> Shard_client.t -> unit
(** Bind the tenant's external load generator: every request outcome
    (including timeouts, which no latency histogram can see) feeds the
    tenant's {!Apiary_obs.Slo} error budget — the autoscaler's
    attainment signal — and every placement change re-syncs the client's
    shard ring so traffic follows the placement. Claims the client's
    [set_on_outcome] hook. *)

val watch_collected : t -> tenant:string -> Apiary_cluster.Collector.t -> unit
(** In-band alternative to {!watch}: feed the tenant's error budget
    from the rack {!Apiary_cluster.Collector}'s service-outcome stream
    (server-observed latency and status from collected [serve] spans,
    delivered over the fabric) instead of the client's local hook.
    Honestly blind to requests no replica ever saw — client-side
    timeouts stay client-side; E16e measures the gap. Combine with
    {!watch_client_only} so placement changes still re-sync the
    client's shard ring. *)

val watch_client_only : t -> tenant:string -> Shard_client.t -> unit
(** Bind the tenant's client for shard-ring re-syncs on placement
    changes {e without} claiming its outcome hook (used alongside
    {!watch_collected}). *)

val start : t -> unit
(** Place initial replicas (each tenant at its reservation, in
    [add_tenant] order), arm board beacons and health watchdogs, and
    subscribe to the cluster's failure/recovery announcements. Call
    after tenants are declared and clients watched, before running the
    engine. *)

(** {1 Introspection} *)

type decision = {
  d_cycle : int;
  d_kind : string;
      (** [place], [scale_up], [scale_down], [migrate], [replace],
          [defer], [abort], [board_down], [slo_alert] *)
  d_tenant : string;  (** ["-"] for board-level events *)
  d_board : int;  (** destination board, [-1] when not applicable *)
  d_src : int;  (** migration source board, [-1] otherwise *)
  d_note : string;
}

type totals = {
  placements : int;  (** initial placements + scale-ups + replacements *)
  migrations : int;
  scale_ups : int;
  scale_downs : int;  (** voluntary replica evictions (to reservation) *)
  deferred : int;  (** growth denied for lack of capacity *)
  replaced : int;  (** replicas re-placed after a board death *)
  slo_violations : int;  (** tenant-epochs below the attainment target *)
}

val decisions : t -> decision list
(** Oldest first. *)

val decisions_json : t -> string
(** The decision log as a JSON array (cycle-stamped only — byte-stable
    across identical runs and engine modes). *)

val totals : t -> totals

val replicas : t -> tenant:string -> int
(** Currently serving replicas. *)

val placement : t -> tenant:string -> int list
(** Boards currently serving the tenant, ascending. *)

val replica_cycles : t -> tenant:string -> now:int -> int
(** Integral of serving replicas over time up to [now] — divide by the
    run length for average provisioned replicas. *)

val board_load : t -> int -> int
(** Last beaconed message delta for a board (the controller's view). *)

val slo : t -> tenant:string -> Slo.t
(** The tenant's SLO object: error-budget totals, burn rates, the alert
    log, and the first-below-target cycle. *)

val slo_report_json : t -> string
(** Per-tenant SLO report ({!Apiary_obs.Slo.report_json_string}) over
    all tenants in [add_tenant] order — byte-stable. *)

val write_slo_report : t -> string -> unit

val flight : t -> Flight.t
(** The controller's flight ring. Burn-rate alerts are recorded into it
    (category ["slo"], name ["page"]/["ticket"]); arm it with
    [APIARY_FLIGHT=1] (size with [APIARY_FLIGHT_CAP]) or
    {!Apiary_obs.Flight.set_enabled}, like the kernels' rings. *)

val register_metrics : t -> unit
(** Install an [Apiary_obs.Registry] sampler publishing per-tenant
    replica/burn-rate/budget gauges and per-board load gauges under
    [sched.*] (decision counters are maintained under [sched.<kind>] as
    they happen). *)
