module Kernel = Apiary_core.Kernel
module Accels = Apiary_accel.Accels
module Codec = Apiary_accel.Codec

let default_q = 2
let default_width = 64

let encode_stage ~service =
  Accels.transform_stage ~service ~next:"compress"
    ~f:(Codec.video_encode ~q:default_q ~width:default_width)
    ()

let install kernel ~encoder_tile ~compressor_tile =
  Kernel.install kernel ~tile:compressor_tile (Accels.compressor ~algo:`Lz ());
  Kernel.install kernel ~tile:encoder_tile (encode_stage ~service:"vpipe")

let install_replicated kernel ~lb_tile ~encoder_tiles ~compressor_tile =
  Kernel.install kernel ~tile:compressor_tile (Accels.compressor ~algo:`Lz ());
  let backends =
    List.mapi
      (fun i tile ->
        let service = Printf.sprintf "vpipe.enc%d" i in
        Kernel.install kernel ~tile (encode_stage ~service);
        service)
      encoder_tiles
  in
  Kernel.install kernel ~tile:lb_tile (Accels.load_balancer ~service:"vpipe" ~backends ())

let verify_output ~original response =
  let fail fmt = Printf.ksprintf (fun s -> Error s) fmt in
  if Bytes.length response > 12 && Bytes.sub_string response 0 11 = "STAGE-ERROR" then
    fail "pipeline error: %s" (Bytes.to_string response)
  else
    match Codec.lz_decode response with
    | Error e -> fail "decompress: %s" e
    | Ok encoded ->
      (match Codec.video_decode ~q:default_q ~width:default_width encoded with
      | Error e -> fail "decode: %s" e
      | Ok decoded ->
        if Bytes.length decoded <> Bytes.length original then
          fail "length mismatch: %d vs %d" (Bytes.length decoded)
            (Bytes.length original)
        else begin
          let tol = Codec.max_error ~q:default_q in
          let bad = ref (-1) in
          for i = 0 to Bytes.length original - 1 do
            let d =
              abs (Char.code (Bytes.get decoded i) - Char.code (Bytes.get original i))
            in
            if d > tol && !bad < 0 then bad := i
          done;
          if !bad >= 0 then fail "error beyond tolerance at byte %d" !bad else Ok ()
        end)
