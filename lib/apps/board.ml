module Sim = Apiary_engine.Sim
module Kernel = Apiary_core.Kernel
module Mac = Apiary_net.Mac
module Switch = Apiary_net.Switch
module Netsvc = Apiary_net.Netsvc
module Client = Apiary_net.Client
module Link = Apiary_net.Link

type t = {
  sim : Sim.t;
  kernel : Kernel.t;
  switch : Switch.t;
  fpga_mac : Mac.t;
  fpga_mac_addr : int;
  net_tile : int;
  net_stats : Netsvc.stats;
}

let fpga_mac_addr = 0x02_0000_00F0CA land 0xFFFFFFFFFFFF

let gbps_to_bytes_per_cycle g =
  (* bytes/cycle at 250 MHz: 10 Gb/s = 1.25 GB/s = 5 B/cycle. *)
  g *. 0.5

let create ?kernel_cfg ?(mac_gen = Mac.Gen_100g) ?(switch_ports = 8) ?net_tile
    ?attach:attach_to ?(mac_addr = fpga_mac_addr) ?ext_link sim =
  let kcfg = Option.value ~default:Kernel.default_config kernel_cfg in
  let kernel = Kernel.create sim kcfg in
  let switch, board_port =
    match attach_to with
    | Some (sw, port) -> (sw, port)
    | None -> (Switch.create sim ~nports:switch_ports ~latency:250, 0)
  in
  let gbps = match mac_gen with Mac.Gen_10g -> 10.0 | Mac.Gen_100g -> 100.0 in
  let board_link =
    match ext_link with
    | Some l -> l
    | None ->
      Link.create sim ~bytes_per_cycle:(gbps_to_bytes_per_cycle gbps)
        ~prop_cycles:125
  in
  Switch.attach switch ~port:board_port board_link Link.B;
  let fpga_mac = Mac.create sim mac_gen board_link Link.A in
  let net_tile =
    match net_tile with
    | Some tile -> tile
    | None -> (
      match Kernel.user_tiles kernel with
      | tile :: _ -> tile
      | [] -> invalid_arg "Board.create: no user tile for the network service")
  in
  let net_behavior, net_stats = Netsvc.behavior ~mac:fpga_mac ~my_mac:mac_addr () in
  Kernel.install kernel ~tile:net_tile net_behavior;
  { sim; kernel; switch; fpga_mac; fpga_mac_addr = mac_addr; net_tile; net_stats }

let add_client_port t ~port ?(gbps = 10.0) () =
  let link =
    Link.create t.sim ~bytes_per_cycle:(gbps_to_bytes_per_cycle gbps) ~prop_cycles:125
  in
  Switch.attach t.switch ~port link Apiary_net.Link.B;
  let mac = Mac.create t.sim Mac.Gen_10g link Apiary_net.Link.A in
  let addr = 0x02_0000_0C0000 + port in
  (mac, addr)

let client t ~port ?gbps () =
  let mac, addr = add_client_port t ~port ?gbps () in
  Client.create t.sim ~mac ~my_mac:addr ~server_mac:t.fpga_mac_addr

let user_tiles t =
  List.filter (fun i -> i <> t.net_tile) (Kernel.user_tiles t.kernel)
