(** A complete direct-attached FPGA board in its rack context: the Apiary
    kernel on the fabric, a MAC wired to a ToR switch, the network OS
    service bridging the two, and helpers to hang client hosts off the
    switch.

    This is the top-level assembly every example and experiment starts
    from. *)

module Sim := Apiary_engine.Sim
module Kernel := Apiary_core.Kernel
module Mac := Apiary_net.Mac
module Switch := Apiary_net.Switch
module Netsvc := Apiary_net.Netsvc
module Client := Apiary_net.Client
module Link := Apiary_net.Link

type t = {
  sim : Sim.t;
  kernel : Kernel.t;
  switch : Switch.t;
  fpga_mac : Mac.t;
  fpga_mac_addr : int;
  net_tile : int;  (** tile hosting the network service *)
  net_stats : Netsvc.stats;
}

val fpga_mac_addr : int
(** 0x02_000000_F0CA (locally administered). *)

val gbps_to_bytes_per_cycle : float -> float
(** Link rate conversion at the 250 MHz fabric clock (10 Gb/s = 5
    B/cycle). *)

val create :
  ?kernel_cfg:Kernel.config ->
  ?mac_gen:Mac.generation ->
  ?switch_ports:int ->
  ?net_tile:int ->
  ?attach:Switch.t * int ->
  ?mac_addr:int ->
  ?ext_link:Link.t ->
  Sim.t ->
  t
(** Defaults: 100G board MAC on switch port 0, 8-port 1 µs switch, the
    network service on the first user tile.

    [attach:(switch, port)] wires the board's MAC into an existing
    switch at the given port instead of creating a private one —
    several boards sharing one ToR switch is how {!Apiary_cluster}
    builds a rack. [switch_ports] is then ignored. [mac_addr] overrides
    the board's MAC address (mandatory for multi-board setups, where
    each board needs a distinct identity).

    [ext_link] supplies the board's uplink instead of creating one —
    used by {!Apiary_cluster} to hand in a {!Link.create_split} when the
    board and its ToR switch live on different Par_sim partitions. The
    board's MAC is always side [A]; the switch side [B]. *)

val add_client_port :
  t -> port:int -> ?gbps:float -> unit -> Mac.t * int
(** Attach a host NIC to a switch port (default 10 Gb/s); returns the
    MAC adapter and its address — feed these to {!Apiary_net.Client} or a
    {!Apiary_baseline.Hosted} server. *)

val client : t -> port:int -> ?gbps:float -> unit -> Client.t
(** Convenience: an {!Apiary_net.Client} aimed at this board. *)

val user_tiles : t -> int list
(** Kernel user tiles minus the network-service tile. *)
