module Kernel := Apiary_core.Kernel

(** The paper's §2 motivating application: a video-processing pipeline on
    the shared FPGA — an encoding stage composed with a third-party
    compression accelerator, optionally replicated behind a load balancer
    for throughput (§4.1 scale-out).

    The public service is ["vpipe"]: send a raw chunk, receive the
    compressed encoding. {!verify_output} checks the full round trip
    (decompress, decode, compare within the codec's error bound) so
    experiments validate data integrity, not just completion. *)

val default_q : int
val default_width : int

val install : Kernel.t -> encoder_tile:int -> compressor_tile:int -> unit
(** Two-stage pipeline: ["vpipe"] (encode stage) on [encoder_tile]
    forwarding to ["compress"] on [compressor_tile]. *)

val install_replicated :
  Kernel.t -> lb_tile:int -> encoder_tiles:int list -> compressor_tile:int -> unit
(** ["vpipe"] is a load balancer spreading over one encode stage per
    tile in [encoder_tiles], all sharing one compressor. *)

val verify_output : original:bytes -> bytes -> (unit, string) result
(** Decompress + decode a pipeline response and compare against the
    original within the quantizer's error bound. *)
