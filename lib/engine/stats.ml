module Counter = struct
  type t = { name : string; mutable v : int }

  let create name = { name; v = 0 }
  let name c = c.name
  let incr c = c.v <- c.v + 1
  let add c n = c.v <- c.v + n
  let value c = c.v
  let reset c = c.v <- 0
end

module Gauge = struct
  type t = {
    name : string;
    mutable v : float;
    mutable mn : float;
    mutable mx : float;
  }

  let create name = { name; v = 0.0; mn = infinity; mx = neg_infinity }
  let name g = g.name

  let set g x =
    g.v <- x;
    if x < g.mn then g.mn <- x;
    if x > g.mx then g.mx <- x

  let value g = g.v
  let min g = g.mn
  let max g = g.mx

  let reset g =
    g.v <- 0.0;
    g.mn <- infinity;
    g.mx <- neg_infinity
end

module Histogram = struct
  (* Buckets: for each power of two [e] we keep [sub] linear sub-buckets,
     giving relative error <= 1/sub within a bucket. *)
  let sub = 32
  let nbuckets = 64 * sub

  type t = {
    name : string;
    buckets : int array;
    mutable count : int;
    mutable sum : int;
    mutable sumsq : float;
    mutable max_v : int;
    mutable min_v : int;
  }

  let create name =
    {
      name;
      buckets = Array.make nbuckets 0;
      count = 0;
      sum = 0;
      sumsq = 0.0;
      max_v = 0;
      min_v = max_int;
    }

  let name h = h.name

  (* For v >= sub: values in [2^e, 2^(e+1)) (e >= 5) are split into [sub]
     linear sub-buckets of width 2^(e-5). *)
  let index_of v =
    if v < sub then v
    else begin
      let rec msb v acc = if v <= 1 then acc else msb (v lsr 1) (acc + 1) in
      let e = msb v 0 in
      let off = (v lsr (e - 5)) land (sub - 1) in
      let i = sub + ((e - 5) * sub) + off in
      if i >= nbuckets then nbuckets - 1 else i
    end

  (* Representative value (midpoint) of bucket [i]: inverse of [index_of]. *)
  let value_of i =
    if i < sub then i
    else begin
      let k = i - sub in
      let e = (k / sub) + 5 in
      let off = k mod sub in
      (1 lsl e) + (off lsl (e - 5)) + (1 lsl (e - 6))
    end

  (* Public aliases: exemplar stores key their samples by the same
     bucket grid so a retained sample provably lands in the bucket the
     percentile math reads from. *)
  let bucket_of v = index_of (if v < 0 then 0 else v)
  let bucket_value = value_of
  let bucket_count = nbuckets

  (* Occupied buckets, ascending — what a telemetry agent diffs between
     harvests to ship distribution deltas instead of raw samples. *)
  let nonzero_buckets h =
    let out = ref [] in
    for i = nbuckets - 1 downto 0 do
      if h.buckets.(i) > 0 then out := (i, h.buckets.(i)) :: !out
    done;
    !out

  let record_n h v n =
    let v = if v < 0 then 0 else v in
    h.buckets.(index_of v) <- h.buckets.(index_of v) + n;
    h.count <- h.count + n;
    h.sum <- h.sum + (v * n);
    h.sumsq <- h.sumsq +. (float_of_int v *. float_of_int v *. float_of_int n);
    if v > h.max_v then h.max_v <- v;
    if v < h.min_v then h.min_v <- v

  let record h v = record_n h v 1
  let count h = h.count

  (* Samples at or below [v], at bucket resolution: a sample recorded as
     [x <= v] always counts, one in [v]'s own bucket counts too (<= 3%
     relative slack, same as [percentile]'s). SLO-attainment arithmetic
     ("what fraction of requests beat the target") wants this cumulative
     read, which percentiles can only bracket. *)
  let count_le h v =
    if h.count = 0 then 0
    else if v >= h.max_v then h.count
    else begin
      let top = index_of (if v < 0 then 0 else v) in
      let acc = ref 0 in
      for i = 0 to top do
        acc := !acc + h.buckets.(i)
      done;
      !acc
    end
  let sum h = h.sum
  let mean h = if h.count = 0 then 0.0 else float_of_int h.sum /. float_of_int h.count
  let max_value h = h.max_v
  let min_value h = h.min_v

  let percentile h p =
    if h.count = 0 then 0
    else begin
      let target =
        let t = int_of_float (ceil (p /. 100.0 *. float_of_int h.count)) in
        if t < 1 then 1 else if t > h.count then h.count else t
      in
      let rec loop i acc =
        if i >= nbuckets then h.max_v
        else begin
          let acc = acc + h.buckets.(i) in
          if acc >= target then
            if i = index_of h.max_v then h.max_v else value_of i
          else loop (i + 1) acc
        end
      in
      loop 0 0
    end

  let stddev h =
    if h.count < 2 then 0.0
    else begin
      let n = float_of_int h.count in
      let m = mean h in
      let var = (h.sumsq /. n) -. (m *. m) in
      if var < 0.0 then 0.0 else sqrt var
    end

  let reset h =
    Array.fill h.buckets 0 nbuckets 0;
    h.count <- 0;
    h.sum <- 0;
    h.sumsq <- 0.0;
    h.max_v <- 0;
    h.min_v <- max_int

  let merge_into ~src ~dst =
    for i = 0 to nbuckets - 1 do
      dst.buckets.(i) <- dst.buckets.(i) + src.buckets.(i)
    done;
    dst.count <- dst.count + src.count;
    dst.sum <- dst.sum + src.sum;
    dst.sumsq <- dst.sumsq +. src.sumsq;
    if src.max_v > dst.max_v then dst.max_v <- src.max_v;
    if src.min_v < dst.min_v then dst.min_v <- src.min_v

  let pp_summary ppf h =
    Format.fprintf ppf "%-24s n=%-8d mean=%-10.1f p50=%-8d p90=%-8d p99=%-8d max=%d"
      h.name h.count (mean h) (percentile h 50.0) (percentile h 90.0)
      (percentile h 99.0) h.max_v
end

module Series = struct
  type t = {
    name : string;
    interval : int;
    tbl : (int, float ref) Hashtbl.t;
  }

  let create name ~interval =
    assert (interval > 0);
    { name; interval; tbl = Hashtbl.create 64 }

  let record s ~now v =
    let b = now / s.interval * s.interval in
    match Hashtbl.find_opt s.tbl b with
    | Some r -> r := !r +. v
    | None -> Hashtbl.replace s.tbl b (ref v)

  let buckets s =
    Hashtbl.fold (fun k r acc -> (k, !r) :: acc) s.tbl []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
end
