type mode = Seq | Par
type sync = Barrier | Neighbor

(* A staged cross-partition event. [seq] is per-source and assigned at
   post time, so the canonical delivery order — (time, src, seq) —
   depends only on each member's own deterministic execution, never on
   how windows were scheduled or how domains interleaved. *)
type post_rec = { p_time : int; p_src : int; p_seq : int; p_fn : unit -> unit }

let cmp_post a b =
  let c = compare a.p_time b.p_time in
  if c <> 0 then c
  else
    let c = compare a.p_src b.p_src in
    if c <> 0 then c else compare a.p_seq b.p_seq

(* Worker handshake. Workers park in [wait] until the coordinator opens
   an epoch by bumping [epoch]; each runs its member to [target]
   (Barrier: one window per epoch; Neighbor: the whole run) and bumps
   [n_done]. All fields are accessed under [lock]. *)
type shared = {
  lock : Mutex.t;
  cond : Condition.t;
  mutable epoch : int;
  mutable target : int;
  mutable n_done : int;
  mutable quit : bool;
  mutable aborted : bool;  (* a member failed; waiters must bail out *)
  mutable failure : exn option;
}

type member = {
  msim : Sim.t;
  (* Canonical inbound queue: every post bound for this member, ordered
     (time, src, seq). Flushed into [msim] only once the window that
     could execute the post's cycle is about to open — so the per-sim
     insertion order of cross-partition events is a pure function of the
     inputs, identical for every window schedule and execution mode. *)
  pending : post_rec Heap.t;
  mutable mclock : int;  (* Neighbor mode: cycles completed by this member *)
  mutable wend : int;  (* end of the window this member is executing *)
}

type t = {
  mode : mode;
  sync : sync;
  adaptive : bool;
  lookahead : int;
  domains : int;  (* OS domains used under Par (coordinator included) *)
  members : member array;
  (* Barrier+Par window execution: members are pulled from a shared
     steal queue instead of being pinned one-per-domain. [steal_order]
     lists member indices busiest-first (by armed-ticker count) and
     [steal_next] is the pull cursor. Written by the coordinator before
     the epoch opens; the epoch handshake publishes them. *)
  steal_order : int array;
  steal_next : int Atomic.t;
  (* Single-producer staging: member s appends to scratch.(s).(d) during
     its window. Barrier: the coordinator collects them at the barrier.
     Neighbor: member s seals them into mail.(s).(d) under the lock at
     its window end; member d drains them when it opens a window.
     Self-posts (s = d) skip staging and go straight into the member's
     own pending heap. *)
  scratch : post_rec list ref array array;
  mail : post_rec list ref array array;
  done_upto : int array;  (* Neighbor: cycles sealed per member (under lock) *)
  out_seq : int array;
  mutable clock : int;
  sh : shared;
  mutable workers : unit Domain.t array;
  mutable stall_s : float;
  (* Window-width accounting, for perf reports and the qcheck bound
     properties: count, min and max width over the engine's lifetime. *)
  mutable n_windows : int;
  mutable min_window : int;
  mutable max_window : int;
}

(* Microseconds of barrier stall across every instance in the process. *)
let global_stall_us = Atomic.make 0
let total_barrier_stall_s () = float_of_int (Atomic.get global_stall_us) *. 1e-6

(* Window-width accounting across every instance in the process, so the
   bench harness can report adaptive-window behaviour per experiment.
   Updated once per window; min/max via CAS (windows may be recorded
   from a worker domain under Neighbor sync). *)
let global_windows = Atomic.make 0
let global_min_window = Atomic.make max_int
let global_max_window = Atomic.make 0

let rec atomic_min a v =
  let cur = Atomic.get a in
  if v < cur && not (Atomic.compare_and_set a cur v) then atomic_min a v

let rec atomic_max a v =
  let cur = Atomic.get a in
  if v > cur && not (Atomic.compare_and_set a cur v) then atomic_max a v

let total_window_stats () =
  let n = Atomic.get global_windows in
  ( n,
    (if n = 0 then 0 else Atomic.get global_min_window),
    Atomic.get global_max_window )

(* Which partition the calling domain is currently executing, if any.
   Member code runs with its index set; coordinator code between windows
   runs with [None]. Replica-owned state (e.g. the cluster directory's
   per-partition route caches) asserts against this to catch
   cross-domain writes in debug builds. *)
let part_key = Domain.DLS.new_key (fun () -> None)
let current_partition () = Domain.DLS.get part_key
let set_part v = Domain.DLS.set part_key v

let create ?(mode = Seq) ?(sync = Barrier) ?(adaptive = false) ?domains
    ~lookahead ~n () =
  if lookahead < 1 then invalid_arg "Par_sim.create: lookahead must be >= 1";
  if n < 1 then invalid_arg "Par_sim.create: n must be >= 1";
  let domains =
    match domains with None -> n | Some d -> max 1 (min d n)
  in
  if mode = Par && sync = Neighbor && domains < n then
    invalid_arg
      "Par_sim.create: Neighbor sync pins one domain per member (domains = n)";
  let members =
    Array.init n (fun i ->
        let msim = Sim.create () in
        (* Member 0 is the counted sim; the others would multiply-report
           the same simulated interval. *)
        if i > 0 then Sim.set_counted msim false;
        { msim; pending = Heap.create ~cmp:cmp_post; mclock = 0; wend = 0 })
  in
  {
    mode;
    sync;
    adaptive;
    lookahead;
    domains;
    members;
    steal_order = Array.init n (fun i -> i);
    steal_next = Atomic.make 0;
    scratch = Array.init n (fun _ -> Array.init n (fun _ -> ref []));
    mail = Array.init n (fun _ -> Array.init n (fun _ -> ref []));
    done_upto = Array.make n 0;
    out_seq = Array.make n 0;
    clock = 0;
    sh =
      {
        lock = Mutex.create ();
        cond = Condition.create ();
        epoch = 0;
        target = 0;
        n_done = 0;
        quit = false;
        aborted = false;
        failure = None;
      };
    workers = [||];
    stall_s = 0.0;
    n_windows = 0;
    min_window = max_int;
    max_window = 0;
  }

let mode t = t.mode
let sync t = t.sync
let adaptive t = t.adaptive
let n_domains t = Array.length t.members
let domains_used t = t.domains
let lookahead t = t.lookahead
let sim t i = t.members.(i).msim
let now t = t.clock
let barrier_stall_s t = t.stall_s

let window_stats t =
  (t.n_windows, (if t.n_windows = 0 then 0 else t.min_window), t.max_window)

let record_window t w =
  t.n_windows <- t.n_windows + 1;
  if w < t.min_window then t.min_window <- w;
  if w > t.max_window then t.max_window <- w;
  Atomic.incr global_windows;
  atomic_min global_min_window w;
  atomic_max global_max_window w

let post t ~src ~dst ~time fn =
  let n = Array.length t.members in
  let m = t.members.(src) in
  if time < m.wend then
    invalid_arg
      (Printf.sprintf
         "Par_sim.post: time %d inside the open window (end %d) — lookahead \
          violation from partition %d"
         time m.wend src);
  (* The stronger contract — delivery at least one lookahead past the
     source's own clock — is what makes the merged schedule independent
     of window placement (adaptive widening, neighbor-only sync, random
     window schedules). The window check above would let a post near the
     end of a wide window slip under it. *)
  if n > 1 && time < Sim.now m.msim + t.lookahead then
    invalid_arg
      (Printf.sprintf
         "Par_sim.post: time %d under lookahead %d from partition %d at cycle \
          %d"
         time t.lookahead src (Sim.now m.msim));
  if t.sync = Neighbor && abs (src - dst) > 1 then
    invalid_arg
      (Printf.sprintf
         "Par_sim.post: %d -> %d is not a neighbor edge (Neighbor sync)" src
         dst);
  let seq = t.out_seq.(src) in
  t.out_seq.(src) <- seq + 1;
  let r = { p_time = time; p_src = src; p_seq = seq; p_fn = fn } in
  if dst = src then Heap.push m.pending r
  else
    let q = t.scratch.(src).(dst) in
    q := r :: !q

(* Move every staged post into its destination's pending heap. Runs on
   the coordinating thread with all workers parked (the epoch handshake
   provides the happens-before edge for the scratch and mail lists). *)
let collect t =
  let n = Array.length t.members in
  for s = 0 to n - 1 do
    for d = 0 to n - 1 do
      (match !(t.scratch.(s).(d)) with
      | [] -> ()
      | posts ->
        t.scratch.(s).(d) := [];
        List.iter (Heap.push t.members.(d).pending) posts);
      match !(t.mail.(s).(d)) with
      | [] -> ()
      | posts ->
        t.mail.(s).(d) := [];
        List.iter (Heap.push t.members.(d).pending) posts
    done
  done

(* Flush pending posts due before [wend] into the member's simulator, in
   canonical (time, src, seq) order. *)
let flush_member m wend =
  let rec go () =
    match Heap.peek m.pending with
    | Some r when r.p_time < wend ->
      ignore (Heap.pop m.pending);
      Sim.at m.msim r.p_time r.p_fn;
      go ()
    | _ -> ()
  in
  go ()

(* Adaptive window bound: no member can execute anything before the
   earliest of (its own next activity, its earliest pending post), so
   nothing can be posted earlier than that cycle — and every post lands
   at least one lookahead later. Windows may therefore widen to
   [earliest + lookahead] without violating conservative order. *)
let earliest_activity t =
  Array.fold_left
    (fun acc m ->
      let a = Sim.next_activity m.msim in
      let p =
        match Heap.peek m.pending with Some r -> r.p_time | None -> max_int
      in
      min acc (min a p))
    max_int t.members

let compute_wend t target =
  if not t.adaptive then min (t.clock + t.lookahead) target
  else begin
    let e = earliest_activity t in
    if e >= target - t.lookahead then target
    else min target (e + t.lookahead)
  end

(* ------------------------------------------------------------------ *)
(* Neighbor sync: members advance over the same fixed lookahead grid as
   the Barrier reference, but each waits only for its two lattice
   neighbors to have sealed up to its window start — no global barrier.
   Correct because posts travel only one partition over (enforced in
   [post]) and a post due in window [w] was staged strictly before [w]
   opens, hence sealed once the neighbor's [done_upto] covers the window
   start. The canonical pending heap makes delivery order identical to
   the Barrier schedule. *)

let member_loop t i target =
  let n = Array.length t.members in
  let m = t.members.(i) in
  let sh = t.sh in
  set_part (Some i);
  (try
     while m.mclock < target && not sh.aborted do
       let wend = min (m.mclock + t.lookahead) target in
       Mutex.lock sh.lock;
       let ready () =
         (i = 0 || t.done_upto.(i - 1) >= m.mclock)
         && (i = n - 1 || t.done_upto.(i + 1) >= m.mclock)
       in
       if i = 0 && t.mode = Par && not (ready ()) then begin
         let t0 = Profile.now_s () in
         while not (ready ()) && not sh.aborted do
           Condition.wait sh.cond sh.lock
         done;
         let stall = Profile.now_s () -. t0 in
         t.stall_s <- t.stall_s +. stall;
         ignore
           (Atomic.fetch_and_add global_stall_us
              (int_of_float (stall *. 1e6)))
       end
       else
         while not (ready ()) && not sh.aborted do
           Condition.wait sh.cond sh.lock
         done;
       (* Drain neighbors' sealed batches while still holding the lock. *)
       let inbox = ref [] in
       if i > 0 then begin
         let q = t.mail.(i - 1).(i) in
         inbox := !q;
         q := []
       end;
       if i < n - 1 then begin
         let q = t.mail.(i + 1).(i) in
         inbox := List.rev_append !q !inbox;
         q := []
       end;
       let bail = sh.aborted in
       Mutex.unlock sh.lock;
       if not bail then begin
         List.iter (Heap.push m.pending) !inbox;
         flush_member m wend;
         m.wend <- wend;
         Sim.run_until m.msim wend;
         if i = 0 then record_window t (wend - m.mclock);
         Mutex.lock sh.lock;
         (if i > 0 then
            let q = t.scratch.(i).(i - 1) in
            match !q with
            | [] -> ()
            | l ->
              q := [];
              let mq = t.mail.(i).(i - 1) in
              mq := List.rev_append l !mq);
         (if i < n - 1 then
            let q = t.scratch.(i).(i + 1) in
            match !q with
            | [] -> ()
            | l ->
              q := [];
              let mq = t.mail.(i).(i + 1) in
              mq := List.rev_append l !mq);
         t.done_upto.(i) <- wend;
         m.mclock <- wend;
         Condition.broadcast sh.cond;
         Mutex.unlock sh.lock
       end
     done
   with e ->
     Mutex.lock sh.lock;
     if sh.failure = None then sh.failure <- Some e;
     sh.aborted <- true;
     Condition.broadcast sh.cond;
     Mutex.unlock sh.lock);
  set_part None

(* ------------------------------------------------------------------ *)
(* Par mode. Neighbor sync pins one persistent worker per member 1..n-1
   (member 0 runs on the coordinator). Barrier sync spawns
   [domains - 1] workers and every participant — coordinator included —
   pulls members off the shared steal queue, so an imbalanced partition
   (one busy stripe, many quiescent ones) keeps all domains fed and a
   board count larger than the core count still runs every member. *)

let steal_loop t target =
  let n = Array.length t.members in
  let continue_ = ref true in
  while !continue_ do
    let k = Atomic.fetch_and_add t.steal_next 1 in
    if k >= n then continue_ := false
    else begin
      let i = t.steal_order.(k) in
      set_part (Some i);
      Fun.protect
        ~finally:(fun () -> set_part None)
        (fun () -> Sim.run_until t.members.(i).msim target)
    end
  done

let worker t i () =
  let sh = t.sh in
  let my_epoch = ref 0 in
  let rec loop () =
    Mutex.lock sh.lock;
    while sh.epoch = !my_epoch && not sh.quit do
      Condition.wait sh.cond sh.lock
    done;
    if sh.quit then Mutex.unlock sh.lock
    else begin
      my_epoch := sh.epoch;
      let target = sh.target in
      Mutex.unlock sh.lock;
      (match t.sync with
      | Neighbor -> member_loop t i target
      | Barrier -> (
        try steal_loop t target
        with e ->
          Mutex.lock sh.lock;
          if sh.failure = None then sh.failure <- Some e;
          Mutex.unlock sh.lock));
      Mutex.lock sh.lock;
      sh.n_done <- sh.n_done + 1;
      if sh.n_done = t.domains - 1 then Condition.broadcast sh.cond;
      Mutex.unlock sh.lock;
      loop ()
    end
  in
  loop ()

let ensure_workers t =
  if Array.length t.workers = 0 && t.domains > 1 then begin
    t.sh.quit <- false;
    t.workers <-
      Array.init (t.domains - 1) (fun i -> Domain.spawn (worker t (i + 1)))
  end

let shutdown t =
  if Array.length t.workers > 0 then begin
    let sh = t.sh in
    Mutex.lock sh.lock;
    sh.quit <- true;
    Condition.broadcast sh.cond;
    Mutex.unlock sh.lock;
    Array.iter Domain.join t.workers;
    t.workers <- [||]
  end

let open_epoch t target =
  ensure_workers t;
  let sh = t.sh in
  Mutex.lock sh.lock;
  sh.epoch <- sh.epoch + 1;
  sh.target <- target;
  sh.n_done <- 0;
  Condition.broadcast sh.cond;
  Mutex.unlock sh.lock

let wait_workers t =
  let sh = t.sh in
  let t0 = Profile.now_s () in
  Mutex.lock sh.lock;
  while sh.n_done < t.domains - 1 do
    Condition.wait sh.cond sh.lock
  done;
  let failure = sh.failure in
  sh.failure <- None;
  Mutex.unlock sh.lock;
  let stall = Profile.now_s () -. t0 in
  t.stall_s <- t.stall_s +. stall;
  ignore (Atomic.fetch_and_add global_stall_us (int_of_float (stall *. 1e6)));
  match failure with None -> () | Some e -> raise e

(* The partition marker must not outlive the window even when a member
   raises (e.g. a lookahead-violation or an ownership assert surfacing
   to the caller) — a stale marker would poison every later
   owner_check on this domain. *)
let run_window_seq t wend =
  Fun.protect
    ~finally:(fun () -> set_part None)
    (fun () ->
      Array.iteri
        (fun i m ->
          set_part (Some i);
          Sim.run_until m.msim wend)
        t.members)

(* Busiest members first: a window's wall-clock is the slowest domain,
   so big members must not be picked up last. Armed-ticker counts are a
   cheap deterministic proxy for a member's per-cycle work. Which domain
   ends up running which member does not affect results — members are
   isolated within a window — so the steal schedule is free to vary. *)
let refresh_steal_order t =
  let n = Array.length t.members in
  let act = Array.map (fun m -> Sim.active_tickers m.msim) t.members in
  let ord = t.steal_order in
  for i = 0 to n - 1 do
    ord.(i) <- i
  done;
  Array.sort
    (fun a b ->
      let c = compare act.(b) act.(a) in
      if c <> 0 then c else compare a b)
    ord;
  Atomic.set t.steal_next 0

let run_window_par t wend =
  refresh_steal_order t;
  open_epoch t wend;
  (try steal_loop t wend
   with e ->
     Mutex.lock t.sh.lock;
     if t.sh.failure = None then t.sh.failure <- Some e;
     Mutex.unlock t.sh.lock);
  wait_workers t

let run_barrier t time =
  while t.clock < time do
    collect t;
    let wend = compute_wend t time in
    record_window t (wend - t.clock);
    Array.iter
      (fun m ->
        flush_member m wend;
        m.wend <- wend)
      t.members;
    (match t.mode with
    | Seq -> run_window_seq t wend
    | Par -> run_window_par t wend);
    t.clock <- wend
  done

let run_neighbor t time =
  collect t;
  Array.iteri
    (fun i m ->
      t.done_upto.(i) <- t.clock;
      m.mclock <- t.clock)
    t.members;
  t.sh.aborted <- false;
  (match t.mode with
  | Seq ->
    (* The sequential reference: same windows, same flush boundaries,
       one domain. *)
    while t.clock < time do
      let wend = min (t.clock + t.lookahead) time in
      record_window t (wend - t.clock);
      collect t;
      Fun.protect
        ~finally:(fun () -> set_part None)
        (fun () ->
          Array.iteri
            (fun i m ->
              flush_member m wend;
              m.wend <- wend;
              set_part (Some i);
              Sim.run_until m.msim wend;
              m.mclock <- wend)
            t.members);
      t.clock <- wend
    done
  | Par ->
    open_epoch t time;
    member_loop t 0 time;
    wait_workers t;
    (match t.sh.failure with
    | None -> ()
    | Some e ->
      t.sh.failure <- None;
      raise e);
    t.clock <- time)

let run_until t time =
  if Array.length t.members = 1 then begin
    (* One partition: no boundaries, no windows. *)
    let m = t.members.(0) in
    m.wend <- time;
    Sim.run_until m.msim time;
    collect t;
    flush_member m max_int;
    t.clock <- max t.clock time
  end
  else if time > t.clock then
    match t.sync with
    | Barrier -> run_barrier t time
    | Neighbor -> run_neighbor t time

let run_for t n = run_until t (t.clock + n)
