type mode = Seq | Par

(* A staged cross-partition event. [seq] is per-source and assigned at
   post time, so the barrier merge order — (time, src, seq) — depends
   only on each member's own deterministic execution. *)
type post_rec = { p_time : int; p_src : int; p_seq : int; p_dst : int;
                  p_fn : unit -> unit }

(* Worker handshake (Par mode). Workers park in [wait] until the
   coordinator opens a window by bumping [epoch]; each runs its member
   to [target] and bumps [n_done]. All fields are accessed under
   [lock]. *)
type shared = {
  lock : Mutex.t;
  cond : Condition.t;
  mutable epoch : int;
  mutable target : int;
  mutable n_done : int;
  mutable quit : bool;
  mutable failure : exn option;
}

type t = {
  mode : mode;
  lookahead : int;
  sims : Sim.t array;
  (* Single-producer out-queues: member i appends to out.(i) during its
     window; only the coordinator reads them, at the barrier. *)
  out : post_rec list ref array;
  out_seq : int array;
  mutable clock : int;
  mutable window_end : int;  (* first cycle members may NOT reach posts into *)
  sh : shared;
  mutable workers : unit Domain.t array;
  mutable stall_s : float;
}

(* Microseconds of barrier stall across every instance in the process. *)
let global_stall_us = Atomic.make 0
let total_barrier_stall_s () = float_of_int (Atomic.get global_stall_us) *. 1e-6

let create ?(mode = Seq) ~lookahead ~n () =
  if lookahead < 1 then invalid_arg "Par_sim.create: lookahead must be >= 1";
  if n < 1 then invalid_arg "Par_sim.create: n must be >= 1";
  let sims = Array.init n (fun _ -> Sim.create ()) in
  (* Member 0 is the counted sim; the others would multiply-report the
     same simulated interval. *)
  for i = 1 to n - 1 do
    Sim.set_counted sims.(i) false
  done;
  {
    mode;
    lookahead;
    sims;
    out = Array.init n (fun _ -> ref []);
    out_seq = Array.make n 0;
    clock = 0;
    window_end = 0;
    sh =
      {
        lock = Mutex.create ();
        cond = Condition.create ();
        epoch = 0;
        target = 0;
        n_done = 0;
        quit = false;
        failure = None;
      };
    workers = [||];
    stall_s = 0.0;
  }

let mode t = t.mode
let n_domains t = Array.length t.sims
let lookahead t = t.lookahead
let sim t i = t.sims.(i)
let now t = t.clock
let barrier_stall_s t = t.stall_s

let post t ~src ~dst ~time fn =
  if time < t.window_end then
    invalid_arg
      (Printf.sprintf
         "Par_sim.post: time %d inside the open window (end %d) — lookahead \
          violation from partition %d"
         time t.window_end src);
  let seq = t.out_seq.(src) in
  t.out_seq.(src) <- seq + 1;
  let q = t.out.(src) in
  q := { p_time = time; p_src = src; p_seq = seq; p_dst = dst; p_fn = fn } :: !q

let cmp_post a b =
  let c = compare a.p_time b.p_time in
  if c <> 0 then c
  else
    let c = compare a.p_src b.p_src in
    if c <> 0 then c else compare a.p_seq b.p_seq

(* Barrier merge: gather every member's staged posts, order them
   deterministically, schedule into destinations. Runs on the
   coordinating thread only. *)
let drain t =
  let all = ref [] in
  Array.iter
    (fun q ->
      all := List.rev_append !q !all;
      q := [])
    t.out;
  match !all with
  | [] -> ()
  | all ->
    let arr = Array.of_list all in
    Array.sort cmp_post arr;
    Array.iter (fun p -> Sim.at t.sims.(p.p_dst) p.p_time p.p_fn) arr

(* ------------------------------------------------------------------ *)
(* Par mode: persistent worker per member 1..n-1; member 0 runs on the
   coordinator so an n-way partition uses exactly n domains. *)

let worker t i () =
  let sh = t.sh in
  let my_epoch = ref 0 in
  let rec loop () =
    Mutex.lock sh.lock;
    while sh.epoch = !my_epoch && not sh.quit do
      Condition.wait sh.cond sh.lock
    done;
    if sh.quit then Mutex.unlock sh.lock
    else begin
      my_epoch := sh.epoch;
      let target = sh.target in
      Mutex.unlock sh.lock;
      (try Sim.run_until t.sims.(i) target
       with e ->
         Mutex.lock sh.lock;
         if sh.failure = None then sh.failure <- Some e;
         Mutex.unlock sh.lock);
      Mutex.lock sh.lock;
      sh.n_done <- sh.n_done + 1;
      if sh.n_done = Array.length t.sims - 1 then Condition.broadcast sh.cond;
      Mutex.unlock sh.lock;
      loop ()
    end
  in
  loop ()

let ensure_workers t =
  if Array.length t.workers = 0 && Array.length t.sims > 1 then begin
    t.sh.quit <- false;
    t.workers <-
      Array.init (Array.length t.sims - 1) (fun i -> Domain.spawn (worker t (i + 1)))
  end

let shutdown t =
  if Array.length t.workers > 0 then begin
    let sh = t.sh in
    Mutex.lock sh.lock;
    sh.quit <- true;
    Condition.broadcast sh.cond;
    Mutex.unlock sh.lock;
    Array.iter Domain.join t.workers;
    t.workers <- [||]
  end

let run_window_seq t wend =
  Array.iter (fun s -> Sim.run_until s wend) t.sims

let run_window_par t wend =
  ensure_workers t;
  let sh = t.sh in
  Mutex.lock sh.lock;
  sh.epoch <- sh.epoch + 1;
  sh.target <- wend;
  sh.n_done <- 0;
  Condition.broadcast sh.cond;
  Mutex.unlock sh.lock;
  Sim.run_until t.sims.(0) wend;
  let t0 = Profile.now_s () in
  Mutex.lock sh.lock;
  while sh.n_done < Array.length t.sims - 1 do
    Condition.wait sh.cond sh.lock
  done;
  let failure = sh.failure in
  sh.failure <- None;
  Mutex.unlock sh.lock;
  let stall = Profile.now_s () -. t0 in
  t.stall_s <- t.stall_s +. stall;
  ignore (Atomic.fetch_and_add global_stall_us (int_of_float (stall *. 1e6)));
  match failure with None -> () | Some e -> raise e

let run_until t time =
  if Array.length t.sims = 1 then begin
    (* One partition: no boundaries, no windows. *)
    t.window_end <- time;
    Sim.run_until t.sims.(0) time;
    drain t;
    t.clock <- max t.clock time
  end
  else
    while t.clock < time do
      let wend = min (t.clock + t.lookahead) time in
      t.window_end <- wend;
      (match t.mode with
      | Seq -> run_window_seq t wend
      | Par -> run_window_par t wend);
      drain t;
      t.clock <- wend
    done

let run_for t n = run_until t (t.clock + n)
