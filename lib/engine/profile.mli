(** Opt-in hot-path profiling for the simulation engine.

    When [APIARY_PROF] is set in the environment, {!Sim.add_clocked}
    counts and wall-times every tick, attributed to the component's
    registered name, and tracks how many eligible cycles the
    activity-set scheduler let the component *skip* entirely. The bench
    harness ([--perf]) prints the aggregate so perf work can see
    {e where} cycles go, not just how many were simulated.

    When [APIARY_PROF] is unset, registration returns inert rows and
    the tick path is untouched — profiling costs nothing unless asked
    for.

    Rows are written lock-free by whichever domain is ticking the
    owning simulator (a simulator is ticked by exactly one domain at a
    time); {!snapshot} is meant to be called between runs, from the
    coordinating domain. *)

type row = {
  name : string;
  mutable calls : int;  (** ticks executed *)
  mutable skipped : int;
      (** eligible cycles the ticker was parked and not called *)
  mutable seconds : float;  (** cumulative wall time inside the ticker *)
}

val enabled : unit -> bool
(** True iff [APIARY_PROF] is set (read once, at first use). *)

val register : string -> row
(** Allocate a row under [name] and enlist it in the global registry.
    Rows with the same name are aggregated by {!snapshot}. *)

val now_s : unit -> float
(** Wall clock in seconds (monotonic enough for cumulative deltas). *)

val snapshot : unit -> (string * int * int * float) list
(** [(name, calls, skipped, seconds)] aggregated over same-named rows,
    sorted by cumulative seconds, largest first. *)

val reset : unit -> unit
(** Zero every registered row (keeps registrations). *)
