(** Conservative parallel-in-time coordination over several {!Sim}
    instances (a "parallel discrete-event simulation" scheme, PDES).

    A simulation is partitioned into [n] {e member domains}, one
    {!Sim.t} each. Members tick independently inside a {e
    synchronization window}; the {e lookahead} is the minimum latency of
    any cross-partition interaction. Within a window a member may touch
    only its own simulator's state; anything bound for another partition
    is staged with {!post} and carries an absolute delivery cycle at
    least one lookahead past the poster's own clock (checked at run
    time).

    Every staged post first lands in the destination member's {e
    canonical pending queue}, ordered by [(time, source partition,
    source sequence)], and is flushed into the destination simulator
    only when the window that could execute its cycle is about to open.
    The per-simulator insertion order of cross-partition events is
    therefore a pure function of the inputs — independent of window
    widths, window placement, execution mode and real-time interleaving.

    Execution modes ({!mode}) share that schedule:

    - {b Seq} runs the members round-robin on the calling domain — the
      reference engine;
    - {b Par} runs each member on its own OCaml domain.

    Synchronization disciplines ({!sync}):

    - {b Barrier}: a global barrier per window. With [~adaptive:true]
      the coordinator widens each window to [earliest + lookahead],
      where [earliest] is the soonest any member can next do work
      ({!Sim.next_activity} or its earliest pending post) — sparse
      boundary traffic then costs few barriers, while bursts fall back
      to lookahead-width windows.
    - {b Neighbor}: members advance over the fixed lookahead grid but
      wait only for lattice neighbors [i-1] and [i+1] to have sealed up
      to the window start — no global barrier. Posts are restricted to
      neighbor edges (checked at run time); right for column-striped
      meshes and other line topologies.

    Because members are isolated within a window and delivery order is
    canonical, Par is byte-identical to Seq for fixed seeds under every
    discipline; the cross-check and qcheck property tests in
    [test/test_par.ml] enforce this.

    {!Sim.stop} is not honoured across windows — partitioned runs have
    no global stop line short of the target cycle. *)

module Sim := Sim

type t

type mode =
  | Seq  (** windowed, single OS thread — the reference schedule *)
  | Par  (** one OCaml domain per member *)

type sync =
  | Barrier  (** global barrier per window (optionally adaptive) *)
  | Neighbor  (** neighbor-only waits on the fixed lookahead grid *)

val create :
  ?mode:mode -> ?sync:sync -> ?adaptive:bool -> ?domains:int ->
  lookahead:int -> n:int -> unit -> t
(** [create ~mode ~sync ~adaptive ~lookahead ~n ()] makes [n] member
    simulators (accessible via {!sim}). [lookahead >= 1]; [n >= 1].
    Defaults: [Seq], [Barrier], non-adaptive. [adaptive] only affects
    [Barrier] sync. Member 0 is the {e counted} simulator: only its
    cycles feed {!Sim.total_cycles}, so a partitioned simulation reports
    its simulated time once.

    [domains] caps the OS domains used under [Par] (default [n], clamped
    to [1..n]). Under [Barrier] sync each window's members are pulled
    from a shared work-stealing queue ordered busiest-first (by
    {!Sim.active_tickers}), the coordinator stealing alongside the
    workers — so imbalanced partitions keep every domain fed and [n]
    may exceed the machine's core count. Results are byte-identical for
    every [domains] value. [Neighbor] sync pins one domain per member;
    [Par] + [Neighbor] with [domains < n] raises [Invalid_argument]. *)

val mode : t -> mode
val sync : t -> sync
val adaptive : t -> bool
val n_domains : t -> int

val domains_used : t -> int
(** OS domains a [Par] run will occupy (coordinator included). *)

val lookahead : t -> int

val sim : t -> int -> Sim.t
(** The member simulator for partition [i] (0-based). *)

val now : t -> int
(** Cycles completed by every member (the engine clock). *)

val post : t -> src:int -> dst:int -> time:int -> (unit -> unit) -> unit
(** Stage [fn] to run in the event phase of cycle [time] on member
    [dst]'s simulator. Must be called from member [src]'s execution (its
    staging queue is single-producer), or from the coordinating thread
    between runs. Raises [Invalid_argument] when [time] lands inside the
    poster's open window or under one lookahead of the poster's own
    clock — a lookahead violation — or, under [Neighbor] sync, when
    [dst] is not a lattice neighbor of [src]. *)

val run_until : t -> int -> unit
(** Advance every member to the target cycle, window by window. *)

val run_for : t -> int -> unit

val current_partition : unit -> int option
(** The partition index the calling domain is currently executing, or
    [None] on a coordinating thread between windows. Partition-owned
    state (e.g. the cluster directory's replica caches) asserts against
    this to trip on cross-domain writes in debug builds. *)

val window_stats : t -> int * int * int
(** [(count, min_width, max_width)] over the engine's lifetime — the
    observability hook for the adaptive-window bound properties. *)

val barrier_stall_s : t -> float
(** Wall time the coordinator spent waiting on other members after
    finishing its own member's work (Par mode only; 0 under Seq). *)

val total_barrier_stall_s : unit -> float
(** Process-wide barrier stall across all instances (atomic), for the
    bench harness's perf record. *)

val total_window_stats : unit -> int * int * int
(** [(count, min_width, max_width)] across all instances in the process
    (atomic) — lets the bench harness attribute adaptive-window widths
    per experiment by differencing the count around a run. *)

val shutdown : t -> unit
(** Join the worker domains (Par mode). Idempotent; workers are
    respawned if the instance is run again. Leaked workers are parked in
    a condition wait and die with the process, so forgetting this wastes
    a thread, not correctness. *)
