(** Conservative parallel-in-time coordination over several {!Sim}
    instances (a "parallel discrete-event simulation" scheme, PDES).

    A simulation is partitioned into [n] {e member domains}, one
    {!Sim.t} each. Members tick independently inside a {e
    synchronization window} whose width is the {e lookahead}: the
    minimum latency of any cross-partition interaction. Within a window
    a member may touch only its own simulator's state; anything bound
    for another partition is staged with {!post} and carries an absolute
    delivery cycle at least one window away. At each window barrier the
    coordinator drains every member's staged posts, orders them by
    [(time, source partition, source sequence)], and schedules them into
    the destination simulators — so the merged event order is a pure
    function of the inputs, independent of how member execution
    interleaved in real time.

    Two execution modes share that schedule:

    - {b Seq} runs the members round-robin on the calling domain — the
      reference engine;
    - {b Par} runs each member on its own OCaml domain, with a barrier
      per window.

    Because members are isolated within a window and the merge order is
    fixed, Par is byte-identical to Seq for fixed seeds; the cross-check
    tests in [test/test_par.ml] enforce this. The lookahead rule is
    checked at run time: a post inside the current window raises.

    {!Sim.stop} is not honoured across windows — partitioned runs have
    no global stop line short of the target cycle. *)

module Sim := Sim

type t

type mode =
  | Seq  (** windowed, single OS thread — the reference schedule *)
  | Par  (** one OCaml domain per member, barrier per window *)

val create : ?mode:mode -> lookahead:int -> n:int -> unit -> t
(** [create ~mode ~lookahead ~n ()] makes [n] member simulators
    (accessible via {!sim}) coordinated in windows of [lookahead]
    cycles. [lookahead >= 1]; [n >= 1]. Default mode is [Seq]. Member 0
    is the {e counted} simulator: only its cycles feed
    {!Sim.total_cycles}, so a partitioned simulation reports its
    simulated time once. *)

val mode : t -> mode
val n_domains : t -> int
val lookahead : t -> int

val sim : t -> int -> Sim.t
(** The member simulator for partition [i] (0-based). *)

val now : t -> int
(** Cycles completed by every member (the barrier clock). *)

val post : t -> src:int -> dst:int -> time:int -> (unit -> unit) -> unit
(** Stage [fn] to run in the event phase of cycle [time] on member
    [dst]'s simulator. Must be called from member [src]'s execution (its
    out-queue is single-producer), or from the coordinating thread
    between runs. Raises [Invalid_argument] if [time] lands inside the
    window currently executing — a lookahead violation. *)

val run_until : t -> int -> unit
(** Advance every member to the target cycle, window by window. *)

val run_for : t -> int -> unit

val barrier_stall_s : t -> float
(** Wall time the coordinator spent waiting at window barriers after
    finishing its own member's work (Par mode only; 0 under Seq). *)

val total_barrier_stall_s : unit -> float
(** Process-wide barrier stall across all instances (atomic), for the
    bench harness's perf record. *)

val shutdown : t -> unit
(** Join the worker domains (Par mode). Idempotent; workers are
    respawned if the instance is run again. Leaked workers are parked in
    a condition wait and die with the process, so forgetting this wastes
    a thread, not correctness. *)
