type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

(* SplitMix64 finalizer: two xor-shift-multiply rounds. *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create ~seed = { state = mix (Int64.of_int seed) }

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t = { state = bits64 t }

let int t bound =
  assert (bound > 0);
  let mask = Int64.of_int max_int in
  let v = Int64.to_int (Int64.logand (bits64 t) mask) in
  v mod bound

let int_in t lo hi =
  assert (hi >= lo);
  lo + int t (hi - lo + 1)

let float t =
  (* 53 high bits -> uniform double in [0,1). *)
  let v = Int64.shift_right_logical (bits64 t) 11 in
  Int64.to_float v *. (1.0 /. 9007199254740992.0)

let bool t = Int64.logand (bits64 t) 1L = 1L
let chance t p = float t < p

let exponential t ~mean =
  let u = 1.0 -. float t in
  -.mean *. log u

(* Zipf via the Gray et al. quick method used in YCSB: precompute zeta
   lazily per (n, theta) pair and cache it. The cache is shared across
   sims, so it is mutex-guarded: sims may run on parallel domains and a
   bare Hashtbl would race. The cached value is a pure function of the
   key, so contention only costs time, never determinism. *)
let zeta_cache : (int * float, float) Hashtbl.t = Hashtbl.create 7
let zeta_lock = Mutex.create ()

let zeta n theta =
  Mutex.lock zeta_lock;
  let z =
    match Hashtbl.find_opt zeta_cache (n, theta) with
    | Some z -> z
    | None ->
      let z = ref 0.0 in
      for i = 1 to n do
        z := !z +. (1.0 /. Float.pow (float_of_int i) theta)
      done;
      Hashtbl.replace zeta_cache (n, theta) !z;
      !z
  in
  Mutex.unlock zeta_lock;
  z

let zipf t ~n ~theta =
  assert (n > 0);
  if theta <= 0.0 then int t n
  else begin
    let zetan = zeta n theta in
    let alpha = 1.0 /. (1.0 -. theta) in
    let eta =
      (1.0 -. Float.pow (2.0 /. float_of_int n) (1.0 -. theta))
      /. (1.0 -. (zeta 2 theta /. zetan))
    in
    let u = float t in
    let uz = u *. zetan in
    if uz < 1.0 then 0
    else if uz < 1.0 +. Float.pow 0.5 theta then 1
    else
      let v = float_of_int n *. Float.pow ((eta *. u) -. eta +. 1.0) alpha in
      let k = int_of_float v in
      if k >= n then n - 1 else if k < 0 then 0 else k
  end

let pick t arr =
  assert (Array.length arr > 0);
  arr.(int t (Array.length arr))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let bytes t n =
  let b = Bytes.create n in
  for i = 0 to n - 1 do
    Bytes.set b i (Char.chr (int t 256))
  done;
  b

let bytes_compressible t n ~redundancy =
  let b = Bytes.create n in
  (* Emit runs: with probability [redundancy], repeat the previous byte;
     otherwise draw a fresh byte from a narrowed alphabet. *)
  let alphabet =
    min 256 (max 2 (int_of_float (256.0 *. (1.0 -. redundancy)) + 2))
  in
  let prev = ref (Char.chr (int t alphabet)) in
  for i = 0 to n - 1 do
    if not (chance t redundancy) then prev := Char.chr (int t alphabet);
    Bytes.set b i !prev
  done;
  b
