type row = {
  name : string;
  mutable calls : int;
  mutable skipped : int;
  mutable seconds : float;
}

let on = lazy (Sys.getenv_opt "APIARY_PROF" <> None)
let enabled () = Lazy.force on

(* The registry only grows under the lock; row fields are written by the
   single domain ticking the owning simulator and read by snapshot
   between runs. *)
let lock = Mutex.create ()
let rows : row list ref = ref []

let register name =
  let r = { name; calls = 0; skipped = 0; seconds = 0.0 } in
  Mutex.lock lock;
  rows := r :: !rows;
  Mutex.unlock lock;
  r

let now_s () = Unix.gettimeofday ()

let snapshot () =
  Mutex.lock lock;
  let all = !rows in
  Mutex.unlock lock;
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun r ->
      let c, k, s =
        Option.value ~default:(0, 0, 0.0) (Hashtbl.find_opt tbl r.name)
      in
      Hashtbl.replace tbl r.name (c + r.calls, k + r.skipped, s +. r.seconds))
    all;
  let agg =
    Hashtbl.fold (fun name (c, k, s) acc -> (name, c, k, s) :: acc) tbl []
  in
  List.sort (fun (_, _, _, a) (_, _, _, b) -> compare b a) agg

let reset () =
  Mutex.lock lock;
  List.iter
    (fun r ->
      r.calls <- 0;
      r.skipped <- 0;
      r.seconds <- 0.0)
    !rows;
  Mutex.unlock lock
