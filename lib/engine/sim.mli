(** Hybrid discrete-event / cycle-stepped simulation core.

    The simulator advances in integer cycles. Within one cycle, execution
    proceeds in three deterministic phases:

    + {b events} scheduled for the current cycle run in (time, insertion)
      order — used for timed completions (DRAM, timeouts, link delays);
    + {b tickers} run in registration order — clocked components
      (routers, monitors, accelerators) do their per-cycle work;
    + {b commit} — two-phase state such as {!Fifo} moves staged writes
      into visible state, so phase-2 components never observe values
      written in the same cycle regardless of their relative order.

    This mirrors registered (flip-flop) hardware semantics: every
    producer→consumer hop costs at least one cycle, and results do not
    depend on component registration order.

    {2 Quiescence and idle fast-forward}

    Clocked components registered with {!add_clocked} report an
    {!activity} after each tick. When a cycle ends with every clocked
    component idle, nothing committed, and no always-run committers
    registered, the simulator is {e quiescent}: ticking further cycles
    would be a pure no-op until the next heap event (or the earliest
    [Idle_until] wake-up) fires. [run_until] then jumps the clock
    directly to that point instead of stepping through dead cycles.
    Skipped cycles are observationally identical to executed ones, so a
    run remains a pure function of its inputs (bit-identical results,
    same event order, same RNG streams).

    The contract for an [Idle] report: until the next event phase runs or
    a two-phase commit occurs, calling this ticker again would change no
    state. Components that consume entropy or count every cycle (traffic
    generators, watchdogs with pending work) must report [Busy]. *)

type t

(** What a clocked component reports after its tick. *)
type activity =
  | Busy  (** Did work, or may do work next cycle — keep stepping. *)
  | Idle
      (** No work possible until an event fires or a FIFO commit occurs;
          the simulator may fast-forward past this component. *)
  | Idle_until of int
      (** Like [Idle], but the component can act on its own at the given
          cycle (timer expiry, token-bucket refill) even without external
          stimulus. *)

val create : unit -> t

val now : t -> int
(** Current cycle. *)

val at : t -> int -> (unit -> unit) -> unit
(** [at t time f] runs [f] in the event phase of cycle [time]. A [time]
    in the past raises [Invalid_argument]. A [time] equal to the current
    cycle is honoured while that cycle's event phase is still open
    (before the cycle starts executing, or from within the event phase);
    once the event phase has completed — i.e. when scheduling from a
    ticker or the commit phase — it is deferred to the next cycle. *)

val after : t -> int -> (unit -> unit) -> unit
(** [after t d f] is exactly [at t (now t + d) f]; [d >= 0]. In
    particular [after t 0 f] follows {!at}'s current-cycle rule: it runs
    this cycle if the event phase is still open, otherwise next cycle. *)

val every : t -> ?start:int -> int -> (unit -> unit) -> unit
(** [every t ~start period f] runs [f] in the event phase each [period]
    cycles, first at cycle [start] (default: next multiple of [period]). *)

val add_clocked : ?name:string -> t -> (unit -> activity) -> unit
(** Register a per-cycle clocked component (phase 2). The callback runs
    every executed cycle and reports its {!activity}; reports drive the
    idle fast-forward (see module docs). [name] labels the component in
    {!Profile} output when [APIARY_PROF] is set; when profiling is off
    the name is discarded and the tick path is unchanged. *)

val add_ticker : ?name:string -> t -> (unit -> unit) -> unit
(** [add_ticker t f] is [add_clocked t (fun () -> f (); Busy)]: a legacy
    always-active ticker. Its presence disables idle fast-forward, since
    the simulator must assume it does work every cycle. *)

val add_committer : t -> (unit -> unit) -> unit
(** Register an always-run commit step (phase 3). Prefer {!mark_dirty}:
    a registered committer runs every cycle {e and} disables idle
    fast-forward. *)

val mark_dirty : t -> (unit -> unit) -> unit
(** [mark_dirty t commit] schedules [commit] to run once, in this
    cycle's commit phase (or the next commit phase to execute, if called
    outside a cycle). Two-phase containers call this on their first
    staged write of a cycle; the commit phase then walks only dirty
    containers — O(containers written) rather than O(all containers).
    [commit] must not stage new two-phase writes. *)

val wake : t -> unit
(** Clear the quiescent flag. Components mutated directly from outside
    the simulation loop (e.g. {!Nic.send} between runs) call this so the
    next [run_until] cannot fast-forward past the new work. FIFO pushes
    wake the simulator automatically via {!mark_dirty}. *)

val step : t -> unit
(** Advance exactly one cycle (never fast-forwards). *)

val run_until : t -> int -> unit
(** Run cycles until [now t = time] (exclusive of the target cycle's
    execution), fast-forwarding across quiescent gaps. *)

val run_for : t -> int -> unit
(** [run_for t n] advances [n] cycles. *)

val stop : t -> unit
(** Request that the enclosing [run_until]/[run_for] return at the end of
    the current cycle. *)

val stopped : t -> bool

val pending_events : t -> int
(** Number of scheduled future events (for tests). *)

val next_activity : t -> int
(** Earliest cycle at which the simulator can next do work: [now t]
    unless every clocked component is quiescent, in which case the next
    heap event or [Idle_until] wake-up ([max_int] when neither exists).
    {!Par_sim}'s adaptive windows widen to this bound plus the
    lookahead. *)

val cycles_skipped : t -> int
(** Cycles fast-forwarded (not executed) since creation — for tests and
    perf reporting. *)

val total_cycles : unit -> int
(** Simulated cycles advanced across {e all} counted simulator instances
    in the process (atomic; safe under domain-parallel sweeps). Executed
    and skipped cycles both count: this is simulated time, the numerator
    of cycles/second. *)

val total_skipped : unit -> int
(** Cycles fast-forwarded (not executed) across all counted instances —
    with {!total_cycles}, gives the process-wide skipped-cycle ratio. *)

val set_counted : t -> bool -> unit
(** Whether this instance's cycles feed {!total_cycles}/{!total_skipped}
    (default [true]). {!Par_sim} marks all but one member domain
    uncounted so a partitioned simulation counts its simulated time
    once, not once per domain. *)
