(** Hybrid discrete-event / cycle-stepped simulation core.

    The simulator advances in integer cycles. Within one cycle, execution
    proceeds in three deterministic phases:

    + {b events} scheduled for the current cycle run in (time, insertion)
      order — used for timed completions (DRAM, timeouts, link delays);
    + {b tickers} run in registration order — clocked components
      (routers, monitors, accelerators) do their per-cycle work;
    + {b committers} run in registration order — two-phase state such as
      {!Fifo} moves staged writes into visible state, so phase-2 components
      never observe values written in the same cycle regardless of their
      relative order.

    This mirrors registered (flip-flop) hardware semantics: every
    producer→consumer hop costs at least one cycle, and results do not
    depend on component registration order. *)

type t

val create : unit -> t

val now : t -> int
(** Current cycle. *)

val at : t -> int -> (unit -> unit) -> unit
(** [at t time f] runs [f] in the event phase of cycle [time].
    [time] must not be in the past. *)

val after : t -> int -> (unit -> unit) -> unit
(** [after t d f] is [at t (now t + d) f]; [d >= 0]. A delay of [0] runs
    in the event phase of the current cycle if that phase has not finished,
    otherwise in the next cycle. *)

val every : t -> ?start:int -> int -> (unit -> unit) -> unit
(** [every t ~start period f] runs [f] in the event phase each [period]
    cycles, first at cycle [start] (default: next multiple of [period]). *)

val add_ticker : t -> (unit -> unit) -> unit
(** Register a per-cycle ticker (phase 2). *)

val add_committer : t -> (unit -> unit) -> unit
(** Register a per-cycle committer (phase 3). *)

val step : t -> unit
(** Advance exactly one cycle. *)

val run_until : t -> int -> unit
(** Run cycles until [now t = time] (exclusive of the target cycle's
    execution). *)

val run_for : t -> int -> unit
(** [run_for t n] executes [n] cycles. *)

val stop : t -> unit
(** Request that the enclosing [run_until]/[run_for] return at the end of
    the current cycle. *)

val stopped : t -> bool

val pending_events : t -> int
(** Number of scheduled future events (for tests). *)
