(** Hybrid discrete-event / cycle-stepped simulation core.

    The simulator advances in integer cycles. Within one cycle, execution
    proceeds in three deterministic phases:

    + {b events} scheduled for the current cycle run in (time, insertion)
      order — used for timed completions (DRAM, timeouts, link delays);
    + {b tickers} run in registration order — clocked components
      (routers, monitors, accelerators) do their per-cycle work;
    + {b commit} — two-phase state such as {!Fifo} moves staged writes
      into visible state, so phase-2 components never observe values
      written in the same cycle regardless of their relative order.

    This mirrors registered (flip-flop) hardware semantics: every
    producer→consumer hop costs at least one cycle, and results do not
    depend on component registration order.

    {2 The activity-set scheduler}

    Clocked components report an {!activity} after each tick. A [Busy]
    ticker stays in the {e active set} and runs again next cycle. A
    ticker reporting [Idle]/[Idle_until] is {e parked}: it is not called
    at all — zero cost per cycle — until something re-arms it:

    - its [Idle_until] wake cycle is reached (a wake-heap fires it);
    - a {!Fifo} it consumes commits or receives an injected entry (the
      FIFO's registered owner handle is re-armed);
    - a component re-arms it explicitly via {!rearm} (e.g. NIC send,
      monitor ingress), or {!wake} re-arms everything.

    Re-arm timing preserves the flat-scheduler semantics exactly: a
    re-arm from the event phase runs the ticker the same cycle; a re-arm
    from an earlier-indexed ticker runs it the same cycle (it would have
    observed the write anyway); a re-arm from a later-indexed ticker or
    the commit phase runs it next cycle (the write was not visible to it
    this cycle under two-phase rules).

    Tickers can be grouped into {e subregions} (a board's tile quadrant,
    a mesh column) via the [?region] argument; each region keeps an
    armed-ticker count whose zero/non-zero state is the aggregate
    activity bit, readable via {!region_active} and bulk re-armable via
    {!rearm_region}. A fully parked region costs nothing per cycle even
    while the rest of the board runs cycle-by-cycle.

    {2 Quiescence and idle fast-forward}

    When a cycle ends with the active set empty, nothing committed, and
    no always-run committers registered, the simulator is {e quiescent}:
    ticking further cycles would be a pure no-op until the next heap
    event or the earliest [Idle_until] wake fires. [run_until] then
    jumps the clock directly to that point instead of stepping through
    dead cycles. Skipped and parked cycles are observationally identical
    to executed ones, so a run remains a pure function of its inputs
    (bit-identical results, same event order, same RNG streams).

    The contract for an [Idle] report: until this ticker is re-armed
    (owner-FIFO commit/inject, explicit {!rearm}/{!wake}, or its
    [Idle_until] cycle), calling it again would change no state.
    Components that consume entropy or count every cycle must either
    report [Busy] or precompute their future (see {!Traffic}) and report
    an honest [Idle_until]. *)

type t

(** What a clocked component reports after its tick. *)
type activity =
  | Busy  (** Did work, or may do work next cycle — keep stepping. *)
  | Idle
      (** No work possible until re-armed (owner-FIFO commit/inject,
          explicit {!rearm}, {!wake}); the scheduler parks this
          component and stops calling it. *)
  | Idle_until of int
      (** Like [Idle], but the component can act on its own at the given
          cycle (timer expiry, token-bucket refill, precomputed
          injection) even without external stimulus. *)

type handle
(** Identifies a registered clocked component for re-arming. *)

val no_handle : handle
(** Inert handle: {!rearm} on it is a no-op. Lets producers hold an
    optional owner without boxing. *)

val create : unit -> t

val now : t -> int
(** Current cycle. *)

val at : t -> int -> (unit -> unit) -> unit
(** [at t time f] runs [f] in the event phase of cycle [time]. A [time]
    in the past raises [Invalid_argument]. A [time] equal to the current
    cycle is honoured while that cycle's event phase is still open
    (before the cycle starts executing, or from within the event phase);
    once the event phase has completed — i.e. when scheduling from a
    ticker or the commit phase — it is deferred to the next cycle. *)

val after : t -> int -> (unit -> unit) -> unit
(** [after t d f] is exactly [at t (now t + d) f]; [d >= 0]. In
    particular [after t 0 f] follows {!at}'s current-cycle rule: it runs
    this cycle if the event phase is still open, otherwise next cycle. *)

val every : t -> ?start:int -> int -> (unit -> unit) -> unit
(** [every t ~start period f] runs [f] in the event phase each [period]
    cycles, first at cycle [start] (default: next multiple of [period]). *)

val add_clocked : ?name:string -> ?region:int -> t -> (unit -> activity) -> unit
(** Register a per-cycle clocked component (phase 2). The callback runs
    every cycle while in the active set and reports its {!activity};
    [Idle]/[Idle_until] reports park it (see module docs). [name] labels
    the component in {!Profile} output when [APIARY_PROF] is set; when
    profiling is off the name is discarded and the tick path is
    unchanged. [region] attaches the ticker to a subregion created with
    {!new_region} (default: region 0, always present). *)

val add_clocked_h :
  ?name:string -> ?region:int -> t -> (unit -> activity) -> handle
(** Like {!add_clocked} but returns the component's {!handle} so
    producers (FIFOs, NIC send paths, monitor ingress) can re-arm it. *)

val add_ticker : ?name:string -> t -> (unit -> unit) -> unit
(** [add_ticker t f] is [add_clocked t (fun () -> f (); Busy)]: a legacy
    always-active ticker. Its presence disables idle fast-forward, since
    the simulator must assume it does work every cycle. *)

val rearm : t -> handle -> unit
(** Put a parked component back in the active set ({!no_handle} and
    already-armed handles are no-ops). Timing follows the re-arm rules
    in the module docs; any pending [Idle_until] wake is superseded. *)

val new_region : t -> int
(** Allocate a subregion id for [?region] at registration. Region 0
    exists from creation and is the default. *)

val n_regions : t -> int

val region_active : t -> int -> int
(** Number of armed (active-set) tickers in the region — the region's
    aggregate activity bit is [region_active t r > 0]. *)

val rearm_region : t -> int -> unit
(** Re-arm every parked ticker in the region (bulk {!rearm}). *)

val active_tickers : t -> int
(** Current size of the active set (armed tickers scheduled for the next
    executed cycle). {!Par_sim}'s work stealing orders partitions by
    this load estimate. *)

val add_committer : t -> (unit -> unit) -> unit
(** Register an always-run commit step (phase 3). Prefer {!mark_dirty}:
    a registered committer runs every cycle {e and} disables idle
    fast-forward. *)

val mark_dirty : t -> (unit -> unit) -> unit
(** [mark_dirty t commit] schedules [commit] to run once, in this
    cycle's commit phase (or the next commit phase to execute, if called
    outside a cycle). Two-phase containers call this on their first
    staged write of a cycle; the commit phase then walks only dirty
    containers — O(containers written) rather than O(all containers).
    [commit] must not stage new two-phase writes (it may {!rearm} parked
    consumers, which lands next cycle). *)

val wake : t -> unit
(** Re-arm {e every} parked component and clear the quiescent flag.
    Components mutated directly from outside the simulation loop call
    this (or better, {!rearm} on the specific handle) so the next
    [run_until] cannot fast-forward past the new work. FIFO pushes wake
    the simulator automatically via {!mark_dirty}. *)

val step : t -> unit
(** Advance exactly one cycle (never fast-forwards). *)

val run_until : t -> int -> unit
(** Run cycles until [now t = time] (exclusive of the target cycle's
    execution), fast-forwarding across quiescent gaps. *)

val run_for : t -> int -> unit
(** [run_for t n] advances [n] cycles. *)

val stop : t -> unit
(** Request that the enclosing [run_until]/[run_for] return at the end of
    the current cycle. *)

val stopped : t -> bool

val pending_events : t -> int
(** Number of scheduled future events (for tests). *)

val next_activity : t -> int
(** Earliest cycle at which the simulator can next do work: [now t]
    unless every clocked component is quiescent, in which case the next
    heap event or [Idle_until] wake-up ([max_int] when neither exists).
    {!Par_sim}'s adaptive windows widen to this bound plus the
    lookahead. *)

val cycles_skipped : t -> int
(** Cycles fast-forwarded (not executed) since creation — for tests and
    perf reporting. *)

val tick_counts : t -> int * int
(** [(active, skipped)] ticker-call counts for this instance: calls
    actually executed vs calls the activity-set scheduler avoided
    (parked tickers during executed cycles, plus every ticker during
    fast-forwarded cycles). *)

val total_cycles : unit -> int
(** Simulated cycles advanced across {e all} counted simulator instances
    in the process (atomic; safe under domain-parallel sweeps). Executed
    and skipped cycles both count: this is simulated time, the numerator
    of cycles/second. *)

val total_skipped : unit -> int
(** Cycles fast-forwarded (not executed) across all counted instances —
    with {!total_cycles}, gives the process-wide skipped-cycle ratio. *)

val total_active_ticks : unit -> int
(** Ticker calls executed across all instances (flushed at each
    [run_until] exit). Not [counted]-gated: every partition member's
    tick work is real and counted once. *)

val total_skipped_ticks : unit -> int
(** Ticker calls avoided by the activity-set scheduler across all
    instances — with {!total_active_ticks}, gives the idle-skipping
    ratio the perf guard watches. *)

val set_counted : t -> bool -> unit
(** Whether this instance's cycles feed {!total_cycles}/{!total_skipped}
    (default [true]). {!Par_sim} marks all but one member domain
    uncounted so a partitioned simulation counts its simulated time
    once, not once per domain. *)
