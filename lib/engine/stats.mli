(** Measurement primitives: counters, gauges, log-bucketed histograms and
    windowed time series.

    Histograms use logarithmic bucketing with linear sub-buckets (HdrHistogram
    style) so percentiles over latencies spanning several orders of magnitude
    stay within ~3% relative error at O(1) memory. *)

(** Monotonic event counter. *)
module Counter : sig
  type t

  val create : string -> t
  val name : t -> string
  val incr : t -> unit
  val add : t -> int -> unit
  val value : t -> int
  val reset : t -> unit
end

(** Last-value gauge with min/max tracking. *)
module Gauge : sig
  type t

  val create : string -> t
  val name : t -> string
  val set : t -> float -> unit
  val value : t -> float
  val min : t -> float
  val max : t -> float

  val reset : t -> unit
  (** Back to the just-created state: value 0, min/max cleared. *)
end

(** Log-bucketed histogram of non-negative integer samples. *)
module Histogram : sig
  type t

  val create : string -> t
  val name : t -> string
  val record : t -> int -> unit
  (** Record one sample; negative samples are clamped to 0. *)

  val record_n : t -> int -> int -> unit
  (** [record_n h v n] records [v] with weight [n]. *)

  val count : t -> int
  val sum : t -> int
  val mean : t -> float
  val max_value : t -> int
  val min_value : t -> int
  (** Smallest recorded sample ([max_int] when empty). *)

  val percentile : t -> float -> int
  (** [percentile h p] for [p] in [\[0,100\]]. Returns 0 when empty. *)

  val count_le : t -> int -> int
  (** Samples recorded at or below [v], at bucket resolution (≤ ~3%
      relative slack, matching {!percentile}) — the cumulative read SLO
      attainment needs. *)

  val bucket_of : int -> int
  (** Bucket index a sample lands in (negative samples clamp to 0) —
      the grid exemplar stores share so retained samples align with the
      buckets percentiles are computed from. *)

  val bucket_value : int -> int
  (** Representative (midpoint) value of a bucket index. *)

  val bucket_count : int
  (** Number of buckets in the fixed grid. *)

  val nonzero_buckets : t -> (int * int) list
  (** Occupied [(bucket, count)] pairs, ascending bucket order — the
      compact view telemetry agents diff between harvests. *)

  val stddev : t -> float
  val reset : t -> unit

  val merge_into : src:t -> dst:t -> unit
  (** Add all of [src]'s buckets into [dst]. *)

  val pp_summary : Format.formatter -> t -> unit
  (** One-line [name count mean p50 p90 p99 max] summary. *)
end

(** Fixed-interval time series, e.g. throughput per epoch. *)
module Series : sig
  type t

  val create : string -> interval:int -> t
  (** [interval] is the bucket width in simulator cycles. *)

  val record : t -> now:int -> float -> unit
  (** Accumulate a value into the bucket covering cycle [now]. *)

  val buckets : t -> (int * float) list
  (** [(bucket_start_cycle, accumulated)] pairs, oldest first. *)
end
