type event = { time : int; seq : int; fn : unit -> unit }

type t = {
  mutable clock : int;
  events : event Heap.t;
  mutable next_seq : int;
  mutable tickers : (unit -> unit) array;
  mutable n_tickers : int;
  mutable committers : (unit -> unit) array;
  mutable n_committers : int;
  mutable stop_requested : bool;
  mutable in_event_phase : bool;
}

let cmp_event a b =
  let c = compare a.time b.time in
  if c <> 0 then c else compare a.seq b.seq

let create () =
  {
    clock = 0;
    events = Heap.create ~cmp:cmp_event;
    next_seq = 0;
    tickers = Array.make 8 (fun () -> ());
    n_tickers = 0;
    committers = Array.make 8 (fun () -> ());
    n_committers = 0;
    stop_requested = false;
    in_event_phase = false;
  }

let now t = t.clock

let at t time fn =
  if time < t.clock || (time = t.clock && not t.in_event_phase) then
    invalid_arg
      (Printf.sprintf "Sim.at: time %d not schedulable at cycle %d" time t.clock);
  Heap.push t.events { time; seq = t.next_seq; fn };
  t.next_seq <- t.next_seq + 1

let after t d fn =
  assert (d >= 0);
  let time = t.clock + d in
  let time = if time = t.clock && not t.in_event_phase then time + 1 else time in
  Heap.push t.events { time; seq = t.next_seq; fn };
  t.next_seq <- t.next_seq + 1

let every t ?start period fn =
  assert (period > 0);
  let first =
    match start with
    | Some s -> s
    | None -> (t.clock / period * period) + period
  in
  let rec arm time =
    at t time (fun () ->
        fn ();
        arm (time + period))
  in
  arm (max first (t.clock + 1))

let push_fn arr n fn =
  let arr = if n >= Array.length arr then begin
      let narr = Array.make (Array.length arr * 2) (fun () -> ()) in
      Array.blit arr 0 narr 0 n;
      narr
    end else arr
  in
  arr.(n) <- fn;
  arr

let add_ticker t fn =
  t.tickers <- push_fn t.tickers t.n_tickers fn;
  t.n_tickers <- t.n_tickers + 1

let add_committer t fn =
  t.committers <- push_fn t.committers t.n_committers fn;
  t.n_committers <- t.n_committers + 1

let run_due_events t =
  t.in_event_phase <- true;
  let rec loop () =
    match Heap.peek t.events with
    | Some e when e.time = t.clock ->
      ignore (Heap.pop t.events);
      e.fn ();
      loop ()
    | Some e when e.time < t.clock -> assert false
    | Some _ | None -> ()
  in
  loop ();
  t.in_event_phase <- false

let step t =
  run_due_events t;
  for i = 0 to t.n_tickers - 1 do
    t.tickers.(i) ()
  done;
  for i = 0 to t.n_committers - 1 do
    t.committers.(i) ()
  done;
  t.clock <- t.clock + 1

let stop t = t.stop_requested <- true
let stopped t = t.stop_requested

let run_until t time =
  t.stop_requested <- false;
  while t.clock < time && not t.stop_requested do
    (* Fast-forward across idle gaps when there are no clocked components. *)
    if t.n_tickers = 0 && t.n_committers = 0 then begin
      let next =
        match Heap.peek t.events with Some e -> e.time | None -> time
      in
      if next > t.clock then t.clock <- min next time
    end;
    if t.clock < time then step t
  done

let run_for t n = run_until t (t.clock + n)
let pending_events t = Heap.length t.events
