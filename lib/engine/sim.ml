type activity = Busy | Idle | Idle_until of int

type event = { time : int; seq : int; fn : unit -> unit }

type handle = int

let no_handle = -1

(* A clocked component under the activity-set scheduler. [armed] means
   the ticker is scheduled to run (it is in the run list, the rearm
   staging area, or the current-cycle rearm heap); parked tickers carry
   their pending [Idle_until] wake in [wake] ([max_int] = none), which
   doubles as the staleness check for lazy deletion from the time
   heap. *)
type ticker = {
  fn : unit -> activity;
  region : int;
  row : Profile.row option;
  reg_clock : int;  (* first cycle this ticker was eligible to run *)
  mutable armed : bool;
  mutable wake : int;
}

type t = {
  mutable clock : int;
  events : event Heap.t;
  mutable next_seq : int;
  mutable tickers : ticker array;
  mutable n_tickers : int;
  (* Armed tickers scheduled for the next executed cycle, as a sorted
     array of indices. The tick loop merges [run] with [wake_now] in
     ascending index order and double-buffers Busy survivors into
     [run_next], which therefore stays sorted. *)
  mutable run : int array;
  mutable n_run : int;
  mutable run_next : int array;
  (* Re-arms that must take effect on the cycle currently being built:
     [wake_next] is the staging area drained into the [wake_now] heap at
     the top of each tick loop; during the loop, re-arms targeting a
     not-yet-reached index are pushed straight into [wake_now] so they
     still run this cycle (matching the flat scheduler, where a later
     ticker always observed an earlier ticker's writes in-cycle). *)
  wake_now : int Heap.t;
  mutable wake_next : int array;
  mutable n_wake_next : int;
  (* Pending [Idle_until] wakes as [(wake_cycle, idx)]; entries are
     lazily discarded when the ticker was re-armed (or re-parked) in the
     meantime. *)
  time_heap : (int * int) Heap.t;
  mutable committers : (unit -> unit) array;
  mutable n_committers : int;
  mutable dirty_fns : (unit -> unit) array;
  mutable n_dirty : int;
  mutable stop_requested : bool;
  mutable in_event_phase : bool;
  mutable in_tick_phase : bool;
  (* Index of the ticker currently executing, -1 outside the tick loop;
     [self_rearm] records a re-arm a ticker aimed at itself mid-tick so
     an Idle report afterwards does not lose the wake-up. *)
  mutable cur_idx : int;
  mutable self_rearm : bool;
  mutable quiescent : bool;
  mutable skipped : int;
  mutable counted : bool;
  (* Subregions: armed-ticker count per region (the aggregate activity
     bit is [count > 0]) plus the member list for bulk re-arm. *)
  mutable region_armed : int array;
  mutable region_members : int list array;
  mutable n_regions : int;
  (* Tick accounting: ticker calls actually executed, plus enough state
     to derive skipped ticks in O(1) and flush process-wide deltas. *)
  mutable active_ticks : int;
  mutable sum_reg_clock : int;
  mutable flushed_active : int;
  mutable flushed_skipped_ticks : int;
  profiling : bool;
}

let cmp_event a b =
  let c = compare a.time b.time in
  if c <> 0 then c else compare a.seq b.seq

let cmp_wake (w1, i1) (w2, i2) =
  let c = compare (w1 : int) w2 in
  if c <> 0 then c else compare (i1 : int) i2

let cmp_int (a : int) (b : int) = compare a b

(* Total simulated cycles advanced (executed + fast-forwarded) across all
   simulator instances, including instances driven from other domains —
   the numerator of the bench harness's cycles/second figure. *)
let global = Atomic.make 0
let total_cycles () = Atomic.get global

(* Fast-forwarded (not executed) cycles across all counted instances —
   the numerator of the skipped-cycle ratio in perf reports. *)
let global_skipped = Atomic.make 0
let total_skipped () = Atomic.get global_skipped

(* Ticker calls executed vs ticker calls the activity-set scheduler
   avoided, across all instances. Unlike the cycle counters these are
   not [counted]-gated: each member of a partitioned run does real,
   distinct tick work. *)
let global_active_ticks = Atomic.make 0
let total_active_ticks () = Atomic.get global_active_ticks
let global_skipped_ticks = Atomic.make 0
let total_skipped_ticks () = Atomic.get global_skipped_ticks

let dummy_ticker =
  {
    fn = (fun () -> Idle);
    region = 0;
    row = None;
    reg_clock = 0;
    armed = false;
    wake = max_int;
  }

let create () =
  {
    clock = 0;
    events = Heap.create ~cmp:cmp_event;
    next_seq = 0;
    tickers = Array.make 8 dummy_ticker;
    n_tickers = 0;
    run = Array.make 8 0;
    n_run = 0;
    run_next = Array.make 8 0;
    wake_now = Heap.create ~cmp:cmp_int;
    wake_next = Array.make 8 0;
    n_wake_next = 0;
    time_heap = Heap.create ~cmp:cmp_wake;
    committers = Array.make 8 (fun () -> ());
    n_committers = 0;
    dirty_fns = Array.make 8 (fun () -> ());
    n_dirty = 0;
    stop_requested = false;
    in_event_phase = false;
    in_tick_phase = false;
    cur_idx = -1;
    self_rearm = false;
    quiescent = false;
    skipped = 0;
    counted = true;
    region_armed = Array.make 4 0;
    region_members = Array.make 4 [];
    n_regions = 1;
    active_ticks = 0;
    sum_reg_clock = 0;
    flushed_active = 0;
    flushed_skipped_ticks = 0;
    profiling = Profile.enabled ();
  }

let now t = t.clock
let cycles_skipped t = t.skipped
let tick_counts t =
  (t.active_ticks, (t.n_tickers * t.clock) - t.sum_reg_clock - t.active_ticks)

(* A Par_sim partition counts its cycles once, through its coordinator,
   not once per member domain. *)
let set_counted t b = t.counted <- b

(* A target equal to the current cycle is kept only while that cycle's
   event phase is still open (it has not started, or we are inside it);
   from the ticker/commit phases the event phase has already passed, so
   the event is deferred to the next cycle. *)
let schedule_time t time =
  if time = t.clock && t.in_tick_phase then time + 1 else time

let at t time fn =
  if time < t.clock then
    invalid_arg
      (Printf.sprintf "Sim.at: time %d not schedulable at cycle %d" time t.clock);
  Heap.push t.events { time = schedule_time t time; seq = t.next_seq; fn };
  t.next_seq <- t.next_seq + 1

let after t d fn =
  assert (d >= 0);
  at t (t.clock + d) fn

let every t ?start period fn =
  assert (period > 0);
  let first =
    match start with
    | Some s -> s
    | None -> (t.clock / period * period) + period
  in
  let rec arm time =
    at t time (fun () ->
        fn ();
        arm (time + period))
  in
  arm (max first (t.clock + 1))

let push_fn arr n fn =
  let arr = if n >= Array.length arr then begin
      let narr = Array.make (Array.length arr * 2) fn in
      Array.blit arr 0 narr 0 n;
      narr
    end else arr
  in
  arr.(n) <- fn;
  arr

let push_wake_next t idx =
  if t.n_wake_next >= Array.length t.wake_next then begin
    let narr = Array.make (Array.length t.wake_next * 2) 0 in
    Array.blit t.wake_next 0 narr 0 t.n_wake_next;
    t.wake_next <- narr
  end;
  t.wake_next.(t.n_wake_next) <- idx;
  t.n_wake_next <- t.n_wake_next + 1

let bump_region t r d = t.region_armed.(r) <- t.region_armed.(r) + d

(* ------------------------------------------------------------------ *)
(* Subregions. *)

let new_region t =
  let r = t.n_regions in
  if r >= Array.length t.region_armed then begin
    let na = Array.make (Array.length t.region_armed * 2) 0 in
    Array.blit t.region_armed 0 na 0 t.n_regions;
    t.region_armed <- na;
    let nm = Array.make (Array.length t.region_members * 2) [] in
    Array.blit t.region_members 0 nm 0 t.n_regions;
    t.region_members <- nm
  end;
  t.n_regions <- r + 1;
  r

let n_regions t = t.n_regions
let region_active t r = t.region_armed.(r)

(* ------------------------------------------------------------------ *)
(* Registration and re-arming. *)

let add_clocked_h ?(name = "clocked") ?(region = 0) t fn =
  if region < 0 || region >= t.n_regions then
    invalid_arg "Sim.add_clocked_h: unknown region";
  let row = if t.profiling then Some (Profile.register name) else None in
  (* A ticker registered during the event phase (or between runs) is
     eligible from the current cycle — the flat scheduler's snapshot was
     taken after events — while one registered from the tick/commit
     phases starts next cycle. The wake staging area reproduces both:
     it is drained at the top of the tick loop. *)
  let reg_clock = if t.in_tick_phase then t.clock + 1 else t.clock in
  let tk = { fn; region; row; reg_clock; armed = true; wake = max_int } in
  let idx = t.n_tickers in
  t.tickers <- push_fn t.tickers idx tk;
  t.n_tickers <- idx + 1;
  t.sum_reg_clock <- t.sum_reg_clock + reg_clock;
  t.region_members.(region) <- idx :: t.region_members.(region);
  bump_region t region 1;
  push_wake_next t idx;
  t.quiescent <- false;
  idx

let add_clocked ?name ?region t fn = ignore (add_clocked_h ?name ?region t fn)

let add_ticker ?name t fn = add_clocked ?name t (fun () -> fn (); Busy)

let rearm t h =
  if h >= 0 then begin
    let tk = t.tickers.(h) in
    if tk.armed then begin
      if h = t.cur_idx then t.self_rearm <- true
    end
    else begin
      tk.armed <- true;
      tk.wake <- max_int;
      bump_region t tk.region 1;
      t.quiescent <- false;
      (* During the tick loop a re-arm aimed past the merge cursor still
         runs this cycle; everything else (event phase, commit phase,
         already-passed indices, external callers) lands next cycle —
         exactly the visibility the flat per-cycle loop gave. *)
      if t.cur_idx >= 0 && h > t.cur_idx then Heap.push t.wake_now h
      else push_wake_next t h
    end
  end

let rearm_region t r =
  List.iter (fun idx -> rearm t idx) t.region_members.(r)

let wake t =
  for idx = 0 to t.n_tickers - 1 do
    rearm t idx
  done;
  t.quiescent <- false

let active_tickers t = t.n_run + t.n_wake_next + Heap.length t.wake_now

let add_committer t fn =
  t.committers <- push_fn t.committers t.n_committers fn;
  t.n_committers <- t.n_committers + 1;
  t.quiescent <- false

let mark_dirty t fn =
  t.dirty_fns <- push_fn t.dirty_fns t.n_dirty fn;
  t.n_dirty <- t.n_dirty + 1;
  t.quiescent <- false

(* ------------------------------------------------------------------ *)
(* Stepping. *)

let run_due_events t =
  t.in_event_phase <- true;
  let rec loop () =
    match Heap.peek t.events with
    | Some e when e.time = t.clock ->
      ignore (Heap.pop t.events);
      e.fn ();
      loop ()
    | Some e when e.time < t.clock -> assert false
    | Some _ | None -> ()
  in
  loop ();
  t.in_event_phase <- false

(* Arm every parked ticker whose [Idle_until] wake is due, discarding
   stale heap entries (ticker re-armed or re-parked since the push). *)
let drain_due_wakes t =
  let continue_ = ref true in
  while !continue_ do
    match Heap.peek t.time_heap with
    | Some (w, idx) when w <= t.clock ->
      ignore (Heap.pop t.time_heap);
      let tk = t.tickers.(idx) in
      if (not tk.armed) && tk.wake = w then begin
        tk.armed <- true;
        tk.wake <- max_int;
        bump_region t tk.region 1;
        push_wake_next t idx
      end
    | _ -> continue_ := false
  done

(* Earliest valid [Idle_until] wake, pruning stale entries. *)
let rec next_time_wake t =
  match Heap.peek t.time_heap with
  | None -> max_int
  | Some (w, idx) ->
    let tk = t.tickers.(idx) in
    if tk.armed || tk.wake <> w then begin
      ignore (Heap.pop t.time_heap);
      next_time_wake t
    end
    else w

let run_ticker tk =
  match tk.row with
  | None -> tk.fn ()
  | Some r ->
    let t0 = Profile.now_s () in
    let a = tk.fn () in
    r.Profile.calls <- r.Profile.calls + 1;
    r.Profile.seconds <- r.Profile.seconds +. (Profile.now_s () -. t0);
    a

let step t =
  drain_due_wakes t;
  run_due_events t;
  t.in_tick_phase <- true;
  (* Stage pending re-arms for this cycle. *)
  for k = 0 to t.n_wake_next - 1 do
    Heap.push t.wake_now t.wake_next.(k)
  done;
  t.n_wake_next <- 0;
  (* Only tickers present at loop entry can run this cycle, so the
     survivor buffer needs capacity for exactly those. *)
  if Array.length t.run_next < t.n_tickers then
    t.run_next <- Array.make (max 8 (2 * t.n_tickers)) 0;
  let run = t.run and n = t.n_run in
  let nxt = t.run_next in
  let n_nxt = ref 0 in
  let ncalled = ref 0 in
  let i = ref 0 in
  let continue_ = ref true in
  while !continue_ do
    let a = if !i < n then run.(!i) else max_int in
    let b = match Heap.peek t.wake_now with Some x -> x | None -> max_int in
    if a = max_int && b = max_int then continue_ := false
    else begin
      let idx = if a <= b then a else b in
      if a <= b then incr i;
      if b <= a then ignore (Heap.pop t.wake_now);
      t.cur_idx <- idx;
      t.self_rearm <- false;
      let tk = t.tickers.(idx) in
      incr ncalled;
      let act = run_ticker tk in
      let act =
        match act with
        | (Idle | Idle_until _) when t.self_rearm -> Busy
        | a -> a
      in
      match act with
      | Busy ->
        nxt.(!n_nxt) <- idx;
        incr n_nxt
      | Idle ->
        tk.armed <- false;
        bump_region t tk.region (-1)
      | Idle_until w ->
        tk.armed <- false;
        bump_region t tk.region (-1);
        tk.wake <- w;
        Heap.push t.time_heap (w, idx)
    end
  done;
  t.cur_idx <- -1;
  t.self_rearm <- false;
  t.active_ticks <- t.active_ticks + !ncalled;
  (* Double-buffer swap: survivors become next cycle's run list. *)
  t.run <- nxt;
  t.n_run <- !n_nxt;
  t.run_next <- run;
  let committed = t.n_dirty > 0 in
  (* Live loop: commit functions must not stage new two-phase writes
     (they may re-arm parked consumers, which lands next cycle). *)
  let j = ref 0 in
  while !j < t.n_dirty do
    t.dirty_fns.(!j) ();
    incr j
  done;
  t.n_dirty <- 0;
  for k = 0 to t.n_committers - 1 do
    t.committers.(k) ()
  done;
  t.in_tick_phase <- false;
  t.quiescent <-
    t.n_run = 0 && t.n_wake_next = 0 && (not committed) && t.n_committers = 0;
  t.clock <- t.clock + 1

let stop t = t.stop_requested <- true
let stopped t = t.stop_requested

(* Flush per-instance counters into the process-wide totals, and (when
   profiling) derive each row's skipped-tick count: eligible cycles
   since registration minus calls executed. *)
let flush_tick_totals t =
  let skipped_total =
    (t.n_tickers * t.clock) - t.sum_reg_clock - t.active_ticks
  in
  ignore
    (Atomic.fetch_and_add global_active_ticks (t.active_ticks - t.flushed_active));
  ignore
    (Atomic.fetch_and_add global_skipped_ticks
       (skipped_total - t.flushed_skipped_ticks));
  t.flushed_active <- t.active_ticks;
  t.flushed_skipped_ticks <- skipped_total;
  if t.profiling then
    for i = 0 to t.n_tickers - 1 do
      let tk = t.tickers.(i) in
      match tk.row with
      | Some r -> r.Profile.skipped <- t.clock - tk.reg_clock - r.Profile.calls
      | None -> ()
    done

let run_until t time =
  t.stop_requested <- false;
  let entry_clock = t.clock in
  let entry_skipped = t.skipped in
  while t.clock < time && not t.stop_requested do
    (* Fast-forward across gaps where every clocked component is parked
       or quiescent and no two-phase state is pending commit: jump to
       the next heap event or the earliest Idle_until wake-up. *)
    if t.quiescent then begin
      let next =
        match Heap.peek t.events with
        | Some e -> min e.time (next_time_wake t)
        | None -> next_time_wake t
      in
      let next = min next time in
      if next > t.clock then begin
        t.skipped <- t.skipped + (next - t.clock);
        t.clock <- next
      end
    end;
    if t.clock < time then step t
  done;
  if t.counted then begin
    ignore (Atomic.fetch_and_add global (t.clock - entry_clock));
    ignore (Atomic.fetch_and_add global_skipped (t.skipped - entry_skipped))
  end;
  flush_tick_totals t

let run_for t n = run_until t (t.clock + n)
let pending_events t = Heap.length t.events

(* Earliest cycle at which this simulator can next do work: now, unless
   it is quiescent, in which case the next heap event or Idle_until
   wake-up (max_int when neither exists — fully drained). The adaptive
   parallel engine widens its windows to this bound. *)
let next_activity t =
  if not t.quiescent then t.clock
  else begin
    let next =
      match Heap.peek t.events with
      | Some e -> min e.time (next_time_wake t)
      | None -> next_time_wake t
    in
    if next < t.clock then t.clock else next
  end
