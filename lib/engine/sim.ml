type activity = Busy | Idle | Idle_until of int

type event = { time : int; seq : int; fn : unit -> unit }

type t = {
  mutable clock : int;
  events : event Heap.t;
  mutable next_seq : int;
  mutable tickers : (unit -> activity) array;
  mutable n_tickers : int;
  mutable committers : (unit -> unit) array;
  mutable n_committers : int;
  mutable dirty_fns : (unit -> unit) array;
  mutable n_dirty : int;
  mutable stop_requested : bool;
  mutable in_event_phase : bool;
  mutable in_tick_phase : bool;
  mutable quiescent : bool;
  mutable next_wake : int;
  mutable skipped : int;
  mutable counted : bool;
}

let cmp_event a b =
  let c = compare a.time b.time in
  if c <> 0 then c else compare a.seq b.seq

(* Total simulated cycles advanced (executed + fast-forwarded) across all
   simulator instances, including instances driven from other domains —
   the numerator of the bench harness's cycles/second figure. *)
let global = Atomic.make 0
let total_cycles () = Atomic.get global

(* Fast-forwarded (not executed) cycles across all counted instances —
   the numerator of the skipped-cycle ratio in perf reports. *)
let global_skipped = Atomic.make 0
let total_skipped () = Atomic.get global_skipped

let create () =
  {
    clock = 0;
    events = Heap.create ~cmp:cmp_event;
    next_seq = 0;
    tickers = Array.make 8 (fun () -> Idle);
    n_tickers = 0;
    committers = Array.make 8 (fun () -> ());
    n_committers = 0;
    dirty_fns = Array.make 8 (fun () -> ());
    n_dirty = 0;
    stop_requested = false;
    in_event_phase = false;
    in_tick_phase = false;
    quiescent = false;
    next_wake = max_int;
    skipped = 0;
    counted = true;
  }

let now t = t.clock
let cycles_skipped t = t.skipped
let wake t = t.quiescent <- false

(* A Par_sim partition counts its cycles once, through its coordinator,
   not once per member domain. *)
let set_counted t b = t.counted <- b

(* A target equal to the current cycle is kept only while that cycle's
   event phase is still open (it has not started, or we are inside it);
   from the ticker/commit phases the event phase has already passed, so
   the event is deferred to the next cycle. *)
let schedule_time t time =
  if time = t.clock && t.in_tick_phase then time + 1 else time

let at t time fn =
  if time < t.clock then
    invalid_arg
      (Printf.sprintf "Sim.at: time %d not schedulable at cycle %d" time t.clock);
  Heap.push t.events { time = schedule_time t time; seq = t.next_seq; fn };
  t.next_seq <- t.next_seq + 1

let after t d fn =
  assert (d >= 0);
  at t (t.clock + d) fn

let every t ?start period fn =
  assert (period > 0);
  let first =
    match start with
    | Some s -> s
    | None -> (t.clock / period * period) + period
  in
  let rec arm time =
    at t time (fun () ->
        fn ();
        arm (time + period))
  in
  arm (max first (t.clock + 1))

let push_fn arr n fn =
  let arr = if n >= Array.length arr then begin
      let narr = Array.make (Array.length arr * 2) fn in
      Array.blit arr 0 narr 0 n;
      narr
    end else arr
  in
  arr.(n) <- fn;
  arr

let add_clocked ?(name = "clocked") t fn =
  (* APIARY_PROF: count and wall-time every tick, attributed to [name].
     The wrapper exists only when profiling is on; the default tick path
     is unchanged. *)
  let fn =
    if not (Profile.enabled ()) then fn
    else begin
      let row = Profile.register name in
      fun () ->
        let t0 = Profile.now_s () in
        let a = fn () in
        row.Profile.calls <- row.Profile.calls + 1;
        row.Profile.seconds <- row.Profile.seconds +. (Profile.now_s () -. t0);
        a
    end
  in
  t.tickers <- push_fn t.tickers t.n_tickers fn;
  t.n_tickers <- t.n_tickers + 1;
  t.quiescent <- false

let add_ticker ?name t fn = add_clocked ?name t (fun () -> fn (); Busy)

let add_committer t fn =
  t.committers <- push_fn t.committers t.n_committers fn;
  t.n_committers <- t.n_committers + 1;
  t.quiescent <- false

let mark_dirty t fn =
  t.dirty_fns <- push_fn t.dirty_fns t.n_dirty fn;
  t.n_dirty <- t.n_dirty + 1;
  t.quiescent <- false

let run_due_events t =
  t.in_event_phase <- true;
  let rec loop () =
    match Heap.peek t.events with
    | Some e when e.time = t.clock ->
      ignore (Heap.pop t.events);
      e.fn ();
      loop ()
    | Some e when e.time < t.clock -> assert false
    | Some _ | None -> ()
  in
  loop ();
  t.in_event_phase <- false

let step t =
  run_due_events t;
  t.in_tick_phase <- true;
  let all_idle = ref true in
  let wake_at = ref max_int in
  (* Snapshot: a ticker registered during this phase starts next cycle
     (registration also clears [quiescent], so no wake-up is missed). *)
  let tickers = t.tickers and n = t.n_tickers in
  for i = 0 to n - 1 do
    match tickers.(i) () with
    | Busy -> all_idle := false
    | Idle -> ()
    | Idle_until w -> if w < !wake_at then wake_at := w
  done;
  let committed = t.n_dirty > 0 in
  (* Live loop: commit functions must not stage new two-phase writes. *)
  let i = ref 0 in
  while !i < t.n_dirty do
    t.dirty_fns.(!i) ();
    incr i
  done;
  t.n_dirty <- 0;
  for i = 0 to t.n_committers - 1 do
    t.committers.(i) ()
  done;
  t.in_tick_phase <- false;
  t.quiescent <- !all_idle && (not committed) && t.n_committers = 0;
  t.next_wake <- !wake_at;
  t.clock <- t.clock + 1

let stop t = t.stop_requested <- true
let stopped t = t.stop_requested

let run_until t time =
  t.stop_requested <- false;
  let entry_clock = t.clock in
  let entry_skipped = t.skipped in
  while t.clock < time && not t.stop_requested do
    (* Fast-forward across gaps where every clocked component is
       quiescent and no two-phase state is pending commit: jump to the
       next heap event or the earliest Idle_until wake-up. *)
    if t.quiescent then begin
      let next =
        match Heap.peek t.events with
        | Some e -> min e.time t.next_wake
        | None -> t.next_wake
      in
      let next = min next time in
      if next > t.clock then begin
        t.skipped <- t.skipped + (next - t.clock);
        t.clock <- next
      end
    end;
    if t.clock < time then step t
  done;
  if t.counted then begin
    ignore (Atomic.fetch_and_add global (t.clock - entry_clock));
    ignore (Atomic.fetch_and_add global_skipped (t.skipped - entry_skipped))
  end

let run_for t n = run_until t (t.clock + n)
let pending_events t = Heap.length t.events

(* Earliest cycle at which this simulator can next do work: now, unless
   it is quiescent, in which case the next heap event or Idle_until
   wake-up (max_int when neither exists — fully drained). The adaptive
   parallel engine widens its windows to this bound. *)
let next_activity t =
  if not t.quiescent then t.clock
  else begin
    let next =
      match Heap.peek t.events with
      | Some e -> min e.time t.next_wake
      | None -> t.next_wake
    in
    if next < t.clock then t.clock else next
  end
