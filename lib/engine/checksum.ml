let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref (Int32.of_int n) in
         for _ = 0 to 7 do
           if Int32.logand !c 1l <> 0l then
             c := Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
           else c := Int32.shift_right_logical !c 1
         done;
         !c))

let crc32 ?(init = 0l) b =
  let tbl = Lazy.force table in
  let crc = ref (Int32.logxor init 0xFFFFFFFFl) in
  for i = 0 to Bytes.length b - 1 do
    let idx =
      Int32.to_int (Int32.logand (Int32.logxor !crc (Int32.of_int (Char.code (Bytes.get b i)))) 0xFFl)
    in
    crc := Int32.logxor tbl.(idx) (Int32.shift_right_logical !crc 8)
  done;
  Int32.logxor !crc 0xFFFFFFFFl

let crc32_string s = crc32 (Bytes.of_string s)

let adler32 b =
  let modulus = 65521 in
  let a = ref 1 and s = ref 0 in
  for i = 0 to Bytes.length b - 1 do
    a := (!a + Char.code (Bytes.get b i)) mod modulus;
    s := (!s + !a) mod modulus
  done;
  Int32.of_int ((!s lsl 16) lor !a)

let self_test () =
  (* Published vectors: crc32("123456789") = 0xCBF43926,
     adler32("Wikipedia") = 0x11E60398. *)
  crc32_string "123456789" = 0xCBF43926l
  && adler32 (Bytes.of_string "Wikipedia") = 0x11E60398l
