(** Array-based binary min-heap, used as the simulator's event queue.

    Elements are ordered by a comparison function supplied at creation.
    All operations are imperative; the heap grows automatically. *)

type 'a t

val create : cmp:('a -> 'a -> int) -> 'a t
(** [create ~cmp] is an empty heap ordered by [cmp] (smallest first). *)

val length : 'a t -> int
(** Number of elements currently stored. *)

val is_empty : 'a t -> bool

val push : 'a t -> 'a -> unit
(** Insert an element. O(log n). *)

val peek : 'a t -> 'a option
(** Smallest element without removing it, or [None] if empty. *)

val pop : 'a t -> 'a option
(** Remove and return the smallest element, or [None] if empty. O(log n). *)

val clear : 'a t -> unit
(** Remove all elements. *)

val to_list : 'a t -> 'a list
(** All elements in unspecified order (for debugging/tests). *)
