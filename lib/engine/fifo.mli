(** Bounded two-phase FIFO modelling a registered hardware queue.

    Pushes are staged and become visible only after the simulator's commit
    phase at the end of the cycle, so a value written in cycle [t] can be
    popped no earlier than cycle [t+1]. Capacity accounts for staged
    entries, so producers see backpressure one cycle early — exactly the
    behaviour of a synchronous FIFO with registered full/empty flags. *)

type 'a t

val create : Sim.t -> ?capacity:int -> string -> 'a t
(** [create sim ~capacity name] makes a FIFO whose staged pushes commit
    in [sim]'s commit phase. The FIFO enlists itself in the simulator's
    dirty list on its first staged push of a cycle ({!Sim.mark_dirty}),
    so a cycle's commit cost is O(FIFOs written), not O(FIFOs alive).
    Default capacity is unbounded. *)

val name : 'a t -> string
val capacity : 'a t -> int

val set_owner : 'a t -> Sim.handle -> unit
(** Register the consuming ticker's handle: it is re-armed whenever
    entries become visible (at commit, and on {!inject}), so a parked
    consumer is guaranteed to see every delivery. Default
    {!Sim.no_handle} (no re-arm). *)

val push : 'a t -> 'a -> bool
(** Stage a value for commit at end of cycle. Returns [false] (and drops
    nothing) when the queue, counting staged entries, is full. *)

val push_exn : 'a t -> 'a -> unit
(** Like {!push} but raises [Failure] when full. *)

val pop : 'a t -> 'a option
(** Take the oldest committed value. *)

val pop_exn : 'a t -> 'a
(** Like {!pop} but raises [Queue.Empty] instead of allocating an
    option. Check {!is_empty} first on hot paths. *)

val peek : 'a t -> 'a option

val peek_exn : 'a t -> 'a
(** Like {!peek} but raises [Queue.Empty] instead of allocating an
    option. Check {!is_empty} first on hot paths. *)

val length : 'a t -> int
(** Committed entries only (what a consumer can see this cycle). *)

val occupancy : 'a t -> int
(** Committed + staged entries (what a producer must respect). *)

val space : 'a t -> int
(** Remaining room: [capacity - occupancy]. *)

val is_empty : 'a t -> bool
val is_full : 'a t -> bool

val inject : 'a t -> 'a -> unit
(** Insert a value directly into committed storage, bypassing the
    staging phase. For cross-partition boundary deliveries in the
    parallel engine: the value was staged and committed on the sending
    partition in an earlier cycle, so re-staging it here would charge a
    second cycle of latency. Runs in the event phase, before any ticker
    can look, so consumers cannot distinguish it from a commit that
    happened at the end of the previous cycle. Raises [Failure] when
    full. *)

val iter : ('a -> unit) -> 'a t -> unit
(** Iterate committed entries, oldest first. *)

val clear : 'a t -> unit
(** Drop all committed and staged entries (used for fault drains). *)
