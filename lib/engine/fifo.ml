type 'a t = {
  name : string;
  capacity : int;
  q : 'a Queue.t;
  staged : 'a Queue.t;
}

let create sim ?(capacity = max_int) name =
  assert (capacity > 0);
  let t = { name; capacity; q = Queue.create (); staged = Queue.create () } in
  Sim.add_committer sim (fun () -> Queue.transfer t.staged t.q);
  t

let name t = t.name
let capacity t = t.capacity
let length t = Queue.length t.q
let occupancy t = Queue.length t.q + Queue.length t.staged
let space t = t.capacity - occupancy t
let is_empty t = Queue.is_empty t.q
let is_full t = occupancy t >= t.capacity

let push t x =
  if is_full t then false
  else begin
    Queue.add x t.staged;
    true
  end

let push_exn t x =
  if not (push t x) then failwith (Printf.sprintf "Fifo.push_exn: %s full" t.name)

let pop t = Queue.take_opt t.q
let peek t = Queue.peek_opt t.q
let iter f t = Queue.iter f t.q

let clear t =
  Queue.clear t.q;
  Queue.clear t.staged
