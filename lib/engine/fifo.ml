type 'a t = {
  name : string;
  capacity : int;
  sim : Sim.t;
  (* Committed entries: circular buffer [ring] holding [len] values
     starting at [head]. Physical size is a power of two ([mask] is
     size - 1); starts as [||] and grows on demand, so an element value
     is always available to seed [Array.make]. Popped slots keep their
     reference until overwritten — bounded by peak occupancy, which is
     fine for a simulator. *)
  mutable ring : 'a array;
  mutable mask : int;
  mutable head : int;
  mutable len : int;
  (* Staged entries: appended in push order, drained fully at commit. *)
  mutable staged : 'a array;
  mutable n_staged : int;
  mutable dirty : bool;
  mutable commit : unit -> unit;
  (* Consumer ticker re-armed whenever entries become visible (commit or
     inject), so a parked consumer cannot miss a delivery. *)
  mutable owner : Sim.handle;
}

let ceil_pow2 n =
  let r = ref 1 in
  while !r < n do
    r := !r * 2
  done;
  !r

(* Make room for [n] more committed entries ([x] seeds a fresh array). *)
let grow_ring t n x =
  if t.len + n > Array.length t.ring then begin
    let size = ceil_pow2 (max 8 (t.len + n)) in
    let nr = Array.make size x in
    for i = 0 to t.len - 1 do
      nr.(i) <- t.ring.((t.head + i) land t.mask)
    done;
    t.ring <- nr;
    t.mask <- size - 1;
    t.head <- 0
  end

let create sim ?(capacity = max_int) name =
  assert (capacity > 0);
  let t =
    {
      name;
      capacity;
      sim;
      ring = [||];
      mask = -1;
      head = 0;
      len = 0;
      staged = [||];
      n_staged = 0;
      dirty = false;
      commit = (fun () -> ());
      owner = Sim.no_handle;
    }
  in
  t.commit <-
    (fun () ->
      t.dirty <- false;
      let n = t.n_staged in
      if n > 0 then begin
        grow_ring t n t.staged.(0);
        for i = 0 to n - 1 do
          t.ring.((t.head + t.len + i) land t.mask) <- t.staged.(i)
        done;
        t.len <- t.len + n;
        t.n_staged <- 0;
        (* The entries become visible next cycle (commit phase runs after
           tickers), which is exactly when the re-arm takes effect. *)
        Sim.rearm t.sim t.owner
      end);
  t

let set_owner t h = t.owner <- h

let name t = t.name
let capacity t = t.capacity
let length t = t.len
let occupancy t = t.len + t.n_staged
let space t = t.capacity - occupancy t
let is_empty t = t.len = 0
let is_full t = occupancy t >= t.capacity

let push t x =
  if is_full t then false
  else begin
    if t.n_staged >= Array.length t.staged then begin
      let ncap = if Array.length t.staged = 0 then 8 else 2 * Array.length t.staged in
      let ns = Array.make ncap x in
      Array.blit t.staged 0 ns 0 t.n_staged;
      t.staged <- ns
    end;
    t.staged.(t.n_staged) <- x;
    t.n_staged <- t.n_staged + 1;
    (* First staged push of the cycle: enlist in the simulator's dirty
       list so only written FIFOs pay a commit. *)
    if not t.dirty then begin
      t.dirty <- true;
      Sim.mark_dirty t.sim t.commit
    end;
    true
  end

let push_exn t x =
  if not (push t x) then failwith (Printf.sprintf "Fifo.push_exn: %s full" t.name)

let pop_exn t =
  if t.len = 0 then raise Queue.Empty;
  let x = t.ring.(t.head) in
  t.head <- (t.head + 1) land t.mask;
  t.len <- t.len - 1;
  x

let pop t = if t.len = 0 then None else Some (pop_exn t)
let peek_exn t = if t.len = 0 then raise Queue.Empty else t.ring.(t.head)
let peek t = if t.len = 0 then None else Some (t.ring.(t.head))

let iter f t =
  for i = 0 to t.len - 1 do
    f t.ring.((t.head + i) land t.mask)
  done

let inject t x =
  if is_full t then failwith (Printf.sprintf "Fifo.inject: %s full" t.name);
  grow_ring t 1 x;
  t.ring.((t.head + t.len) land t.mask) <- x;
  t.len <- t.len + 1;
  (* Injections run in the event phase: the consumer may (and under the
     flat scheduler would) observe the entry this very cycle. *)
  Sim.rearm t.sim t.owner

let clear t =
  (* A pending dirty entry stays enlisted; its commit finds an empty
     staging area and is a harmless no-op. *)
  t.head <- 0;
  t.len <- 0;
  t.n_staged <- 0
