(** Deterministic, splittable pseudo-random number generator.

    Every source of randomness in the simulator flows through this module so
    that a run is a pure function of its seed.  The core generator is
    SplitMix64 (Steele et al., OOPSLA'14), which is fast, has a 64-bit state,
    and splits cleanly into independent streams. *)

type t

val create : seed:int -> t
(** [create ~seed] is a fresh generator. Equal seeds yield equal streams. *)

val split : t -> t
(** [split t] derives an independent generator; [t] advances. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. [bound] must be positive. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] inclusive. *)

val float : t -> float
(** Uniform float in [\[0, 1)]. *)

val bool : t -> bool

val chance : t -> float -> bool
(** [chance t p] is true with probability [p]. *)

val exponential : t -> mean:float -> float
(** Exponentially distributed sample with the given mean (for Poisson
    arrival processes). *)

val zipf : t -> n:int -> theta:float -> int
(** Zipfian sample in [\[0, n)] with skew [theta] (YCSB-style key
    popularity).  [theta = 0.] degenerates to uniform. *)

val pick : t -> 'a array -> 'a
(** Uniformly random element of a non-empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val bytes : t -> int -> bytes
(** [bytes t n] is [n] random bytes. *)

val bytes_compressible : t -> int -> redundancy:float -> bytes
(** [bytes_compressible t n ~redundancy] generates [n] bytes where
    [redundancy] in [\[0,1\]] controls how repetitive the content is
    (0 = random, 1 = a single repeated byte) — used to drive the
    compressor accelerators with realistic inputs. *)
