(** Checksums used across the stack: CRC-32 (IEEE 802.3, as computed by
    Ethernet MACs) and Adler-32 (cheap software-style integrity check used
    by the accelerator library). Both are real implementations — frames
    and stored blocks carry checksums that actually validate. *)

val crc32 : ?init:int32 -> bytes -> int32
(** IEEE CRC-32 (reflected, polynomial 0xEDB88320), as used by Ethernet
    FCS, gzip, zlib. *)

val crc32_string : string -> int32

val adler32 : bytes -> int32

val self_test : unit -> bool
(** Check the implementation against published test vectors. *)
