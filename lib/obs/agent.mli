(** Per-board push telemetry agent.

    One agent runs on each board's own simulator. Every [period] cycles
    it harvests the board's Registry instruments (only the samplers
    under its [prefix], e.g. [b3.] — a partitioned engine forbids
    reading other boards' state) into counter / gauge /
    histogram-bucket {e deltas}, folds in the span completions tapped
    via {!Span.set_sink}, and flushes the backlog as sequence-numbered
    {!Wire} batches through the [send] callback — which the cluster
    layer wires to the board's own NIC, so telemetry shares the uplink
    with workload traffic and its bandwidth is measured, not assumed.

    The record queue is bounded; on overflow the {e oldest} records are
    dropped first, and cumulative sent/dropped counts ride every batch
    header so the collector's conservation accounting
    ([emitted = delivered + dropped + in-flight], per board) stays
    exact even when drop notifications themselves are lost.

    This module knows nothing about frames or MACs: [send] receives the
    encoded batch payload and returns [false] on device backpressure
    (the records stay queued and retry next tick).

    Defaults come from the environment via tolerant {!Env} parsing:
    [APIARY_AGENT_PERIOD] (2000), [APIARY_AGENT_QUEUE] (1024),
    [APIARY_AGENT_BATCH] (1200 bytes). *)

(** Batch wire format — shared by agent (encode) and collector
    (decode). *)
module Wire : sig
  type span_done = {
    s_name : string;
    s_cat : string;
    s_corr : int;
    s_track : int;
    s_ts : int;
    s_dur : int;
    s_args : (string * string) list;
  }

  type record =
    | Counter_delta of string * int
    | Gauge_value of string * float
    | Hist_delta of string * (int * int) list
        (** [(bucket, count-delta)] pairs on the
            {!Apiary_engine.Stats.Histogram} grid *)
    | Span_done of span_done

  type batch = {
    b_board : int;
    b_seq : int;  (** 1-based batch sequence number *)
    b_ts : int;  (** agent-side flush cycle *)
    b_cum_records : int;  (** records sent in batches before this one *)
    b_cum_dropped : int;  (** records dropped at the agent so far *)
    b_records : record list;
  }

  val magic : string
  (** First two payload bytes of every batch, ["TB"]. *)

  val header_bytes : int

  val encode_record : record -> string
  val encode_batch :
    board:int ->
    seq:int ->
    ts:int ->
    cum_records:int ->
    cum_dropped:int ->
    string list ->
    bytes

  val decode_batch : bytes -> batch option
  (** [None] on bad magic or truncation; records of unknown kind are
      skipped (forward compatibility), not errors. *)
end

type t

val default_period : int
val default_queue : int
val default_batch_bytes : int
(** The environment-tuned defaults ([APIARY_AGENT_PERIOD] /
    [APIARY_AGENT_QUEUE] / [APIARY_AGENT_BATCH]), resolved once at
    startup with {!Env}'s tolerant parsing. *)

val create :
  ?period:int ->
  ?queue_cap:int ->
  ?batch_bytes:int ->
  ?max_frames:int ->
  ?until:int ->
  sim:Apiary_engine.Sim.t ->
  board:int ->
  prefix:string ->
  send:(bytes -> bool) ->
  unit ->
  t
(** Create the agent, install its span sink for [board], and arm its
    harvest/flush tick on [sim] (staggered by board id). [max_frames]
    (default 2) caps batches flushed per tick so telemetry cannot
    monopolize the NIC's descriptor ring against workload replies.
    Ticks after cycle [until] (default unbounded) are skipped — a
    benchmark sets it a safe margin before its run ends, so the wire
    is provably drained when conservation is read. *)

val detach : t -> unit
(** Stop ticking (the periodic event becomes a no-op) and remove the
    span sink. Always detach before reusing the obs layer for an
    unrelated run. *)

val tick : t -> now:int -> unit
(** One harvest + flush, driven manually (tests). *)

val board : t -> int
val period : t -> int

(** {2 Accounting} — the agent's side of the conservation identity:
    [emitted = sent_records + dropped + queued] locally, and
    rack-wide [emitted = delivered + dropped + lost + queued] once the
    collector adds wire-loss from the cumulative headers. *)

val seq : t -> int
val emitted : t -> int
val dropped : t -> int
val queued : t -> int
val sent_records : t -> int
val sent_batches : t -> int
val sent_bytes : t -> int
(** Sum of batch payload bytes handed to [send] successfully. *)

val backpressure : t -> int
(** Flush attempts refused by the device ([send] returned false). *)
