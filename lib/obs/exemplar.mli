(** Histogram exemplars: the metric→trace link.

    A histogram tells you {e that} p99 spiked; an exemplar tells you
    {e which request} — each log-bucket of a latency histogram retains
    one sample's correlation id (latest-wins), on the exact bucket grid
    {!Apiary_engine.Stats.Histogram} computes percentiles from, so a
    p99 row in [apiary top] / [apiary slo] links to a retained span in
    the trace rather than to a guess.

    Exemplar stores are plain values (no global registry): the rack
    collector owns one per collected latency metric, and the CLI owns
    them for client-side request latencies. Latest-wins on a
    deterministic arrival order keeps the JSON export byte-stable. *)

type t

type sample = {
  x_corr : int;  (** correlation / request id of the retained sample *)
  x_value : int;  (** the recorded latency, cycles *)
  x_ts : int;  (** cycle the sample was observed *)
}

val create : string -> t
(** Empty store (one slot per histogram bucket) for the named metric. *)

val name : t -> string

val observe : t -> corr:int -> value:int -> ts:int -> unit
(** Retain this sample in the bucket [value] lands in, replacing any
    previous occupant (latest-wins; negative values clamp to 0). *)

val find : t -> value:int -> sample option
(** The exemplar in exactly the bucket holding [value], if any. *)

val near : t -> value:int -> sample option
(** The exemplar nearest to [value]'s bucket, preferring the lower
    bucket at equal distance (never invent a slower outlier than the
    percentile being illustrated). [None] iff the store is empty. *)

val to_list : t -> (int * sample) list
(** Occupied buckets in ascending bucket order. *)

val reset : t -> unit

val buf_add : Buffer.t -> t -> unit
(** Append the byte-stable JSON object
    [{"name", "exemplars": [{"bucket", "bucket_value", "corr",
    "value", "ts"}, ...]}]. *)

val json_string : t -> string
