(* Per-board flight recorder: a bounded ring of the most recent
   observability events, always armed but recording only when enabled
   (off by default, so runs without introspection are byte-identical).
   On a fault or a watchdog trip the ring is frozen into a postmortem
   JSON dump — the black box that turns a silent fail-stop into an
   actionable event sequence. *)

type entry = {
  ts : int;
  tile : int;
  cat : string;
  name : string;
  corr : int;
  args : (string * string) list;
}

type t = {
  ring : entry option array;
  mutable next : int;
  mutable total : int;
  mutable on : bool;
  mutable board : int;
}

let create ?(capacity = 256) () =
  assert (capacity > 0);
  { ring = Array.make capacity None; next = 0; total = 0; on = false; board = -1 }

let set_enabled t b = t.on <- b
let enabled t = t.on
let set_board t id = t.board <- id
let board t = t.board
let capacity t = Array.length t.ring
let total t = t.total

let record t ~ts ~tile ~cat ~name ?(corr = 0) ?(args = []) () =
  if t.on then begin
    t.ring.(t.next) <- Some { ts; tile; cat; name; corr; args };
    t.next <- (t.next + 1) mod Array.length t.ring;
    t.total <- t.total + 1
  end

let entries t =
  let n = Array.length t.ring in
  let acc = ref [] in
  for i = n - 1 downto 0 do
    match t.ring.((t.next + i) mod n) with
    | None -> ()
    | Some e -> acc := e :: !acc
  done;
  !acc

let clear t =
  Array.fill t.ring 0 (Array.length t.ring) None;
  t.next <- 0;
  t.total <- 0

(* ------------------------------------------------------------------ *)
(* Postmortem JSON. Byte-stable: entries in ring order, args in
   recording order, no floats. *)

let buf_add_json_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let dump_json t ~reason ~cycle =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\n  \"board\": ";
  Buffer.add_string buf (string_of_int t.board);
  Buffer.add_string buf ",\n  \"reason\": ";
  buf_add_json_string buf reason;
  Buffer.add_string buf ",\n  \"cycle\": ";
  Buffer.add_string buf (string_of_int cycle);
  Buffer.add_string buf ",\n  \"capacity\": ";
  Buffer.add_string buf (string_of_int (capacity t));
  Buffer.add_string buf ",\n  \"recorded\": ";
  Buffer.add_string buf (string_of_int t.total);
  Buffer.add_string buf ",\n  \"events\": [";
  let first = ref true in
  List.iter
    (fun e ->
      if !first then first := false else Buffer.add_char buf ',';
      Buffer.add_string buf "\n    {\"ts\": ";
      Buffer.add_string buf (string_of_int e.ts);
      Buffer.add_string buf ", \"tile\": ";
      Buffer.add_string buf (string_of_int e.tile);
      Buffer.add_string buf ", \"cat\": ";
      buf_add_json_string buf e.cat;
      Buffer.add_string buf ", \"name\": ";
      buf_add_json_string buf e.name;
      if e.corr <> 0 then begin
        Buffer.add_string buf ", \"corr\": ";
        Buffer.add_string buf (string_of_int e.corr)
      end;
      if e.args <> [] then begin
        Buffer.add_string buf ", \"args\": {";
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_string buf ", ";
            buf_add_json_string buf k;
            Buffer.add_string buf ": ";
            buf_add_json_string buf v)
          e.args;
        Buffer.add_char buf '}'
      end;
      Buffer.add_char buf '}')
    (entries t);
  Buffer.add_string buf "\n  ]\n}\n";
  Buffer.contents buf

let write_dump t ~reason ~cycle path =
  let oc = open_out path in
  output_string oc (dump_json t ~reason ~cycle);
  close_out oc
