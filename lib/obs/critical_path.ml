(* Critical-path attribution over recorded span trees.

   A request's journey shows up in the recorder as a corr-keyed family:
   the monitor's "rpc" interval (the whole call as the caller saw it),
   one "xfer" interval per NoC transfer (NIC-queue entry to delivery)
   and one "hop" interval per router traversal inside it. Subtracting
   inner from outer attributes the latency:

     hop      = sum of router serialization + per-hop queueing
     queue    = xfer - hop: NIC injection backlog and flit reassembly
     service  = rpc - xfer: monitor checks, rate stalls and the callee's
                compute

   The decomposition is exact for single-transfer RPCs and a lower bound
   on service time when a call fans out into several transfers. *)

module Stats = Apiary_engine.Stats

type breakdown = {
  board : int;
  corr : int;
  total : int;
  hop : int;
  queue : int;
  service : int;
}

type acc = {
  mutable a_total : int;
  mutable a_hop : int;
  mutable a_xfer : int;
}

let analyze (events : Span.event list) =
  let tbl : (int * int, acc) Hashtbl.t = Hashtbl.create 64 in
  let get board corr =
    let key = (board, corr) in
    match Hashtbl.find_opt tbl key with
    | Some a -> a
    | None ->
      let a = { a_total = 0; a_hop = 0; a_xfer = 0 } in
      Hashtbl.add tbl key a;
      a
  in
  List.iter
    (fun (e : Span.event) ->
      if e.Span.corr > 0 && e.Span.dur >= 0 && e.Span.ph = Span.Dur then begin
        let a = get e.Span.board e.Span.corr in
        match (e.Span.cat, e.Span.name) with
        | "monitor", "rpc" -> a.a_total <- max a.a_total e.Span.dur
        | "noc", "hop" -> a.a_hop <- a.a_hop + e.Span.dur
        | "noc", "xfer" -> a.a_xfer <- a.a_xfer + e.Span.dur
        | _ -> ()
      end)
    events;
  Hashtbl.fold
    (fun (board, corr) a out ->
      if a.a_total = 0 then out
      else
        {
          board;
          corr;
          total = a.a_total;
          hop = min a.a_hop a.a_total;
          queue = max 0 (min a.a_xfer a.a_total - a.a_hop);
          service = max 0 (a.a_total - a.a_xfer);
        }
        :: out)
    tbl []
  |> List.sort (fun a b -> compare (a.board, a.corr) (b.board, b.corr))

type summary = {
  n : int;
  h_total : Stats.Histogram.t;
  h_hop : Stats.Histogram.t;
  h_queue : Stats.Histogram.t;
  h_service : Stats.Histogram.t;
}

let summarize breakdowns =
  let s =
    {
      n = List.length breakdowns;
      h_total = Stats.Histogram.create "critpath.total";
      h_hop = Stats.Histogram.create "critpath.hop";
      h_queue = Stats.Histogram.create "critpath.queue";
      h_service = Stats.Histogram.create "critpath.service";
    }
  in
  List.iter
    (fun b ->
      Stats.Histogram.record s.h_total b.total;
      Stats.Histogram.record s.h_hop b.hop;
      Stats.Histogram.record s.h_queue b.queue;
      Stats.Histogram.record s.h_service b.service)
    breakdowns;
  s
