(** Critical-path attribution over {!Span} trees: splits each corr-keyed
    request's end-to-end latency into router-hop time, queue wait and
    service time, for p50/p99 breakdowns in [bench --obs].

    Uses the span vocabulary the instrumented components emit: the
    monitor's ["rpc"] interval is the total, NoC ["xfer"] intervals cover
    transfer time, and ["hop"] intervals (children of a transfer) cover
    router serialization — so [queue = xfer - hop] is injection backlog
    and [service = rpc - xfer] is monitor checking plus callee compute. *)

module Stats := Apiary_engine.Stats

type breakdown = {
  board : int;
  corr : int;
  total : int;  (** the "rpc" span duration, cycles *)
  hop : int;  (** sum of router-hop durations *)
  queue : int;  (** transfer time not inside a hop (injection backlog) *)
  service : int;  (** rpc time not inside a transfer (checks + compute) *)
}

val analyze : Span.event list -> breakdown list
(** One breakdown per [(board, corr)] family that recorded a closed
    ["rpc"] span, sorted by board then corr. Open spans ([dur < 0]) and
    uncorrelated events are ignored. *)

type summary = {
  n : int;
  h_total : Stats.Histogram.t;
  h_hop : Stats.Histogram.t;
  h_queue : Stats.Histogram.t;
  h_service : Stats.Histogram.t;
}

val summarize : breakdown list -> summary
