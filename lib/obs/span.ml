type ph = Dur | Mark

type event = {
  seq : int;
  name : string;
  cat : string;
  corr : int;
  board : int;
  track : int;
  ts : int;
  mutable dur : int;
  ph : ph;
  mutable args : (string * string) list;
}

type id = int
(* Positive: 1-based index into the store; 0 = null; negative: a key in
   the pending side-table (a head-sampled-away open span that may still
   be promoted by a tail rule at finish). A reset bumps [epoch], so a
   stale id from before the reset cannot close an unrelated span. *)

let null = 0

(* Process-global recorder. The flag is the only thing hot paths read;
   everything else is touched under the lock, and only when enabled. *)
let flag = ref false
let lock = Mutex.create ()
let cap = ref 1_048_576
let store : event array ref = ref [||]
let n = ref 0
let n_dropped = ref 0
let n_sampled = ref 0
let epoch = ref 0

(* Deterministic head sampling: keep a corr family when
   [hash(corr) mod head_mod = 0]. [head_mod = 1] keeps everything.
   Tail rules promote sampled-away spans that turn out interesting:
   slower than [slow_cycles], carrying an error name or a non-"ok"
   status. Corr 0 (uncorrelated) spans are always kept — they are the
   low-volume control-plane events (client requests, switch decisions,
   sched/health marks) the sampled trace still needs for context. *)
let head_mod = ref 1
let slow_cycles = ref max_int

(* Open spans whose corr was sampled away, keyed by negative id; kept
   off the store so a tail rule can still resurrect them at finish. *)
let pending : (int, int * event) Hashtbl.t = Hashtbl.create 64
let next_pending = ref 0

(* One-shot per process: dropping events silently at scale is exactly
   the failure mode sampling exists to prevent, so say it once. *)
let warned_drop = ref false

(* Per-board completion sinks: the telemetry agent on board [b] taps
   the Dur spans that complete on [b]'s own domain, post-sampling, so
   shipping them over the fabric never reads another board's state. For
   one-shot completions the sink decision is a pure function of the
   span (keep_head/tail_keep), independent of whether the central store
   had room, so the same spans reach the same agent under Seq and
   partitioned engines; start/finish spans additionally require the
   open span to have found a slot (keep the cap ample when agents run).
   Sinks fire while the recorder lock is held: a sink must not call
   back into this module. Mark events are not delivered (frame-level
   points are too chatty for the wire; agents ship intervals). *)
let sinks : (int, event -> unit) Hashtbl.t = Hashtbl.create 8
let sinks_lock = Mutex.create ()

let set_sink ~board f =
  Mutex.lock sinks_lock;
  Hashtbl.replace sinks board f;
  Mutex.unlock sinks_lock

let clear_sink ~board =
  Mutex.lock sinks_lock;
  Hashtbl.remove sinks board;
  Mutex.unlock sinks_lock

let clear_sinks () =
  Mutex.lock sinks_lock;
  Hashtbl.reset sinks;
  Mutex.unlock sinks_lock

(* Deliver a completed Dur span to its board's sink, if any. *)
let notify ev =
  if ev.board >= 0 then begin
    Mutex.lock sinks_lock;
    let f = Hashtbl.find_opt sinks ev.board in
    Mutex.unlock sinks_lock;
    match f with Some f -> f ev | None -> ()
  end

let set_enabled b = flag := b
let on () = !flag

let reset_locked () =
  store := [||];
  n := 0;
  n_dropped := 0;
  n_sampled := 0;
  Hashtbl.reset pending;
  incr epoch

let reset () =
  Mutex.lock lock;
  reset_locked ();
  Mutex.unlock lock

let set_capacity c =
  assert (c > 0);
  Mutex.lock lock;
  cap := c;
  reset_locked ();
  Mutex.unlock lock

(* APIARY_OBS_CAP sizes the buffer from the environment, so full-scale
   --obs runs can raise the cap without a code change. Garbage values
   warn once and keep the default (Env). *)
let () = cap := Env.int "APIARY_OBS_CAP" ~default:!cap

let set_sampling ?head_mod:(hm = 1) ?slow_cycles:(sc = max_int) () =
  if hm < 1 then invalid_arg "Span.set_sampling: head_mod must be >= 1";
  Mutex.lock lock;
  head_mod := hm;
  slow_cycles := sc;
  Mutex.unlock lock

(* Avalanche mix (splitmix-style finalizer with 62-bit-safe odd
   constants — OCaml ints are 63-bit, the classic 64-bit constants do
   not fit). Spreads consecutive corr ids uniformly so [mod head_mod]
   picks an unbiased, deterministic subset. *)
let mix x =
  let h = x lxor (x lsr 30) in
  let h = h * 0x2545F4914F6CDD1D in
  let h = h lxor (h lsr 27) in
  let h = h * 0x3C79AC492BA7B653 in
  let h = h lxor (h lsr 31) in
  h land max_int

let keep_head corr =
  corr = 0 || !head_mod <= 1 || mix corr mod !head_mod = 0

(* Names that always survive sampling: faults and rejections are the
   spans a postmortem needs most. *)
let tail_name = function
  | "fault" | "deny" | "drop" | "timeout" | "failover" | "board_down" -> true
  | _ -> false

let tail_keep ~name ~dur args =
  dur >= !slow_cycles
  || tail_name name
  || (match List.assoc_opt "status" args with
     | Some s -> s <> "ok"
     | None -> false)

(* Append; caller must hold the lock. Returns the 1-based slot or 0 when
   full. *)
let push_locked ev =
  if !n >= !cap then begin
    incr n_dropped;
    if not !warned_drop then begin
      warned_drop := true;
      Printf.eprintf
        "apiary obs: span buffer full at %d events; dropping (raise with \
         APIARY_OBS_CAP or enable sampling)\n\
         %!"
        !cap
    end;
    0
  end
  else begin
    if !n >= Array.length !store then begin
      let grown = Array.make (max 1024 (2 * Array.length !store)) ev in
      Array.blit !store 0 grown 0 !n;
      store := grown
    end;
    !store.(!n) <- ev;
    incr n;
    !n
  end

let start ?(board = -1) ?(corr = 0) ?(args = []) ~cat ~name ~track ~ts () =
  if not !flag then null
  else begin
    let ev =
      { seq = 0; name; cat; corr; board; track; ts; dur = -1; ph = Dur; args }
    in
    Mutex.lock lock;
    let id =
      if keep_head corr then begin
        let slot = push_locked ev in
        if slot = 0 then null else (!epoch * !cap) + slot
      end
      else begin
        (* Sampled away for now; park it so a tail rule can promote it
           when the close reveals an error or a slow request. *)
        decr next_pending;
        Hashtbl.replace pending !next_pending (!epoch, ev);
        !next_pending
      end
    in
    Mutex.unlock lock;
    id
  end

(* Finishing is allowed even after tracing was switched off, so spans
   opened during a run can be closed by callbacks that fire after the
   driver disabled capture (a null id still short-circuits). *)
let finish ?(args = []) ~ts id =
  if id <> null then begin
    Mutex.lock lock;
    if id < 0 then begin
      (* A parked head-sampled span: promote it if a tail rule fires on
         the completed interval, count it sampled otherwise. *)
      match Hashtbl.find_opt pending id with
      | Some (e, ev) when e = !epoch ->
        Hashtbl.remove pending id;
        let dur = max 0 (ts - ev.ts) in
        let merged = if args = [] then ev.args else ev.args @ args in
        if tail_keep ~name:ev.name ~dur merged then begin
          ev.dur <- dur;
          ev.args <- merged;
          ignore (push_locked ev);
          notify ev
        end
        else incr n_sampled
      | _ -> Hashtbl.remove pending id
    end
    else begin
      let e = id / !cap and slot = id mod !cap in
      if e = !epoch && slot >= 1 && slot <= !n then begin
        let ev = !store.(slot - 1) in
        if ev.dur < 0 then begin
          ev.dur <- max 0 (ts - ev.ts);
          if args <> [] then ev.args <- ev.args @ args;
          notify ev
        end
      end
    end;
    Mutex.unlock lock
  end

let complete ?(board = -1) ?(corr = 0) ?(args = []) ~cat ~name ~track ~ts ~dur
    () =
  if !flag then begin
    let dur = max 0 dur in
    Mutex.lock lock;
    if keep_head corr || tail_keep ~name ~dur args then begin
      let ev =
        { seq = 0; name; cat; corr; board; track; ts; dur; ph = Dur; args }
      in
      ignore (push_locked ev);
      notify ev
    end
    else incr n_sampled;
    Mutex.unlock lock
  end

let instant ?(board = -1) ?(corr = 0) ?(args = []) ~cat ~name ~track ~ts () =
  if !flag then begin
    Mutex.lock lock;
    if keep_head corr || tail_keep ~name ~dur:0 args then
      ignore
        (push_locked
           { seq = 0; name; cat; corr; board; track; ts; dur = 0; ph = Mark; args })
    else incr n_sampled;
    Mutex.unlock lock
  end

let events () =
  Mutex.lock lock;
  let out = List.init !n (fun i -> { !store.(i) with seq = i }) in
  Mutex.unlock lock;
  out

let count () =
  Mutex.lock lock;
  let c = !n in
  Mutex.unlock lock;
  c

let dropped () =
  Mutex.lock lock;
  let d = !n_dropped in
  Mutex.unlock lock;
  d

let sampled () =
  Mutex.lock lock;
  let s = !n_sampled in
  Mutex.unlock lock;
  s
