type ph = Dur | Mark

type event = {
  seq : int;
  name : string;
  cat : string;
  corr : int;
  board : int;
  track : int;
  ts : int;
  mutable dur : int;
  ph : ph;
  mutable args : (string * string) list;
}

type id = int
(* 1-based index into the store; 0 = null. A reset bumps [epoch], so a
   stale id from before the reset cannot close an unrelated span. *)

let null = 0

(* Process-global recorder. The flag is the only thing hot paths read;
   everything else is touched under the lock, and only when enabled. *)
let flag = ref false
let lock = Mutex.create ()
let cap = ref 1_048_576
let store : event array ref = ref [||]
let n = ref 0
let n_dropped = ref 0
let epoch = ref 0

let set_enabled b = flag := b
let on () = !flag

let reset_locked () =
  store := [||];
  n := 0;
  n_dropped := 0;
  incr epoch

let reset () =
  Mutex.lock lock;
  reset_locked ();
  Mutex.unlock lock

let set_capacity c =
  assert (c > 0);
  Mutex.lock lock;
  cap := c;
  reset_locked ();
  Mutex.unlock lock

(* Append under the lock; returns the 1-based slot or 0 when full. *)
let push ev =
  Mutex.lock lock;
  let slot =
    if !n >= !cap then begin
      incr n_dropped;
      0
    end
    else begin
      if !n >= Array.length !store then begin
        let grown = Array.make (max 1024 (2 * Array.length !store)) ev in
        Array.blit !store 0 grown 0 !n;
        store := grown
      end;
      !store.(!n) <- ev;
      incr n;
      !n
    end
  in
  Mutex.unlock lock;
  slot

let record ?(board = -1) ?(corr = 0) ?(args = []) ~cat ~name ~track ~ts ~dur ph =
  if not !flag then 0
  else
    push { seq = 0; name; cat; corr; board; track; ts; dur; ph; args }

let start ?board ?corr ?args ~cat ~name ~track ~ts () =
  if not !flag then null
  else begin
    let e = !epoch in
    let slot = record ?board ?corr ?args ~cat ~name ~track ~ts ~dur:(-1) Dur in
    if slot = 0 then null else (e * !cap) + slot
  end

(* Finishing is allowed even after tracing was switched off, so spans
   opened during a run can be closed by callbacks that fire after the
   driver disabled capture (a null id still short-circuits). *)
let finish ?(args = []) ~ts id =
  if id <> null then begin
    Mutex.lock lock;
    let e = id / !cap and slot = id mod !cap in
    if e = !epoch && slot >= 1 && slot <= !n then begin
      let ev = !store.(slot - 1) in
      if ev.dur < 0 then begin
        ev.dur <- max 0 (ts - ev.ts);
        if args <> [] then ev.args <- ev.args @ args
      end
    end;
    Mutex.unlock lock
  end

let complete ?board ?corr ?args ~cat ~name ~track ~ts ~dur () =
  if !flag then
    ignore (record ?board ?corr ?args ~cat ~name ~track ~ts ~dur:(max 0 dur) Dur)

let instant ?board ?corr ?args ~cat ~name ~track ~ts () =
  if !flag then
    ignore (record ?board ?corr ?args ~cat ~name ~track ~ts ~dur:0 Mark)

let events () =
  Mutex.lock lock;
  let out = List.init !n (fun i -> { !store.(i) with seq = i }) in
  Mutex.unlock lock;
  out

let count () =
  Mutex.lock lock;
  let c = !n in
  Mutex.unlock lock;
  c

let dropped () =
  Mutex.lock lock;
  let d = !n_dropped in
  Mutex.unlock lock;
  d
