(** Render captured spans and registry snapshots as JSON.

    {!chrome_trace} emits the Chrome [trace_event] format (an object
    with a [traceEvents] array), loadable directly in Perfetto or
    [chrome://tracing]. Simulation cycles are used as the microsecond
    clock, so one "us" on the timeline is one fabric cycle. Mapping:

    - pid [0] is the rack (ToR switch, shard clients); pid [b + 1] is
      board [b] — a [process_name] metadata record labels each;
    - tid is the span's track: tile index on a board, [1000 + port] for
      switch ports, [3000 + client] for shard clients;
    - open {!Span.Dur} spans export as ["B"] (begin-only) events so a
      crashed or still-degraded request is visible as an unterminated
      span rather than silently dropped;
    - [corr] and the span args become event [args].

    Output is byte-stable for a fixed-seed capture: events are sorted by
    [(ts, seq)], metadata by pid, and no wall-clock or address-derived
    value is emitted. *)

val chrome_trace_string : ?dropped:int -> Span.event list -> string
(** When [dropped > 0] the capture is partial (the span buffer cap was
    reached): a [trace_truncated] metadata record carrying the drop
    count is stamped into the export so the artifact itself says so,
    not just the metrics dump. *)

val chrome_trace : ?dropped:int -> path:string -> Span.event list -> unit
(** Write {!chrome_trace_string} to [path]. *)

val metrics_json_string : (string * Registry.instrument) list -> string
(** Render a {!Registry.snapshot} as one JSON object keyed by instrument
    name (alphabetical): counters as [{"type":"counter","value":n}],
    gauges with last/min/max, histograms with count/sum/mean and the
    p50/p90/p99 percentiles. *)

val metrics_json : path:string -> (string * Registry.instrument) list -> unit

(** {2 JSON building blocks}

    Shared by the other observability exporters ({!Series}, {!Slo}) so
    every artifact renders strings and floats identically. *)

val buf_add_json_string : Buffer.t -> string -> unit
(** Append a JSON-escaped, quoted string. *)

val buf_add_float : Buffer.t -> float -> unit
(** Append a float as [%.6g]; non-finite values render as [null] (JSON
    has no Infinity/NaN). *)
