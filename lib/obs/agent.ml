(* Per-board telemetry agent: the push half of the in-band telemetry
   plane. Each board runs one agent on its own simulator; every
   [period] cycles it harvests the board's Registry instruments
   ([b<id>.*] samplers only — never another board's) into counter /
   gauge / histogram-bucket deltas, folds in the span completions its
   [Span.set_sink] tap delivered since the last tick, and flushes the
   backlog as sequence-numbered batches through a [send] callback the
   cluster layer wires to the board's own NIC — telemetry shares the
   uplink with the workload and is accounted for, not assumed free.

   The queue is bounded: when the uplink is congested (send keeps
   returning false) or the harvest outruns the wire, the oldest records
   are dropped first — fresh telemetry about a struggling board beats a
   complete history of its past — and every drop is counted into the
   cumulative header fields so the collector's conservation check
   (emitted = delivered + dropped + in-flight) stays exact even when
   the drop notification itself rides a later batch.

   This module deliberately knows nothing about frames or MACs (the net
   layer depends on obs, not vice versa): [send] takes the encoded
   batch payload and returns false on device backpressure, in which
   case the records stay queued for the next tick. *)

module Sim = Apiary_engine.Sim
module Stats = Apiary_engine.Stats

(* ------------------------------------------------------------------ *)
(* Wire format *)

module Wire = struct
  (* Batch payload, big-endian throughout:

     header (17 bytes):
       magic "TB" | board u8 | seq u32 | ts u32
       | cum_records u32 (records sent in all PRIOR batches)
       | cum_dropped u32 (records dropped at the agent so far)
       | n_records u16

     then [n_records] records, each [u16 length | kind u8 | body]:
       kind 1  counter delta:  name | delta u32
       kind 2  gauge value:    name | float bits u64
       kind 3  histogram:      name | n u16 | (bucket u16, delta u32)*n
       kind 4  span done:      name | cat | corr u32 | track u16
                               | ts u32 | dur u32
                               | n_args u8 | (key, val)*n_args

     where strings are [u8 length | bytes] (truncated to 255). The
     per-record length prefix lets a decoder skip kinds it does not
     know. Cumulative counts in every header are what make loss
     accounting exact under gaps: whatever batches die on the wire, the
     next surviving header tells the collector how many records were
     ever sent and dropped before it. *)

  let magic = "TB"
  let header_bytes = 17

  type span_done = {
    s_name : string;
    s_cat : string;
    s_corr : int;
    s_track : int;
    s_ts : int;
    s_dur : int;
    s_args : (string * string) list;
  }

  type record =
    | Counter_delta of string * int
    | Gauge_value of string * float
    | Hist_delta of string * (int * int) list
    | Span_done of span_done

  type batch = {
    b_board : int;
    b_seq : int;  (** 1-based batch sequence number *)
    b_ts : int;  (** harvest/flush cycle at the agent *)
    b_cum_records : int;  (** records sent in batches before this one *)
    b_cum_dropped : int;  (** records drop-oldest'd at the agent so far *)
    b_records : record list;
  }

  let add_u8 b v = Buffer.add_uint8 b (v land 0xff)
  let add_u16 b v = Buffer.add_uint16_be b (v land 0xffff)
  let add_u32 b v = Buffer.add_int32_be b (Int32.of_int v)

  let add_str b s =
    let s = if String.length s > 255 then String.sub s 0 255 else s in
    add_u8 b (String.length s);
    Buffer.add_string b s

  let encode_record r =
    let b = Buffer.create 64 in
    (match r with
    | Counter_delta (name, d) ->
      add_u8 b 1;
      add_str b name;
      add_u32 b d
    | Gauge_value (name, v) ->
      add_u8 b 2;
      add_str b name;
      Buffer.add_int64_be b (Int64.bits_of_float v)
    | Hist_delta (name, deltas) ->
      add_u8 b 3;
      add_str b name;
      add_u16 b (List.length deltas);
      List.iter
        (fun (bucket, d) ->
          add_u16 b bucket;
          add_u32 b d)
        deltas
    | Span_done s ->
      add_u8 b 4;
      add_str b s.s_name;
      add_str b s.s_cat;
      add_u32 b s.s_corr;
      add_u16 b s.s_track;
      add_u32 b s.s_ts;
      add_u32 b s.s_dur;
      let args =
        if List.length s.s_args > 255 then List.filteri (fun i _ -> i < 255) s.s_args
        else s.s_args
      in
      add_u8 b (List.length args);
      List.iter
        (fun (k, v) ->
          add_str b k;
          add_str b v)
        args);
    let body = Buffer.contents b in
    let out = Buffer.create (String.length body + 2) in
    add_u16 out (String.length body);
    Buffer.add_string out body;
    Buffer.contents out

  let encode_batch ~board ~seq ~ts ~cum_records ~cum_dropped encoded_records =
    let b = Buffer.create 256 in
    Buffer.add_string b magic;
    add_u8 b board;
    add_u32 b seq;
    add_u32 b ts;
    add_u32 b cum_records;
    add_u32 b cum_dropped;
    add_u16 b (List.length encoded_records);
    List.iter (Buffer.add_string b) encoded_records;
    Buffer.to_bytes b

  (* Decoding: total (returns None on any truncation); unknown record
     kinds are skipped via the length prefix, not errors. *)

  exception Truncated

  let get_u8 p off =
    if !off + 1 > Bytes.length p then raise Truncated;
    let v = Bytes.get_uint8 p !off in
    off := !off + 1;
    v

  let get_u16 p off =
    if !off + 2 > Bytes.length p then raise Truncated;
    let v = Bytes.get_uint16_be p !off in
    off := !off + 2;
    v

  let get_u32 p off =
    if !off + 4 > Bytes.length p then raise Truncated;
    let v = Int32.to_int (Bytes.get_int32_be p !off) land 0xffffffff in
    off := !off + 4;
    v

  let get_str p off =
    let n = get_u8 p off in
    if !off + n > Bytes.length p then raise Truncated;
    let s = Bytes.sub_string p !off n in
    off := !off + n;
    s

  let decode_record p off =
    let len = get_u16 p off in
    if !off + len > Bytes.length p then raise Truncated;
    let stop = !off + len in
    let r =
      match get_u8 p off with
      | 1 ->
        let name = get_str p off in
        Some (Counter_delta (name, get_u32 p off))
      | 2 ->
        let name = get_str p off in
        if !off + 8 > Bytes.length p then raise Truncated;
        let bits = Bytes.get_int64_be p !off in
        off := !off + 8;
        Some (Gauge_value (name, Int64.float_of_bits bits))
      | 3 ->
        let name = get_str p off in
        let n = get_u16 p off in
        let deltas =
          List.init n (fun _ ->
              let bucket = get_u16 p off in
              (bucket, get_u32 p off))
        in
        Some (Hist_delta (name, deltas))
      | 4 ->
        let s_name = get_str p off in
        let s_cat = get_str p off in
        let s_corr = get_u32 p off in
        let s_track = get_u16 p off in
        let s_ts = get_u32 p off in
        let s_dur = get_u32 p off in
        let n = get_u8 p off in
        let s_args =
          List.init n (fun _ ->
              let k = get_str p off in
              (k, get_str p off))
        in
        Some (Span_done { s_name; s_cat; s_corr; s_track; s_ts; s_dur; s_args })
      | _ -> None (* unknown kind: skip via the length prefix *)
    in
    off := stop;
    r

  let decode_batch p =
    if Bytes.length p < header_bytes || Bytes.sub_string p 0 2 <> magic then
      None
    else
      try
        let off = ref 2 in
        let b_board = get_u8 p off in
        let b_seq = get_u32 p off in
        let b_ts = get_u32 p off in
        let b_cum_records = get_u32 p off in
        let b_cum_dropped = get_u32 p off in
        let n = get_u16 p off in
        let records = ref [] in
        for _ = 1 to n do
          match decode_record p off with
          | Some r -> records := r :: !records
          | None -> ()
        done;
        Some
          {
            b_board;
            b_seq;
            b_ts;
            b_cum_records;
            b_cum_dropped;
            b_records = List.rev !records;
          }
      with Truncated -> None
end

(* ------------------------------------------------------------------ *)
(* Bounded record queue: a ring deque so a failed flush leaves records
   at the front (retry next tick) and overflow drops from the front
   (oldest first). *)

type dq = {
  buf : string array;
  dq_cap : int;
  mutable head : int;
  mutable len : int;
}

let dq_create cap = { buf = Array.make cap ""; dq_cap = cap; head = 0; len = 0 }
let dq_get q i = q.buf.((q.head + i) mod q.dq_cap)

let dq_drop_front q n =
  let n = min n q.len in
  q.head <- (q.head + n) mod q.dq_cap;
  q.len <- q.len - n

(* Returns the number of old records evicted to make room (0 or 1). *)
let dq_push q s =
  let evicted = if q.len = q.dq_cap then (dq_drop_front q 1; 1) else 0 in
  q.buf.((q.head + q.len) mod q.dq_cap) <- s;
  q.len <- q.len + 1;
  evicted

(* ------------------------------------------------------------------ *)

type t = {
  board : int;
  prefix : string;
  period : int;
  batch_bytes : int;
  max_frames : int;
  send : bytes -> bool;
  q : dq;
  (* last-harvest state for delta computation *)
  last_counter : (string, int) Hashtbl.t;
  last_gauge : (string, float) Hashtbl.t;
  last_hist : (string, int array) Hashtbl.t;
  (* accounting *)
  mutable seq : int;
  mutable emitted : int;
  mutable dropped : int;
  mutable sent_records : int;
  mutable sent_batches : int;
  mutable sent_bytes : int;
  mutable backpressure : int;
  mutable detached : bool;
}

let default_period = Env.int "APIARY_AGENT_PERIOD" ~default:2_000
let default_queue = Env.int "APIARY_AGENT_QUEUE" ~default:1_024
let default_batch_bytes = Env.int ~min:64 "APIARY_AGENT_BATCH" ~default:1_200

let enqueue t encoded =
  t.emitted <- t.emitted + 1;
  t.dropped <- t.dropped + dq_push t.q encoded

let on_span t (ev : Span.event) =
  (* Runs under the span recorder's lock, on the domain that completed
     the span — only touch this agent's own state, never Span. *)
  if not t.detached then
    enqueue t
      (Wire.encode_record
         (Wire.Span_done
            {
              Wire.s_name = ev.Span.name;
              s_cat = ev.Span.cat;
              s_corr = ev.Span.corr;
              s_track = ev.Span.track;
              s_ts = ev.Span.ts;
              s_dur = ev.Span.dur;
              s_args = ev.Span.args;
            }))

let harvest t =
  (* snapshot_prefix runs only this board's samplers and returns names
     sorted, so the record order inside a harvest is deterministic. *)
  List.iter
    (fun (name, inst) ->
      match inst with
      | Registry.Counter c ->
        let v = Stats.Counter.value c in
        let last = Option.value ~default:0 (Hashtbl.find_opt t.last_counter name) in
        if v <> last then begin
          Hashtbl.replace t.last_counter name v;
          enqueue t (Wire.encode_record (Wire.Counter_delta (name, v - last)))
        end
      | Registry.Gauge g ->
        let v = Stats.Gauge.value g in
        let changed =
          match Hashtbl.find_opt t.last_gauge name with
          | Some last -> v <> last
          | None -> true
        in
        if changed then begin
          Hashtbl.replace t.last_gauge name v;
          enqueue t (Wire.encode_record (Wire.Gauge_value (name, v)))
        end
      | Registry.Histogram h ->
        let last =
          match Hashtbl.find_opt t.last_hist name with
          | Some a -> a
          | None ->
            let a = Array.make Stats.Histogram.bucket_count 0 in
            Hashtbl.add t.last_hist name a;
            a
        in
        let deltas =
          List.filter_map
            (fun (bucket, count) ->
              let d = count - last.(bucket) in
              if d > 0 then begin
                last.(bucket) <- count;
                Some (bucket, d)
              end
              else None)
            (Stats.Histogram.nonzero_buckets h)
        in
        if deltas <> [] then
          enqueue t (Wire.encode_record (Wire.Hist_delta (name, deltas))))
    (Registry.snapshot_prefix t.prefix)

let flush t ~now =
  let frames = ref 0 in
  while !frames < t.max_frames && t.q.len > 0 do
    (* Fill one batch from the queue front without consuming, so a
       backpressured send retries the same records next tick. *)
    let budget = t.batch_bytes - Wire.header_bytes in
    let taken = ref 0 and bytes = ref 0 and records = ref [] in
    while
      !taken < t.q.len
      && !taken < 0xffff
      && !bytes + String.length (dq_get t.q !taken) <= budget
    do
      let r = dq_get t.q !taken in
      bytes := !bytes + String.length r;
      records := r :: !records;
      incr taken
    done;
    if !taken = 0 then begin
      (* A single record larger than the batch budget can never ship:
         drop it rather than wedging the queue forever. *)
      dq_drop_front t.q 1;
      t.dropped <- t.dropped + 1
    end
    else begin
      let payload =
        Wire.encode_batch ~board:t.board ~seq:(t.seq + 1) ~ts:now
          ~cum_records:t.sent_records ~cum_dropped:t.dropped
          (List.rev !records)
      in
      if t.send payload then begin
        dq_drop_front t.q !taken;
        t.seq <- t.seq + 1;
        t.sent_records <- t.sent_records + !taken;
        t.sent_batches <- t.sent_batches + 1;
        t.sent_bytes <- t.sent_bytes + Bytes.length payload;
        incr frames
      end
      else begin
        t.backpressure <- t.backpressure + 1;
        frames := t.max_frames (* device is full; retry next tick *)
      end
    end
  done

let tick t ~now =
  if not t.detached then begin
    harvest t;
    flush t ~now
  end

let create ?(period = default_period) ?(queue_cap = default_queue)
    ?(batch_bytes = default_batch_bytes) ?(max_frames = 2) ?(until = max_int)
    ~sim ~board ~prefix ~send () =
  if period <= 0 then invalid_arg "Agent.create: period must be positive";
  if queue_cap <= 0 then invalid_arg "Agent.create: queue_cap must be positive";
  if batch_bytes <= Wire.header_bytes + 8 then
    invalid_arg "Agent.create: batch_bytes too small for a header";
  let t =
    {
      board;
      prefix;
      period;
      batch_bytes;
      max_frames;
      send;
      q = dq_create queue_cap;
      last_counter = Hashtbl.create 32;
      last_gauge = Hashtbl.create 32;
      last_hist = Hashtbl.create 8;
      seq = 0;
      emitted = 0;
      dropped = 0;
      sent_records = 0;
      sent_batches = 0;
      sent_bytes = 0;
      backpressure = 0;
      detached = false;
    }
  in
  Span.set_sink ~board (fun ev -> on_span t ev);
  (* Staggered by board id so the ToR never sees a synchronized burst
     of telemetry from every board at once (same discipline as the
     health beacons). *)
  Sim.every sim ~start:(period + board) period (fun () ->
      (* [until] quiesces the uplink before a run's end so conservation
         can be read with the wire provably empty: whatever the agent
         still holds then is exactly "in flight". *)
      if Sim.now sim <= until then tick t ~now:(Sim.now sim));
  t

let detach t =
  t.detached <- true;
  Span.clear_sink ~board:t.board

let board t = t.board
let period t = t.period
let seq t = t.seq
let emitted t = t.emitted
let dropped t = t.dropped
let queued t = t.q.len
let sent_records t = t.sent_records
let sent_batches t = t.sent_batches
let sent_bytes t = t.sent_bytes
let backpressure t = t.backpressure
