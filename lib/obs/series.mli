(** Windowed telemetry time-series: the time dimension of the metrics
    layer.

    A {!t} holds, per named metric, a bounded ring of {e cycle-windowed
    rollups} — count / sum / min / max plus a log-bucketed histogram per
    window — so tail latency (p50/p99/p999) is reportable {e over time},
    not just end-of-run. All windows share one grid anchored at cycle 0
    with a fixed width; closing is lazy (each {!observe} first closes
    any windows the sample has moved past, empty windows included, so
    the series stays contiguous) and can also be driven by the sim clock
    via {!attach}. When the ring wraps, the oldest window folds into a
    single {e evicted} aggregate rather than being lost, preserving the
    conservation invariant

    {[ evicted + sum-of-ring + open = whole-run totals ]}

    exactly, for both counts and sums.

    Timestamps are simulation cycles and every exported value is an
    integer, so {!json_string} is byte-stable for a fixed capture.

    This module subsumes the simple [Stats.Series] interval accumulator
    for observability use: that one keeps every bucket forever and only
    a float sum; this one is bounded and carries full distribution
    shape. *)

type t

type metric
(** Handle to one named metric inside a {!t} (avoids the name hash on
    hot paths; obtain with {!metric}). *)

type rollup = {
  r_start : int;  (** first cycle of the window *)
  r_count : int;
  r_sum : int;
  r_min : int;  (** 0 when the window saw no samples *)
  r_max : int;
  r_p50 : int;
  r_p90 : int;
  r_p99 : int;
  r_p999 : int;  (** bucket-resolution percentiles (±~3%) *)
}

val create : ?capacity:int -> window:int -> unit -> t
(** [create ~window ()] makes a series with [window]-cycle windows and a
    ring of [capacity] (default 128) retained windows per metric. Raises
    [Invalid_argument] unless both are positive. *)

val window : t -> int
val capacity : t -> int

val metric : t -> string -> metric
(** Get or create the named metric. *)

val observe : t -> now:int -> string -> int -> unit
(** Record one sample (clamped at 0) at cycle [now]. Closes any windows
    that end at or before [now] first. Samples must arrive in
    non-decreasing cycle order per metric — simulation time only moves
    forward. *)

val close_upto : t -> int -> unit
(** Close every metric's windows ending at or before the given cycle
    (empty windows included). Idempotent. *)

val attach : t -> Apiary_engine.Sim.t -> unit
(** Arm a periodic event-phase hook that calls {!close_upto} every
    window, so windows close on the sim clock even when a metric goes
    quiet. Only needed when rollups are read live mid-run (e.g. a
    dashboard): the per-window event bounds the engine's idle
    fast-forward, so batch captures that only export at the end should
    rely on lazy closing in {!observe} plus a final {!close_upto}. *)

val names : t -> string list
(** Registered metric names, sorted. *)

val rollups : t -> string -> rollup list
(** Retained (ring) windows, oldest first; [[]] for unknown metrics. *)

val total_count : t -> string -> int
val total_sum : t -> string -> int
(** Whole-run totals — every sample ever observed, including evicted and
    open-window ones. *)

val open_count : t -> string -> int
(** Samples in the still-open window. *)

val closed : t -> string -> int
(** Windows ever closed (retained + evicted). *)

val evicted : t -> string -> int * int * int
(** [(windows, count, sum)] folded out of the ring so far. *)

val json_string : t -> string
(** Byte-stable document:
    [{"window", "capacity", "metrics": [{"name", "total_count",
    "total_sum", "evicted_windows", "evicted_count", "evicted_sum",
    "open_count", "open_sum", "windows": [{"start", "count", "sum",
    "min", "max", "p50", "p90", "p99", "p999"}, ...]}, ...]}]
    with metrics sorted by name. *)

val write_json : t -> string -> unit
