(* Tolerant environment-knob parsing. Observability must never take the
   process down: a typo'd APIARY_* value at boot should cost one stderr
   line and a fallback to the default, not an [int_of_string] exception
   before the simulation even starts. *)

let warned : (string, unit) Hashtbl.t = Hashtbl.create 8
let warned_lock = Mutex.create ()

(* One warning per variable per process: boot code re-reads knobs from
   multiple modules, and a misconfigured CI job should not scroll the
   same complaint for every board. *)
let warn_once name raw ~min ~default =
  Mutex.lock warned_lock;
  let first = not (Hashtbl.mem warned name) in
  if first then Hashtbl.add warned name ();
  Mutex.unlock warned_lock;
  if first then
    Printf.eprintf
      "apiary: ignoring %s=%S (expected an integer >= %d); using default %d\n%!"
      name raw min default

let int ?(min = 1) name ~default =
  match Sys.getenv_opt name with
  | None -> default
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some v when v >= min -> v
    | Some _ | None ->
      warn_once name s ~min ~default;
      default)
