module Stats = Apiary_engine.Stats
module Sim = Apiary_engine.Sim

(* A closed window's aggregates. The histogram is kept so percentiles
   can be rendered at export time and merged into the evicted aggregate
   when the ring wraps. *)
type rollup_i = {
  ri_start : int;
  ri_count : int;
  ri_sum : int;
  ri_min : int;  (* max_int when the window saw no samples *)
  ri_max : int;
  ri_hist : Stats.Histogram.t;
}

type rollup = {
  r_start : int;
  r_count : int;
  r_sum : int;
  r_min : int;  (* 0 when the window saw no samples *)
  r_max : int;
  r_p50 : int;
  r_p90 : int;
  r_p99 : int;
  r_p999 : int;
}

type metric = {
  m_name : string;
  mutable m_edge : int;  (* start cycle of the open window *)
  (* open-window aggregates *)
  mutable o_count : int;
  mutable o_sum : int;
  mutable o_min : int;
  mutable o_max : int;
  o_hist : Stats.Histogram.t;
  (* bounded ring of closed windows; slot = pushed mod capacity *)
  ring : rollup_i option array;
  mutable pushed : int;  (* windows ever closed *)
  (* aggregate of windows evicted from the ring *)
  mutable e_count : int;
  mutable e_sum : int;
  mutable e_min : int;
  mutable e_max : int;
  e_hist : Stats.Histogram.t;
  (* whole-run totals; conservation: evicted + ring + open = total *)
  mutable t_count : int;
  mutable t_sum : int;
}

type t = {
  window : int;
  capacity : int;
  metrics : (string, metric) Hashtbl.t;
}

let create ?(capacity = 128) ~window () =
  if window <= 0 then invalid_arg "Series.create: window must be positive";
  if capacity <= 0 then invalid_arg "Series.create: capacity must be positive";
  { window; capacity; metrics = Hashtbl.create 16 }

let window t = t.window
let capacity t = t.capacity

let metric t name =
  match Hashtbl.find_opt t.metrics name with
  | Some m -> m
  | None ->
    let m =
      {
        m_name = name;
        m_edge = 0;
        o_count = 0;
        o_sum = 0;
        o_min = max_int;
        o_max = 0;
        o_hist = Stats.Histogram.create (name ^ ".open");
        ring = Array.make t.capacity None;
        pushed = 0;
        e_count = 0;
        e_sum = 0;
        e_min = max_int;
        e_max = 0;
        e_hist = Stats.Histogram.create (name ^ ".evicted");
        t_count = 0;
        t_sum = 0;
      }
    in
    Hashtbl.replace t.metrics name m;
    m

(* Close the open window [m_edge, m_edge+window): snapshot the open
   aggregates into a fresh ring entry (empty windows included, so the
   series stays contiguous in time), evicting the oldest entry into the
   evicted aggregate when the ring is full. *)
let close_window t m =
  let hist = Stats.Histogram.create (m.m_name ^ ".w") in
  Stats.Histogram.merge_into ~src:m.o_hist ~dst:hist;
  let r =
    {
      ri_start = m.m_edge;
      ri_count = m.o_count;
      ri_sum = m.o_sum;
      ri_min = m.o_min;
      ri_max = m.o_max;
      ri_hist = hist;
    }
  in
  let slot = m.pushed mod t.capacity in
  (match m.ring.(slot) with
  | None -> ()
  | Some old ->
    m.e_count <- m.e_count + old.ri_count;
    m.e_sum <- m.e_sum + old.ri_sum;
    if old.ri_min < m.e_min then m.e_min <- old.ri_min;
    if old.ri_max > m.e_max then m.e_max <- old.ri_max;
    Stats.Histogram.merge_into ~src:old.ri_hist ~dst:m.e_hist);
  m.ring.(slot) <- Some r;
  m.pushed <- m.pushed + 1;
  m.m_edge <- m.m_edge + t.window;
  m.o_count <- 0;
  m.o_sum <- 0;
  m.o_min <- max_int;
  m.o_max <- 0;
  Stats.Histogram.reset m.o_hist

let close_metric_upto t m now =
  while m.m_edge + t.window <= now do
    close_window t m
  done

let observe t ~now name v =
  let m = metric t name in
  close_metric_upto t m now;
  let v = max 0 v in
  m.o_count <- m.o_count + 1;
  m.o_sum <- m.o_sum + v;
  if v < m.o_min then m.o_min <- v;
  if v > m.o_max then m.o_max <- v;
  Stats.Histogram.record m.o_hist v;
  m.t_count <- m.t_count + 1;
  m.t_sum <- m.t_sum + v

let close_upto t now =
  Hashtbl.iter (fun _ m -> close_metric_upto t m now) t.metrics

let attach t sim =
  Sim.every sim ~start:t.window t.window (fun () -> close_upto t (Sim.now sim))

let names t =
  Hashtbl.fold (fun k _ acc -> k :: acc) t.metrics []
  |> List.sort compare

let ring_rollups m capacity =
  let first = max 0 (m.pushed - capacity) in
  let out = ref [] in
  for i = m.pushed - 1 downto first do
    match m.ring.(i mod capacity) with
    | Some r -> out := r :: !out
    | None -> ()
  done;
  !out

let view (r : rollup_i) =
  {
    r_start = r.ri_start;
    r_count = r.ri_count;
    r_sum = r.ri_sum;
    r_min = (if r.ri_count = 0 then 0 else r.ri_min);
    r_max = r.ri_max;
    r_p50 = Stats.Histogram.percentile r.ri_hist 50.0;
    r_p90 = Stats.Histogram.percentile r.ri_hist 90.0;
    r_p99 = Stats.Histogram.percentile r.ri_hist 99.0;
    r_p999 = Stats.Histogram.percentile r.ri_hist 99.9;
  }

let rollups t name =
  match Hashtbl.find_opt t.metrics name with
  | None -> []
  | Some m -> List.map view (ring_rollups m t.capacity)

let total_count t name =
  match Hashtbl.find_opt t.metrics name with
  | None -> 0
  | Some m -> m.t_count

let total_sum t name =
  match Hashtbl.find_opt t.metrics name with
  | None -> 0
  | Some m -> m.t_sum

let open_count t name =
  match Hashtbl.find_opt t.metrics name with
  | None -> 0
  | Some m -> m.o_count

let closed t name =
  match Hashtbl.find_opt t.metrics name with
  | None -> 0
  | Some m -> m.pushed

let evicted t name =
  match Hashtbl.find_opt t.metrics name with
  | None -> (0, 0, 0)
  | Some m -> (max 0 (m.pushed - t.capacity), m.e_count, m.e_sum)

(* ------------------------------------------------------------------ *)
(* Export: all-integer JSON, metrics sorted by name — byte-stable for a
   fixed capture. *)

let buf_add_rollup buf r =
  Buffer.add_string buf
    (Printf.sprintf
       "{\"start\": %d, \"count\": %d, \"sum\": %d, \"min\": %d, \"max\": %d, \
        \"p50\": %d, \"p90\": %d, \"p99\": %d, \"p999\": %d}"
       r.r_start r.r_count r.r_sum r.r_min r.r_max r.r_p50 r.r_p90 r.r_p99
       r.r_p999)

let json_string t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf "{\n  \"window\": %d,\n  \"capacity\": %d,\n  \"metrics\": [\n"
       t.window t.capacity);
  let metric_names = names t in
  List.iteri
    (fun i name ->
      let m = Hashtbl.find t.metrics name in
      let ev_windows, ev_count, ev_sum = evicted t name in
      Buffer.add_string buf "    {\"name\": ";
      Export.buf_add_json_string buf name;
      Buffer.add_string buf
        (Printf.sprintf
           ",\n     \"total_count\": %d, \"total_sum\": %d,\n     \
            \"evicted_windows\": %d, \"evicted_count\": %d, \"evicted_sum\": \
            %d,\n     \"open_count\": %d, \"open_sum\": %d,\n     \"windows\": [\n"
           m.t_count m.t_sum ev_windows ev_count ev_sum m.o_count m.o_sum);
      let rs = rollups t name in
      List.iteri
        (fun j r ->
          Buffer.add_string buf "       ";
          buf_add_rollup buf r;
          if j < List.length rs - 1 then Buffer.add_char buf ',';
          Buffer.add_char buf '\n')
        rs;
      Buffer.add_string buf "     ]}";
      if i < List.length metric_names - 1 then Buffer.add_char buf ',';
      Buffer.add_char buf '\n')
    metric_names;
  Buffer.add_string buf "  ]\n}\n";
  Buffer.contents buf

let write_json t path =
  let oc = open_out path in
  output_string oc (json_string t);
  close_out oc
