module Stats = Apiary_engine.Stats

type instrument =
  | Counter of Stats.Counter.t
  | Gauge of Stats.Gauge.t
  | Histogram of Stats.Histogram.t

(* Process-global; guarded for safety when parallel sweeps attach, though
   deterministic snapshots (like span capture) want a single domain. *)
let lock = Mutex.create ()
let instruments : (string, instrument) Hashtbl.t = Hashtbl.create 64
let samplers : (string, unit -> unit) Hashtbl.t = Hashtbl.create 16

let with_lock f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let kind_name = function
  | Counter _ -> "counter"
  | Gauge _ -> "gauge"
  | Histogram _ -> "histogram"

let get_or_create name mk match_ =
  with_lock (fun () ->
      match Hashtbl.find_opt instruments name with
      | Some i -> (
        match match_ i with
        | Some v -> v
        | None ->
          invalid_arg
            (Printf.sprintf "Obs registry: %s is a %s" name (kind_name i)))
      | None ->
        let v = mk () in
        v)

let counter name =
  get_or_create name
    (fun () ->
      let c = Stats.Counter.create name in
      Hashtbl.replace instruments name (Counter c);
      c)
    (function Counter c -> Some c | _ -> None)

let gauge name =
  get_or_create name
    (fun () ->
      let g = Stats.Gauge.create name in
      Hashtbl.replace instruments name (Gauge g);
      g)
    (function Gauge g -> Some g | _ -> None)

let histogram name =
  get_or_create name
    (fun () ->
      let h = Stats.Histogram.create name in
      Hashtbl.replace instruments name (Histogram h);
      h)
    (function Histogram h -> Some h | _ -> None)

let register name i = with_lock (fun () -> Hashtbl.replace instruments name i)

let add_sampler ~name f = with_lock (fun () -> Hashtbl.replace samplers name f)

let sorted_bindings tbl =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let sample () =
  let fns = with_lock (fun () -> sorted_bindings samplers) in
  List.iter (fun (_, f) -> f ()) fns

let snapshot () =
  sample ();
  with_lock (fun () -> sorted_bindings instruments)

(* Prefix-restricted views: a per-board telemetry agent harvesting
   [b<id>.*] must run only its own board's samplers — running them all
   would read other boards' component state from this domain, which a
   partitioned engine forbids mid-run. *)

let sample_prefix prefix =
  let fns = with_lock (fun () -> sorted_bindings samplers) in
  List.iter
    (fun (name, f) -> if String.starts_with ~prefix name then f ())
    fns

let snapshot_prefix prefix =
  sample_prefix prefix;
  with_lock (fun () ->
      List.filter
        (fun (name, _) -> String.starts_with ~prefix name)
        (sorted_bindings instruments))

let reset () =
  with_lock (fun () ->
      Hashtbl.iter
        (fun _ i ->
          match i with
          | Counter c -> Stats.Counter.reset c
          | Gauge g -> Stats.Gauge.reset g
          | Histogram h -> Stats.Histogram.reset h)
        instruments)

(* ------------------------------------------------------------------ *)
(* Built-in samplers.

   [obs.span.*] makes trace truncation detectable from the metrics dump
   alone: a nonzero [obs.span.dropped] means the Chrome-trace export is
   missing events. [prof.*] folds the APIARY_PROF per-ticker wall-time
   rows into the same pipeline, so --perf and --obs share one metrics
   surface; with APIARY_PROF unset the sampler publishes nothing, which
   keeps obs metric dumps byte-stable. Built-ins are re-installed by
   {!clear}, so they survive between unrelated runs like the registry
   itself does. *)

module Profile = Apiary_engine.Profile

let install_builtins () =
  add_sampler ~name:"obs.span" (fun () ->
      Stats.Gauge.set (gauge "obs.span.events") (float_of_int (Span.count ()));
      Stats.Gauge.set (gauge "obs.span.dropped")
        (float_of_int (Span.dropped ()));
      Stats.Gauge.set (gauge "obs.span.sampled")
        (float_of_int (Span.sampled ())));
  add_sampler ~name:"obs.prof" (fun () ->
      if Profile.enabled () then
        List.iter
          (fun (name, calls, skipped, seconds) ->
            Stats.Gauge.set
              (gauge (Printf.sprintf "prof.%s.calls" name))
              (float_of_int calls);
            Stats.Gauge.set
              (gauge (Printf.sprintf "prof.%s.skipped" name))
              (float_of_int skipped);
            Stats.Gauge.set (gauge (Printf.sprintf "prof.%s.seconds" name)) seconds)
          (Profile.snapshot ()))

let clear () =
  with_lock (fun () ->
      Hashtbl.reset instruments;
      Hashtbl.reset samplers);
  install_builtins ()

let () = install_builtins ()
