module Stats = Apiary_engine.Stats

type instrument =
  | Counter of Stats.Counter.t
  | Gauge of Stats.Gauge.t
  | Histogram of Stats.Histogram.t

(* Process-global; guarded for safety when parallel sweeps attach, though
   deterministic snapshots (like span capture) want a single domain. *)
let lock = Mutex.create ()
let instruments : (string, instrument) Hashtbl.t = Hashtbl.create 64
let samplers : (string, unit -> unit) Hashtbl.t = Hashtbl.create 16

let with_lock f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let kind_name = function
  | Counter _ -> "counter"
  | Gauge _ -> "gauge"
  | Histogram _ -> "histogram"

let get_or_create name mk match_ =
  with_lock (fun () ->
      match Hashtbl.find_opt instruments name with
      | Some i -> (
        match match_ i with
        | Some v -> v
        | None ->
          invalid_arg
            (Printf.sprintf "Obs registry: %s is a %s" name (kind_name i)))
      | None ->
        let v = mk () in
        v)

let counter name =
  get_or_create name
    (fun () ->
      let c = Stats.Counter.create name in
      Hashtbl.replace instruments name (Counter c);
      c)
    (function Counter c -> Some c | _ -> None)

let gauge name =
  get_or_create name
    (fun () ->
      let g = Stats.Gauge.create name in
      Hashtbl.replace instruments name (Gauge g);
      g)
    (function Gauge g -> Some g | _ -> None)

let histogram name =
  get_or_create name
    (fun () ->
      let h = Stats.Histogram.create name in
      Hashtbl.replace instruments name (Histogram h);
      h)
    (function Histogram h -> Some h | _ -> None)

let register name i = with_lock (fun () -> Hashtbl.replace instruments name i)

let add_sampler ~name f = with_lock (fun () -> Hashtbl.replace samplers name f)

let sorted_bindings tbl =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let sample () =
  let fns = with_lock (fun () -> sorted_bindings samplers) in
  List.iter (fun (_, f) -> f ()) fns

let snapshot () =
  sample ();
  with_lock (fun () -> sorted_bindings instruments)

let reset () =
  with_lock (fun () ->
      Hashtbl.iter
        (fun _ i ->
          match i with
          | Counter c -> Stats.Counter.reset c
          | Gauge g -> Stats.Gauge.reset g
          | Histogram h -> Stats.Histogram.reset h)
        instruments)

let clear () =
  with_lock (fun () ->
      Hashtbl.reset instruments;
      Hashtbl.reset samplers)
