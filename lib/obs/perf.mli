(** Hardware-style performance-counter block (one per tile monitor, one
    per NoC router).

    A block is a fixed bank of counters with {e architected slot
    numbers}: slot [flits] is always flits forwarded, slot [denials]
    always capability denials, and so on — the layout is part of the
    in-band wire format ({!encode}/{!decode}), so the stat service can
    ship a block across the fabric (or the rack network) as raw bytes
    and any reader decodes it positionally, like a memory-mapped counter
    page in real silicon.

    Counters are updated cycle-accurately by their owning component and
    never influence simulation behaviour, so enabling readers cannot
    perturb a run. [occ_peak] is a high-watermark (aggregates by max);
    every other slot is a monotonic event count (aggregates by sum). *)

type t

(** {1 Architected slots} *)

val flits : int
(** Flits forwarded by a router. *)

val busy : int
(** Cycles a router moved at least one flit. *)

val credit_stalls : int
(** Arbitration candidates blocked only by an empty credit counter. *)

val occ_peak : int
(** Input-buffer occupancy high-watermark. *)

val msgs_in : int
(** Messages delivered into the monitor. *)

val msgs_out : int
(** Messages admitted onto the NoC. *)

val syscalls : int
(** Shell calls that enqueued monitor egress. *)

val denials : int
(** Egress denied by capability/reply-window checks. *)

val drops : int
(** Messages dropped (full queues, late replies). *)

val nacks : int
(** NACKs emitted by a fail-stopped tile. *)

val faults : int
(** Fail-stop transitions. *)

val heartbeats : int
(** Health-layer liveness checks passed. *)

val n_counters : int
val name : int -> string
val index_of_name : string -> int option

(** {1 Operations} *)

val create : unit -> t
val read : t -> int -> int
val incr : t -> int -> unit
val add : t -> int -> int -> unit
val set_max : t -> int -> int -> unit
(** Raise a watermark slot to [v] if below it. *)

val reset : t -> unit

val merge_into : src:t -> dst:t -> unit
(** Aggregate [src] into [dst]: watermarks by max, counts by sum — a
    board summary is itself a well-formed block. *)

val total : t -> int
(** Sum of every slot — the cheap "did anything change" digest used by
    engine-invariance tests. *)

(** {1 In-band wire format} *)

val encoded_size : int
(** [n_counters * 8] bytes: big-endian u64 per slot, no header. *)

val encode : t -> bytes
val decode : bytes -> t option
(** [None] if the payload is not exactly {!encoded_size} bytes. *)

val to_assoc : t -> (string * int) list
(** Name/value pairs in slot order (rendering). *)
