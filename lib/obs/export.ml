module Stats = Apiary_engine.Stats

let buf_add_json_string b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

(* JSON has no Infinity/NaN; an untouched gauge's min/max render as null. *)
let buf_add_float b x =
  if Float.is_finite x then Buffer.add_string b (Printf.sprintf "%.6g" x)
  else Buffer.add_string b "null"

(* pid 0 = rack-level (board -1); pid b+1 = board b. *)
let pid_of_board board = board + 1

let add_args b args =
  Buffer.add_string b ",\"args\":{";
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char b ',';
      buf_add_json_string b k;
      Buffer.add_char b ':';
      buf_add_json_string b v)
    args;
  Buffer.add_char b '}'

let add_event b (ev : Span.event) =
  Buffer.add_string b "{\"name\":";
  buf_add_json_string b ev.name;
  Buffer.add_string b ",\"cat\":";
  buf_add_json_string b ev.cat;
  let ph, dur =
    match ev.ph with
    | Span.Mark -> ("i", None)
    | Span.Dur -> if ev.dur < 0 then ("B", None) else ("X", Some ev.dur)
  in
  Buffer.add_string b (Printf.sprintf ",\"ph\":\"%s\"" ph);
  Buffer.add_string b
    (Printf.sprintf ",\"pid\":%d,\"tid\":%d,\"ts\":%d" (pid_of_board ev.board)
       ev.track ev.ts);
  (match dur with
  | Some d -> Buffer.add_string b (Printf.sprintf ",\"dur\":%d" d)
  | None -> ());
  if ev.ph = Span.Mark then Buffer.add_string b ",\"s\":\"t\"";
  let args =
    if ev.corr <> 0 then ("corr", string_of_int ev.corr) :: ev.args else ev.args
  in
  if args <> [] then add_args b args;
  Buffer.add_char b '}'

let chrome_trace_string ?(dropped = 0) events =
  let events =
    List.stable_sort
      (fun (a : Span.event) (b : Span.event) ->
        if a.ts <> b.ts then compare a.ts b.ts else compare a.seq b.seq)
      events
  in
  (* Every (board, track) pair that appears gets a process_name record so
     Perfetto labels the rows; sorted for byte-stable output. *)
  let pids =
    List.fold_left
      (fun acc (e : Span.event) ->
        if List.mem e.board acc then acc else e.board :: acc)
      [] events
    |> List.sort compare
  in
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
  let first = ref true in
  let sep () =
    if !first then first := false else Buffer.add_char b ',';
    Buffer.add_string b "\n"
  in
  (* A truncated capture must say so in the artifact itself, not only in
     the metrics dump: stamp the drop count as a metadata record. *)
  if dropped > 0 then begin
    sep ();
    Buffer.add_string b
      (Printf.sprintf
         "{\"name\":\"trace_truncated\",\"ph\":\"M\",\"pid\":0,\"args\":{\"dropped\":\"%d\"}}"
         dropped)
  end;
  List.iter
    (fun board ->
      sep ();
      let label =
        if board < 0 then "rack" else Printf.sprintf "board %d" board
      in
      Buffer.add_string b
        (Printf.sprintf
           "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,\"args\":{\"name\":\"%s\"}}"
           (pid_of_board board) label))
    pids;
  List.iter
    (fun ev ->
      sep ();
      add_event b ev)
    events;
  Buffer.add_string b "\n]}\n";
  Buffer.contents b

let write_file ~path s =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc s)

let chrome_trace ?dropped ~path events =
  write_file ~path (chrome_trace_string ?dropped events)

let add_instrument b = function
  | Registry.Counter c ->
    Buffer.add_string b
      (Printf.sprintf "{\"type\":\"counter\",\"value\":%d}"
         (Stats.Counter.value c))
  | Registry.Gauge g ->
    Buffer.add_string b "{\"type\":\"gauge\",\"value\":";
    buf_add_float b (Stats.Gauge.value g);
    Buffer.add_string b ",\"min\":";
    buf_add_float b (Stats.Gauge.min g);
    Buffer.add_string b ",\"max\":";
    buf_add_float b (Stats.Gauge.max g);
    Buffer.add_char b '}'
  | Registry.Histogram h ->
    let n = Stats.Histogram.count h in
    Buffer.add_string b
      (Printf.sprintf "{\"type\":\"histogram\",\"count\":%d,\"sum\":%d" n
         (Stats.Histogram.sum h));
    Buffer.add_string b ",\"mean\":";
    buf_add_float b (Stats.Histogram.mean h);
    Buffer.add_string b
      (Printf.sprintf ",\"p50\":%d,\"p90\":%d,\"p99\":%d,\"max\":%d}"
         (Stats.Histogram.percentile h 50.0)
         (Stats.Histogram.percentile h 90.0)
         (Stats.Histogram.percentile h 99.0)
         (if n = 0 then 0 else Stats.Histogram.max_value h))

let metrics_json_string snapshot =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{";
  List.iteri
    (fun i (name, inst) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b "\n";
      buf_add_json_string b name;
      Buffer.add_char b ':';
      add_instrument b inst)
    snapshot;
  Buffer.add_string b "\n}\n";
  Buffer.contents b

let metrics_json ~path snapshot = write_file ~path (metrics_json_string snapshot)
