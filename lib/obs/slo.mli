(** Per-tenant SLO objects: error-budget accounting and multi-window
    burn-rate alerting (the Google-SRE alerting recipe, on simulation
    cycles instead of wall minutes).

    Each request outcome is classified good or bad against the tenant's
    latency objective and accumulated into fixed-width cycle windows. A
    {e burn rate} is the observed bad fraction divided by the budgeted
    bad fraction [(100 - target_pct)/100]: burn 1.0 spends the error
    budget exactly at the sustainable rate. Two horizons are watched at
    every window close:

    - {b Page}: the fast horizon ([fast_windows]) {e and} the
      just-closed window both burn at [page_burn] — a fast, confirmed
      bleed;
    - {b Ticket}: the slow horizon ([slow_windows]) {e and} the fast
      horizon both burn at [ticket_burn] — a slow leak.

    Alerts are edge-triggered (one per excursion) and re-arm once the
    horizon drops back below its threshold. A [min_samples] traffic
    guard keeps near-idle windows from alerting on a handful of
    requests. Because windows close on simulation cycles and evaluation
    is pure integer/float arithmetic over deterministic counts, the
    alert stream and {!report_json_string} are byte-stable for a fixed
    run. *)

type severity = Page | Ticket

type alert = {
  a_cycle : int;  (** window-close cycle the rule fired at *)
  a_severity : severity;
  a_burn_fast : float;
  a_burn_slow : float;
}

type objective = {
  tenant : string;
  target_pct : float;  (** e.g. 99.0 — fraction of requests that must be good *)
  latency_cycles : int;  (** the latency bound the tenant is judged against *)
  window : int;  (** accounting window width, cycles *)
  fast_windows : int;
  slow_windows : int;  (** burn horizons, in windows; also the ring size *)
  page_burn : float;
  ticket_burn : float;
  min_samples : int;  (** horizon traffic guard *)
}

val default_objective :
  ?target_pct:float ->
  ?window:int ->
  ?fast_windows:int ->
  ?slow_windows:int ->
  ?page_burn:float ->
  ?ticket_burn:float ->
  ?min_samples:int ->
  tenant:string ->
  latency_cycles:int ->
  unit ->
  objective
(** Defaults: target 99%, window 5000 cycles, fast 2 / slow 12 windows,
    page burn 8.0, ticket burn 2.0, min 20 samples per horizon. *)

type t

val create : objective -> t
val objective : t -> objective

val observe : t -> now:int -> good:bool -> unit
(** Record one request outcome at cycle [now]. Closes (and evaluates)
    any windows ending at or before [now] first; cycles must be
    non-decreasing. *)

val observe_n : t -> now:int -> good:int -> bad:int -> unit
(** Batch form for delta-fed callers (e.g. [apiary top] differencing a
    latency histogram between renders). *)

val check : t -> now:int -> unit
(** Close windows up to [now] without recording anything, so alerts
    still fire on schedule when a tenant goes quiet mid-incident. *)

val on_alert : t -> (alert -> unit) -> unit
(** Subscribe; called synchronously, in subscription order, as alerts
    fire. *)

val attainment_pct : t -> float
(** Whole-run good fraction, percent; 100 when no traffic yet. *)

val budget_remaining_pct : t -> float
(** Unspent fraction of the whole-run error budget, percent, clamped at
    0. *)

val burn_rate : t -> windows:int -> float
(** Burn over the last [windows] closed windows (capped at
    [slow_windows]); 0 under the traffic guard. *)

val first_below_target : t -> int option
(** First cycle whole-run attainment dropped below target (with at
    least [min_samples] observed) — the "SLO actually violated" moment
    burn alerts are meant to precede. *)

val first_alert_cycle : t -> int option
val alerts : t -> alert list
(** Oldest first. *)

val good_total : t -> int
val bad_total : t -> int

val report_json_string : t list -> string
(** Byte-stable document:
    [{"tenants": [{"tenant", "target_pct", "latency_cycles", "window",
    "good", "bad", "attainment_pct", "budget_remaining_pct",
    "burn_fast", "burn_slow", "first_below_target_cycle",
    "first_alert_cycle", "alerts": [{"cycle", "severity", "burn_fast",
    "burn_slow"}, ...]}, ...]}]. *)

val write_report : t list -> string -> unit

val severity_to_string : severity -> string
(** ["page"] / ["ticket"]. *)
