(** Tolerant parsing of APIARY_* environment knobs.

    Observability configuration must never crash the process: a garbage
    or out-of-range value costs one stderr warning (per variable, per
    process) and falls back to the built-in default, instead of
    [int_of_string] raising at boot. *)

val int : ?min:int -> string -> default:int -> int
(** [int name ~default] reads the integer environment variable [name].
    Returns [default] when unset; when set but unparsable or below
    [min] (default 1), prints a one-shot stderr warning naming the
    variable and the rejected value, and returns [default]. *)
