type severity = Page | Ticket

type alert = {
  a_cycle : int;
  a_severity : severity;
  a_burn_fast : float;
  a_burn_slow : float;
}

type objective = {
  tenant : string;
  target_pct : float;
  latency_cycles : int;
  window : int;
  fast_windows : int;
  slow_windows : int;
  page_burn : float;
  ticket_burn : float;
  min_samples : int;
}

let default_objective ?(target_pct = 99.0) ?(window = 5_000)
    ?(fast_windows = 2) ?(slow_windows = 12) ?(page_burn = 8.0)
    ?(ticket_burn = 2.0) ?(min_samples = 20) ~tenant ~latency_cycles () =
  if not (target_pct > 0.0 && target_pct < 100.0) then
    invalid_arg "Slo.default_objective: target_pct must be in (0, 100)";
  if window <= 0 then invalid_arg "Slo.default_objective: window must be > 0";
  if fast_windows < 1 || slow_windows < fast_windows then
    invalid_arg "Slo.default_objective: need 1 <= fast_windows <= slow_windows";
  {
    tenant;
    target_pct;
    latency_cycles;
    window;
    fast_windows;
    slow_windows;
    page_burn;
    ticket_burn;
    min_samples;
  }

type t = {
  obj : objective;
  (* ring of the last [slow_windows] closed windows: (good, bad) *)
  ring : (int * int) array;
  mutable closed : int;  (* windows ever closed *)
  mutable edge : int;  (* start cycle of the open window *)
  mutable w_good : int;
  mutable w_bad : int;
  (* whole-run totals *)
  mutable good : int;
  mutable bad : int;
  (* edge-triggered alert state with re-arm hysteresis *)
  mutable page_active : bool;
  mutable ticket_active : bool;
  mutable alerts : alert list;  (* newest first *)
  mutable first_below : int option;
  mutable subscribers : (alert -> unit) list;
  (* 1/(1 - target) as a fraction in basis points, precomputed *)
  target_bp : int;
}

let create obj =
  {
    obj;
    ring = Array.make obj.slow_windows (0, 0);
    closed = 0;
    edge = 0;
    w_good = 0;
    w_bad = 0;
    good = 0;
    bad = 0;
    page_active = false;
    ticket_active = false;
    alerts = [];
    first_below = None;
    subscribers = [];
    target_bp = int_of_float ((obj.target_pct *. 100.0) +. 0.5);
  }

let objective t = t.obj
let on_alert t f = t.subscribers <- f :: t.subscribers

(* Burn rate over the last [k] closed windows: observed bad fraction
   divided by the budgeted bad fraction (1 - target). Burn 1.0 spends
   the error budget exactly at the sustainable rate; burn 8 over the
   fast horizon is the classic page threshold. Returns 0 under the
   traffic guard — alerting on a handful of samples is noise. *)
let burn_over t k =
  let k = min k (min t.closed t.obj.slow_windows) in
  let g = ref 0 and b = ref 0 in
  for i = 1 to k do
    let gi, bi = t.ring.((t.closed - i) mod t.obj.slow_windows) in
    g := !g + gi;
    b := !b + bi
  done;
  let total = !g + !b in
  if total < t.obj.min_samples then 0.0
  else
    let bad_frac = float_of_int !b /. float_of_int total in
    let budget_frac = (100.0 -. t.obj.target_pct) /. 100.0 in
    bad_frac /. budget_frac

let burn_rate t ~windows = burn_over t windows

let fire t severity ~cycle =
  let a =
    {
      a_cycle = cycle;
      a_severity = severity;
      a_burn_fast = burn_over t t.obj.fast_windows;
      a_burn_slow = burn_over t t.obj.slow_windows;
    }
  in
  t.alerts <- a :: t.alerts;
  List.iter (fun f -> f a) (List.rev t.subscribers)

(* Evaluate the multi-window rules at a window close. Page: the fast
   horizon AND the just-closed window both burn at page rate (the
   second clause makes the alert stop as soon as the bleeding stops).
   Ticket: slow horizon AND fast horizon at ticket rate. Both are
   edge-triggered and re-arm once their horizon drops back below the
   threshold. *)
let evaluate t ~cycle =
  let fast = burn_over t t.obj.fast_windows in
  let slow = burn_over t t.obj.slow_windows in
  let last = burn_over t 1 in
  if fast >= t.obj.page_burn && last >= t.obj.page_burn then begin
    if not t.page_active then begin
      t.page_active <- true;
      fire t Page ~cycle
    end
  end
  else if fast < t.obj.page_burn then t.page_active <- false;
  if slow >= t.obj.ticket_burn && fast >= t.obj.ticket_burn then begin
    if not t.ticket_active then begin
      t.ticket_active <- true;
      fire t Ticket ~cycle
    end
  end
  else if slow < t.obj.ticket_burn then t.ticket_active <- false

let close_window t =
  t.ring.(t.closed mod t.obj.slow_windows) <- (t.w_good, t.w_bad);
  t.closed <- t.closed + 1;
  t.edge <- t.edge + t.obj.window;
  t.w_good <- 0;
  t.w_bad <- 0;
  evaluate t ~cycle:t.edge

let roll_upto t now =
  while t.edge + t.obj.window <= now do
    close_window t
  done

let check t ~now = roll_upto t now

let note_attainment t now =
  if t.first_below = None then begin
    let total = t.good + t.bad in
    if total >= t.obj.min_samples && t.good * 10_000 < t.target_bp * total then
      t.first_below <- Some now
  end

let observe_n t ~now ~good ~bad =
  roll_upto t now;
  t.w_good <- t.w_good + good;
  t.w_bad <- t.w_bad + bad;
  t.good <- t.good + good;
  t.bad <- t.bad + bad;
  note_attainment t now

let observe t ~now ~good =
  if good then observe_n t ~now ~good:1 ~bad:0
  else observe_n t ~now ~good:0 ~bad:1

let good_total t = t.good
let bad_total t = t.bad

let attainment_pct t =
  let total = t.good + t.bad in
  if total = 0 then 100.0
  else 100.0 *. float_of_int t.good /. float_of_int total

(* Budget remaining: of the (1 - target) error allowance over traffic so
   far, the unspent fraction, clamped at 0. *)
let budget_remaining_pct t =
  let total = t.good + t.bad in
  if total = 0 then 100.0
  else begin
    let allowed =
      (100.0 -. t.obj.target_pct) /. 100.0 *. float_of_int total
    in
    if allowed <= 0.0 then if t.bad = 0 then 100.0 else 0.0
    else max 0.0 (100.0 *. (1.0 -. (float_of_int t.bad /. allowed)))
  end

let first_below_target t = t.first_below
let alerts t = List.rev t.alerts

let first_alert_cycle t =
  match List.rev t.alerts with [] -> None | a :: _ -> Some a.a_cycle

let severity_to_string = function Page -> "page" | Ticket -> "ticket"

(* ------------------------------------------------------------------ *)
(* Byte-stable report artifact: one record per tenant, alerts inline. *)

let buf_add_opt_int buf = function
  | None -> Buffer.add_string buf "null"
  | Some v -> Buffer.add_string buf (string_of_int v)

let report_json_string ts =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf "{\n  \"tenants\": [\n";
  List.iteri
    (fun i t ->
      let o = t.obj in
      Buffer.add_string buf "    {\"tenant\": ";
      Export.buf_add_json_string buf o.tenant;
      Buffer.add_string buf ", \"target_pct\": ";
      Export.buf_add_float buf o.target_pct;
      Buffer.add_string buf
        (Printf.sprintf
           ", \"latency_cycles\": %d, \"window\": %d,\n     \"good\": %d, \
            \"bad\": %d, \"attainment_pct\": "
           o.latency_cycles o.window t.good t.bad);
      Export.buf_add_float buf (attainment_pct t);
      Buffer.add_string buf ", \"budget_remaining_pct\": ";
      Export.buf_add_float buf (budget_remaining_pct t);
      Buffer.add_string buf ",\n     \"burn_fast\": ";
      Export.buf_add_float buf (burn_over t o.fast_windows);
      Buffer.add_string buf ", \"burn_slow\": ";
      Export.buf_add_float buf (burn_over t o.slow_windows);
      Buffer.add_string buf ",\n     \"first_below_target_cycle\": ";
      buf_add_opt_int buf t.first_below;
      Buffer.add_string buf ", \"first_alert_cycle\": ";
      buf_add_opt_int buf (first_alert_cycle t);
      Buffer.add_string buf ",\n     \"alerts\": [";
      List.iteri
        (fun j a ->
          if j > 0 then Buffer.add_char buf ',';
          Buffer.add_string buf "\n       ";
          Buffer.add_string buf
            (Printf.sprintf "{\"cycle\": %d, \"severity\": \"%s\", \
                             \"burn_fast\": "
               a.a_cycle
               (severity_to_string a.a_severity));
          Export.buf_add_float buf a.a_burn_fast;
          Buffer.add_string buf ", \"burn_slow\": ";
          Export.buf_add_float buf a.a_burn_slow;
          Buffer.add_char buf '}')
        (alerts t);
      if alerts t <> [] then Buffer.add_string buf "\n     ";
      Buffer.add_string buf "]}";
      if i < List.length ts - 1 then Buffer.add_char buf ',';
      Buffer.add_char buf '\n')
    ts;
  Buffer.add_string buf "  ]\n}\n";
  Buffer.contents buf

let write_report ts path =
  let oc = open_out path in
  output_string oc (report_json_string ts);
  close_out oc
