(** Per-board fault flight recorder.

    A bounded ring of the most recent observability events (monitor
    admits/denies/drops, faults, health alarms). Recording is {b off by
    default} — every {!record} checks one flag first — so runs without
    introspection enabled are byte-identical to runs before the recorder
    existed. When a fault or a watchdog trip occurs, the ring is dumped
    as deterministic postmortem JSON: the last [capacity] events leading
    up to the failure, oldest first.

    Unlike {!Span}, which is process-global and unbounded-ish, a flight
    recorder is {e per board} (the kernel owns one) and strictly
    bounded, like the black box it models. *)

type entry = {
  ts : int;  (** cycle *)
  tile : int;
  cat : string;  (** layer: ["monitor"], ["health"], ... *)
  name : string;  (** event: ["admit"], ["deny"], ["fault"], ... *)
  corr : int;  (** RPC correlation id; [0] = uncorrelated *)
  args : (string * string) list;
}

type t

val create : ?capacity:int -> unit -> t
(** Default capacity 256 events. *)

val set_enabled : t -> bool -> unit
val enabled : t -> bool

val set_board : t -> int -> unit
(** Board id stamped into dumps ([-1] until set). *)

val board : t -> int

val record :
  t -> ts:int -> tile:int -> cat:string -> name:string -> ?corr:int ->
  ?args:(string * string) list -> unit -> unit
(** No-op unless enabled. *)

val entries : t -> entry list
(** Retained events, oldest first. *)

val capacity : t -> int

val total : t -> int
(** Events ever recorded (retained + overwritten). *)

val clear : t -> unit

val dump_json : t -> reason:string -> cycle:int -> string
(** Postmortem document:
    [{"board", "reason", "cycle", "capacity", "recorded", "events": [
      {"ts", "tile", "cat", "name", "corr"?, "args"?}, ...]}].
    Byte-stable for a fixed ring state. *)

val write_dump : t -> reason:string -> cycle:int -> string -> unit
(** [write_dump t ~reason ~cycle path] writes {!dump_json} to [path]. *)
