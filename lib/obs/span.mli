(** Span-based tracing: the request-journey half of the telemetry layer.

    A span is a named, cycle-stamped interval attributed to a layer
    (category), a board and a track (tile, switch port, client), and
    keyed by the RPC {b correlation id} already carried by fabric
    messages — so one request's journey across monitor, NoC, network
    service, ToR switch and remote board reconstructs by grouping spans
    on [corr] (board-local) and the network [req_id] argument (across
    the wire).

    The recorder is process-global and {b disabled by default}: every
    entry point checks one flag first, so instrumented hot paths pay a
    single branch when tracing is off (the same discipline as
    [Trace.record_lazy]). Call sites that would allocate argument lists
    should guard with {!on} themselves.

    Timestamps are simulation cycles — never wall clock — so a capture
    from a fixed-seed run is deterministic and its export byte-stable.
    Recording is mutex-protected for safety if a parallel engine is left
    running with spans enabled, but deterministic capture requires a
    monolithic (single-domain) simulation.

    {b Sampling} ({!set_sampling}) keeps full-scale captures inside the
    buffer cap without losing determinism: correlation families are
    head-sampled by [hash(corr) mod head_mod] — a pure function of the
    corr id, so Seq and parallel engines select the same subset — while
    {e tail rules} always keep the interesting spans regardless of the
    head decision: anything slower than [slow_cycles], error-named
    events ([fault], [deny], [drop], [timeout], [failover],
    [board_down]) and spans whose [status] arg is not ["ok"]. Corr-0
    (uncorrelated) spans are never sampled away. A head-sampled open
    span is parked off-buffer until {!finish} so a tail rule can still
    promote it; if tracing ends before its finish, it simply never
    appears in the export. *)

type ph =
  | Dur  (** an interval; still open while [dur] is negative *)
  | Mark  (** a point event *)

type event = {
  seq : int;  (** recording order; export tie-breaker at equal [ts] *)
  name : string;
  cat : string;  (** layer: ["monitor"], ["noc"], ["net"], ["cluster"] *)
  corr : int;  (** board-local RPC correlation id; [0] = uncorrelated *)
  board : int;  (** board id; [-1] = rack-level (switch, clients) *)
  track : int;  (** tile index, or a component track id (see {!Export}) *)
  ts : int;  (** start cycle *)
  mutable dur : int;  (** cycles; [-1] while a {!Dur} span is open *)
  ph : ph;
  mutable args : (string * string) list;
}

val set_enabled : bool -> unit
val on : unit -> bool

val reset : unit -> unit
(** Drop all recorded spans (the enabled flag is unchanged). *)

type id
(** Handle to an open span; the null id (returned while disabled) makes
    {!finish} a no-op. *)

val null : id

val start :
  ?board:int ->
  ?corr:int ->
  ?args:(string * string) list ->
  cat:string ->
  name:string ->
  track:int ->
  ts:int ->
  unit ->
  id
(** Open a span. Returns {!null} when disabled or the buffer is full. *)

val finish : ?args:(string * string) list -> ts:int -> id -> unit
(** Close an open span; extra [args] are appended. No-op on {!null} or
    when the recorder was reset since {!start}. *)

val complete :
  ?board:int ->
  ?corr:int ->
  ?args:(string * string) list ->
  cat:string ->
  name:string ->
  track:int ->
  ts:int ->
  dur:int ->
  unit ->
  unit
(** Record an already-closed span in one call (hop spans). *)

val instant :
  ?board:int ->
  ?corr:int ->
  ?args:(string * string) list ->
  cat:string ->
  name:string ->
  track:int ->
  ts:int ->
  unit ->
  unit
(** Record a point event (admit, deny, fault, frame tx/rx). *)

val events : unit -> event list
(** All retained events in recording order. *)

val count : unit -> int
(** Events retained (i.e. not dropped by the capacity cap). *)

val dropped : unit -> int
(** Events discarded because the buffer cap was reached. The first drop
    prints a one-shot stderr warning. *)

val sampled : unit -> int
(** Events deterministically sampled away (distinct from {!dropped}:
    sampling is a deliberate, reproducible reduction; dropping is the
    buffer overflowing). *)

val set_capacity : int -> unit
(** Cap on retained events (default [1_048_576], or [APIARY_OBS_CAP]
    from the environment at startup); also resets. *)

val set_sink : board:int -> (event -> unit) -> unit
(** Install (or replace) a per-board completion tap: the callback fires
    for every {!Dur} span of that board that closes with its duration
    set {e and} survives sampling — the post-sampling stream a
    board-local telemetry agent ships over the fabric. The sink runs on
    the domain that recorded the completion (the board's own, under a
    partitioned engine) while the recorder lock is held, so it must not
    call back into this module. {!Mark} events are not delivered.
    Sinks survive {!reset}. *)

val clear_sink : board:int -> unit
val clear_sinks : unit -> unit
(** Remove one / all sinks — always detach agents before a later run
    re-enables tracing for a different topology. *)

val set_sampling : ?head_mod:int -> ?slow_cycles:int -> unit -> unit
(** Configure deterministic sampling. [head_mod] (default 1 = keep all)
    keeps corr families with [hash(corr) mod head_mod = 0];
    [slow_cycles] (default [max_int] = never) is the tail-latency
    threshold above which a span is kept regardless. Omitted arguments
    reset to their defaults. Raises [Invalid_argument] if
    [head_mod < 1]. Survives {!reset}. *)
