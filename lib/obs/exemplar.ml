module Stats = Apiary_engine.Stats

(* One retained sample per histogram bucket, latest-wins. The store
   shares [Stats.Histogram]'s log-bucket grid, so the exemplar shown
   next to a p99 is guaranteed to live in the bucket the percentile was
   computed from — the metric→trace link is exact at bucket resolution,
   not a nearest-neighbour guess. *)

type sample = { x_corr : int; x_value : int; x_ts : int }

type t = { name : string; slots : sample option array }

let create name = { name; slots = Array.make Stats.Histogram.bucket_count None }
let name t = t.name

let observe t ~corr ~value ~ts =
  let value = max 0 value in
  t.slots.(Stats.Histogram.bucket_of value) <-
    Some { x_corr = corr; x_value = value; x_ts = ts }

let find t ~value = t.slots.(Stats.Histogram.bucket_of value)

(* The bucket holding [value] may be empty even when neighbours are not
   (percentile math returns bucket midpoints; under merge the retained
   sample can sit one bucket off). Walk outward, preferring the lower
   bucket at equal distance — the sample shown for a p99 should err
   toward the faster outlier, never invent a slower one. *)
let near t ~value =
  let b = Stats.Histogram.bucket_of value in
  let n = Array.length t.slots in
  let rec go d =
    if d >= n then None
    else
      match (if b - d >= 0 then t.slots.(b - d) else None) with
      | Some s -> Some s
      | None -> (
        match (if b + d < n then t.slots.(b + d) else None) with
        | Some s -> Some s
        | None -> go (d + 1))
  in
  go 0

let to_list t =
  let out = ref [] in
  for i = Array.length t.slots - 1 downto 0 do
    match t.slots.(i) with
    | Some s -> out := (i, s) :: !out
    | None -> ()
  done;
  !out

let reset t = Array.fill t.slots 0 (Array.length t.slots) None

let buf_add b t =
  Buffer.add_string b "{\"name\":";
  Export.buf_add_json_string b t.name;
  Buffer.add_string b ",\"exemplars\":[";
  List.iteri
    (fun i (bucket, s) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf
           "{\"bucket\":%d,\"bucket_value\":%d,\"corr\":%d,\"value\":%d,\"ts\":%d}"
           bucket
           (Stats.Histogram.bucket_value bucket)
           s.x_corr s.x_value s.x_ts))
    (to_list t);
  Buffer.add_string b "]}"

let json_string t =
  let b = Buffer.create 256 in
  buf_add b t;
  Buffer.contents b
