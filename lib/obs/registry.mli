(** Global metrics registry: the aggregate half of the telemetry layer.

    Components expose their existing [Stats] instruments under stable
    dotted names (e.g. [b0.noc.r1_2.occ], [rack.switch.flooded],
    [svc.kv.latency]) instead of each benchmark growing its own ad-hoc
    counters. Two styles coexist:

    - {b owned instruments}: {!counter}, {!gauge} and {!histogram}
      get-or-create named instruments that live in the registry and are
      reset by {!reset};
    - {b samplers}: named callbacks (registered by the [register_metrics]
      attach points in kernel, mesh, switch, cluster, …) that pull live
      component state — FIFO occupancy, link utilization, denial counts —
      into owned instruments right before every {!snapshot}. Registering
      a sampler under an existing name replaces it, so re-attaching
      between runs never duplicates.

    A snapshot is an alphabetical association list, so rendering it (see
    {!Export.metrics_json}) is deterministic.

    Two {b built-in samplers} are always installed (and re-installed by
    {!clear}): [obs.span] publishes the span recorder's retained/dropped
    event counts as [obs.span.events] / [obs.span.dropped] gauges, so a
    truncated trace is detectable from the metrics dump alone; [obs.prof]
    publishes the [APIARY_PROF] per-ticker wall-time rows as
    [prof.<ticker>.calls] / [prof.<ticker>.seconds] gauges (nothing when
    profiling is off), so [--perf] and [--obs] share one metrics
    pipeline. *)

module Stats := Apiary_engine.Stats

type instrument =
  | Counter of Stats.Counter.t
  | Gauge of Stats.Gauge.t
  | Histogram of Stats.Histogram.t

val counter : string -> Stats.Counter.t
(** Get or create the named counter. Raises [Invalid_argument] if the
    name is already bound to a different instrument kind. *)

val gauge : string -> Stats.Gauge.t
val histogram : string -> Stats.Histogram.t

val register : string -> instrument -> unit
(** Adopt an existing instrument (e.g. a client's latency histogram)
    under [name], replacing any previous binding. *)

val add_sampler : name:string -> (unit -> unit) -> unit
(** Install (or replace) a named pull hook, run by {!sample} in
    alphabetical name order. *)

val sample : unit -> unit
(** Run all samplers (also done by {!snapshot}). *)

val snapshot : unit -> (string * instrument) list
(** Pull samplers, then return every instrument sorted by name. *)

val sample_prefix : string -> unit
(** Run only the samplers whose name starts with the prefix — what a
    per-board agent uses so harvesting [b2.*] never executes another
    board's pull hooks (which would cross partition boundaries under a
    parallel engine). *)

val snapshot_prefix : string -> (string * instrument) list
(** {!sample_prefix}, then the instruments under that prefix, sorted.
    Note samplers and the instruments they fill share the dotted-name
    prefix convention ([b<id>.], [rack.]) by construction. *)

val reset : unit -> unit
(** Reset every owned instrument (counters, gauges and histograms alike;
    samplers are kept). *)

val clear : unit -> unit
(** Drop all instruments and samplers — between unrelated runs. The
    built-in [obs.span] and [obs.prof] samplers are re-installed. *)
