(* Hardware-style performance-counter block: a fixed bank of saturating
   64-bit counters with architected slot numbers, one block per tile
   monitor and one per NoC router. The fixed layout is what makes the
   counters readable in-band: the stat service ships a block over the
   fabric as plain bytes and any reader decodes it positionally, exactly
   like reading a memory-mapped counter page out of real silicon. *)

type t = int array

(* Architected slot numbers — the wire format. Extend only by appending
   (readers index positionally). *)
let flits = 0
let busy = 1
let credit_stalls = 2
let occ_peak = 3
let msgs_in = 4
let msgs_out = 5
let syscalls = 6
let denials = 7
let drops = 8
let nacks = 9
let faults = 10
let heartbeats = 11
let n_counters = 12

let names =
  [|
    "flits";
    "busy";
    "credit_stalls";
    "occ_peak";
    "msgs_in";
    "msgs_out";
    "syscalls";
    "denials";
    "drops";
    "nacks";
    "faults";
    "heartbeats";
  |]

let name i = names.(i)

let index_of_name n =
  let rec go i = if i >= n_counters then None else if names.(i) = n then Some i else go (i + 1) in
  go 0

let create () = Array.make n_counters 0
let read t i = t.(i)
let incr t i = Array.unsafe_set t i (Array.unsafe_get t i + 1)
let add t i n = t.(i) <- t.(i) + n
let set_max t i v = if v > Array.unsafe_get t i then Array.unsafe_set t i v
let reset t = Array.fill t 0 n_counters 0

(* Watermark slots aggregate by max, event counters by sum — so a board
   summary is itself a well-formed block. *)
let merge_into ~src ~dst =
  for i = 0 to n_counters - 1 do
    if i = occ_peak then set_max dst i src.(i) else dst.(i) <- dst.(i) + src.(i)
  done

let total t = Array.fold_left ( + ) 0 t

(* In-band wire format: n_counters big-endian u64 words, no header (the
   request that asked for the block knows what it asked for). *)
let encoded_size = n_counters * 8

let encode t =
  let b = Bytes.create encoded_size in
  Array.iteri (fun i v -> Bytes.set_int64_be b (i * 8) (Int64.of_int v)) t;
  b

let decode b =
  if Bytes.length b <> encoded_size then None
  else
    Some
      (Array.init n_counters (fun i -> Int64.to_int (Bytes.get_int64_be b (i * 8))))

let to_assoc t = Array.to_list (Array.mapi (fun i v -> (names.(i), v)) t)
