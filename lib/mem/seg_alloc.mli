(** Segment allocator — variable-size allocation with coalescing free
    lists, the memory-isolation granularity Apiary chooses (§4.6).

    Tracks external fragmentation so the segment-vs-page comparison (E5)
    can quantify "resource stranding". *)

type policy = First_fit | Best_fit

val policy_to_string : policy -> string

type t

val create : base:int -> size:int -> policy -> t
(** Manage the byte range [\[base, base+size)]. *)

val alloc : t -> ?align:int -> int -> (int, [ `Out_of_memory ]) result
(** [alloc t n] reserves [n] bytes and returns the segment base address.
    [align] (default 64) rounds the base up to a boundary. Zero-size
    requests are rounded up to one byte. *)

val free : t -> int -> unit
(** [free t base] releases the segment allocated at [base].
    @raise Invalid_argument if [base] is not a live allocation. *)

val is_allocated : t -> int -> bool
val size_of : t -> int -> int option
(** Size of the live allocation at exactly [base]. *)

val used_bytes : t -> int
val free_bytes : t -> int
val largest_free : t -> int
val free_block_count : t -> int
val live_allocations : t -> int

val external_fragmentation : t -> float
(** [1 - largest_free/free_bytes]: 0 when free space is one block, →1 as
    it shatters. 0 when no free space remains. *)

val check_invariants : t -> unit
(** Assert internal consistency (no overlap, full coverage, sorted,
    coalesced). For tests. *)
