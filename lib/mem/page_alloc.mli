(** Paged virtual-memory baseline for the §4.6 comparison.

    Fixed-size page frames, per-process page tables, and a TLB with a
    modelled walk latency. Used by experiment E5 to contrast page-based
    translation against Apiary's segments-with-capabilities: internal
    fragmentation, allocation failure behaviour, and per-access translation
    cost. *)

type t

val create : base:int -> size:int -> page_bytes:int -> t
(** Manage [size] bytes of physical frames starting at [base];
    [page_bytes] must divide [size]. *)

val page_bytes : t -> int
val total_frames : t -> int
val free_frames : t -> int

(** Per-process address space. *)
module Space : sig
  type alloc = t

  type t

  val create : alloc -> tlb_entries:int -> walk_cycles:int -> t

  val map : t -> int -> (int, [ `Out_of_memory ]) result
  (** [map sp n] maps [ceil(n / page_bytes)] pages of fresh memory at the
      next free virtual address; returns the virtual base. Physical frames
      may be discontiguous. *)

  val unmap : t -> vbase:int -> len:int -> unit
  (** Unmap the pages covering [\[vbase, vbase+len)] and release their
      frames. *)

  val translate : t -> int -> (int * int, [ `Fault ]) result
  (** [translate sp vaddr] is [(paddr, cycles)]: the physical address and
      the translation latency (1 on TLB hit, the walk cost on miss). *)

  val mapped_bytes : t -> int
  (** Bytes of physical memory backing this space (page granular). *)

  val internal_fragmentation : t -> int
  (** Bytes allocated beyond what was requested, page rounding waste. *)

  val tlb_hits : t -> int
  val tlb_misses : t -> int
end
