type t = {
  base : int;
  page_bytes : int;
  nframes : int;
  free : int Queue.t;  (* free frame indices *)
}

let create ~base ~size ~page_bytes =
  assert (page_bytes > 0 && size mod page_bytes = 0);
  let nframes = size / page_bytes in
  let free = Queue.create () in
  for i = 0 to nframes - 1 do
    Queue.add i free
  done;
  { base; page_bytes; nframes; free }

let page_bytes t = t.page_bytes
let total_frames t = t.nframes
let free_frames t = Queue.length t.free

module Space = struct
  type alloc = t

  type space = {
    alloc : alloc;
    table : (int, int) Hashtbl.t;  (* vpn -> frame index *)
    tlb : (int, int) Hashtbl.t;  (* small cache of the same mapping *)
    tlb_entries : int;
    tlb_order : int Queue.t;  (* FIFO eviction *)
    walk_cycles : int;
    mutable next_vpn : int;
    mutable requested : int;  (* bytes asked for by map *)
    mutable hits : int;
    mutable misses : int;
  }

  type t = space

  let create alloc ~tlb_entries ~walk_cycles =
    assert (tlb_entries > 0);
    {
      alloc;
      table = Hashtbl.create 64;
      tlb = Hashtbl.create 64;
      tlb_entries;
      tlb_order = Queue.create ();
      walk_cycles;
      next_vpn = 0;
      requested = 0;
      hits = 0;
      misses = 0;
    }

  let map sp n =
    let n = max 1 n in
    let pb = sp.alloc.page_bytes in
    let npages = (n + pb - 1) / pb in
    if Queue.length sp.alloc.free < npages then Error `Out_of_memory
    else begin
      let vbase = sp.next_vpn * pb in
      for i = 0 to npages - 1 do
        let frame = Queue.take sp.alloc.free in
        Hashtbl.replace sp.table (sp.next_vpn + i) frame
      done;
      sp.next_vpn <- sp.next_vpn + npages;
      sp.requested <- sp.requested + n;
      Ok vbase
    end

  let tlb_evict_if_full sp =
    if Queue.length sp.tlb_order >= sp.tlb_entries then begin
      let old = Queue.take sp.tlb_order in
      Hashtbl.remove sp.tlb old
    end

  let unmap sp ~vbase ~len =
    let pb = sp.alloc.page_bytes in
    let first = vbase / pb in
    let last = (vbase + max 1 len - 1) / pb in
    for vpn = first to last do
      match Hashtbl.find_opt sp.table vpn with
      | None -> ()
      | Some frame ->
        Hashtbl.remove sp.table vpn;
        Hashtbl.remove sp.tlb vpn;
        Queue.add frame sp.alloc.free
    done

  let translate sp vaddr =
    let pb = sp.alloc.page_bytes in
    let vpn = vaddr / pb and off = vaddr mod pb in
    let frame_to_paddr frame = sp.alloc.base + (frame * pb) + off in
    match Hashtbl.find_opt sp.tlb vpn with
    | Some frame ->
      sp.hits <- sp.hits + 1;
      Ok (frame_to_paddr frame, 1)
    | None ->
      (match Hashtbl.find_opt sp.table vpn with
      | None -> Error `Fault
      | Some frame ->
        sp.misses <- sp.misses + 1;
        tlb_evict_if_full sp;
        Hashtbl.replace sp.tlb vpn frame;
        Queue.add vpn sp.tlb_order;
        Ok (frame_to_paddr frame, sp.walk_cycles))

  let mapped_bytes sp = Hashtbl.length sp.table * sp.alloc.page_bytes
  let internal_fragmentation sp = mapped_bytes sp - sp.requested
  let tlb_hits sp = sp.hits
  let tlb_misses sp = sp.misses
end
