module Sim = Apiary_engine.Sim

type config = {
  channels : int;
  banks_per_channel : int;
  row_bytes : int;
  t_cas : int;
  t_rcd : int;
  t_rp : int;
  bus_bytes_per_cycle : int;
  queue_depth : int;
}

let default_config =
  {
    channels = 1;
    banks_per_channel = 8;
    row_bytes = 2048;
    t_cas = 8;
    t_rcd = 8;
    t_rp = 8;
    bus_bytes_per_cycle = 16;
    queue_depth = 16;
  }

type req = {
  addr : int;
  len : int;
  kind : kind;
}

and kind = Read of (bytes -> unit) | Write of bytes * (unit -> unit)

type bank = {
  mutable open_row : int;  (* -1 = none *)
  mutable busy : bool;
  queue : req Queue.t;
}

type channel = { banks : bank array; mutable bus_free_at : int }

type t = {
  sim : Sim.t;
  cfg : config;
  data : Bytes.t;
  chans : channel array;
  mutable n_reads : int;
  mutable n_writes : int;
  mutable n_row_hits : int;
  mutable n_row_misses : int;
  mutable n_bytes : int;
}

let create sim cfg ~size_bytes =
  assert (size_bytes > 0);
  {
    sim;
    cfg;
    data = Bytes.make size_bytes '\000';
    chans =
      Array.init cfg.channels (fun _ ->
          {
            banks =
              Array.init cfg.banks_per_channel (fun _ ->
                  { open_row = -1; busy = false; queue = Queue.create () });
            bus_free_at = 0;
          });
    n_reads = 0;
    n_writes = 0;
    n_row_hits = 0;
    n_row_misses = 0;
    n_bytes = 0;
  }

let size t = Bytes.length t.data
let config t = t.cfg
let reads t = t.n_reads
let writes t = t.n_writes
let row_hits t = t.n_row_hits
let row_misses t = t.n_row_misses
let bytes_transferred t = t.n_bytes

(* Address mapping: row-interleaved across banks, banks interleaved across
   channels, so sequential streams hit open rows within a bank. *)
let locate t addr =
  let row_global = addr / t.cfg.row_bytes in
  let chan_i = row_global mod t.cfg.channels in
  let bank_i = row_global / t.cfg.channels mod t.cfg.banks_per_channel in
  let row = row_global / t.cfg.channels / t.cfg.banks_per_channel in
  (t.chans.(chan_i), t.chans.(chan_i).banks.(bank_i), row)

let perform t r =
  match r.kind with
  | Read cb ->
    t.n_reads <- t.n_reads + 1;
    t.n_bytes <- t.n_bytes + r.len;
    cb (Bytes.sub t.data r.addr r.len)
  | Write (b, cb) ->
    t.n_writes <- t.n_writes + 1;
    t.n_bytes <- t.n_bytes + Bytes.length b;
    Bytes.blit b 0 t.data r.addr (Bytes.length b);
    cb ()

(* Serve the head of a bank's queue; reschedules itself until empty. *)
let rec kick t chan bank =
  if (not bank.busy) && not (Queue.is_empty bank.queue) then begin
    let r = Queue.take bank.queue in
    let _, _, row = locate t r.addr in
    let access =
      if bank.open_row = row then begin
        t.n_row_hits <- t.n_row_hits + 1;
        t.cfg.t_cas
      end
      else begin
        t.n_row_misses <- t.n_row_misses + 1;
        bank.open_row <- row;
        t.cfg.t_rp + t.cfg.t_rcd + t.cfg.t_cas
      end
    in
    let now = Sim.now t.sim in
    let transfer =
      (r.len + t.cfg.bus_bytes_per_cycle - 1) / t.cfg.bus_bytes_per_cycle
    in
    let transfer = max 1 transfer in
    (* The data burst needs the channel bus after the access latency. *)
    let burst_start = max (now + access) chan.bus_free_at in
    let done_at = burst_start + transfer in
    chan.bus_free_at <- done_at;
    bank.busy <- true;
    Sim.at t.sim done_at (fun () ->
        bank.busy <- false;
        perform t r;
        kick t chan bank)
  end

let submit t r =
  if r.addr < 0 || r.addr + r.len > Bytes.length t.data then
    invalid_arg "Dram: access out of physical range";
  let chan, bank, _ = locate t r.addr in
  if Queue.length bank.queue >= t.cfg.queue_depth then false
  else begin
    Queue.add r bank.queue;
    kick t chan bank;
    true
  end

let read t ~addr ~len cb = submit t { addr; len; kind = Read cb }
let write t ~addr b cb = submit t { addr; len = Bytes.length b; kind = Write (b, cb) }
let peek t ~addr ~len = Bytes.sub t.data addr len
let poke t ~addr b = Bytes.blit b 0 t.data addr (Bytes.length b)
