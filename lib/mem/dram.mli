(** Banked DRAM controller with open-row timing.

    Models the memory the paper's tiles share: per-bank open-row state
    (row hit = CAS only; row miss = precharge + activate + CAS), a shared
    data bus per channel, and bounded per-bank request queues. Requests
    complete asynchronously via callbacks. The array is backed by real
    bytes, so accelerators that store data in "DRAM" read back exactly what
    they wrote — memory-isolation experiments corrupt and verify real
    contents. *)

module Sim := Apiary_engine.Sim

type config = {
  channels : int;
  banks_per_channel : int;
  row_bytes : int;
  t_cas : int;  (** column access, cycles *)
  t_rcd : int;  (** row activate *)
  t_rp : int;  (** precharge *)
  bus_bytes_per_cycle : int;
  queue_depth : int;  (** per-bank request queue bound *)
}

val default_config : config
(** 1 channel, 8 banks, 2 KiB rows, CAS/RCD/RP = 8/8/8 cycles at fabric
    clock, 16 B/cycle bus, queue depth 16 — a DDR4-ish controller seen
    from a 250 MHz fabric. *)

type t

val create : Sim.t -> config -> size_bytes:int -> t
val size : t -> int
val config : t -> config

val read : t -> addr:int -> len:int -> (bytes -> unit) -> bool
(** Submit a read; the callback fires with the data when the access
    completes. Returns [false] (request dropped) when the bank queue is
    full — callers must retry. *)

val write : t -> addr:int -> bytes -> (unit -> unit) -> bool
(** Submit a write of the whole buffer at [addr]. *)

val peek : t -> addr:int -> len:int -> bytes
(** Zero-time backdoor read (for tests and integrity checks only). *)

val poke : t -> addr:int -> bytes -> unit
(** Zero-time backdoor write. *)

(** Statistics *)

val reads : t -> int
val writes : t -> int
val row_hits : t -> int
val row_misses : t -> int
val bytes_transferred : t -> int
