type policy = First_fit | Best_fit

let policy_to_string = function First_fit -> "first-fit" | Best_fit -> "best-fit"

type block = { base : int; len : int }

type t = {
  region_base : int;
  region_size : int;
  policy : policy;
  mutable free_list : block list;  (* sorted by base, coalesced *)
  allocated : (int, int) Hashtbl.t;  (* base -> len *)
  mutable used : int;
}

let create ~base ~size policy =
  assert (size > 0);
  {
    region_base = base;
    region_size = size;
    policy;
    free_list = [ { base; len = size } ];
    allocated = Hashtbl.create 64;
    used = 0;
  }

let round_up v align = (v + align - 1) / align * align

(* Carve [n] bytes aligned to [align] out of free block [b]; returns
   (alloc_base, remaining blocks from b) or None if it does not fit. *)
let carve b n align =
  let abase = round_up b.base align in
  let waste = abase - b.base in
  if waste + n > b.len then None
  else
    let before = if waste > 0 then [ { base = b.base; len = waste } ] else [] in
    let after_len = b.len - waste - n in
    let after =
      if after_len > 0 then [ { base = abase + n; len = after_len } ] else []
    in
    Some (abase, before @ after)

let alloc t ?(align = 64) n =
  assert (align > 0);
  let n = max 1 n in
  let fits b = carve b n align <> None in
  let chosen =
    match t.policy with
    | First_fit -> List.find_opt fits t.free_list
    | Best_fit ->
      List.fold_left
        (fun best b ->
          if not (fits b) then best
          else
            match best with
            | Some bb when bb.len <= b.len -> best
            | _ -> Some b)
        None t.free_list
  in
  match chosen with
  | None -> Error `Out_of_memory
  | Some b ->
    (match carve b n align with
    | None -> assert false
    | Some (abase, remnants) ->
      let rec replace = function
        | [] -> assert false
        | x :: rest when x.base = b.base -> remnants @ rest
        | x :: rest -> x :: replace rest
      in
      t.free_list <- replace t.free_list;
      Hashtbl.replace t.allocated abase n;
      t.used <- t.used + n;
      Ok abase)

let insert_coalesced t blk =
  (* Insert keeping base order, then merge with neighbours. *)
  let rec ins = function
    | [] -> [ blk ]
    | x :: rest when blk.base < x.base -> blk :: x :: rest
    | x :: rest -> x :: ins rest
  in
  let rec merge = function
    | a :: b :: rest when a.base + a.len = b.base ->
      merge ({ base = a.base; len = a.len + b.len } :: rest)
    | a :: rest -> a :: merge rest
    | [] -> []
  in
  t.free_list <- merge (ins t.free_list)

let free t base =
  match Hashtbl.find_opt t.allocated base with
  | None -> invalid_arg (Printf.sprintf "Seg_alloc.free: %#x not allocated" base)
  | Some len ->
    Hashtbl.remove t.allocated base;
    t.used <- t.used - len;
    insert_coalesced t { base; len }

let is_allocated t base = Hashtbl.mem t.allocated base
let size_of t base = Hashtbl.find_opt t.allocated base
let used_bytes t = t.used

(* Free bytes include alignment waste still sitting in the free list. *)
let free_bytes t = List.fold_left (fun a b -> a + b.len) 0 t.free_list
let largest_free t = List.fold_left (fun a b -> max a b.len) 0 t.free_list
let free_block_count t = List.length t.free_list
let live_allocations t = Hashtbl.length t.allocated

let external_fragmentation t =
  let fb = free_bytes t in
  if fb = 0 then 0.0 else 1.0 -. (float_of_int (largest_free t) /. float_of_int fb)

let check_invariants t =
  (* Sorted, coalesced, within region. *)
  let rec check_list = function
    | a :: b :: rest ->
      (* Strictly separated: adjacent blocks must have been coalesced. *)
      assert (a.base + a.len < b.base);
      check_list (b :: rest)
    | [ a ] ->
      assert (a.base >= t.region_base);
      assert (a.base + a.len <= t.region_base + t.region_size)
    | [] -> ()
  in
  check_list t.free_list;
  List.iter
    (fun b ->
      assert (b.len > 0);
      assert (b.base >= t.region_base && b.base + b.len <= t.region_base + t.region_size))
    t.free_list;
  (* No allocation overlaps any free block. *)
  Hashtbl.iter
    (fun abase alen ->
      List.iter
        (fun b -> assert (abase + alen <= b.base || b.base + b.len <= abase))
        t.free_list)
    t.allocated
