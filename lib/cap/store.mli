(** Partitioned capability store — the data structure each Apiary monitor
    owns on behalf of its tile (paper §4.3, §4.6).

    Accelerators never hold capabilities, only {e handles}: opaque integers
    that index into the monitor's table. A handle encodes both a slot and a
    generation number, so a stale handle kept across revocation and slot
    reuse is detected rather than silently aliasing a new capability.

    Capabilities target either a {b memory segment} (Dennis–van-Horn style
    base/length with rights) or a {b communication endpoint} (a tile and
    endpoint id the holder may send to). Derivation only attenuates:
    a child's rights must be a subset of its parent's, and a child segment
    must lie within its parent segment. Revocation cascades to descendants,
    including those granted into other tiles' stores. *)

type target =
  | Segment of { base : int; len : int }
      (** Byte range in the global physical address space. *)
  | Endpoint of { tile : int; endpoint : int }
      (** Destination the holder may address messages to. [tile] is a
          linearized tile index. *)

type handle = int
(** Opaque capability reference held by untrusted accelerator logic. *)

type error =
  | Invalid_handle  (** Never existed, wrong generation, or out of range. *)
  | Revoked
  | Rights_exceeded  (** Requested authority exceeds the capability's. *)
  | Not_grantable  (** Derivation/transfer without the grant right. *)
  | Bounds  (** Memory access or sub-segment outside the segment. *)
  | Wrong_type  (** Endpoint operation on a segment cap or vice versa. *)

val error_to_string : error -> string

type t
(** One tile's capability table. *)

val create : ?capacity:int -> tile:int -> unit -> t
(** [capacity] bounds the number of live capabilities (models the fixed
    BRAM budget of the hardware table; default 256). *)

val tile : t -> int
val live : t -> int
(** Number of live capabilities. *)

val capacity : t -> int

val mint : t -> target -> Rights.t -> (handle, error) result
(** Create a root capability. Only trusted OS services call this.
    Fails with [Invalid_handle] when the table is full. *)

val derive :
  t -> parent:handle -> rights:Rights.t -> ?sub:int * int -> unit ->
  (handle, error) result
(** Attenuate: child rights must be a subset of the parent's and the
    parent must carry [grant]. For segment caps, [?sub:(offset, len)]
    narrows the range relative to the parent's base. *)

val grant :
  src:t -> dst:t -> parent:handle -> rights:Rights.t -> (handle, error) result
(** Hand an attenuated child of [src]'s capability [parent] to tile
    [dst]; the child lives in [dst]'s table but remains linked to the
    parent for cascading revocation. *)

val revoke : t -> handle -> (int, error) result
(** Revoke a capability and, transitively, every capability derived from
    it (in any store). Returns the number of capabilities revoked. *)

val revoke_all : t -> int
(** Revoke every live capability in this store, cascading into derived
    capabilities held by other stores. Used when a tile fail-stops or is
    reconfigured. Returns the number revoked. *)

val inspect : t -> handle -> (target * Rights.t, error) result
(** Read back a capability's target and rights (monitor-side use). *)

val check_send : t -> handle -> tile:int -> endpoint:int -> (unit, error) result
(** Validate that [handle] authorizes sending to ([tile],[endpoint]). *)

val check_mem :
  t -> handle -> addr:int -> len:int -> write:bool -> (unit, error) result
(** Validate a memory access of [len] bytes at absolute address [addr]. *)

val segment_base : t -> handle -> (int, error) result
(** Base address of a segment capability (for address computation). *)
