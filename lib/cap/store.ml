type target =
  | Segment of { base : int; len : int }
  | Endpoint of { tile : int; endpoint : int }

type handle = int

type error =
  | Invalid_handle
  | Revoked
  | Rights_exceeded
  | Not_grantable
  | Bounds
  | Wrong_type

let error_to_string = function
  | Invalid_handle -> "invalid handle"
  | Revoked -> "revoked"
  | Rights_exceeded -> "rights exceeded"
  | Not_grantable -> "not grantable"
  | Bounds -> "out of bounds"
  | Wrong_type -> "wrong capability type"

type entry = {
  target : target;
  rights : Rights.t;
  mutable revoked : bool;
  mutable children : child list;
}

and child = Child : t * int * int -> child  (* (store, slot, generation) *)

and t = {
  tile : int;
  cap_capacity : int;
  entries : entry option array;
  gens : int array;
  mutable live_count : int;
  mutable free_slots : int list;
}

let create ?(capacity = 256) ~tile () =
  assert (capacity >= 1 && capacity <= 0xFFFF);
  {
    tile;
    cap_capacity = capacity;
    entries = Array.make capacity None;
    gens = Array.make capacity 0;
    live_count = 0;
    free_slots = List.init capacity (fun i -> i);
  }

let tile t = t.tile
let live t = t.live_count
let capacity t = t.cap_capacity

(* Handles pack (generation, slot) so stale references to reused slots are
   caught: the generation bumps on every revocation. *)
let encode ~slot ~gen = (gen lsl 16) lor slot
let decode_slot h = h land 0xFFFF
let decode_gen h = h lsr 16

let lookup t h =
  let slot = decode_slot h in
  if slot < 0 || slot >= t.cap_capacity then Error Invalid_handle
  else if t.gens.(slot) <> decode_gen h then Error Invalid_handle
  else
    match t.entries.(slot) with
    | None -> Error Invalid_handle
    | Some e -> if e.revoked then Error Revoked else Ok (slot, e)

let insert t target rights =
  match t.free_slots with
  | [] -> Error Invalid_handle
  | slot :: rest ->
    t.free_slots <- rest;
    t.entries.(slot) <- Some { target; rights; revoked = false; children = [] };
    t.live_count <- t.live_count + 1;
    Ok (slot, encode ~slot ~gen:t.gens.(slot))

let mint t target rights =
  match insert t target rights with Ok (_, h) -> Ok h | Error e -> Error e

let narrow_target parent_target rights sub =
  match (parent_target, sub) with
  | Segment { base; len }, Some (off, sublen) ->
    if off < 0 || sublen < 0 || off + sublen > len then Error Bounds
    else Ok (Segment { base = base + off; len = sublen }, rights)
  | (Segment _ as tg), None -> Ok (tg, rights)
  | Endpoint _, Some _ -> Error Wrong_type
  | (Endpoint _ as tg), None -> Ok (tg, rights)

let derive_into t_src t_dst ~parent ~rights ~sub =
  match lookup t_src parent with
  | Error e -> Error e
  | Ok (_, pe) ->
    if not pe.rights.Rights.grant then Error Not_grantable
    else if not (Rights.subset rights pe.rights) then Error Rights_exceeded
    else
      match narrow_target pe.target rights sub with
      | Error e -> Error e
      | Ok (tg, rt) ->
        match insert t_dst tg rt with
        | Error e -> Error e
        | Ok (slot, h) ->
          pe.children <- Child (t_dst, slot, t_dst.gens.(slot)) :: pe.children;
          Ok h

let derive t ~parent ~rights ?sub () = derive_into t t ~parent ~rights ~sub
let grant ~src ~dst ~parent ~rights = derive_into src dst ~parent ~rights ~sub:None

let free_slot t slot =
  t.entries.(slot) <- None;
  t.gens.(slot) <- t.gens.(slot) + 1;
  t.live_count <- t.live_count - 1;
  t.free_slots <- slot :: t.free_slots

let rec revoke_entry store slot =
  match store.entries.(slot) with
  | None -> 0
  | Some e ->
    let revoke_child acc (Child (s, sl, gen)) =
      (* Skip children whose slot was already freed and reused. *)
      if s.gens.(sl) = gen then acc + revoke_entry s sl else acc
    in
    let n_children = List.fold_left revoke_child 0 e.children in
    e.revoked <- true;
    free_slot store slot;
    n_children + 1

let revoke t h =
  match lookup t h with
  | Error e -> Error e
  | Ok (slot, _) -> Ok (revoke_entry t slot)

let revoke_all t =
  let n = ref 0 in
  for slot = 0 to t.cap_capacity - 1 do
    if t.entries.(slot) <> None then n := !n + revoke_entry t slot
  done;
  !n

let inspect t h =
  match lookup t h with Error e -> Error e | Ok (_, e) -> Ok (e.target, e.rights)

let check_send t h ~tile ~endpoint =
  match lookup t h with
  | Error e -> Error e
  | Ok (_, e) ->
    (match e.target with
    | Endpoint ep ->
      if ep.tile = tile && ep.endpoint = endpoint then
        if e.rights.Rights.write then Ok () else Error Rights_exceeded
      else Error Bounds
    | Segment _ -> Error Wrong_type)

let check_mem t h ~addr ~len ~write =
  match lookup t h with
  | Error e -> Error e
  | Ok (_, e) ->
    (match e.target with
    | Segment { base; len = slen } ->
      if len < 0 || addr < base || addr + len > base + slen then Error Bounds
      else if write && not e.rights.Rights.write then Error Rights_exceeded
      else if (not write) && not e.rights.Rights.read then Error Rights_exceeded
      else Ok ()
    | Endpoint _ -> Error Wrong_type)

let segment_base t h =
  match lookup t h with
  | Error e -> Error e
  | Ok (_, e) ->
    (match e.target with
    | Segment { base; _ } -> Ok base
    | Endpoint _ -> Error Wrong_type)
