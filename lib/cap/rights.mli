(** Access rights carried by a capability.

    [grant] is the authority to derive attenuated children or hand the
    capability to another tile; without it a capability is a leaf. *)

type t = { read : bool; write : bool; grant : bool }

val full : t
(** Read, write and grant. *)

val rw : t
(** Read and write, no grant. *)

val ro : t
(** Read only. *)

val send : t
(** For endpoint capabilities "send" authority is encoded as [write]. *)

val none : t

val subset : t -> t -> bool
(** [subset a b] — does [a] request no more authority than [b] holds?
    The attenuation (monotonicity) relation. *)

val inter : t -> t -> t
(** Greatest lower bound. *)

val equal : t -> t -> bool
val to_string : t -> string
val pp : Format.formatter -> t -> unit
