type t = { read : bool; write : bool; grant : bool }

let full = { read = true; write = true; grant = true }
let rw = { read = true; write = true; grant = false }
let ro = { read = true; write = false; grant = false }
let send = { read = false; write = true; grant = false }
let none = { read = false; write = false; grant = false }

let leq a b = (not a) || b
let subset a b = leq a.read b.read && leq a.write b.write && leq a.grant b.grant

let inter a b =
  { read = a.read && b.read; write = a.write && b.write; grant = a.grant && b.grant }

let equal a b = a = b

let to_string t =
  Printf.sprintf "%c%c%c"
    (if t.read then 'r' else '-')
    (if t.write then 'w' else '-')
    (if t.grant then 'g' else '-')

let pp ppf t = Format.pp_print_string ppf (to_string t)
