(* Introspection layer (E13): perf-counter blocks, the stat service,
   the watchdog health layer and the flight recorder.

   The two load-bearing properties:
   - the watchdog must coexist with the quiescence engine: an idle tile
     that the simulator fast-forwards past must NEVER trip the
     heartbeat deadline (only queued-work-without-progress does);
   - counters are architecture, not heuristics: for a fixed seed the
     per-tile blocks must be byte-identical between the monolithic and
     the partitioned (Seq/Par) engines, with the watchdog running. *)

module Sim = Apiary_engine.Sim
module Par_sim = Apiary_engine.Par_sim
module Kernel = Apiary_core.Kernel
module Monitor = Apiary_core.Monitor
module Shell = Apiary_core.Shell
module Statsvc = Apiary_core.Statsvc
module Health = Apiary_core.Health
module Mesh = Apiary_noc.Mesh
module Router = Apiary_noc.Router
module Accels = Apiary_accel.Accels
module Cluster = Apiary_cluster.Cluster
module Rack_health = Apiary_cluster.Rack_health
module Shard_client = Apiary_cluster.Shard_client
module Perf = Apiary_obs.Perf
module Flight = Apiary_obs.Flight
module Span = Apiary_obs.Span
module Critical_path = Apiary_obs.Critical_path

let mk_kernel () =
  let sim = Sim.create () in
  let cfg = { Kernel.default_config with Kernel.dram_bytes = 1 lsl 20 } in
  (sim, Kernel.create sim cfg)

(* ------------------------------------------------------------------ *)
(* Perf block *)

let test_perf_roundtrip () =
  let p = Perf.create () in
  for s = 0 to Perf.n_counters - 1 do
    Perf.add p s ((s * 7919) + 3)
  done;
  match Perf.decode (Perf.encode p) with
  | None -> Alcotest.fail "decode rejected its own encoding"
  | Some q ->
    for s = 0 to Perf.n_counters - 1 do
      Alcotest.(check int) (Perf.name s) (Perf.read p s) (Perf.read q s)
    done;
    Alcotest.(check (option reject)) "wrong length rejected" None
      (Perf.decode (Bytes.create 7))

let test_perf_merge () =
  let a = Perf.create () and b = Perf.create () in
  Perf.incr a Perf.flits;
  Perf.add b Perf.flits 4;
  Perf.set_max a Perf.occ_peak 9;
  Perf.set_max b Perf.occ_peak 3;
  Perf.merge_into ~src:a ~dst:b;
  Alcotest.(check int) "sums flits" 5 (Perf.read b Perf.flits);
  Alcotest.(check int) "occ peak is max, not sum" 9 (Perf.read b Perf.occ_peak)

(* ------------------------------------------------------------------ *)
(* Watchdog vs quiescence *)

let test_watchdog_quiet_on_idle_fastforward () =
  let sim, k = mk_kernel () in
  let h = Health.create ~config:{ Health.default_config with
                                  Health.period = 100; stuck_deadline = 500 } k
  in
  (* Nothing installed: after boot traffic settles the fabric is idle
     and the engine fast-forwards between watchdog sweeps. *)
  Sim.run_for sim 100_000;
  Alcotest.(check bool) "sweeps kept firing across fast-forward" true
    (Health.checks h > 900);
  Alcotest.(check (list reject)) "no alarms on an idle board" []
    (Health.alarms h);
  (* Every sweep pulsed every tile's heartbeat counter. *)
  Alcotest.(check int) "heartbeat counter matches sweeps" (Health.checks h)
    (Perf.read (Monitor.perf (Kernel.monitor k 3)) Perf.heartbeats)

let test_watchdog_trips_on_stuck_tile () =
  let sim, k = mk_kernel () in
  let victim = 5 in
  let h = Health.create ~config:{ Health.default_config with
                                  Health.period = 100; stuck_deadline = 1_000 } k
  in
  Kernel.install k ~tile:victim
    (Shell.behavior "hog"
       ~on_boot:(fun sh -> Shell.register_service sh "hog")
       ~on_message:(fun sh _ ->
         (* Livelock model: the first delivery pins the accelerator in
            compute forever, with more messages queued behind it. *)
         Shell.busy sh 1_000_000));
  Kernel.install k ~tile:1
    (Shell.behavior "driver" ~on_boot:(fun sh ->
         Sim.after (Shell.sim sh) 1_000 (fun () ->
             Shell.connect sh ~service:"hog" (fun r ->
                 match r with
                 | Error _ -> ()
                 | Ok conn ->
                   for _ = 1 to 5 do
                     Shell.send_data sh conn ~opcode:Accels.op_echo
                       (Bytes.make 16 'x')
                   done))));
  Sim.run_for sim 30_000;
  let stuck =
    List.filter_map
      (fun (_, a) ->
        match a with Health.Stuck_tile { tile; _ } -> Some tile | _ -> None)
      (Health.alarms h)
  in
  Alcotest.(check (list int)) "exactly the hung tile flagged" [ victim ] stuck

(* ------------------------------------------------------------------ *)
(* Stat service: in-band reads *)

let test_statsvc_in_band_read () =
  let sim, k = mk_kernel () in
  let echo_tile = 5 in
  Kernel.install k ~tile:echo_tile (Accels.echo ~cost:2 ());
  ignore (Statsvc.install k ~tile:6);
  let got_tile = ref None and got_board = ref None and bad = ref 0 in
  Kernel.install k ~tile:1
    (Shell.behavior "driver" ~on_boot:(fun sh ->
         Sim.after (Shell.sim sh) 1_000 (fun () ->
             Shell.connect sh ~service:"echo" (fun r ->
                 match r with
                 | Error _ -> incr bad
                 | Ok conn ->
                   let rec ping n =
                     if n > 0 then
                       Shell.request sh conn ~opcode:Accels.op_echo
                         (Bytes.make 8 'p') (fun _ -> ping (n - 1))
                     else
                       Shell.connect sh ~service:Statsvc.service_name (fun r ->
                           match r with
                           | Error _ -> incr bad
                           | Ok stat ->
                             Shell.request sh stat ~opcode:Statsvc.opcode
                               (Statsvc.encode_query (Statsvc.Tile echo_tile))
                               (fun r ->
                                 (match r with
                                 | Ok m ->
                                   got_tile :=
                                     Perf.decode m.Apiary_core.Message.payload
                                 | Error _ -> incr bad);
                                 Shell.request sh stat ~opcode:Statsvc.opcode
                                   (Statsvc.encode_query Statsvc.Board)
                                   (fun r ->
                                     match r with
                                     | Ok m ->
                                       got_board :=
                                         Perf.decode m.Apiary_core.Message.payload
                                     | Error _ -> incr bad)))
                   in
                   ping 10))));
  Sim.run_for sim 60_000;
  Alcotest.(check int) "no errors along the way" 0 !bad;
  (match !got_tile with
  | None -> Alcotest.fail "no tile block decoded"
  | Some p ->
    (* 10 echo replies + control egress (connect handshake). *)
    Alcotest.(check bool) "echo tile answered the 10 pings" true
      (Perf.read p Perf.msgs_out >= 10));
  match !got_board with
  | None -> Alcotest.fail "no board block decoded"
  | Some p ->
    Alcotest.(check bool) "board summary includes router flits" true
      (Perf.read p Perf.flits > 0)

let test_statsvc_rejects_garbage () =
  let _, k = mk_kernel () in
  Alcotest.(check (option reject)) "out-of-range tile" None
    (Statsvc.answer k (Statsvc.Tile 999));
  Alcotest.(check (option reject)) "malformed query" None
    (Statsvc.decode_query (Bytes.make 5 '\000'))

(* ------------------------------------------------------------------ *)
(* Flight recorder *)

let test_flight_ring_bounded () =
  let f = Flight.create ~capacity:16 () in
  Flight.record f ~ts:0 ~tile:0 ~cat:"x" ~name:"ignored-while-disabled" ();
  Alcotest.(check (list reject)) "disabled ring records nothing" []
    (Flight.entries f);
  Flight.set_enabled f true;
  for i = 1 to 40 do
    Flight.record f ~ts:i ~tile:(i mod 4) ~cat:"monitor" ~name:"admit" ()
  done;
  let es = Flight.entries f in
  Alcotest.(check int) "bounded at capacity" 16 (List.length es);
  Alcotest.(check int) "counts every event seen" 40 (Flight.total f);
  Alcotest.(check int) "oldest retained is 25" 25 (List.hd es).Flight.ts;
  Alcotest.(check int) "newest retained is 40"
    40 (List.nth es 15).Flight.ts;
  let doc = Flight.dump_json f ~reason:"test" ~cycle:41 in
  Alcotest.(check bool) "dump looks like the postmortem schema" true
    (String.length doc > 0
    && doc.[0] = '{'
    && String.length doc >= 2
    && (let has s sub =
          let n = String.length s and m = String.length sub in
          let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
          go 0
        in
        has doc "\"events\"" && has doc "\"recorded\": 40"))

let test_flight_postmortem_on_fault () =
  let sim, k = mk_kernel () in
  Flight.set_enabled (Kernel.flight k) true;
  Kernel.install k ~tile:5
    (Shell.behavior "victim"
       ~on_boot:(fun sh -> Shell.register_service sh "victim")
       ~on_message:(fun sh _ -> Shell.raise_fault sh "boom"));
  Kernel.install k ~tile:1
    (Shell.behavior "driver" ~on_boot:(fun sh ->
         Sim.after (Shell.sim sh) 1_000 (fun () ->
             Shell.connect sh ~service:"victim" (fun r ->
                 match r with
                 | Error _ -> ()
                 | Ok conn ->
                   Shell.send_data sh conn ~opcode:Accels.op_echo
                     (Bytes.make 8 'x')))));
  Sim.run_for sim 20_000;
  let es = Flight.entries (Kernel.flight k) in
  Alcotest.(check bool) "ring holds the story" true (List.length es > 0);
  let last = List.nth es (List.length es - 1) in
  Alcotest.(check string) "last event is the fault" "fault" last.Flight.name;
  Alcotest.(check int) "on the faulting tile" 5 last.Flight.tile

(* ------------------------------------------------------------------ *)
(* Critical path decomposition (synthetic spans) *)

let test_critical_path_decomposition () =
  Span.reset ();
  Span.set_enabled true;
  let dur ~cat ~name ~ts d ~corr =
    Span.complete ~board:0 ~cat ~name ~track:0 ~ts ~dur:d ~corr ()
  in
  (* One request: 100 total, one 40-cycle transfer of which 25 in
     routers, so queue = 40 - 25 = 15 and service = 100 - 40 = 60. *)
  dur ~cat:"monitor" ~name:"rpc" ~ts:0 100 ~corr:7;
  dur ~cat:"noc" ~name:"xfer" ~ts:5 40 ~corr:7;
  dur ~cat:"noc" ~name:"hop" ~ts:6 10 ~corr:7;
  dur ~cat:"noc" ~name:"hop" ~ts:20 15 ~corr:7;
  Span.set_enabled false;
  (match Critical_path.analyze (Span.events ()) with
  | [ b ] ->
    Alcotest.(check int) "total" 100 b.Critical_path.total;
    Alcotest.(check int) "hop" 25 b.Critical_path.hop;
    Alcotest.(check int) "queue" 15 b.Critical_path.queue;
    Alcotest.(check int) "service" 60 b.Critical_path.service
  | bs ->
    Alcotest.fail
      (Printf.sprintf "expected one breakdown, got %d" (List.length bs)));
  Span.reset ()

(* ------------------------------------------------------------------ *)
(* Engine invariance: counters are byte-identical across engines *)

(* A rack with echo replicas, a sharded client, per-board health layers
   and the rack heartbeat watchdog; a mid-run kill exercises detection.
   Fingerprint = every tile monitor's and every router's encoded block
   on every board, plus the watchdog's detections. *)
let rack_counter_fingerprint mode ~cycles =
  let boards = 2 in
  let eng =
    Par_sim.create ~mode ~lookahead:Cluster.lookahead ~n:(boards + 1) ()
  in
  let cluster =
    Cluster.create ~engine:eng (Par_sim.sim eng 0) ~boards ~client_ports:3
  in
  for bd = 0 to boards - 1 do
    ignore
      (Cluster.install cluster ~board:bd ~service:"mirror"
         (Accels.echo ~service:"mirror" ()))
  done;
  let healths =
    List.map
      (fun nd -> Health.create (Apiary_cluster.Node.kernel nd))
      (Cluster.nodes cluster)
  in
  let watchdog = Rack_health.create ~hb_period:500 ~deadline:3_000 cluster in
  let client =
    Shard_client.create cluster ~timeout:15_000 ~service:"mirror"
      ~op:Accels.op_echo ~route:Shard_client.By_key
      ~gen:(fun n -> (Printf.sprintf "key-%04d" (n mod 64), Bytes.of_string "ping"))
  in
  Sim.after (Cluster.sim cluster) 1_000 (fun () ->
      Shard_client.start client ~concurrency:4);
  Sim.after (Cluster.sim cluster) (cycles / 2) (fun () ->
      Cluster.kill cluster ~board:1);
  Par_sim.run_until eng cycles;
  Shard_client.stop client;
  Par_sim.shutdown eng;
  let buf = Buffer.create 4096 in
  List.iter
    (fun nd ->
      let k = Apiary_cluster.Node.kernel nd in
      for tile = 0 to Kernel.n_tiles k - 1 do
        Buffer.add_bytes buf (Perf.encode (Monitor.perf (Kernel.monitor k tile)));
        Buffer.add_bytes buf
          (Perf.encode
             (Router.perf
                (Mesh.router_at (Kernel.mesh k) (Kernel.coord_of_tile k tile))))
      done)
    (Cluster.nodes cluster);
  List.iter
    (fun h -> Buffer.add_string buf (string_of_int (Health.checks h)))
    healths;
  List.iter
    (fun (cyc, bd) -> Buffer.add_string buf (Printf.sprintf "d%d@%d" bd cyc))
    (Rack_health.detections watchdog);
  ( Digest.to_hex (Digest.string (Buffer.contents buf)),
    Shard_client.completed client,
    List.length (Rack_health.detections watchdog) )

let counter_invariance_prop =
  QCheck.Test.make ~count:3 ~name:"counter blocks invariant across engines"
    QCheck.(make Gen.(oneofl [ 30_000; 45_000; 60_000 ]))
    (fun cycles ->
      let fp_seq, done_seq, det_seq =
        rack_counter_fingerprint Par_sim.Seq ~cycles
      in
      let fp_par, done_par, det_par =
        rack_counter_fingerprint Par_sim.Par ~cycles
      in
      done_seq > 0 && det_seq = 1 && fp_seq = fp_par && done_seq = done_par
      && det_seq = det_par)

let () =
  Alcotest.run "health"
    [
      ( "perf",
        [
          Alcotest.test_case "encode/decode roundtrip" `Quick test_perf_roundtrip;
          Alcotest.test_case "merge semantics" `Quick test_perf_merge;
        ] );
      ( "watchdog",
        [
          Alcotest.test_case "idle fast-forward never trips" `Quick
            test_watchdog_quiet_on_idle_fastforward;
          Alcotest.test_case "stuck tile trips" `Quick
            test_watchdog_trips_on_stuck_tile;
        ] );
      ( "statsvc",
        [
          Alcotest.test_case "in-band read" `Quick test_statsvc_in_band_read;
          Alcotest.test_case "rejects garbage" `Quick test_statsvc_rejects_garbage;
        ] );
      ( "flight",
        [
          Alcotest.test_case "ring bounded" `Quick test_flight_ring_bounded;
          Alcotest.test_case "postmortem on fault" `Quick
            test_flight_postmortem_on_fault;
        ] );
      ( "critical_path",
        [
          Alcotest.test_case "decomposition" `Quick
            test_critical_path_decomposition;
        ] );
      ( "invariance",
        [ QCheck_alcotest.to_alcotest counter_invariance_prop ] );
    ]
