(* The conservative parallel-in-time engine's load-bearing claim is
   determinism: for a fixed seed the partitioned simulation — in either
   execution mode — must be byte-identical to the reference. Three
   layers of checks:

   - Par_sim unit: barrier merge order is (time, src, seq) regardless of
     posting order, and a post inside the open window raises.
   - Mesh: a striped mesh (monolithic vs Seq vs Par) delivers the exact
     same packets with the exact same latencies and router activity.
   - Rack (E12-small shape): a 2-board cluster under a client-driven
     sharded workload produces identical traces and client stats in Seq
     and Par modes. *)

module Sim = Apiary_engine.Sim
module Par_sim = Apiary_engine.Par_sim
module Rng = Apiary_engine.Rng
module Stats = Apiary_engine.Stats
module Trace = Apiary_core.Trace
module Mesh = Apiary_noc.Mesh
module Traffic = Apiary_noc.Traffic
module Coord = Apiary_noc.Coord
module Accels = Apiary_accel.Accels
module Cluster = Apiary_cluster.Cluster
module Shard_client = Apiary_cluster.Shard_client

(* ------------------------------------------------------------------ *)
(* Par_sim unit *)

let test_merge_order () =
  let eng = Par_sim.create ~lookahead:5 ~n:3 () in
  let log = ref [] in
  (* Members 2 then 1 stage posts for the same cycle; the barrier must
     reorder them to (time, src, seq) no matter who posted first. *)
  List.iter
    (fun src ->
      Sim.at (Par_sim.sim eng src) 1 (fun () ->
          Par_sim.post eng ~src ~dst:0 ~time:12 (fun () ->
              log := (12, src, 'b') :: !log);
          Par_sim.post eng ~src ~dst:0 ~time:10 (fun () ->
              log := (10, src, 'a') :: !log)))
    [ 2; 1 ];
  Par_sim.run_until eng 20;
  Alcotest.(check (list (triple int int char)))
    "delivery order is (time, src, seq)"
    [ (10, 1, 'a'); (10, 2, 'a'); (12, 1, 'b'); (12, 2, 'b') ]
    (List.rev !log)

let test_lookahead_violation_raises () =
  let eng = Par_sim.create ~lookahead:5 ~n:2 () in
  Sim.at (Par_sim.sim eng 1) 1 (fun () ->
      (* Cycle 3 is inside the open window [0, 5): the receiving member
         may already have simulated past it. *)
      Par_sim.post eng ~src:1 ~dst:0 ~time:3 (fun () -> ()));
  match Par_sim.run_until eng 10 with
  | () -> Alcotest.fail "lookahead violation went undetected"
  | exception Invalid_argument msg ->
    Alcotest.(check bool) "names the violation" true
      (String.length msg > 0
      && String.sub msg 0 12 = "Par_sim.post")

let test_single_partition_no_windows () =
  let eng = Par_sim.create ~lookahead:4 ~n:1 () in
  let hits = ref 0 in
  Sim.every (Par_sim.sim eng 0) 10 (fun () -> incr hits);
  Par_sim.run_until eng 100;
  (* Fires at 10, 20, …, 90 — cycle 100 is the target, not executed. *)
  Alcotest.(check int) "events ran" 9 !hits;
  Alcotest.(check int) "clock advanced" 100 (Par_sim.now eng)

(* ------------------------------------------------------------------ *)
(* Mesh cross-check: monolithic vs striped Seq vs striped Par *)

let hist_sig h =
  Printf.sprintf "n=%d sum=%d min=%d max=%d p50=%d p99=%d"
    (Stats.Histogram.count h) (Stats.Histogram.sum h)
    (Stats.Histogram.min_value h) (Stats.Histogram.max_value h)
    (Stats.Histogram.percentile h 50.0) (Stats.Histogram.percentile h 99.0)

let mesh_fingerprint mesh ~offered =
  let flits =
    List.map (fun c -> Apiary_noc.Router.flits_routed (Mesh.router_at mesh c))
      (Mesh.coords mesh)
  in
  Printf.sprintf "offered=%d sent=%d delivered=%d backlog=%d\nflits=%s\nlat[%s]\ncls0[%s]\ncls1[%s]\nhops[%s]"
    offered (Mesh.packets_sent mesh) (Mesh.packets_delivered mesh)
    (Mesh.tx_backlog mesh)
    (String.concat "," (List.map string_of_int flits))
    (hist_sig (Mesh.latency mesh))
    (hist_sig (Mesh.latency_of_class mesh 0))
    (hist_sig (Mesh.latency_of_class mesh 1))
    (hist_sig (Mesh.hop_histogram mesh))

let run_mesh engine_mode cycles =
  let cfg = { Mesh.default_config with Mesh.qos = true } in
  match engine_mode with
  | None ->
    let sim = Sim.create () in
    let mesh = Mesh.create sim cfg in
    let gen =
      Traffic.start mesh ~rng:(Rng.create ~seed:11) ~pattern:Traffic.Uniform
        ~rate:0.08 ~payload_bytes:48 ~cls:1 ~payload:() ()
    in
    Sim.run_until sim cycles;
    Traffic.stop_gen gen;
    mesh_fingerprint mesh ~offered:(Traffic.offered gen)
  | Some (mode, sync, adaptive) ->
    let eng = Par_sim.create ~mode ~sync ~adaptive ~lookahead:1 ~n:2 () in
    let mesh = Mesh.create ~engine:eng (Par_sim.sim eng 0) cfg in
    (* One generator replica per stripe, identically seeded: replicas
       draw the same RNG stream and partition the injections. *)
    let gens =
      List.init (Mesh.stripes mesh) (fun s ->
          Traffic.start mesh ~rng:(Rng.create ~seed:11)
            ~pattern:Traffic.Uniform ~rate:0.08 ~payload_bytes:48 ~cls:1
            ~stripe:s ~payload:() ())
    in
    Par_sim.run_until eng cycles;
    Par_sim.shutdown eng;
    List.iter Traffic.stop_gen gens;
    let offered = List.fold_left (fun a g -> a + Traffic.offered g) 0 gens in
    mesh_fingerprint mesh ~offered

let fixed_barrier mode = Some (mode, Par_sim.Barrier, false)

let test_mesh_partitioned_matches_monolithic () =
  let cycles = 6_000 in
  let mono = run_mesh None cycles in
  let seq = run_mesh (fixed_barrier Par_sim.Seq) cycles in
  Alcotest.(check string) "striped Seq == monolithic" mono seq;
  (* Sanity: the workload exercised the boundary. *)
  Alcotest.(check bool) "packets flowed" true
    (String.length mono > 0 && not (String.length mono = 0))

let test_mesh_par_matches_seq () =
  let cycles = 6_000 in
  let seq = run_mesh (fixed_barrier Par_sim.Seq) cycles in
  let par = run_mesh (fixed_barrier Par_sim.Par) cycles in
  Alcotest.(check string) "striped Par == striped Seq" seq par

(* Every discipline shares the canonical delivery schedule, so neighbor
   sync and adaptive windows must not move a single byte. *)
let test_mesh_disciplines_agree () =
  let cycles = 6_000 in
  let reference = run_mesh (fixed_barrier Par_sim.Seq) cycles in
  let neighbor =
    run_mesh (Some (Par_sim.Par, Par_sim.Neighbor, false)) cycles
  in
  Alcotest.(check string) "Neighbor Par == Barrier Seq" reference neighbor;
  let adaptive = run_mesh (Some (Par_sim.Par, Par_sim.Barrier, true)) cycles in
  Alcotest.(check string) "adaptive Par == fixed Seq" reference adaptive

(* ------------------------------------------------------------------ *)
(* Rack cross-check (E12-small shape): Seq vs Par *)

let event_to_string e =
  Format.asprintf "%a" Trace.pp_event e

let run_rack ?domains mode cycles =
  let boards = 2 in
  let eng =
    Par_sim.create ~mode ~adaptive:true ?domains ~lookahead:Cluster.lookahead
      ~n:(boards + 1) ()
  in
  let cluster =
    Cluster.create ~engine:eng (Par_sim.sim eng 0) ~boards ~client_ports:2
  in
  for bd = 0 to boards - 1 do
    ignore
      (Cluster.install cluster ~board:bd ~service:"mirror"
         (Accels.echo ~service:"mirror" ()))
  done;
  let client =
    Shard_client.create cluster ~timeout:15_000 ~service:"mirror"
      ~op:Accels.op_echo ~route:Shard_client.By_key
      ~gen:(fun n ->
        (Printf.sprintf "key-%04d" (n mod 64), Bytes.of_string "ping"))
  in
  Cluster.set_tracing cluster true;
  Sim.after (Cluster.sim cluster) 1_000 (fun () ->
      Shard_client.start client ~concurrency:4);
  Par_sim.run_until eng cycles;
  Shard_client.stop client;
  Par_sim.shutdown eng;
  let trace = List.map event_to_string (Cluster.merged_trace cluster) in
  let stats =
    Printf.sprintf "issued=%d completed=%d errors=%d failovers=%d lat[%s]"
      (Shard_client.issued client) (Shard_client.completed client)
      (Shard_client.errors client) (Shard_client.failovers client)
      (hist_sig (Shard_client.latency client))
  in
  (stats, trace)

let test_rack_par_matches_seq () =
  let cycles = 60_000 in
  let stats_seq, trace_seq = run_rack Par_sim.Seq cycles in
  let stats_par, trace_par = run_rack Par_sim.Par cycles in
  Alcotest.(check string) "client stats identical" stats_seq stats_par;
  Alcotest.(check int) "trace length identical" (List.length trace_seq)
    (List.length trace_par);
  Alcotest.(check (list string)) "traces byte-identical" trace_seq trace_par;
  (* The workload must actually have crossed partition boundaries. *)
  Alcotest.(check bool) "requests completed" true
    (String.length stats_seq > 0 && trace_seq <> [])

(* Work stealing: fewer domains than members must not move a byte —
   members are isolated within a window, so which domain runs which
   member is pure scheduling. *)
let test_rack_work_stealing_matches () =
  let cycles = 60_000 in
  let stats_seq, trace_seq = run_rack Par_sim.Seq cycles in
  let stats_steal, trace_steal = run_rack ~domains:2 Par_sim.Par cycles in
  Alcotest.(check string) "stats identical under stealing" stats_seq stats_steal;
  Alcotest.(check (list string)) "traces identical under stealing" trace_seq
    trace_steal

let test_domains_clamped_and_reported () =
  let eng = Par_sim.create ~domains:99 ~lookahead:2 ~n:3 () in
  Alcotest.(check int) "clamped to n" 3 (Par_sim.domains_used eng);
  Alcotest.(check int) "n_domains is member count" 3 (Par_sim.n_domains eng);
  let eng2 = Par_sim.create ~domains:2 ~lookahead:2 ~n:3 () in
  Alcotest.(check int) "explicit cap kept" 2 (Par_sim.domains_used eng2)

let test_neighbor_undersubscribed_rejected () =
  Alcotest.check_raises "Neighbor needs one domain per member"
    (Invalid_argument
       "Par_sim.create: Neighbor sync pins one domain per member (domains = n)")
    (fun () ->
      ignore
        (Par_sim.create ~mode:Par_sim.Par ~sync:Par_sim.Neighbor ~domains:2
           ~lookahead:1 ~n:4 ()))

(* ------------------------------------------------------------------ *)
(* qcheck properties: canonical delivery and window bounds.

   Synthetic cross-partition workload: member k fires every (3 + k)
   cycles and stamps a neighbor at [now + lookahead + jitter], the
   jitter a pure function of time (no shared state). Logs are
   per-member — written only by the owning domain — and concatenated
   after the run, so the fingerprint is race-free under real Par
   execution. *)

let run_synth ~mode ~sync ~adaptive ~lookahead ~n ~total ~chunks =
  let eng = Par_sim.create ~mode ~sync ~adaptive ~lookahead ~n () in
  let logs = Array.make n [] in
  for k = 0 to n - 1 do
    let src_sim = Par_sim.sim eng k in
    let dst = if k + 1 < n then k + 1 else k - 1 in
    Sim.every src_sim (3 + k) (fun () ->
        let now = Sim.now src_sim in
        let time = now + lookahead + (now mod 3) in
        Par_sim.post eng ~src:k ~dst ~time (fun () ->
            logs.(dst) <- (Sim.now (Par_sim.sim eng dst), k) :: logs.(dst)))
  done;
  (* Random window placement: advance in caller-chosen chunks, then to
     the common target. Canonical delivery makes the result independent
     of this schedule. *)
  List.iter
    (fun c -> Par_sim.run_until eng (min total (Par_sim.now eng + c)))
    chunks;
  Par_sim.run_until eng total;
  Par_sim.shutdown eng;
  let buf = Buffer.create 256 in
  Array.iteri
    (fun d l ->
      List.iter
        (fun (t, s) -> Buffer.add_string buf (Printf.sprintf "%d<%d@%d;" d s t))
        (List.rev l))
    logs;
  (Buffer.contents buf, Par_sim.window_stats eng)

type synth_cfg = {
  c_n : int;
  c_lookahead : int;
  c_adaptive : bool;
  c_neighbor : bool;
  c_chunks : int list;
}

let cfg_arb =
  let gen =
    QCheck.Gen.(
      let* c_n = int_range 2 4 in
      let* c_lookahead = int_range 1 6 in
      let* c_adaptive = bool in
      let* c_neighbor = bool in
      let* c_chunks = list_size (int_range 0 6) (int_range 1 97) in
      return { c_n; c_lookahead; c_adaptive; c_neighbor; c_chunks })
  in
  let print c =
    Printf.sprintf "{n=%d; lookahead=%d; adaptive=%b; neighbor=%b; chunks=[%s]}"
      c.c_n c.c_lookahead c.c_adaptive c.c_neighbor
      (String.concat ";" (List.map string_of_int c.c_chunks))
  in
  QCheck.make ~print gen

let synth_of c mode ~chunks =
  run_synth ~mode
    ~sync:(if c.c_neighbor then Par_sim.Neighbor else Par_sim.Barrier)
    ~adaptive:c.c_adaptive ~lookahead:c.c_lookahead ~n:c.c_n ~total:500 ~chunks

let prop_delivery_canonical =
  QCheck.Test.make ~count:25 ~name:"Seq == Par across random schedules"
    cfg_arb (fun c ->
      let fp_chunked, _ = synth_of c Par_sim.Seq ~chunks:c.c_chunks in
      let fp_whole, _ = synth_of c Par_sim.Seq ~chunks:[] in
      let fp_par, _ = synth_of c Par_sim.Par ~chunks:c.c_chunks in
      fp_chunked = fp_whole && fp_whole = fp_par && String.length fp_whole > 0)

let prop_window_bounds =
  QCheck.Test.make ~count:25 ~name:"window widths stay in [1, bound]"
    cfg_arb (fun c ->
      let _, (count, min_w, max_w) = synth_of c Par_sim.Seq ~chunks:c.c_chunks in
      count >= 1 && min_w >= 1
      && max_w <= 500
      && ((c.c_adaptive && not c.c_neighbor) || max_w <= c.c_lookahead))

let () =
  Alcotest.run "par"
    [
      ( "par_sim",
        [
          Alcotest.test_case "merge order" `Quick test_merge_order;
          Alcotest.test_case "lookahead violation raises" `Quick
            test_lookahead_violation_raises;
          Alcotest.test_case "single partition" `Quick
            test_single_partition_no_windows;
          QCheck_alcotest.to_alcotest prop_delivery_canonical;
          QCheck_alcotest.to_alcotest prop_window_bounds;
        ] );
      ( "mesh",
        [
          Alcotest.test_case "striped == monolithic" `Quick
            test_mesh_partitioned_matches_monolithic;
          Alcotest.test_case "Par == Seq" `Quick test_mesh_par_matches_seq;
          Alcotest.test_case "disciplines agree" `Quick
            test_mesh_disciplines_agree;
        ] );
      ( "rack",
        [
          Alcotest.test_case "Par == Seq (E12-small shape)" `Quick
            test_rack_par_matches_seq;
          Alcotest.test_case "work stealing == Seq" `Quick
            test_rack_work_stealing_matches;
        ] );
      ( "domains",
        [
          Alcotest.test_case "clamped and reported" `Quick
            test_domains_clamped_and_reported;
          Alcotest.test_case "Neighbor undersubscription rejected" `Quick
            test_neighbor_undersubscribed_rejected;
        ] );
    ]
