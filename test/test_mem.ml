(* Tests for the memory subsystem: DRAM timing/data integrity, segment
   allocator invariants, fragmentation accounting, and the paged baseline
   with its TLB. *)

module Sim = Apiary_engine.Sim
module Rng = Apiary_engine.Rng
module Dram = Apiary_mem.Dram
module Seg_alloc = Apiary_mem.Seg_alloc
module Page_alloc = Apiary_mem.Page_alloc

(* ------------------------------------------------------------------ *)
(* DRAM *)

let mk_dram ?(size = 1 lsl 20) sim = Dram.create sim Dram.default_config ~size_bytes:size

let test_dram_write_read_roundtrip () =
  let sim = Sim.create () in
  let d = mk_dram sim in
  let payload = Bytes.of_string "hello, apiary!" in
  let got = ref None in
  let ok =
    Dram.write d ~addr:4096 payload (fun () ->
        ignore (Dram.read d ~addr:4096 ~len:(Bytes.length payload) (fun b -> got := Some b)))
  in
  Alcotest.(check bool) "accepted" true ok;
  Sim.run_for sim 200;
  match !got with
  | None -> Alcotest.fail "read never completed"
  | Some b -> Alcotest.(check string) "data" "hello, apiary!" (Bytes.to_string b)

let test_dram_latency_row_hit_vs_miss () =
  let sim = Sim.create () in
  let d = mk_dram sim in
  let t_done = ref (-1) in
  ignore (Dram.read d ~addr:0 ~len:16 (fun _ -> t_done := Sim.now sim));
  Sim.run_for sim 100;
  let first = !t_done in
  (* Same row again: must be faster (row hit). *)
  let t2 = ref (-1) in
  let start = Sim.now sim in
  ignore (Dram.read d ~addr:64 ~len:16 (fun _ -> t2 := Sim.now sim));
  Sim.run_for sim 100;
  let second = !t2 - start in
  Alcotest.(check bool)
    (Printf.sprintf "hit (%d) faster than miss (%d)" second first)
    true (second < first);
  Alcotest.(check int) "one hit" 1 (Dram.row_hits d);
  Alcotest.(check int) "one miss" 1 (Dram.row_misses d)

let test_dram_queue_full () =
  let sim = Sim.create () in
  let d = mk_dram sim in
  (* Saturate one bank's queue with same-row requests. *)
  let accepted = ref 0 in
  for _ = 1 to 40 do
    if Dram.read d ~addr:0 ~len:16 (fun _ -> ()) then incr accepted
  done;
  Alcotest.(check bool) "some rejected" true (!accepted < 40);
  (* After draining, submissions are accepted again. *)
  Sim.run_for sim 2000;
  Alcotest.(check bool) "accepted after drain" true
    (Dram.read d ~addr:0 ~len:16 (fun _ -> ()))

let test_dram_parallel_banks_faster_than_one () =
  let run addrs =
    let sim = Sim.create () in
    let d = mk_dram sim in
    let remaining = ref (List.length addrs) in
    List.iter
      (fun a -> ignore (Dram.read d ~addr:a ~len:16 (fun _ -> decr remaining)))
      addrs;
    let t0 = Sim.now sim in
    Sim.run_for sim 10_000;
    ignore t0;
    Alcotest.(check int) "all done" 0 !remaining;
    (Dram.row_hits d, Dram.row_misses d)
  in
  (* 8 requests to 8 different banks vs 8 to one bank: bank-parallel case
     has 8 misses (one per bank) but overlaps them. *)
  let row = Dram.default_config.Dram.row_bytes in
  let _ = run (List.init 8 (fun i -> i * row)) in
  let hits_same, _ = run (List.init 8 (fun _ -> 0)) in
  Alcotest.(check bool) "same-bank run hits rows" true (hits_same >= 6)

let test_dram_oob_raises () =
  let sim = Sim.create () in
  let d = mk_dram ~size:4096 sim in
  Alcotest.check_raises "oob" (Invalid_argument "Dram: access out of physical range")
    (fun () -> ignore (Dram.read d ~addr:4000 ~len:200 (fun _ -> ())))

let test_dram_poke_peek () =
  let sim = Sim.create () in
  let d = mk_dram sim in
  Dram.poke d ~addr:100 (Bytes.of_string "xyz");
  Alcotest.(check string) "peek" "xyz" (Bytes.to_string (Dram.peek d ~addr:100 ~len:3))

(* ------------------------------------------------------------------ *)
(* Segment allocator *)

let test_seg_alloc_basic () =
  let a = Seg_alloc.create ~base:0 ~size:4096 Seg_alloc.First_fit in
  let b1 = Result.get_ok (Seg_alloc.alloc a 100) in
  let b2 = Result.get_ok (Seg_alloc.alloc a 200) in
  Alcotest.(check bool) "disjoint" true (b2 >= b1 + 100);
  Alcotest.(check int) "used" 300 (Seg_alloc.used_bytes a);
  Seg_alloc.check_invariants a

let test_seg_alloc_alignment () =
  let a = Seg_alloc.create ~base:0 ~size:4096 Seg_alloc.First_fit in
  let b = Result.get_ok (Seg_alloc.alloc a ~align:256 10) in
  Alcotest.(check int) "aligned" 0 (b mod 256)

let test_seg_alloc_oom () =
  let a = Seg_alloc.create ~base:0 ~size:1024 Seg_alloc.First_fit in
  ignore (Result.get_ok (Seg_alloc.alloc a ~align:1 1000));
  (match Seg_alloc.alloc a ~align:1 100 with
  | Error `Out_of_memory -> ()
  | Ok _ -> Alcotest.fail "expected OOM")

let test_seg_alloc_free_coalesce () =
  let a = Seg_alloc.create ~base:0 ~size:4096 Seg_alloc.First_fit in
  let b1 = Result.get_ok (Seg_alloc.alloc a ~align:1 1024) in
  let b2 = Result.get_ok (Seg_alloc.alloc a ~align:1 1024) in
  let b3 = Result.get_ok (Seg_alloc.alloc a ~align:1 1024) in
  Seg_alloc.free a b1;
  Seg_alloc.free a b3;
  Seg_alloc.free a b2;
  Seg_alloc.check_invariants a;
  Alcotest.(check int) "fully coalesced" 1 (Seg_alloc.free_block_count a);
  Alcotest.(check int) "all free" 4096 (Seg_alloc.free_bytes a);
  (* Whole region allocatable again. *)
  ignore (Result.get_ok (Seg_alloc.alloc a ~align:1 4096))

let test_seg_alloc_double_free_rejected () =
  let a = Seg_alloc.create ~base:0 ~size:4096 Seg_alloc.First_fit in
  let b = Result.get_ok (Seg_alloc.alloc a 64) in
  Seg_alloc.free a b;
  (try
     Seg_alloc.free a b;
     Alcotest.fail "double free accepted"
   with Invalid_argument _ -> ())

let test_seg_alloc_best_fit_reduces_stranding () =
  (* Carve holes of 1000 (low address) then 100: a 90-byte request takes
     the 100 hole under best-fit, preserving the 1000 hole for a later big
     request, while first-fit chews the big hole and strands the layout. *)
  let mk policy =
    let a = Seg_alloc.create ~base:0 ~size:8192 policy in
    let h1000 = Result.get_ok (Seg_alloc.alloc a ~align:1 1000) in
    let g1 = Result.get_ok (Seg_alloc.alloc a ~align:1 64) in
    let h100 = Result.get_ok (Seg_alloc.alloc a ~align:1 100) in
    let g2 = Result.get_ok (Seg_alloc.alloc a ~align:1 (8192 - 100 - 64 - 1000)) in
    ignore (g1, g2);
    Seg_alloc.free a h100;
    Seg_alloc.free a h1000;
    a
  in
  let bf = mk Seg_alloc.Best_fit in
  ignore (Result.get_ok (Seg_alloc.alloc bf ~align:1 90));
  (match Seg_alloc.alloc bf ~align:1 950 with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "best-fit should keep the big hole");
  let ff = mk Seg_alloc.First_fit in
  ignore (Result.get_ok (Seg_alloc.alloc ff ~align:1 90));
  (match Seg_alloc.alloc ff ~align:1 950 with
  | Error `Out_of_memory -> ()  (* first-fit strands the big hole *)
  | Ok _ -> Alcotest.fail "expected first-fit stranding in this layout")

let prop_seg_alloc_random_ops =
  (* Random alloc/free interleavings keep invariants and never hand out
     overlapping segments. *)
  QCheck.Test.make ~name:"random alloc/free keeps invariants" ~count:60
    QCheck.(list (pair bool (int_range 1 512)))
    (fun ops ->
      let a = Seg_alloc.create ~base:0 ~size:65536 Seg_alloc.First_fit in
      let live = ref [] in
      let check_no_overlap () =
        let sorted = List.sort compare !live in
        let rec ok = function
          | (b1, l1) :: ((b2, _) :: _ as rest) -> b1 + l1 <= b2 && ok rest
          | _ -> true
        in
        ok sorted
      in
      List.iter
        (fun (do_alloc, n) ->
          if do_alloc || !live = [] then begin
            match Seg_alloc.alloc a n with
            | Ok b -> live := (b, n) :: !live
            | Error `Out_of_memory -> ()
          end
          else begin
            match !live with
            | (b, _) :: rest ->
              Seg_alloc.free a b;
              live := rest
            | [] -> ()
          end;
          Seg_alloc.check_invariants a)
        ops;
      check_no_overlap ())

(* ------------------------------------------------------------------ *)
(* Paged baseline *)

let test_page_map_translate () =
  let pa = Page_alloc.create ~base:0x10000 ~size:(64 * 4096) ~page_bytes:4096 in
  let sp = Page_alloc.Space.create pa ~tlb_entries:8 ~walk_cycles:20 in
  let v = Result.get_ok (Page_alloc.Space.map sp 10000) in
  (* First touch misses the TLB, second hits. *)
  let _, c1 = Result.get_ok (Page_alloc.Space.translate sp v) in
  let _, c2 = Result.get_ok (Page_alloc.Space.translate sp v) in
  Alcotest.(check int) "miss cost" 20 c1;
  Alcotest.(check int) "hit cost" 1 c2;
  Alcotest.(check int) "hits" 1 (Page_alloc.Space.tlb_hits sp)

let test_page_internal_fragmentation () =
  let pa = Page_alloc.create ~base:0 ~size:(64 * 4096) ~page_bytes:4096 in
  let sp = Page_alloc.Space.create pa ~tlb_entries:8 ~walk_cycles:20 in
  ignore (Result.get_ok (Page_alloc.Space.map sp 1));
  Alcotest.(check int) "waste = page - 1" 4095 (Page_alloc.Space.internal_fragmentation sp)

let test_page_fault_on_unmapped () =
  let pa = Page_alloc.create ~base:0 ~size:(16 * 4096) ~page_bytes:4096 in
  let sp = Page_alloc.Space.create pa ~tlb_entries:4 ~walk_cycles:20 in
  (match Page_alloc.Space.translate sp 0 with
  | Error `Fault -> ()
  | Ok _ -> Alcotest.fail "expected fault")

let test_page_unmap_releases_frames () =
  let pa = Page_alloc.create ~base:0 ~size:(4 * 4096) ~page_bytes:4096 in
  let sp = Page_alloc.Space.create pa ~tlb_entries:4 ~walk_cycles:20 in
  let v = Result.get_ok (Page_alloc.Space.map sp (4 * 4096)) in
  Alcotest.(check int) "no frames left" 0 (Page_alloc.free_frames pa);
  (match Page_alloc.Space.map sp 1 with
  | Error `Out_of_memory -> ()
  | Ok _ -> Alcotest.fail "expected OOM");
  Page_alloc.Space.unmap sp ~vbase:v ~len:(4 * 4096);
  Alcotest.(check int) "frames back" 4 (Page_alloc.free_frames pa);
  ignore (Result.get_ok (Page_alloc.Space.map sp 1))

let test_page_tlb_eviction () =
  let pa = Page_alloc.create ~base:0 ~size:(64 * 4096) ~page_bytes:4096 in
  let sp = Page_alloc.Space.create pa ~tlb_entries:2 ~walk_cycles:20 in
  let v1 = Result.get_ok (Page_alloc.Space.map sp 4096) in
  let v2 = Result.get_ok (Page_alloc.Space.map sp 4096) in
  let v3 = Result.get_ok (Page_alloc.Space.map sp 4096) in
  ignore (Result.get_ok (Page_alloc.Space.translate sp v1));
  ignore (Result.get_ok (Page_alloc.Space.translate sp v2));
  ignore (Result.get_ok (Page_alloc.Space.translate sp v3));  (* evicts v1 *)
  let _, c = Result.get_ok (Page_alloc.Space.translate sp v1) in
  Alcotest.(check int) "v1 evicted, walk again" 20 c

let qc = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "mem"
    [
      ( "dram",
        [
          Alcotest.test_case "roundtrip" `Quick test_dram_write_read_roundtrip;
          Alcotest.test_case "row hit vs miss" `Quick test_dram_latency_row_hit_vs_miss;
          Alcotest.test_case "queue full" `Quick test_dram_queue_full;
          Alcotest.test_case "bank behaviour" `Quick test_dram_parallel_banks_faster_than_one;
          Alcotest.test_case "oob" `Quick test_dram_oob_raises;
          Alcotest.test_case "poke/peek" `Quick test_dram_poke_peek;
        ] );
      ( "seg_alloc",
        [
          Alcotest.test_case "basic" `Quick test_seg_alloc_basic;
          Alcotest.test_case "alignment" `Quick test_seg_alloc_alignment;
          Alcotest.test_case "oom" `Quick test_seg_alloc_oom;
          Alcotest.test_case "free+coalesce" `Quick test_seg_alloc_free_coalesce;
          Alcotest.test_case "double free" `Quick test_seg_alloc_double_free_rejected;
          Alcotest.test_case "best-fit vs first-fit" `Quick test_seg_alloc_best_fit_reduces_stranding;
          qc prop_seg_alloc_random_ops;
        ] );
      ( "pages",
        [
          Alcotest.test_case "map+translate" `Quick test_page_map_translate;
          Alcotest.test_case "internal frag" `Quick test_page_internal_fragmentation;
          Alcotest.test_case "fault" `Quick test_page_fault_on_unmapped;
          Alcotest.test_case "unmap releases" `Quick test_page_unmap_releases_frames;
          Alcotest.test_case "tlb eviction" `Quick test_page_tlb_eviction;
        ] );
    ]
