(* System-level integration: a full board (client hosts -> ToR switch ->
   MAC -> network service -> NoC -> accelerators) end to end, the
   host-mediated baseline, the resource/area model, and the wiring
   scalability accounting. *)

module Sim = Apiary_engine.Sim
module Stats = Apiary_engine.Stats
module Rng = Apiary_engine.Rng
module Kernel = Apiary_core.Kernel
module Monitor = Apiary_core.Monitor
module Shell = Apiary_core.Shell
module Kv = Apiary_accel.Kv
module Accels = Apiary_accel.Accels
module Client = Apiary_net.Client
module Mac = Apiary_net.Mac
module Netproto = Apiary_net.Netproto
module Board = Apiary_apps.Board
module Video_pipeline = Apiary_apps.Video_pipeline
module Hosted = Apiary_baseline.Hosted
module Remote_service = Apiary_baseline.Remote_service
module Netsvc = Apiary_net.Netsvc
module Shell2 = Apiary_core.Shell
module Qserver = Apiary_baseline.Qserver
module Energy = Apiary_baseline.Energy
module Direct_wired = Apiary_baseline.Direct_wired
module Parts = Apiary_resource.Parts
module Area = Apiary_resource.Area
module Floorplan = Apiary_resource.Floorplan

let b = Bytes.of_string

(* ------------------------------------------------------------------ *)
(* Board end-to-end *)

let test_board_echo_end_to_end () =
  let sim = Sim.create () in
  let board = Board.create sim in
  (match Board.user_tiles board with
  | t1 :: _ -> Kernel.install board.Board.kernel ~tile:t1 (Accels.echo ())
  | [] -> Alcotest.fail "no tiles");
  let client = Board.client board ~port:1 () in
  let good = ref 0 in
  Client.on_response client (fun rsp ->
      if rsp.Netproto.status = Netproto.Ok_resp
         && Bytes.to_string rsp.Netproto.body = "ping-body"
      then incr good);
  Sim.after sim 2000 (fun () ->
      Client.start_closed client
        { Client.service = "echo"; op = Accels.op_echo; gen = (fun _ -> b "ping-body") }
        ~concurrency:2);
  Sim.run_for sim 60_000;
  Client.stop client;
  Alcotest.(check bool)
    (Printf.sprintf "completed %d, verified %d" (Client.completed client) !good)
    true
    (Client.completed client > 20 && !good = Client.completed client);
  Alcotest.(check int) "no errors" 0 (Client.errors client)

let test_board_kv_over_network () =
  let sim = Sim.create () in
  let board = Board.create sim in
  let kv_behavior, _ = Kv.behavior () in
  (match Board.user_tiles board with
  | t1 :: _ -> Kernel.install board.Board.kernel ~tile:t1 kv_behavior
  | [] -> Alcotest.fail "no tiles");
  let client = Board.client board ~port:1 () in
  (* Alternate PUT/GET on one key and verify GET bodies. *)
  let value = "network value 123" in
  let verified = ref 0 in
  Client.on_response client (fun rsp ->
      if rsp.Netproto.status = Netproto.Ok_resp then
        match Kv.Proto.decode_resp rsp.Netproto.body with
        | Ok (Kv.Proto.Found v) when Bytes.to_string v = value -> incr verified
        | _ -> ());
  let gen n =
    if n mod 2 = 1 then Kv.Proto.encode_req (Kv.Proto.Put ("key", b value))
    else Kv.Proto.encode_req (Kv.Proto.Get "key")
  in
  Sim.after sim 2000 (fun () ->
      Client.start_closed client
        { Client.service = "kv"; op = Kv.Proto.opcode; gen }
        ~concurrency:1);
  Sim.run_for sim 150_000;
  Client.stop client;
  Alcotest.(check bool)
    (Printf.sprintf "gets verified: %d" !verified)
    true (!verified > 10)

let test_board_unknown_service_unavailable () =
  let sim = Sim.create () in
  let board = Board.create sim in
  let client = Board.client board ~port:1 () in
  let unavailable = ref 0 in
  Client.on_response client (fun rsp ->
      if rsp.Netproto.status = Netproto.Service_unavailable then incr unavailable);
  Sim.after sim 2000 (fun () ->
      Client.start_closed client
        { Client.service = "ghost"; op = 0; gen = (fun _ -> b "x") }
        ~concurrency:1);
  Sim.run_for sim 80_000;
  Client.stop client;
  Alcotest.(check bool) "unavailable responses" true (!unavailable >= 1)

let test_board_video_pipeline_end_to_end () =
  let sim = Sim.create () in
  let board = Board.create sim in
  (match Board.user_tiles board with
  | enc :: comp :: _ ->
    Video_pipeline.install board.Board.kernel ~encoder_tile:enc ~compressor_tile:comp
  | _ -> Alcotest.fail "need tiles");
  let rng = Rng.create ~seed:77 in
  let chunk = Rng.bytes_compressible rng 1024 ~redundancy:0.8 in
  let client = Board.client board ~port:1 () in
  let ok = ref 0 and bad = ref 0 in
  Client.on_response client (fun rsp ->
      if rsp.Netproto.status = Netproto.Ok_resp then
        match Video_pipeline.verify_output ~original:chunk rsp.Netproto.body with
        | Ok () -> incr ok
        | Error _ -> incr bad);
  Sim.after sim 3000 (fun () ->
      Client.start_closed client
        { Client.service = "vpipe"; op = Accels.op_encode; gen = (fun _ -> chunk) }
        ~concurrency:1);
  Sim.run_for sim 200_000;
  Client.stop client;
  Alcotest.(check int) "no bad outputs" 0 !bad;
  Alcotest.(check bool) (Printf.sprintf "verified %d chunks" !ok) true (!ok > 3)

let test_board_10g_vs_100g_same_code () =
  (* The same application stack over both MAC generations: portability. *)
  let run gen =
    let sim = Sim.create () in
    let board = Board.create ~mac_gen:gen sim in
    (match Board.user_tiles board with
    | t1 :: _ -> Kernel.install board.Board.kernel ~tile:t1 (Accels.echo ())
    | [] -> ());
    let client = Board.client board ~port:1 () in
    Sim.after sim 2000 (fun () ->
        Client.start_closed client
          { Client.service = "echo"; op = Accels.op_echo; gen = (fun _ -> Bytes.create 1024) }
          ~concurrency:4);
    Sim.run_for sim 100_000;
    Client.stop client;
    (Client.completed client, Stats.Histogram.mean (Client.latency client))
  in
  let n10, lat10 = run Mac.Gen_10g in
  let n100, lat100 = run Mac.Gen_100g in
  Alcotest.(check bool) "both serve" true (n10 > 20 && n100 > 20);
  Alcotest.(check bool)
    (Printf.sprintf "100G (%.0f) faster than 10G (%.0f)" lat100 lat10)
    true (lat100 < lat10)


let test_outbound_remote_call () =
  (* An accelerator tile calls a service hosted on a remote CPU through
     the network tile (paper 6-Q3). *)
  let sim = Sim.create () in
  let board = Board.create sim in
  let remote_mac, remote_addr = Board.add_client_port board ~port:2 () in
  let _remote =
    Remote_service.create sim ~mac:remote_mac ~my_mac:remote_addr
      ~handler:(fun ~service ~op body ->
        ignore op;
        Bytes.of_string (Printf.sprintf "%s says %s" service (Bytes.to_string body)))
      ()
  in
  let got = ref None in
  (match Board.user_tiles board with
  | t :: _ ->
    Kernel.install board.Board.kernel ~tile:t
      (Shell.behavior "caller" ~on_boot:(fun sh ->
           Sim.after (Shell.sim sh) 2_000 (fun () ->
               Shell.connect sh ~service:"net" (fun r ->
                   match r with
                   | Error _ -> ()
                   | Ok net ->
                     Netsvc.remote_request sh net ~dst_mac:remote_addr
                       ~service:"quota" ~op:7 (b "hello?") (fun r ->
                         match r with
                         | Ok rsp -> got := Some (Bytes.to_string rsp.Netproto.body)
                         | Error e -> got := Some (Shell.rpc_error_to_string e))))))
  | [] -> ());
  Sim.run_for sim 60_000;
  Alcotest.(check (option string)) "remote response relayed"
    (Some "quota says hello?") !got

let test_remote_service_unreachable_times_out () =
  (* Outbound call to a MAC nobody owns: the net service's relay request
     times out at the caller. *)
  let sim = Sim.create () in
  let board = Board.create sim in
  let got = ref None in
  (match Board.user_tiles board with
  | t :: _ ->
    Kernel.install board.Board.kernel ~tile:t
      (Shell.behavior "caller" ~on_boot:(fun sh ->
           Sim.after (Shell.sim sh) 2_000 (fun () ->
               Shell.connect sh ~service:"net" (fun r ->
                   match r with
                   | Error _ -> ()
                   | Ok net ->
                     Netsvc.remote_request sh net ~dst_mac:0xDEAD ~service:"x"
                       ~op:0 Bytes.empty (fun r ->
                         match r with
                         | Error Shell.Timeout -> got := Some true
                         | _ -> got := Some false)))))
  | [] -> ());
  Sim.run_for sim 120_000;
  Alcotest.(check (option bool)) "timed out" (Some true) !got

(* ------------------------------------------------------------------ *)
(* Hosted baseline *)

let test_hosted_serves_and_is_slower () =
  (* Direct-attached Apiary vs host-mediated: same accelerator cost model,
     same client, same switch. The hosted path must show higher latency. *)
  let direct_lat =
    let sim = Sim.create () in
    let board = Board.create sim in
    (match Board.user_tiles board with
    | t1 :: _ -> Kernel.install board.Board.kernel ~tile:t1 (Accels.echo ~cost:64 ())
    | [] -> ());
    let client = Board.client board ~port:1 () in
    Sim.after sim 2000 (fun () ->
        Client.start_closed client
          { Client.service = "echo"; op = Accels.op_echo; gen = (fun _ -> Bytes.create 256) }
          ~concurrency:1);
    Sim.run_for sim 150_000;
    Client.stop client;
    Stats.Histogram.percentile (Client.latency client) 50.0
  in
  let hosted_lat =
    let sim = Sim.create () in
    let sw = Apiary_net.Switch.create sim ~nports:4 ~latency:250 in
    let mk port =
      let link = Apiary_net.Link.create sim ~bytes_per_cycle:5.0 ~prop_cycles:125 in
      Apiary_net.Switch.attach sw ~port link Apiary_net.Link.B;
      Mac.create sim Mac.Gen_10g link Apiary_net.Link.A
    in
    let server_mac = mk 0 and client_mac = mk 1 in
    let _server =
      Hosted.create sim Hosted.default_config ~mac:server_mac ~my_mac:0xAA
        ~accel_cycles:(fun _ -> 64)
        ~handler:(fun _ body -> body)
    in
    let client = Client.create sim ~mac:client_mac ~my_mac:0xBB ~server_mac:0xAA in
    Sim.after sim 2000 (fun () ->
        Client.start_closed client
          { Client.service = "echo"; op = 0; gen = (fun _ -> Bytes.create 256) }
          ~concurrency:1);
    Sim.run_for sim 150_000;
    Client.stop client;
    Alcotest.(check bool) "hosted served" true (Client.completed client > 10);
    Stats.Histogram.percentile (Client.latency client) 50.0
  in
  Alcotest.(check bool)
    (Printf.sprintf "hosted p50 %d > direct p50 %d" hosted_lat direct_lat)
    true
    (hosted_lat > direct_lat)

let test_qserver_fcfs_and_parallelism () =
  let sim = Sim.create () in
  let q1 = Qserver.create sim ~servers:1 "one" in
  let q2 = Qserver.create sim ~servers:2 "two" in
  let d1 = ref 0 and d2 = ref 0 in
  for _ = 1 to 2 do
    Qserver.submit q1 ~cycles:100 (fun () -> d1 := Sim.now sim);
    Qserver.submit q2 ~cycles:100 (fun () -> d2 := Sim.now sim)
  done;
  Sim.run_for sim 1000;
  Alcotest.(check bool) "serialized" true (!d1 >= 200);
  Alcotest.(check bool) "parallel" true (!d2 <= 110);
  Alcotest.(check int) "completions" 2 (Qserver.completed q1)

let test_energy_model_shape () =
  (* The hosted path must cost more energy per request whenever it burns
     CPU cycles, all else equal. *)
  let direct = Energy.direct_uj ~fpga_cycles:1000 ~net_bytes:512 () in
  let hosted =
    Energy.hosted_uj ~cpu_cycles:2000 ~accel_cycles:1000 ~pcie_bytes:1024
      ~net_bytes:512 ()
  in
  Alcotest.(check bool)
    (Printf.sprintf "hosted %.3f > direct %.3f uJ" hosted direct)
    true (hosted > direct);
  Alcotest.(check bool) "positive" true (direct > 0.0)

(* ------------------------------------------------------------------ *)
(* Resource model *)

let test_parts_table1_scaling () =
  let small, large = Parts.generation_scaling () in
  (* Paper: "about 50%" and "3x". *)
  Alcotest.(check bool) (Printf.sprintf "small ratio %.2f" small) true
    (small > 1.4 && small < 1.6);
  Alcotest.(check bool) (Printf.sprintf "large ratio %.2f" large) true
    (large > 4.0 && large < 4.5)

let test_area_router_scales_with_vcs () =
  let p1 = { Area.vcs = 1; depth = 4; flit_bits = 128 } in
  let p4 = { Area.vcs = 4; depth = 4; flit_bits = 128 } in
  Alcotest.(check bool) "more vcs, more area" true
    ((Area.router p4).Area.luts > (Area.router p1).Area.luts)

let test_area_monitor_nonzero_and_reasonable () =
  let m = Area.monitor ~cap_entries:256 ~service_entries:8 ~egress_depth:64 ~flit_bits:128 in
  Alcotest.(check bool)
    (Printf.sprintf "monitor %d LUTs" m.Area.luts)
    true
    (m.Area.luts > 500 && m.Area.luts < 5_000)

let test_floorplan_overhead_grows_with_tiles () =
  let noc = { Area.vcs = 2; depth = 4; flit_bits = 128 } in
  let part = Parts.vu9p in
  let f tiles =
    match Floorplan.plan ~part ~tiles ~noc ~cap_entries:256 with
    | Some p -> p.Floorplan.overhead_frac
    | None -> 1.0
  in
  Alcotest.(check bool) "monotone" true (f 4 < f 16 && f 16 < f 64);
  Alcotest.(check bool)
    (Printf.sprintf "16 tiles overhead %.3f modest" (f 16))
    true
    (f 16 < 0.25)

let test_floorplan_max_tiles_ordering () =
  let noc = { Area.vcs = 2; depth = 4; flit_bits = 128 } in
  let m part = Floorplan.max_tiles ~part ~noc ~cap_entries:256 ~min_slot_cells:50_000 in
  let small = m Parts.xc7v585t and big = m Parts.vu29p in
  Alcotest.(check bool)
    (Printf.sprintf "bigger part, more tiles (%d vs %d)" small big)
    true (big > small && small >= 1)

let test_direct_wired_scaling () =
  let d8 = Direct_wired.direct ~tiles:16 ~services:8 ~bus_bits:128 in
  let d2 = Direct_wired.direct ~tiles:16 ~services:2 ~bus_bits:128 in
  let n8 = Direct_wired.noc ~tiles:16 ~services:8 ~flit_bits:128 in
  Alcotest.(check bool) "direct grows with services" true
    (d8.Direct_wired.ports_per_tile > d2.Direct_wired.ports_per_tile);
  Alcotest.(check int) "noc constant ports" 2 n8.Direct_wired.ports_per_tile;
  Alcotest.(check int) "noc adds services free" 0 n8.Direct_wired.rewire_on_add_service

let () =
  Alcotest.run "system"
    [
      ( "board",
        [
          Alcotest.test_case "echo end-to-end" `Quick test_board_echo_end_to_end;
          Alcotest.test_case "kv over network" `Quick test_board_kv_over_network;
          Alcotest.test_case "unknown service" `Quick test_board_unknown_service_unavailable;
          Alcotest.test_case "video pipeline" `Quick test_board_video_pipeline_end_to_end;
          Alcotest.test_case "10G vs 100G" `Quick test_board_10g_vs_100g_same_code;
        ] );
      ( "remote",
        [
          Alcotest.test_case "outbound call" `Quick test_outbound_remote_call;
          Alcotest.test_case "unreachable times out" `Quick test_remote_service_unreachable_times_out;
        ] );
      ( "hosted",
        [
          Alcotest.test_case "direct faster" `Quick test_hosted_serves_and_is_slower;
          Alcotest.test_case "qserver" `Quick test_qserver_fcfs_and_parallelism;
          Alcotest.test_case "energy shape" `Quick test_energy_model_shape;
        ] );
      ( "resource",
        [
          Alcotest.test_case "table1 scaling" `Quick test_parts_table1_scaling;
          Alcotest.test_case "router area" `Quick test_area_router_scales_with_vcs;
          Alcotest.test_case "monitor area" `Quick test_area_monitor_nonzero_and_reasonable;
          Alcotest.test_case "overhead grows" `Quick test_floorplan_overhead_grows_with_tiles;
          Alcotest.test_case "max tiles" `Quick test_floorplan_max_tiles_ordering;
          Alcotest.test_case "direct wiring" `Quick test_direct_wired_scaling;
        ] );
    ]
