(* The in-band telemetry plane: batch wire format, the agent's bounded
   queue and its books, and the collector's conservation accounting
   under a real mid-run port kill. *)

module Sim = Apiary_engine.Sim
module Stats = Apiary_engine.Stats
module Kv = Apiary_accel.Kv
module Cluster = Apiary_cluster.Cluster
module Collector = Apiary_cluster.Collector
module Shard_client = Apiary_cluster.Shard_client
module Agent = Apiary_obs.Agent
module Wire = Apiary_obs.Agent.Wire
module Span = Apiary_obs.Span
module Registry = Apiary_obs.Registry
module Env = Apiary_obs.Env

(* ------------------------------------------------------------------ *)
(* Wire format *)

let sample_records =
  [
    Wire.Counter_delta ("b0.kernel.msgs_out", 42);
    Wire.Gauge_value ("b0.noc.r0_0.util", 0.125);
    Wire.Hist_delta ("b0.noc.latency", [ (0, 3); (7, 1) ]);
    Wire.Span_done
      {
        Wire.s_name = "serve";
        s_cat = "net";
        s_corr = 0;
        s_track = 5;
        s_ts = 1_000;
        s_dur = 250;
        s_args = [ ("req_id", "17"); ("status", "ok") ];
      };
  ]

let test_wire_roundtrip () =
  let payload =
    Wire.encode_batch ~board:3 ~seq:9 ~ts:12_345 ~cum_records:100
      ~cum_dropped:7
      (List.map Wire.encode_record sample_records)
  in
  match Wire.decode_batch payload with
  | None -> Alcotest.fail "decode of a well-formed batch failed"
  | Some b ->
    Alcotest.(check int) "board" 3 b.Wire.b_board;
    Alcotest.(check int) "seq" 9 b.Wire.b_seq;
    Alcotest.(check int) "ts" 12_345 b.Wire.b_ts;
    Alcotest.(check int) "cum records" 100 b.Wire.b_cum_records;
    Alcotest.(check int) "cum dropped" 7 b.Wire.b_cum_dropped;
    Alcotest.(check bool) "records round-trip" true
      (b.Wire.b_records = sample_records)

let test_wire_rejects_garbage () =
  let payload =
    Wire.encode_batch ~board:0 ~seq:1 ~ts:0 ~cum_records:0 ~cum_dropped:0
      (List.map Wire.encode_record sample_records)
  in
  (* Wrong magic: not ours, not an error to skip. *)
  let bad = Bytes.copy payload in
  Bytes.set bad 0 'X';
  Alcotest.(check bool) "bad magic rejected" true
    (Wire.decode_batch bad = None);
  (* Truncation anywhere in the body must never raise. *)
  for len = 0 to Bytes.length payload - 1 do
    ignore (Wire.decode_batch (Bytes.sub payload 0 len))
  done;
  Alcotest.(check bool) "truncated header rejected" true
    (Wire.decode_batch (Bytes.sub payload 0 (Wire.header_bytes - 1)) = None)

(* ------------------------------------------------------------------ *)
(* Agent queue accounting *)

(* 8 fresh counters harvested into a 4-slot queue with the device
   refusing the flush: the 4 oldest records fall out, the books still
   balance, and the next (accepted) flush ships exactly the survivors
   with the drop count riding the header. *)
let test_agent_drop_oldest () =
  Registry.clear ();
  let sim = Sim.create () in
  let sent = ref [] in
  let accept = ref false in
  let send payload =
    if !accept then begin
      sent := payload :: !sent;
      true
    end
    else false
  in
  let a =
    Agent.create ~period:100 ~queue_cap:4 ~batch_bytes:4_096 ~sim ~board:0
      ~prefix:"t9." ~send ()
  in
  for i = 0 to 7 do
    Stats.Counter.add (Registry.counter (Printf.sprintf "t9.c%d" i)) (i + 1)
  done;
  Agent.tick a ~now:100;
  Alcotest.(check int) "emitted all 8" 8 (Agent.emitted a);
  Alcotest.(check int) "oldest 4 dropped" 4 (Agent.dropped a);
  Alcotest.(check int) "4 still queued" 4 (Agent.queued a);
  Alcotest.(check int) "nothing shipped yet" 0 (Agent.sent_records a);
  Alcotest.(check bool) "backpressure recorded" true (Agent.backpressure a > 0);
  Alcotest.(check int) "local identity" (Agent.emitted a)
    (Agent.sent_records a + Agent.dropped a + Agent.queued a);
  accept := true;
  Agent.tick a ~now:200;
  Alcotest.(check int) "survivors shipped" 4 (Agent.sent_records a);
  Alcotest.(check int) "queue drained" 0 (Agent.queued a);
  (match !sent with
  | [ payload ] -> (
    match Wire.decode_batch payload with
    | None -> Alcotest.fail "shipped batch must decode"
    | Some b ->
      Alcotest.(check int) "header carries the drops" 4 b.Wire.b_cum_dropped;
      let names =
        List.filter_map
          (function Wire.Counter_delta (n, _) -> Some n | _ -> None)
          b.Wire.b_records
      in
      (* Drop-oldest keeps the newest data: c4..c7 survive. *)
      Alcotest.(check (list string)) "newest records survive"
        [ "t9.c4"; "t9.c5"; "t9.c6"; "t9.c7" ] names)
  | l -> Alcotest.failf "expected exactly one batch, got %d" (List.length l));
  Agent.detach a;
  Registry.clear ()

(* ------------------------------------------------------------------ *)
(* Collector conservation under a port kill *)

let test_collector_conservation () =
  Registry.clear ();
  Span.reset ();
  Span.set_sampling ~head_mod:8 ~slow_cycles:20_000 ();
  Span.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Span.set_enabled false;
      Span.set_sampling ();
      Span.reset ();
      Registry.clear ())
    (fun () ->
      let sim = Sim.create () in
      let cluster = Cluster.create sim ~boards:2 ~client_ports:2 in
      for b = 0 to 1 do
        ignore
          (Cluster.install cluster ~board:b ~service:"kv"
             (fst (Kv.behavior ())))
      done;
      Cluster.register_metrics cluster;
      (* Starved agents (an 8-record queue, one small frame per tick)
         so the run forces both real wire loss and agent-side drops. *)
      let col =
        Collector.create ~agent_period:500 ~agent_queue:8
          ~agent_batch_bytes:512 ~agent_max_frames:1 ~agent_until:33_000
          cluster
      in
      let sc =
        Shard_client.create cluster ~timeout:10_000 ~service:"kv"
          ~op:Kv.Proto.opcode ~route:Shard_client.By_key
          ~gen:(fun n ->
            (Printf.sprintf "k%03d" (n mod 64), Bytes.make 32 'x'))
      in
      Sim.after sim 2_000 (fun () -> Shard_client.start sc ~concurrency:4);
      Sim.after sim 10_000 (fun () -> Cluster.kill cluster ~board:1);
      Sim.after sim 20_000 (fun () -> Cluster.restore cluster ~board:1);
      Sim.after sim 30_000 (fun () -> Shard_client.stop sc);
      Sim.run_for sim 40_000;
      for b = 0 to 1 do
        let a = Collector.agent col b in
        let delivered = Collector.delivered col ~board:b in
        let lost = Agent.sent_records a - delivered in
        let emitted = Agent.emitted a in
        Alcotest.(check int)
          (Printf.sprintf "board %d books balance" b)
          emitted
          (delivered + Agent.dropped a + lost + Agent.queued a);
        Alcotest.(check int)
          (Printf.sprintf "board %d gap detection is exact" b)
          lost
          (Collector.lost_records_detected col ~board:b)
      done;
      let victim = Collector.agent col 1 in
      Alcotest.(check bool) "victim lost real records on the wire" true
        (Agent.sent_records victim - Collector.delivered col ~board:1 > 0);
      Alcotest.(check bool) "victim dropped at the agent too" true
        (Agent.dropped victim > 0);
      Alcotest.(check bool) "collector saw the sequence gap" true
        (Collector.lost_batches col ~board:1 > 0);
      Alcotest.(check bool) "survivor lost nothing" true
        (Agent.sent_records (Collector.agent col 0)
         = Collector.delivered col ~board:0);
      Collector.detach col)

(* ------------------------------------------------------------------ *)
(* Env fallback *)

let test_env_fallback () =
  Unix.putenv "APIARY_TEST_TELEM_KNOB" "banana";
  Alcotest.(check int) "garbage falls back to default" 7
    (Env.int "APIARY_TEST_TELEM_KNOB" ~default:7);
  (* The warning is one-shot; a second read must stay quiet and still
     return the default rather than raising or caching garbage. *)
  Alcotest.(check int) "second read same fallback" 7
    (Env.int "APIARY_TEST_TELEM_KNOB" ~default:7);
  Unix.putenv "APIARY_TEST_TELEM_KNOB" "12";
  Alcotest.(check int) "valid value parses" 12
    (Env.int "APIARY_TEST_TELEM_KNOB" ~default:7);
  Alcotest.(check int) "below min falls back" 7
    (Env.int ~min:100 "APIARY_TEST_TELEM_KNOB" ~default:7)

let () =
  Alcotest.run "telemetry"
    [
      ( "wire",
        [
          Alcotest.test_case "batch roundtrip" `Quick test_wire_roundtrip;
          Alcotest.test_case "garbage rejected" `Quick
            test_wire_rejects_garbage;
        ] );
      ( "agent",
        [
          Alcotest.test_case "drop-oldest accounting" `Quick
            test_agent_drop_oldest;
        ] );
      ( "collector",
        [
          Alcotest.test_case "conservation under kill" `Quick
            test_collector_conservation;
        ] );
      ( "env", [ Alcotest.test_case "tolerant fallback" `Quick test_env_fallback ] );
    ]
