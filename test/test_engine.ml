(* Unit and property tests for the simulation engine: heap ordering, RNG
   determinism and distributions, histogram accuracy, FIFO two-phase
   semantics, and simulator phase ordering. *)

module Heap = Apiary_engine.Heap
module Rng = Apiary_engine.Rng
module Stats = Apiary_engine.Stats
module Sim = Apiary_engine.Sim
module Fifo = Apiary_engine.Fifo

(* ------------------------------------------------------------------ *)
(* Heap *)

let test_heap_ordering () =
  let h = Heap.create ~cmp:compare in
  List.iter (Heap.push h) [ 5; 1; 4; 1; 3; 9; 2 ];
  let rec drain acc =
    match Heap.pop h with None -> List.rev acc | Some x -> drain (x :: acc)
  in
  Alcotest.(check (list int)) "sorted" [ 1; 1; 2; 3; 4; 5; 9 ] (drain [])

let test_heap_empty () =
  let h = Heap.create ~cmp:compare in
  Alcotest.(check bool) "empty" true (Heap.is_empty h);
  Alcotest.(check (option int)) "pop none" None (Heap.pop h);
  Alcotest.(check (option int)) "peek none" None (Heap.peek h)

let prop_heap_sorts =
  QCheck.Test.make ~name:"heap drains sorted" ~count:200
    QCheck.(list int)
    (fun l ->
      let h = Heap.create ~cmp:compare in
      List.iter (Heap.push h) l;
      let rec drain acc =
        match Heap.pop h with None -> List.rev acc | Some x -> drain (x :: acc)
      in
      drain [] = List.sort compare l)

let prop_heap_peek_pop_agree =
  QCheck.Test.make ~name:"peek agrees with pop" ~count:200
    QCheck.(list int)
    (fun l ->
      let h = Heap.create ~cmp:compare in
      List.iter (Heap.push h) l;
      let rec drain () =
        match Heap.peek h with
        | None -> Heap.pop h = None
        | Some p -> ( match Heap.pop h with Some x -> x = p && drain () | None -> false)
      in
      drain () && Heap.is_empty h)

(* A bare binary heap is not stable, so the engine breaks ties with a
   sequence number baked into the comparator — the property the event
   queue's determinism rests on. With that comparator, drain order over
   duplicate keys must equal a stable sort by key. *)
let prop_heap_seq_tiebreak_stable =
  QCheck.Test.make ~name:"seq tiebreak recovers insertion order on equal keys"
    ~count:200
    QCheck.(list (int_bound 8))
    (fun keys ->
      let cmp (k1, s1) (k2, s2) =
        if k1 <> k2 then compare k1 k2 else compare (s1 : int) s2
      in
      let h = Heap.create ~cmp in
      List.iteri (fun seq k -> Heap.push h (k, seq)) keys;
      let rec drain acc =
        match Heap.pop h with None -> List.rev acc | Some x -> drain (x :: acc)
      in
      drain []
      = List.stable_sort
          (fun (k1, _) (k2, _) -> compare (k1 : int) k2)
          (List.mapi (fun seq k -> (k, seq)) keys))

(* ------------------------------------------------------------------ *)
(* Rng *)

let test_rng_deterministic () =
  let a = Rng.create ~seed:42 and b = Rng.create ~seed:42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_split_independent () =
  let a = Rng.create ~seed:7 in
  let b = Rng.split a in
  let xs = List.init 50 (fun _ -> Rng.bits64 a) in
  let ys = List.init 50 (fun _ -> Rng.bits64 b) in
  Alcotest.(check bool) "streams differ" true (xs <> ys)

let test_rng_int_bounds () =
  let r = Rng.create ~seed:1 in
  for _ = 1 to 10_000 do
    let v = Rng.int r 17 in
    if v < 0 || v >= 17 then Alcotest.fail "out of range"
  done

let test_rng_float_unit () =
  let r = Rng.create ~seed:2 in
  for _ = 1 to 10_000 do
    let v = Rng.float r in
    if v < 0.0 || v >= 1.0 then Alcotest.fail "float out of [0,1)"
  done

let test_rng_uniformity () =
  let r = Rng.create ~seed:3 in
  let counts = Array.make 10 0 in
  let n = 100_000 in
  for _ = 1 to n do
    let i = Rng.int r 10 in
    counts.(i) <- counts.(i) + 1
  done;
  Array.iter
    (fun c ->
      let frac = float_of_int c /. float_of_int n in
      if frac < 0.08 || frac > 0.12 then Alcotest.fail "non-uniform bucket")
    counts

let test_rng_exponential_mean () =
  let r = Rng.create ~seed:4 in
  let n = 50_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Rng.exponential r ~mean:10.0
  done;
  let mean = !sum /. float_of_int n in
  if mean < 9.5 || mean > 10.5 then
    Alcotest.failf "exponential mean %.2f out of tolerance" mean

let test_rng_zipf_skew () =
  let r = Rng.create ~seed:5 in
  let counts = Array.make 100 0 in
  for _ = 1 to 50_000 do
    let i = Rng.zipf r ~n:100 ~theta:0.99 in
    counts.(i) <- counts.(i) + 1
  done;
  (* Key 0 must dominate the tail under heavy skew. *)
  Alcotest.(check bool) "head heavier than mid" true (counts.(0) > counts.(50) * 10)

let test_rng_zipf_uniform_degenerate () =
  let r = Rng.create ~seed:6 in
  for _ = 1 to 1000 do
    let v = Rng.zipf r ~n:10 ~theta:0.0 in
    if v < 0 || v >= 10 then Alcotest.fail "zipf out of range"
  done

let test_rng_compressible_bytes () =
  let r = Rng.create ~seed:7 in
  let redundant = Rng.bytes_compressible r 4096 ~redundancy:0.95 in
  let count_runs b =
    let runs = ref 1 in
    for i = 1 to Bytes.length b - 1 do
      if Bytes.get b i <> Bytes.get b (i - 1) then incr runs
    done;
    !runs
  in
  let random = Rng.bytes r 4096 in
  Alcotest.(check bool) "redundant has fewer runs" true
    (count_runs redundant * 4 < count_runs random)

(* ------------------------------------------------------------------ *)
(* Histogram *)

let test_hist_exact_small () =
  let h = Stats.Histogram.create "t" in
  List.iter (Stats.Histogram.record h) [ 1; 2; 3; 4; 5 ];
  Alcotest.(check int) "count" 5 (Stats.Histogram.count h);
  Alcotest.(check int) "sum" 15 (Stats.Histogram.sum h);
  Alcotest.(check int) "p50" 3 (Stats.Histogram.percentile h 50.0);
  Alcotest.(check int) "max" 5 (Stats.Histogram.max_value h);
  Alcotest.(check int) "min" 1 (Stats.Histogram.min_value h)

let test_hist_percentile_accuracy () =
  let h = Stats.Histogram.create "t" in
  for v = 1 to 10_000 do
    Stats.Histogram.record h v
  done;
  let check_p p expected =
    let got = Stats.Histogram.percentile h p in
    let err = abs (got - expected) in
    if float_of_int err > 0.05 *. float_of_int expected then
      Alcotest.failf "p%.0f = %d, want ~%d" p got expected
  in
  check_p 50.0 5000;
  check_p 90.0 9000;
  check_p 99.0 9900

let test_hist_empty () =
  let h = Stats.Histogram.create "t" in
  Alcotest.(check int) "p99 of empty" 0 (Stats.Histogram.percentile h 99.0);
  Alcotest.(check (float 0.01)) "mean of empty" 0.0 (Stats.Histogram.mean h)

let test_hist_merge () =
  let a = Stats.Histogram.create "a" and b = Stats.Histogram.create "b" in
  List.iter (Stats.Histogram.record a) [ 1; 2; 3 ];
  List.iter (Stats.Histogram.record b) [ 100; 200 ];
  Stats.Histogram.merge_into ~src:b ~dst:a;
  Alcotest.(check int) "merged count" 5 (Stats.Histogram.count a);
  Alcotest.(check int) "merged max" 200 (Stats.Histogram.max_value a)

let prop_hist_percentile_monotone =
  QCheck.Test.make ~name:"percentiles are monotone" ~count:100
    QCheck.(list_of_size Gen.(int_range 1 200) (int_bound 100_000))
    (fun samples ->
      let h = Stats.Histogram.create "q" in
      List.iter (Stats.Histogram.record h) samples;
      let p25 = Stats.Histogram.percentile h 25.0 in
      let p50 = Stats.Histogram.percentile h 50.0 in
      let p99 = Stats.Histogram.percentile h 99.0 in
      p25 <= p50 && p50 <= p99)

let prop_hist_percentile_monotone_in_p =
  QCheck.Test.make ~name:"percentile is monotone in p" ~count:200
    QCheck.(
      pair
        (list_of_size Gen.(int_range 1 200) (int_bound 100_000))
        (pair (int_bound 1000) (int_bound 1000)))
    (fun (samples, (pa, pb)) ->
      let h = Stats.Histogram.create "q" in
      List.iter (Stats.Histogram.record h) samples;
      (* percentiles in tenths of a percent, spanning 0.0 .. 100.0 *)
      let pa = float_of_int pa /. 10.0 and pb = float_of_int pb /. 10.0 in
      let lo = Float.min pa pb and hi = Float.max pa pb in
      Stats.Histogram.percentile h lo <= Stats.Histogram.percentile h hi)

let prop_hist_merge_conserves =
  QCheck.Test.make ~name:"merge_into conserves count and sum" ~count:200
    QCheck.(pair (list (int_bound 1_000_000)) (list (int_bound 1_000_000)))
    (fun (xs, ys) ->
      let a = Stats.Histogram.create "a" and b = Stats.Histogram.create "b" in
      List.iter (Stats.Histogram.record a) xs;
      List.iter (Stats.Histogram.record b) ys;
      let ca = Stats.Histogram.count a and cb = Stats.Histogram.count b in
      let sa = Stats.Histogram.sum a and sb = Stats.Histogram.sum b in
      Stats.Histogram.merge_into ~src:b ~dst:a;
      Stats.Histogram.count a = ca + cb
      && Stats.Histogram.sum a = sa + sb
      && Stats.Histogram.count b = cb
      && Stats.Histogram.sum b = sb)

let prop_hist_bounded_error =
  QCheck.Test.make ~name:"p50 within 5% of exact median" ~count:100
    QCheck.(list_of_size Gen.(int_range 10 500) (int_range 1 1_000_000))
    (fun samples ->
      let h = Stats.Histogram.create "q" in
      List.iter (Stats.Histogram.record h) samples;
      let sorted = List.sort compare samples in
      let exact = List.nth sorted ((List.length samples - 1) / 2) in
      let got = Stats.Histogram.percentile h 50.0 in
      abs (got - exact) <= max 2 (exact / 10))

(* ------------------------------------------------------------------ *)
(* Sim + Fifo *)

let test_sim_event_order () =
  let sim = Sim.create () in
  let log = ref [] in
  Sim.at sim 5 (fun () -> log := 5 :: !log);
  Sim.at sim 3 (fun () -> log := 3 :: !log);
  Sim.at sim 3 (fun () -> log := 33 :: !log);
  Sim.run_until sim 10;
  Alcotest.(check (list int)) "order" [ 3; 33; 5 ] (List.rev !log);
  Alcotest.(check int) "now" 10 (Sim.now sim)

let test_sim_after_zero_delay () =
  let sim = Sim.create () in
  let fired = ref (-1) in
  Sim.after sim 2 (fun () -> fired := Sim.now sim);
  Sim.run_for sim 5;
  Alcotest.(check int) "fired at 2" 2 !fired

let test_sim_every () =
  let sim = Sim.create () in
  let n = ref 0 in
  Sim.every sim 10 (fun () -> incr n);
  Sim.run_until sim 101;
  Alcotest.(check int) "ten firings" 10 !n

let test_sim_ticker_runs_each_cycle () =
  let sim = Sim.create () in
  let n = ref 0 in
  Sim.add_ticker sim (fun () -> incr n);
  Sim.run_for sim 17;
  Alcotest.(check int) "17 ticks" 17 !n

let test_sim_fast_forward () =
  let sim = Sim.create () in
  let hit = ref false in
  Sim.at sim 1_000_000 (fun () -> hit := true);
  Sim.run_until sim 2_000_000;
  Alcotest.(check bool) "event ran" true !hit;
  Alcotest.(check int) "time" 2_000_000 (Sim.now sim)

let test_sim_stop () =
  let sim = Sim.create () in
  Sim.add_ticker sim (fun () -> if Sim.now sim = 5 then Sim.stop sim);
  Sim.run_for sim 100;
  Alcotest.(check int) "stopped early" 6 (Sim.now sim)

let test_fifo_two_phase () =
  let sim = Sim.create () in
  let f = Fifo.create sim "t" in
  Alcotest.(check bool) "push ok" true (Fifo.push f 1);
  (* Not yet visible: commit happens at end of cycle. *)
  Alcotest.(check (option int)) "invisible same cycle" None (Fifo.pop f);
  Sim.step sim;
  Alcotest.(check (option int)) "visible next cycle" (Some 1) (Fifo.pop f)

let test_fifo_capacity_counts_staged () =
  let sim = Sim.create () in
  let f = Fifo.create sim ~capacity:2 "t" in
  Alcotest.(check bool) "1 ok" true (Fifo.push f 1);
  Alcotest.(check bool) "2 ok" true (Fifo.push f 2);
  Alcotest.(check bool) "3 rejected" false (Fifo.push f 3);
  Sim.step sim;
  Alcotest.(check bool) "still full" true (Fifo.is_full f);
  ignore (Fifo.pop f);
  Alcotest.(check bool) "room again" true (Fifo.push f 3)

let test_fifo_order () =
  let sim = Sim.create () in
  let f = Fifo.create sim "t" in
  List.iter (fun x -> ignore (Fifo.push f x)) [ 1; 2; 3 ];
  Sim.step sim;
  let drain () =
    let rec go acc = match Fifo.pop f with None -> List.rev acc | Some x -> go (x :: acc) in
    go []
  in
  Alcotest.(check (list int)) "fifo order" [ 1; 2; 3 ] (drain ())

let test_fifo_clear () =
  let sim = Sim.create () in
  let f = Fifo.create sim "t" in
  ignore (Fifo.push f 1);
  Sim.step sim;
  ignore (Fifo.push f 2);
  Fifo.clear f;
  Sim.step sim;
  Alcotest.(check int) "empty after clear" 0 (Fifo.length f)

let prop_heap_time_seq_order =
  (* The simulator orders events by (time, seq): ties on time must pop in
     insertion order. With seq = insertion index the pairs are distinct,
     so a lexicographic sort is the unique correct drain order. *)
  QCheck.Test.make ~name:"heap pops (time, seq) in order" ~count:300
    QCheck.(list small_nat)
    (fun times ->
      let h = Heap.create ~cmp:compare in
      List.iteri (fun seq t -> Heap.push h (t, seq)) times;
      let rec drain acc =
        match Heap.pop h with None -> List.rev acc | Some x -> drain (x :: acc)
      in
      let popped = drain [] in
      popped = List.sort compare popped && List.length popped = List.length times)

type fifo_op = FPush of int | FPop | FCommit

let fifo_op_gen =
  QCheck.Gen.(
    frequency
      [ (3, map (fun x -> FPush x) small_nat); (2, return FPop); (1, return FCommit) ])

let prop_fifo_model =
  (* Model-based check of two-phase semantics against a pair of lists:
     pushes land in [staged] (bounded by capacity over both lists), pops
     see only [committed], and Sim.step moves staged behind committed. *)
  QCheck.Test.make ~name:"fifo matches two-phase list model" ~count:300
    (QCheck.make
       QCheck.Gen.(pair (int_range 1 6) (list_size (int_range 0 40) fifo_op_gen)))
    (fun (cap, ops) ->
      let sim = Sim.create () in
      let f = Fifo.create sim ~capacity:cap "model" in
      let committed = ref [] and staged = ref [] in
      let ok = ref true in
      List.iter
        (fun op ->
          match op with
          | FPush x ->
            let accepted = Fifo.push f x in
            let fits = List.length !committed + List.length !staged < cap in
            if accepted <> fits then ok := false;
            if accepted then staged := !staged @ [ x ]
          | FPop ->
            let want =
              match !committed with
              | [] -> None
              | x :: rest ->
                committed := rest;
                Some x
            in
            if Fifo.pop f <> want then ok := false
          | FCommit ->
            Sim.step sim;
            committed := !committed @ !staged;
            staged := [])
        ops;
      !ok
      && Fifo.length f = List.length !committed
      && Fifo.occupancy f = List.length !committed + List.length !staged
      && Fifo.peek f = (match !committed with [] -> None | x :: _ -> Some x))

let prop_fast_forward_equiv =
  (* Fast-forward must be invisible: a run with idle gaps (no tickers, so
     the sim is quiescent between events) produces the same event order,
     observed times and final clock as the same schedule forced to step
     every cycle by an always-Busy ticker. *)
  QCheck.Test.make ~name:"idle fast-forward matches naive stepping" ~count:100
    QCheck.(list (int_bound 200))
    (fun times ->
      let run ~naive =
        let sim = Sim.create () in
        let log = ref [] in
        if naive then Sim.add_clocked sim (fun () -> Sim.Busy);
        List.iteri
          (fun i t -> Sim.at sim t (fun () -> log := (Sim.now sim, i) :: !log))
          times;
        Sim.run_until sim 250;
        (List.rev !log, Sim.now sim)
      in
      run ~naive:false = run ~naive:true)

let test_sim_at_now_in_tick_defers () =
  (* Scheduling for the current cycle from the tick phase cannot fire this
     cycle (the event phase already ran), so it lands on the next one. *)
  let sim = Sim.create () in
  let fired = ref (-1) in
  let armed = ref false in
  Sim.add_clocked sim (fun () ->
      if (Sim.now sim = 3 && not !armed) then begin
        armed := true;
        Sim.at sim 3 (fun () -> fired := Sim.now sim)
      end;
      Sim.Busy);
  Sim.run_for sim 10;
  Alcotest.(check int) "deferred to next cycle" 4 !fired

let test_sim_after_zero_in_event_phase () =
  (* From the event phase the current cycle is still open: delay 0 fires
     within the same cycle. *)
  let sim = Sim.create () in
  let fired = ref (-1) in
  Sim.at sim 2 (fun () -> Sim.after sim 0 (fun () -> fired := Sim.now sim));
  Sim.run_for sim 5;
  Alcotest.(check int) "same cycle" 2 !fired

let test_sim_idle_until_cadence () =
  let sim = Sim.create () in
  let runs = ref 0 in
  Sim.add_clocked sim (fun () ->
      incr runs;
      Sim.Idle_until (Sim.now sim + 5));
  Sim.run_for sim 100;
  (* Ticks at 0, 5, 10, ..., 95; the gaps are fast-forwarded. *)
  Alcotest.(check int) "one tick per wake" 20 !runs;
  Alcotest.(check int) "gaps skipped" 80 (Sim.cycles_skipped sim)

let test_sim_wake_reruns_idle_ticker () =
  let sim = Sim.create () in
  let runs = ref 0 in
  Sim.add_clocked sim (fun () ->
      incr runs;
      Sim.Idle);
  Sim.run_for sim 10;
  Alcotest.(check int) "quiesced after first tick" 1 !runs;
  Sim.wake sim;
  Sim.run_for sim 5;
  Alcotest.(check int) "woken ticker ran again" 2 !runs

let test_fifo_push_wakes_quiescent_sim () =
  (* External mutation between runs must not be lost to fast-forward: a
     staged push re-arms the commit machinery even when the sim had gone
     fully quiescent. *)
  let sim = Sim.create () in
  let f = Fifo.create sim "t" in
  Sim.run_for sim 10;
  Alcotest.(check bool) "push accepted" true (Fifo.push f 7);
  Sim.run_for sim 1;
  Alcotest.(check (option int)) "committed on next run" (Some 7) (Fifo.pop f)

(* ------------------------------------------------------------------ *)
(* Activity-set scheduler: handles, regions, re-arm timing. *)

let test_sim_rearm_handle () =
  let sim = Sim.create () in
  let runs = ref 0 in
  let h =
    Sim.add_clocked_h sim ~name:"t" (fun () ->
        incr runs;
        Sim.Idle)
  in
  Sim.run_for sim 10;
  Alcotest.(check int) "parked after first tick" 1 !runs;
  Sim.rearm sim h;
  Sim.run_for sim 5;
  Alcotest.(check int) "re-armed ticker ran once more" 2 !runs;
  (* no_handle is a safe sink for ownerless re-arms *)
  Sim.rearm sim Sim.no_handle;
  Sim.run_for sim 5;
  Alcotest.(check int) "no_handle wakes nothing" 2 !runs

let test_sim_region_activity () =
  let sim = Sim.create () in
  let r = Sim.new_region sim in
  let runs = ref 0 in
  let tick () =
    incr runs;
    Sim.Idle
  in
  ignore (Sim.add_clocked_h sim ~name:"a" ~region:r tick);
  ignore (Sim.add_clocked_h sim ~name:"b" ~region:r tick);
  Alcotest.(check int) "armed at registration" 2 (Sim.region_active sim r);
  Sim.run_for sim 5;
  Alcotest.(check int) "both ticked once" 2 !runs;
  Alcotest.(check int) "region quiet after parking" 0 (Sim.region_active sim r);
  Sim.rearm_region sim r;
  Alcotest.(check int) "region re-armed" 2 (Sim.region_active sim r);
  Sim.run_for sim 5;
  Alcotest.(check int) "both ticked again" 4 !runs

let test_sim_tick_counts () =
  let sim = Sim.create () in
  Sim.add_clocked sim (fun () -> Sim.Idle_until (Sim.now sim + 5));
  Sim.run_for sim 100;
  let active, skipped = Sim.tick_counts sim in
  Alcotest.(check int) "active ticks" 20 active;
  Alcotest.(check int) "skipped ticks" 80 skipped

let test_sim_late_registration_tick_counts () =
  (* A ticker registered mid-run must not be charged for cycles that
     predate it. *)
  let sim = Sim.create () in
  Sim.run_for sim 50;
  Sim.add_clocked sim (fun () -> Sim.Busy);
  Sim.run_for sim 10;
  let active, skipped = Sim.tick_counts sim in
  Alcotest.(check int) "only its own cycles" 10 active;
  Alcotest.(check int) "no phantom skips" 0 skipped

(* Satellite property: activity hints are pure scheduling. A consumer
   that drains a FIFO and reports random Idle/Idle_until/Busy hints must
   observe byte-identical deliveries to an always-Busy consumer — the
   owner re-arm (commit wake) overrides any hint the instant work
   lands. *)
let prop_activity_hints_identical_delivery =
  QCheck.Test.make
    ~name:"random Idle/Idle_until hints match all-Busy delivery" ~count:150
    QCheck.(
      pair (list (pair (int_bound 150) (int_bound 100))) (int_bound 10_000))
    (fun (pushes, seed) ->
      let run ~hints =
        let sim = Sim.create () in
        let f = Fifo.create sim "chan" in
        let log = ref [] in
        let rng = Rng.create ~seed in
        List.iter
          (fun (t, v) -> Sim.at sim t (fun () -> ignore (Fifo.push f v)))
          pushes;
        let tick () =
          let rec drain () =
            match Fifo.pop f with
            | Some v ->
              log := (Sim.now sim, v) :: !log;
              drain ()
            | None -> ()
          in
          drain ();
          if not hints then Sim.Busy
          else
            match Rng.int rng 3 with
            | 0 -> Sim.Idle
            | 1 -> Sim.Busy
            | _ -> Sim.Idle_until (Sim.now sim + 1 + Rng.int rng 40)
        in
        let h = Sim.add_clocked_h sim ~name:"consumer" tick in
        Fifo.set_owner f h;
        Sim.run_until sim 300;
        List.rev !log
      in
      run ~hints:false = run ~hints:true)

let test_series () =
  let s = Stats.Series.create "t" ~interval:100 in
  Stats.Series.record s ~now:5 1.0;
  Stats.Series.record s ~now:50 2.0;
  Stats.Series.record s ~now:150 4.0;
  Alcotest.(check (list (pair int (float 0.001))))
    "buckets" [ (0, 3.0); (100, 4.0) ] (Stats.Series.buckets s)


let test_sim_every_with_start () =
  let sim = Sim.create () in
  let fired = ref [] in
  Sim.every sim ~start:25 10 (fun () -> fired := Sim.now sim :: !fired);
  Sim.run_until sim 60;
  Alcotest.(check (list int)) "start honoured" [ 25; 35; 45; 55 ] (List.rev !fired)

let test_sim_at_past_rejected () =
  let sim = Sim.create () in
  Sim.run_for sim 10;
  Alcotest.check_raises "past" (Invalid_argument "Sim.at: time 5 not schedulable at cycle 10")
    (fun () -> Sim.at sim 5 (fun () -> ()))

let test_checksum_crc32_incremental_differs () =
  (* init parameter chains state: crc(a++b) computable via init. *)
  let a = Bytes.of_string "hello " and bb = Bytes.of_string "world" in
  let whole = Apiary_engine.Checksum.crc32 (Bytes.of_string "hello world") in
  let part = Apiary_engine.Checksum.crc32 a in
  Alcotest.(check bool) "parts differ from whole" true
    (part <> whole);
  ignore bb

let qc = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "engine"
    [
      ( "heap",
        [
          Alcotest.test_case "ordering" `Quick test_heap_ordering;
          Alcotest.test_case "empty" `Quick test_heap_empty;
          qc prop_heap_sorts;
          qc prop_heap_peek_pop_agree;
          qc prop_heap_seq_tiebreak_stable;
          qc prop_heap_time_seq_order;
        ] );
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "split independent" `Quick test_rng_split_independent;
          Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
          Alcotest.test_case "float unit" `Quick test_rng_float_unit;
          Alcotest.test_case "uniformity" `Quick test_rng_uniformity;
          Alcotest.test_case "exponential mean" `Quick test_rng_exponential_mean;
          Alcotest.test_case "zipf skew" `Quick test_rng_zipf_skew;
          Alcotest.test_case "zipf theta=0" `Quick test_rng_zipf_uniform_degenerate;
          Alcotest.test_case "compressible bytes" `Quick test_rng_compressible_bytes;
        ] );
      ( "histogram",
        [
          Alcotest.test_case "exact small" `Quick test_hist_exact_small;
          Alcotest.test_case "percentile accuracy" `Quick test_hist_percentile_accuracy;
          Alcotest.test_case "empty" `Quick test_hist_empty;
          Alcotest.test_case "merge" `Quick test_hist_merge;
          qc prop_hist_percentile_monotone;
          qc prop_hist_percentile_monotone_in_p;
          qc prop_hist_merge_conserves;
          qc prop_hist_bounded_error;
        ] );
      ( "sim",
        [
          Alcotest.test_case "event order" `Quick test_sim_event_order;
          Alcotest.test_case "after" `Quick test_sim_after_zero_delay;
          Alcotest.test_case "every" `Quick test_sim_every;
          Alcotest.test_case "ticker each cycle" `Quick test_sim_ticker_runs_each_cycle;
          Alcotest.test_case "fast forward" `Quick test_sim_fast_forward;
          Alcotest.test_case "stop" `Quick test_sim_stop;
          Alcotest.test_case "at-now in tick defers" `Quick test_sim_at_now_in_tick_defers;
          Alcotest.test_case "after-zero in event phase" `Quick
            test_sim_after_zero_in_event_phase;
          Alcotest.test_case "idle-until cadence" `Quick test_sim_idle_until_cadence;
          Alcotest.test_case "wake reruns idle ticker" `Quick
            test_sim_wake_reruns_idle_ticker;
          qc prop_fast_forward_equiv;
        ] );
      ( "sim_extra",
        [
          Alcotest.test_case "every ~start" `Quick test_sim_every_with_start;
          Alcotest.test_case "at past rejected" `Quick test_sim_at_past_rejected;
          Alcotest.test_case "crc32 init" `Quick test_checksum_crc32_incremental_differs;
        ] );
      ( "activity",
        [
          Alcotest.test_case "rearm handle" `Quick test_sim_rearm_handle;
          Alcotest.test_case "region aggregate" `Quick test_sim_region_activity;
          Alcotest.test_case "tick counts" `Quick test_sim_tick_counts;
          Alcotest.test_case "late registration" `Quick
            test_sim_late_registration_tick_counts;
          qc prop_activity_hints_identical_delivery;
        ] );
      ( "fifo",
        [
          Alcotest.test_case "two phase" `Quick test_fifo_two_phase;
          Alcotest.test_case "capacity counts staged" `Quick test_fifo_capacity_counts_staged;
          Alcotest.test_case "order" `Quick test_fifo_order;
          Alcotest.test_case "clear" `Quick test_fifo_clear;
          Alcotest.test_case "push wakes quiescent sim" `Quick
            test_fifo_push_wakes_quiescent_sim;
          qc prop_fifo_model;
        ] );
      ("series", [ Alcotest.test_case "buckets" `Quick test_series ]);
    ]
