(* Tests for the elastic scheduler: the placer's bin-packing respects
   the area model and justifies every shortfall (qcheck), placement
   stability under re-planning, directory single-replica unregister,
   shard-ring reconciliation with a scheduler placement, and the
   load-bearing determinism claim — a scheduled rack with live
   migrations is byte-identical between the monolithic (Seq) and
   parallel (Par) engines, decision log included. *)

module Sim = Apiary_engine.Sim
module Par_sim = Apiary_engine.Par_sim
module Stats = Apiary_engine.Stats
module Accels = Apiary_accel.Accels
module Cluster = Apiary_cluster.Cluster
module Directory = Apiary_cluster.Directory
module Shard_client = Apiary_cluster.Shard_client
module Placer = Apiary_sched.Placer
module Sched = Apiary_sched.Sched

(* ------------------------------------------------------------------ *)
(* Placer properties *)

(* Random racks (1-5 boards, 1-4 slots each, three part sizes) and
   random tenant mixes (three footprint sizes, reservations 0-2, caps
   up to reservation+2), all placed from scratch at their caps. *)
let gen_input =
  QCheck.Gen.(
    pair
      (list_size (int_range 1 5)
         (pair (int_range 1 4) (oneofl [ 8_000; 30_000; 120_000 ])))
      (list_size (int_range 1 4)
         (triple (oneofl [ 5_000; 20_000; 80_000 ]) (int_range 0 2)
            (int_range 0 2))))

let print_input (caps, tens) =
  Printf.sprintf "caps=[%s] tenants=[%s]"
    (String.concat ";"
       (List.map (fun (t, c) -> Printf.sprintf "%dx%d" t c) caps))
    (String.concat ";"
       (List.map (fun (c, r, e) -> Printf.sprintf "%d/%d+%d" c r e) tens))

let build_input (caps_raw, tens_raw) =
  let caps =
    List.mapi
      (fun i (tiles, slot_cells) -> { Placer.board = i; tiles; slot_cells })
      caps_raw
  in
  let tenants =
    List.mapi
      (fun i (cells, reservation, extra) ->
        {
          Placer.name = Printf.sprintf "t%d" i;
          cells;
          state_bytes = 1_024;
          bitstream_bytes = 2_048;
          reservation;
          max_replicas = reservation + extra;
          slo_cycles = 5_000;
          capacity_hint = 10;
        })
      tens_raw
  in
  (caps, tenants)

let occupancy placement b =
  List.fold_left
    (fun a (_, bs) -> a + if List.mem b bs then 1 else 0)
    0 placement

(* Whatever the placer emits must pass its own resource validator, and
   a shortfall must be honest: every feasible board is either out of
   tiles or already hosts the tenant (replicas never double up). *)
let prop_place_valid_and_shortfalls_justified =
  QCheck.Test.make
    ~name:"place validates; shortfalls only when capacity is exhausted"
    ~count:300
    (QCheck.make ~print:print_input gen_input)
    (fun input ->
      let caps, tenants = build_input input in
      let targets = List.map (fun t -> (t, t.Placer.max_replicas)) tenants in
      let placement, short =
        Placer.place ~caps ~targets ~current:[] ~load:(fun _ -> 0)
      in
      let full b =
        let c = List.find (fun c -> c.Placer.board = b) caps in
        occupancy placement b >= c.Placer.tiles
      in
      let justified (name, missing) =
        missing = 0
        ||
        let tenant = List.find (fun t -> t.Placer.name = name) tenants in
        let mine =
          Option.value ~default:[] (List.assoc_opt name placement)
        in
        List.for_all
          (fun b -> full b || List.mem b mine)
          (Placer.feasible ~caps tenant)
      in
      Placer.validate ~caps ~tenants placement = []
      && List.for_all justified short)

(* Reservations are placed in targets order, so when the rack has
   enough feasible slots for the reservations alone, no reserved
   replica may be short. *)
let prop_reservations_honored =
  QCheck.Test.make ~name:"reservations placed whenever slots suffice"
    ~count:300
    (QCheck.make ~print:print_input gen_input)
    (fun input ->
      let caps, tenants = build_input input in
      let targets = List.map (fun t -> (t, t.Placer.reservation)) tenants in
      let _, short =
        Placer.place ~caps ~targets ~current:[] ~load:(fun _ -> 0)
      in
      (* Conservative sufficiency: every tenant fits every board, each
         reservation has enough distinct boards, and total reservations
         fit even if every board only had the smallest tile count (the
         balanced-spread greedy keeps per-board loads within one of
         each other, so this uniform bound is achievable). Only then do
         we demand zero short. *)
      let n = List.length caps in
      let min_tiles =
        List.fold_left (fun a c -> min a c.Placer.tiles) max_int caps
      in
      let wanted = List.fold_left (fun a (_, w) -> a + w) 0 targets in
      let universally_feasible =
        List.for_all
          (fun t ->
            List.length (Placer.feasible ~caps t) = n
            && t.Placer.reservation <= n)
          tenants
      in
      (not (universally_feasible && wanted <= n * min_tiles))
      || List.for_all (fun (_, m) -> m = 0) short)

(* Stability: re-planning around an existing placement keeps replicas
   where they are; only the delta moves. *)
let test_place_stability () =
  let caps =
    List.init 3 (fun b -> { Placer.board = b; tiles = 2; slot_cells = 50_000 })
  in
  let t =
    {
      Placer.name = "svc";
      cells = 10_000;
      state_bytes = 1_024;
      bitstream_bytes = 2_048;
      reservation = 1;
      max_replicas = 3;
      slo_cycles = 5_000;
      capacity_hint = 10;
    }
  in
  (* Current replica sits on board 2 (not the greedy first choice). *)
  let placement, short =
    Placer.place ~caps ~targets:[ (t, 2) ]
      ~current:[ ("svc", [ 2 ]) ]
      ~load:(fun _ -> 0)
  in
  Alcotest.(check (list (pair string int))) "no shortfall" [] short;
  let boards = Option.value ~default:[] (List.assoc_opt "svc" placement) in
  Alcotest.(check bool) "existing replica kept" true (List.mem 2 boards);
  Alcotest.(check int) "grown to target" 2 (List.length boards)

(* The area constraint bites: a tenant bigger than a small board's slot
   is only feasible on — and only ever placed on — the big boards. *)
let test_place_area_constraint () =
  let caps =
    [
      { Placer.board = 0; tiles = 2; slot_cells = 120_000 };
      { Placer.board = 1; tiles = 2; slot_cells = 8_000 };
    ]
  in
  let big =
    {
      Placer.name = "big";
      cells = 60_000;
      state_bytes = 1_024;
      bitstream_bytes = 2_048;
      reservation = 1;
      max_replicas = 2;
      slo_cycles = 5_000;
      capacity_hint = 10;
    }
  in
  Alcotest.(check (list int)) "feasible = big board" [ 0 ]
    (Placer.feasible ~caps big);
  let placement, short =
    Placer.place ~caps ~targets:[ (big, 2) ] ~current:[] ~load:(fun _ -> 0)
  in
  Alcotest.(check (list int)) "placed on board 0 only" [ 0 ]
    (Option.value ~default:[] (List.assoc_opt "big" placement));
  (* Second replica cannot double up on board 0: honest shortfall. *)
  Alcotest.(check (list (pair string int))) "one short" [ ("big", 1) ] short

(* ------------------------------------------------------------------ *)
(* Directory: single-replica unregister (the scheduler's drain path) *)

let test_directory_unregister_replica () =
  let d = Directory.create (Sim.create ()) in
  Directory.register d ~service:"kv" ~board:0 ~mac:0xA0;
  Directory.register d ~service:"kv" ~board:1 ~mac:0xA1;
  Directory.register d ~service:"log" ~board:0 ~mac:0xB0;
  (* Warm a cached route so the prune path is exercised too. *)
  ignore (Directory.resolve d ~from_board:2 ~service:"kv");
  Directory.unregister d ~service:"kv" ~board:0;
  let live = Directory.replicas d "kv" in
  Alcotest.(check int) "one kv replica left" 1 (List.length live);
  Alcotest.(check int) "survivor is board 1" 1
    (List.hd live).Directory.board;
  (* Resolution never hands out the drained replica again... *)
  (match Directory.resolve d ~from_board:2 ~service:"kv" with
  | Some (Directory.Remote r) ->
    Alcotest.(check int) "route moved to survivor" 1 r.Directory.board
  | _ -> Alcotest.fail "kv should still resolve remotely");
  (* ...even from the drained board itself (its local replica is gone). *)
  (match Directory.resolve d ~from_board:0 ~service:"kv" with
  | Some (Directory.Remote r) ->
    Alcotest.(check int) "board 0 now calls out" 1 r.Directory.board
  | Some Directory.Local -> Alcotest.fail "drained replica still local"
  | None -> Alcotest.fail "kv should resolve");
  (* The board's other services are untouched — unlike unregister_board. *)
  match Directory.resolve d ~from_board:0 ~service:"log" with
  | Some Directory.Local -> ()
  | _ -> Alcotest.fail "log on board 0 must survive the kv drain"

(* ------------------------------------------------------------------ *)
(* Shard_client.sync_boards: ring follows the placement, directory
   untouched *)

let test_sync_boards_reconciles_ring () =
  let sim = Sim.create () in
  let cluster = Cluster.create sim ~boards:3 ~client_ports:2 in
  for bd = 0 to 2 do
    ignore
      (Cluster.install cluster ~board:bd ~service:"svc"
         (Accels.echo ~service:"svc" ()))
  done;
  (* Let the boards boot and their service announcements reach the
     directory (one uplink each). *)
  Sim.run_for sim 10_000;
  let client =
    Shard_client.create cluster ~service:"svc" ~op:Accels.op_echo
      ~route:Shard_client.Round_robin
      ~gen:(fun _ -> ("", Bytes.of_string "ping"))
  in
  Alcotest.(check (list int)) "starts with all boards" [ 0; 1; 2 ]
    (List.sort compare (Shard_client.live_boards client));
  let d = Cluster.directory cluster in
  let inv0 = Directory.invalidations d in
  (* Placement shrinks to board 1: boards 0 and 2 leave the ring. *)
  Shard_client.sync_boards client [ 1 ];
  Alcotest.(check (list int)) "ring follows placement" [ 1 ]
    (Shard_client.live_boards client);
  (* A placement change is not a failure: nothing was reported. *)
  Alcotest.(check int) "no directory invalidations" inv0
    (Directory.invalidations d);
  Alcotest.(check int) "kv replicas unaffected" 3
    (List.length (Directory.replicas d "svc"));
  (* Growth is re-admitted, duplicates collapse, order is canonical. *)
  Shard_client.sync_boards client [ 2; 0; 2 ];
  Alcotest.(check (list int)) "membership reconciled" [ 0; 2 ]
    (List.sort compare (Shard_client.live_boards client))

(* ------------------------------------------------------------------ *)
(* Determinism: a scheduled rack with migrations, Seq vs Par *)

(* Aggressive mini config so the 120k-cycle run sees real scheduler
   traffic: 1k beacons, 8k epochs, migration thresholds matched to the
   ~6-15 msgs/beacon a saturated board moves at cost-300 service. *)
let mini_cfg =
  {
    Sched.default_config with
    Sched.report_period = 1_000;
    epoch = 8_000;
    up_epochs = 2;
    down_epochs = 3;
    hot_load = 5;
    cold_load = 3;
    cooldown = 20_000;
    drain_delay = 12_000;
  }

let mini_spec =
  {
    Placer.name = "svc";
    cells = 10_000;
    state_bytes = 2_048;
    bitstream_bytes = 4_096;
    reservation = 1;
    max_replicas = 2;
    slo_cycles = 5_000;
    capacity_hint = 26;
  }

let run_sched_rack mode =
  let boards = 3 in
  let cycles = 120_000 in
  let eng =
    Par_sim.create ~mode ~adaptive:true ~lookahead:Cluster.lookahead
      ~n:(boards + 1) ()
  in
  let cluster =
    Cluster.create ~engine:eng (Par_sim.sim eng 0) ~boards ~client_ports:2
  in
  let sim = Cluster.sim cluster in
  let sched = Sched.create ~config:mini_cfg cluster ~slot_cells:(fun _ -> 50_000) in
  Sched.add_tenant sched ~spec:mini_spec
    ~behavior:(fun () -> Accels.echo ~service:"svc" ~cost:300 ());
  let client =
    Shard_client.create cluster ~timeout:10_000 ~service:"svc"
      ~op:Accels.op_echo ~route:Shard_client.Round_robin
      ~gen:(fun _ -> ("", Bytes.make 32 'x'))
  in
  Sched.watch sched ~tenant:"svc" client;
  Sched.start sched;
  Sim.after sim 2_000 (fun () -> Shard_client.start client ~concurrency:6);
  Par_sim.run_until eng cycles;
  Shard_client.stop client;
  Par_sim.shutdown eng;
  let t = Sched.totals sched in
  let stats =
    Printf.sprintf
      "issued=%d completed=%d errors=%d failovers=%d place=%d mig=%d \
       up=%d/down=%d defer=%d"
      (Shard_client.issued client)
      (Shard_client.completed client)
      (Shard_client.errors client)
      (Shard_client.failovers client)
      t.Sched.placements t.Sched.migrations t.Sched.scale_ups
      t.Sched.scale_downs t.Sched.deferred
  in
  (stats, Sched.decisions_json sched, t.Sched.migrations)

let test_sched_par_matches_seq () =
  let stats_seq, json_seq, mig_seq = run_sched_rack Par_sim.Seq in
  let stats_par, json_par, mig_par = run_sched_rack Par_sim.Par in
  Alcotest.(check string) "client+sched stats identical" stats_seq stats_par;
  Alcotest.(check string) "decision logs byte-identical" json_seq json_par;
  (* The run must actually have moved a tenant, or the check is hollow. *)
  Alcotest.(check bool) "migrations occurred" true
    (mig_seq >= 1 && mig_par >= 1)

(* ------------------------------------------------------------------ *)

let qc = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "sched"
    [
      ( "placer",
        [
          qc prop_place_valid_and_shortfalls_justified;
          qc prop_reservations_honored;
          Alcotest.test_case "stability" `Quick test_place_stability;
          Alcotest.test_case "area constraint" `Quick
            test_place_area_constraint;
        ] );
      ( "directory",
        [
          Alcotest.test_case "unregister one replica" `Quick
            test_directory_unregister_replica;
        ] );
      ( "shard_client",
        [
          Alcotest.test_case "sync_boards reconciles ring" `Quick
            test_sync_boards_reconciles_ring;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "Par == Seq with migrations" `Quick
            test_sched_par_matches_seq;
        ] );
    ]
