(* Tests for the accelerator library: codecs (roundtrip properties), the
   KV accelerator against the real memory service, pipeline stages,
   load balancing, fault injection wrappers, and multi-context
   preemption. *)

module Sim = Apiary_engine.Sim
module Rng = Apiary_engine.Rng
module Checksum = Apiary_engine.Checksum
module Message = Apiary_core.Message
module Monitor = Apiary_core.Monitor
module Shell = Apiary_core.Shell
module Kernel = Apiary_core.Kernel
module Codec = Apiary_accel.Codec
module Kv = Apiary_accel.Kv
module Accels = Apiary_accel.Accels
module Faulty = Apiary_accel.Faulty
module Multi_ctx = Apiary_accel.Multi_ctx
module Ctx_manager = Apiary_accel.Ctx_manager
module Mvm = Apiary_accel.Mvm
module Seg_alloc = Apiary_mem.Seg_alloc

let b = Bytes.of_string

let mk_kernel () =
  let sim = Sim.create () in
  let cfg = { Kernel.default_config with Kernel.dram_bytes = 1 lsl 21 } in
  (sim, Kernel.create sim cfg)

let with_client kernel ~tile f =
  Kernel.install kernel ~tile
    (Shell.behavior "client" ~on_boot:(fun sh ->
         Sim.after (Shell.sim sh) 400 (fun () -> f sh)))

(* ------------------------------------------------------------------ *)
(* Checksums *)

let test_checksum_vectors () =
  Alcotest.(check bool) "published vectors" true (Checksum.self_test ())

let test_crc32_detects_flip () =
  let data = b "some frame payload" in
  let c1 = Checksum.crc32 data in
  Bytes.set data 3 'X';
  Alcotest.(check bool) "differs" true (Checksum.crc32 data <> c1)

(* ------------------------------------------------------------------ *)
(* Codecs *)

let bytes_gen =
  QCheck.Gen.(map Bytes.of_string (string_size (int_range 0 2000)))

let compressible_gen =
  QCheck.Gen.(
    map
      (fun (seed, n, r) ->
        Rng.bytes_compressible (Rng.create ~seed) n ~redundancy:r)
      (triple (int_bound 10000) (int_range 0 3000) (float_bound_exclusive 0.99)))

let prop_rle_roundtrip =
  QCheck.Test.make ~name:"rle roundtrip" ~count:300 (QCheck.make bytes_gen)
    (fun data -> Codec.rle_decode (Codec.rle_encode data) = Ok data)

let prop_lz_roundtrip =
  QCheck.Test.make ~name:"lz roundtrip (random)" ~count:300 (QCheck.make bytes_gen)
    (fun data -> Codec.lz_decode (Codec.lz_encode data) = Ok data)

let prop_lz_roundtrip_compressible =
  QCheck.Test.make ~name:"lz roundtrip (compressible)" ~count:200
    (QCheck.make compressible_gen)
    (fun data -> Codec.lz_decode (Codec.lz_encode data) = Ok data)

let test_lz_compresses_redundant () =
  let rng = Rng.create ~seed:9 in
  let data = Rng.bytes_compressible rng 8192 ~redundancy:0.97 in
  let packed = Codec.lz_encode data in
  Alcotest.(check bool)
    (Printf.sprintf "%d -> %d" (Bytes.length data) (Bytes.length packed))
    true
    (Bytes.length packed * 3 < Bytes.length data)

let test_lz_rejects_garbage () =
  (match Codec.lz_decode (b "\x07garbage") with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "decoded bad token");
  match Codec.lz_decode (b "\x01\x00\x10\x05") with
  | Error _ -> ()  (* distance beyond output *)
  | Ok _ -> Alcotest.fail "decoded bad distance"

let prop_video_roundtrip_within_tolerance =
  QCheck.Test.make ~name:"video encode/decode within tolerance" ~count:200
    (QCheck.make
       QCheck.Gen.(
         map2 (fun s q -> (Bytes.of_string s, q)) (string_size (int_range 1 2000))
           (int_range 1 4)))
    (fun (data, q) ->
      let width = 64 in
      match Codec.video_decode ~q ~width (Codec.video_encode ~q ~width data) with
      | Error _ -> false
      | Ok out ->
        let tol = Codec.max_error ~q in
        let ok = ref (Bytes.length out = Bytes.length data) in
        if !ok then
          for i = 0 to Bytes.length data - 1 do
            let d = abs (Char.code (Bytes.get out i) - Char.code (Bytes.get data i)) in
            if d > tol then ok := false
          done;
        !ok)

let test_video_smooth_data_compresses () =
  (* A smooth ramp should quantize to mostly-zero deltas and RLE well. *)
  let data = Bytes.init 4096 (fun i -> Char.chr (i / 64 mod 256)) in
  let enc = Codec.video_encode ~q:2 ~width:64 data in
  Alcotest.(check bool)
    (Printf.sprintf "%d -> %d" (Bytes.length data) (Bytes.length enc))
    true
    (Bytes.length enc * 4 < Bytes.length data)

(* ------------------------------------------------------------------ *)
(* KV proto + accelerator *)

let prop_kv_req_roundtrip =
  QCheck.Test.make ~name:"kv request codec" ~count:200
    QCheck.(pair (string_of_size Gen.(int_range 1 60)) (string_of_size Gen.(int_range 0 500)))
    (fun (k, v) ->
      Kv.Proto.decode_req (Kv.Proto.encode_req (Kv.Proto.Put (k, Bytes.of_string v)))
      = Ok (Kv.Proto.Put (k, Bytes.of_string v))
      && Kv.Proto.decode_req (Kv.Proto.encode_req (Kv.Proto.Get k)) = Ok (Kv.Proto.Get k)
      && Kv.Proto.decode_req (Kv.Proto.encode_req (Kv.Proto.Del k)) = Ok (Kv.Proto.Del k))

let prop_kv_resp_roundtrip =
  QCheck.Test.make ~name:"kv response codec" ~count:200
    QCheck.(string_of_size Gen.(int_range 0 300))
    (fun v ->
      let open Kv.Proto in
      decode_resp (encode_resp (Found (Bytes.of_string v))) = Ok (Found (Bytes.of_string v))
      && decode_resp (encode_resp Stored) = Ok Stored
      && decode_resp (encode_resp Not_found) = Ok Not_found
      && decode_resp (encode_resp (Failed v)) = Ok (Failed v))

let kv_rpc sh conn req cb =
  Shell.request sh conn ~opcode:Kv.Proto.opcode (Kv.Proto.encode_req req) (fun r ->
      match r with
      | Ok m -> cb (Kv.Proto.decode_resp m.Message.payload)
      | Error e -> cb (Error (Shell.rpc_error_to_string e)))

let test_kv_put_get_del () =
  let sim, k = mk_kernel () in
  let kv_behavior, kv_stats = Kv.behavior () in
  Kernel.install k ~tile:1 kv_behavior;
  let log = ref [] in
  let push x = log := x :: !log in
  with_client k ~tile:2 (fun sh ->
      Shell.connect sh ~service:"kv" (fun r ->
          match r with
          | Error e -> Alcotest.failf "connect: %s" (Shell.rpc_error_to_string e)
          | Ok conn ->
            kv_rpc sh conn (Kv.Proto.Put ("alpha", b "first value")) (fun r ->
                push ("put", r);
                kv_rpc sh conn (Kv.Proto.Get "alpha") (fun r ->
                    push ("get", r);
                    kv_rpc sh conn (Kv.Proto.Del "alpha") (fun r ->
                        push ("del", r);
                        kv_rpc sh conn (Kv.Proto.Get "alpha") (fun r ->
                            push ("get2", r)))))));
  Sim.run_for sim 30_000;
  (match List.rev !log with
  | [ ("put", Ok Kv.Proto.Stored);
      ("get", Ok (Kv.Proto.Found v));
      ("del", Ok Kv.Proto.Deleted);
      ("get2", Ok Kv.Proto.Not_found) ] ->
    Alcotest.(check string) "value" "first value" (Bytes.to_string v)
  | l -> Alcotest.failf "unexpected op sequence (%d entries)" (List.length l));
  Alcotest.(check int) "2 gets" 2 kv_stats.Kv.gets;
  Alcotest.(check int) "1 miss" 1 kv_stats.Kv.misses

let test_kv_overwrite () =
  let sim, k = mk_kernel () in
  let kv_behavior, _ = Kv.behavior () in
  Kernel.install k ~tile:1 kv_behavior;
  let final = ref None in
  with_client k ~tile:2 (fun sh ->
      Shell.connect sh ~service:"kv" (fun r ->
          match r with
          | Error _ -> ()
          | Ok conn ->
            kv_rpc sh conn (Kv.Proto.Put ("k", b "v1")) (fun _ ->
                kv_rpc sh conn (Kv.Proto.Put ("k", b "v2-longer")) (fun _ ->
                    kv_rpc sh conn (Kv.Proto.Get "k") (fun r -> final := Some r)))));
  Sim.run_for sim 30_000;
  match !final with
  | Some (Ok (Kv.Proto.Found v)) -> Alcotest.(check string) "latest" "v2-longer" (Bytes.to_string v)
  | _ -> Alcotest.fail "overwrite failed"

let test_kv_many_keys_integrity () =
  (* Fill with many keys, read them all back; values come from real DRAM
     so this catches allocator/offset bugs. *)
  let sim, k = mk_kernel () in
  let kv_behavior, _ = Kv.behavior ~store_bytes:(128 * 1024) () in
  Kernel.install k ~tile:1 kv_behavior;
  let n = 60 in
  let value i = Bytes.init (17 + (i * 7 mod 200)) (fun j -> Char.chr ((i + j) mod 256)) in
  let verified = ref 0 and failures = ref 0 in
  with_client k ~tile:2 (fun sh ->
      Shell.connect sh ~service:"kv" (fun r ->
          match r with
          | Error _ -> ()
          | Ok conn ->
            let rec put i =
              if i >= n then get 0
              else
                kv_rpc sh conn (Kv.Proto.Put (Printf.sprintf "key%d" i, value i))
                  (fun r ->
                    (match r with Ok Kv.Proto.Stored -> () | _ -> incr failures);
                    put (i + 1))
            and get i =
              if i < n then
                kv_rpc sh conn (Kv.Proto.Get (Printf.sprintf "key%d" i)) (fun r ->
                    (match r with
                    | Ok (Kv.Proto.Found v) when v = value i -> incr verified
                    | _ -> incr failures);
                    get (i + 1))
            in
            put 0));
  Sim.run_for sim 400_000;
  Alcotest.(check int) "no failures" 0 !failures;
  Alcotest.(check int) "all verified" n !verified


let test_kv_store_full_and_recovery () =
  (* Fill the arena past capacity, observe Failed("store full"), delete,
     and verify new PUTs succeed again (arena coalescing works through
     the service). *)
  let sim, k = mk_kernel () in
  let kv_behavior, kv_stats = Kv.behavior ~store_bytes:4096 () in
  Kernel.install k ~tile:1 kv_behavior;
  let fulls = ref 0 and stored = ref 0 and recovered = ref None in
  with_client k ~tile:2 (fun sh ->
      Shell.connect sh ~service:"kv" (fun r ->
          match r with
          | Error _ -> ()
          | Ok conn ->
            let rec put i =
              if i >= 8 then begin
                (* Free one and retry. *)
                kv_rpc sh conn (Kv.Proto.Del "k0") (fun _ ->
                    kv_rpc sh conn (Kv.Proto.Put ("fresh", Bytes.create 700))
                      (fun r -> recovered := Some r))
              end
              else
                kv_rpc sh conn (Kv.Proto.Put (Printf.sprintf "k%d" i, Bytes.create 700))
                  (fun r ->
                    (match r with
                    | Ok Kv.Proto.Stored -> incr stored
                    | Ok (Kv.Proto.Failed _) -> incr fulls
                    | _ -> ());
                    put (i + 1))
            in
            put 0));
  Sim.run_for sim 100_000;
  Alcotest.(check bool) (Printf.sprintf "some stored (%d)" !stored) true (!stored >= 4);
  Alcotest.(check bool) (Printf.sprintf "some full (%d)" !fulls) true (!fulls >= 1);
  Alcotest.(check bool) "oom counted" true (kv_stats.Kv.oom >= 1);
  match !recovered with
  | Some (Ok Kv.Proto.Stored) -> ()
  | _ -> Alcotest.fail "put after delete should succeed"

(* ------------------------------------------------------------------ *)
(* Pipeline stage + load balancer *)

let test_transform_stage_pipeline () =
  let sim, k = mk_kernel () in
  Kernel.install k ~tile:4 (Accels.compressor ~algo:`Rle ());
  Kernel.install k ~tile:1
    (Accels.transform_stage ~service:"stage" ~next:"compress"
       ~f:(fun p -> Codec.video_encode ~q:2 ~width:64 p)
       ());
  let original = Bytes.init 512 (fun i -> Char.chr (i / 8 mod 256)) in
  let out = ref None in
  with_client k ~tile:2 (fun sh ->
      Shell.connect sh ~service:"stage" (fun r ->
          match r with
          | Error _ -> ()
          | Ok conn ->
            Shell.request sh conn ~opcode:Accels.op_encode original (fun r ->
                match r with
                | Ok m -> out := Some m.Message.payload
                | Error _ -> ())));
  Sim.run_for sim 30_000;
  match !out with
  | None -> Alcotest.fail "pipeline produced nothing"
  | Some response ->
    (* Invert: RLE-decode then video-decode. *)
    (match Codec.rle_decode response with
    | Error e -> Alcotest.failf "rle: %s" e
    | Ok encoded ->
      (match Codec.video_decode ~q:2 ~width:64 encoded with
      | Error e -> Alcotest.failf "video: %s" e
      | Ok decoded ->
        Alcotest.(check int) "length" (Bytes.length original) (Bytes.length decoded)))

let test_load_balancer_spreads () =
  let sim, k = mk_kernel () in
  let counts = Array.make 2 0 in
  let backend i tile =
    Kernel.install k ~tile
      (Shell.behavior (Printf.sprintf "be%d" i)
         ~on_boot:(fun sh -> Shell.register_service sh (Printf.sprintf "be%d" i))
         ~on_message:(fun sh msg ->
           counts.(i) <- counts.(i) + 1;
           Shell.respond sh msg ~opcode:Accels.op_echo msg.Message.payload))
  in
  backend 0 4;
  backend 1 5;
  Kernel.install k ~tile:1 (Accels.load_balancer ~service:"lb" ~backends:[ "be0"; "be1" ] ());
  let done_count = ref 0 in
  with_client k ~tile:2 (fun sh ->
      Shell.connect sh ~service:"lb" (fun r ->
          match r with
          | Error _ -> ()
          | Ok conn ->
            for _ = 1 to 20 do
              Shell.request sh conn ~opcode:Accels.op_echo (b "x") (fun r ->
                  if Result.is_ok r then incr done_count)
            done));
  Sim.run_for sim 60_000;
  Alcotest.(check int) "all served" 20 !done_count;
  Alcotest.(check bool)
    (Printf.sprintf "spread %d/%d" counts.(0) counts.(1))
    true
    (counts.(0) >= 8 && counts.(1) >= 8)


(* ------------------------------------------------------------------ *)
(* MVM inference accelerator (shared DRAM weights) *)

let test_mvm_reference_math () =
  (* 2x3 matrix, hand-checked int8 arithmetic. *)
  let w = Bytes.create 6 in
  List.iteri (fun i v -> Bytes.set w i (Char.chr (v land 0xFF)))
    [ 127; 0; 0;      (* row 0 = [127, 0, 0] *)
      -1; -1; -1 ];   (* row 1 = [-1, -1, -1] *)
  let x = Bytes.create 3 in
  List.iteri (fun i v -> Bytes.set x i (Char.chr (v land 0xFF))) [ 127; 10; 10 ];
  let out = Mvm.reference ~weights:w ~rows:2 ~cols:3 x in
  (* row0: 127*127 = 16129 >> 7 = 126; row1: -(127+10+10) = -147 >> 7 = -2 *)
  Alcotest.(check int) "row0" 126 (Char.code (Bytes.get out 0));
  Alcotest.(check int) "row1" ((-2) land 0xFF) (Char.code (Bytes.get out 1))

let test_mvm_end_to_end_shared_weights () =
  let rows = 32 and cols = 64 in
  let sim, k = mk_kernel () in
  let rng = Rng.create ~seed:33 in
  let weights = Mvm.random_weights rng ~rows ~cols in
  let w0, st0 = Mvm.worker ~service:"mvm0" ~rows ~cols () in
  let w1, st1 = Mvm.worker ~service:"mvm1" ~rows ~cols () in
  Kernel.install k ~tile:1 w0;
  Kernel.install k ~tile:2 w1;
  Kernel.install k ~tile:4
    (Mvm.loader ~weights ~rows ~cols ~worker_tiles:[ 1; 2 ] ());
  Kernel.install k ~tile:5
    (Accels.load_balancer ~service:"mvm" ~backends:[ "mvm0"; "mvm1" ] ());
  let verified = ref 0 and wrong = ref 0 in
  with_client k ~tile:6 (fun sh ->
      Sim.after (Shell.sim sh) 8_000 (fun () ->
          Shell.connect sh ~service:"mvm" (fun r ->
              match r with
              | Error _ -> ()
              | Ok conn ->
                let rec infer n =
                  if n < 20 then begin
                    let x = Rng.bytes (Shell.rng sh) cols in
                    let expected = Mvm.reference ~weights ~rows ~cols x in
                    Shell.request sh conn ~opcode:Mvm.Proto.opcode
                      (Mvm.Proto.encode_req x) (fun r ->
                        (match r with
                        | Ok m ->
                          (match Mvm.Proto.decode_resp m.Message.payload with
                          | Ok out when out = expected -> incr verified
                          | Ok _ | Error _ -> incr wrong)
                        | Error _ -> incr wrong);
                        infer (n + 1))
                  end
                in
                infer 0)));
  Sim.run_for sim 300_000;
  Alcotest.(check int) "no wrong results" 0 !wrong;
  Alcotest.(check int) "all verified" 20 !verified;
  (* Both replicas streamed the full matrix from ONE DRAM copy. *)
  Alcotest.(check int) "w0 loaded" (rows * cols) st0.Mvm.weight_bytes_loaded;
  Alcotest.(check int) "w1 loaded" (rows * cols) st1.Mvm.weight_bytes_loaded;
  Alcotest.(check bool)
    (Printf.sprintf "single weight copy in DRAM (%d bytes used)"
       (Seg_alloc.used_bytes (Kernel.allocator k)))
    true
    (Seg_alloc.used_bytes (Kernel.allocator k) <= rows * cols + 4096);
  Alcotest.(check bool) "work split" true
    (st0.Mvm.inferences >= 5 && st1.Mvm.inferences >= 5)

let test_mvm_unready_worker_errors () =
  let sim, k = mk_kernel () in
  (* Worker with no loader: must answer with an error, not hang. *)
  let w, st = Mvm.worker ~service:"mvm0" ~rows:8 ~cols:8 () in
  Kernel.install k ~tile:1 w;
  let got = ref None in
  with_client k ~tile:2 (fun sh ->
      Shell.connect sh ~service:"mvm0" (fun r ->
          match r with
          | Error _ -> ()
          | Ok conn ->
            Shell.request sh conn ~opcode:Mvm.Proto.opcode (Bytes.create 8)
              (fun r ->
                match r with
                | Ok m -> got := Some (Mvm.Proto.decode_resp m.Message.payload)
                | Error _ -> ())));
  Sim.run_for sim 20_000;
  (match !got with
  | Some (Error e) ->
    Alcotest.(check string) "not loaded" "weights not loaded" e
  | _ -> Alcotest.fail "expected error response");
  Alcotest.(check int) "rejected counted" 1 st.Mvm.rejected

(* ------------------------------------------------------------------ *)
(* Faulty wrappers *)

let test_faulty_crash_plan () =
  let sim, k = mk_kernel () in
  Kernel.install k ~tile:1 (Faulty.wrap [ Faulty.Crash_at 500 ] (Accels.echo ()));
  Sim.run_for sim 2000;
  match Kernel.faults k with
  | [ (1, _) ] -> ()
  | _ -> Alcotest.fail "crash plan did not fire"

let test_faulty_mem_stomp_blocked_vs_allowed () =
  (* A tenant stomps over the KV store's segment. With enforcement the
     victim's data survives; without it the KV detects corruption on the
     next GET. *)
  let run ~enforce =
    let sim = Sim.create () in
    let cfg =
      {
        Kernel.default_config with
        Kernel.dram_bytes = 1 lsl 21;
        monitor = { Monitor.default_config with Monitor.enforce };
      }
    in
    let k = Kernel.create sim cfg in
    let kv_behavior, kv_stats = Kv.behavior () in
    Kernel.install k ~tile:1 kv_behavior;
    (* The KV store's segment is the first allocation: base 0. Stomp it. *)
    Kernel.install k ~tile:5
      (Faulty.wrap
         [ Faulty.Mem_stomp_at { at = 6_000; addr = 0; len = 4096 } ]
         (Shell.behavior "tenant"));
    let result = ref None in
    with_client k ~tile:2 (fun sh ->
        Shell.connect sh ~service:"kv" (fun r ->
            match r with
            | Error _ -> ()
            | Ok conn ->
              kv_rpc sh conn (Kv.Proto.Put ("victim", b "precious")) (fun _ ->
                  Sim.after (Shell.sim sh) 10_000 (fun () ->
                      kv_rpc sh conn (Kv.Proto.Get "victim") (fun r -> result := Some r)))));
    Sim.run_for sim 40_000;
    (!result, kv_stats.Kv.corruptions, Monitor.denied (Kernel.monitor k 5))
  in
  (match run ~enforce:true with
  | Some (Ok (Kv.Proto.Found v)), corruptions, denied ->
    Alcotest.(check string) "data intact" "precious" (Bytes.to_string v);
    Alcotest.(check int) "no corruption" 0 corruptions;
    Alcotest.(check bool) "stomp denied" true (denied >= 1)
  | _ -> Alcotest.fail "enforced run broken");
  match run ~enforce:false with
  | Some (Ok (Kv.Proto.Failed _)), corruptions, _ ->
    Alcotest.(check bool) "corruption detected" true (corruptions >= 1)
  | Some (Ok (Kv.Proto.Found _)), _, _ ->
    Alcotest.fail "stomp should have corrupted the value"
  | _ -> Alcotest.fail "unenforced run broken"

(* ------------------------------------------------------------------ *)
(* Multi-context preemption *)

let mctx_rpc sh conn ~ctx ?(poison = false) data cb =
  Shell.request sh conn ~opcode:Multi_ctx.Proto.opcode
    (Multi_ctx.Proto.encode_req { Multi_ctx.Proto.ctx; poison; data })
    (fun r ->
      match r with
      | Ok m -> cb (Multi_ctx.Proto.decode_resp m.Message.payload)
      | Error e -> cb (Error (Shell.rpc_error_to_string e)))

let test_mctx_state_accumulates () =
  let sim, k = mk_kernel () in
  let behavior, api = Multi_ctx.behavior ~nctx:4 ~preemptible:true () in
  Kernel.install k ~tile:1 behavior;
  let sums = ref [] in
  with_client k ~tile:2 (fun sh ->
      Shell.connect sh ~service:"mctx" (fun r ->
          match r with
          | Error _ -> ()
          | Ok conn ->
            mctx_rpc sh conn ~ctx:0 (b "aa") (fun r ->
                sums := r :: !sums;
                mctx_rpc sh conn ~ctx:0 (b "bb") (fun r -> sums := r :: !sums))));
  Sim.run_for sim 20_000;
  (match !sums with
  | [ Ok (Multi_ctx.Proto.Accum s2); Ok (Multi_ctx.Proto.Accum s1) ] ->
    Alcotest.(check bool) "state evolved" true (s1 <> s2)
  | _ -> Alcotest.fail "accumulation failed");
  Alcotest.(check int) "2 ops" 2 (Multi_ctx.ops_served api)

let test_mctx_preemptible_poison_isolates () =
  let sim, k = mk_kernel () in
  let behavior, api = Multi_ctx.behavior ~nctx:4 ~preemptible:true () in
  Kernel.install k ~tile:1 behavior;
  let after_poison = ref None in
  with_client k ~tile:2 (fun sh ->
      Shell.connect sh ~service:"mctx" (fun r ->
          match r with
          | Error _ -> ()
          | Ok conn ->
            mctx_rpc sh conn ~ctx:1 ~poison:true (b "") (fun _ ->
                (* Other context still alive and serving. *)
                mctx_rpc sh conn ~ctx:2 (b "cc") (fun r -> after_poison := Some r))));
  Sim.run_for sim 20_000;
  Alcotest.(check bool) "ctx1 dead" false (Multi_ctx.alive api 1);
  Alcotest.(check bool) "ctx2 alive" true (Multi_ctx.alive api 2);
  (match !after_poison with
  | Some (Ok (Multi_ctx.Proto.Accum _)) -> ()
  | _ -> Alcotest.fail "surviving context should serve");
  Alcotest.(check (list (pair int string))) "no tile fault" [] (Kernel.faults k)

let test_mctx_nonpreemptible_poison_failstops () =
  let sim, k = mk_kernel () in
  let behavior, _ = Multi_ctx.behavior ~nctx:4 ~preemptible:false () in
  Kernel.install k ~tile:1 behavior;
  with_client k ~tile:2 (fun sh ->
      Shell.connect sh ~service:"mctx" (fun r ->
          match r with
          | Error _ -> ()
          | Ok conn -> mctx_rpc sh conn ~ctx:1 ~poison:true (b "") (fun _ -> ())));
  Sim.run_for sim 20_000;
  match Kernel.faults k with
  | [ (1, _) ] -> ()
  | _ -> Alcotest.fail "non-preemptible tile should fail-stop"

let test_mctx_snapshot_migration () =
  (* Accumulate state in a context on tile 1, snapshot it, restore into a
     fresh accelerator on tile 4, and verify the session continues with
     identical state evolution. *)
  let sim, k = mk_kernel () in
  let b1, api1 = Multi_ctx.behavior ~service:"m1" ~nctx:2 ~preemptible:true () in
  let b2, api2 = Multi_ctx.behavior ~service:"m2" ~nctx:2 ~preemptible:true () in
  Kernel.install k ~tile:1 b1;
  Kernel.install k ~tile:4 b2;
  let migrated_sum = ref None in
  with_client k ~tile:2 (fun sh ->
      Shell.connect sh ~service:"m1" (fun r ->
          match r with
          | Error _ -> ()
          | Ok c1 ->
            mctx_rpc sh c1 ~ctx:0 (b "session-data") (fun _ ->
                (* Kernel-side migration. *)
                (match Multi_ctx.snapshot api1 0 with
                | None -> Alcotest.fail "snapshot failed"
                | Some state ->
                  (match Multi_ctx.restore api2 0 state with
                  | Error e -> Alcotest.failf "restore: %s" e
                  | Ok () -> ()));
                Shell.connect sh ~service:"m2" (fun r ->
                    match r with
                    | Error _ -> ()
                    | Ok c2 ->
                      mctx_rpc sh c2 ~ctx:0 (b "more") (fun r ->
                          migrated_sum := Some r)))));
  Sim.run_for sim 30_000;
  (* Reference: same two messages against one context, no migration. *)
  let sim2, k2 = mk_kernel () in
  let b3, _ = Multi_ctx.behavior ~service:"m3" ~nctx:2 ~preemptible:true () in
  Kernel.install k2 ~tile:1 b3;
  let reference = ref None in
  with_client k2 ~tile:2 (fun sh ->
      Shell.connect sh ~service:"m3" (fun r ->
          match r with
          | Error _ -> ()
          | Ok conn ->
            mctx_rpc sh conn ~ctx:0 (b "session-data") (fun _ ->
                mctx_rpc sh conn ~ctx:0 (b "more") (fun r -> reference := Some r))));
  Sim.run_for sim2 30_000;
  match (!migrated_sum, !reference) with
  | Some (Ok (Multi_ctx.Proto.Accum a)), Some (Ok (Multi_ctx.Proto.Accum r)) ->
    Alcotest.(check int32) "state continued across migration" r a
  | _ -> Alcotest.fail "migration comparison incomplete"


(* ------------------------------------------------------------------ *)
(* Context manager: more contexts than resident slots, swap to DRAM *)

let cm_rpc sh conn ~ctx data cb =
  Shell.request sh conn ~opcode:Multi_ctx.Proto.opcode
    (Multi_ctx.Proto.encode_req { Multi_ctx.Proto.ctx; poison = false; data })
    (fun r ->
      match r with
      | Ok m -> cb (Multi_ctx.Proto.decode_resp m.Message.payload)
      | Error e -> cb (Error (Shell.rpc_error_to_string e)))

let test_ctx_manager_swaps_preserve_state () =
  (* 8 logical contexts on 2 resident slots: touching them round-robin
     forces constant swapping, yet each context's running checksum must
     match a no-swap reference. *)
  let run ~resident =
    let sim, k = mk_kernel () in
    let behavior, st = Ctx_manager.behavior ~logical:8 ~resident () in
    Kernel.install k ~tile:1 behavior;
    let sums = Array.make 8 None in
    with_client k ~tile:2 (fun sh ->
        Shell.connect sh ~service:"ctxmgr" (fun r ->
            match r with
            | Error _ -> ()
            | Ok conn ->
              (* Two passes over all contexts. *)
              let rec go pass ctx =
                if pass < 2 then
                  cm_rpc sh conn ~ctx (b (Printf.sprintf "p%dc%d" pass ctx))
                    (fun r ->
                      (match r with
                      | Ok (Multi_ctx.Proto.Accum s) -> sums.(ctx) <- Some s
                      | _ -> ());
                      if ctx = 7 then go (pass + 1) 0 else go pass (ctx + 1))
              in
              go 0 0));
    Sim.run_for sim 300_000;
    (Array.copy sums, st)
  in
  let swapped, st2 = run ~resident:2 in
  let reference, st8 = run ~resident:8 in
  Alcotest.(check bool) "all contexts served" true
    (Array.for_all Option.is_some swapped);
  Alcotest.(check bool) "checksums identical with and without swapping" true
    (swapped = reference);
  Alcotest.(check bool)
    (Printf.sprintf "swapping happened (%d ins)" st2.Ctx_manager.swap_ins)
    true
    (st2.Ctx_manager.swap_ins >= 8);
  Alcotest.(check int) "no swaps when everything fits" 8 st8.Ctx_manager.swap_ins
  (* (the first touch of each context is a cold fetch) *)

let test_ctx_manager_locality_hits () =
  (* Repeatedly touching one context must hit the resident slot. *)
  let sim, k = mk_kernel () in
  let behavior, st = Ctx_manager.behavior ~logical:8 ~resident:2 () in
  Kernel.install k ~tile:1 behavior;
  with_client k ~tile:2 (fun sh ->
      Shell.connect sh ~service:"ctxmgr" (fun r ->
          match r with
          | Error _ -> ()
          | Ok conn ->
            let rec go n =
              if n < 50 then cm_rpc sh conn ~ctx:3 (b "x") (fun _ -> go (n + 1))
            in
            go 0));
  Sim.run_for sim 200_000;
  Alcotest.(check int) "one cold fetch" 1 st.Ctx_manager.swap_ins;
  Alcotest.(check bool)
    (Printf.sprintf "hits %d" st.Ctx_manager.resident_hits)
    true
    (st.Ctx_manager.resident_hits >= 49)

let qc = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "accel"
    [
      ( "checksum",
        [
          Alcotest.test_case "vectors" `Quick test_checksum_vectors;
          Alcotest.test_case "crc flip" `Quick test_crc32_detects_flip;
        ] );
      ( "codec",
        [
          qc prop_rle_roundtrip;
          qc prop_lz_roundtrip;
          qc prop_lz_roundtrip_compressible;
          Alcotest.test_case "lz compresses" `Quick test_lz_compresses_redundant;
          Alcotest.test_case "lz rejects garbage" `Quick test_lz_rejects_garbage;
          qc prop_video_roundtrip_within_tolerance;
          Alcotest.test_case "video compresses" `Quick test_video_smooth_data_compresses;
        ] );
      ( "kv",
        [
          qc prop_kv_req_roundtrip;
          qc prop_kv_resp_roundtrip;
          Alcotest.test_case "put/get/del" `Quick test_kv_put_get_del;
          Alcotest.test_case "overwrite" `Quick test_kv_overwrite;
          Alcotest.test_case "many keys integrity" `Quick test_kv_many_keys_integrity;
          Alcotest.test_case "store full + recovery" `Quick test_kv_store_full_and_recovery;
        ] );
      ( "composition",
        [
          Alcotest.test_case "transform stage" `Quick test_transform_stage_pipeline;
          Alcotest.test_case "load balancer" `Quick test_load_balancer_spreads;
        ] );
      ( "mvm",
        [
          Alcotest.test_case "reference math" `Quick test_mvm_reference_math;
          Alcotest.test_case "shared weights end-to-end" `Quick test_mvm_end_to_end_shared_weights;
          Alcotest.test_case "unready errors" `Quick test_mvm_unready_worker_errors;
        ] );
      ( "faulty",
        [
          Alcotest.test_case "crash plan" `Quick test_faulty_crash_plan;
          Alcotest.test_case "mem stomp" `Quick test_faulty_mem_stomp_blocked_vs_allowed;
        ] );
      ( "ctx_manager",
        [
          Alcotest.test_case "swap preserves state" `Quick test_ctx_manager_swaps_preserve_state;
          Alcotest.test_case "locality hits" `Quick test_ctx_manager_locality_hits;
        ] );
      ( "multi_ctx",
        [
          Alcotest.test_case "state accumulates" `Quick test_mctx_state_accumulates;
          Alcotest.test_case "preemptible isolates" `Quick test_mctx_preemptible_poison_isolates;
          Alcotest.test_case "non-preemptible failstops" `Quick test_mctx_nonpreemptible_poison_failstops;
          Alcotest.test_case "snapshot migration" `Quick test_mctx_snapshot_migration;
        ] );
    ]
