(* Tests for the rack layer: directory resolution (local hit, remote
   hit, stale-route invalidation), shard-mapping stability under board
   join/leave, location-transparent cross-board calls, and failover with
   re-registration. *)

module Sim = Apiary_engine.Sim
module Shell = Apiary_core.Shell
module Kernel = Apiary_core.Kernel
module Trace = Apiary_core.Trace
module Accels = Apiary_accel.Accels
module Kv = Apiary_accel.Kv
module Cluster = Apiary_cluster.Cluster
module Directory = Apiary_cluster.Directory
module Shard = Apiary_cluster.Shard
module Shard_client = Apiary_cluster.Shard_client
module Node = Apiary_cluster.Node

let b = Bytes.of_string

(* ------------------------------------------------------------------ *)
(* Directory (pure rack-controller state) *)

(* Standalone directories are synchronous (announce_delay 0); in a
   Cluster, mutations take one uplink to become visible. *)
let test_directory_local_hit () =
  let d = Directory.create (Sim.create ()) in
  Directory.register d ~service:"kv" ~board:0 ~mac:0xA0;
  Directory.register d ~service:"kv" ~board:1 ~mac:0xA1;
  match Directory.resolve d ~from_board:0 ~service:"kv" with
  | Some Directory.Local -> ()
  | Some (Directory.Remote _) -> Alcotest.fail "own replica should win"
  | None -> Alcotest.fail "unresolved"

let test_directory_remote_hit_and_cache () =
  let d = Directory.create (Sim.create ()) in
  Directory.register d ~service:"kv" ~board:0 ~mac:0xA0;
  let first =
    match Directory.resolve d ~from_board:2 ~service:"kv" with
    | Some (Directory.Remote r) ->
      Alcotest.(check int) "remote mac" 0xA0 r.Directory.mac;
      r
    | _ -> Alcotest.fail "expected remote"
  in
  (* Second resolve is served from the route cache. *)
  let hits0 = Directory.cache_hits d in
  (match Directory.resolve d ~from_board:2 ~service:"kv" with
  | Some (Directory.Remote r) ->
    Alcotest.(check int) "same route" first.Directory.board r.Directory.board
  | _ -> Alcotest.fail "expected cached remote");
  Alcotest.(check int) "cache hit counted" (hits0 + 1) (Directory.cache_hits d);
  Alcotest.(check bool) "unknown service unresolved" true
    (Directory.resolve d ~from_board:2 ~service:"nope" = None)

let test_directory_stale_route_invalidation () =
  let d = Directory.create (Sim.create ()) in
  Directory.register d ~service:"kv" ~board:0 ~mac:0xA0;
  Directory.register d ~service:"kv" ~board:1 ~mac:0xA1;
  let chosen =
    match Directory.resolve d ~from_board:2 ~service:"kv" with
    | Some (Directory.Remote r) -> r.Directory.board
    | _ -> Alcotest.fail "expected remote"
  in
  (* The chosen board dies: its cached route must not be handed out
     again; resolution moves to the survivor. *)
  Directory.report_failure d ~board:chosen ();
  (match Directory.resolve d ~from_board:2 ~service:"kv" with
  | Some (Directory.Remote r) ->
    Alcotest.(check bool) "moved off the dead board" true
      (r.Directory.board <> chosen)
  | _ -> Alcotest.fail "expected a survivor");
  Alcotest.(check bool) "invalidation counted" true
    (Directory.invalidations d >= 1);
  (* Explicit single-route invalidation also forces a re-pick. *)
  Directory.invalidate d ~from_board:2 ~service:"kv";
  match Directory.resolve d ~from_board:2 ~service:"kv" with
  | Some (Directory.Remote _) -> ()
  | _ -> Alcotest.fail "survivor should still resolve"

(* A delayed directory hides a mutation until one announce_delay has
   fully passed — the visibility rule that makes monolithic and
   partitioned racks byte-identical. *)
let test_directory_announce_delay () =
  let sim = Sim.create () in
  let d = Directory.create ~announce_delay:10 sim in
  Directory.register d ~service:"kv" ~board:0 ~mac:0xA0;
  Alcotest.(check bool) "invisible before the delay" true
    (Directory.resolve d ~from_board:2 ~service:"kv" = None);
  Sim.run_until sim 10;  (* now = announce cycle + delay *)
  Alcotest.(check bool) "invisible at exactly now + delay" true
    (Directory.resolve d ~from_board:2 ~service:"kv" = None);
  Sim.step sim;  (* visibility is strictly after: a_time < now *)
  match Directory.resolve d ~from_board:2 ~service:"kv" with
  | Some (Directory.Remote r) -> Alcotest.(check int) "visible after" 0xA0 r.mac
  | _ -> Alcotest.fail "expected the registration to have landed"

(* Debug builds trip on a replica touched from the wrong partition: the
   single-writer discipline the replicated directory is built on. *)
let test_directory_cross_partition_assert () =
  let module Par_sim = Apiary_engine.Par_sim in
  let eng = Par_sim.create ~lookahead:16 ~n:3 () in
  let d =
    Directory.create_replicated ~announce_delay:16
      ~sims:(Array.init 3 (Par_sim.sim eng))
      ~home:(fun b -> b + 1)
      ~post:(fun ~src ~dst ~time fn -> Par_sim.post eng ~src ~dst ~time fn)
      ()
  in
  Directory.register d ~service:"kv" ~board:0 ~mac:0xA0;
  (* Board 0's replica lives on partition 1; resolving it from member
     2's execution is a cross-domain access. *)
  Sim.at (Par_sim.sim eng 2) 1 (fun () ->
      ignore (Directory.resolve d ~from_board:0 ~service:"kv"));
  (match Par_sim.run_until eng 40 with
  | () -> Alcotest.fail "cross-partition resolve went undetected"
  | exception Assert_failure _ -> ());
  Par_sim.shutdown eng

(* ------------------------------------------------------------------ *)
(* Shard ring (pure) *)

let keys = List.init 300 (fun i -> Printf.sprintf "key-%04d" i)

let mapping ring =
  List.map (fun k -> (k, Shard.lookup ring k)) keys

let test_shard_spreads_keys () =
  let ring = Shard.create () in
  List.iter (Shard.add ring) [ 0; 1; 2; 3 ];
  let count board =
    List.length (List.filter (fun (_, o) -> o = Some board) (mapping ring))
  in
  List.iter
    (fun bd ->
      Alcotest.(check bool)
        (Printf.sprintf "board %d owns a fair share (%d)" bd (count bd))
        true
        (count bd > 30))
    [ 0; 1; 2; 3 ]

let test_shard_stability_under_leave_join () =
  let ring = Shard.create () in
  List.iter (Shard.add ring) [ 0; 1; 2; 3 ];
  let before = mapping ring in
  Shard.remove ring 2;
  let after = mapping ring in
  List.iter2
    (fun (k, o1) (_, o2) ->
      match o1 with
      | Some 2 ->
        (* Displaced keys land on survivors only. *)
        Alcotest.(check bool) (k ^ " resharded to a survivor") true
          (match o2 with Some bd -> bd <> 2 | None -> false)
      | o ->
        (* Keys on surviving boards must not move at all. *)
        Alcotest.(check bool) (k ^ " stable") true (o2 = o))
    before after;
  (* Re-join restores the original mapping exactly. *)
  Shard.add ring 2;
  List.iter2
    (fun (k, o1) (_, o2) ->
      Alcotest.(check bool) (k ^ " restored") true (o1 = o2))
    before (mapping ring)

let test_shard_rr_skips_dead () =
  let rr = Shard.Rr.create [ 0; 1; 2 ] in
  Shard.Rr.remove rr 1;
  let picks = List.init 4 (fun _ -> Shard.Rr.next rr) in
  Alcotest.(check bool) "alternates over live" true
    (picks = [ Some 0; Some 2; Some 0; Some 2 ]);
  Shard.Rr.add rr 1;
  Alcotest.(check int) "re-admitted" 3 (List.length (Shard.Rr.live rr))

(* ------------------------------------------------------------------ *)
(* Cross-board invocation (full simulation) *)

let test_cluster_local_and_remote_call () =
  let sim = Sim.create () in
  let cluster = Cluster.create sim ~boards:2 in
  ignore
    (Cluster.install cluster ~board:0 ~service:"mirror"
       (Accels.echo ~service:"mirror" ()));
  let local_reply = ref None and remote_reply = ref None in
  let caller board slot =
    Shell.behavior "caller" ~on_boot:(fun sh ->
        Sim.after (Shell.sim sh) 3_000 (fun () ->
            Cluster.connect cluster ~board sh ~service:"mirror" (fun r ->
                match r with
                | Error _ -> ()
                | Ok target ->
                  Cluster.call cluster ~board sh target ~op:Accels.op_echo
                    (b "ping") (fun r ->
                      match r with
                      | Ok body -> slot := Some (Bytes.to_string body)
                      | Error _ -> ()))))
  in
  ignore (Cluster.install cluster ~board:0 (caller 0 local_reply));
  ignore (Cluster.install cluster ~board:1 (caller 1 remote_reply));
  Cluster.set_tracing cluster true;
  Sim.run_for sim 100_000;
  Alcotest.(check (option string)) "local call echoed" (Some "ping") !local_reply;
  Alcotest.(check (option string)) "remote call echoed" (Some "ping")
    !remote_reply;
  (* The merged trace carries both boards' ids. *)
  let boards_seen =
    List.sort_uniq compare
      (List.filter_map (fun e -> e.Trace.board) (Cluster.merged_trace cluster))
  in
  Alcotest.(check (list int)) "trace attributes both boards" [ 0; 1 ] boards_seen

(* A cross-board RPC reconstructs from one Trace.merge pool: filter by
   corr on the caller's side of the network hop to recover its
   request/reply pair, then find the far board serving — under its own
   corr — strictly inside that window (the reconstruction trace.mli
   documents). *)
let test_cluster_merged_trace_corr_reconstruction () =
  let sim = Sim.create () in
  let cluster = Cluster.create sim ~boards:2 in
  ignore
    (Cluster.install cluster ~board:0 ~service:"mirror"
       (Accels.echo ~service:"mirror" ()));
  let caller_tile = ref (-1) and reply = ref None in
  let caller =
    Shell.behavior "caller" ~on_boot:(fun sh ->
        caller_tile := Shell.tile sh;
        Sim.after (Shell.sim sh) 3_000 (fun () ->
            Cluster.connect cluster ~board:1 sh ~service:"mirror" (fun r ->
                match r with
                | Error _ -> ()
                | Ok target ->
                  Cluster.call cluster ~board:1 sh target ~op:Accels.op_echo
                    (b "ping") (fun r ->
                      match r with
                      | Ok body -> reply := Some (Bytes.to_string body)
                      | Error _ -> ()))))
  in
  ignore (Cluster.install cluster ~board:1 caller);
  Cluster.set_tracing cluster true;
  Sim.run_for sim 100_000;
  Alcotest.(check (option string)) "remote call echoed" (Some "ping") !reply;
  let merged = Cluster.merged_trace cluster in
  (* The last corr the caller tile opened is the remote RPC's local leg
     (to the net service tile). *)
  let corr =
    List.fold_left
      (fun acc (e : Trace.event) ->
        if e.Trace.board = Some 1 && e.Trace.tile = !caller_tile
           && e.Trace.dir = Trace.Egress
        then max acc e.Trace.corr
        else acc)
      0 merged
  in
  Alcotest.(check bool) "caller sent a correlated request" true (corr > 0);
  let journey =
    List.filter
      (fun (e : Trace.event) ->
        e.Trace.board = Some 1 && e.Trace.corr = corr)
      merged
  in
  let req =
    match
      List.find_opt (fun (e : Trace.event) -> e.Trace.dir = Trace.Egress) journey
    with
    | Some e -> e
    | None -> Alcotest.fail "no egress under the caller's corr"
  in
  let rsp =
    match
      List.find_opt
        (fun (e : Trace.event) ->
          e.Trace.dir = Trace.Ingress && e.Trace.tile = !caller_tile)
        journey
    with
    | Some e -> e
    | None -> Alcotest.fail "no reply ingress under the caller's corr"
  in
  Alcotest.(check bool) "request precedes reply" true
    (req.Trace.cycle < rsp.Trace.cycle);
  (* The far board serves the forwarded request under its own corr,
     inside the caller's request/reply window. *)
  let served =
    List.filter
      (fun (e : Trace.event) ->
        e.Trace.board = Some 0 && e.Trace.corr > 0
        && e.Trace.cycle > req.Trace.cycle
        && e.Trace.cycle < rsp.Trace.cycle)
      merged
  in
  Alcotest.(check bool) "board 0 served inside the window" true (served <> [])

(* ------------------------------------------------------------------ *)
(* Failover: kill, reshard onto survivors, recover by re-registration *)

let test_cluster_failover_and_reregistration () =
  let sim = Sim.create () in
  let cluster = Cluster.create sim ~boards:2 ~client_ports:2 in
  for bd = 0 to 1 do
    ignore
      (Cluster.install cluster ~board:bd ~service:"mirror"
         (Accels.echo ~service:"mirror" ()))
  done;
  let client =
    Shard_client.create cluster ~timeout:15_000 ~service:"mirror"
      ~op:Accels.op_echo ~route:Shard_client.By_key
      ~gen:(fun n -> (Printf.sprintf "key-%04d" (n mod 64), b "ping"))
  in
  Sim.after sim 1_000 (fun () -> Shard_client.start client ~concurrency:4);
  Sim.after sim 60_000 (fun () -> Cluster.kill cluster ~board:1);
  Sim.run_for sim 160_000;
  let completed_mid = Shard_client.completed client in
  Alcotest.(check bool) "timeouts detected the dead board" true
    (Shard_client.failovers client > 0);
  Alcotest.(check (list int)) "resharded onto the survivor" [ 0 ]
    (Shard_client.live_boards client);
  Alcotest.(check int) "directory dropped the dead board" 1
    (List.length (Directory.replicas (Cluster.directory cluster) "mirror"));
  (* Board comes back: re-registration re-admits it everywhere. *)
  Cluster.restore cluster ~board:1;
  Sim.run_for sim 100_000;
  Alcotest.(check (list int)) "ring re-admitted the board" [ 0; 1 ]
    (Shard_client.live_boards client);
  Alcotest.(check int) "directory re-registered" 2
    (List.length (Directory.replicas (Cluster.directory cluster) "mirror"));
  Shard_client.stop client;
  Alcotest.(check bool) "service continued throughout" true
    (Shard_client.completed client > completed_mid);
  Alcotest.(check bool) "board up again" true
    (Node.up (Cluster.node cluster 1))

let () =
  Alcotest.run "cluster"
    [
      ( "directory",
        [
          Alcotest.test_case "local hit" `Quick test_directory_local_hit;
          Alcotest.test_case "remote hit + cache" `Quick
            test_directory_remote_hit_and_cache;
          Alcotest.test_case "stale-route invalidation" `Quick
            test_directory_stale_route_invalidation;
          Alcotest.test_case "announce delay visibility" `Quick
            test_directory_announce_delay;
          Alcotest.test_case "cross-partition write asserts" `Quick
            test_directory_cross_partition_assert;
        ] );
      ( "shard",
        [
          Alcotest.test_case "spreads keys" `Quick test_shard_spreads_keys;
          Alcotest.test_case "stable under leave/join" `Quick
            test_shard_stability_under_leave_join;
          Alcotest.test_case "round-robin skips dead" `Quick
            test_shard_rr_skips_dead;
        ] );
      ( "invocation",
        [
          Alcotest.test_case "local and remote calls" `Quick
            test_cluster_local_and_remote_call;
          Alcotest.test_case "merged trace corr reconstruction" `Quick
            test_cluster_merged_trace_corr_reconstruction;
        ] );
      ( "failover",
        [
          Alcotest.test_case "kill, reshard, re-register" `Quick
            test_cluster_failover_and_reregistration;
        ] );
    ]
