(* Tests for the capability system: rights lattice, minting, attenuation,
   cross-store grants, cascading revocation, handle staleness, and the
   access checks the monitor relies on. *)

module Rights = Apiary_cap.Rights
module Store = Apiary_cap.Store

let ok_exn = function Ok v -> v | Error e -> Alcotest.failf "unexpected error: %s" (Store.error_to_string e)
let err_exn = function Error e -> e | Ok _ -> Alcotest.fail "expected error"

let err =
  Alcotest.testable
    (fun ppf e -> Format.pp_print_string ppf (Store.error_to_string e))
    ( = )

(* ------------------------------------------------------------------ *)
(* Rights *)

let test_rights_subset () =
  Alcotest.(check bool) "ro <= full" true (Rights.subset Rights.ro Rights.full);
  Alcotest.(check bool) "full </= ro" false (Rights.subset Rights.full Rights.ro);
  Alcotest.(check bool) "none <= everything" true (Rights.subset Rights.none Rights.ro);
  Alcotest.(check bool) "reflexive" true (Rights.subset Rights.rw Rights.rw)

let test_rights_inter () =
  let i = Rights.inter Rights.rw Rights.ro in
  Alcotest.(check bool) "inter = ro" true (Rights.equal i Rights.ro)

let prop_rights_inter_lower_bound =
  let gen =
    QCheck.make
      (QCheck.Gen.map
         (fun (r, w, g) -> { Rights.read = r; write = w; grant = g })
         QCheck.Gen.(triple bool bool bool))
  in
  QCheck.Test.make ~name:"inter is a lower bound" ~count:100 (QCheck.pair gen gen)
    (fun (a, b) ->
      let i = Rights.inter a b in
      Rights.subset i a && Rights.subset i b)

(* ------------------------------------------------------------------ *)
(* Store basics *)

let seg base len = Store.Segment { base; len }
let ep tile endpoint = Store.Endpoint { tile; endpoint }

let test_mint_and_inspect () =
  let s = Store.create ~tile:0 () in
  let h = ok_exn (Store.mint s (seg 0x1000 256) Rights.rw) in
  let tgt, r = ok_exn (Store.inspect s h) in
  Alcotest.(check bool) "target" true (tgt = seg 0x1000 256);
  Alcotest.(check bool) "rights" true (Rights.equal r Rights.rw);
  Alcotest.(check int) "live" 1 (Store.live s)

let test_invalid_handle () =
  let s = Store.create ~tile:0 () in
  Alcotest.check err "bogus handle" Store.Invalid_handle
    (err_exn (Store.inspect s 12345))

let test_capacity_exhaustion () =
  let s = Store.create ~capacity:4 ~tile:0 () in
  for _ = 1 to 4 do
    ignore (ok_exn (Store.mint s (seg 0 16) Rights.ro))
  done;
  Alcotest.check err "table full" Store.Invalid_handle
    (err_exn (Store.mint s (seg 0 16) Rights.ro))

let test_slot_reuse_after_revoke () =
  let s = Store.create ~capacity:2 ~tile:0 () in
  let h = ok_exn (Store.mint s (seg 0 16) Rights.full) in
  ignore (ok_exn (Store.revoke s h));
  (* Slot freed: minting works again, but the old handle must stay dead. *)
  let h2 = ok_exn (Store.mint s (seg 32 16) Rights.full) in
  Alcotest.check err "stale handle rejected" Store.Invalid_handle
    (err_exn (Store.inspect s h));
  ignore (ok_exn (Store.inspect s h2))

(* ------------------------------------------------------------------ *)
(* Derivation / attenuation *)

let test_derive_attenuates () =
  let s = Store.create ~tile:0 () in
  let h = ok_exn (Store.mint s (seg 0x1000 256) Rights.full) in
  let child = ok_exn (Store.derive s ~parent:h ~rights:Rights.ro ()) in
  let _, r = ok_exn (Store.inspect s child) in
  Alcotest.(check bool) "child is ro" true (Rights.equal r Rights.ro)

let test_derive_cannot_amplify () =
  let s = Store.create ~tile:0 () in
  let h = ok_exn (Store.mint s (seg 0 64) { Rights.read = true; write = false; grant = true }) in
  Alcotest.check err "no amplification" Store.Rights_exceeded
    (err_exn (Store.derive s ~parent:h ~rights:Rights.rw ()))

let test_derive_needs_grant () =
  let s = Store.create ~tile:0 () in
  let h = ok_exn (Store.mint s (seg 0 64) Rights.rw) in
  Alcotest.check err "no grant right" Store.Not_grantable
    (err_exn (Store.derive s ~parent:h ~rights:Rights.ro ()))

let test_derive_subrange () =
  let s = Store.create ~tile:0 () in
  let h = ok_exn (Store.mint s (seg 0x1000 256) Rights.full) in
  let child = ok_exn (Store.derive s ~parent:h ~rights:Rights.rw ~sub:(64, 64) ()) in
  let tgt, _ = ok_exn (Store.inspect s child) in
  Alcotest.(check bool) "narrowed" true (tgt = seg (0x1000 + 64) 64)

let test_derive_subrange_oob () =
  let s = Store.create ~tile:0 () in
  let h = ok_exn (Store.mint s (seg 0x1000 256) Rights.full) in
  Alcotest.check err "oob subrange" Store.Bounds
    (err_exn (Store.derive s ~parent:h ~rights:Rights.rw ~sub:(200, 100) ()))

let test_derive_sub_on_endpoint () =
  let s = Store.create ~tile:0 () in
  let h = ok_exn (Store.mint s (ep 3 1) Rights.full) in
  Alcotest.check err "sub on endpoint" Store.Wrong_type
    (err_exn (Store.derive s ~parent:h ~rights:Rights.send ~sub:(0, 1) ()))

let prop_derivation_chain_monotone =
  (* Along any random derivation chain, rights only shrink and segment
     ranges only narrow. *)
  QCheck.Test.make ~name:"derivation chains are monotone" ~count:100
    QCheck.(small_list (pair (int_bound 2) (int_bound 2)))
    (fun choices ->
      let s = Store.create ~tile:0 () in
      let root = ok_exn (Store.mint s (seg 0 1024) Rights.full) in
      let rights_of i =
        match i with 0 -> Rights.full | 1 -> Rights.rw | _ -> Rights.ro
      in
      let rec walk h (tgt, r) = function
        | [] -> true
        | (ri, si) :: rest ->
          let want = rights_of ri in
          let sub = if si = 0 then None else Some (0, 16) in
          (match Store.derive s ~parent:h ~rights:want ?sub () with
          | Error _ -> true  (* rejection is always sound *)
          | Ok child ->
            let ctgt, cr = ok_exn (Store.inspect s child) in
            let rights_ok = Rights.subset cr r in
            let range_ok =
              match (tgt, ctgt) with
              | Store.Segment a, Store.Segment b ->
                b.base >= a.base && b.base + b.len <= a.base + a.len
              | _ -> false
            in
            rights_ok && range_ok && walk child (ctgt, cr) rest)
      in
      walk root (ok_exn (Store.inspect s root)) choices)

(* ------------------------------------------------------------------ *)
(* Grants & revocation *)

let test_grant_cross_store () =
  let a = Store.create ~tile:0 () and b = Store.create ~tile:1 () in
  let h = ok_exn (Store.mint a (seg 0x2000 128) Rights.full) in
  let hb = ok_exn (Store.grant ~src:a ~dst:b ~parent:h ~rights:Rights.ro) in
  ignore (ok_exn (Store.check_mem b hb ~addr:0x2000 ~len:8 ~write:false));
  Alcotest.(check int) "b has one cap" 1 (Store.live b)

let test_revoke_cascades_cross_store () =
  let a = Store.create ~tile:0 () and b = Store.create ~tile:1 () in
  let h = ok_exn (Store.mint a (seg 0x2000 128) Rights.full) in
  let hb = ok_exn (Store.grant ~src:a ~dst:b ~parent:h ~rights:Rights.ro) in
  let n = ok_exn (Store.revoke a h) in
  Alcotest.(check int) "two revoked" 2 n;
  Alcotest.check err "grantee dead" Store.Invalid_handle
    (err_exn (Store.check_mem b hb ~addr:0x2000 ~len:8 ~write:false))

let test_revoke_deep_chain () =
  let s = Store.create ~tile:0 () in
  let root = ok_exn (Store.mint s (seg 0 4096) Rights.full) in
  let rec chain h n acc =
    if n = 0 then List.rev acc
    else
      let c = ok_exn (Store.derive s ~parent:h ~rights:Rights.full ()) in
      chain c (n - 1) (c :: acc)
  in
  let descendants = chain root 10 [] in
  let n = ok_exn (Store.revoke s root) in
  Alcotest.(check int) "11 revoked" 11 n;
  List.iter
    (fun h ->
      Alcotest.check err "descendant dead" Store.Invalid_handle
        (err_exn (Store.inspect s h)))
    descendants;
  Alcotest.(check int) "store empty" 0 (Store.live s)

let test_revoke_child_then_parent () =
  (* Independently revoking a child then the parent must not double-free
     or touch an unrelated cap that reused the slot. *)
  let s = Store.create ~tile:0 () in
  let root = ok_exn (Store.mint s (seg 0 4096) Rights.full) in
  let child = ok_exn (Store.derive s ~parent:root ~rights:Rights.rw ()) in
  ignore (ok_exn (Store.revoke s child));
  let innocent = ok_exn (Store.mint s (seg 8192 64) Rights.rw) in
  let n = ok_exn (Store.revoke s root) in
  Alcotest.(check int) "only root revoked now" 1 n;
  ignore (ok_exn (Store.inspect s innocent))

(* ------------------------------------------------------------------ *)
(* Access checks *)

let test_check_send () =
  let s = Store.create ~tile:0 () in
  let h = ok_exn (Store.mint s (ep 5 2) Rights.send) in
  ignore (ok_exn (Store.check_send s h ~tile:5 ~endpoint:2));
  Alcotest.check err "wrong dst" Store.Bounds
    (err_exn (Store.check_send s h ~tile:5 ~endpoint:3));
  Alcotest.check err "wrong tile" Store.Bounds
    (err_exn (Store.check_send s h ~tile:6 ~endpoint:2))

let test_check_send_on_segment () =
  let s = Store.create ~tile:0 () in
  let h = ok_exn (Store.mint s (seg 0 64) Rights.rw) in
  Alcotest.check err "segment is not endpoint" Store.Wrong_type
    (err_exn (Store.check_send s h ~tile:0 ~endpoint:0))

let test_check_mem_bounds_and_rights () =
  let s = Store.create ~tile:0 () in
  let h = ok_exn (Store.mint s (seg 0x1000 256) Rights.ro) in
  ignore (ok_exn (Store.check_mem s h ~addr:0x1000 ~len:256 ~write:false));
  Alcotest.check err "write to ro" Store.Rights_exceeded
    (err_exn (Store.check_mem s h ~addr:0x1000 ~len:8 ~write:true));
  Alcotest.check err "below" Store.Bounds
    (err_exn (Store.check_mem s h ~addr:0xFFF ~len:8 ~write:false));
  Alcotest.check err "beyond" Store.Bounds
    (err_exn (Store.check_mem s h ~addr:0x1000 ~len:257 ~write:false));
  Alcotest.check err "negative len" Store.Bounds
    (err_exn (Store.check_mem s h ~addr:0x1000 ~len:(-1) ~write:false))

let prop_check_mem_never_escapes =
  (* Whatever accesses are attempted through a narrowed child cap, none
     outside the child window ever passes. *)
  QCheck.Test.make ~name:"narrowed cap confines accesses" ~count:200
    QCheck.(triple (int_bound 512) (int_bound 512) (int_bound 600))
    (fun (off, len, addr_off) ->
      let s = Store.create ~tile:0 () in
      let root = ok_exn (Store.mint s (seg 0 1024) Rights.full) in
      match Store.derive s ~parent:root ~rights:Rights.rw ~sub:(off, len) () with
      | Error _ -> true
      | Ok child ->
        let addr = addr_off and alen = 8 in
        (match Store.check_mem s child ~addr ~len:alen ~write:true with
        | Ok () -> addr >= off && addr + alen <= off + len
        | Error _ -> not (addr >= off && addr + alen <= off + len)))

let qc = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "cap"
    [
      ( "rights",
        [
          Alcotest.test_case "subset" `Quick test_rights_subset;
          Alcotest.test_case "inter" `Quick test_rights_inter;
          qc prop_rights_inter_lower_bound;
        ] );
      ( "store",
        [
          Alcotest.test_case "mint+inspect" `Quick test_mint_and_inspect;
          Alcotest.test_case "invalid handle" `Quick test_invalid_handle;
          Alcotest.test_case "capacity" `Quick test_capacity_exhaustion;
          Alcotest.test_case "slot reuse" `Quick test_slot_reuse_after_revoke;
        ] );
      ( "derive",
        [
          Alcotest.test_case "attenuates" `Quick test_derive_attenuates;
          Alcotest.test_case "no amplification" `Quick test_derive_cannot_amplify;
          Alcotest.test_case "needs grant" `Quick test_derive_needs_grant;
          Alcotest.test_case "subrange" `Quick test_derive_subrange;
          Alcotest.test_case "subrange oob" `Quick test_derive_subrange_oob;
          Alcotest.test_case "sub on endpoint" `Quick test_derive_sub_on_endpoint;
          qc prop_derivation_chain_monotone;
        ] );
      ( "revoke",
        [
          Alcotest.test_case "cross-store grant" `Quick test_grant_cross_store;
          Alcotest.test_case "cascade cross-store" `Quick test_revoke_cascades_cross_store;
          Alcotest.test_case "deep chain" `Quick test_revoke_deep_chain;
          Alcotest.test_case "child then parent" `Quick test_revoke_child_then_parent;
        ] );
      ( "checks",
        [
          Alcotest.test_case "send" `Quick test_check_send;
          Alcotest.test_case "send on segment" `Quick test_check_send_on_segment;
          Alcotest.test_case "mem bounds+rights" `Quick test_check_mem_bounds_and_rights;
          qc prop_check_mem_never_escapes;
        ] );
    ]
