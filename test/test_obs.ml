(* Tests for the telemetry layer (lib/obs): the span recorder's
   enable/reset/capacity discipline, the metrics registry, the JSON
   exporters, and the end-to-end acceptance capture — one cross-board
   KV call reconstructing as a corr-keyed span tree that spans the
   caller, both boards and the ToR switch, with per-hop NoC children,
   exported byte-stably. *)

module Sim = Apiary_engine.Sim
module Stats = Apiary_engine.Stats
module Span = Apiary_obs.Span
module Registry = Apiary_obs.Registry
module Export = Apiary_obs.Export
module Shell = Apiary_core.Shell
module Kv = Apiary_accel.Kv
module Cluster = Apiary_cluster.Cluster

(* The recorder and registry are process-global; every test leaves them
   disabled and empty. *)
let contains s sub =
  let n = String.length sub in
  let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
  go 0

let with_spans f =
  Span.reset ();
  Span.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Span.set_enabled false;
      Span.reset ())
    f

(* ------------------------------------------------------------------ *)
(* Span recorder *)

let test_span_disabled_is_noop () =
  Span.set_enabled false;
  Span.reset ();
  let sid = Span.start ~cat:"t" ~name:"x" ~track:0 ~ts:1 () in
  Span.instant ~cat:"t" ~name:"y" ~track:0 ~ts:2 ();
  Span.complete ~cat:"t" ~name:"z" ~track:0 ~ts:3 ~dur:4 ();
  Span.finish ~ts:9 sid;
  Alcotest.(check int) "nothing recorded" 0 (Span.count ());
  Alcotest.(check bool) "start returned null" true (sid = Span.null)

let test_span_start_finish () =
  with_spans (fun () ->
      let sid =
        Span.start ~board:2 ~corr:7
          ~args:[ ("k", "v") ]
          ~cat:"monitor" ~name:"rpc" ~track:3 ~ts:10 ()
      in
      Span.finish ~args:[ ("status", "ok") ] ~ts:25 sid;
      match Span.events () with
      | [ e ] ->
        Alcotest.(check int) "dur" 15 e.Span.dur;
        Alcotest.(check int) "board" 2 e.Span.board;
        Alcotest.(check int) "corr" 7 e.Span.corr;
        Alcotest.(check (list (pair string string)))
          "args appended"
          [ ("k", "v"); ("status", "ok") ]
          e.Span.args
      | l -> Alcotest.failf "want 1 event, got %d" (List.length l))

let test_span_open_until_finished () =
  with_spans (fun () ->
      let sid = Span.start ~cat:"c" ~name:"open" ~track:0 ~ts:5 () in
      (match Span.events () with
      | [ e ] -> Alcotest.(check int) "open dur is -1" (-1) e.Span.dur
      | l -> Alcotest.failf "want 1 event, got %d" (List.length l));
      (* Closing must still work after capture is turned off: late
         callbacks close spans opened while recording. *)
      Span.set_enabled false;
      Span.finish ~ts:11 sid;
      match Span.events () with
      | [ e ] -> Alcotest.(check int) "closed late" 6 e.Span.dur
      | l -> Alcotest.failf "want 1 event, got %d" (List.length l))

let test_span_reset_invalidates_ids () =
  with_spans (fun () ->
      let sid = Span.start ~cat:"c" ~name:"stale" ~track:0 ~ts:1 () in
      Span.reset ();
      Span.finish ~ts:50 sid;  (* must not touch the fresh store *)
      Alcotest.(check int) "store empty after reset" 0 (Span.count ());
      Span.instant ~cat:"c" ~name:"fresh" ~track:0 ~ts:2 ();
      match Span.events () with
      | [ e ] -> Alcotest.(check string) "fresh event intact" "fresh" e.Span.name
      | l -> Alcotest.failf "want 1 event, got %d" (List.length l))

let test_span_capacity_drops () =
  with_spans (fun () ->
      Fun.protect
        ~finally:(fun () -> Span.set_capacity 1_048_576)
        (fun () ->
          Span.set_capacity 4;
          for i = 1 to 6 do
            Span.instant ~cat:"c" ~name:"e" ~track:0 ~ts:i ()
          done;
          Alcotest.(check int) "retained at cap" 4 (Span.count ());
          Alcotest.(check int) "overflow counted" 2 (Span.dropped ())))

(* ------------------------------------------------------------------ *)
(* Registry *)

let test_registry_get_or_create () =
  Registry.clear ();
  let c1 = Registry.counter "a.count" in
  Stats.Counter.incr c1;
  Alcotest.(check bool) "same instrument back" true
    (Registry.counter "a.count" == c1);
  Alcotest.(check int) "state survives" 1
    (Stats.Counter.value (Registry.counter "a.count"));
  (match Registry.gauge "a.count" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "kind mismatch must raise");
  Registry.clear ()

let test_registry_sampler_replace () =
  Registry.clear ();
  let hits = ref 0 in
  Registry.add_sampler ~name:"s" (fun () -> hits := !hits + 100);
  Registry.add_sampler ~name:"s" (fun () -> incr hits);
  ignore (Registry.snapshot ());
  Alcotest.(check int) "only the replacement ran" 1 !hits;
  Registry.clear ()

let test_registry_reset_resets_gauges () =
  Registry.clear ();
  let g = Registry.gauge "g" in
  Stats.Gauge.set g 5.0;
  Stats.Gauge.set g 9.0;
  let h = Registry.histogram "h" in
  Stats.Histogram.record h 42;
  Registry.reset ();
  Alcotest.(check (float 0.0)) "gauge value zeroed" 0.0 (Stats.Gauge.value g);
  Alcotest.(check int) "histogram emptied" 0 (Stats.Histogram.count h);
  (* Gauge.reset must also forget the min/max watermarks. *)
  Stats.Gauge.set g 2.0;
  Alcotest.(check (float 0.0)) "min restarts" 2.0 (Stats.Gauge.min g);
  Alcotest.(check (float 0.0)) "max restarts" 2.0 (Stats.Gauge.max g);
  Registry.clear ()

let test_registry_snapshot_sorted () =
  Registry.clear ();
  ignore (Registry.counter "z");
  ignore (Registry.counter "a");
  ignore (Registry.gauge "m");
  let names = List.map fst (Registry.snapshot ()) in
  (* The built-in obs.span sampler contributes its three gauges even
     after clear; everything still comes back alphabetical. *)
  Alcotest.(check (list string)) "alphabetical"
    [
      "a"; "m"; "obs.span.dropped"; "obs.span.events"; "obs.span.sampled"; "z";
    ]
    names;
  Registry.clear ()

(* ------------------------------------------------------------------ *)
(* Export *)

let test_export_escapes_and_sorts () =
  with_spans (fun () ->
      Span.instant ~cat:"c" ~name:"later" ~track:0 ~ts:9 ();
      Span.instant
        ~args:[ ("msg", "a\"b\nc\\d") ]
        ~cat:"c" ~name:"earlier" ~track:0 ~ts:3 ();
      let s = Export.chrome_trace_string (Span.events ()) in
      let idx sub =
        let n = String.length sub in
        let rec go i =
          if i + n > String.length s then
            Alcotest.failf "missing %S in export" sub
          else if String.sub s i n = sub then i
          else go (i + 1)
        in
        go 0
      in
      Alcotest.(check bool) "sorted by ts" true
        (idx "\"earlier\"" < idx "\"later\"");
      ignore (idx "\"msg\":\"a\\\"b\\nc\\\\d\"");
      ignore (idx "\"traceEvents\""))

let test_export_byte_stable () =
  with_spans (fun () ->
      Span.complete ~board:1 ~corr:3 ~cat:"noc" ~name:"hop" ~track:2 ~ts:10
        ~dur:4 ();
      let evs = Span.events () in
      Alcotest.(check string) "same list renders identically"
        (Export.chrome_trace_string evs)
        (Export.chrome_trace_string evs))

let test_export_empty_capture () =
  (* No spans at all is a legal capture: the export is still one valid,
     well-formed document with an empty event array and no truncation
     marker. *)
  let s = Export.chrome_trace_string [] in
  Alcotest.(check bool) "has traceEvents" true
    (contains s "\"traceEvents\"");
  Alcotest.(check bool) "no truncation marker" false
    (contains s "trace_truncated");
  Alcotest.(check string) "byte stable" s (Export.chrome_trace_string [])

let test_export_truncation_marker () =
  with_spans (fun () ->
      Span.instant ~cat:"c" ~name:"x" ~track:0 ~ts:1 ();
      let evs = Span.events () in
      (* dropped = 0 is a complete capture: stamping it as truncated
         would cry wolf on every artifact. *)
      Alcotest.(check bool) "absent when dropped = 0" false
        (contains (Export.chrome_trace_string ~dropped:0 evs)
           "trace_truncated");
      let s = Export.chrome_trace_string ~dropped:7 evs in
      Alcotest.(check bool) "present when dropped > 0" true
        (contains s "trace_truncated");
      Alcotest.(check bool) "carries the count" true
        (contains s "{\"dropped\":\"7\"}"))

let test_export_metrics_json () =
  Registry.clear ();
  Stats.Counter.add (Registry.counter "c") 3;
  Stats.Gauge.set (Registry.gauge "g") 1.5;
  Stats.Gauge.set (Registry.gauge "weird") Float.nan;
  ignore (Registry.histogram "h");  (* empty: max must render as 0 *)
  let s = Export.metrics_json_string (Registry.snapshot ()) in
  let has sub =
    let n = String.length sub in
    let rec go i =
      i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
    in
    if not (go 0) then Alcotest.failf "missing %S in %s" sub s
  in
  has "\"c\":{\"type\":\"counter\",\"value\":3}";
  has "\"value\":1.5";
  has "\"count\":0";
  has "null";  (* NaN gauge must not emit invalid JSON *)
  Registry.clear ()

(* ------------------------------------------------------------------ *)
(* Acceptance: one cross-board KV call as a corr-keyed span tree *)

let run_call_capture () =
  Span.reset ();
  Span.set_enabled true;
  let sim = Sim.create () in
  let cluster = Cluster.create sim ~boards:2 ~client_ports:1 in
  ignore
    (Cluster.install cluster ~board:0 ~service:"kv" (fst (Kv.behavior ())));
  let ok = ref false in
  let caller =
    Shell.behavior "caller" ~on_boot:(fun sh ->
        Sim.after (Shell.sim sh) 2_000 (fun () ->
            Cluster.connect cluster ~board:1 sh ~service:"kv" (fun r ->
                match r with
                | Error _ -> ()
                | Ok target ->
                  Cluster.call cluster ~board:1 sh target ~op:Kv.Proto.opcode
                    (Kv.Proto.encode_req (Kv.Proto.Put ("k1", Bytes.make 32 'v')))
                    (fun r -> ok := Result.is_ok r))))
  in
  ignore (Cluster.install cluster ~board:1 caller);
  Sim.run_for sim 60_000;
  Span.set_enabled false;
  let evs = Span.events () in
  Span.reset ();
  (!ok, evs)

let test_cross_board_span_tree () =
  let ok, evs = run_call_capture () in
  Alcotest.(check bool) "call completed" true ok;
  let one ~board ~cat ~name =
    match
      List.filter
        (fun (e : Span.event) ->
          e.Span.board = board && e.Span.cat = cat && e.Span.name = name
          && e.Span.ts >= 2_000)
        evs
    with
    | [ e ] -> e
    | l ->
      Alcotest.failf "want 1 %s/%s on board %d, got %d" cat name board
        (List.length l)
  in
  (* Root: the caller's location-transparent invocation on board 1. *)
  let call = one ~board:1 ~cat:"cluster" ~name:"call" in
  Alcotest.(check (option string)) "call ok" (Some "ok")
    (List.assoc_opt "status" call.Span.args);
  (* Child: the netsvc leg, keyed by the caller's corr id; its req_id
     argument is the cross-board join key. *)
  let remote = one ~board:1 ~cat:"net" ~name:"remote" in
  Alcotest.(check bool) "remote corr-keyed" true (remote.Span.corr > 0);
  Alcotest.(check bool) "remote nested in call" true
    (call.Span.ts <= remote.Span.ts
    && remote.Span.ts + remote.Span.dur <= call.Span.ts + call.Span.dur);
  let req_id =
    match List.assoc_opt "req_id" remote.Span.args with
    | Some r -> r
    | None -> Alcotest.fail "remote span carries no req_id"
  in
  (* The same corr groups the caller-side monitor RPC and its per-hop
     NoC children on board 1. *)
  let by_corr cat =
    List.filter
      (fun (e : Span.event) ->
        e.Span.board = 1 && e.Span.cat = cat && e.Span.corr = remote.Span.corr)
      evs
  in
  Alcotest.(check bool) "caller monitor rpc under same corr" true
    (by_corr "monitor" <> []);
  Alcotest.(check bool) "per-hop NoC children under same corr" true
    (List.exists (fun (e : Span.event) -> e.Span.name = "hop") (by_corr "noc"));
  (* The wire hop: a rack-level (board -1) ToR switch span between the
     two boards. *)
  let tor =
    List.filter
      (fun (e : Span.event) ->
        e.Span.board = -1 && e.Span.cat = "switch" && e.Span.ts >= 2_000)
      evs
  in
  Alcotest.(check bool) "ToR switch span present" true (tor <> []);
  (* Far side: board 0 serves the same req_id, inside the remote leg's
     window, with its own fabric RPC and NoC hops. *)
  let serve = one ~board:0 ~cat:"net" ~name:"serve" in
  Alcotest.(check (option string)) "req_id joins the boards" (Some req_id)
    (List.assoc_opt "req_id" serve.Span.args);
  Alcotest.(check bool) "serve inside the remote window" true
    (remote.Span.ts <= serve.Span.ts
    && serve.Span.ts + serve.Span.dur <= remote.Span.ts + remote.Span.dur);
  let served_hops =
    List.filter
      (fun (e : Span.event) ->
        e.Span.board = 0 && e.Span.cat = "noc" && e.Span.name = "hop"
        && e.Span.corr > 0
        && e.Span.ts >= serve.Span.ts
        && e.Span.ts <= serve.Span.ts + serve.Span.dur)
      evs
  in
  Alcotest.(check bool) "serving board has per-hop NoC spans" true
    (served_hops <> [])

let test_capture_byte_stable_across_runs () =
  let _, evs1 = run_call_capture () in
  let _, evs2 = run_call_capture () in
  let s1 = Export.chrome_trace_string evs1 in
  let s2 = Export.chrome_trace_string evs2 in
  Alcotest.(check bool) "export is non-trivial" true (String.length s1 > 1000);
  Alcotest.(check string) "two fixed-seed captures export identically" s1 s2

(* ------------------------------------------------------------------ *)
(* Series: windowed rollups *)

module Series = Apiary_obs.Series
module Slo = Apiary_obs.Slo
module Critical_path = Apiary_obs.Critical_path

(* Random streams of (cycle-gap, value) samples against random window
   widths and ring capacities: nothing is ever lost — whatever the ring
   evicts folds into the evicted aggregate, so

     evicted + sum-of-ring + open = whole-run totals

   holds exactly for counts and sums, and the ring never exceeds its
   capacity. *)
let series_stream_gen =
  QCheck.Gen.(
    triple (int_range 1 50) (int_range 1 8)
      (list_size (int_range 0 200) (pair (int_range 0 30) (int_range 0 100))))

let prop_series_conservation =
  QCheck.Test.make ~name:"series conservation" ~count:200
    (QCheck.make series_stream_gen)
    (fun (window, capacity, stream) ->
      let s = Series.create ~capacity ~window () in
      let now = ref 0 in
      List.iter
        (fun (dt, v) ->
          now := !now + dt;
          Series.observe s ~now:!now "m" v)
        stream;
      let ring f = List.fold_left (fun a r -> a + f r) 0 (Series.rollups s "m") in
      let _, ec, _ = Series.evicted s "m" in
      let mid_run =
        Series.total_count s "m"
        = ec + ring (fun r -> r.Series.r_count) + Series.open_count s "m"
      in
      (* Close everything out: the open window empties and conservation
         must hold with sums too. *)
      Series.close_upto s (!now + window);
      let _, ec', es' = Series.evicted s "m" in
      mid_run
      && Series.open_count s "m" = 0
      && Series.total_count s "m" = ec' + ring (fun r -> r.Series.r_count)
      && Series.total_sum s "m" = es' + ring (fun r -> r.Series.r_sum)
      && List.length (Series.rollups s "m") <= capacity)

let test_series_grid_and_json () =
  let mk () =
    let s = Series.create ~capacity:4 ~window:100 () in
    List.iter
      (fun (now, v) -> Series.observe s ~now "lat" v)
      [ (10, 5); (20, 7); (150, 9); (430, 1); (900, 2); (901, 40) ];
    Series.close_upto s 1_000;
    s
  in
  let s = mk () in
  let rs = Series.rollups s "lat" in
  Alcotest.(check bool) "ring bounded" true (List.length rs <= 4);
  List.iter
    (fun (r : Series.rollup) ->
      Alcotest.(check int) "grid-aligned" 0 (r.Series.r_start mod 100))
    rs;
  (match rs with
  | a :: b :: _ ->
    Alcotest.(check int) "contiguous (empty windows included)" 100
      (b.Series.r_start - a.Series.r_start)
  | _ -> Alcotest.fail "expected several retained windows");
  let busy =
    List.find (fun (r : Series.rollup) -> r.Series.r_start = 900) rs
  in
  Alcotest.(check int) "window count" 2 busy.Series.r_count;
  Alcotest.(check int) "window sum" 42 busy.Series.r_sum;
  Alcotest.(check int) "window min" 2 busy.Series.r_min;
  Alcotest.(check int) "window max" 40 busy.Series.r_max;
  Alcotest.(check bool) "percentiles monotone" true
    (busy.Series.r_p50 <= busy.Series.r_p90
    && busy.Series.r_p90 <= busy.Series.r_p99
    && busy.Series.r_p99 <= busy.Series.r_p999);
  Alcotest.(check string) "json byte-stable" (Series.json_string (mk ()))
    (Series.json_string s)

(* ------------------------------------------------------------------ *)
(* Span sampling *)

let test_sampling_deterministic () =
  let capture () =
    with_spans (fun () ->
        Span.set_sampling ~head_mod:4 ~slow_cycles:500 ();
        Fun.protect
          ~finally:(fun () -> Span.set_sampling ())
          (fun () ->
            for c = 1 to 200 do
              let sid =
                Span.start ~corr:c ~cat:"t" ~name:"rpc" ~track:0 ~ts:(c * 10) ()
              in
              Span.finish ~ts:((c * 10) + (c mod 7)) sid
            done;
            ( Span.count (),
              Span.sampled (),
              Export.chrome_trace_string (Span.events ()) )))
  in
  let kept1, away1, s1 = capture () in
  let kept2, _, s2 = capture () in
  Alcotest.(check bool) "head sampling keeps a strict subset" true
    (kept1 > 0 && kept1 < 200);
  Alcotest.(check int) "kept + sampled = offered" 200 (kept1 + away1);
  Alcotest.(check int) "deterministic kept count" kept1 kept2;
  Alcotest.(check string) "byte-identical capture" s1 s2

(* With an astronomically sparse head (keep ~1 corr in 10^6), only the
   tail rules retain anything: slowness, an alarm-family name, or a
   non-ok status. *)
let test_sampling_tail_keep () =
  with_spans (fun () ->
      Span.set_sampling ~head_mod:1_000_003 ~slow_cycles:1_000 ();
      Fun.protect
        ~finally:(fun () -> Span.set_sampling ())
        (fun () ->
          Span.complete ~corr:5 ~cat:"t" ~name:"rpc" ~track:0 ~ts:10 ~dur:5 ();
          Alcotest.(check int) "fast ok span sampled away" 0 (Span.count ());
          Alcotest.(check int) "sampled counter ticks" 1 (Span.sampled ());
          Span.complete ~corr:5 ~cat:"t" ~name:"rpc" ~track:0 ~ts:20 ~dur:2_000
            ();
          Alcotest.(check int) "slow span tail-kept" 1 (Span.count ());
          Span.instant ~corr:5 ~cat:"mon" ~name:"timeout" ~track:0 ~ts:30 ();
          Alcotest.(check int) "alarm name tail-kept" 2 (Span.count ());
          Span.complete ~corr:5
            ~args:[ ("status", "err") ]
            ~cat:"t" ~name:"rpc" ~track:0 ~ts:40 ~dur:3 ();
          Alcotest.(check int) "error status tail-kept" 3 (Span.count ());
          (* A head-dropped open span parks until finish decides. *)
          let sid = Span.start ~corr:5 ~cat:"t" ~name:"rpc" ~track:0 ~ts:50 () in
          Alcotest.(check int) "open span parked, not recorded" 3 (Span.count ());
          Span.finish ~ts:2_000 sid;
          Alcotest.(check int) "parked span promoted when slow" 4 (Span.count ());
          Span.complete ~corr:0 ~cat:"t" ~name:"rpc" ~track:0 ~ts:60 ~dur:1 ();
          Alcotest.(check int) "uncorrelated spans always kept" 5 (Span.count ())))

(* ------------------------------------------------------------------ *)
(* SLO burn-rate alerting *)

let mk_slo () =
  Slo.create
    (Slo.default_objective ~target_pct:99.0 ~window:100 ~fast_windows:2
       ~slow_windows:12 ~page_burn:8.0 ~ticket_burn:2.0 ~min_samples:5
       ~tenant:"t" ~latency_cycles:1_000 ())

(* 1000 good requests build up budget, then a total outage burns it:
   the fast-window page fires at the first window close with enough bad
   evidence, before cumulative attainment actually crosses 99%. *)
let test_slo_alert_leads_breach () =
  let s = mk_slo () in
  for w = 0 to 99 do
    for k = 0 to 9 do
      Slo.observe s ~now:((w * 100) + (k * 10)) ~good:true
    done
  done;
  for b = 0 to 19 do
    Slo.observe s ~now:(10_000 + (b * 20)) ~good:false
  done;
  let alert_at = Slo.first_alert_cycle s in
  let below_at = Slo.first_below_target s in
  Alcotest.(check (option int)) "page at the first post-outage close"
    (Some 10_100) alert_at;
  Alcotest.(check (option int)) "attainment crosses later" (Some 10_200)
    below_at;
  (match Slo.alerts s with
  | a :: _ ->
    Alcotest.(check bool) "severity is page" true (a.Slo.a_severity = Slo.Page)
  | [] -> Alcotest.fail "no alert");
  Alcotest.(check bool) "burn-rate alert leads the breach" true
    (match (alert_at, below_at) with
    | Some a, Some b -> a < b
    | _ -> false)

(* Alerts are edge-triggered: a second excursion pages again only after
   the fast horizon recovered below the threshold in between. *)
let test_slo_rearm () =
  let s = mk_slo () in
  let now = ref 0 in
  let feed ~per_window ~windows ~good =
    for _ = 1 to windows do
      for k = 0 to per_window - 1 do
        Slo.observe s ~now:(!now + (k * (100 / per_window))) ~good
      done;
      now := !now + 100
    done
  in
  feed ~per_window:10 ~windows:20 ~good:true;
  feed ~per_window:10 ~windows:3 ~good:false;
  let pages l =
    List.length (List.filter (fun a -> a.Slo.a_severity = Slo.Page) l)
  in
  Alcotest.(check int) "one page per excursion" 1 (pages (Slo.alerts s));
  feed ~per_window:10 ~windows:20 ~good:true;
  feed ~per_window:10 ~windows:3 ~good:false;
  Alcotest.(check int) "re-armed page on the second excursion" 2
    (pages (Slo.alerts s))

let test_slo_min_samples_guard () =
  let s = mk_slo () in
  (* Three bad requests in a near-idle window: under the guard, no
     alert, and attainment is not judged below target either. *)
  Slo.observe s ~now:10 ~good:false;
  Slo.observe s ~now:40 ~good:false;
  Slo.observe s ~now:70 ~good:false;
  Slo.check s ~now:1_000;
  Alcotest.(check int) "no alert under the traffic guard" 0
    (List.length (Slo.alerts s));
  Alcotest.(check (option int)) "not judged below target" None
    (Slo.first_below_target s)

(* ------------------------------------------------------------------ *)
(* Critical path on a sampled capture *)

let run_kv_calls_capture ~n =
  let sim = Sim.create () in
  let cluster = Cluster.create sim ~boards:2 ~client_ports:1 in
  ignore
    (Cluster.install cluster ~board:0 ~service:"kv" (fst (Kv.behavior ())));
  let done_ = ref 0 in
  let caller =
    Shell.behavior "caller" ~on_boot:(fun sh ->
        Sim.after (Shell.sim sh) 2_000 (fun () ->
            Cluster.connect cluster ~board:1 sh ~service:"kv" (fun r ->
                match r with
                | Error _ -> ()
                | Ok target ->
                  let rec go i =
                    if i < n then
                      Cluster.call cluster ~board:1 sh target
                        ~op:Kv.Proto.opcode
                        (Kv.Proto.encode_req
                           (Kv.Proto.Put
                              (Printf.sprintf "k%d" i, Bytes.make 16 'v')))
                        (fun _ ->
                          incr done_;
                          go (i + 1))
                  in
                  go 0)))
  in
  ignore (Cluster.install cluster ~board:1 caller);
  Sim.run_for sim 400_000;
  (!done_, Span.events ())

(* Corr-keyed head sampling keeps or drops whole request families, so
   every breakdown computed from a sampled capture is well-formed and
   identical to the same family's breakdown in the unsampled capture. *)
let test_critical_path_sampled_wellformed () =
  let done_full, full = with_spans (fun () -> run_kv_calls_capture ~n:40) in
  Alcotest.(check int) "workload completed" 40 done_full;
  let _, sampled =
    with_spans (fun () ->
        Span.set_sampling ~head_mod:3 ();
        Fun.protect
          ~finally:(fun () -> Span.set_sampling ())
          (fun () -> run_kv_calls_capture ~n:40))
  in
  let bd_full = Critical_path.analyze full in
  let bd_sampled = Critical_path.analyze sampled in
  Alcotest.(check bool) "some request families survive" true (bd_sampled <> []);
  Alcotest.(check bool) "sampling thins the families" true
    (List.length bd_sampled < List.length bd_full);
  List.iter
    (fun (b : Critical_path.breakdown) ->
      if
        not
          (b.Critical_path.total >= 0
          && b.Critical_path.hop >= 0
          && b.Critical_path.queue >= 0
          && b.Critical_path.service >= 0
          && b.Critical_path.hop + b.Critical_path.queue
             + b.Critical_path.service
             = b.Critical_path.total)
      then Alcotest.failf "ill-formed breakdown for corr %d" b.Critical_path.corr;
      if not (List.mem b bd_full) then
        Alcotest.failf "sampled breakdown for corr %d differs from full capture"
          b.Critical_path.corr)
    bd_sampled

(* ------------------------------------------------------------------ *)

let qc = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "obs"
    [
      ( "span",
        [
          Alcotest.test_case "disabled is no-op" `Quick test_span_disabled_is_noop;
          Alcotest.test_case "start/finish" `Quick test_span_start_finish;
          Alcotest.test_case "open until finished" `Quick
            test_span_open_until_finished;
          Alcotest.test_case "reset invalidates ids" `Quick
            test_span_reset_invalidates_ids;
          Alcotest.test_case "capacity drops" `Quick test_span_capacity_drops;
        ] );
      ( "registry",
        [
          Alcotest.test_case "get or create" `Quick test_registry_get_or_create;
          Alcotest.test_case "sampler replace" `Quick test_registry_sampler_replace;
          Alcotest.test_case "reset (incl. gauges)" `Quick
            test_registry_reset_resets_gauges;
          Alcotest.test_case "snapshot sorted" `Quick test_registry_snapshot_sorted;
        ] );
      ( "export",
        [
          Alcotest.test_case "escapes and sorts" `Quick test_export_escapes_and_sorts;
          Alcotest.test_case "byte stable" `Quick test_export_byte_stable;
          Alcotest.test_case "empty capture" `Quick test_export_empty_capture;
          Alcotest.test_case "truncation marker iff dropped" `Quick
            test_export_truncation_marker;
          Alcotest.test_case "metrics json" `Quick test_export_metrics_json;
        ] );
      ( "series",
        [
          qc prop_series_conservation;
          Alcotest.test_case "grid, rollups and json" `Quick
            test_series_grid_and_json;
        ] );
      ( "sampling",
        [
          Alcotest.test_case "deterministic head sampling" `Quick
            test_sampling_deterministic;
          Alcotest.test_case "tail keep rules" `Quick test_sampling_tail_keep;
        ] );
      ( "slo",
        [
          Alcotest.test_case "alert leads the breach" `Quick
            test_slo_alert_leads_breach;
          Alcotest.test_case "edge-trigger and re-arm" `Quick test_slo_rearm;
          Alcotest.test_case "min-samples guard" `Quick
            test_slo_min_samples_guard;
        ] );
      ( "acceptance",
        [
          Alcotest.test_case "cross-board span tree" `Quick
            test_cross_board_span_tree;
          Alcotest.test_case "capture byte-stable" `Quick
            test_capture_byte_stable_across_runs;
          Alcotest.test_case "critical path on a sampled tree" `Quick
            test_critical_path_sampled_wellformed;
        ] );
    ]
