(* Tests for the telemetry layer (lib/obs): the span recorder's
   enable/reset/capacity discipline, the metrics registry, the JSON
   exporters, and the end-to-end acceptance capture — one cross-board
   KV call reconstructing as a corr-keyed span tree that spans the
   caller, both boards and the ToR switch, with per-hop NoC children,
   exported byte-stably. *)

module Sim = Apiary_engine.Sim
module Stats = Apiary_engine.Stats
module Span = Apiary_obs.Span
module Registry = Apiary_obs.Registry
module Export = Apiary_obs.Export
module Shell = Apiary_core.Shell
module Kv = Apiary_accel.Kv
module Cluster = Apiary_cluster.Cluster

(* The recorder and registry are process-global; every test leaves them
   disabled and empty. *)
let with_spans f =
  Span.reset ();
  Span.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Span.set_enabled false;
      Span.reset ())
    f

(* ------------------------------------------------------------------ *)
(* Span recorder *)

let test_span_disabled_is_noop () =
  Span.set_enabled false;
  Span.reset ();
  let sid = Span.start ~cat:"t" ~name:"x" ~track:0 ~ts:1 () in
  Span.instant ~cat:"t" ~name:"y" ~track:0 ~ts:2 ();
  Span.complete ~cat:"t" ~name:"z" ~track:0 ~ts:3 ~dur:4 ();
  Span.finish ~ts:9 sid;
  Alcotest.(check int) "nothing recorded" 0 (Span.count ());
  Alcotest.(check bool) "start returned null" true (sid = Span.null)

let test_span_start_finish () =
  with_spans (fun () ->
      let sid =
        Span.start ~board:2 ~corr:7
          ~args:[ ("k", "v") ]
          ~cat:"monitor" ~name:"rpc" ~track:3 ~ts:10 ()
      in
      Span.finish ~args:[ ("status", "ok") ] ~ts:25 sid;
      match Span.events () with
      | [ e ] ->
        Alcotest.(check int) "dur" 15 e.Span.dur;
        Alcotest.(check int) "board" 2 e.Span.board;
        Alcotest.(check int) "corr" 7 e.Span.corr;
        Alcotest.(check (list (pair string string)))
          "args appended"
          [ ("k", "v"); ("status", "ok") ]
          e.Span.args
      | l -> Alcotest.failf "want 1 event, got %d" (List.length l))

let test_span_open_until_finished () =
  with_spans (fun () ->
      let sid = Span.start ~cat:"c" ~name:"open" ~track:0 ~ts:5 () in
      (match Span.events () with
      | [ e ] -> Alcotest.(check int) "open dur is -1" (-1) e.Span.dur
      | l -> Alcotest.failf "want 1 event, got %d" (List.length l));
      (* Closing must still work after capture is turned off: late
         callbacks close spans opened while recording. *)
      Span.set_enabled false;
      Span.finish ~ts:11 sid;
      match Span.events () with
      | [ e ] -> Alcotest.(check int) "closed late" 6 e.Span.dur
      | l -> Alcotest.failf "want 1 event, got %d" (List.length l))

let test_span_reset_invalidates_ids () =
  with_spans (fun () ->
      let sid = Span.start ~cat:"c" ~name:"stale" ~track:0 ~ts:1 () in
      Span.reset ();
      Span.finish ~ts:50 sid;  (* must not touch the fresh store *)
      Alcotest.(check int) "store empty after reset" 0 (Span.count ());
      Span.instant ~cat:"c" ~name:"fresh" ~track:0 ~ts:2 ();
      match Span.events () with
      | [ e ] -> Alcotest.(check string) "fresh event intact" "fresh" e.Span.name
      | l -> Alcotest.failf "want 1 event, got %d" (List.length l))

let test_span_capacity_drops () =
  with_spans (fun () ->
      Fun.protect
        ~finally:(fun () -> Span.set_capacity 1_048_576)
        (fun () ->
          Span.set_capacity 4;
          for i = 1 to 6 do
            Span.instant ~cat:"c" ~name:"e" ~track:0 ~ts:i ()
          done;
          Alcotest.(check int) "retained at cap" 4 (Span.count ());
          Alcotest.(check int) "overflow counted" 2 (Span.dropped ())))

(* ------------------------------------------------------------------ *)
(* Registry *)

let test_registry_get_or_create () =
  Registry.clear ();
  let c1 = Registry.counter "a.count" in
  Stats.Counter.incr c1;
  Alcotest.(check bool) "same instrument back" true
    (Registry.counter "a.count" == c1);
  Alcotest.(check int) "state survives" 1
    (Stats.Counter.value (Registry.counter "a.count"));
  (match Registry.gauge "a.count" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "kind mismatch must raise");
  Registry.clear ()

let test_registry_sampler_replace () =
  Registry.clear ();
  let hits = ref 0 in
  Registry.add_sampler ~name:"s" (fun () -> hits := !hits + 100);
  Registry.add_sampler ~name:"s" (fun () -> incr hits);
  ignore (Registry.snapshot ());
  Alcotest.(check int) "only the replacement ran" 1 !hits;
  Registry.clear ()

let test_registry_reset_resets_gauges () =
  Registry.clear ();
  let g = Registry.gauge "g" in
  Stats.Gauge.set g 5.0;
  Stats.Gauge.set g 9.0;
  let h = Registry.histogram "h" in
  Stats.Histogram.record h 42;
  Registry.reset ();
  Alcotest.(check (float 0.0)) "gauge value zeroed" 0.0 (Stats.Gauge.value g);
  Alcotest.(check int) "histogram emptied" 0 (Stats.Histogram.count h);
  (* Gauge.reset must also forget the min/max watermarks. *)
  Stats.Gauge.set g 2.0;
  Alcotest.(check (float 0.0)) "min restarts" 2.0 (Stats.Gauge.min g);
  Alcotest.(check (float 0.0)) "max restarts" 2.0 (Stats.Gauge.max g);
  Registry.clear ()

let test_registry_snapshot_sorted () =
  Registry.clear ();
  ignore (Registry.counter "z");
  ignore (Registry.counter "a");
  ignore (Registry.gauge "m");
  let names = List.map fst (Registry.snapshot ()) in
  (* The built-in obs.span sampler contributes its two gauges even
     after clear; everything still comes back alphabetical. *)
  Alcotest.(check (list string)) "alphabetical"
    [ "a"; "m"; "obs.span.dropped"; "obs.span.events"; "z" ]
    names;
  Registry.clear ()

(* ------------------------------------------------------------------ *)
(* Export *)

let test_export_escapes_and_sorts () =
  with_spans (fun () ->
      Span.instant ~cat:"c" ~name:"later" ~track:0 ~ts:9 ();
      Span.instant
        ~args:[ ("msg", "a\"b\nc\\d") ]
        ~cat:"c" ~name:"earlier" ~track:0 ~ts:3 ();
      let s = Export.chrome_trace_string (Span.events ()) in
      let idx sub =
        let n = String.length sub in
        let rec go i =
          if i + n > String.length s then
            Alcotest.failf "missing %S in export" sub
          else if String.sub s i n = sub then i
          else go (i + 1)
        in
        go 0
      in
      Alcotest.(check bool) "sorted by ts" true
        (idx "\"earlier\"" < idx "\"later\"");
      ignore (idx "\"msg\":\"a\\\"b\\nc\\\\d\"");
      ignore (idx "\"traceEvents\""))

let test_export_byte_stable () =
  with_spans (fun () ->
      Span.complete ~board:1 ~corr:3 ~cat:"noc" ~name:"hop" ~track:2 ~ts:10
        ~dur:4 ();
      let evs = Span.events () in
      Alcotest.(check string) "same list renders identically"
        (Export.chrome_trace_string evs)
        (Export.chrome_trace_string evs))

let test_export_metrics_json () =
  Registry.clear ();
  Stats.Counter.add (Registry.counter "c") 3;
  Stats.Gauge.set (Registry.gauge "g") 1.5;
  Stats.Gauge.set (Registry.gauge "weird") Float.nan;
  ignore (Registry.histogram "h");  (* empty: max must render as 0 *)
  let s = Export.metrics_json_string (Registry.snapshot ()) in
  let has sub =
    let n = String.length sub in
    let rec go i =
      i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
    in
    if not (go 0) then Alcotest.failf "missing %S in %s" sub s
  in
  has "\"c\":{\"type\":\"counter\",\"value\":3}";
  has "\"value\":1.5";
  has "\"count\":0";
  has "null";  (* NaN gauge must not emit invalid JSON *)
  Registry.clear ()

(* ------------------------------------------------------------------ *)
(* Acceptance: one cross-board KV call as a corr-keyed span tree *)

let run_call_capture () =
  Span.reset ();
  Span.set_enabled true;
  let sim = Sim.create () in
  let cluster = Cluster.create sim ~boards:2 ~client_ports:1 in
  ignore
    (Cluster.install cluster ~board:0 ~service:"kv" (fst (Kv.behavior ())));
  let ok = ref false in
  let caller =
    Shell.behavior "caller" ~on_boot:(fun sh ->
        Sim.after (Shell.sim sh) 2_000 (fun () ->
            Cluster.connect cluster ~board:1 sh ~service:"kv" (fun r ->
                match r with
                | Error _ -> ()
                | Ok target ->
                  Cluster.call cluster ~board:1 sh target ~op:Kv.Proto.opcode
                    (Kv.Proto.encode_req (Kv.Proto.Put ("k1", Bytes.make 32 'v')))
                    (fun r -> ok := Result.is_ok r))))
  in
  ignore (Cluster.install cluster ~board:1 caller);
  Sim.run_for sim 60_000;
  Span.set_enabled false;
  let evs = Span.events () in
  Span.reset ();
  (!ok, evs)

let test_cross_board_span_tree () =
  let ok, evs = run_call_capture () in
  Alcotest.(check bool) "call completed" true ok;
  let one ~board ~cat ~name =
    match
      List.filter
        (fun (e : Span.event) ->
          e.Span.board = board && e.Span.cat = cat && e.Span.name = name
          && e.Span.ts >= 2_000)
        evs
    with
    | [ e ] -> e
    | l ->
      Alcotest.failf "want 1 %s/%s on board %d, got %d" cat name board
        (List.length l)
  in
  (* Root: the caller's location-transparent invocation on board 1. *)
  let call = one ~board:1 ~cat:"cluster" ~name:"call" in
  Alcotest.(check (option string)) "call ok" (Some "ok")
    (List.assoc_opt "status" call.Span.args);
  (* Child: the netsvc leg, keyed by the caller's corr id; its req_id
     argument is the cross-board join key. *)
  let remote = one ~board:1 ~cat:"net" ~name:"remote" in
  Alcotest.(check bool) "remote corr-keyed" true (remote.Span.corr > 0);
  Alcotest.(check bool) "remote nested in call" true
    (call.Span.ts <= remote.Span.ts
    && remote.Span.ts + remote.Span.dur <= call.Span.ts + call.Span.dur);
  let req_id =
    match List.assoc_opt "req_id" remote.Span.args with
    | Some r -> r
    | None -> Alcotest.fail "remote span carries no req_id"
  in
  (* The same corr groups the caller-side monitor RPC and its per-hop
     NoC children on board 1. *)
  let by_corr cat =
    List.filter
      (fun (e : Span.event) ->
        e.Span.board = 1 && e.Span.cat = cat && e.Span.corr = remote.Span.corr)
      evs
  in
  Alcotest.(check bool) "caller monitor rpc under same corr" true
    (by_corr "monitor" <> []);
  Alcotest.(check bool) "per-hop NoC children under same corr" true
    (List.exists (fun (e : Span.event) -> e.Span.name = "hop") (by_corr "noc"));
  (* The wire hop: a rack-level (board -1) ToR switch span between the
     two boards. *)
  let tor =
    List.filter
      (fun (e : Span.event) ->
        e.Span.board = -1 && e.Span.cat = "switch" && e.Span.ts >= 2_000)
      evs
  in
  Alcotest.(check bool) "ToR switch span present" true (tor <> []);
  (* Far side: board 0 serves the same req_id, inside the remote leg's
     window, with its own fabric RPC and NoC hops. *)
  let serve = one ~board:0 ~cat:"net" ~name:"serve" in
  Alcotest.(check (option string)) "req_id joins the boards" (Some req_id)
    (List.assoc_opt "req_id" serve.Span.args);
  Alcotest.(check bool) "serve inside the remote window" true
    (remote.Span.ts <= serve.Span.ts
    && serve.Span.ts + serve.Span.dur <= remote.Span.ts + remote.Span.dur);
  let served_hops =
    List.filter
      (fun (e : Span.event) ->
        e.Span.board = 0 && e.Span.cat = "noc" && e.Span.name = "hop"
        && e.Span.corr > 0
        && e.Span.ts >= serve.Span.ts
        && e.Span.ts <= serve.Span.ts + serve.Span.dur)
      evs
  in
  Alcotest.(check bool) "serving board has per-hop NoC spans" true
    (served_hops <> [])

let test_capture_byte_stable_across_runs () =
  let _, evs1 = run_call_capture () in
  let _, evs2 = run_call_capture () in
  let s1 = Export.chrome_trace_string evs1 in
  let s2 = Export.chrome_trace_string evs2 in
  Alcotest.(check bool) "export is non-trivial" true (String.length s1 > 1000);
  Alcotest.(check string) "two fixed-seed captures export identically" s1 s2

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "obs"
    [
      ( "span",
        [
          Alcotest.test_case "disabled is no-op" `Quick test_span_disabled_is_noop;
          Alcotest.test_case "start/finish" `Quick test_span_start_finish;
          Alcotest.test_case "open until finished" `Quick
            test_span_open_until_finished;
          Alcotest.test_case "reset invalidates ids" `Quick
            test_span_reset_invalidates_ids;
          Alcotest.test_case "capacity drops" `Quick test_span_capacity_drops;
        ] );
      ( "registry",
        [
          Alcotest.test_case "get or create" `Quick test_registry_get_or_create;
          Alcotest.test_case "sampler replace" `Quick test_registry_sampler_replace;
          Alcotest.test_case "reset (incl. gauges)" `Quick
            test_registry_reset_resets_gauges;
          Alcotest.test_case "snapshot sorted" `Quick test_registry_snapshot_sorted;
        ] );
      ( "export",
        [
          Alcotest.test_case "escapes and sorts" `Quick test_export_escapes_and_sorts;
          Alcotest.test_case "byte stable" `Quick test_export_byte_stable;
          Alcotest.test_case "metrics json" `Quick test_export_metrics_json;
        ] );
      ( "acceptance",
        [
          Alcotest.test_case "cross-board span tree" `Quick
            test_cross_board_span_tree;
          Alcotest.test_case "capture byte-stable" `Quick
            test_capture_byte_stable_across_runs;
        ] );
    ]
