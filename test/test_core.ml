(* Integration tests for the Apiary core: wire codec, boot/naming,
   connections, data RPC, the memory service with capability enforcement,
   rate limiting, fail-stop fault handling, watchdog, management service,
   partial reconfiguration, and tracing. *)

module Sim = Apiary_engine.Sim
module Stats = Apiary_engine.Stats
module Rights = Apiary_cap.Rights
module Message = Apiary_core.Message
module Wire = Apiary_core.Wire
module Monitor = Apiary_core.Monitor
module Shell = Apiary_core.Shell
module Kernel = Apiary_core.Kernel
module Services = Apiary_core.Services
module Trace = Apiary_core.Trace
module Rate_limiter = Apiary_core.Rate_limiter
module Mesh = Apiary_noc.Mesh

(* ------------------------------------------------------------------ *)
(* Helpers *)

let mk_kernel ?(enforce = true) ?(watchdog = 0) ?(rate = 1000.0) ?(burst = 100_000)
    ?(rpc_timeout = 20_000) ?check_latency ?monitor_overrides () =
  let sim = Sim.create () in
  let check_latency =
    Option.value ~default:Monitor.default_config.Monitor.check_latency check_latency
  in
  let cfg =
    {
      Kernel.default_config with
      Kernel.monitor =
        {
          Monitor.default_config with
          Monitor.enforce;
          watchdog;
          rate;
          burst;
          rpc_timeout;
          check_latency;
        };
      monitor_overrides = Option.value ~default:[] monitor_overrides;
      dram_bytes = 1 lsl 20;
    }
  in
  (sim, Kernel.create sim cfg)

let echo_behavior ?(cost = 0) name =
  Shell.behavior name
    ~on_boot:(fun sh -> Shell.register_service sh name)
    ~on_message:(fun sh msg ->
      match msg.Message.kind with
      | Message.Data { opcode } ->
        if cost > 0 then Shell.busy sh cost;
        Shell.respond sh msg ~opcode msg.Message.payload
      | _ -> ())

let idle_behavior name = Shell.behavior name

(* Run a function on a client tile after services have had time to boot
   and register. *)
let with_client kernel ~tile f =
  Kernel.install kernel ~tile
    (Shell.behavior "client" ~on_boot:(fun sh ->
         Sim.after (Shell.sim sh) 300 (fun () -> f sh)))

let b = Bytes.of_string

(* ------------------------------------------------------------------ *)
(* Wire codec *)

let arbitrary_message =
  let open QCheck.Gen in
  let addr = map2 (fun t e -> { Message.tile = t; ep = e }) (int_bound 100) (int_bound 3) in
  let name = map (fun n -> "svc" ^ string_of_int n) (int_bound 30) in
  let control =
    oneof
      [
        map (fun name -> Message.Register { name }) name;
        return Message.Register_ok;
        map (fun name -> Message.Lookup { name }) name;
        map2 (fun name result -> Message.Lookup_reply { name; result }) name (option addr);
        return Message.Connect_req;
        map2 (fun cap r -> Message.Connect_ok { cap; rate_millis = r; burst = r / 4 }) (int_bound 0xFFFF) (int_bound 100_000);
        map (fun n -> Message.Connect_denied { reason = "r" ^ string_of_int n }) (int_bound 9);
        map (fun bytes -> Message.Alloc_req { bytes }) (int_bound 100_000);
        map2 (fun cap base -> Message.Alloc_ok { cap; base; bytes = 64 }) (int_bound 0xFFFF) (int_bound 100_000);
        map (fun n -> Message.Alloc_denied { reason = "r" ^ string_of_int n }) (int_bound 9);
        map (fun base -> Message.Free_req { base }) (int_bound 100_000);
        return Message.Free_ok;
        map2 (fun addr len -> Message.Mem_read_req { addr; len }) (int_bound 100_000) (int_bound 4096);
        map (fun addr -> Message.Mem_write_req { addr }) (int_bound 100_000);
        return Message.Mem_read_ok;
        return Message.Mem_write_ok;
        map (fun n -> Message.Mem_denied { reason = "r" ^ string_of_int n }) (int_bound 9);
        return Message.Ping;
        return Message.Pong;
        map (fun n -> Message.Nack { reason = "r" ^ string_of_int n }) (int_bound 9);
      ]
  in
  let kind =
    oneof [ map (fun opcode -> Message.Data { opcode }) (int_bound 1000); map (fun c -> Message.Control c) control ]
  in
  let gen =
    map
      (fun (src, dst, kind, corr, is_reply, cls, payload, at) ->
        Message.make ~src ~dst ~kind ~corr ~is_reply ~cls
          ~payload:(Bytes.of_string payload) ~now:at ())
      (tup8 addr addr kind (int_bound 100_000) bool (int_bound 3)
         (string_size (int_bound 200)) (int_bound 1_000_000))
  in
  QCheck.make gen

let prop_wire_roundtrip =
  QCheck.Test.make ~name:"wire encode/decode roundtrip" ~count:500 arbitrary_message
    (fun m -> match Wire.decode (Wire.encode m) with Ok m' -> m' = m | Error _ -> false)

let prop_wire_rejects_truncation =
  QCheck.Test.make ~name:"wire rejects truncated input" ~count:200 arbitrary_message
    (fun m ->
      let e = Wire.encode m in
      if Bytes.length e < 2 then true
      else
        match Wire.decode (Bytes.sub e 0 (Bytes.length e / 2)) with
        | Error _ -> true
        | Ok _ -> false)

let test_wire_garbage () =
  (match Wire.decode (b "\xff\xff\xff") with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "decoded garbage");
  match Wire.decode (Bytes.make 64 '\xff') with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "decoded garbage 64"

let test_message_size () =
  let m =
    Message.make
      ~src:{ Message.tile = 0; ep = 1 }
      ~dst:{ Message.tile = 1; ep = 1 }
      ~kind:(Message.Data { opcode = 7 })
      ~payload:(Bytes.create 100) ~now:0 ()
  in
  Alcotest.(check int) "size" (Message.header_bytes + 100) (Message.size_bytes m)

(* ------------------------------------------------------------------ *)
(* Rate limiter unit *)

let test_rate_limiter_refill () =
  let rl = Rate_limiter.create ~rate:2.0 ~burst:10 in
  Alcotest.(check bool) "burst available" true (Rate_limiter.try_take rl 10);
  Alcotest.(check bool) "empty now" false (Rate_limiter.try_take rl 1);
  Rate_limiter.advance rl ~now:5;
  (* 5 cycles * 2/cycle = 10 tokens *)
  Alcotest.(check bool) "refilled" true (Rate_limiter.try_take rl 10)

let test_rate_limiter_burst_cap () =
  let rl = Rate_limiter.create ~rate:1.0 ~burst:4 in
  Rate_limiter.advance rl ~now:1000;
  Alcotest.(check bool) "capped at burst" false (Rate_limiter.try_take rl 5);
  Alcotest.(check bool) "burst ok" true (Rate_limiter.try_take rl 4)

let test_rate_limiter_unlimited () =
  let rl = Rate_limiter.unlimited () in
  Alcotest.(check bool) "always admits" true (Rate_limiter.try_take rl 1_000_000)

(* ------------------------------------------------------------------ *)
(* Naming + connection + RPC *)

let test_register_lookup () =
  let sim, k = mk_kernel () in
  Kernel.install k ~tile:1 (echo_behavior "echo");
  let found = ref None in
  with_client k ~tile:2 (fun sh ->
      Shell.lookup sh "echo" (fun r -> found := r));
  Sim.run_for sim 2000;
  match !found with
  | Some a -> Alcotest.(check int) "resolves to tile 1" 1 a.Message.tile
  | None -> Alcotest.fail "lookup failed"

let test_lookup_unknown () =
  let sim, k = mk_kernel () in
  let result = ref (Some { Message.tile = 9; ep = 9 }) in
  with_client k ~tile:2 (fun sh -> Shell.lookup sh "ghost" (fun r -> result := r));
  Sim.run_for sim 2000;
  Alcotest.(check bool) "unknown -> None" true (!result = None)

let test_echo_rpc () =
  let sim, k = mk_kernel () in
  Kernel.install k ~tile:1 (echo_behavior "echo");
  let reply = ref None in
  with_client k ~tile:6 (fun sh ->
      Shell.connect sh ~service:"echo" (fun r ->
          match r with
          | Error e -> Alcotest.failf "connect: %s" (Shell.rpc_error_to_string e)
          | Ok conn ->
            Shell.request sh conn ~opcode:42 (b "hello") (fun r ->
                match r with
                | Ok m -> reply := Some (Bytes.to_string m.Message.payload)
                | Error e -> Alcotest.failf "rpc: %s" (Shell.rpc_error_to_string e))));
  Sim.run_for sim 5000;
  Alcotest.(check (option string)) "echoed" (Some "hello") !reply

let test_connect_unknown_service () =
  let sim, k = mk_kernel () in
  let got = ref None in
  with_client k ~tile:2 (fun sh ->
      Shell.connect sh ~service:"ghost" (fun r ->
          match r with Error (Denied _) -> got := Some true | _ -> got := Some false));
  Sim.run_for sim 2000;
  Alcotest.(check (option bool)) "denied" (Some true) !got

let test_connect_policy_refusal () =
  let sim, k = mk_kernel () in
  Kernel.install k ~tile:1
    (Shell.behavior "picky"
       ~on_boot:(fun sh ->
         Shell.set_connect_policy sh (fun _ -> false);
         Shell.register_service sh "picky"));
  let got = ref None in
  with_client k ~tile:2 (fun sh ->
      Shell.connect sh ~service:"picky" (fun r ->
          match r with
          | Error (Denied reason) -> got := Some reason
          | _ -> got := Some "unexpected"));
  Sim.run_for sim 3000;
  Alcotest.(check (option string)) "policy refused" (Some "refused by policy") !got

let test_rpc_latency_positive_and_scales () =
  (* RPC across 1 hop vs across the diagonal: farther peer -> larger
     round-trip. *)
  let run client server =
    let sim, k = mk_kernel () in
    Kernel.install k ~tile:server (echo_behavior "echo");
    let t0 = ref 0 and dt = ref None in
    with_client k ~tile:client (fun sh ->
        Shell.connect sh ~service:"echo" (fun r ->
            match r with
            | Error _ -> ()
            | Ok conn ->
              t0 := Shell.now sh;
              Shell.request sh conn ~opcode:0 (b "x") (fun _ ->
                  dt := Some (Shell.now sh - !t0))));
    Sim.run_for sim 8000;
    match !dt with Some d -> d | None -> Alcotest.fail "rpc never completed"
  in
  let near = run 1 2 in
  let far = run 1 14 in
  Alcotest.(check bool) "positive" true (near > 0);
  Alcotest.(check bool)
    (Printf.sprintf "far (%d) > near (%d)" far near)
    true (far > near)

let test_reply_window_single_use () =
  (* A malicious server responding twice: the second reply must be denied
     by its monitor (no reply window left). *)
  let sim, k = mk_kernel () in
  Kernel.install k ~tile:1
    (Shell.behavior "doubler"
       ~on_boot:(fun sh -> Shell.register_service sh "doubler")
       ~on_message:(fun sh msg ->
         Shell.respond sh msg ~opcode:1 (b "first");
         Shell.respond sh msg ~opcode:1 (b "second")));
  let replies = ref 0 in
  with_client k ~tile:2 (fun sh ->
      Shell.connect sh ~service:"doubler" (fun r ->
          match r with
          | Error _ -> ()
          | Ok conn ->
            Shell.request sh conn ~opcode:0 (b "q") (fun r ->
                if Result.is_ok r then incr replies)));
  Sim.run_for sim 5000;
  Alcotest.(check int) "exactly one reply got through" 1 !replies;
  Alcotest.(check bool) "second was denied" true (Monitor.denied (Kernel.monitor k 1) >= 1)

(* ------------------------------------------------------------------ *)
(* Memory service *)

let test_alloc_write_read () =
  let sim, k = mk_kernel () in
  let readback = ref None in
  with_client k ~tile:3 (fun sh ->
      Shell.alloc sh ~bytes:256 (fun r ->
          match r with
          | Error e -> Alcotest.failf "alloc: %s" (Shell.rpc_error_to_string e)
          | Ok h ->
            Shell.write_mem sh h ~off:16 (b "segment data") (fun r ->
                match r with
                | Error e -> Alcotest.failf "write: %s" (Shell.rpc_error_to_string e)
                | Ok () ->
                  Shell.read_mem sh h ~off:16 ~len:12 (fun r ->
                      match r with
                      | Ok data -> readback := Some (Bytes.to_string data)
                      | Error e ->
                        Alcotest.failf "read: %s" (Shell.rpc_error_to_string e)))));
  Sim.run_for sim 10_000;
  Alcotest.(check (option string)) "roundtrip" (Some "segment data") !readback

let test_mem_oob_denied_locally () =
  let sim, k = mk_kernel () in
  let got = ref None in
  with_client k ~tile:3 (fun sh ->
      Shell.alloc sh ~bytes:64 (fun r ->
          match r with
          | Error _ -> ()
          | Ok h ->
            Shell.read_mem sh h ~off:32 ~len:64 (fun r ->
                match r with
                | Error (Denied reason) -> got := Some reason
                | _ -> got := Some "unexpected")));
  Sim.run_for sim 10_000;
  (match !got with
  | Some reason ->
    Alcotest.(check bool) "bounds denial" true
      (String.length reason > 0 && String.sub reason 0 7 = "mem cap")
  | None -> Alcotest.fail "no result");
  Alcotest.(check bool) "denied counted" true (Monitor.denied (Kernel.monitor k 3) >= 1)

let test_free_revokes_cap () =
  let sim, k = mk_kernel () in
  let got = ref None in
  with_client k ~tile:3 (fun sh ->
      Shell.alloc sh ~bytes:64 (fun r ->
          match r with
          | Error _ -> ()
          | Ok h ->
            Shell.free sh h (fun r ->
                match r with
                | Error _ -> ()
                | Ok () ->
                  Shell.read_mem sh h ~off:0 ~len:8 (fun r ->
                      match r with
                      | Error (Denied _) -> got := Some true
                      | _ -> got := Some false))));
  Sim.run_for sim 10_000;
  Alcotest.(check (option bool)) "stale cap denied" (Some true) !got

let test_alloc_oom () =
  let sim, k = mk_kernel () in
  let got = ref None in
  with_client k ~tile:3 (fun sh ->
      Shell.alloc sh ~bytes:(1 lsl 21) (* > 1 MiB region *) (fun r ->
          match r with
          | Error (Denied reason) -> got := Some reason
          | _ -> got := Some "unexpected"));
  Sim.run_for sim 10_000;
  Alcotest.(check (option string)) "oom" (Some "out of memory") !got

let test_free_not_owner () =
  let sim, k = mk_kernel () in
  let base_ref = ref None in
  with_client k ~tile:3 (fun sh ->
      Shell.alloc sh ~bytes:64 (fun r ->
          match r with Ok h -> base_ref := Some h | Error _ -> ()));
  let got = ref None in
  with_client k ~tile:4 (fun sh ->
      Sim.after (Shell.sim sh) 1500 (fun () ->
          match !base_ref with
          | None -> ()
          | Some h ->
            (* Tile 4 forges a free for tile 3's segment. It has no cap,
               but Free_req only needs the base — ownership is checked by
               the service. *)
            Shell.free sh { h with mcap = 0 } (fun r ->
                match r with
                | Error (Denied reason) -> got := Some reason
                | _ -> got := Some "unexpected")));
  Sim.run_for sim 15_000;
  Alcotest.(check (option string)) "not owner" (Some "not the owner") !got

let test_grant_mem_shared_read () =
  let sim, k = mk_kernel () in
  let producer_handle = ref None in
  let consumer_got = ref None in
  Kernel.install k ~tile:5
    (Shell.behavior "consumer"
       ~on_boot:(fun sh -> Shell.register_service sh "consumer")
       ~on_message:(fun sh msg ->
         match msg.Message.kind with
         | Message.Data { opcode = 77 } ->
           (* Payload carries the granted cap handle. *)
           let h = int_of_string (Bytes.to_string msg.Message.payload) in
           (match Shell.mem_handle_of_grant sh h with
           | None -> consumer_got := Some "bad handle"
           | Some mh ->
             Shell.read_mem sh mh ~off:0 ~len:6 (fun r ->
                 match r with
                 | Ok data -> consumer_got := Some (Bytes.to_string data)
                 | Error e -> consumer_got := Some (Shell.rpc_error_to_string e)))
         | _ -> ()));
  with_client k ~tile:3 (fun sh ->
      Shell.alloc sh ~bytes:64 (fun r ->
          match r with
          | Error _ -> ()
          | Ok h ->
            producer_handle := Some h;
            Shell.write_mem sh h ~off:0 (b "shared") (fun _ ->
                Shell.connect sh ~service:"consumer" (fun r ->
                    match r with
                    | Error _ -> ()
                    | Ok conn ->
                      (match Shell.grant_mem sh h ~to_tile:5 ~rights:Rights.ro with
                      | Ok gh ->
                        Shell.send_data sh conn ~opcode:77 (b (string_of_int gh))
                      | Error _ -> ())))));
  Sim.run_for sim 15_000;
  Alcotest.(check (option string)) "consumer read shared data" (Some "shared")
    !consumer_got

(* ------------------------------------------------------------------ *)
(* Enforcement: raw sends, flooding *)

let test_raw_send_denied_when_enforced () =
  let sim, k = mk_kernel ~enforce:true () in
  let victim_got = ref 0 in
  Kernel.install k ~tile:1
    (Shell.behavior "victim" ~on_message:(fun _ msg ->
         match msg.Message.kind with Message.Data _ -> incr victim_got | _ -> ()));
  with_client k ~tile:2 (fun sh ->
      Shell.send_raw sh ~dst:{ Message.tile = 1; ep = 1 } ~opcode:1 (b "attack"));
  Sim.run_for sim 3000;
  Alcotest.(check int) "nothing delivered" 0 !victim_got;
  Alcotest.(check bool) "denied" true (Monitor.denied (Kernel.monitor k 2) >= 1)

let test_raw_send_passes_without_enforcement () =
  let sim, k = mk_kernel ~enforce:false () in
  let victim_got = ref 0 in
  Kernel.install k ~tile:1
    (Shell.behavior "victim" ~on_message:(fun _ msg ->
         match msg.Message.kind with Message.Data _ -> incr victim_got | _ -> ()));
  with_client k ~tile:2 (fun sh ->
      Shell.send_raw sh ~dst:{ Message.tile = 1; ep = 1 } ~opcode:1 (b "attack"));
  Sim.run_for sim 3000;
  Alcotest.(check int) "delivered without monitor" 1 !victim_got

let test_rate_limit_caps_flood () =
  (* A tile flooding 1 msg/cycle over a legitimate connection, against a
     0.2 flits/cycle budget, must be throttled to ~0.1 msg/cycle
     (2 flits per message) with the excess dropped at the egress queue. *)
  let sim, k = mk_kernel ~rate:0.2 ~burst:8 () in
  Kernel.install k ~tile:1
    (Shell.behavior "sink" ~on_boot:(fun sh -> Shell.register_service sh "sink"));
  Kernel.install k ~tile:2
    (Shell.behavior "flooder" ~on_boot:(fun sh ->
         Sim.after (Shell.sim sh) 300 (fun () ->
             Shell.connect sh ~service:"sink" (fun r ->
                 match r with
                 | Error _ -> ()
                 | Ok conn ->
                   Sim.add_ticker (Shell.sim sh) (fun () ->
                       Shell.send_data sh conn ~opcode:0 (b "x"))))));
  Sim.run_for sim 10_000;
  let out = Monitor.msgs_out (Kernel.monitor k 2) in
  let dropped = Monitor.dropped (Kernel.monitor k 2) in
  (* Each message is 17 B = 3 flits; ~9.6k flooding cycles * 0.2
     flits/cycle / 3 flits/msg ~ 640 msgs. *)
  Alcotest.(check bool)
    (Printf.sprintf "flood throttled: out=%d dropped=%d" out dropped)
    true
    (out <= 720 && out >= 550 && dropped > 5000);
  Alcotest.(check bool) "rate stalls recorded" true
    (Monitor.rate_stalls (Kernel.monitor k 2) > 0)

(* ------------------------------------------------------------------ *)
(* Fail-stop *)

let test_fault_nacks_peers () =
  let sim, k = mk_kernel () in
  Kernel.install k ~tile:1 (echo_behavior "echo");
  let errors = ref [] in
  let conn_ref = ref None in
  with_client k ~tile:2 (fun sh ->
      Shell.connect sh ~service:"echo" (fun r ->
          match r with Ok c -> conn_ref := Some (sh, c) | Error _ -> ()));
  Sim.after sim 2000 (fun () -> Monitor.fault (Kernel.monitor k 1) "injected");
  Sim.after sim 2500 (fun () ->
      match !conn_ref with
      | None -> ()
      | Some (sh, conn) ->
        Shell.request sh conn ~opcode:0 (b "are you there") (fun r ->
            match r with
            | Error e -> errors := Shell.rpc_error_to_string e :: !errors
            | Ok _ -> errors := "unexpected reply" :: !errors));
  Sim.run_for sim 30_000;
  match !errors with
  | [ e ] ->
    (* Either the egress cap check fails (cap was revoked at fault) or
       the draining monitor NACKs. Both are acceptable fail-fast paths;
       with cap revocation the denial comes first. *)
    Alcotest.(check bool)
      (Printf.sprintf "fail fast (%s)" e)
      true
      (String.length e >= 6 && (String.sub e 0 6 = "denied" || String.sub e 0 6 = "nacked"))
  | other -> Alcotest.failf "expected one error, got %d" (List.length other)

let test_fault_isolates_other_app () =
  (* Tile 1 faults; an unrelated pair (3 -> 4) keeps working. *)
  let sim, k = mk_kernel () in
  Kernel.install k ~tile:1 (echo_behavior "doomed");
  Kernel.install k ~tile:4 (echo_behavior "healthy");
  let ok_replies = ref 0 in
  with_client k ~tile:3 (fun sh ->
      Shell.connect sh ~service:"healthy" (fun r ->
          match r with
          | Error _ -> ()
          | Ok conn ->
            Sim.every (Shell.sim sh) 100 (fun () ->
                Shell.request sh conn ~opcode:0 (b "hi") (fun r ->
                    if Result.is_ok r then incr ok_replies))));
  Sim.after sim 3000 (fun () -> Monitor.fault (Kernel.monitor k 1) "injected");
  Sim.run_for sim 20_000;
  Alcotest.(check bool)
    (Printf.sprintf "healthy app unaffected (%d replies)" !ok_replies)
    true (!ok_replies > 100);
  Alcotest.(check (list (pair int string))) "fault recorded"
    [ (1, "injected") ] (Kernel.faults k)

let test_watchdog_detects_hang () =
  let sim, k = mk_kernel ~watchdog:500 () in
  Kernel.install k ~tile:1
    (Shell.behavior "hanger"
       ~on_boot:(fun sh -> Shell.register_service sh "hanger")
       ~on_message:(fun sh _ -> Shell.busy sh 1_000_000));
  with_client k ~tile:2 (fun sh ->
      Shell.connect sh ~service:"hanger" (fun r ->
          match r with
          | Error _ -> ()
          | Ok conn ->
            (* Two messages: handling the first hangs the accelerator, the
               second then sits in the queue and trips the watchdog. *)
            Shell.send_data sh conn ~opcode:0 (b "first");
            Shell.send_data sh conn ~opcode:0 (b "second")));
  Sim.run_for sim 10_000;
  (match Monitor.state (Kernel.monitor k 1) with
  | Monitor.Draining reason ->
    Alcotest.(check bool) "watchdog reason" true
      (String.length reason >= 8 && String.sub reason 0 8 = "watchdog")
  | s -> Alcotest.failf "expected draining, got %s" (Monitor.state_to_string s))

let test_explicit_raise_fault () =
  let sim, k = mk_kernel () in
  Kernel.install k ~tile:1
    (Shell.behavior "buggy" ~on_boot:(fun sh ->
         Sim.after (Shell.sim sh) 100 (fun () ->
             Shell.raise_fault sh "assertion failed")));
  Sim.run_for sim 1000;
  match Kernel.faults k with
  | [ (1, reason) ] ->
    Alcotest.(check string) "reason" "accelerator fault: assertion failed" reason
  | _ -> Alcotest.fail "fault not recorded"

let test_mgmt_detects_dead_tile () =
  let sim, k = mk_kernel () in
  Kernel.install k ~tile:1 (echo_behavior "victim");
  let mgmt_behavior, mgmt =
    Services.mgmt_service ~period:1000 ~probe_timeout:800 ~dead_after:3
      ~tiles:[ 1; 4 ] ()
  in
  Kernel.install k ~tile:8 mgmt_behavior;
  Kernel.install k ~tile:4 (echo_behavior "fine");
  Sim.after sim 5000 (fun () -> Monitor.fault (Kernel.monitor k 1) "crash");
  Sim.run_for sim 15_000;
  Alcotest.(check (list int)) "tile 1 dead" [ 1 ] (Services.dead_tiles mgmt);
  Alcotest.(check string) "tile 4 alive" "alive"
    (Services.health_to_string (Services.health_of mgmt 4))

(* ------------------------------------------------------------------ *)
(* Reconfiguration *)

let test_reconfigure_swaps_service () =
  let sim, k = mk_kernel () in
  Kernel.install k ~tile:1 (echo_behavior "v1");
  let done_at = ref 0 in
  Sim.after sim 2000 (fun () ->
      Kernel.reconfigure k ~tile:1 ~bitstream_bytes:80_000 (echo_behavior "v2")
        ~on_done:(fun () -> done_at := Sim.now sim));
  let v1 = ref None and v2 = ref None in
  Sim.after sim 30_000 (fun () ->
      let m = Kernel.monitor k 9 in
      Monitor.lookup m "v1" (fun r -> v1 := Some r);
      Monitor.lookup m "v2" (fun r -> v2 := Some r));
  Kernel.install k ~tile:9 (idle_behavior "prober");
  Sim.run_for sim 40_000;
  Alcotest.(check bool) "PR took ~10k cycles" true (!done_at >= 2000 + 9000);
  Alcotest.(check bool) "old name gone" true (!v1 = Some None);
  (match !v2 with
  | Some (Some a) -> Alcotest.(check int) "new name registered" 1 a.Message.tile
  | _ -> Alcotest.fail "v2 not registered")

let test_offline_tile_drops_traffic () =
  let sim, k = mk_kernel () in
  Kernel.install k ~tile:1 (echo_behavior "echo");
  let conn_ref = ref None in
  with_client k ~tile:2 (fun sh ->
      Shell.connect sh ~service:"echo" (fun r ->
          match r with Ok c -> conn_ref := Some (sh, c) | Error _ -> ()));
  Sim.after sim 2000 (fun () -> Monitor.set_offline (Kernel.monitor k 1));
  let err = ref None in
  Sim.after sim 2500 (fun () ->
      match !conn_ref with
      | None -> ()
      | Some (sh, conn) ->
        Shell.request sh conn ~opcode:0 (b "?") (fun r ->
            match r with
            | Error e -> err := Some (Shell.rpc_error_to_string e)
            | Ok _ -> err := Some "unexpected"));
  Sim.run_for sim 40_000;
  (* Cap revoked at offline -> denied locally; or timeout. *)
  match !err with
  | Some e ->
    Alcotest.(check bool) (Printf.sprintf "no reply (%s)" e) true (e <> "unexpected")
  | None -> Alcotest.fail "request never resolved"

(* ------------------------------------------------------------------ *)
(* Per-class egress queues + per-connection rate limits *)

let test_egress_classes_avoid_self_hol () =
  (* A tile sends a train of bulk 4 KiB class-0 messages and then one
     small class-1 message. With one egress FIFO the priority message
     waits behind the train; with per-class queues it jumps it. *)
  let arrival ~classes =
    let sim = Sim.create () in
    let cfg =
      {
        Kernel.default_config with
        Kernel.monitor =
          {
            Monitor.default_config with
            Monitor.rate = 4.0;
            burst = 512;
            egress_classes = classes;
          };
        dram_bytes = 1 lsl 20;
      }
    in
    let k = Kernel.create sim cfg in
    Kernel.install k ~tile:1 (idle_behavior "sink");
    let got_priority_at = ref 0 in
    Kernel.install k ~tile:1
      (Shell.behavior "sink" ~on_boot:(fun sh -> Shell.register_service sh "sink")
         ~on_message:(fun sh msg ->
           match msg.Message.kind with
           | Message.Data { opcode = 9 } -> got_priority_at := Shell.now sh
           | _ -> ()));
    with_client k ~tile:2 (fun sh ->
        Shell.connect sh ~service:"sink" (fun r ->
            match r with
            | Error _ -> ()
            | Ok conn ->
              for _ = 1 to 8 do
                Shell.send_data sh conn ~opcode:1 ~cls:0 (Bytes.create 4096)
              done;
              Shell.send_data sh conn ~opcode:9 ~cls:1 (b "now!")));
    Sim.run_for sim 30_000;
    !got_priority_at
  in
  let hol = arrival ~classes:1 in
  let fast = arrival ~classes:2 in
  (* Both include ~340 cycles of connect setup; the priority message
     itself is delayed by the bulk train only in the single-FIFO case. *)
  Alcotest.(check bool)
    (Printf.sprintf "per-class %d << single FIFO %d" fast hol)
    true
    (fast > 0 && hol > 0 && fast + 300 < hol)

let test_per_connection_rate_limit () =
  (* The victim grants the attacker only 0.5 flits/cycle; the attacker's
     simultaneous class-1 traffic to an open service is unaffected. *)
  let sim, k = mk_kernel () in
  (* Override tile 2 with two egress classes and a generous tile bucket so
     only the per-connection bucket binds. *)
  let sim, k =
    ignore (sim, k);
    let sim = Sim.create () in
    let cfg =
      {
        Kernel.default_config with
        Kernel.monitor =
          {
            Monitor.default_config with
            Monitor.rate = 1000.0;
            burst = 100_000;
            egress_classes = 2;
          };
        dram_bytes = 1 lsl 20;
      }
    in
    (sim, Kernel.create sim cfg)
  in
  Kernel.install k ~tile:1
    (Shell.behavior "victim" ~on_boot:(fun sh ->
         Shell.set_grant_policy sh (fun _ ->
             Shell.Accept_limited { rate = 0.5; burst = 16 });
         Shell.register_service sh "victim"));
  let open_count = ref 0 in
  Kernel.install k ~tile:4
    (Shell.behavior "open"
       ~on_boot:(fun sh -> Shell.register_service sh "open")
       ~on_message:(fun _ m ->
         match m.Message.kind with Message.Data _ -> incr open_count | _ -> ()));
  with_client k ~tile:2 (fun sh ->
      Shell.connect sh ~service:"victim" (fun r ->
          match r with
          | Error _ -> ()
          | Ok vconn ->
            Shell.connect sh ~service:"open" (fun r ->
                match r with
                | Error _ -> ()
                | Ok oconn ->
                  Sim.add_ticker (Shell.sim sh) (fun () ->
                      (* Flood the limited victim on class 0... *)
                      Shell.send_data sh vconn ~opcode:1 ~cls:0 (b "flood!");
                      (* ...while talking to the open service on class 1
                         every 50 cycles. *)
                      if Shell.now sh mod 50 = 0 then
                        Shell.send_data sh oconn ~opcode:2 ~cls:1 (b "legit")))));
  Sim.run_for sim 20_000;
  let attacker = Kernel.monitor k 2 in
  let out = Monitor.msgs_out attacker in
  (* Victim flood: 22-byte messages = 3 flits at 0.5 flits/cycle ->
     ~0.17 msg/cycle -> <= ~3800 over the active window, NOT ~19k. *)
  Alcotest.(check bool)
    (Printf.sprintf "flood throttled by conn bucket (out=%d)" out)
    true
    (out < 5_000);
  Alcotest.(check bool)
    (Printf.sprintf "legit flow unaffected (%d)" !open_count)
    true
    (!open_count > 300)

let test_unlimited_grant_has_no_bucket () =
  let sim, k = mk_kernel () in
  Kernel.install k ~tile:1 (echo_behavior "echo");
  let done_ = ref 0 in
  with_client k ~tile:2 (fun sh ->
      Shell.connect sh ~service:"echo" (fun r ->
          match r with
          | Error _ -> ()
          | Ok conn ->
            for _ = 1 to 20 do
              Shell.request sh conn ~opcode:1 (b "x") (fun r ->
                  if Result.is_ok r then incr done_)
            done));
  Sim.run_for sim 10_000;
  Alcotest.(check int) "all through" 20 !done_

(* ------------------------------------------------------------------ *)
(* Monitor & kernel edge cases *)

let test_egress_overflow_drops_and_notifies () =
  let sim, k = mk_kernel () in
  Kernel.install k ~tile:1 (echo_behavior "echo");
  let errors = ref 0 in
  with_client k ~tile:2 (fun sh ->
      Shell.set_on_error sh (fun _ -> incr errors);
      Shell.connect sh ~service:"echo" (fun r ->
          match r with
          | Error _ -> ()
          | Ok conn ->
            (* Egress queue depth is 64; a burst of 200 in one event must
               drop the excess. *)
            for _ = 1 to 200 do
              Shell.send_data sh conn ~opcode:1 (b "x")
            done));
  Sim.run_for sim 10_000;
  let m = Kernel.monitor k 2 in
  Alcotest.(check bool)
    (Printf.sprintf "dropped %d" (Monitor.dropped m))
    true
    (Monitor.dropped m >= 130);
  Alcotest.(check bool) "error callback fired" true (!errors >= 130)

let test_connect_to_draining_tile_fails_fast () =
  let sim, k = mk_kernel () in
  Kernel.install k ~tile:1 (echo_behavior "echo");
  Sim.after sim 2_000 (fun () -> Monitor.fault (Kernel.monitor k 1) "dead");
  let got = ref None in
  Kernel.install k ~tile:2
    (Shell.behavior "late" ~on_boot:(fun sh ->
         Sim.after (Shell.sim sh) 3_000 (fun () ->
             Shell.connect sh ~service:"echo" (fun r ->
                 match r with
                 | Error e -> got := Some (Shell.rpc_error_to_string e)
                 | Ok _ -> got := Some "connected"))));
  Sim.run_for sim 30_000;
  (* The kernel unregistered the dead tile's names, so lookup fails. *)
  match !got with
  | Some e -> Alcotest.(check bool) ("fails: " ^ e) true (e <> "connected")
  | None -> Alcotest.fail "connect never resolved"

let test_install_on_service_tile_rejected () =
  let _, k = mk_kernel () in
  (try
     Kernel.install k ~tile:(Kernel.name_tile k) (idle_behavior "nope");
     Alcotest.fail "installed over the name service"
   with Invalid_argument _ -> ())

let test_user_tiles_excludes_services () =
  let _, k = mk_kernel () in
  let tiles = Kernel.user_tiles k in
  Alcotest.(check bool) "no name tile" true (not (List.mem (Kernel.name_tile k) tiles));
  Alcotest.(check bool) "no mem tile" true (not (List.mem (Kernel.mem_tile k) tiles));
  Alcotest.(check int) "count" 14 (List.length tiles)

let test_grant_mem_requires_grant_right () =
  (* A tile that received a read-only (non-grantable) segment cannot
     re-grant it. *)
  let sim, k = mk_kernel () in
  let result = ref None in
  with_client k ~tile:3 (fun sh ->
      Shell.alloc sh ~bytes:64 (fun r ->
          match r with
          | Error _ -> ()
          | Ok h ->
            (* First grant to tile 4 read-only (no grant bit). *)
            (match Shell.grant_mem sh h ~to_tile:4 ~rights:Rights.ro with
            | Error _ -> ()
            | Ok h4 ->
              (* Tile 4 now tries to re-grant to tile 5. *)
              let m4 = Kernel.monitor k 4 in
              (match Monitor.mem_handle_of_grant m4 h4 with
              | None -> ()
              | Some mh4 ->
                result :=
                  Some (Monitor.grant_mem m4 mh4 ~to_tile:5 ~rights:Rights.ro)))));
  Sim.run_for sim 10_000;
  match !result with
  | Some (Error Apiary_cap.Store.Not_grantable) -> ()
  | Some (Ok _) -> Alcotest.fail "re-grant of non-grantable cap succeeded"
  | Some (Error e) ->
    Alcotest.failf "unexpected error: %s" (Apiary_cap.Store.error_to_string e)
  | None -> Alcotest.fail "grant flow did not run"

let test_mgmt_recovers_after_restart () =
  (* A tile dies, is declared dead, gets rebuilt — health returns. *)
  let sim, k = mk_kernel () in
  Kernel.install k ~tile:1 (echo_behavior "victim");
  let mgmt_behavior, mgmt =
    Services.mgmt_service ~period:1000 ~probe_timeout:800 ~dead_after:2
      ~tiles:[ 1 ] ()
  in
  Kernel.install k ~tile:8 mgmt_behavior;
  Sim.after sim 4_000 (fun () -> Monitor.fault (Kernel.monitor k 1) "crash");
  Sim.after sim 10_000 (fun () ->
      Kernel.restart_tile k ~tile:1 (echo_behavior "victim"));
  Sim.after sim 9_000 (fun () ->
      Alcotest.(check string) "dead while down" "dead"
        (Services.health_to_string (Services.health_of mgmt 1)));
  Sim.run_for sim 25_000;
  Alcotest.(check string) "alive after rebuild" "alive"
    (Services.health_to_string (Services.health_of mgmt 1))

let test_busy_accumulates () =
  (* Two busy calls in one handler extend, not overwrite. *)
  let sim, k = mk_kernel () in
  let served_at = ref [] in
  Kernel.install k ~tile:1
    (Shell.behavior "slow"
       ~on_boot:(fun sh -> Shell.register_service sh "slow")
       ~on_message:(fun sh msg ->
         Shell.busy sh 100;
         Shell.busy sh 100;
         served_at := Shell.now sh :: !served_at;
         Shell.respond sh msg ~opcode:1 Bytes.empty));
  let replies = ref [] in
  with_client k ~tile:2 (fun sh ->
      Shell.connect sh ~service:"slow" (fun r ->
          match r with
          | Error _ -> ()
          | Ok conn ->
            Shell.request sh conn ~opcode:1 Bytes.empty (fun _ ->
                replies := Shell.now sh :: !replies;
                Shell.request sh conn ~opcode:1 Bytes.empty (fun _ ->
                    replies := Shell.now sh :: !replies))));
  Sim.run_for sim 10_000;
  match List.rev !replies with
  | [ r1; r2 ] ->
    (* Second request waits out the first's 200-cycle busy window. *)
    Alcotest.(check bool)
      (Printf.sprintf "second (%d) >= first (%d) + 200" r2 r1)
      true
      (r2 - r1 >= 200)
  | _ -> Alcotest.fail "expected two replies"

let test_trace_ring_wraps () =
  let tr = Trace.create ~capacity:8 () in
  Trace.set_enabled tr true;
  for c = 1 to 20 do
    Trace.record tr ~cycle:c ~tile:0 ~dir:Trace.Ingress ~detail:"x" ()
  done;
  let evs = Trace.events tr in
  Alcotest.(check int) "retains capacity" 8 (List.length evs);
  Alcotest.(check int) "total counted" 20 (Trace.count tr);
  match evs with
  | first :: _ -> Alcotest.(check int) "oldest retained is 13" 13 first.Trace.cycle
  | [] -> Alcotest.fail "empty"

let test_trace_disabled_is_free () =
  let tr = Trace.create ~capacity:8 () in
  let blew_up = ref false in
  Trace.record_lazy tr ~cycle:0 ~tile:0 ~dir:Trace.Egress (fun () ->
      blew_up := true;
      "never");
  Alcotest.(check bool) "lazy detail not built" false !blew_up;
  Alcotest.(check int) "nothing recorded" 0 (List.length (Trace.events tr))

let test_trace_fold () =
  let tr = Trace.create ~capacity:8 () in
  Trace.set_enabled tr true;
  for c = 1 to 12 do
    Trace.record tr ~cycle:c ~tile:(c mod 3) ~dir:Trace.Egress ~detail:"x" ()
  done;
  (* Only the retained window (cycles 5..12) is folded, oldest first. *)
  let sum = Trace.fold tr ~init:0 ~f:(fun a e -> a + e.Trace.cycle) in
  Alcotest.(check int) "fold over retained ring" 68 sum;
  Alcotest.(check int) "agrees with events" sum
    (List.fold_left (fun a e -> a + e.Trace.cycle) 0 (Trace.events tr))

let prop_wire_fuzz_never_crashes =
  QCheck.Test.make ~name:"wire decode never raises on fuzz" ~count:500
    QCheck.(string_of_size Gen.(int_range 0 100))
    (fun junk ->
      match Wire.decode (Bytes.of_string junk) with Ok _ | Error _ -> true)

(* ------------------------------------------------------------------ *)
(* Trace *)

let test_trace_records_flow () =
  let sim, k = mk_kernel () in
  Trace.set_enabled (Kernel.trace k) true;
  Kernel.install k ~tile:1 (echo_behavior "echo");
  with_client k ~tile:2 (fun sh ->
      Shell.connect sh ~service:"echo" (fun r ->
          match r with
          | Ok conn -> Shell.request sh conn ~opcode:9 (b "traced") (fun _ -> ())
          | Error _ -> ()));
  Sim.run_for sim 5000;
  let evs = Trace.events (Kernel.trace k) in
  Alcotest.(check bool) "events recorded" true (List.length evs > 10);
  let egress_t2 = Trace.find (Kernel.trace k) ~tile:2 ~dir:Trace.Egress () in
  Alcotest.(check bool) "tile 2 egress seen" true (List.length egress_t2 >= 2)

let test_monitor_added_latency_enforce_vs_off () =
  (* Enforcing monitor with a 2-cycle check pipeline vs a raw pass-through
     (no checks, no added pipeline): E1's latency overhead comparison. *)
  let run enforce =
    let check_latency = if enforce then 2 else 0 in
    let sim, k = mk_kernel ~enforce ~check_latency () in
    Kernel.install k ~tile:1 (echo_behavior "echo");
    with_client k ~tile:2 (fun sh ->
        Shell.connect sh ~service:"echo" (fun r ->
            match r with
            | Ok conn ->
              Sim.every (Shell.sim sh) 50 (fun () ->
                  Shell.request sh conn ~opcode:0 (b "m") (fun _ -> ()))
            | Error _ -> ()));
    Sim.run_for sim 10_000;
    Stats.Histogram.mean (Monitor.added_latency (Kernel.monitor k 2))
  in
  let on = run true and off = run false in
  Alcotest.(check bool)
    (Printf.sprintf "enforce %.1f > off %.1f" on off)
    true (on > off)

let qc = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "core"
    [
      ( "wire",
        [
          qc prop_wire_roundtrip;
          qc prop_wire_rejects_truncation;
          Alcotest.test_case "garbage" `Quick test_wire_garbage;
          Alcotest.test_case "size" `Quick test_message_size;
        ] );
      ( "rate_limiter",
        [
          Alcotest.test_case "refill" `Quick test_rate_limiter_refill;
          Alcotest.test_case "burst cap" `Quick test_rate_limiter_burst_cap;
          Alcotest.test_case "unlimited" `Quick test_rate_limiter_unlimited;
        ] );
      ( "naming",
        [
          Alcotest.test_case "register+lookup" `Quick test_register_lookup;
          Alcotest.test_case "unknown" `Quick test_lookup_unknown;
        ] );
      ( "ipc",
        [
          Alcotest.test_case "echo rpc" `Quick test_echo_rpc;
          Alcotest.test_case "connect unknown" `Quick test_connect_unknown_service;
          Alcotest.test_case "connect policy" `Quick test_connect_policy_refusal;
          Alcotest.test_case "latency scales" `Quick test_rpc_latency_positive_and_scales;
          Alcotest.test_case "reply window" `Quick test_reply_window_single_use;
        ] );
      ( "memory",
        [
          Alcotest.test_case "alloc/write/read" `Quick test_alloc_write_read;
          Alcotest.test_case "oob denied" `Quick test_mem_oob_denied_locally;
          Alcotest.test_case "free revokes" `Quick test_free_revokes_cap;
          Alcotest.test_case "oom" `Quick test_alloc_oom;
          Alcotest.test_case "free not owner" `Quick test_free_not_owner;
          Alcotest.test_case "grant shared read" `Quick test_grant_mem_shared_read;
        ] );
      ( "enforcement",
        [
          Alcotest.test_case "raw send denied" `Quick test_raw_send_denied_when_enforced;
          Alcotest.test_case "raw send w/o monitor" `Quick test_raw_send_passes_without_enforcement;
          Alcotest.test_case "flood capped" `Quick test_rate_limit_caps_flood;
        ] );
      ( "fault",
        [
          Alcotest.test_case "nacks peers" `Quick test_fault_nacks_peers;
          Alcotest.test_case "isolates other app" `Quick test_fault_isolates_other_app;
          Alcotest.test_case "watchdog" `Quick test_watchdog_detects_hang;
          Alcotest.test_case "raise_fault" `Quick test_explicit_raise_fault;
          Alcotest.test_case "mgmt detects dead" `Quick test_mgmt_detects_dead_tile;
        ] );
      ( "conn_policing",
        [
          Alcotest.test_case "per-class egress" `Quick test_egress_classes_avoid_self_hol;
          Alcotest.test_case "per-conn rate" `Quick test_per_connection_rate_limit;
          Alcotest.test_case "unlimited grant" `Quick test_unlimited_grant_has_no_bucket;
        ] );
      ( "reconfig",
        [
          Alcotest.test_case "swap service" `Quick test_reconfigure_swaps_service;
          Alcotest.test_case "offline drops" `Quick test_offline_tile_drops_traffic;
        ] );
      ( "edge_cases",
        [
          Alcotest.test_case "egress overflow" `Quick test_egress_overflow_drops_and_notifies;
          Alcotest.test_case "connect to dead tile" `Quick test_connect_to_draining_tile_fails_fast;
          Alcotest.test_case "install on service tile" `Quick test_install_on_service_tile_rejected;
          Alcotest.test_case "user tiles" `Quick test_user_tiles_excludes_services;
          Alcotest.test_case "grant needs grant right" `Quick test_grant_mem_requires_grant_right;
          Alcotest.test_case "mgmt recovers" `Quick test_mgmt_recovers_after_restart;
          Alcotest.test_case "busy accumulates" `Quick test_busy_accumulates;
          Alcotest.test_case "trace ring wraps" `Quick test_trace_ring_wraps;
          Alcotest.test_case "trace disabled free" `Quick test_trace_disabled_is_free;
          Alcotest.test_case "trace fold" `Quick test_trace_fold;
          qc prop_wire_fuzz_never_crashes;
        ] );
      ( "observability",
        [
          Alcotest.test_case "trace flow" `Quick test_trace_records_flow;
          Alcotest.test_case "monitor latency" `Quick test_monitor_added_latency_enforce_vs_off;
        ] );
    ]
