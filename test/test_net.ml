(* Tests for the network substrate: frames + FCS, links, the two MAC
   generations and the portable adapter, the learning switch, the RPC
   envelope, and clients. *)

module Sim = Apiary_engine.Sim
module Frame = Apiary_net.Frame
module Link = Apiary_net.Link
module Mac = Apiary_net.Mac
module Switch = Apiary_net.Switch
module Netproto = Apiary_net.Netproto

let b = Bytes.of_string

(* ------------------------------------------------------------------ *)
(* Frames *)

let prop_frame_roundtrip =
  QCheck.Test.make ~name:"frame serialize/parse roundtrip" ~count:300
    QCheck.(triple (int_bound 0xFFFFFF) (int_bound 0xFFFFFF) (string_of_size Gen.(int_range 0 1500)))
    (fun (dst, src, payload) ->
      let f = Frame.make ~dst ~src (Bytes.of_string payload) in
      match Frame.parse (Frame.serialize f) with
      | Ok f' -> f' = f
      | Error _ -> false)

let test_frame_fcs_detects_corruption () =
  let f = Frame.make ~dst:1 ~src:2 (b "payload bytes here for the fcs") in
  let wire = Frame.serialize f in
  Bytes.set wire 20 (Char.chr (Char.code (Bytes.get wire 20) lxor 0x40));
  match Frame.parse wire with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "corrupted frame accepted"

let test_frame_mtu () =
  Alcotest.check_raises "mtu" (Invalid_argument "Frame.make: payload exceeds MTU")
    (fun () -> ignore (Frame.make ~dst:1 ~src:2 (Bytes.create 1501)))

let test_frame_padding () =
  let f = Frame.make ~dst:1 ~src:2 (b "x") in
  (* 16B header + 46B padded payload + 4B FCS *)
  Alcotest.(check int) "padded wire bytes" 66 (Bytes.length (Frame.serialize f));
  match Frame.parse (Frame.serialize f) with
  | Ok f' -> Alcotest.(check string) "unpadded payload" "x" (Bytes.to_string f'.Frame.payload)
  | Error e -> Alcotest.fail e

(* ------------------------------------------------------------------ *)
(* Links *)

let test_link_delivers_with_latency () =
  let sim = Sim.create () in
  let link = Link.create sim ~bytes_per_cycle:5.0 ~prop_cycles:100 in
  let got_at = ref (-1) in
  Link.on_recv link Link.B (fun _ -> got_at := Sim.now sim);
  Link.send link ~from:Link.A (Frame.make ~dst:1 ~src:2 (b "hello"));
  Sim.run_for sim 1000;
  (* wire size 86 bytes at 5 B/cy = 18 cycles + 100 prop. *)
  Alcotest.(check bool)
    (Printf.sprintf "arrival at %d" !got_at)
    true
    (!got_at >= 115 && !got_at <= 125)

let test_link_serializes_back_to_back () =
  let sim = Sim.create () in
  let link = Link.create sim ~bytes_per_cycle:1.0 ~prop_cycles:0 in
  let arrivals = ref [] in
  Link.on_recv link Link.B (fun _ -> arrivals := Sim.now sim :: !arrivals);
  let f = Frame.make ~dst:1 ~src:2 (Bytes.create 100) in
  Link.send link ~from:Link.A f;
  Link.send link ~from:Link.A f;
  Sim.run_for sim 2000;
  match List.rev !arrivals with
  | [ a; bb ] ->
    Alcotest.(check bool)
      (Printf.sprintf "gap %d-%d = wire size" a bb)
      true
      (bb - a = Frame.wire_size f)
  | _ -> Alcotest.fail "expected two arrivals"

let test_link_drops_corrupt () =
  let sim = Sim.create () in
  let link = Link.create sim ~bytes_per_cycle:5.0 ~prop_cycles:10 in
  let got = ref 0 in
  Link.on_recv link Link.B (fun _ -> incr got);
  Link.set_corrupt_next link ~from:Link.A;
  Link.send link ~from:Link.A (Frame.make ~dst:1 ~src:2 (b "doomed"));
  Sim.run_for sim 200;
  Alcotest.(check int) "dropped" 0 !got;
  Alcotest.(check int) "counted" 1 (Link.frames_dropped link)

(* ------------------------------------------------------------------ *)
(* MACs *)

let test_teng_requires_reset () =
  let sim = Sim.create () in
  let link = Link.create sim ~bytes_per_cycle:5.0 ~prop_cycles:10 in
  let mac = Mac.Teng.create sim link Link.A in
  Alcotest.(check bool) "tx before reset fails" false
    (Mac.Teng.submit mac (Frame.make ~dst:1 ~src:2 (b "early")));
  Mac.Teng.reset mac;
  Alcotest.(check bool) "not ready during reset" false (Mac.Teng.ready mac);
  Sim.run_for sim 60;
  Alcotest.(check bool) "ready after reset" true (Mac.Teng.ready mac);
  Alcotest.(check bool) "tx ok" true
    (Mac.Teng.submit mac (Frame.make ~dst:1 ~src:2 (b "now")))

let test_hundredg_reset_sequence () =
  let sim = Sim.create () in
  let link = Link.create sim ~bytes_per_cycle:50.0 ~prop_cycles:10 in
  let mac = Mac.Hundredg.create sim link Link.A in
  (* Violate the hold time: stays down. *)
  Mac.Hundredg.assert_reset mac;
  Sim.run_for sim 10;
  Mac.Hundredg.release_reset mac;
  Alcotest.(check bool) "early release -> down" false (Mac.Hundredg.ready mac);
  (* Proper sequence. *)
  Mac.Hundredg.assert_reset mac;
  Sim.run_for sim 150;
  Mac.Hundredg.release_reset mac;
  Alcotest.(check bool) "up" true (Mac.Hundredg.ready mac)

let test_hundredg_ring_backpressure () =
  let sim = Sim.create () in
  let link = Link.create sim ~bytes_per_cycle:1.0 ~prop_cycles:0 in
  let mac = Mac.Hundredg.create sim link Link.A in
  Mac.Hundredg.assert_reset mac;
  Sim.run_for sim 150;
  Mac.Hundredg.release_reset mac;
  let f = Frame.make ~dst:1 ~src:2 (Bytes.create 1000) in
  let accepted = ref 0 in
  for _ = 1 to 40 do
    if Mac.Hundredg.post_tx mac f then incr accepted
  done;
  Alcotest.(check bool)
    (Printf.sprintf "ring limits accepted=%d" !accepted)
    true (!accepted <= 33)

let test_portable_adapter_both_generations () =
  let run gen =
    let sim = Sim.create () in
    let link = Link.create sim ~bytes_per_cycle:5.0 ~prop_cycles:10 in
    let a = Mac.create sim gen link Link.A in
    let bmac = Mac.create sim gen link Link.B in
    let got = ref None in
    Mac.set_rx bmac (fun f -> got := Some (Bytes.to_string f.Frame.payload));
    (* Same portable code for both generations. *)
    Sim.after sim 200 (fun () ->
        ignore (Mac.send a (Frame.make ~dst:9 ~src:8 (b "portable"))));
    Sim.run_for sim 1000;
    !got
  in
  Alcotest.(check (option string)) "10G" (Some "portable") (run Mac.Gen_10g);
  Alcotest.(check (option string)) "100G" (Some "portable") (run Mac.Gen_100g)

(* ------------------------------------------------------------------ *)
(* Switch *)

let mk_host sim switch ~port ~addr =
  let link = Link.create sim ~bytes_per_cycle:5.0 ~prop_cycles:10 in
  Switch.attach switch ~port link Link.B;
  let mac = Mac.create sim Mac.Gen_10g link Link.A in
  (mac, addr)

let test_switch_learns_and_forwards () =
  let sim = Sim.create () in
  let sw = Switch.create sim ~nports:4 ~latency:50 in
  let m1, a1 = mk_host sim sw ~port:0 ~addr:0x11 in
  let m2, a2 = mk_host sim sw ~port:1 ~addr:0x22 in
  let m3, _ = mk_host sim sw ~port:2 ~addr:0x33 in
  let got2 = ref 0 and got3 = ref 0 in
  Mac.set_rx m2 (fun _ -> incr got2);
  Mac.set_rx m3 (fun _ -> incr got3);
  Sim.after sim 200 (fun () ->
      (* First frame to unknown dst: floods (reaching both). *)
      ignore (Mac.send m1 (Frame.make ~dst:a2 ~src:a1 (b "one"))));
  Sim.after sim 1000 (fun () ->
      (* m2 replies: the switch learns both sides. *)
      ignore (Mac.send m2 (Frame.make ~dst:a1 ~src:a2 (b "two"))));
  Sim.after sim 2000 (fun () ->
      (* Now unicast: m3 must not see it. *)
      ignore (Mac.send m1 (Frame.make ~dst:a2 ~src:a1 (b "three"))));
  Sim.run_for sim 4000;
  Alcotest.(check int) "m2 got both" 2 !got2;
  Alcotest.(check int) "m3 saw only the flood" 1 !got3;
  Alcotest.(check bool) "learned" true (Switch.table_size sw >= 2)

(* ------------------------------------------------------------------ *)
(* Netproto *)

let prop_netproto_roundtrip =
  QCheck.Test.make ~name:"netproto roundtrip" ~count:300
    QCheck.(quad (int_bound 1_000_000) (string_of_size Gen.(int_range 1 40))
              (int_bound 100_000) (string_of_size Gen.(int_range 0 800)))
    (fun (req_id, service, op, body) ->
      let body = Bytes.of_string body in
      let req = { Netproto.req_id; service; op; body } in
      let rsp = { Netproto.rsp_id = req_id; status = Netproto.Ok_resp; body } in
      Netproto.decode_request (Netproto.encode_request req) = Ok req
      && Netproto.decode_response (Netproto.encode_response rsp) = Ok rsp)

let test_netproto_rejects_mixups () =
  let req = { Netproto.req_id = 1; service = "s"; op = 2; body = b "x" } in
  (match Netproto.decode_response (Netproto.encode_request req) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "request decoded as response")


(* ------------------------------------------------------------------ *)
(* Client load generators (driven against a zero-logic reflector) *)

let mk_reflector sim sw ~port ~addr =
  (* A host that echoes any request back as an OK response. *)
  let mac, a = mk_host sim sw ~port ~addr in
  Mac.set_rx mac (fun f ->
      match Netproto.decode_request f.Frame.payload with
      | Error _ -> ()
      | Ok req ->
        let rsp =
          { Netproto.rsp_id = req.Netproto.req_id; status = Netproto.Ok_resp;
            body = req.Netproto.body }
        in
        ignore (Mac.send mac (Frame.make ~dst:f.Frame.src ~src:a
                                (Netproto.encode_response rsp))));
  a

let test_client_closed_loop_keeps_window () =
  let sim = Apiary_engine.Sim.create () in
  let sw = Switch.create sim ~nports:4 ~latency:50 in
  let server = mk_reflector sim sw ~port:0 ~addr:0xA in
  let cmac, caddr = mk_host sim sw ~port:1 ~addr:0xB in
  let client = Apiary_net.Client.create sim ~mac:cmac ~my_mac:caddr ~server_mac:server in
  Apiary_net.Client.start_closed client
    { Apiary_net.Client.service = "echo"; op = 0; gen = (fun _ -> b "q") }
    ~concurrency:3;
  Sim.run_for sim 50_000;
  Apiary_net.Client.stop client;
  let issued = Apiary_net.Client.issued client in
  let completed = Apiary_net.Client.completed client in
  Alcotest.(check bool) "progress" true (completed > 50);
  (* Closed loop: in-flight never exceeds the window. *)
  Alcotest.(check bool)
    (Printf.sprintf "window bound (%d issued, %d completed)" issued completed)
    true
    (issued - completed <= 3)

let test_client_open_loop_rate () =
  let sim = Apiary_engine.Sim.create () in
  let sw = Switch.create sim ~nports:4 ~latency:50 in
  let server = mk_reflector sim sw ~port:0 ~addr:0xA in
  let cmac, caddr = mk_host sim sw ~port:1 ~addr:0xB in
  let client = Apiary_net.Client.create sim ~mac:cmac ~my_mac:caddr ~server_mac:server in
  Apiary_net.Client.start_open client
    { Apiary_net.Client.service = "echo"; op = 0; gen = (fun _ -> b "q") }
    ~rate:0.001;
  Sim.run_for sim 100_000;
  Apiary_net.Client.stop client;
  let issued = Apiary_net.Client.issued client in
  (* Poisson(0.001) over 100k cycles: ~100 requests. *)
  Alcotest.(check bool)
    (Printf.sprintf "open-loop rate approx (%d)" issued)
    true
    (issued > 60 && issued < 150)

(* ------------------------------------------------------------------ *)
(* Switch: bounded learning table, per-port counters, port up/down *)

let test_switch_bounded_fdb () =
  let sim = Sim.create () in
  let sw = Switch.create ~fdb_capacity:2 sim ~nports:4 ~latency:50 in
  let m0, _ = mk_host sim sw ~port:0 ~addr:0x10 in
  let _m1, a1 = mk_host sim sw ~port:1 ~addr:0x11 in
  (* One host cycles through many source MACs (a MAC-flooding attack):
     the table must stay bounded, evicting oldest-first. *)
  for i = 0 to 9 do
    Sim.after sim (200 * (i + 1)) (fun () ->
        ignore (Mac.send m0 (Frame.make ~dst:a1 ~src:(0x100 + i) (b "x"))))
  done;
  Sim.run_for sim 5_000;
  Alcotest.(check int) "table bounded" 2 (Switch.table_size sw);
  Alcotest.(check int) "capacity visible" 2 (Switch.fdb_capacity sw)

let test_switch_port_counters_and_down () =
  let sim = Sim.create () in
  let sw = Switch.create sim ~nports:4 ~latency:50 in
  let m0, a0 = mk_host sim sw ~port:0 ~addr:0x10 in
  let m1, a1 = mk_host sim sw ~port:1 ~addr:0x11 in
  let got1 = ref 0 in
  Mac.set_rx m1 (fun _ -> incr got1);
  (* Flood (unknown dst), then learned unicast both ways. *)
  Sim.after sim 100 (fun () ->
      ignore (Mac.send m0 (Frame.make ~dst:a1 ~src:a0 (b "flood"))));
  Sim.after sim 1_000 (fun () ->
      ignore (Mac.send m1 (Frame.make ~dst:a0 ~src:a1 (b "back"))));
  Sim.after sim 2_000 (fun () ->
      ignore (Mac.send m0 (Frame.make ~dst:a1 ~src:a0 (b "unicast"))));
  Sim.run_for sim 3_000;
  Alcotest.(check int) "port0 flooded" 1 (Switch.port_flooded sw ~port:0);
  Alcotest.(check int) "port0 forwarded" 1 (Switch.port_forwarded sw ~port:0);
  Alcotest.(check int) "port1 forwarded" 1 (Switch.port_forwarded sw ~port:1);
  Alcotest.(check int) "no drops yet" 0 (Switch.frames_dropped sw);
  (* Down the egress port: the unicast is dropped and attributed to the
     ingress port; the receiver sees nothing new. *)
  Switch.set_port_up sw ~port:1 false;
  Alcotest.(check bool) "port reads down" false (Switch.port_up sw ~port:1);
  let before = !got1 in
  Sim.after sim 100 (fun () ->
      ignore (Mac.send m0 (Frame.make ~dst:a1 ~src:a0 (b "to the dead"))));
  Sim.run_for sim 2_000;
  Alcotest.(check int) "receiver silent" before !got1;
  Alcotest.(check int) "drop counted" 1 (Switch.frames_dropped sw);
  Alcotest.(check int) "attributed to ingress" 1 (Switch.port_dropped sw ~port:0)

(* ------------------------------------------------------------------ *)
(* Netsvc outbound error paths (driven board-to-board: two full Apiary
   boards on one switch, callers using Netsvc.remote_request) *)

module Board = Apiary_apps.Board
module Netsvc = Apiary_net.Netsvc
module Kernel = Apiary_core.Kernel
module Shell = Apiary_core.Shell
module Accels = Apiary_accel.Accels

(* Two boards on one ToR switch; returns (sim, board_a, board_b). *)
let mk_two_boards () =
  let sim = Sim.create () in
  let a = Board.create sim ~switch_ports:4 in
  let bd =
    Board.create sim ~attach:(a.Board.switch, 1) ~mac_addr:0x02_0000_0B0001
  in
  (sim, a, bd)

let with_board_tile board ~delay f =
  match Board.user_tiles board with
  | tile :: _ ->
    Kernel.install board.Board.kernel ~tile
      (Shell.behavior "driver" ~on_boot:(fun sh ->
           Sim.after (Shell.sim sh) delay (fun () -> f sh)))
  | [] -> Alcotest.fail "no free tile"

let test_netsvc_outbound_unknown_service () =
  let sim, a, bd = mk_two_boards () in
  let status = ref None in
  with_board_tile a ~delay:2_000 (fun sh ->
      Shell.connect sh ~service:"net" (fun r ->
          match r with
          | Error _ -> ()
          | Ok net ->
            Netsvc.remote_request sh net ~dst_mac:bd.Board.fpga_mac_addr
              ~service:"nope" ~op:1 (b "q") (fun r ->
                match r with
                | Ok rsp -> status := Some rsp.Netproto.status
                | Error _ -> ())));
  Sim.run_for sim 100_000;
  (match !status with
  | Some Netproto.Service_unavailable -> ()
  | Some _ -> Alcotest.fail "expected Service_unavailable"
  | None -> Alcotest.fail "no response");
  Alcotest.(check bool) "remote board counted unavailable" true
    (bd.Board.net_stats.Netsvc.unavailable >= 1)

let test_netsvc_malformed_frame_counted () =
  let sim = Sim.create () in
  let board = Board.create sim in
  let mac, addr = Board.add_client_port board ~port:1 () in
  Sim.after sim 2_000 (fun () ->
      ignore
        (Mac.send mac
           (Frame.make ~dst:board.Board.fpga_mac_addr ~src:addr
              (b "not a netproto frame at all"))));
  Sim.run_for sim 50_000;
  Alcotest.(check int) "bad frame counted" 1
    board.Board.net_stats.Netsvc.bad_frames

let test_netsvc_concurrent_reply_matching () =
  let sim, a, bd = mk_two_boards () in
  (* Echo service on board B; board A issues 4 overlapping outbound
     calls with distinct bodies — each callback must get its own body
     back despite all four sharing the network tile's pending table. *)
  (match Board.user_tiles bd with
  | tile :: _ ->
    Kernel.install bd.Board.kernel ~tile (Accels.echo ~service:"mirror" ())
  | [] -> Alcotest.fail "no tile on board B");
  let ok = ref 0 and wrong = ref 0 in
  with_board_tile a ~delay:3_000 (fun sh ->
      Shell.connect sh ~service:"net" (fun r ->
          match r with
          | Error _ -> ()
          | Ok net ->
            for i = 0 to 3 do
              let body = Bytes.of_string (Printf.sprintf "payload-%d" i) in
              Netsvc.remote_request sh net ~dst_mac:bd.Board.fpga_mac_addr
                ~service:"mirror" ~op:Accels.op_echo body (fun r ->
                  match r with
                  | Ok rsp when rsp.Netproto.status = Netproto.Ok_resp ->
                    if Bytes.equal rsp.Netproto.body body then incr ok
                    else incr wrong
                  | _ -> ())
            done));
  Sim.run_for sim 200_000;
  Alcotest.(check int) "no cross-matched replies" 0 !wrong;
  Alcotest.(check int) "all four matched" 4 !ok;
  Alcotest.(check bool) "outbound counted" true
    (a.Board.net_stats.Netsvc.outbound >= 4)

let qc = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "net"
    [
      ( "frame",
        [
          qc prop_frame_roundtrip;
          Alcotest.test_case "fcs" `Quick test_frame_fcs_detects_corruption;
          Alcotest.test_case "mtu" `Quick test_frame_mtu;
          Alcotest.test_case "padding" `Quick test_frame_padding;
        ] );
      ( "link",
        [
          Alcotest.test_case "latency" `Quick test_link_delivers_with_latency;
          Alcotest.test_case "serialization" `Quick test_link_serializes_back_to_back;
          Alcotest.test_case "drops corrupt" `Quick test_link_drops_corrupt;
        ] );
      ( "mac",
        [
          Alcotest.test_case "10G reset" `Quick test_teng_requires_reset;
          Alcotest.test_case "100G reset sequence" `Quick test_hundredg_reset_sequence;
          Alcotest.test_case "100G ring" `Quick test_hundredg_ring_backpressure;
          Alcotest.test_case "portable adapter" `Quick test_portable_adapter_both_generations;
        ] );
      ( "switch",
        [
          Alcotest.test_case "learn+forward" `Quick test_switch_learns_and_forwards;
          Alcotest.test_case "bounded fdb" `Quick test_switch_bounded_fdb;
          Alcotest.test_case "port counters + down" `Quick
            test_switch_port_counters_and_down;
        ] );
      ( "netsvc",
        [
          Alcotest.test_case "outbound unknown service" `Quick
            test_netsvc_outbound_unknown_service;
          Alcotest.test_case "malformed frame counted" `Quick
            test_netsvc_malformed_frame_counted;
          Alcotest.test_case "concurrent reply matching" `Quick
            test_netsvc_concurrent_reply_matching;
        ] );
      ( "client",
        [
          Alcotest.test_case "closed loop window" `Quick test_client_closed_loop_keeps_window;
          Alcotest.test_case "open loop rate" `Quick test_client_open_loop_rate;
        ] );
      ( "netproto",
        [
          qc prop_netproto_roundtrip;
          Alcotest.test_case "mixups" `Quick test_netproto_rejects_mixups;
        ] );
    ]
