(* Tests for the NoC: routing correctness, end-to-end delivery, latency
   model sanity, credit/backpressure safety, QoS arbitration, and traffic
   patterns. *)

module Sim = Apiary_engine.Sim
module Rng = Apiary_engine.Rng
module Stats = Apiary_engine.Stats
module Coord = Apiary_noc.Coord
module Port = Apiary_noc.Port
module Packet = Apiary_noc.Packet
module Routing = Apiary_noc.Routing
module Mesh = Apiary_noc.Mesh
module Traffic = Apiary_noc.Traffic

let mk_mesh ?(cols = 4) ?(rows = 4) ?(vcs = 2) ?(depth = 4) ?(qos = false)
    ?(routing = Routing.Xy) sim : int Mesh.t =
  Mesh.create sim
    { Mesh.cols; rows; vcs; depth; flit_bytes = 16; routing; qos }

(* ------------------------------------------------------------------ *)
(* Port / Coord / Packet basics *)

let test_port_opposite () =
  List.iter
    (fun p -> Alcotest.(check bool) "involution" true (Port.opposite (Port.opposite p) = p))
    Port.all

let test_coord_roundtrip () =
  for i = 0 to 19 do
    let c = Coord.of_index ~cols:5 i in
    Alcotest.(check int) "roundtrip" i (Coord.to_index ~cols:5 c)
  done

let test_coord_hops () =
  Alcotest.(check int) "manhattan" 5 (Coord.hops (Coord.make 0 0) (Coord.make 2 3))

let test_flits_for () =
  Alcotest.(check int) "empty payload" 1 (Packet.flits_for ~flit_bytes:16 ~payload_bytes:0);
  Alcotest.(check int) "one byte" 2 (Packet.flits_for ~flit_bytes:16 ~payload_bytes:1);
  Alcotest.(check int) "exact" 2 (Packet.flits_for ~flit_bytes:16 ~payload_bytes:16);
  Alcotest.(check int) "17 bytes" 3 (Packet.flits_for ~flit_bytes:16 ~payload_bytes:17)

let prop_flits_positive =
  QCheck.Test.make ~name:"flit count >= 1 and monotone" ~count:200
    QCheck.(pair (int_range 1 64) (int_bound 100_000))
    (fun (fb, pb) ->
      let f = Packet.flits_for ~flit_bytes:fb ~payload_bytes:pb in
      let f' = Packet.flits_for ~flit_bytes:fb ~payload_bytes:(pb + fb) in
      f >= 1 && f' = f + 1)

(* ------------------------------------------------------------------ *)
(* Routing *)

let test_routing_xy () =
  let at = Coord.make 1 1 in
  Alcotest.(check string) "east first"
    "east"
    (Port.to_string (Routing.next_port Routing.Xy ~at ~dst:(Coord.make 3 3)));
  Alcotest.(check string) "then south"
    "south"
    (Port.to_string (Routing.next_port Routing.Xy ~at ~dst:(Coord.make 1 3)));
  Alcotest.(check string) "local at dst"
    "local"
    (Port.to_string (Routing.next_port Routing.Xy ~at ~dst:at))

let test_routing_yx () =
  let at = Coord.make 1 1 in
  Alcotest.(check string) "south first"
    "south"
    (Port.to_string (Routing.next_port Routing.Yx ~at ~dst:(Coord.make 3 3)))

let prop_routing_progress =
  (* Following the routing function always reaches the destination in
     exactly [hops] steps. *)
  QCheck.Test.make ~name:"xy routing reaches dst in hop-count steps" ~count:300
    QCheck.(quad (int_bound 7) (int_bound 7) (int_bound 7) (int_bound 7))
    (fun (ax, ay, bx, by) ->
      let src = Coord.make ax ay and dst = Coord.make bx by in
      let rec walk at steps =
        if steps > 64 then None
        else
          match Routing.next_port Routing.Xy ~at ~dst with
          | Port.Local -> Some steps
          | Port.East -> walk (Coord.make (at.Coord.x + 1) at.Coord.y) (steps + 1)
          | Port.West -> walk (Coord.make (at.Coord.x - 1) at.Coord.y) (steps + 1)
          | Port.South -> walk (Coord.make at.Coord.x (at.Coord.y + 1)) (steps + 1)
          | Port.North -> walk (Coord.make at.Coord.x (at.Coord.y - 1)) (steps + 1)
      in
      walk src 0 = Some (Coord.hops src dst))

(* ------------------------------------------------------------------ *)
(* Mesh end-to-end *)

let test_mesh_single_delivery () =
  let sim = Sim.create () in
  let mesh = mk_mesh sim in
  let got = ref [] in
  Mesh.set_receiver mesh (Coord.make 3 3) (fun pkt -> got := pkt.Packet.payload :: !got);
  Mesh.send mesh ~src:(Coord.make 0 0) ~dst:(Coord.make 3 3) ~payload_bytes:32 99;
  Sim.run_for sim 100;
  Alcotest.(check (list int)) "payload delivered" [ 99 ] !got;
  Alcotest.(check int) "counted" 1 (Mesh.packets_delivered mesh)

let test_mesh_latency_scales_with_hops () =
  (* 1-hop vs 6-hop latency must differ by roughly the hop delta. *)
  let run src dst =
    let sim = Sim.create () in
    let mesh = mk_mesh sim in
    Mesh.send mesh ~src ~dst ~payload_bytes:0 0;
    Sim.run_for sim 200;
    Alcotest.(check int) "delivered" 1 (Mesh.packets_delivered mesh);
    Stats.Histogram.max_value (Mesh.latency mesh)
  in
  let near = run (Coord.make 0 0) (Coord.make 1 0) in
  let far = run (Coord.make 0 0) (Coord.make 3 3) in
  let hop_delta = 5 in
  Alcotest.(check bool)
    (Printf.sprintf "far(%d) - near(%d) ~ hops" far near)
    true
    (far - near >= hop_delta - 1 && far - near <= hop_delta + 3)

let test_mesh_serialization_latency () =
  (* A large packet takes longer than a small one over the same path. *)
  let run bytes =
    let sim = Sim.create () in
    let mesh = mk_mesh sim in
    Mesh.send mesh ~src:(Coord.make 0 0) ~dst:(Coord.make 3 0) ~payload_bytes:bytes 0;
    Sim.run_for sim 1000;
    Stats.Histogram.max_value (Mesh.latency mesh)
  in
  let small = run 0 and big = run 512 in
  (* 512B = 32 extra flits to serialize. *)
  Alcotest.(check bool)
    (Printf.sprintf "big(%d) >= small(%d)+32" big small)
    true
    (big >= small + 32)

let test_mesh_all_pairs_delivery () =
  (* Every tile sends to every other tile; everything must arrive exactly
     once with no drops (credit flow control must never lose flits). *)
  let sim = Sim.create () in
  let mesh = mk_mesh ~cols:3 ~rows:3 sim in
  let expected = ref 0 in
  let received = ref 0 in
  List.iter
    (fun c -> Mesh.set_receiver mesh c (fun _ -> incr received))
    (Mesh.coords mesh);
  List.iter
    (fun src ->
      List.iter
        (fun dst ->
          if not (Coord.equal src dst) then begin
            incr expected;
            Mesh.send mesh ~src ~dst ~payload_bytes:64 0
          end)
        (Mesh.coords mesh))
    (Mesh.coords mesh);
  Sim.run_for sim 5000;
  Alcotest.(check int) "all delivered" !expected !received;
  Alcotest.(check int) "backlog drained" 0 (Mesh.tx_backlog mesh)

let test_mesh_wormhole_contiguity () =
  (* Two big packets from different sources to the same destination must
     both arrive intact (wormhole keeps their flit trains separate). *)
  let sim = Sim.create () in
  let mesh = mk_mesh sim in
  let got = ref [] in
  Mesh.set_receiver mesh (Coord.make 2 2) (fun pkt -> got := pkt.Packet.payload :: !got);
  Mesh.send mesh ~src:(Coord.make 0 0) ~dst:(Coord.make 2 2) ~payload_bytes:256 1;
  Mesh.send mesh ~src:(Coord.make 3 3) ~dst:(Coord.make 2 2) ~payload_bytes:256 2;
  Sim.run_for sim 2000;
  Alcotest.(check int) "both arrived" 2 (List.length !got);
  Alcotest.(check bool) "distinct payloads" true
    (List.sort compare !got = [ 1; 2 ])

let test_mesh_heavy_random_load_no_loss () =
  let sim = Sim.create () in
  let mesh = mk_mesh ~cols:4 ~rows:4 sim in
  let rng = Rng.create ~seed:11 in
  let gen =
    Traffic.start mesh ~rng ~pattern:Traffic.Uniform ~rate:0.05 ~payload_bytes:64
      ~payload:0 ()
  in
  Sim.run_for sim 3000;
  Traffic.stop_gen gen;
  Sim.run_for sim 3000;
  Alcotest.(check int) "sent = delivered after drain" (Mesh.packets_sent mesh)
    (Mesh.packets_delivered mesh);
  Alcotest.(check bool) "nonzero traffic" true (Mesh.packets_sent mesh > 500)

let test_mesh_1x1 () =
  (* Degenerate single-tile mesh: self-sends are the only option and the
     generator should simply not inject. *)
  let sim = Sim.create () in
  let mesh = mk_mesh ~cols:1 ~rows:1 sim in
  Sim.run_for sim 50;
  Alcotest.(check int) "no packets" 0 (Mesh.packets_sent mesh)

let test_mesh_yx_routing_delivers () =
  let sim = Sim.create () in
  let mesh = mk_mesh ~routing:Routing.Yx sim in
  let ok = ref false in
  Mesh.set_receiver mesh (Coord.make 3 1) (fun _ -> ok := true);
  Mesh.send mesh ~src:(Coord.make 0 2) ~dst:(Coord.make 3 1) ~payload_bytes:128 0;
  Sim.run_for sim 500;
  Alcotest.(check bool) "delivered via yx" true !ok


let prop_mesh_always_drains =
  (* Deadlock-freedom evidence: across random mesh shapes, VC counts,
     buffer depths, routing orders and payload sizes, every injected
     packet is eventually delivered once injection stops. *)
  QCheck.Test.make ~name:"random configs always drain (no deadlock/loss)" ~count:40
    QCheck.(
      quad
        (pair (int_range 1 5) (int_range 1 5))  (* cols, rows *)
        (pair (int_range 1 3) (int_range 1 8))  (* vcs, depth *)
        (pair bool (int_range 0 600))  (* yx routing, payload *)
        (int_range 1 60) (* packets *))
    (fun ((cols, rows), (vcs, depth), (yx, payload_bytes), npkts) ->
      QCheck.assume (cols * rows > 1);
      let sim = Sim.create () in
      let mesh : int Mesh.t =
        Mesh.create sim
          { Mesh.cols; rows; vcs; depth; flit_bytes = 16;
            routing = (if yx then Routing.Yx else Routing.Xy); qos = false }
      in
      let received = ref 0 in
      List.iter (fun c -> Mesh.set_receiver mesh c (fun _ -> incr received))
        (Mesh.coords mesh);
      let rng = Rng.create ~seed:(cols + (7 * rows) + (31 * npkts)) in
      let tiles = Array.of_list (Mesh.coords mesh) in
      let sent = ref 0 in
      for _ = 1 to npkts do
        let src = Rng.pick rng tiles and dst = Rng.pick rng tiles in
        if not (Coord.equal src dst) then begin
          incr sent;
          Mesh.send mesh ~src ~dst ~cls:(Rng.int rng vcs) ~payload_bytes 0
        end
      done;
      Sim.run_for sim ((npkts * 800) + 5_000);
      !received = !sent && Mesh.tx_backlog mesh = 0)

(* ------------------------------------------------------------------ *)
(* QoS *)

let qos_victim_latency ~qos =
  (* A high-priority flow crosses a column saturated by low-priority
     traffic; return its p99 latency. *)
  let sim = Sim.create () in
  let mesh = mk_mesh ~cols:4 ~rows:4 ~qos sim in
  let rng = Rng.create ~seed:21 in
  (* Background: low class flood into a hotspot. *)
  let _bg =
    Traffic.start mesh ~rng ~pattern:(Traffic.Hotspot (Coord.make 2 2, 0.8))
      ~rate:0.25 ~payload_bytes:128 ~cls:0 ~payload:0 ()
  in
  (* Foreground: periodic small class-1 packets along the same paths. *)
  Sim.every sim 50 (fun () ->
      Mesh.send mesh ~src:(Coord.make 0 2) ~dst:(Coord.make 3 2) ~cls:1
        ~payload_bytes:16 1);
  Sim.run_for sim 20_000;
  Stats.Histogram.percentile (Mesh.latency_of_class mesh 1) 99.0

let test_qos_priority_helps () =
  let without = qos_victim_latency ~qos:false in
  let with_q = qos_victim_latency ~qos:true in
  Alcotest.(check bool)
    (Printf.sprintf "qos p99 %d <= no-qos p99 %d" with_q without)
    true (with_q <= without)

(* ------------------------------------------------------------------ *)
(* Traffic patterns *)

let test_traffic_destinations_in_bounds () =
  let rng = Rng.create ~seed:31 in
  let patterns =
    [ Traffic.Uniform; Traffic.Hotspot (Coord.make 1 1, 0.5); Traffic.Transpose;
      Traffic.Bit_complement; Traffic.Neighbor ]
  in
  List.iter
    (fun p ->
      for i = 0 to 199 do
        let src = Coord.of_index ~cols:4 (i mod 16) in
        let d = Traffic.destination rng p ~cols:4 ~rows:4 ~src in
        if d.Coord.x < 0 || d.Coord.x >= 4 || d.Coord.y < 0 || d.Coord.y >= 4 then
          Alcotest.failf "%s out of bounds" (Traffic.pattern_to_string p)
      done)
    patterns

let test_traffic_hotspot_bias () =
  let rng = Rng.create ~seed:32 in
  let hot = Coord.make 3 3 in
  let hits = ref 0 in
  let n = 2000 in
  for _ = 1 to n do
    let d =
      Traffic.destination rng (Traffic.Hotspot (hot, 0.7)) ~cols:4 ~rows:4
        ~src:(Coord.make 0 0)
    in
    if Coord.equal d hot then incr hits
  done;
  let frac = float_of_int !hits /. float_of_int n in
  Alcotest.(check bool) "~70% to hotspot" true (frac > 0.6 && frac < 0.8)

let qc = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "noc"
    [
      ( "basics",
        [
          Alcotest.test_case "port opposite" `Quick test_port_opposite;
          Alcotest.test_case "coord roundtrip" `Quick test_coord_roundtrip;
          Alcotest.test_case "coord hops" `Quick test_coord_hops;
          Alcotest.test_case "flits for" `Quick test_flits_for;
          qc prop_flits_positive;
        ] );
      ( "routing",
        [
          Alcotest.test_case "xy" `Quick test_routing_xy;
          Alcotest.test_case "yx" `Quick test_routing_yx;
          qc prop_routing_progress;
        ] );
      ( "mesh",
        [
          Alcotest.test_case "single delivery" `Quick test_mesh_single_delivery;
          Alcotest.test_case "latency ~ hops" `Quick test_mesh_latency_scales_with_hops;
          Alcotest.test_case "serialization latency" `Quick test_mesh_serialization_latency;
          Alcotest.test_case "all pairs delivery" `Quick test_mesh_all_pairs_delivery;
          Alcotest.test_case "wormhole contiguity" `Quick test_mesh_wormhole_contiguity;
          Alcotest.test_case "heavy load no loss" `Quick test_mesh_heavy_random_load_no_loss;
          Alcotest.test_case "1x1 degenerate" `Quick test_mesh_1x1;
          Alcotest.test_case "yx delivers" `Quick test_mesh_yx_routing_delivers;
          qc prop_mesh_always_drains;
        ] );
      ("qos", [ Alcotest.test_case "priority helps" `Slow test_qos_priority_helps ]);
      ( "traffic",
        [
          Alcotest.test_case "dst in bounds" `Quick test_traffic_destinations_in_bounds;
          Alcotest.test_case "hotspot bias" `Quick test_traffic_hotspot_bias;
        ] );
    ]
